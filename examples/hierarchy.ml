(* Hierarchical multi-ring time service (DESIGN.md §12).

   Three shards of three replicas each; shard s's clocks start 5 ms * s
   behind real time.  Each shard runs its own Totem ring and CCS rounds;
   the deterministically elected gateways bridge the shards over a WAN
   network and agree a global group clock, dragging the lagging shards
   forward through bounded causal-floor corrections.  Halfway through we
   crash shard 1's gateway and watch the next-lowest id take over within
   one view change, then partition shard 0 away at the bridge, let it
   lag, and heal.

   Run with: dune exec examples/hierarchy.exe *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module CH = Scenario.Cluster_hier

let () =
  let topo = Hier.Topology.create ~shards:3 ~shard_size:3 in
  let clock_config i =
    {
      Clock.Hwclock.default_config with
      offset = Span.of_ms (-5 * Hier.Topology.shard_of topo (Nid.of_int i));
    }
  in
  let t = CH.create ~seed:7L ~clock_config ~shards:3 ~shard_size:3 () in
  CH.start_all t;
  Fmt.pr "rings and groups formed at t=%d us; cross-shard skew %d us@."
    (Time.to_us (Dsim.Engine.now t.CH.eng))
    (Span.to_us (CH.cross_shard_skew t));
  CH.start_readers t;
  let show label =
    Fmt.pr "%-28s skew %5d us, %d bridge rounds agreed, gateways:%a@." label
      (Span.to_us (CH.cross_shard_skew t))
      (CH.agreed_rounds t)
      (fun ppf () ->
        for s = 0 to 2 do
          match CH.gateway_of t s with
          | Some id -> Fmt.pf ppf " %d" (Nid.to_int id)
          | None -> Fmt.pf ppf " ?"
        done)
      ()
  in
  CH.run_for t (Span.of_ms 40);
  show "after 40 ms:";

  (* Gateway failover: node 3 (shard 1's minimum id) dies; every
     surviving replica of the shard re-elects node 4 from the next view
     with no messages beyond the view change itself. *)
  (match CH.crash_gateway t 1 with
  | Some id -> Fmt.pr "@.crashing shard 1's gateway (node %d)@." (Nid.to_int id)
  | None -> assert false);
  CH.run_for t (Span.of_ms 40);
  show "40 ms after the crash:";

  (* Bridge partition: shard 0 keeps its own ring and CCS rounds but
     cannot reach the other gateways; the survivors keep agreeing
     without it, and on heal it is pulled back into the global clock. *)
  Fmt.pr "@.partitioning shard 0 away at the bridge@.";
  CH.isolate_shard t 0;
  CH.run_for t (Span.of_ms 60);
  show "60 ms into the partition:";
  Fmt.pr "healing the bridge@.";
  CH.heal_bridge t;
  CH.run_for t (Span.of_ms 40);
  show "40 ms after the heal:";
  Fmt.pr "@.global-clock regressions clamped anywhere: %d (must be 0)@."
    (CH.regressions t)
