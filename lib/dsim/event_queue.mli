(** Priority queue of timestamped events, struct-of-arrays layout.

    A 4-ary min-heap ordered by [(time, insertion sequence)]: events at the
    same instant pop in insertion order, which makes the simulation fully
    deterministic.

    The heap is three parallel [int] arrays (instant, sequence,
    payload-slot index); payloads sit outside the heap in two lanes
    indexed by a stable slot, so sifting moves only immediates — no
    write barriers on the hot path.  The two payload lanes exist so the
    engine can park an [(fn, arg)] pair without boxing it into a tuple;
    single-payload users put [()] (or anything) in the lane they don't
    need. *)

type ('f, 'v) t

val create : ?capacity:int -> unit -> ('f, 'v) t
(** [create ?capacity ()] makes an empty queue.  [capacity] preallocates
    the backing arrays so the first [capacity] pushes never resize; the
    queue still grows past it on demand. *)

val push : ('f, 'v) t -> Time.t -> 'f -> 'v -> unit
(** [push q at fn v] enqueues the payload pair [(fn, v)] to fire at
    instant [at]. *)

val pop : ('f, 'v) t -> (Time.t * 'f * 'v) option
(** Remove and return the earliest event, or [None] if empty. *)

val pop_min_exn : ('f, 'v) t -> 'f * 'v
(** Remove the earliest event and return its payload pair.  Check
    {!is_empty} (or read {!min_time_exn}) first; raises
    [Invalid_argument] on an empty queue. *)

val fire_min_exn : ('v -> unit, 'v) t -> unit
(** Remove the earliest event and call [fn v] — the engine's per-event
    fast path, with no option or tuple allocated.  The entry is removed
    and its payload slot scrubbed {e before} the call, so the callback
    may push into this very queue and the payload does not outlive the
    event.  Raises [Invalid_argument] on an empty queue. *)

val min_time_exn : ('f, 'v) t -> Time.t
(** Timestamp of the earliest event; raises [Invalid_argument] if empty. *)

val peek_time : ('f, 'v) t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val ready_count : ('f, 'v) t -> int
(** Number of events sharing the earliest timestamp (the "ready set").
    These are exactly the events whose relative order is a scheduling
    choice rather than a consequence of virtual time. *)

val pop_nth : ('f, 'v) t -> int -> (Time.t * 'f * 'v) option
(** [pop_nth q n] removes the [n]-th event (0-based, in insertion order)
    among those sharing the earliest timestamp; [n] is clamped to the ready
    set.  [pop_nth q 0] is {!pop}.  This is the choice-point primitive used
    by the model checker to explore reorderings of simultaneous events. *)

val length : ('f, 'v) t -> int
val is_empty : ('f, 'v) t -> bool

val high_water : ('f, 'v) t -> int
(** Deepest the queue has ever been (over the queue's whole life, or
    since {!reset_high_water}).  A cheap backlog-pressure gauge: updated
    by comparing the new size against the mark on every {!push}. *)

val reset_high_water : ('f, 'v) t -> unit
(** Restart the {!high_water} mark from the current length. *)

val clear : ('f, 'v) t -> unit
