(** Priority queue of timestamped events.

    A 4-ary min-heap ordered by [(time, insertion sequence)]: events at the
    same instant pop in insertion order, which makes the simulation fully
    deterministic. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ?capacity ()] makes an empty queue.  [capacity] preallocates
    the backing arrays so the first [capacity] pushes never resize; the
    queue still grows past it on demand. *)

val push : 'a t -> Time.t -> 'a -> unit
(** [push q at ev] enqueues [ev] to fire at instant [at]. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val pop_min_exn : 'a t -> 'a
(** Remove the earliest event and return its payload without allocating.
    Check {!is_empty} (or read {!min_time_exn}) first; raises
    [Invalid_argument] on an empty queue.  The engine's per-event fast
    path. *)

val min_time_exn : 'a t -> Time.t
(** Timestamp of the earliest event; raises [Invalid_argument] if empty. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val ready_count : 'a t -> int
(** Number of events sharing the earliest timestamp (the "ready set").
    These are exactly the events whose relative order is a scheduling
    choice rather than a consequence of virtual time. *)

val pop_nth : 'a t -> int -> (Time.t * 'a) option
(** [pop_nth q n] removes the [n]-th event (0-based, in insertion order)
    among those sharing the earliest timestamp; [n] is clamped to the ready
    set.  [pop_nth q 0] is {!pop}.  This is the choice-point primitive used
    by the model checker to explore reorderings of simultaneous events. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val high_water : 'a t -> int
(** Deepest the queue has ever been (over the queue's whole life, or
    since {!reset_high_water}).  A cheap backlog-pressure gauge: updated
    by comparing the new size against the mark on every {!push}. *)

val reset_high_water : 'a t -> unit
(** Restart the {!high_water} mark from the current length. *)

val clear : 'a t -> unit
