type choice = Take of int | Postpone of Time.Span.t

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : Time.t;
  rng : Rng.t;
  mutable stopped : bool;
  mutable scheduler : (ready:int -> choice) option;
}

let create ?(seed = 1L) () =
  {
    queue = Event_queue.create ();
    now = Time.epoch;
    rng = Rng.create seed;
    stopped = false;
    scheduler = None;
  }

let now t = t.now
let rng t = t.rng
let set_scheduler t s = t.scheduler <- s

let schedule_at t at f =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.now);
  Event_queue.push t.queue at f

let schedule t d f =
  let d = if Time.Span.is_negative d then Time.Span.zero else d in
  Event_queue.push t.queue (Time.add t.now d) f

let run_event t = function
  | None -> false
  | Some (at, f) ->
      t.now <- at;
      f ();
      true

let step t =
  match t.scheduler with
  | None ->
      (* Fast path: no option/tuple per event. *)
      if Event_queue.is_empty t.queue then false
      else begin
        let at = Event_queue.min_time_exn t.queue in
        let f = Event_queue.pop_min_exn t.queue in
        t.now <- at;
        f ();
        true
      end
  | Some hook -> (
      match Event_queue.ready_count t.queue with
      | 0 -> false
      | ready -> (
          match hook ~ready with
          | Take i -> run_event t (Event_queue.pop_nth t.queue i)
          | Postpone d -> (
              match Event_queue.pop t.queue with
              | None -> false
              | Some (at, f) ->
                  (* Deferring re-enqueues the head strictly later; virtual
                     time stays monotone because [at >= t.now] already. *)
                  let d =
                    if Time.Span.(d <= Time.Span.zero) then Time.Span.of_ns 1
                    else d
                  in
                  Event_queue.push t.queue (Time.add at d) f;
                  true)))

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon_ok () =
    match until with
    | None -> true
    | Some h ->
        (not (Event_queue.is_empty t.queue))
        && Time.(Event_queue.min_time_exn t.queue <= h)
  in
  while
    (not t.stopped) && !budget > 0 && (not (Event_queue.is_empty t.queue))
    && horizon_ok ()
  do
    ignore (step t : bool);
    decr budget
  done;
  match until with Some h when Time.(h > t.now) -> t.now <- h | _ -> ()

let pending t = Event_queue.length t.queue
let stop t = t.stopped <- true
