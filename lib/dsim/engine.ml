type choice = Take of int | Postpone of Time.Span.t

(* The event queue's two payload lanes hold [(fn, arg)] directly, typed
   [Obj.t -> unit] / [Obj.t].  [schedule_call t d fn arg] parks the pair
   with both types erased; [schedule t d f] parks [(f, ())] — calling a
   [unit -> unit] closure with the unit immediate is exactly [f ()], so
   the closure case needs no wrapper.  The erasure is sound because the
   only reader of an [arg] is the matching [fn] stored by the same push.
   This replaces the PR 3 pooled record cells: the queue's payload slots
   (recycled via its free-slot stack) are the pool now, so steady-state
   scheduling still allocates nothing on the minor heap, without the
   cell / free-list / per-engine-sentinel machinery. *)

type t = {
  queue : (Obj.t -> unit, Obj.t) Event_queue.t;
  mutable now : Time.t;
  rng : Rng.t;
  mutable stopped : bool;
  mutable scheduler : (ready:int -> choice) option;
  mutable obs : Obs.Sink.t;
  mutable steps : int;
      (* events executed since creation: one plain increment per event,
         so event-rate accounting needs no obs sink *)
}

let unit_arg = Obj.repr ()

let erase_thunk (f : unit -> unit) : Obj.t -> unit = Obj.magic f
let erase_fn (type a) (fn : a -> unit) : Obj.t -> unit = Obj.magic fn

let create ?(seed = 1L) () =
  {
    queue = Event_queue.create ();
    now = Time.epoch;
    rng = Rng.create seed;
    stopped = false;
    scheduler = None;
    obs = Obs.Sink.inactive ();
    steps = 0;
  }

let now t = t.now
let rng t = t.rng
let obs t = t.obs
let set_obs t s = t.obs <- s
let set_scheduler t s = t.scheduler <- s

(* Per-callback probe.  The common (disabled) case is one field load and
   one predictable branch; the counter bump and the optional per-step
   instant stay out of line behind the [active] check, so the inlined
   disabled path adds nothing else to the call sites. *)
let probe_step_active s at =
  Obs.Sink.count s Obs.Metrics.Engine_events;
  if s.Obs.Sink.trace_steps then
    (Obs.Sink.instant s ~ts_ns:(Time.to_ns at) ~pid:0 ~sub:Obs.Subsystem.Dsim
       ~name:"step" ~args:[]
    [@ctslint.allow
      "hotpath-alloc"
        "trace-event boxing is gated by [trace_steps]; runs that measure \
         the hot path keep step tracing off"])
[@@inline never]

(* Per-step flight-recorder record.  Gated by [rec_on] exactly like
   [active] gates the trace probe, and further by [rec_steps] (off by
   default: per-callback records would spend the whole window on
   steps).  All arguments are ints, so the enabled path allocates
   nothing — OBS2 benches this. *)
let rec_step_on s at =
  if s.Obs.Sink.rec_steps then
    let us = Time.to_ns at / 1000 in
    Obs.Sink.rec_event s ~kind:Obs.Recorder.k_step ~ts_us:us ~node:0 ~a:us
      ~b:0
[@@inline never]

let probe_step t at =
  let s = t.obs in
  if s.Obs.Sink.active then probe_step_active s at;
  if s.Obs.Sink.rec_on then rec_step_on s at
[@@inline]

let schedule_at t at f =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.now);
  Event_queue.push t.queue at (erase_thunk f) unit_arg

let schedule t d f =
  let d = if Time.Span.is_negative d then Time.Span.zero else d in
  Event_queue.push t.queue (Time.add t.now d) (erase_thunk f) unit_arg

let schedule_call (type a) t d (fn : a -> unit) (arg : a) =
  let d = if Time.Span.is_negative d then Time.Span.zero else d in
  Event_queue.push t.queue (Time.add t.now d) (erase_fn fn) (Obj.repr arg)

let schedule_call_at (type a) t at (fn : a -> unit) (arg : a) =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_call_at: %a is before now (%a)" Time.pp
         at Time.pp t.now);
  Event_queue.push t.queue at (erase_fn fn) (Obj.repr arg)

let run_event t = function
  | None -> false
  | Some (at, fn, arg) ->
      t.now <- at;
      t.steps <- t.steps + 1;
      probe_step t at;
      fn arg;
      true

(* Advance the clock / counters and fire the head event.  Caller
   guarantees the queue is non-empty.  One emptiness test, one root read,
   no option or tuple: the per-event fast path everywhere below. *)
let fire_head t =
  let at = Event_queue.min_time_exn t.queue in
  t.now <- at;
  t.steps <- t.steps + 1;
  probe_step t at;
  Event_queue.fire_min_exn t.queue
[@@inline] [@@ctslint.hotpath]

let step t =
  match t.scheduler with
  | None ->
      if Event_queue.is_empty t.queue then false
      else begin
        fire_head t;
        true
      end
  | Some hook -> (
      match Event_queue.ready_count t.queue with
      | 0 -> false
      | ready -> (
          match hook ~ready with
          | Take 0 ->
              (* [Take 0] is the default schedule: identical to the plain
                 pop, so it gets the same allocation-free fast path. *)
              fire_head t;
              true
          | Take i -> run_event t (Event_queue.pop_nth t.queue i)
          | Postpone d -> (
              match Event_queue.pop t.queue with
              | None -> false
              | Some (at, fn, arg) ->
                  (* Deferring re-enqueues the head strictly later; virtual
                     time stays monotone because [at >= t.now] already. *)
                  let d =
                    if Time.Span.(d <= Time.Span.zero) then Time.Span.of_ns 1
                    else d
                  in
                  Event_queue.push t.queue (Time.add at d) fn arg;
                  true)))

(* Hook-free inner loop: one emptiness test and one [min_time_exn] per
   event, shared between the horizon check and the pop.  The horizon test
   is hoisted out of the loop: the unbounded case — every [Engine.run]
   and the whole explorer hot path — pays no per-event option match. *)
let run_plain t ~horizon budget =
  match horizon with
  | None ->
      let n = ref !budget in
      while
        (not t.stopped) && !n > 0 && not (Event_queue.is_empty t.queue)
      do
        fire_head t;
        decr n
      done;
      budget := !n
  | Some h ->
      let continue = ref true in
      while !continue do
        if t.stopped || !budget <= 0 || Event_queue.is_empty t.queue then
          continue := false
        else if Time.(Event_queue.min_time_exn t.queue > h) then
          continue := false
        else begin
          fire_head t;
          decr budget
        end
      done

(* Hook path (model checking): the hook decides what runs, so we only peek
   at the head for the horizon test and delegate to [step]. *)
let run_hooked t ~horizon budget =
  let continue = ref true in
  while !continue do
    if t.stopped || !budget <= 0 || Event_queue.is_empty t.queue then
      continue := false
    else
      match horizon with
      | Some h when Time.(Event_queue.min_time_exn t.queue > h) ->
          continue := false
      | _ ->
          ignore (step t : bool);
          decr budget
  done

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  (match t.scheduler with
  | None -> run_plain t ~horizon:until budget
  | Some _ -> run_hooked t ~horizon:until budget);
  match until with Some h when Time.(h > t.now) -> t.now <- h | _ -> ()

let with_gc_tuning ?(minor_heap_words = 1024 * 1024)
    ?(space_overhead = 800) f =
  let saved = Gc.get () in
  Gc.set { saved with Gc.minor_heap_size = minor_heap_words; space_overhead };
  Fun.protect ~finally:(fun () -> Gc.set saved) f

let steps t = t.steps
let pending t = Event_queue.length t.queue
let queue_high_water t = Event_queue.high_water t.queue
let reset_queue_high_water t = Event_queue.reset_high_water t.queue
let stop t = t.stopped <- true
