type choice = Take of int | Postpone of Time.Span.t

(* Pooled timer cell.  [schedule t d (fun () -> ...)] allocates a closure
   per event; the pooled variant [schedule_call t d fn arg] instead parks
   [(fn, arg)] in a recycled cell whose [c_fire] closure was allocated once
   when the cell was first created.  Cells link into a per-engine intrusive
   free list; [c_next == cell] marks a cell not on the list (and the
   engine's [nil_cell] sentinel marks the empty list — per-engine rather
   than global so that marshalling an engine keeps the identity test
   valid).  [Obj.t] erases the argument type: sound because the only reader
   is the matching [c_fn], stored by the same [schedule_call]. *)
type cell = {
  mutable c_fn : Obj.t -> unit;
  mutable c_arg : Obj.t;
  mutable c_next : cell;
  c_fire : unit -> unit;
}

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : Time.t;
  rng : Rng.t;
  mutable stopped : bool;
  mutable scheduler : (ready:int -> choice) option;
  nil_cell : cell;
  mutable free_cells : cell;
  mutable obs : Obs.Sink.t;
  mutable steps : int;
      (* events executed since creation: one plain increment per event,
         so event-rate accounting needs no obs sink *)
}

let obj_ignore (_ : Obj.t) = ()
let obj_zero = Obj.repr 0

let make_nil_cell () =
  let rec c =
    { c_fn = obj_ignore; c_arg = obj_zero; c_next = c; c_fire = ignore }
  in
  c

let create ?(seed = 1L) () =
  let nil_cell = make_nil_cell () in
  {
    queue = Event_queue.create ();
    now = Time.epoch;
    rng = Rng.create seed;
    stopped = false;
    scheduler = None;
    nil_cell;
    free_cells = nil_cell;
    obs = Obs.Sink.inactive ();
    steps = 0;
  }

let now t = t.now
let rng t = t.rng
let obs t = t.obs
let set_obs t s = t.obs <- s
let set_scheduler t s = t.scheduler <- s

(* Per-callback probe.  The common (disabled) case is one field load and
   one predictable branch; the counter bump and the optional per-step
   instant stay out of line behind the [active] check, so the inlined
   disabled path adds nothing else to the call sites. *)
let probe_step_active s at =
  Obs.Sink.count s Obs.Metrics.Engine_events;
  if s.Obs.Sink.trace_steps then
    Obs.Sink.instant s ~ts_ns:(Time.to_ns at) ~pid:0 ~sub:Obs.Subsystem.Dsim
      ~name:"step" ~args:[]
[@@inline never]

let probe_step t at =
  let s = t.obs in
  if s.Obs.Sink.active then probe_step_active s at
[@@inline]

let schedule_at t at f =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.now);
  Event_queue.push t.queue at f

let schedule t d f =
  let d = if Time.Span.is_negative d then Time.Span.zero else d in
  Event_queue.push t.queue (Time.add t.now d) f

(* Pop a cell off the free list, or mint one.  Minting allocates the cell
   and its [c_fire] closure exactly once; every later trip through the
   pool is allocation-free. *)
let acquire t =
  let c = t.free_cells in
  if
    (c != t.nil_cell)
    [@ctslint.allow
      "phys-equality"
        "pooled nil sentinel: cell identity, not contents, marks the empty \
         free list (Marshal-safe because the sentinel is per-engine)"]
  then begin
    t.free_cells <- c.c_next;
    c.c_next <- c;
    c
  end
  else begin
    let rec cell =
      { c_fn = obj_ignore; c_arg = obj_zero; c_next = cell; c_fire = fire }
    and fire () =
      let fn = cell.c_fn and arg = cell.c_arg in
      (* Scrub and release before calling: the payload must not outlive
         the event (it may hold a large graph), and releasing first lets
         [fn] itself schedule into this very cell. *)
      cell.c_fn <- obj_ignore;
      cell.c_arg <- obj_zero;
      cell.c_next <- t.free_cells;
      t.free_cells <- cell;
      fn arg
    in
    cell
  end

let fill_cell (type a) t (fn : a -> unit) (arg : a) =
  let c = acquire t in
  c.c_fn <- (Obj.magic fn : Obj.t -> unit);
  c.c_arg <- Obj.repr arg;
  c.c_fire

let schedule_call t d fn arg =
  let d = if Time.Span.is_negative d then Time.Span.zero else d in
  Event_queue.push t.queue (Time.add t.now d) (fill_cell t fn arg)

let schedule_call_at t at fn arg =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_call_at: %a is before now (%a)" Time.pp
         at Time.pp t.now);
  Event_queue.push t.queue at (fill_cell t fn arg)

let run_event t = function
  | None -> false
  | Some (at, f) ->
      t.now <- at;
      t.steps <- t.steps + 1;
      probe_step t at;
      f ();
      true

let step t =
  match t.scheduler with
  | None ->
      (* Fast path: no option/tuple per event. *)
      if Event_queue.is_empty t.queue then false
      else begin
        let at = Event_queue.min_time_exn t.queue in
        let f = Event_queue.pop_min_exn t.queue in
        t.now <- at;
        t.steps <- t.steps + 1;
        probe_step t at;
        f ();
        true
      end
  | Some hook -> (
      match Event_queue.ready_count t.queue with
      | 0 -> false
      | ready -> (
          match hook ~ready with
          | Take 0 ->
              (* [Take 0] is the default schedule: identical to the plain
                 pop, so it gets the same allocation-free fast path. *)
              let at = Event_queue.min_time_exn t.queue in
              let f = Event_queue.pop_min_exn t.queue in
              t.now <- at;
              t.steps <- t.steps + 1;
              probe_step t at;
              f ();
              true
          | Take i -> run_event t (Event_queue.pop_nth t.queue i)
          | Postpone d -> (
              match Event_queue.pop t.queue with
              | None -> false
              | Some (at, f) ->
                  (* Deferring re-enqueues the head strictly later; virtual
                     time stays monotone because [at >= t.now] already. *)
                  let d =
                    if Time.Span.(d <= Time.Span.zero) then Time.Span.of_ns 1
                    else d
                  in
                  Event_queue.push t.queue (Time.add at d) f;
                  true)))

(* Hook-free inner loop: one emptiness test and one [min_time_exn] per
   event, shared between the horizon check and the pop (the previous
   version's separate [horizon_ok] re-scanned the queue head each
   iteration on top of [step]'s own inspection).  The horizon test is
   hoisted out of the loop: the unbounded case — every [Engine.run] and
   the whole explorer hot path — pays no per-event option match. *)
let run_plain t ~horizon budget =
  match horizon with
  | None ->
      let n = ref !budget in
      while
        (not t.stopped) && !n > 0 && not (Event_queue.is_empty t.queue)
      do
        let at = Event_queue.min_time_exn t.queue in
        let f = Event_queue.pop_min_exn t.queue in
        t.now <- at;
        t.steps <- t.steps + 1;
        probe_step t at;
        f ();
        decr n
      done;
      budget := !n
  | Some h ->
      let continue = ref true in
      while !continue do
        if t.stopped || !budget <= 0 || Event_queue.is_empty t.queue then
          continue := false
        else begin
          let at = Event_queue.min_time_exn t.queue in
          if Time.(at > h) then continue := false
          else begin
            let f = Event_queue.pop_min_exn t.queue in
            t.now <- at;
            t.steps <- t.steps + 1;
            probe_step t at;
            f ();
            decr budget
          end
        end
      done

(* Hook path (model checking): the hook decides what runs, so we only peek
   at the head for the horizon test and delegate to [step]. *)
let run_hooked t ~horizon budget =
  let continue = ref true in
  while !continue do
    if t.stopped || !budget <= 0 || Event_queue.is_empty t.queue then
      continue := false
    else
      match horizon with
      | Some h when Time.(Event_queue.min_time_exn t.queue > h) ->
          continue := false
      | _ ->
          ignore (step t : bool);
          decr budget
  done

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  (match t.scheduler with
  | None -> run_plain t ~horizon:until budget
  | Some _ -> run_hooked t ~horizon:until budget);
  match until with Some h when Time.(h > t.now) -> t.now <- h | _ -> ()

let with_gc_tuning ?(minor_heap_words = 1024 * 1024)
    ?(space_overhead = 800) f =
  let saved = Gc.get () in
  Gc.set { saved with Gc.minor_heap_size = minor_heap_words; space_overhead };
  Fun.protect ~finally:(fun () -> Gc.set saved) f

let steps t = t.steps
let pending t = Event_queue.length t.queue
let queue_high_water t = Event_queue.high_water t.queue
let reset_queue_high_water t = Event_queue.reset_high_water t.queue
let stop t = t.stopped <- true
