(** Discrete-event simulation engine.

    The engine owns the virtual clock and the event queue.  Every other
    component of the simulator (network, protocol nodes, replicas,
    application fibers) is driven by callbacks scheduled here.  A run is a
    pure function of the root seed. *)

type t

type choice = Take of int | Postpone of Time.Span.t
    (** A scheduling decision at a choice point: [Take i] runs the [i]-th
        event (insertion order, clamped) among those sharing the earliest
        timestamp; [Postpone d] re-enqueues the earliest event [d] later
        without running anything.  Both keep virtual time monotone. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine whose virtual clock starts at
    {!Time.epoch}.  Default seed is [1L]. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream.  Components should {!Rng.split} their
    own stream from it at construction time. *)

val obs : t -> Obs.Sink.t
(** The engine's observability sink — inactive (and therefore free apart
    from one load + branch per probe) until a trace or metrics registry
    is attached with {!Obs.Sink.attach}.  Every instrumented layer reads
    the sink through its engine at each probe site rather than caching
    it, so attaching after construction (or after [Mc.Harness] rebuilds a
    marshalled world) takes effect immediately. *)

val set_obs : t -> Obs.Sink.t -> unit
(** Adopt an externally owned sink (used by the scenario harness and the
    model checker to share one sink across a rebuilt world). *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at t at f] runs [f] when the virtual clock reaches [at].
    Raises [Invalid_argument] if [at] is in the past. *)

val schedule : t -> Time.span -> (unit -> unit) -> unit
(** [schedule t d f] runs [f] after delay [d] (clipped to be >= 0). *)

val schedule_call : t -> Time.span -> ('a -> unit) -> 'a -> unit
(** [schedule_call t d fn arg] runs [fn arg] after delay [d] (clipped to
    be >= 0).  Unlike {!schedule} with a closure built at the call site,
    the [(fn, arg)] pair is parked directly in the event queue's payload
    lanes (recycled slots), so steady-state scheduling allocates nothing
    on the minor heap.  Pass a top-level (or otherwise preallocated) [fn]
    to get the full benefit; a fresh closure for [fn] reintroduces the
    allocation. *)

val schedule_call_at : t -> Time.t -> ('a -> unit) -> 'a -> unit
(** Absolute-time variant of {!schedule_call}.  Raises [Invalid_argument]
    if the instant is in the past. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events in timestamp order until the queue drains, the optional
    [until] horizon is passed, or [max_events] callbacks have run.
    Exceptions raised by callbacks propagate and abort the run. *)

val step : t -> bool
(** Process a single event; [false] if the queue was empty.  When a
    scheduler hook is installed, the hook picks which ready event runs (or
    postpones the head); a [Postpone] step performs no callback but still
    returns [true]. *)

val set_scheduler : t -> (ready:int -> choice) option -> unit
(** Install (or remove, with [None]) a schedule-exploration hook.  The hook
    is consulted on every {!step} with [ready] = the number of events
    sharing the earliest timestamp (>= 1).  Without a hook the engine pops
    strictly in [(time, insertion)] order — the default deterministic
    schedule.  Used by [Mc] to enumerate interleavings; a hook that always
    answers [Take 0] reproduces the default schedule exactly. *)

val with_gc_tuning : ?minor_heap_words:int -> ?space_overhead:int ->
  (unit -> 'a) -> 'a
(** [with_gc_tuning f] runs [f] under GC parameters sized for the
    simulator hot loop — a 1M-word minor heap (short-lived event garbage
    dies young instead of being promoted; larger heaps measured slower
    here, they outgrow the cache) and a relaxed [space_overhead]
    (default 800: simulation live heaps are tiny, so trading idle memory
    for ~3x fewer major collections is nearly free) — and restores the
    previous parameters afterwards, also on exception.  Used by the
    benchmarks and by [ctsim] around exploration. *)

val pending : t -> int
(** Number of queued events. *)

val steps : t -> int
(** Events executed since creation — a plain counter kept outside the obs
    sink so event-rate accounting costs one increment even with no sink
    attached. *)

val queue_high_water : t -> int
(** Deepest the event queue has ever been during this engine's life (or
    since {!reset_queue_high_water}) — the backlog-pressure gauge behind
    the [event_queue_hwm] metric. *)

val reset_queue_high_water : t -> unit

val stop : t -> unit
(** Makes the current {!run} return after the in-progress callback. *)
