(** Discrete-event simulation engine.

    The engine owns the virtual clock and the event queue.  Every other
    component of the simulator (network, protocol nodes, replicas,
    application fibers) is driven by callbacks scheduled here.  A run is a
    pure function of the root seed. *)

type t

type choice = Take of int | Postpone of Time.Span.t
    (** A scheduling decision at a choice point: [Take i] runs the [i]-th
        event (insertion order, clamped) among those sharing the earliest
        timestamp; [Postpone d] re-enqueues the earliest event [d] later
        without running anything.  Both keep virtual time monotone. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine whose virtual clock starts at
    {!Time.epoch}.  Default seed is [1L]. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream.  Components should {!Rng.split} their
    own stream from it at construction time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at t at f] runs [f] when the virtual clock reaches [at].
    Raises [Invalid_argument] if [at] is in the past. *)

val schedule : t -> Time.span -> (unit -> unit) -> unit
(** [schedule t d f] runs [f] after delay [d] (clipped to be >= 0). *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events in timestamp order until the queue drains, the optional
    [until] horizon is passed, or [max_events] callbacks have run.
    Exceptions raised by callbacks propagate and abort the run. *)

val step : t -> bool
(** Process a single event; [false] if the queue was empty.  When a
    scheduler hook is installed, the hook picks which ready event runs (or
    postpones the head); a [Postpone] step performs no callback but still
    returns [true]. *)

val set_scheduler : t -> (ready:int -> choice) option -> unit
(** Install (or remove, with [None]) a schedule-exploration hook.  The hook
    is consulted on every {!step} with [ready] = the number of events
    sharing the earliest timestamp (>= 1).  Without a hook the engine pops
    strictly in [(time, insertion)] order — the default deterministic
    schedule.  Used by [Mc] to enumerate interleavings; a hook that always
    answers [Take 0] reproduces the default schedule exactly. *)

val pending : t -> int
(** Number of queued events. *)

val stop : t -> unit
(** Makes the current {!run} return after the in-progress callback. *)
