(** Simulated time.

    Absolute instants ({!t}) and durations ({!span}) are integer nanosecond
    counts, kept abstract so that instants and durations cannot be mixed up
    by accident.  All arithmetic is exact; there is no floating-point
    rounding anywhere in the simulated clock plane. *)

type t = private int
(** An absolute instant on the simulation time line.  The representation
    (an integer nanosecond count) is exposed read-only so that hot-path
    consumers — the event queue's sift loops above all — can compare
    instants as immediate ints without a cross-module call; construction
    still has to go through the smart constructors below. *)

type span = private int
(** A (possibly negative) duration.  Read-only representation for the
    same reason as {!t}. *)

(** {1 Instants} *)

val epoch : t
(** The origin of simulated time, [t = 0]. *)

val of_ns : int -> t
val to_ns : t -> int

val of_us : int -> t
val to_us : t -> int
(** [to_us] truncates towards zero. *)

val of_ms : int -> t
val of_sec : int -> t

val of_sec_f : float -> t
(** [of_sec_f s] converts fractional seconds, rounding to the nearest ns. *)

val to_sec_f : t -> float

val add : t -> span -> t
val sub : t -> span -> t

val diff : t -> t -> span
(** [diff a b] is the span [a - b]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as seconds with microsecond precision, e.g. ["12.000351s"]. *)

val truncate_to : span -> t -> t
(** [truncate_to g t] rounds [t] down to a multiple of granularity [g];
    models coarse clock sources such as [time()] (1 s granularity). *)

(** {1 Spans} *)

module Span : sig
  type nonrec t = span

  val zero : t
  val of_ns : int -> t
  val to_ns : t -> int
  val of_us : int -> t
  val to_us : t -> int
  val of_ms : int -> t
  val of_sec : int -> t
  val of_sec_f : float -> t
  val to_sec_f : t -> float

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val scale : float -> t -> t
  (** [scale f s] multiplies by a float factor, rounding to nearest ns. *)

  val divide : t -> int -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val is_negative : t -> bool
  val pp : Format.formatter -> t -> unit
end
