(* Deterministic iteration over hash tables.

   [Hashtbl] iteration order is a function of the hash of every key and
   of the table's growth history — two replicas that inserted the same
   bindings in a different order (or under a different [Hashtbl.randomize]
   seed) observe different orders.  Any callback whose effects escape —
   handler fan-out, message sends, list construction — therefore breaks
   the determinism contract the whole stack depends on (dsim replay, mc
   schedule exploration, the multicore pool's identical-at-any-N merge,
   obs trace monotonicity).  `ctslint`'s [hash-order] rule forbids raw
   [Hashtbl.iter]/[Hashtbl.fold] at such sites; these helpers are the
   sanctioned replacement: they materialize the bindings, sort them by
   key under a caller-supplied total order, and only then run the
   callback.

   Cost: O(n log n) and one list allocation per call — fine for the
   membership/handler tables these are used on (small, cold paths);
   never put one on a per-event hot path. *)

let sorted_bindings ~compare tbl =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let sorted_keys ~compare tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let iter_sorted ~compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~compare tbl)

let fold_sorted ~compare f tbl init =
  List.fold_left
    (fun acc (k, v) -> f k v acc)
    init
    (sorted_bindings ~compare tbl)

(* Deterministic leader election: the minimum of a collection under a
   caller-supplied total order.  Used by [Hier] to pick a shard's gateway
   from its current view.  The fold takes a running minimum, so the result
   is a function of the *set* of members only — independent of the list's
   arrival order, of any Hashtbl seed upstream, and of duplicates. *)
let elect ~compare = function
  | [] -> None
  | x :: rest ->
      Some
        (List.fold_left
           (fun best y -> if compare y best < 0 then y else best)
           x rest)
