(* Unboxed 4-ary min-heap: three parallel arrays instead of an
   ['a entry option array].  [at] and [seq] hold immediates, so a push
   allocates nothing (the old layout boxed an [entry] inside an [option]
   per element — one allocation and two indirections on every comparison)
   and sifting compares against flat array slots.

   Arity 4 rather than 2: the engine's workload is pop-heavy (every pop
   sifts the displaced last element down from the root), and a 4-ary
   heap halves the sift depth — half the 3-field copies and half the
   dependent cache misses — at the cost of up to three extra compares
   per level, which hit the same cache lines the copy touches anyway.
   The pop order is the strict [(at, seq)] minimum either way, so heap
   arity is unobservable through the interface.

   The arrays double as the event-cell pool: slots are never freed, only
   vacated and overwritten by later pushes, so a queue in steady state
   (push rate = pop rate) allocates nothing on the minor heap.  Sifting is
   hole-based — the moving element rides in registers and each visited
   level does one 3-field copy instead of a 6-field swap — and all slot
   accesses inside the sift loops use unsafe reads/writes (indices are
   bounded by [size], which the loops maintain).

   Slots at index >= size are junk: [ev] slots are scrubbed with [nil]
   when vacated so popped payloads do not survive their pop. *)

type 'a t = {
  mutable at : Time.t array;
  mutable seq : int array;
  mutable ev : 'a array;
  mutable size : int;
  mutable next_seq : int;
  mutable hwm : int;
      (* deepest the queue has ever been: backlog pressure at a glance *)
}

(* Written into dead [ev] slots, never read.  Storing an immediate in a
   pointer array is always sound. *)
let nil : unit -> 'a = fun () -> Obj.magic 0

let create ?(capacity = 0) () =
  if capacity = 0 then
    { at = [||]; seq = [||]; ev = [||]; size = 0; next_seq = 0; hwm = 0 }
  else
    {
      at = Array.make capacity Time.epoch;
      seq = Array.make capacity 0;
      ev = Array.make capacity (nil ());
      size = 0;
      next_seq = 0;
      hwm = 0;
    }

(* (at, seq) earlier than slot [j]: primary key time, tie-break
   insertion order. *)
let lt_slot h at seq j =
  match Time.compare at (Array.unsafe_get h.at j) with
  | 0 -> seq < Array.unsafe_get h.seq j
  | c -> c < 0

let set_slot h i at seq ev =
  Array.unsafe_set h.at i at;
  Array.unsafe_set h.seq i seq;
  Array.unsafe_set h.ev i ev

let copy_slot h ~src ~dst =
  Array.unsafe_set h.at dst (Array.unsafe_get h.at src);
  Array.unsafe_set h.seq dst (Array.unsafe_get h.seq src);
  Array.unsafe_set h.ev dst (Array.unsafe_get h.ev src)

(* Float the hole at [i] towards the root until [(at, seq)] fits, then
   drop the element in. *)
let rec sift_up h i at seq ev =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if lt_slot h at seq parent then begin
      copy_slot h ~src:parent ~dst:i;
      sift_up h parent at seq ev
    end
    else set_slot h i at seq ev
  end
  else set_slot h i at seq ev

(* [i] earlier than [j], both known < size.  Same order as [lt] with
   unsafe reads for the sift loop. *)
let lt_u h i j =
  match
    Time.compare (Array.unsafe_get h.at i) (Array.unsafe_get h.at j)
  with
  | 0 -> Array.unsafe_get h.seq i < Array.unsafe_get h.seq j
  | c -> c < 0

(* Smallest of the up-to-four children starting at [c0]; caller
   guarantees [c0 < size].  Unrolled so no [ref] cell is allocated. *)
let min_child h c0 =
  let sz = h.size in
  let s = c0 in
  let j = c0 + 1 in
  let s = if j < sz && lt_u h j s then j else s in
  let j = c0 + 2 in
  let s = if j < sz && lt_u h j s then j else s in
  let j = c0 + 3 in
  if j < sz && lt_u h j s then j else s

(* Sink the hole at [i] towards the leaves until [(at, seq)] fits. *)
let rec sift_down h i at seq ev =
  let c0 = (4 * i) + 1 in
  if c0 >= h.size then set_slot h i at seq ev
  else begin
    let smallest = min_child h c0 in
    if lt_slot h at seq smallest then set_slot h i at seq ev
    else begin
      copy_slot h ~src:smallest ~dst:i;
      sift_down h smallest at seq ev
    end
  end

let grow h fill =
  let cap = Array.length h.at in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let at = Array.make cap' Time.epoch in
  let seq = Array.make cap' 0 in
  let ev = Array.make cap' fill in
  Array.blit h.at 0 at 0 h.size;
  Array.blit h.seq 0 seq 0 h.size;
  Array.blit h.ev 0 ev 0 h.size;
  h.at <- at;
  h.seq <- seq;
  h.ev <- ev

let push h at ev =
  if h.size = Array.length h.at then grow h ev;
  let i = h.size in
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.size <- i + 1;
  if h.size > h.hwm then h.hwm <- h.size;
  sift_up h i at seq ev

let min_time_exn h =
  if h.size = 0 then invalid_arg "Event_queue.min_time_exn: empty";
  h.at.(0)

(* Remove the root without materializing an option or a tuple — the
   engine's per-event fast path. *)
let pop_min_exn h =
  if h.size = 0 then invalid_arg "Event_queue.pop_min_exn: empty";
  let ev = Array.unsafe_get h.ev 0 in
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    let lat = Array.unsafe_get h.at last in
    let lseq = Array.unsafe_get h.seq last in
    let lev = Array.unsafe_get h.ev last in
    Array.unsafe_set h.ev last (nil ());
    sift_down h 0 lat lseq lev
  end
  else Array.unsafe_set h.ev 0 (nil ());
  ev

let pop h =
  if h.size = 0 then None
  else begin
    let at = h.at.(0) in
    Some (at, pop_min_exn h)
  end

let peek_time h = if h.size = 0 then None else Some h.at.(0)
let length h = h.size
let is_empty h = h.size = 0
let high_water h = h.hwm
let reset_high_water h = h.hwm <- h.size

(* Equal-time entries form a subtree rooted at 0 (an entry at the minimum
   time forces all its ancestors to the minimum too), so counting can
   prune every subtree whose root is later: O(ready), not O(size). *)
let rec count_eq h at i acc =
  if i >= h.size || Time.compare h.at.(i) at <> 0 then acc
  else
    let c = 4 * i in
    count_eq h at (c + 4)
      (count_eq h at (c + 3)
         (count_eq h at (c + 2) (count_eq h at (c + 1) (acc + 1))))

let ready_count h =
  if h.size = 0 then 0 else count_eq h h.at.(0) 0 0

(* Remove the entry at heap index [i], restoring the heap invariant.  The
   element moved into the hole may need to travel either direction. *)
let remove_index h i =
  let ev = h.ev.(i) in
  let last = h.size - 1 in
  h.size <- last;
  if i < last then begin
    let lat = h.at.(last) and lseq = h.seq.(last) and lev = h.ev.(last) in
    h.ev.(last) <- nil ();
    (* The displaced element may belong above or below the hole; try the
       downward direction first, and if it never moved, float it up. *)
    sift_down h i lat lseq lev;
    if
      (h.at.(i) == lat && h.seq.(i) == lseq)
      [@ctslint.allow
        "phys-equality"
          "immediate ints from the unboxed heap arrays: == is = without \
           the polymorphic-compare call on the sift hot path"]
    then begin
      (* still in the hole: may need to travel up *)
      sift_up h i lat lseq lev
    end
  end
  else h.ev.(last) <- nil ();
  ev

(* Indices of the ready set, pruned like [count_eq]; order unspecified. *)
let rec ready_indices h at i acc =
  if i >= h.size || Time.compare h.at.(i) at <> 0 then acc
  else
    let c = 4 * i in
    ready_indices h at (c + 4)
      (ready_indices h at (c + 3)
         (ready_indices h at (c + 2)
            (ready_indices h at (c + 1) (i :: acc))))

let pop_nth h n =
  if h.size = 0 then None
  else if n <= 0 then pop h
  else begin
    let at = h.at.(0) in
    let by_seq =
      List.sort
        (fun a b -> compare h.seq.(a) h.seq.(b))
        (ready_indices h at 0 [])
    in
    let n = min n (List.length by_seq - 1) in
    Some (at, remove_index h (List.nth by_seq n))
  end

let clear h =
  let n = nil () in
  for i = 0 to h.size - 1 do
    h.ev.(i) <- n
  done;
  h.size <- 0
