type 'a entry = { at : Time.t; seq : int; ev : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 64 None; size = 0; next_seq = 0 }

let entry_lt a b =
  match Time.compare a.at b.at with 0 -> a.seq < b.seq | c -> c < 0

let get h i = match h.heap.(i) with Some e -> e | None -> assert false

let swap h i j =
  let tmp = h.heap.(i) in
  h.heap.(i) <- h.heap.(j);
  h.heap.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_lt (get h l) (get h !smallest) then smallest := l;
  if r < h.size && entry_lt (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h at ev =
  if h.size = Array.length h.heap then begin
    let bigger = Array.make (2 * h.size) None in
    Array.blit h.heap 0 bigger 0 h.size;
    h.heap <- bigger
  end;
  h.heap.(h.size) <- Some { at; seq = h.next_seq; ev };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    h.heap.(0) <- h.heap.(h.size);
    h.heap.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (top.at, top.ev)
  end

let peek_time h = if h.size = 0 then None else Some (get h 0).at
let length h = h.size
let is_empty h = h.size = 0

let ready_count h =
  if h.size = 0 then 0
  else begin
    let at = (get h 0).at in
    let n = ref 0 in
    for i = 0 to h.size - 1 do
      if Time.compare (get h i).at at = 0 then incr n
    done;
    !n
  end

(* Remove the entry at heap index [i], restoring the heap invariant.  The
   element moved into the hole may need to travel either direction. *)
let remove_index h i =
  let e = get h i in
  h.size <- h.size - 1;
  if i = h.size then h.heap.(i) <- None
  else begin
    h.heap.(i) <- h.heap.(h.size);
    h.heap.(h.size) <- None;
    sift_down h i;
    sift_up h i
  end;
  e

let pop_nth h n =
  if h.size = 0 then None
  else if n <= 0 then pop h
  else begin
    let at = (get h 0).at in
    let ready = ref [] in
    for i = h.size - 1 downto 0 do
      if Time.compare (get h i).at at = 0 then ready := i :: !ready
    done;
    let by_seq =
      List.sort (fun a b -> compare (get h a).seq (get h b).seq) !ready
    in
    let n = min n (List.length by_seq - 1) in
    let e = remove_index h (List.nth by_seq n) in
    Some (e.at, e.ev)
  end

let clear h =
  Array.fill h.heap 0 h.size None;
  h.size <- 0
