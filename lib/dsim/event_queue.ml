(* Struct-of-arrays 4-ary min-heap.  The heap proper is three parallel
   [int] arrays — [at] (instant), [seq] (insertion order), [pidx]
   (payload-slot index) — so every sift step moves three immediates
   through arrays the compiler knows are unboxed: no write barrier, no
   pointer chasing, and the displaced element rides in registers.

   Payloads live OUTSIDE the heap, in two parallel lanes ([pfn]/[pv])
   indexed by a stable slot number that never moves while the entry
   sifts.  A slot is claimed from a free-slot stack on push and returned
   on pop, so the payload lanes double as the event-cell pool: steady
   state (push rate = pop rate) allocates nothing on the minor heap, and
   the two caml_modify calls per event (writing the payload pair) happen
   exactly once, at push — the sift loops touch only int arrays.  This
   replaces both the previous single boxed payload lane and the engine's
   pooled record cells (PR 3): the (fn, arg) pair the engine used to park
   in a recycled cell is now just the two payload lanes.

   Arity 4 rather than 2: the workload is pop-heavy (every pop sifts the
   displaced last element down from the root), and a 4-ary heap halves
   the sift depth at the cost of up to three extra int compares per
   level, which hit the same cache lines anyway.  Pop order is the strict
   [(at, seq)] minimum either way, so heap arity is unobservable.

   [at] is [Time.t = private int]; the [:> int] coercions below are free
   and let the sift loops compare instants as naked ints instead of
   calling [Time.compare] per level.

   Slots at heap index >= size are junk; payload slots are scrubbed with
   [nil] when vacated so popped payloads do not survive their pop. *)

type ('f, 'v) t = {
  mutable at : int array;
  mutable seq : int array;
  mutable pidx : int array;
  mutable pfn : 'f array; (* payload lane 1, by slot *)
  mutable pv : 'v array; (* payload lane 2, by slot *)
  mutable free : int array; (* stack of free payload slots *)
  mutable nfree : int;
  mutable size : int;
  mutable next_seq : int;
  mutable hwm : int;
      (* deepest the queue has ever been: backlog pressure at a glance *)
}

(* Written into dead payload slots, never read.  Storing an immediate in
   a pointer array is always sound. *)
let nil : unit -> 'a = fun () -> Obj.magic 0

let create ?(capacity = 0) () =
  {
    at = Array.make capacity 0;
    seq = Array.make capacity 0;
    pidx = Array.make capacity 0;
    pfn = Array.make capacity (nil ());
    pv = Array.make capacity (nil ());
    free = Array.init capacity (fun i -> capacity - 1 - i);
    nfree = capacity;
    size = 0;
    next_seq = 0;
    hwm = 0;
  }

(* (at, seq) earlier than heap slot [j]: primary key time, tie-break
   insertion order.  Pure int compares, inlined. *)
let lt_slot h (at : int) seq j =
  let aj = Array.unsafe_get h.at j in
  at < aj || (at = aj && seq < Array.unsafe_get h.seq j)

let set_slot h i at seq pidx =
  Array.unsafe_set h.at i at;
  Array.unsafe_set h.seq i seq;
  Array.unsafe_set h.pidx i pidx

let copy_slot h ~src ~dst =
  Array.unsafe_set h.at dst (Array.unsafe_get h.at src);
  Array.unsafe_set h.seq dst (Array.unsafe_get h.seq src);
  Array.unsafe_set h.pidx dst (Array.unsafe_get h.pidx src)

(* Float the hole at [i] towards the root until [(at, seq)] fits, then
   drop the element in. *)
let rec sift_up h i at seq pidx =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if lt_slot h at seq parent then begin
      copy_slot h ~src:parent ~dst:i;
      sift_up h parent at seq pidx
    end
    else set_slot h i at seq pidx
  end
  else set_slot h i at seq pidx
[@@ctslint.hotpath]

(* [i] earlier than [j], both known < size. *)
let lt_u h i j =
  let ai = Array.unsafe_get h.at i and aj = Array.unsafe_get h.at j in
  ai < aj || (ai = aj && Array.unsafe_get h.seq i < Array.unsafe_get h.seq j)

(* Smallest of the up-to-four children starting at [c0]; caller
   guarantees [c0 < size].  Unrolled so no [ref] cell is allocated. *)
let min_child h c0 =
  let sz = h.size in
  let s = c0 in
  let j = c0 + 1 in
  let s = if j < sz && lt_u h j s then j else s in
  let j = c0 + 2 in
  let s = if j < sz && lt_u h j s then j else s in
  let j = c0 + 3 in
  if j < sz && lt_u h j s then j else s

(* Sink the hole at [i] towards the leaves until [(at, seq)] fits. *)
let rec sift_down h i at seq pidx =
  let c0 = (4 * i) + 1 in
  if c0 >= h.size then set_slot h i at seq pidx
  else begin
    let smallest = min_child h c0 in
    if lt_slot h at seq smallest then set_slot h i at seq pidx
    else begin
      copy_slot h ~src:smallest ~dst:i;
      sift_down h smallest at seq pidx
    end
  end
[@@ctslint.hotpath]

let grow h fill_fn fill_v =
  let cap = Array.length h.at in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let int_grow a = Array.append a (Array.make (cap' - cap) 0) in
  h.at <- int_grow h.at;
  h.seq <- int_grow h.seq;
  h.pidx <- int_grow h.pidx;
  let pfn = Array.make cap' fill_fn in
  Array.blit h.pfn 0 pfn 0 cap;
  h.pfn <- pfn;
  let pv = Array.make cap' fill_v in
  Array.blit h.pv 0 pv 0 cap;
  h.pv <- pv;
  (* new payload slots cap .. cap'-1 all start free *)
  let free = Array.make cap' 0 in
  Array.blit h.free 0 free 0 h.nfree;
  for s = cap to cap' - 1 do
    free.(h.nfree + s - cap) <- s
  done;
  h.free <- free;
  h.nfree <- h.nfree + (cap' - cap)

let push h (at : Time.t) fn v =
  if h.size = Array.length h.at then
    (grow h fn v
    [@ctslint.allow
      "hotpath-alloc"
        "amortized capacity doubling; a steady-state push (pop rate = \
         push rate) never grows"]);
  (* claim a payload slot; the free stack is non-empty whenever
     size < capacity, because live slots and free slots partition
     [0, capacity) *)
  let nf = h.nfree - 1 in
  h.nfree <- nf;
  let slot = Array.unsafe_get h.free nf in
  Array.unsafe_set h.pfn slot fn;
  Array.unsafe_set h.pv slot v;
  let i = h.size in
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.size <- i + 1;
  if h.size > h.hwm then h.hwm <- h.size;
  sift_up h i (at :> int) seq slot
[@@ctslint.hotpath]

let min_time_exn h =
  if h.size = 0 then invalid_arg "Event_queue.min_time_exn: empty";
  (Obj.magic (Array.unsafe_get h.at 0 : int) : Time.t)
[@@ctslint.hotpath]
(* sound: Time.t = private int, and slot 0 was stored from a Time.t *)

(* Release the root's payload slot (scrubbing both lanes) and restore the
   heap invariant.  Shared tail of every pop flavour. *)
let drop_min h slot =
  Array.unsafe_set h.pfn slot (nil ());
  Array.unsafe_set h.pv slot (nil ());
  Array.unsafe_set h.free h.nfree slot;
  h.nfree <- h.nfree + 1;
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then
    sift_down h 0
      (Array.unsafe_get h.at last)
      (Array.unsafe_get h.seq last)
      (Array.unsafe_get h.pidx last)
[@@ctslint.hotpath]

(* Remove the earliest event and call [fn v] — the engine's per-event
   fast path.  The entry is removed (and its slot scrubbed and freed)
   before the call, so the callback may push into this very queue, and
   the payload does not outlive the event. *)
let fire_min_exn h =
  if h.size = 0 then invalid_arg "Event_queue.fire_min_exn: empty";
  let slot = Array.unsafe_get h.pidx 0 in
  let fn = Array.unsafe_get h.pfn slot in
  let v = Array.unsafe_get h.pv slot in
  drop_min h slot;
  (fn v
  [@ctslint.allow
    "hotpath-alloc"
      "the handler call is the certified region's boundary: what each \
       handler allocates is its own account, audited at its definition"])
[@@ctslint.hotpath]

let pop_min_exn h =
  if h.size = 0 then invalid_arg "Event_queue.pop_min_exn: empty";
  let slot = Array.unsafe_get h.pidx 0 in
  let fn = Array.unsafe_get h.pfn slot in
  let v = Array.unsafe_get h.pv slot in
  drop_min h slot;
  (fn, v)

let pop h =
  if h.size = 0 then None
  else begin
    let at = min_time_exn h in
    let fn, v = pop_min_exn h in
    Some (at, fn, v)
  end

let peek_time h = if h.size = 0 then None else Some (min_time_exn h)
let length h = h.size
let is_empty h = h.size = 0
let high_water h = h.hwm
let reset_high_water h = h.hwm <- h.size

(* Equal-time entries form a subtree rooted at 0 (an entry at the minimum
   time forces all its ancestors to the minimum too), so counting can
   prune every subtree whose root is later: O(ready), not O(size). *)
let rec count_eq h at i acc =
  if i >= h.size || h.at.(i) <> at then acc
  else
    let c = 4 * i in
    count_eq h at (c + 4)
      (count_eq h at (c + 3)
         (count_eq h at (c + 2) (count_eq h at (c + 1) (acc + 1))))

let ready_count h = if h.size = 0 then 0 else count_eq h h.at.(0) 0 0

(* Remove the entry at heap index [i], restoring the heap invariant.  The
   element moved into the hole may need to travel either direction. *)
let remove_index h i =
  let slot = h.pidx.(i) in
  let fn = h.pfn.(slot) in
  let v = h.pv.(slot) in
  h.pfn.(slot) <- nil ();
  h.pv.(slot) <- nil ();
  h.free.(h.nfree) <- slot;
  h.nfree <- h.nfree + 1;
  let last = h.size - 1 in
  h.size <- last;
  if i < last then begin
    let lat = h.at.(last) and lseq = h.seq.(last) and lp = h.pidx.(last) in
    (* The displaced element may belong above or below the hole; try the
       downward direction first, and if it never moved, float it up. *)
    sift_down h i lat lseq lp;
    if h.at.(i) = lat && h.seq.(i) = lseq then sift_up h i lat lseq lp
  end;
  (fn, v)

(* Indices of the ready set, pruned like [count_eq]; order unspecified. *)
let rec ready_indices h at i acc =
  if i >= h.size || h.at.(i) <> at then acc
  else
    let c = 4 * i in
    ready_indices h at (c + 4)
      (ready_indices h at (c + 3)
         (ready_indices h at (c + 2) (ready_indices h at (c + 1) (i :: acc))))

let pop_nth h n =
  if h.size = 0 then None
  else if n <= 0 then pop h
  else begin
    let at = min_time_exn h in
    let by_seq =
      List.sort
        (fun a b -> compare h.seq.(a) h.seq.(b))
        (ready_indices h (h.at.(0)) 0 [])
    in
    let n = min n (List.length by_seq - 1) in
    let fn, v = remove_index h (List.nth by_seq n) in
    Some (at, fn, v)
  end

let clear h =
  let n = nil () in
  for i = 0 to h.size - 1 do
    let slot = h.pidx.(i) in
    h.pfn.(slot) <- n;
    h.pv.(slot) <- n;
    h.free.(h.nfree) <- slot;
    h.nfree <- h.nfree + 1
  done;
  h.size <- 0
