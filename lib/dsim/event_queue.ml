(* Unboxed binary min-heap: three parallel arrays instead of an
   ['a entry option array].  [at] and [seq] hold immediates, so a push
   allocates nothing (the old layout boxed an [entry] inside an [option]
   per element — one allocation and two indirections on every comparison)
   and sifting compares against flat array slots.

   Slots at index >= size are junk: [ev] slots are scrubbed with [nil]
   when vacated so popped payloads do not survive their pop. *)

type 'a t = {
  mutable at : Time.t array;
  mutable seq : int array;
  mutable ev : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

(* Written into dead [ev] slots, never read.  Storing an immediate in a
   pointer array is always sound. *)
let nil : unit -> 'a = fun () -> Obj.magic 0

let create () =
  { at = [||]; seq = [||]; ev = [||]; size = 0; next_seq = 0 }

(* [i] earlier than [j]: primary key time, tie-break insertion order. *)
let lt h i j =
  match Time.compare h.at.(i) h.at.(j) with
  | 0 -> h.seq.(i) < h.seq.(j)
  | c -> c < 0

let swap h i j =
  let a = h.at.(i) and s = h.seq.(i) and e = h.ev.(i) in
  h.at.(i) <- h.at.(j);
  h.seq.(i) <- h.seq.(j);
  h.ev.(i) <- h.ev.(j);
  h.at.(j) <- a;
  h.seq.(j) <- s;
  h.ev.(j) <- e

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && lt h l !smallest then smallest := l;
  if r < h.size && lt h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h fill =
  let cap = Array.length h.at in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let at = Array.make cap' Time.epoch in
  let seq = Array.make cap' 0 in
  let ev = Array.make cap' fill in
  Array.blit h.at 0 at 0 h.size;
  Array.blit h.seq 0 seq 0 h.size;
  Array.blit h.ev 0 ev 0 h.size;
  h.at <- at;
  h.seq <- seq;
  h.ev <- ev

let push h at ev =
  if h.size = Array.length h.at then grow h ev;
  let i = h.size in
  h.at.(i) <- at;
  h.seq.(i) <- h.next_seq;
  h.ev.(i) <- ev;
  h.next_seq <- h.next_seq + 1;
  h.size <- i + 1;
  sift_up h i

let min_time_exn h =
  if h.size = 0 then invalid_arg "Event_queue.min_time_exn: empty";
  h.at.(0)

(* Remove the root without materializing an option or a tuple — the
   engine's per-event fast path. *)
let pop_min_exn h =
  if h.size = 0 then invalid_arg "Event_queue.pop_min_exn: empty";
  let ev = h.ev.(0) in
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    h.at.(0) <- h.at.(last);
    h.seq.(0) <- h.seq.(last);
    h.ev.(0) <- h.ev.(last)
  end;
  h.ev.(last) <- nil ();
  if last > 1 then sift_down h 0;
  ev

let pop h =
  if h.size = 0 then None
  else begin
    let at = h.at.(0) in
    Some (at, pop_min_exn h)
  end

let peek_time h = if h.size = 0 then None else Some h.at.(0)
let length h = h.size
let is_empty h = h.size = 0

(* Equal-time entries form a subtree rooted at 0 (an entry at the minimum
   time forces all its ancestors to the minimum too), so counting can
   prune every subtree whose root is later: O(ready), not O(size). *)
let rec count_eq h at i acc =
  if i >= h.size || Time.compare h.at.(i) at <> 0 then acc
  else count_eq h at ((2 * i) + 2) (count_eq h at ((2 * i) + 1) (acc + 1))

let ready_count h =
  if h.size = 0 then 0 else count_eq h h.at.(0) 0 0

(* Remove the entry at heap index [i], restoring the heap invariant.  The
   element moved into the hole may need to travel either direction. *)
let remove_index h i =
  let ev = h.ev.(i) in
  let last = h.size - 1 in
  h.size <- last;
  if i < last then begin
    h.at.(i) <- h.at.(last);
    h.seq.(i) <- h.seq.(last);
    h.ev.(i) <- h.ev.(last);
    sift_down h i;
    sift_up h i
  end;
  h.ev.(last) <- nil ();
  ev

(* Indices of the ready set, pruned like [count_eq]; order unspecified. *)
let rec ready_indices h at i acc =
  if i >= h.size || Time.compare h.at.(i) at <> 0 then acc
  else
    ready_indices h at
      ((2 * i) + 2)
      (ready_indices h at ((2 * i) + 1) (i :: acc))

let pop_nth h n =
  if h.size = 0 then None
  else if n <= 0 then pop h
  else begin
    let at = h.at.(0) in
    let by_seq =
      List.sort
        (fun a b -> compare h.seq.(a) h.seq.(b))
        (ready_indices h at 0 [])
    in
    let n = min n (List.length by_seq - 1) in
    Some (at, remove_index h (List.nth by_seq n))
  end

let clear h =
  let n = nil () in
  for i = 0 to h.size - 1 do
    h.ev.(i) <- n
  done;
  h.size <- 0
