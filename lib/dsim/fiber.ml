exception Not_in_fiber

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* Fiber identity: set while a fiber's code runs (including after every
   resumption), cleared around it.  Fibers are cooperative, so a simple
   save/restore discipline is enough.  Both cells are domain-local: each
   domain runs its own engine (Mc.Pool gives every worker domain a private
   simulator), and fiber identity must not bleed between them. *)
let next_id_key = Domain.DLS.new_key (fun () -> ref 0)

(* Stored as a plain int (0 = not in a fiber; real ids start at 1) so
   entering/leaving a fiber on every resume allocates nothing. *)
let current_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let current_id () =
  match !(Domain.DLS.get current_key) with 0 -> None | id -> Some id

let fresh_id () =
  let r = Domain.DLS.get next_id_key in
  incr r;
  !r

(* Hand-rolled [Fun.protect]: this wraps every fiber body and resumption,
   so the [finally] closure is worth avoiding. *)
let with_id id f =
  let current = Domain.DLS.get current_key in
  let prev = !current in
  current := id;
  match f () with
  | v ->
      current := prev;
      v
  | exception e ->
      current := prev;
      raise e

(* Fiber probes live inside closures that already exist (the resume
   thunk and the spawn thunk), so the disabled path adds nothing beyond
   the sink's load + branch; [eng] was already captured. *)
let probe_fiber eng ~start id =
  let s = Engine.obs eng in
  if s.Obs.Sink.active then begin
    Obs.Sink.count s
      (if start then Obs.Metrics.Fiber_spawns else Obs.Metrics.Fiber_switches);
    Obs.Sink.instant s
      ~ts_ns:(Time.to_ns (Engine.now eng))
      ~pid:0 ~sub:Obs.Subsystem.Dsim
      ~name:(if start then "fiber-start" else "fiber-resume")
      ~args:[ ("fiber", id) ]
  end;
  if s.Obs.Sink.rec_on then
    Obs.Sink.rec_event s
      ~kind:
        (if start then Obs.Recorder.k_fiber_spawn
         else Obs.Recorder.k_fiber_switch)
      ~ts_us:(Time.to_ns (Engine.now eng) / 1000)
      ~node:0 ~a:id ~b:0

let spawn eng f =
  let open Effect.Deep in
  let id = fresh_id () in
  let handler =
    {
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (b, _) continuation) ->
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Fiber: resume called twice"
                    else begin
                      resumed := true;
                      probe_fiber eng ~start:false id;
                      with_id id (fun () -> continue k ())
                    end
                  in
                  register resume)
          | _ -> None);
    }
  in
  Engine.schedule eng Time.Span.zero (fun () ->
      probe_fiber eng ~start:true id;
      with_id id (fun () -> try_with f () handler))

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> raise Not_in_fiber

let sleep eng d =
  let register resume = Engine.schedule eng d resume in
  suspend register

let yield eng = sleep eng Time.Span.zero
