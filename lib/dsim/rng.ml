(* State lives in a one-element int64 bigarray rather than a mutable
   record field: bigarray loads/stores of int64 compile to direct
   unboxed memory accesses, so the fused [bits] below runs
   allocation-free.  A [mutable state : int64] field would box a fresh
   Int64 (plus a write barrier) on every draw — measurable on the model
   checker's hot path, which draws a few hundred times per schedule. *)
type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 1 in
  Bigarray.Array1.unsafe_set a 0 seed;
  a

let state (t : t) = Bigarray.Array1.unsafe_get t 0
let set_state (t : t) s = Bigarray.Array1.unsafe_set t 0 s

let int64 t =
  let s = Int64.add (state t) golden_gamma in
  set_state t s;
  mix64 s

let split t = create (mix64 (int64 t))
let copy t = create (state t)

(* [int64] followed by the top-bit drop, with every intermediate kept in
   a local so the compiler's let-unboxing leaves no boxed Int64 behind.
   Draw-for-draw identical to [Int64.to_int (shift_right_logical (int64
   t) 2)]. *)
let bits (t : t) =
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
  Bigarray.Array1.unsafe_set t 0 s;
  let z =
    Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)
[@@ctslint.hotpath]

(* Rejection sampling keeps the draw exactly uniform.  Top-level so the
   rejection loop needs no closure. *)
let rec draw_below t limit lo n =
  let b = bits t in
  if b >= limit then draw_below t limit lo n else lo + (b mod n)

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  let n = hi - lo + 1 in
  let limit = 0x3FFF_FFFF_FFFF_FFFF / n * n in
  draw_below t limit lo n

let float t x = float_of_int (bits t) /. 4.611686018427387904e18 *. x
let bool t = Int64.logand (int64 t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int_range t 0 (List.length l - 1))

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_range t 0 i in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
