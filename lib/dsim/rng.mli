(** Deterministic, splittable pseudo-random number generator.

    A thin splitmix64 implementation.  Every stochastic component of the
    simulation draws from its own split stream so that adding a new consumer
    never perturbs the draws seen by existing consumers, and a run is fully
    determined by the root seed. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator stream. *)

val split : t -> t
(** [split t] derives an independent stream; [t] advances by one draw. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val state : t -> int64
(** Internal splitmix64 state.  Together with {!set_state} this lets a
    snapshot/restore facility (e.g. [Mc.Harness] reuse) save a stream and
    later rewind it exactly; the state is the complete description of all
    future draws. *)

val set_state : t -> int64 -> unit
(** [set_state t s] rewinds [t] to a previously observed {!state} (or to a
    fresh seed): the next draws equal those of [create s]. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val bits : t -> int
(** 62 uniform non-negative bits. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] draws uniformly from the inclusive range
    [\[lo, hi\]].  Raises [Invalid_argument] if [lo > hi]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [\[0, x)]. *)

val bool : t -> bool

val choose : t -> 'a list -> 'a
(** Uniform choice.  Raises [Invalid_argument] on the empty list. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed draw (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
