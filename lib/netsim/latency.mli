(** Packet latency models.

    The paper's testbed is a quiet 100 Mb/s Ethernet: the hop latency
    distribution has a sharp peak (token-passing time peak density ≈ 51 µs,
    which includes protocol processing) and a rare long tail caused by OS
    scheduling.  {!calibrated} reproduces that shape. *)

type t =
  | Constant of Dsim.Time.Span.t
  | Uniform of { lo : Dsim.Time.Span.t; hi : Dsim.Time.Span.t }
  | Gaussian of { mu : Dsim.Time.Span.t; sigma : Dsim.Time.Span.t }
      (** truncated at 1 µs so latency is always positive *)
  | Mixture of (float * t) list
      (** weighted mixture; weights need not be normalized *)

val calibrated : wire:Dsim.Time.Span.t -> t
(** The testbed model: a Gaussian bulk centred on [wire] (sd 3 µs) with a
    3 % exponential-tail component (mean +150 µs) for scheduling stalls. *)

val default_wire : Dsim.Time.Span.t
(** 26 µs: one UDP hop including send/receive processing, calibrated so a
    4-node token rotation costs ≈ 4 × 51 µs as measured in the paper's
    reference [20] (each hop = wire + ≈ 25 µs token processing). *)

val wan : wire:Dsim.Time.Span.t -> t
(** Inter-site (shard-to-shard) link model for the hierarchical bridge:
    a Gaussian bulk around [wire] with a proportional spread and a 7 %
    congestion-tail component around 4 × [wire].  Distinct from
    {!calibrated} so intra-shard and inter-shard hops can be profiled
    independently. *)

val default_wan_wire : Dsim.Time.Span.t
(** 350 µs: one metro/regional WAN hop, ≈ 13 × the LAN wire time. *)

val sample : Dsim.Rng.t -> t -> Dsim.Time.Span.t
(** Draw a latency; always >= 1 µs. *)
