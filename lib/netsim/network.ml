type config = { latency : Latency.t; loss : float }

let default_config =
  { latency = Latency.calibrated ~wire:Latency.default_wire; loss = 0. }

type 'a port = { handler : src:Node_id.t -> 'a -> unit }

type 'a t = {
  eng : Dsim.Engine.t;
  rng : Dsim.Rng.t;
  mutable cfg : config;
  ports : (Node_id.t, 'a port) Hashtbl.t;
  mutable members : Node_id.t list;
      (* attached nodes, sorted ascending — cached so [broadcast] does not
         re-sort the member set per multicast *)
  mutable groups : Node_id.Set.t list; (* empty list = no partition *)
  sent : (Node_id.t, int) Hashtbl.t;
  delivered : (Node_id.t, int) Hashtbl.t;
  last_delivery : (Node_id.t, (Node_id.t, Dsim.Time.t) Hashtbl.t) Hashtbl.t;
      (* per (src, dst) path: FIFO ordering, like a switched LAN.  Nested
         by src so a lookup hashes two immediates instead of boxing a
         tuple per packet. *)
  mutable dropped : int;
  mutable tracer : 'a Trace.t option;
  mutable delay_hook : (src:Node_id.t -> dst:Node_id.t -> Dsim.Time.Span.t) option;
}

let create eng cfg =
  if cfg.loss < 0. || cfg.loss >= 1. then
    invalid_arg "Network.create: loss out of [0, 1)";
  {
    eng;
    rng = Dsim.Rng.split (Dsim.Engine.rng eng);
    cfg;
    ports = Hashtbl.create 16;
    members = [];
    groups = [];
    sent = Hashtbl.create 16;
    delivered = Hashtbl.create 16;
    last_delivery = Hashtbl.create 64;
    dropped = 0;
    tracer = None;
    delay_hook = None;
  }

let attach t id handler =
  if Hashtbl.mem t.ports id then
    invalid_arg
      (Format.asprintf "Network.attach: %a already attached" Node_id.pp id);
  Hashtbl.replace t.ports id { handler };
  t.members <- List.sort Node_id.compare (id :: t.members)

let detach t id =
  Hashtbl.remove t.ports id;
  t.members <- List.filter (fun n -> not (Node_id.equal n id)) t.members

let attached t id = Hashtbl.mem t.ports id
let nodes t = t.members

(* Call sites guard with [tracing] so the trace event (a boxed record per
   packet) is never even constructed when no tracer is attached. *)
let tracing t = t.tracer <> None

let trace_event t ev =
  match t.tracer with
  | Some tr -> Trace.record tr ~at:(Dsim.Engine.now t.eng) ev
  | None -> ()

let bump tbl id =
  Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))

let reachable t ~src ~dst =
  match t.groups with
  | [] -> true
  | groups ->
      List.exists
        (fun g -> Node_id.Set.mem src g && Node_id.Set.mem dst g)
        groups

let paths_from t src =
  match Hashtbl.find_opt t.last_delivery src with
  | Some inner -> inner
  | None ->
      let inner = Hashtbl.create 8 in
      Hashtbl.replace t.last_delivery src inner;
      inner

let deliver t ~src ~dst payload =
  if reachable t ~src ~dst then
    if t.cfg.loss > 0. && Dsim.Rng.float t.rng 1.0 < t.cfg.loss then begin
      t.dropped <- t.dropped + 1;
      if tracing t then
        trace_event t
          (Trace.Dropped { src; dst; payload; reason = Trace.Loss })
    end
    else begin
      let lat = Latency.sample t.rng t.cfg.latency in
      (* Controller-directed extra delay (schedule exploration) is added
         before the FIFO bump below, so the per-path ordering guarantee
         holds even for perturbed packets. *)
      let lat =
        match t.delay_hook with
        | Some hook -> Dsim.Time.Span.add lat (hook ~src ~dst)
        | None -> lat
      in
      let at = Dsim.Time.add (Dsim.Engine.now t.eng) lat in
      let paths = paths_from t src in
      let at =
        match Hashtbl.find_opt paths dst with
        | Some prev when Dsim.Time.(at <= prev) ->
            Dsim.Time.add prev (Dsim.Time.Span.of_ns 1)
        | _ -> at
      in
      Hashtbl.replace paths dst at;
      Dsim.Engine.schedule_at t.eng at (fun () ->
          (* The destination may have crashed while the packet was in
             flight. *)
          match Hashtbl.find_opt t.ports dst with
          | None ->
              t.dropped <- t.dropped + 1;
              if tracing t then
                trace_event t
                  (Trace.Dropped { src; dst; payload; reason = Trace.No_port })
          | Some port ->
              bump t.delivered dst;
              if tracing t then
                trace_event t (Trace.Delivered { src; dst; payload });
              port.handler ~src payload)
    end
  else begin
    t.dropped <- t.dropped + 1;
    if tracing t then
      trace_event t
        (Trace.Dropped { src; dst; payload; reason = Trace.Partitioned })
  end

let send t ~src ~dst payload =
  bump t.sent src;
  if tracing t then trace_event t (Trace.Sent { src; dst = Some dst; payload });
  deliver t ~src ~dst payload

let broadcast t ~src payload =
  bump t.sent src;
  if tracing t then trace_event t (Trace.Sent { src; dst = None; payload });
  List.iter
    (fun dst ->
      if not (Node_id.equal dst src) then deliver t ~src ~dst payload)
    t.members

let set_loss t loss =
  if loss < 0. || loss >= 1. then invalid_arg "Network.set_loss: out of [0, 1)";
  t.cfg <- { t.cfg with loss }

let partition t groups =
  t.groups <- List.map Node_id.Set.of_list groups

let heal t = t.groups <- []

let stats t ~sent id =
  let tbl = if sent then t.sent else t.delivered in
  Option.value ~default:0 (Hashtbl.find_opt tbl id)

let packets_dropped t = t.dropped
let attach_trace t tr = t.tracer <- Some tr
let detach_trace t = t.tracer <- None
let set_delay_hook t hook = t.delay_hook <- hook
