type config = { latency : Latency.t; loss : float }

let default_config =
  { latency = Latency.calibrated ~wire:Latency.default_wire; loss = 0. }

type 'a port = { handler : src:Node_id.t -> 'a -> unit }

(* Pooled delivery cells.  Scheduling a packet used to allocate one
   closure per packet capturing (t, src, dst, payload); instead the
   fields are parked in a recycled cell and handed to the engine's
   zero-allocation [schedule_call] path together with a top-level fire
   function.  [d_next == cell] marks a cell in flight (off the free
   list); the per-network [nil_d] sentinel marks the empty list.

   [bcell] is the batched variant used by {!broadcast_many}: one cell
   carries every message bound for one destination at one delivery
   instant, so a Totem token visit that emits k messages costs one
   queued event per destination rather than k.  Payloads are kept as
   [Obj.t] so the growable buffer is a uniform array even when ['a]
   would be float (a flat float array could not be scrubbed with an
   immediate). *)
type 'a dcell = {
  d_net : 'a t;
  mutable d_src : Node_id.t;
  mutable d_dst : Node_id.t;
  mutable d_payload : 'a;
  mutable d_next : 'a dcell;
}

and 'a bcell = {
  b_net : 'a t;
  mutable b_src : Node_id.t;
  mutable b_dst : Node_id.t;
  mutable b_payloads : Obj.t array;
  mutable b_n : int;
  mutable b_time : Dsim.Time.t;
  mutable b_next : 'a bcell;
}

and 'a t = {
  eng : Dsim.Engine.t;
  rng : Dsim.Rng.t;
  mutable cfg : config;
  mutable ports : 'a port option array;
      (* indexed by node id — ids are small dense ints, so arrays beat
         hash tables on the per-packet lookup paths *)
  mutable members : Node_id.t array;
      (* attached nodes, sorted ascending in slots [0 .. n_members-1]
         (slots beyond are junk).  The sorted invariant is maintained
         incrementally — binary-search insert on attach, blit-out on
         detach — so a join costs one shift, not the former per-join
         [List.sort] of the whole membership *)
  mutable n_members : int;
  mutable group_mask : int array;
      (* partition as a per-node-id bitmask of group membership: a packet
         is deliverable iff the masks intersect.  Empty array = no
         partition; ids beyond the array (or with mask 0) are in no group
         and therefore isolated.  Rebuilt wholesale by [partition], read
         with one [land] per packet *)
  mutable group_sets : Node_id.Set.t list;
      (* overflow representation when a partition has more groups than
         mask bits — the legacy set-scan path; empty otherwise *)
  mutable sent : int array; (* per-node sent counter, indexed by id *)
  mutable delivered : int array;
  mutable last_delivery : int array array;
      (* per (src, dst) path: last delivery instant in ns ([-1] = never),
         FIFO ordering like a switched LAN.  Rows are created lazily per
         src and sized to the port table. *)
  mutable dropped : int;
  mutable tracer : 'a Trace.t option;
  mutable delay_hook : (src:Node_id.t -> dst:Node_id.t -> Dsim.Time.Span.t) option;
  nil_d : 'a dcell;
  mutable free_d : 'a dcell;
  nil_b : 'a bcell;
  mutable free_b : 'a bcell;
}

let obj_zero = Obj.repr 0

(* Sentinels are never fired, so their net/src/dst slots are never read;
   an immediate 0 is a safe placeholder for any of them. *)
let make_nil_dcell () : 'a dcell =
  let rec c =
    {
      d_net = Obj.magic 0;
      d_src = Obj.magic 0;
      d_dst = Obj.magic 0;
      d_payload = Obj.magic 0;
      d_next = c;
    }
  in
  c

let make_nil_bcell () : 'a bcell =
  let rec c =
    {
      b_net = Obj.magic 0;
      b_src = Obj.magic 0;
      b_dst = Obj.magic 0;
      b_payloads = [||];
      b_n = 0;
      b_time = Dsim.Time.epoch;
      b_next = c;
    }
  in
  c

let create eng cfg =
  if cfg.loss < 0. || cfg.loss >= 1. then
    invalid_arg "Network.create: loss out of [0, 1)";
  let nil_d = make_nil_dcell () and nil_b = make_nil_bcell () in
  {
    eng;
    rng = Dsim.Rng.split (Dsim.Engine.rng eng);
    cfg;
    ports = [||];
    members = [||];
    n_members = 0;
    group_mask = [||];
    group_sets = [];
    sent = [||];
    delivered = [||];
    last_delivery = [||];
    dropped = 0;
    tracer = None;
    delay_hook = None;
    nil_d;
    free_d = nil_d;
    nil_b;
    free_b = nil_b;
  }

let rng t = t.rng

let grow_to len a fill =
  let n = Array.length a in
  if len <= n then a
  else begin
    let a' = Array.make (max len (2 * n)) fill in
    Array.blit a 0 a' 0 n;
    a'
  end

(* Make every per-node table cover node [id]. *)
let ensure_node t id =
  let i = Node_id.to_int id in
  if i >= Array.length t.ports then begin
    t.ports <- grow_to (i + 1) t.ports None;
    t.sent <- grow_to (i + 1) t.sent 0;
    t.delivered <- grow_to (i + 1) t.delivered 0
  end

let port_of t id =
  let i = Node_id.to_int id in
  if i < Array.length t.ports then Array.unsafe_get t.ports i else None

(* Index of the first live member >= [id] (so [n_members] when every
   member is smaller): the insertion slot for attach, the candidate slot
   for detach. *)
let member_slot t id =
  let lo = ref 0 and hi = ref t.n_members in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Node_id.compare (Array.unsafe_get t.members mid) id < 0 then
      lo := mid + 1
    else hi := mid
  done;
  !lo

let attach t id handler =
  ensure_node t id;
  if port_of t id <> None then
    invalid_arg
      (Format.asprintf "Network.attach: %a already attached" Node_id.pp id);
  t.ports.(Node_id.to_int id) <- Some { handler };
  let n = t.n_members in
  if n = Array.length t.members then begin
    let a = Array.make (if n = 0 then 8 else 2 * n) id in
    Array.blit t.members 0 a 0 n;
    t.members <- a
  end;
  let i = member_slot t id in
  Array.blit t.members i t.members (i + 1) (n - i);
  t.members.(i) <- id;
  t.n_members <- n + 1

let detach t id =
  let i = Node_id.to_int id in
  if i < Array.length t.ports then t.ports.(i) <- None;
  let s = member_slot t id in
  if s < t.n_members && Node_id.equal t.members.(s) id then begin
    Array.blit t.members (s + 1) t.members s (t.n_members - s - 1);
    t.n_members <- t.n_members - 1
  end

let attached t id = port_of t id <> None
let nodes t = List.init t.n_members (fun i -> t.members.(i))

(* Call sites guard with [tracing] so the trace event (a boxed record per
   packet) is never even constructed when neither the legacy [Trace.t]
   tracer nor the engine's obs sink is active — the single-check gating
   discipline the whole stack now follows. *)
let tracing t =
  ((t.tracer != None)
  [@ctslint.allow
    "phys-equality"
      "None is immediate, so != is <> without the polymorphic-compare \
       call; this gate runs once per packet"])
  || (Dsim.Engine.obs t.eng).Obs.Sink.active

(* Wall-time attribution sites (see [Obs.Attrib]): self time of packet
   delivery, including the receive handler unless that handler is itself
   an attributed region (then nesting subtracts it). *)
let at_deliver = Obs.Attrib.site ~sub:Obs.Subsystem.Netsim ~name:"deliver"

let at_deliver_batch =
  Obs.Attrib.site ~sub:Obs.Subsystem.Netsim ~name:"deliver-batch"

let at_bcast_many =
  Obs.Attrib.site ~sub:Obs.Subsystem.Netsim ~name:"broadcast-many"

let reason_code = function
  | Trace.Loss -> 0
  | Trace.Partitioned -> 1
  | Trace.No_port -> 2

(* Flight-recorder emission is separate from [trace_event]: the trace
   path boxes a [Trace.event] per packet (acceptable because [tracing]
   gates it), but the recorder must stay attached in runs where that
   boxing is unaffordable.  All-int helper, gate inside — a disabled
   call is the sink load plus one branch. *)
let rec_net t ~kind ~node ~a ~b =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.rec_on then
    Obs.Sink.rec_event s ~kind
      ~ts_us:(Dsim.Time.to_ns (Dsim.Engine.now t.eng) / 1000)
      ~node ~a ~b
[@@inline] [@@ctslint.hotpath]

let rec_sent t ~src ~dst =
  rec_net t ~kind:Obs.Recorder.k_send ~node:(Node_id.to_int src) ~a:dst ~b:0
[@@inline] [@@ctslint.hotpath]

let rec_delivered t ~src ~dst ~pos =
  rec_net t ~kind:Obs.Recorder.k_deliver ~node:(Node_id.to_int dst)
    ~a:(Node_id.to_int src) ~b:pos
[@@inline] [@@ctslint.hotpath]

let rec_dropped t ~src ~dst ~reason =
  rec_net t ~kind:Obs.Recorder.k_drop ~node:(Node_id.to_int dst)
    ~a:(Node_id.to_int src) ~b:reason
[@@inline] [@@ctslint.hotpath]

(* Unified emission: the bounded packet trace keeps its historical format
   (tests and [Mc.Explore.packet_log] read it unchanged) while the same
   event also reaches the obs sink as netsim instants + counters.  [pos]
   tags a batched delivery with its position inside the batch (-1 =
   unbatched), so every message a batch absorbs still gets one record of
   its own — per-message drop accounting stays exact. *)
let trace_event ?(pos = -1) t ev =
  (match t.tracer with
  | Some tr -> Trace.record tr ~at:(Dsim.Engine.now t.eng) ev
  | None -> ());
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then begin
    let ts_ns = Dsim.Time.to_ns (Dsim.Engine.now t.eng) in
    match ev with
    | Trace.Sent { src; dst; _ } ->
        Obs.Sink.count s Obs.Metrics.Net_sent;
        Obs.Sink.instant s ~ts_ns ~pid:(Node_id.to_int src)
          ~sub:Obs.Subsystem.Netsim ~name:"send"
          ~args:
            (match dst with
            | Some d -> [ ("dst", Node_id.to_int d) ]
            | None -> [])
    | Trace.Delivered { src; dst; _ } ->
        Obs.Sink.count s Obs.Metrics.Net_delivered;
        let args =
          if pos >= 0 then [ ("src", Node_id.to_int src); ("batch_pos", pos) ]
          else [ ("src", Node_id.to_int src) ]
        in
        Obs.Sink.instant s ~ts_ns ~pid:(Node_id.to_int dst)
          ~sub:Obs.Subsystem.Netsim ~name:"deliver" ~args
    | Trace.Dropped { src; dst; reason; _ } ->
        Obs.Sink.count s Obs.Metrics.Net_dropped;
        let args =
          if pos >= 0 then
            [
              ("src", Node_id.to_int src);
              ("reason", reason_code reason);
              ("batch_pos", pos);
            ]
          else [ ("src", Node_id.to_int src); ("reason", reason_code reason) ]
        in
        Obs.Sink.instant s ~ts_ns ~pid:(Node_id.to_int dst)
          ~sub:Obs.Subsystem.Netsim ~name:"drop" ~args
  end

let bump_sent t id =
  ensure_node t id;
  let i = Node_id.to_int id in
  t.sent.(i) <- t.sent.(i) + 1

(* Only called once [port_of] found the destination, so [id] is in range. *)
let bump_delivered t id =
  let i = Node_id.to_int id in
  Array.unsafe_set t.delivered i (Array.unsafe_get t.delivered i + 1)

let reachable t ~src ~dst =
  match t.group_sets with
  | _ :: _ as groups ->
      List.exists
        (fun g -> Node_id.Set.mem src g && Node_id.Set.mem dst g)
        groups
  | [] ->
      let m = t.group_mask in
      let len = Array.length m in
      len = 0
      ||
      let i = Node_id.to_int src and j = Node_id.to_int dst in
      i < len && j < len
      && Array.unsafe_get m i land Array.unsafe_get m j <> 0

(* The FIFO row for [src], sized to the port table; cells hold the last
   delivery instant in ns, [-1] when the path is untouched. *)
let paths_from t src =
  let i = Node_id.to_int src in
  if i >= Array.length t.last_delivery then
    t.last_delivery <- grow_to (i + 1) t.last_delivery [||];
  let row = t.last_delivery.(i) in
  let want = Array.length t.ports in
  if Array.length row < want then begin
    let row = grow_to want row (-1) in
    t.last_delivery.(i) <- row;
    row
  end
  else row

let path_prev (row : int array) dst =
  let j = Node_id.to_int dst in
  if j < Array.length row then Array.unsafe_get row j else -1

let path_set (row : int array) dst ns =
  Array.unsafe_set row (Node_id.to_int dst) ns

let acquire_dcell t ~src ~dst payload =
  let c = t.free_d in
  let c =
    if
      (c != t.nil_d)
      [@ctslint.allow
        "phys-equality"
          "pooled nil sentinel: cell identity marks the empty free list"]
    then begin
      t.free_d <- c.d_next;
      c.d_next <- c;
      c
    end
    else
      let rec fresh =
        {
          d_net = t;
          d_src = src;
          d_dst = dst;
          d_payload = payload;
          d_next = fresh;
        }
      in
      fresh
  in
  c.d_src <- src;
  c.d_dst <- dst;
  c.d_payload <- payload;
  c

(* Fires as a pooled engine call: deliver one packet, then recycle the
   cell.  The payload is scrubbed and the cell released {e before} the
   handler runs so a handler that immediately sends can reuse it. *)
let dcell_fire (c : 'a dcell) =
  let t = c.d_net in
  let src = c.d_src and dst = c.d_dst and payload = c.d_payload in
  c.d_payload <- Obj.magic 0;
  c.d_next <- t.free_d;
  t.free_d <- c;
  let s = Dsim.Engine.obs t.eng in
  Obs.Sink.attr_enter s at_deliver;
  (* The destination may have crashed while the packet was in flight. *)
  (match port_of t dst with
  | None ->
      t.dropped <- t.dropped + 1;
      rec_dropped t ~src ~dst ~reason:2;
      if tracing t then
        trace_event t (Trace.Dropped { src; dst; payload; reason = Trace.No_port })
  | Some port ->
      bump_delivered t dst;
      rec_delivered t ~src ~dst ~pos:(-1);
      if tracing t then trace_event t (Trace.Delivered { src; dst; payload });
      port.handler ~src payload);
  Obs.Sink.attr_leave s

let deliver_extra t ~extra ~src ~dst payload =
  if reachable t ~src ~dst then
    if t.cfg.loss > 0. && Dsim.Rng.float t.rng 1.0 < t.cfg.loss then begin
      t.dropped <- t.dropped + 1;
      rec_dropped t ~src ~dst ~reason:0;
      if tracing t then
        trace_event t
          (Trace.Dropped { src; dst; payload; reason = Trace.Loss });
      false
    end
    else begin
      let lat = Dsim.Time.Span.add extra (Latency.sample t.rng t.cfg.latency) in
      (* Controller-directed extra delay (schedule exploration) is added
         before the FIFO bump below, so the per-path ordering guarantee
         holds even for perturbed packets. *)
      let lat =
        match t.delay_hook with
        | Some hook -> Dsim.Time.Span.add lat (hook ~src ~dst)
        | None -> lat
      in
      let at = Dsim.Time.add (Dsim.Engine.now t.eng) lat in
      ensure_node t dst;
      let row = paths_from t src in
      let prev = path_prev row dst in
      let at_ns =
        let ns = Dsim.Time.to_ns at in
        if ns <= prev then prev + 1 else ns
      in
      path_set row dst at_ns;
      Dsim.Engine.schedule_call_at t.eng (Dsim.Time.of_ns at_ns) dcell_fire
        (acquire_dcell t ~src ~dst payload);
      true
    end
  else begin
    t.dropped <- t.dropped + 1;
    rec_dropped t ~src ~dst ~reason:1;
    if tracing t then
      trace_event t
        (Trace.Dropped { src; dst; payload; reason = Trace.Partitioned });
    false
  end

let deliver t ~src ~dst payload =
  deliver_extra t ~extra:Dsim.Time.Span.zero ~src ~dst payload

let send_tracked t ~src ~dst payload =
  bump_sent t src;
  rec_sent t ~src ~dst:(Node_id.to_int dst);
  if tracing t then trace_event t (Trace.Sent { src; dst = Some dst; payload });
  deliver t ~src ~dst payload

let send_tracked_after t ~delay ~src ~dst payload =
  bump_sent t src;
  rec_sent t ~src ~dst:(Node_id.to_int dst);
  if tracing t then trace_event t (Trace.Sent { src; dst = Some dst; payload });
  deliver_extra t ~extra:delay ~src ~dst payload

let send t ~src ~dst payload =
  ignore (send_tracked t ~src ~dst payload : bool)

let broadcast t ~src payload =
  bump_sent t src;
  rec_sent t ~src ~dst:(-1);
  if tracing t then trace_event t (Trace.Sent { src; dst = None; payload });
  for i = 0 to t.n_members - 1 do
    let dst = Array.unsafe_get t.members i in
    if not (Node_id.equal dst src) then
      ignore (deliver t ~src ~dst payload : bool)
  done

let acquire_bcell t ~src ~dst ~at =
  let b = t.free_b in
  let b =
    if
      (b != t.nil_b)
      [@ctslint.allow
        "phys-equality"
          "pooled nil sentinel: cell identity marks the empty free list"]
    then begin
      t.free_b <- b.b_next;
      b.b_next <- b;
      b
    end
    else
      let rec fresh =
        {
          b_net = t;
          b_src = src;
          b_dst = dst;
          b_payloads = Array.make 8 obj_zero;
          b_n = 0;
          b_time = at;
          b_next = fresh;
        }
      in
      fresh
  in
  b.b_src <- src;
  b.b_dst <- dst;
  b.b_time <- at;
  b

let bcell_append b payload =
  let cap = Array.length b.b_payloads in
  if b.b_n = cap then begin
    let a = Array.make (if cap = 0 then 8 else 2 * cap) obj_zero in
    Array.blit b.b_payloads 0 a 0 b.b_n;
    b.b_payloads <- a
  end;
  Array.unsafe_set b.b_payloads b.b_n (Obj.repr payload);
  b.b_n <- b.b_n + 1

(* Deliver the whole batch in append order.  The port is re-checked per
   message because a handler may detach the destination mid-batch; the
   cell is recycled only after the loop — while in flight it is off the
   free list, so reentrant broadcasts from handlers cannot corrupt it. *)
let bcell_fire (b : 'a bcell) =
  let t = b.b_net in
  let src = b.b_src and dst = b.b_dst in
  let n = b.b_n in
  let s = Dsim.Engine.obs t.eng in
  Obs.Sink.attr_enter s at_deliver_batch;
  for i = 0 to n - 1 do
    let payload : 'a = Obj.obj (Array.unsafe_get b.b_payloads i) in
    (* Re-checked per message, and recorded per message: a handler that
       detaches the destination mid-batch turns exactly the remaining
       messages into [No_port] drops, each with its own record. *)
    match port_of t dst with
    | None ->
        t.dropped <- t.dropped + 1;
        rec_dropped t ~src ~dst ~reason:2;
        if tracing t then
          trace_event ~pos:i t
            (Trace.Dropped { src; dst; payload; reason = Trace.No_port })
    | Some port ->
        bump_delivered t dst;
        rec_delivered t ~src ~dst ~pos:i;
        if tracing t then
          trace_event ~pos:i t (Trace.Delivered { src; dst; payload });
        port.handler ~src payload
  done;
  for i = 0 to n - 1 do
    Array.unsafe_set b.b_payloads i obj_zero
  done;
  b.b_n <- 0;
  b.b_next <- t.free_b;
  t.free_b <- b;
  Obs.Sink.attr_leave s

let broadcast_many t ~src payloads ~n =
  if n < 0 || n > Array.length payloads then
    invalid_arg "Network.broadcast_many: n out of range";
  if n = 1 then broadcast t ~src payloads.(0)
  else if n > 0 then begin
    let s = Dsim.Engine.obs t.eng in
    Obs.Sink.attr_enter s at_bcast_many;
    for i = 0 to n - 1 do
      bump_sent t src;
      rec_sent t ~src ~dst:(-1);
      if tracing t then
        trace_event t (Trace.Sent { src; dst = None; payload = payloads.(i) })
    done;
    let now_ns = Dsim.Time.to_ns (Dsim.Engine.now t.eng) in
    let paths = paths_from t src in
    for mi = 0 to t.n_members - 1 do
      let dst = Array.unsafe_get t.members mi in
      (if not (Node_id.equal dst src) then begin
          if reachable t ~src ~dst then begin
            (* Per-destination batching: consecutive messages whose raw
               delivery instant does not exceed the open batch's instant
               ride in the same queued event (delivered in send order, so
               path FIFO holds); a later instant closes the batch and
               opens a new one, subject to the same no-overtaking bump as
               the unbatched path. *)
            let batch = ref t.nil_b in
            let clock = ref (path_prev paths dst) in
            for i = 0 to n - 1 do
              let payload = payloads.(i) in
              if t.cfg.loss > 0. && Dsim.Rng.float t.rng 1.0 < t.cfg.loss
              then begin
                t.dropped <- t.dropped + 1;
                rec_dropped t ~src ~dst ~reason:0;
                if tracing t then
                  trace_event t
                    (Trace.Dropped { src; dst; payload; reason = Trace.Loss })
              end
              else begin
                let lat = Latency.sample t.rng t.cfg.latency in
                let lat =
                  match t.delay_hook with
                  | Some hook -> Dsim.Time.Span.add lat (hook ~src ~dst)
                  | None -> lat
                in
                let raw = now_ns + Dsim.Time.Span.to_ns lat in
                let b = !batch in
                if
                  ((b != t.nil_b)
                  [@ctslint.allow
                    "phys-equality"
                      "nil sentinel marks no-open-batch; identity is the \
                       point"])
                  && raw <= Dsim.Time.to_ns b.b_time
                then
                  bcell_append b payload
                else begin
                  let at_ns = if raw <= !clock then !clock + 1 else raw in
                  let at = Dsim.Time.of_ns at_ns in
                  let nb = acquire_bcell t ~src ~dst ~at in
                  bcell_append nb payload;
                  Dsim.Engine.schedule_call_at t.eng at bcell_fire nb;
                  batch := nb;
                  clock := at_ns
                end
              end
            done;
            if !clock >= 0 then path_set paths dst !clock
          end
          else begin
            for i = 0 to n - 1 do
              t.dropped <- t.dropped + 1;
              if tracing t then
                trace_event t
                  (Trace.Dropped
                     { src; dst; payload = payloads.(i);
                       reason = Trace.Partitioned })
            done
          end
        end)
    done;
    Obs.Sink.attr_leave s
  end

let set_loss t loss =
  if loss < 0. || loss >= 1. then invalid_arg "Network.set_loss: out of [0, 1)";
  t.cfg <- { t.cfg with loss }

(* One bit per group; the top bit stays clear so masks are plain
   non-negative immediates. *)
let mask_bits = Sys.int_size - 2

let partition t groups =
  let ng = List.length groups in
  if ng = 0 then begin
    (* historical behaviour: an empty partition heals *)
    t.group_mask <- [||];
    t.group_sets <- []
  end
  else if ng > mask_bits then begin
    t.group_mask <- [||];
    t.group_sets <- List.map Node_id.Set.of_list groups
  end
  else begin
    let top =
      List.fold_left
        (List.fold_left (fun acc id -> max acc (Node_id.to_int id)))
        (-1) groups
    in
    (* at least one slot, so an all-empty partition still isolates
       everyone instead of looking like "no partition" *)
    let m = Array.make (max 1 (top + 1)) 0 in
    List.iteri
      (fun g ids ->
        let bit = 1 lsl g in
        List.iter (fun id -> m.(Node_id.to_int id) <- m.(Node_id.to_int id) lor bit) ids)
      groups;
    t.group_mask <- m;
    t.group_sets <- []
  end

let heal t =
  t.group_mask <- [||];
  t.group_sets <- []

let stats t ~sent id =
  let a = if sent then t.sent else t.delivered in
  let i = Node_id.to_int id in
  if i < Array.length a then a.(i) else 0

let packets_dropped t = t.dropped
let attach_trace t tr = t.tracer <- Some tr
let detach_trace t = t.tracer <- None
let set_delay_hook t hook = t.delay_hook <- hook
