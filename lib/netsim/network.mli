(** Simulated LAN carrying opaque ['a] payloads.

    Supports unicast and physical broadcast (the Ethernet segment of the
    paper's testbed), per-packet latency drawn from a {!Latency.t} model,
    independent packet loss, and network partitions with remerge.  Delivery on
    each (source, destination) path is FIFO, as on a switched LAN: a packet
    never overtakes an earlier packet on the same path, but there is no
    ordering across paths, and packets can be lost — exactly what Totem
    assumes underneath. *)

type 'a t

type config = {
  latency : Latency.t;
  loss : float;  (** independent per-packet loss probability in [0, 1) *)
}

val default_config : config
(** Calibrated latency, no loss. *)

val create : Dsim.Engine.t -> config -> 'a t

val rng : 'a t -> Dsim.Rng.t
(** The network's private random stream (split from the engine's at
    {!create} time).  Exposed so a snapshot/restore facility can rewind
    it; ordinary clients never need it. *)

val attach : 'a t -> Node_id.t -> (src:Node_id.t -> 'a -> unit) -> unit
(** Register a node's receive handler.  Raises [Invalid_argument] if the
    node is already attached. *)

val detach : 'a t -> Node_id.t -> unit
(** Remove a node (models a host crash: in-flight packets to it vanish). *)

val attached : 'a t -> Node_id.t -> bool

val nodes : 'a t -> Node_id.t list
(** Attached nodes in increasing id order. *)

val send : 'a t -> src:Node_id.t -> dst:Node_id.t -> 'a -> unit
(** Unicast; silently dropped when lossy, partitioned, or [dst] is not
    attached.  A node may send to itself (loopback, same latency model). *)

val send_tracked : 'a t -> src:Node_id.t -> dst:Node_id.t -> 'a -> bool
(** {!send}, reporting whether the packet was actually queued for
    delivery: [false] means it was lost or partitioned away at send time.
    (A destination that crashes while the packet is in flight still
    counts as queued.)  Lets a sender that would arm a recovery timer
    "in case this gets lost" skip the timer on the overwhelmingly common
    delivered path — the simulator knows the loss outcome at send time,
    the protocol's observable behaviour is unchanged. *)

val send_tracked_after :
  'a t -> delay:Dsim.Time.Span.t -> src:Node_id.t -> dst:Node_id.t -> 'a -> bool
(** {!send_tracked} with [delay] added on top of the sampled latency
    (before the per-path FIFO adjustment, like the model checker's delay
    hook, so no-overtaking still holds).  Lets a protocol that holds a
    message for a deterministic processing time commit the send
    immediately instead of parking the decision in a timer event — one
    queue event per packet instead of two.  Loss, partition and latency
    are all drawn at call time. *)

val broadcast : 'a t -> src:Node_id.t -> 'a -> unit
(** Deliver to every attached node except [src], subject to loss and
    partitions, with an independent latency draw per receiver. *)

val broadcast_many : 'a t -> src:Node_id.t -> 'a array -> n:int -> unit
(** [broadcast_many net ~src payloads ~n] broadcasts [payloads.(0)] ..
    [payloads.(n-1)] in order, as if by [n] consecutive {!broadcast}
    calls at the same instant, but batched: per destination, consecutive
    messages sharing a delivery instant are drained by a single queued
    event instead of one event per message.  Per-message semantics are
    preserved — send order per path (FIFO), an independent loss and
    latency draw per (message, receiver) pair, and per-message stats,
    drop accounting and trace records: every message a batch absorbs
    emits one record of its own (tagged with its batch position in the
    obs stream), including exact [No_port] drops for the remainder of a
    batch when a handler detaches the destination mid-drain.  The one
    batching artefact is the timestamp: absorbed messages share the
    batch's delivery instant instead of being spread by the 1 ns FIFO
    tie-break.  [payloads] is read before returning and may be reused by
    the caller afterwards.  Raises [Invalid_argument] if [n] is negative
    or exceeds the array length. *)

val set_loss : 'a t -> float -> unit

val partition : 'a t -> Node_id.t list list -> unit
(** [partition net groups] splits the network: a packet is delivered only if
    its source and destination are in the same group.  Nodes absent from
    every group are isolated.  Replaces any previous partition. *)

val heal : 'a t -> unit
(** Remove the partition. *)

val stats : 'a t -> sent:bool -> Node_id.t -> int
(** [stats net ~sent n]: packets sent by (resp. delivered to) node [n]. *)

val packets_dropped : 'a t -> int

val attach_trace : 'a t -> 'a Trace.t -> unit
(** Start recording every send, delivery and drop into the trace (at most
    one trace at a time; replaces any previous one).

    This is a compatibility shim over the unified observability path:
    the same events (minus payloads) also flow to the engine's obs sink
    ({!Dsim.Engine.obs}) as [netsim] instants and [net_*] counters
    whenever that sink is active, with or without a [Trace.t]
    attached.  Existing consumers — tests, [Mc.Explore.packet_log] —
    keep the typed payload-carrying trace unchanged. *)

val detach_trace : 'a t -> unit

val set_delay_hook :
  'a t -> (src:Node_id.t -> dst:Node_id.t -> Dsim.Time.Span.t) option -> unit
(** Install (or remove, with [None]) a per-packet perturbation hook,
    consulted once for every packet about to be scheduled for delivery (not
    for lost or partitioned packets).  The returned span is added to the
    sampled latency {e before} the per-path FIFO adjustment, so the no-
    overtaking guarantee is preserved.  Used by the [Mc] model checker to
    explore delivery schedules; returning {!Dsim.Time.Span.zero} leaves the
    packet untouched. *)
