type t =
  | Constant of Dsim.Time.Span.t
  | Uniform of { lo : Dsim.Time.Span.t; hi : Dsim.Time.Span.t }
  | Gaussian of { mu : Dsim.Time.Span.t; sigma : Dsim.Time.Span.t }
  | Mixture of (float * t) list

let default_wire = Dsim.Time.Span.of_us 26

let calibrated ~wire =
  Mixture
    [
      (0.97, Gaussian { mu = wire; sigma = Dsim.Time.Span.of_us 3 });
      ( 0.03,
        Gaussian
          {
            mu = Dsim.Time.Span.add wire (Dsim.Time.Span.of_us 150);
            sigma = Dsim.Time.Span.of_us 60;
          } );
    ]

let default_wan_wire = Dsim.Time.Span.of_us 350

let wan ~wire =
  (* Inter-site links: a wider bulk than the quiet-LAN model (routers and
     queueing dominate crystal jitter) and a heavier, longer stall tail. *)
  Mixture
    [
      ( 0.93,
        Gaussian
          { mu = wire; sigma = Dsim.Time.Span.scale 0.05 wire } );
      ( 0.07,
        Gaussian
          {
            mu = Dsim.Time.Span.add wire (Dsim.Time.Span.scale 3.0 wire);
            sigma = Dsim.Time.Span.scale 0.8 wire;
          } );
    ]

let floor_lat = Dsim.Time.Span.of_us 1

let rec sample rng t =
  let v =
    match t with
    | Constant d -> d
    | Uniform { lo; hi } ->
        Dsim.Time.Span.of_ns
          (Dsim.Rng.int_range rng (Dsim.Time.Span.to_ns lo)
             (Dsim.Time.Span.to_ns hi))
    | Gaussian { mu; sigma } ->
        let d =
          Dsim.Rng.gaussian rng
            ~mu:(float_of_int (Dsim.Time.Span.to_ns mu))
            ~sigma:(float_of_int (Dsim.Time.Span.to_ns sigma))
        in
        Dsim.Time.Span.of_ns (int_of_float d)
    | Mixture [] -> invalid_arg "Latency.sample: empty mixture"
    | Mixture components ->
        let total = List.fold_left (fun a (w, _) -> a +. w) 0. components in
        let draw = Dsim.Rng.float rng total in
        let rec pick acc = function
          | [] -> assert false
          | [ (_, m) ] -> m
          | (w, m) :: rest -> if draw < acc +. w then m else pick (acc +. w) rest
        in
        sample rng (pick 0. components)
  in
  Dsim.Time.Span.(if v < floor_lat then floor_lat else v)
