(** Per-replica gateway agent.

    Every replica of a hierarchical cluster owns one (cheap, passive)
    agent.  The agent watches its shard's group view; when the replica is
    the deterministic election winner — the minimum live node id, via
    {!Dsim.Det.elect} — of a primary-component view, it {e activates}:
    attaches to the bridge network and takes part in cross-shard rounds.
    When a later view elects someone else (or the component loses
    primacy), it resigns.  Election is thus re-run identically at every
    surviving replica on every view change, which is what makes gateway
    failover deterministic.

    Bridge protocol (both modes agree on a max-combined global value):

    - {e Star}: the gateway of the lowest live shard coordinates.  Each
      round it broadcasts a [Poll]; gateways answer with an [Offer]
      carrying [max (local shard estimate, last agreed global value)];
      after a fixed collection window the coordinator broadcasts
      [Agree (max offers)].
    - {e Ring}: the coordinator circulates a [Collect] token around the
      live shards in index order; each gateway folds its offer into the
      accumulator; when the token returns, the coordinator broadcasts
      [Agree].

    On [Agree], a gateway folds the value into its monotone
    {!Global_clock} and, if the agreed value is ahead of its shard,
    raises its {!Cts.Service} causal floor to
    [min (agreed, local + max_correction)] — the bounded forward
    correction that drags the shard's CCS rounds toward the global
    clock without ever stepping a clock backwards.

    Liveness is tracked per shard from bridge traffic: a shard unheard
    of for [liveness_timeout] is presumed dead, which both moves the
    coordinator role and routes the ring token around crashed
    gateways. *)

type mode = Star | Ring

type config = {
  mode : mode;
  period : Dsim.Time.Span.t;  (** bridge round period at each gateway *)
  offer_timeout : Dsim.Time.Span.t;
      (** star: the coordinator's offer-collection window *)
  liveness_timeout : Dsim.Time.Span.t;
      (** a shard unheard for this long is presumed dead *)
  max_correction : Dsim.Time.Span.t;
      (** clamp on the forward correction injected per agreed round *)
}

val default_config : config

type stats = {
  elections : int;  (** times this replica became its shard's gateway *)
  agreed_rounds : int;  (** [Agree] messages applied *)
  corrections : int;  (** causal-floor injections into the local shard *)
  coordinated : int;  (** bridge rounds this replica opened *)
}

type t

val create :
  Dsim.Engine.t ->
  Bridge_msg.t Netsim.Network.t ->
  topology:Topology.t ->
  shard:int ->
  me:Netsim.Node_id.t ->
  service:Cts.Service.t ->
  clock:Clock.Hwclock.t ->
  ?config:config ->
  unit ->
  t

val on_view : t -> Gcs.View.t -> unit
(** Feed the shard's group view changes (wire this next to
    [Cts.Service.on_view] in the group handler). *)

val crash : t -> unit
(** Stop participating (models the replica's host crashing).  Idempotent. *)

val is_gateway : t -> bool
val elected : t -> Netsim.Node_id.t option
(** This replica's view of who its shard's gateway is. *)

val shard : t -> int
val global : t -> Global_clock.t
val estimate : t -> Dsim.Time.t
(** This replica's current group-clock estimate (physical clock +
    CCS offset). *)

val stats : t -> stats

val set_on_correction : t -> (unit -> unit) -> unit
(** Hook fired right after a correction raised the causal floor.  The
    scenario harness uses it to trigger an immediate extra clock read at
    the gateway replica: the floored proposal then becomes the shard's
    next buffered synchronizer message and the whole shard adopts the
    correction within one reader period, instead of waiting for the
    gateway to win a delivery race. *)
