type t = {
  mutable value : Dsim.Time.t option;
  mutable round : int;
  mutable updates : int;
  mutable regressions : int;
}

let create () = { value = None; round = 0; updates = 0; regressions = 0 }
let value t = t.value
let round t = t.round
let updates t = t.updates
let regressions t = t.regressions

let observe t ~round ~time =
  t.updates <- t.updates + 1;
  match t.value with
  | None ->
      t.round <- round;
      t.value <- Some time;
      time
  | Some v when round <= t.round ->
      (* Not a newer agreement: a reordered older round, or the same
         round re-delivered (or agreed by both sides of a healing
         dual-coordinator window).  Fold it in monotonically but do not
         call a lower value a regression — only a strictly newer round
         can regress. *)
      if Dsim.Time.(time > v) then begin
        t.value <- Some time;
        time
      end
      else v
  | Some v ->
      t.round <- round;
      if Dsim.Time.(time < v) then begin
        t.regressions <- t.regressions + 1;
        v
      end
      else begin
        t.value <- Some time;
        time
      end
