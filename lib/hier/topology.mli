(** Static shard layout of a hierarchical cluster.

    [shards × shard_size] replicas carry dense global node ids: replica
    [rank] of shard [s] is node [s × shard_size + rank].  Every shard runs
    its own Totem ring on its own network segment; the elected gateway of
    each shard additionally attaches (under its global node id) to a
    shared bridge network.  The layout is immutable — membership changes
    happen inside shards (views) and on the bridge (attach/detach), never
    by renumbering. *)

type t

val create : shards:int -> shard_size:int -> t
(** Raises [Invalid_argument] unless both are ≥ 1. *)

val shards : t -> int
val shard_size : t -> int
val replicas : t -> int
(** Total replica count, [shards × shard_size]. *)

val shard_of : t -> Netsim.Node_id.t -> int
(** Raises [Invalid_argument] for ids outside the layout. *)

val rank_of : t -> Netsim.Node_id.t -> int

val node : t -> shard:int -> rank:int -> Netsim.Node_id.t

val shard_members : t -> int -> Netsim.Node_id.t list
(** Global ids of a shard's replicas, in rank order. *)

val ring_distance : t -> int -> int -> int
(** Distance between two shard indices on the shard ring (for the
    neighbour-skew metric and distance-dependent WAN latency). *)

val pp : Format.formatter -> t -> unit
