let src = Logs.Src.create "hier" ~doc:"Hierarchical multi-ring bridge"

module Log = (val Logs.src_log src : Logs.LOG)
module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id

type mode = Star | Ring

type config = {
  mode : mode;
  period : Span.t;
  offer_timeout : Span.t;
  liveness_timeout : Span.t;
  max_correction : Span.t;
}

let default_config =
  {
    mode = Star;
    period = Span.of_us 2_000;
    (* > 2 WAN one-way trips: a Poll and its Offers must round-trip
       inside the window. *)
    offer_timeout = Span.of_us 900;
    (* > 3 periods, so one lost round does not depose a live coordinator. *)
    liveness_timeout = Span.of_us 6_500;
    max_correction = Span.of_ms 10;
  }

type stats = {
  elections : int;
  agreed_rounds : int;
  corrections : int;
  coordinated : int;
}

type t = {
  eng : Dsim.Engine.t;
  bridge : Bridge_msg.t Netsim.Network.t;
  topo : Topology.t;
  my_shard : int;
  me : Nid.t;
  service : Cts.Service.t;
  clock : Clock.Hwclock.t;
  cfg : config;
  gclock : Global_clock.t;
  last_heard : Time.t array; (* per shard; seeded with creation time *)
  mutable active : bool;
  mutable crashed : bool;
  mutable elected : Nid.t option;
  mutable gen : int; (* invalidates scheduled ticks across stints *)
  mutable round : int; (* highest bridge round seen or opened *)
  mutable offer_round : int; (* round I am currently collecting for *)
  mutable offers : Time.t; (* max-combined offers for [offer_round] *)
  mutable offers_n : int;
  mutable s_elections : int;
  mutable s_agreed : int;
  mutable s_corrections : int;
  mutable s_coordinated : int;
  mutable on_correction : unit -> unit;
}

let shard t = t.my_shard
let is_gateway t = t.active && not t.crashed
let elected t = t.elected
let global t = t.gclock

let estimate t =
  Time.add (Clock.Hwclock.read t.clock) (Cts.Service.offset t.service)

let stats t =
  {
    elections = t.s_elections;
    agreed_rounds = t.s_agreed;
    corrections = t.s_corrections;
    coordinated = t.s_coordinated;
  }

(* The value a gateway brings to a bridge round: its shard's group-clock
   estimate, floored at the last agreed global value so that agreement
   never regresses while any holder of that value is alive. *)
let offer_time t =
  match Global_clock.value t.gclock with
  | Some g -> Time.max g (estimate t)
  | None -> estimate t

(* ------------------------------------------------------------------ *)
(* Liveness and roles                                                  *)

let note_heard t shard =
  if shard <> t.my_shard then
    t.last_heard.(shard) <- Dsim.Engine.now t.eng

let shard_live t s =
  s = t.my_shard
  || Span.compare
       (Time.diff (Dsim.Engine.now t.eng) t.last_heard.(s))
       t.cfg.liveness_timeout
     <= 0

let coordinator_shard t =
  let rec go s = if shard_live t s then s else go (s + 1) in
  go 0 (* terminates: my own shard is always live *)

let i_coordinate t = t.active && coordinator_shard t = t.my_shard

(* Next live shard after mine in ring order (ring mode); [None] when I am
   the only live shard. *)
let next_live t =
  let n = Topology.shards t.topo in
  let rec go k =
    if k = n then None
    else
      let s = (t.my_shard + k) mod n in
      if shard_live t s then Some s else go (k + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Obs probes                                                          *)

let probe_instant t name args =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then
    Obs.Sink.instant s
      ~ts_ns:(Time.to_ns (Dsim.Engine.now t.eng))
      ~pid:(Nid.to_int t.me) ~sub:Obs.Subsystem.Hier ~name ~args

let probe_count t key =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then Obs.Sink.count s key

let probe_span t which name args =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then
    (match which with
    | `Begin -> Obs.Sink.span_begin s
    | `End -> Obs.Sink.span_end s)
      ~ts_ns:(Time.to_ns (Dsim.Engine.now t.eng))
      ~pid:(Nid.to_int t.me) ~sub:Obs.Subsystem.Hier ~name ~args

(* Flight-recorder feed, separate gate (all-int, no boxing). *)
let probe_rec t ~kind ~a ~b =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.rec_on then
    Obs.Sink.rec_event s ~kind
      ~ts_us:(Time.to_ns (Dsim.Engine.now t.eng) / 1000)
      ~node:(Nid.to_int t.me) ~a ~b

(* ------------------------------------------------------------------ *)
(* Agreement                                                           *)

let apply_agree t ~round ~time =
  if round > t.round then t.round <- round;
  let adopted = Global_clock.observe t.gclock ~round ~time in
  t.s_agreed <- t.s_agreed + 1;
  probe_count t Obs.Metrics.Hier_rounds;
  probe_rec t ~kind:Obs.Recorder.k_hier_round ~a:round ~b:0;
  let local = estimate t in
  if Time.(adopted > local) then begin
    (* Bounded forward correction: raise the shard's causal floor, at
       most [max_correction] past where the shard already is.  The floor
       lifts this gateway's next CCS proposals, and the shard adopts the
       corrected time the next round the gateway's message wins — clocks
       only ever move forward. *)
    let target = Time.min adopted (Time.add local t.cfg.max_correction) in
    Cts.Service.observe_timestamp t.service target;
    t.s_corrections <- t.s_corrections + 1;
    probe_count t Obs.Metrics.Hier_corrections;
    probe_instant t "hier-correct"
      [
        ("round", round);
        ("ahead_us", Span.to_us (Time.diff adopted local));
      ];
    probe_rec t ~kind:Obs.Recorder.k_hier_correct ~a:round
      ~b:(Span.to_us (Time.diff adopted local));
    t.on_correction ()
  end

(* ------------------------------------------------------------------ *)
(* Bridge rounds                                                       *)

let broadcast t msg = Netsim.Network.broadcast t.bridge ~src:t.me msg

let close_round t gen round () =
  if (not t.crashed) && t.active && gen = t.gen && t.offer_round = round
  then begin
    let time = Time.max t.offers (offer_time t) in
    t.offer_round <- -1;
    probe_span t `End "hier-round"
      [ ("round", round); ("offers", t.offers_n) ];
    broadcast t (Bridge_msg.Agree { round; coord_shard = t.my_shard; time });
    apply_agree t ~round ~time
  end

let open_round t =
  t.round <- t.round + 1;
  t.s_coordinated <- t.s_coordinated + 1;
  let round = t.round in
  match t.cfg.mode with
  | Star ->
      t.offer_round <- round;
      t.offers <- offer_time t;
      t.offers_n <- 1;
      probe_span t `Begin "hier-round" [ ("round", round) ];
      broadcast t (Bridge_msg.Poll { round; coord_shard = t.my_shard });
      let gen = t.gen in
      Dsim.Engine.schedule t.eng t.cfg.offer_timeout (close_round t gen round)
  | Ring -> (
      let acc = offer_time t in
      match next_live t with
      | None ->
          (* Only shard standing: agree with myself. *)
          apply_agree t ~round ~time:acc
      | Some dst ->
          broadcast t
            (Bridge_msg.Collect
               {
                 round;
                 origin_shard = t.my_shard;
                 from_shard = t.my_shard;
                 dst_shard = dst;
                 acc;
               }))

let at_tick = Obs.Attrib.site ~sub:Obs.Subsystem.Hier ~name:"tick"

let rec tick t gen () =
  if (not t.crashed) && t.active && gen = t.gen then begin
    let s = Dsim.Engine.obs t.eng in
    Obs.Sink.attr_enter s at_tick;
    if i_coordinate t then open_round t;
    Dsim.Engine.schedule t.eng t.cfg.period (tick t gen);
    Obs.Sink.attr_leave s
  end

(* ------------------------------------------------------------------ *)
(* Bridge reception                                                    *)

let at_bridge = Obs.Attrib.site ~sub:Obs.Subsystem.Hier ~name:"bridge"

let rec on_bridge t ~src msg =
  let s = Dsim.Engine.obs t.eng in
  Obs.Sink.attr_enter s at_bridge;
  on_bridge_inner t ~src msg;
  Obs.Sink.attr_leave s

and on_bridge_inner t ~src msg =
  if (not t.crashed) && t.active then begin
    (* Coordinator legitimacy is judged against liveness as it stood
       BEFORE this message: when a partition heals, the reunited side's
       in-flight [Agree] (carrying a value stale by the whole partition)
       arrives from a shard we still considered dead — it must not be
       applied.  The message still refreshes liveness below, so the
       sender's next full round (which polls everyone and max-combines)
       is accepted. *)
    let legit =
      match msg with
      | Bridge_msg.Agree { coord_shard; _ } ->
          coordinator_shard t = coord_shard
      | Bridge_msg.Poll _ | Bridge_msg.Offer _ | Bridge_msg.Collect _ ->
          true
    in
    note_heard t (Bridge_msg.sender_shard msg);
    let r = Bridge_msg.round msg in
    if r > t.round then t.round <- r;
    match msg with
    | Bridge_msg.Poll { round; coord_shard } ->
        if coord_shard <> t.my_shard then
          (* The offer answers the poll, and only the poller consumes it —
             reply to the polling gateway instead of broadcasting, or the
             bridge costs O(shards^2) deliveries per round.  Non-
             coordinators consequently track liveness only of shards they
             still hear (the coordinator's polls and agrees); after a
             coordinator death each shard may transiently poll, and the
             competing polls re-seed everyone's liveness the same round. *)
          Netsim.Network.send t.bridge ~src:t.me ~dst:src
            (Bridge_msg.Offer { round; shard = t.my_shard; time = offer_time t })
    | Bridge_msg.Offer { round; time; _ } ->
        if t.offer_round = round then begin
          t.offers <- Time.max t.offers time;
          t.offers_n <- t.offers_n + 1
        end
    | Bridge_msg.Agree { round; time; coord_shard } ->
        if legit && coord_shard <> t.my_shard then apply_agree t ~round ~time
    | Bridge_msg.Collect { round; origin_shard; dst_shard; acc; _ } ->
        if dst_shard = t.my_shard then
          let acc = Time.max acc (offer_time t) in
          if origin_shard = t.my_shard then begin
            (* Token came home: agree. *)
            broadcast t
              (Bridge_msg.Agree
                 { round; coord_shard = t.my_shard; time = acc });
            apply_agree t ~round ~time:acc
          end
          else
            let dst =
              match next_live t with Some s -> s | None -> origin_shard
            in
            broadcast t
              (Bridge_msg.Collect
                 {
                   round;
                   origin_shard;
                   from_shard = t.my_shard;
                   dst_shard = dst;
                   acc;
                 })
  end

(* ------------------------------------------------------------------ *)
(* Election plumbing                                                   *)

let activate t =
  if (not t.active) && not t.crashed then begin
    t.active <- true;
    t.s_elections <- t.s_elections + 1;
    t.gen <- t.gen + 1;
    Netsim.Network.attach t.bridge t.me (on_bridge t);
    probe_count t Obs.Metrics.Hier_elections;
    probe_instant t "hier-elect" [ ("shard", t.my_shard) ];
    probe_rec t ~kind:Obs.Recorder.k_hier_elect ~a:t.my_shard
      ~b:(Nid.to_int t.me);
    Log.debug (fun m ->
        m "%a: gateway of shard %d (election %d)" Nid.pp t.me t.my_shard
          t.s_elections);
    Dsim.Engine.schedule t.eng t.cfg.period (tick t t.gen)
  end

let resign t =
  if t.active then begin
    t.active <- false;
    t.gen <- t.gen + 1;
    t.offer_round <- -1;
    if Netsim.Network.attached t.bridge t.me then
      Netsim.Network.detach t.bridge t.me
  end

let on_view t (view : Gcs.View.t) =
  if not t.crashed then begin
    let members = Gcs.View.members_nodes view in
    let winner =
      if view.Gcs.View.primary then
        Dsim.Det.elect ~compare:Nid.compare members
      else None
    in
    t.elected <- winner;
    match winner with
    | Some w when Nid.equal w t.me -> activate t
    | Some _ | None -> resign t
  end

let crash t =
  if not t.crashed then begin
    resign t;
    t.crashed <- true;
    t.elected <- None
  end

let set_on_correction t f = t.on_correction <- f

let create eng bridge ~topology ~shard ~me ~service ~clock
    ?(config = default_config) () =
  if shard < 0 || shard >= Topology.shards topology then
    invalid_arg "Hier.Gateway.create: shard outside the topology";
  {
    eng;
    bridge;
    topo = topology;
    my_shard = shard;
    me;
    service;
    clock;
    cfg = config;
    gclock = Global_clock.create ();
    last_heard = Array.make (Topology.shards topology) (Dsim.Engine.now eng);
    active = false;
    crashed = false;
    elected = None;
    gen = 0;
    round = 0;
    offer_round = -1;
    offers = Time.epoch;
    offers_n = 0;
    s_elections = 0;
    s_agreed = 0;
    s_corrections = 0;
    s_coordinated = 0;
    on_correction = ignore;
  }
