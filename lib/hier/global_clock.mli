(** Per-gateway global group-clock state machine.

    Tracks the highest agreed cross-shard clock value and round.  The
    clock is strictly monotone by construction: an [observe] that would
    move it backwards is clamped to the current value and counted as a
    regression attempt instead — the invariant the model checker enforces
    is that no such attempt happens while at least one holder of the
    previous agreed value is still alive (offers carry the max of the
    local estimate and this value, so agreement can only regress if every
    gateway that knew the old value is gone). *)

type t

val create : unit -> t

val value : t -> Dsim.Time.t option
(** Last agreed global clock value, if any round has completed. *)

val round : t -> int
(** Highest bridge round observed (0 before the first). *)

val observe : t -> round:int -> time:Dsim.Time.t -> Dsim.Time.t
(** Fold an agreed [(round, time)] into the state and return the adopted
    value: [time] if it does not regress, the previous value otherwise.
    An observation for a round older than the newest applied round is a
    reordered or duplicated agreement (the WAN's latency tail outruns the
    bridge period): it is ignored without counting a regression. *)

val updates : t -> int
val regressions : t -> int
(** How many [observe]s had to be clamped. *)
