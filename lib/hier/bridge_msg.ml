(* Wire messages of the cross-shard bridge protocol.

   Everything on the bridge is broadcast and filtered by the receiver
   (shard indices are stable; gateway node ids are not, so addressing a
   message to "the gateway of shard s" by node id would break across
   failovers).  Every constructor carries the sender's shard index so
   receivers can maintain per-shard liveness without a separate
   heartbeat. *)

type t =
  | Poll of { round : int; coord_shard : int }
      (* star: the coordinator opens a bridge round and solicits offers *)
  | Offer of { round : int; shard : int; time : Dsim.Time.t }
      (* star: a gateway's view of the global clock for the round — the
         max of its shard's group-clock estimate and the last agreed
         global value, so agreement can never regress while any holder
         of the previous value survives *)
  | Collect of {
      round : int;
      origin_shard : int;
      from_shard : int;
      dst_shard : int;
      acc : Dsim.Time.t;
    }
      (* ring: a token accumulating the max around the live shards *)
  | Agree of { round : int; coord_shard : int; time : Dsim.Time.t }
      (* both modes: the agreed global group-clock value for the round *)

let sender_shard = function
  | Poll { coord_shard; _ } -> coord_shard
  | Offer { shard; _ } -> shard
  | Collect { from_shard; _ } -> from_shard
  | Agree { coord_shard; _ } -> coord_shard

let round = function
  | Poll { round; _ } | Offer { round; _ } | Collect { round; _ }
  | Agree { round; _ } ->
      round

let pp ppf = function
  | Poll { round; coord_shard } ->
      Format.fprintf ppf "poll(r%d from s%d)" round coord_shard
  | Offer { round; shard; time } ->
      Format.fprintf ppf "offer(r%d s%d %a)" round shard Dsim.Time.pp time
  | Collect { round; origin_shard; from_shard; dst_shard; acc } ->
      Format.fprintf ppf "collect(r%d origin s%d, s%d->s%d, %a)" round
        origin_shard from_shard dst_shard Dsim.Time.pp acc
  | Agree { round; coord_shard; time } ->
      Format.fprintf ppf "agree(r%d from s%d %a)" round coord_shard
        Dsim.Time.pp time
