type t = { n_shards : int; size : int }

let create ~shards ~shard_size =
  if shards < 1 || shard_size < 1 then
    invalid_arg "Hier.Topology.create: shards and shard_size must be >= 1";
  { n_shards = shards; size = shard_size }

let shards t = t.n_shards
let shard_size t = t.size
let replicas t = t.n_shards * t.size

let shard_of t node =
  let n = Netsim.Node_id.to_int node in
  if n < 0 || n >= replicas t then
    invalid_arg "Hier.Topology.shard_of: node outside the layout";
  n / t.size

let rank_of t node =
  let n = Netsim.Node_id.to_int node in
  if n < 0 || n >= replicas t then
    invalid_arg "Hier.Topology.rank_of: node outside the layout";
  n mod t.size

let node t ~shard ~rank =
  if shard < 0 || shard >= t.n_shards || rank < 0 || rank >= t.size then
    invalid_arg "Hier.Topology.node: position outside the layout";
  Netsim.Node_id.of_int ((shard * t.size) + rank)

let shard_members t shard =
  List.init t.size (fun rank -> node t ~shard ~rank)

let ring_distance t a b =
  let s = t.n_shards in
  let d = ((a - b) mod s + s) mod s in
  min d (s - d)

let pp ppf t =
  Format.fprintf ppf "%d shards x %d replicas" t.n_shards t.size
