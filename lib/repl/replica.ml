let src = Logs.Src.create "repl" ~doc:"Replication infrastructure"

module Log = (val Logs.src_log src : Logs.LOG)
module Nid = Netsim.Node_id

type style = Active | Passive | Semi_active

type config = {
  style : style;
  checkpoint_interval : int;
  recovering : bool;
  drift : Cts.Drift.t;
  offset_tracking : bool;
  initial_members : Nid.t list;
}

let default_config =
  {
    style = Active;
    checkpoint_interval = 50;
    recovering = false;
    drift = Cts.Drift.No_compensation;
    offset_tracking = true;
    initial_members = [];
  }

type app = {
  handle : thread:Cts.Thread_id.t -> op:string -> arg:string -> string;
  snapshot : unit -> string;
  restore : string -> unit;
}

let main_thread = Cts.Thread_id.of_int 1

type item =
  | Req of {
      header : Gcs.Msg.header;
      op : string;
      arg : string;
      ts : Dsim.Time.t option;
      index : int;
    }
  | Marker of { for_node : Nid.t }

type t = {
  eng : Dsim.Engine.t;
  endpoint : Gcs.Endpoint.t;
  group : Gcs.Group_id.t;
  cfg : config;
  cts : Cts.Service.t;
  mutable app : app;
  mailbox : item Dsim.Sync.Mailbox.t;
  backlog : item Queue.t; (* passive backup: logged items for replay *)
  mutable pending : item list; (* delivered while not yet recovered (rev) *)
  mutable view : Gcs.View.t option;
  mutable recovered : bool;
  mutable delivered_reqs : int;
  mutable processed : int;
  seen_states : (int, unit) Hashtbl.t; (* join node -> state delivered *)
  stash : (int, Checkpoint.t) Hashtbl.t; (* join node -> unserved ckpt *)
  reply_cache : (int, int * string) Hashtbl.t; (* conn -> (seq, result) *)
  mutable halted : bool;
      (* evicted from the primary component: stop serving (rejoining
         requires a fresh recovering replica) *)
  mutable bootstrap_hint : Nid.t list;
      (* nodes that still count as initial members (no transfer needed) *)
}

let me t = Gcs.Endpoint.me t.endpoint
let group t = t.group
let service t = t.cts
let recovered t = t.recovered
let processed t = t.processed
let delivered t = t.delivered_reqs
let snapshot t = t.app.snapshot ()

let is_primary t =
  match t.view with
  | None -> false
  | Some v -> (
      match v.Gcs.View.members with
      | (n, _) :: _ -> Nid.equal n (me t)
      | [] -> false)

(* Replicas that log instead of processing: passive backups. *)
let is_logging t = t.cfg.style = Passive && not (is_primary t)

let should_reply t =
  match t.cfg.style with
  | Active -> true
  | Passive | Semi_active -> is_primary t

let may_send_state t =
  match t.cfg.style with
  | Active -> true
  | Passive | Semi_active -> is_primary t

(* ------------------------------------------------------------------ *)
(* Processing thread                                                   *)

let take_checkpoint t : Checkpoint.t =
  (let s = Dsim.Engine.obs t.eng in
   if s.Obs.Sink.active then begin
     Obs.Sink.count s Obs.Metrics.Repl_checkpoints;
     Obs.Sink.instant s
       ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
       ~pid:(Nid.to_int (me t)) ~sub:Obs.Subsystem.Repl ~name:"checkpoint"
       ~args:[ ("upto", t.processed) ]
   end);
  {
    upto = t.processed;
    app_state = t.app.snapshot ();
    rounds = Cts.Service.thread_rounds t.cts;
  }

let maybe_periodic_checkpoint t =
  if
    t.cfg.style = Passive && is_primary t
    && t.cfg.checkpoint_interval > 0
    && t.processed mod t.cfg.checkpoint_interval = 0
  then
    Gcs.Endpoint.multicast t.endpoint
      (Checkpoint.periodic_msg ~group:t.group (take_checkpoint t))

let process_req t ~(header : Gcs.Msg.header) ~op ~arg ~ts ~index =
  let conn = header.conn_id in
  let send_reply result =
    if should_reply t then
      Gcs.Endpoint.multicast t.endpoint
        (Rpc.Wire.reply ~request_header:header ~replica:(me t) ~result
           ?ts:(Cts.Service.last_reading t.cts) ())
  in
  match Hashtbl.find_opt t.reply_cache conn with
  | Some (seq, cached) when header.msg_seq = seq -> send_reply cached
  | Some (seq, _) when header.msg_seq < seq -> () (* stale duplicate *)
  | Some _ | None ->
      (* §5 extension: a timestamp carried by the request raises the group
         clock's causal floor before the request is processed.  This runs
         in processing (= delivery) order, so the floor is identical at
         every replica. *)
      (match ts with
      | Some ts -> Cts.Service.observe_timestamp t.cts ts
      | None -> ());
      let result =
        (* §4.1: application code runs with the clock calls interposed *)
        Cts.Interpose.with_context t.cts ~thread:main_thread (fun () ->
            t.app.handle ~thread:main_thread ~op ~arg)
      in
      t.processed <- index;
      (let s = Dsim.Engine.obs t.eng in
       if s.Obs.Sink.active then begin
         Obs.Sink.count s Obs.Metrics.Repl_requests;
         Obs.Sink.instant s
           ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
           ~pid:(Nid.to_int (me t)) ~sub:Obs.Subsystem.Repl ~name:"request"
           ~args:[ ("index", index) ]
       end);
      Hashtbl.replace t.reply_cache conn (header.msg_seq, result);
      send_reply result;
      maybe_periodic_checkpoint t

let process_marker t ~for_node =
  (* §3.2: at the synchronization point, run the special round of consistent
     clock synchronization, then checkpoint and transfer the state. *)
  let (_ : Dsim.Time.t) = Cts.Service.special_round t.cts in
  let ckpt = take_checkpoint t in
  let key = Nid.to_int for_node in
  Hashtbl.replace t.stash key ckpt;
  if (not (Hashtbl.mem t.seen_states key)) && may_send_state t then
    Gcs.Endpoint.multicast t.endpoint
      (Checkpoint.state_msg ~group:t.group ~for_node ckpt)

let rec processing_loop t =
  (try
     match Dsim.Sync.Mailbox.recv t.mailbox with
     | Req { header; op; arg; ts; index } ->
         process_req t ~header ~op ~arg ~ts ~index
     | Marker { for_node } -> process_marker t ~for_node
   with Clock.Hwclock.Failed ->
     (* The paper's fault model (§2): physical clocks are fail-stop, and a
        replica whose clock fails stops with it and is removed from the
        membership. *)
     Log.debug (fun m ->
         m "%a: physical clock failed, replica fail-stops" Nid.pp (me t));
     t.halted <- true;
     Gcs.Endpoint.crash t.endpoint);
  if not t.halted then processing_loop t

(* ------------------------------------------------------------------ *)
(* Delivery routing                                                    *)

let route t item =
  if is_logging t then Queue.push item t.backlog
  else Dsim.Sync.Mailbox.send t.eng t.mailbox item

let apply_periodic t (c : Checkpoint.t) =
  (* Backups apply the primary's checkpoint and truncate their log. *)
  if is_logging t then begin
    t.app.restore c.app_state;
    List.iter
      (fun (thread, round) -> Cts.Service.advance_thread t.cts ~thread ~round)
      c.rounds;
    t.processed <- c.upto;
    let rec trim () =
      match Queue.peek_opt t.backlog with
      | Some (Req { index; _ }) when index <= c.upto ->
          ignore (Queue.pop t.backlog : item);
          trim ()
      | _ -> ()
    in
    trim ()
  end

let apply_state t ~(for_node : Nid.t) (c : Checkpoint.t) =
  Hashtbl.replace t.seen_states (Nid.to_int for_node) ();
  Hashtbl.remove t.stash (Nid.to_int for_node);
  if (not t.recovered) && Nid.equal for_node (me t) then begin
    (* The special round's CCS message is totally ordered before any State
       message, so the clock is initialized by now. *)
    assert (Cts.Service.initialized t.cts);
    t.app.restore c.app_state;
    List.iter
      (fun (thread, round) -> Cts.Service.advance_thread t.cts ~thread ~round)
      c.rounds;
    t.delivered_reqs <- c.upto;
    t.processed <- c.upto;
    t.recovered <- true;
    (let s = Dsim.Engine.obs t.eng in
     if s.Obs.Sink.active then
       Obs.Sink.instant s
         ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
         ~pid:(Nid.to_int (me t)) ~sub:Obs.Subsystem.Repl
         ~name:"state-applied" ~args:[ ("upto", c.upto) ]);
    Log.debug (fun m ->
        m "%a: state applied (upto=%d), processing resumes" Nid.pp (me t)
          c.upto);
    let held = List.rev t.pending in
    t.pending <- [];
    (* Re-number the buffered requests: they follow the checkpoint. *)
    List.iter
      (fun item ->
        match item with
        | Req r ->
            t.delivered_reqs <- t.delivered_reqs + 1;
            route t (Req { r with index = t.delivered_reqs })
        | Marker _ -> route t item)
      held
  end

let on_deliver t (msg : Gcs.Msg.t) =
  Cts.Service.on_message t.cts msg;
  match msg.body with
  | Rpc.Wire.Request { op; arg; ts } ->
      if t.recovered then begin
        t.delivered_reqs <- t.delivered_reqs + 1;
        route t
          (Req { header = msg.header; op; arg; ts; index = t.delivered_reqs })
      end
      else
        t.pending <-
          Req { header = msg.header; op; arg; ts; index = 0 } :: t.pending
  | Checkpoint.State { for_node; checkpoint } ->
      apply_state t ~for_node checkpoint
  | Checkpoint.Periodic c -> apply_periodic t c
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* View changes                                                        *)

let on_view t (view : Gcs.View.t) =
  let was_primary = is_primary t in
  let prev_nodes =
    match t.view with
    | None -> None
    | Some v -> Some (Gcs.View.members_nodes v)
  in
  t.view <- Some view;
  Cts.Service.on_view t.cts view;
  let now_nodes = Gcs.View.members_nodes view in
  (match prev_nodes with
  | None -> () (* initial view: nobody needs a state transfer from us *)
  | Some prev ->
      let added =
        List.filter (fun n -> not (List.exists (Nid.equal n) prev)) now_nodes
      in
      let removed =
        List.filter (fun n -> not (List.exists (Nid.equal n) now_nodes)) prev
      in
      (* A departed node that later rejoins needs a fresh transfer. *)
      List.iter
        (fun n ->
          Hashtbl.remove t.seen_states (Nid.to_int n);
          Hashtbl.remove t.stash (Nid.to_int n);
          (* A bootstrap node that leaves needs a real transfer if it ever
             comes back. *)
          t.bootstrap_hint <-
            List.filter (fun b -> not (Nid.equal b n)) t.bootstrap_hint)
        removed;
      List.iter
        (fun n ->
          if Nid.equal n (me t) then ()
          else if List.exists (Nid.equal n) t.bootstrap_hint then ()
          else
            let item = Marker { for_node = n } in
            if t.recovered then route t item
            else t.pending <- item :: t.pending)
        added);
  (* Failover: a backup promoted to primary replays its log and serves any
     state transfer the dead primary left unserved. *)
  if (not was_primary) && is_primary t && t.recovered then begin
    if t.cfg.style = Passive then begin
      Log.debug (fun m ->
          m "%a: promoted to primary, replaying %d logged items" Nid.pp (me t)
            (Queue.length t.backlog));
      Queue.iter (fun item -> Dsim.Sync.Mailbox.send t.eng t.mailbox item)
        t.backlog;
      Queue.clear t.backlog
    end;
    if may_send_state t then
      (* Send order is node-id order: the sends race with application
         multicasts, so hash-bucket order here would leak into the
         totem delivery schedule. *)
      Dsim.Det.iter_sorted ~compare:Int.compare
        (fun key ckpt ->
          if not (Hashtbl.mem t.seen_states key) then
            Gcs.Endpoint.multicast t.endpoint
              (Checkpoint.state_msg ~group:t.group
                 ~for_node:(Nid.of_int key) ckpt))
        t.stash
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create eng ~endpoint ~group ~clock ?(config = default_config) ~app () =
  let cts_config =
    {
      Cts.Service.mode =
        (match config.style with
        | Active -> Cts.Service.Active
        | Passive | Semi_active -> Cts.Service.Primary_backup);
      drift = config.drift;
      offset_tracking = config.offset_tracking;
      recovering = config.recovering;
    }
  in
  let cts =
    Cts.Service.create eng ~endpoint ~group ~clock ~config:cts_config ()
  in
  let t =
    {
      eng;
      endpoint;
      group;
      cfg = config;
      cts;
      app = { handle = (fun ~thread:_ ~op:_ ~arg:_ -> ""); snapshot = (fun () -> ""); restore = ignore };
      mailbox = Dsim.Sync.Mailbox.create ();
      backlog = Queue.create ();
      pending = [];
      view = None;
      recovered = not config.recovering;
      delivered_reqs = 0;
      processed = 0;
      seen_states = Hashtbl.create 4;
      stash = Hashtbl.create 4;
      reply_cache = Hashtbl.create 8;
      halted = false;
      bootstrap_hint = config.initial_members;
    }
  in
  t.app <- app cts;
  Gcs.Endpoint.join_group endpoint group ~handler:(fun ev ->
      if not t.halted then
        match ev with
        | Gcs.Endpoint.Deliver { msg; _ } -> on_deliver t msg
        | Gcs.Endpoint.View_change view -> on_view t view
        | Gcs.Endpoint.Block -> ()
        | Gcs.Endpoint.Evicted ->
            Log.debug (fun m ->
                m "%a: evicted from primary component, halting" Nid.pp (me t));
            t.halted <- true);
  Dsim.Fiber.spawn eng (fun () -> processing_loop t);
  t

let halted t = t.halted
let crash t = Gcs.Endpoint.crash t.endpoint
