exception Timeout

type outstanding = {
  cell : string Dsim.Sync.Ivar.t;
  mutable abandoned : bool; (* timed out; late replies are dropped *)
}

type t = {
  eng : Dsim.Engine.t;
  endpoint : Gcs.Endpoint.t;
  my_group : Gcs.Group_id.t;
  server_group : Gcs.Group_id.t;
  conn_id : int;
  mutable next_seq : int;
  pending : (int, outstanding) Hashtbl.t; (* keyed by msg_seq *)
  mutable sent : int;
  mutable dup_replies : int;
  mutable causal_ts : Dsim.Time.t option;
      (* highest group-clock timestamp seen in any reply; forwarded on
         subsequent requests so causality spans server groups (§5) *)
}

let on_event t = function
  | Gcs.Endpoint.Deliver { msg; _ } -> (
      match msg.Gcs.Msg.body with
      | Wire.Reply { result; ts; _ } -> (
          (match (ts, t.causal_ts) with
          | Some ts, Some prev when Dsim.Time.(ts > prev) ->
              t.causal_ts <- Some ts
          | Some ts, None -> t.causal_ts <- Some ts
          | _ -> ());
          let seq = msg.Gcs.Msg.header.msg_seq in
          match Hashtbl.find_opt t.pending seq with
          | Some o when not o.abandoned ->
              Hashtbl.remove t.pending seq;
              Dsim.Sync.Ivar.fill t.eng o.cell result
          | Some o ->
              Hashtbl.remove t.pending seq;
              ignore o
          | None -> t.dup_replies <- t.dup_replies + 1)
      | _ -> ())
  | Gcs.Endpoint.View_change _ | Gcs.Endpoint.Block | Gcs.Endpoint.Evicted ->
      ()

let create eng ~endpoint ~my_group ~server_group () =
  let t =
    {
      eng;
      endpoint;
      my_group;
      server_group;
      conn_id =
        (1000 * Gcs.Group_id.to_int my_group)
        + Gcs.Group_id.to_int server_group;
      next_seq = 0;
      pending = Hashtbl.create 8;
      sent = 0;
      dup_replies = 0;
      causal_ts = None;
    }
  in
  Gcs.Endpoint.join_group endpoint my_group ~handler:(on_event t);
  t

let attempt ?timeout t ~seq ~op ~arg =
  let o = { cell = Dsim.Sync.Ivar.create (); abandoned = false } in
  Hashtbl.replace t.pending seq o;
  t.sent <- t.sent + 1;
  Gcs.Endpoint.multicast t.endpoint
    (Wire.request ~src_grp:t.my_group ~dst_grp:t.server_group
       ~conn_id:t.conn_id ~msg_seq:seq ~op ~arg ?ts:t.causal_ts ());
  match timeout with
  | None -> Some (Dsim.Sync.Ivar.read o.cell)
  | Some d ->
      (* Wake on whichever comes first: the reply or the deadline. *)
      let woke = Dsim.Sync.Ivar.create () in
      Dsim.Engine.schedule t.eng d (fun () ->
          if not (Dsim.Sync.Ivar.is_filled woke) then
            Dsim.Sync.Ivar.fill t.eng woke None);
      Dsim.Fiber.spawn t.eng (fun () ->
          let r = Dsim.Sync.Ivar.read o.cell in
          if not (Dsim.Sync.Ivar.is_filled woke) then
            Dsim.Sync.Ivar.fill t.eng woke (Some r));
      (match Dsim.Sync.Ivar.read woke with
      | Some r -> Some r
      | None ->
          o.abandoned <- true;
          None)

(* Call-lifecycle probes.  The span covers the whole invocation including
   retries; a timeout closes it with a [timeout] tag so the trace never
   holds a dangling Begin. *)
let probe_call_begin t seq =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then begin
    Obs.Sink.count s Obs.Metrics.Rpc_calls;
    Obs.Sink.span_begin s
      ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
      ~pid:(Netsim.Node_id.to_int (Gcs.Endpoint.me t.endpoint))
      ~sub:Obs.Subsystem.Rpc ~name:"rpc" ~args:[ ("seq", seq) ]
  end

let probe_call_end t seq ~started ~timed_out =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then begin
    if timed_out then Obs.Sink.count s Obs.Metrics.Rpc_timeouts
    else
      Obs.Sink.observe s Obs.Metrics.Rpc_latency_us
        (float_of_int
           (Dsim.Time.Span.to_ns
              (Dsim.Time.diff (Dsim.Engine.now t.eng) started))
        /. 1000.);
    Obs.Sink.span_end s
      ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
      ~pid:(Netsim.Node_id.to_int (Gcs.Endpoint.me t.endpoint))
      ~sub:Obs.Subsystem.Rpc ~name:"rpc"
      ~args:[ ("seq", seq); ("timeout", if timed_out then 1 else 0) ]
  end

let invoke ?timeout ?(retries = 0) t ~op ~arg =
  t.next_seq <- t.next_seq + 1;
  let seq = t.next_seq in
  let started = Dsim.Engine.now t.eng in
  probe_call_begin t seq;
  (* Retries reuse the sequence number: the server-side duplicate-detection
     cache re-sends the cached reply instead of re-executing, so the
     invocation stays exactly-once even when a reply is lost to a crash. *)
  let rec go attempts_left =
    match attempt ?timeout t ~seq ~op ~arg with
    | Some r ->
        probe_call_end t seq ~started ~timed_out:false;
        r
    | None ->
        if attempts_left > 0 then go (attempts_left - 1)
        else begin
          probe_call_end t seq ~started ~timed_out:true;
          raise Timeout
        end
  in
  go retries

let invoke_timed ?timeout ?retries t ~op ~arg =
  let started = Dsim.Engine.now t.eng in
  let result = invoke ?timeout ?retries t ~op ~arg in
  (result, Dsim.Time.diff (Dsim.Engine.now t.eng) started)

let observe_timestamp t ts =
  match t.causal_ts with
  | Some prev when Dsim.Time.(prev >= ts) -> ()
  | Some _ | None -> t.causal_ts <- Some ts

let last_timestamp t = t.causal_ts
let requests_sent t = t.sent
let duplicate_replies t = t.dup_replies
