module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id

(* ------------------------------------------------------------------ *)
(* Common setup: client on n0, replicas on n1..nR                      *)

type rig = {
  cluster : Cluster.t;
  replicas : Repl.Replica.t list;
  client : Rpc.Client.t;
}

let replica_nodes replicas = List.init replicas (fun k -> k + 1)

let setup ?(seed = 1L) ?(replicas = 3) ?clock_config ?totem_config
    ?(style = Repl.Replica.Active) ?(use_cts = true)
    ?(drift = fun _ -> Cts.Drift.No_compensation) ?(offset_tracking = true)
    ?(recorder = fun _ -> Apps.null_recorder) ?obs () =
  let cluster =
    Cluster.create ~seed ?clock_config ?totem_config ?obs
      ~nodes:(replicas + 1) ()
  in
  let drift = drift cluster in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster
        ~on_nodes:(List.init (replicas + 1) Fun.id));
  let initial_members =
    List.map Nid.of_int (replica_nodes replicas)
  in
  let config =
    {
      Repl.Replica.default_config with
      style;
      drift;
      offset_tracking;
      initial_members;
    }
  in
  let reps =
    List.map
      (fun node ->
        Repl.Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:
            (Apps.time_server cluster ~node ~use_cts
               ~recorder:(recorder node) ())
          ())
      (replica_nodes replicas)
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  (* Wait until every node has a complete, identical picture of the server
     group and the client group. *)
  Cluster.run_until cluster (fun () ->
      Array.for_all
        (fun (n : Cluster.node) ->
          List.length
            (Gcs.Endpoint.members_of n.Cluster.endpoint
               cluster.Cluster.server_group)
          = replicas
          && List.length
               (Gcs.Endpoint.members_of n.Cluster.endpoint
                  cluster.Cluster.client_group)
             = 1)
        cluster.Cluster.nodes);
  List.iter
    (fun r -> Cts.Service.reset_stats (Repl.Replica.service r))
    reps;
  { cluster; replicas = reps; client }

(* Run a client workload inside a fiber and drive the engine to completion. *)
let run_client rig f =
  let finished = ref false in
  Dsim.Fiber.spawn rig.cluster.Cluster.eng (fun () ->
      f rig.client;
      finished := true);
  Cluster.run_until ~limit:(Span.of_sec 7200) rig.cluster (fun () ->
      !finished)

(* ------------------------------------------------------------------ *)
(* E2 — Figure 5                                                       *)

type latency_run = {
  summary : Stats.Summary.t;
  histogram : Stats.Histogram.t;
}

let latency ?seed ?(invocations = 10_000) ?replicas ?totem_config ~use_cts ()
    =
  let rig = setup ?seed ?replicas ?totem_config ~use_cts () in
  let summary = Stats.Summary.create () in
  let histogram = Stats.Histogram.create ~bin_width:20. () in
  run_client rig (fun client ->
      for _ = 1 to invocations do
        let _, lat = Rpc.Client.invoke_timed client ~op:"gettimeofday" ~arg:"" in
        let us = float_of_int (Span.to_us lat) in
        Stats.Summary.add summary us;
        Stats.Histogram.add histogram us
      done);
  { summary; histogram }

(* ------------------------------------------------------------------ *)
(* E3-E6 / A1 — Figure 6: the clock-sequence experiment                *)

type round_sample = {
  round : int;
  real : Time.t;
  pc : Time.t;
  gc : Time.t;
  offset : Span.t;
}

type skew_run = {
  samples : round_sample list array;
  ccs_sent : int array;
  ccs_suppressed : int array;
  rounds_total : int;
}

let skew ?seed ?(rounds = 100) ?(replicas = 3)
    ?(delays_us = [ 100; 200; 300 ]) ?(compensation = `No_compensation)
    ?clock_drift_ppm ?obs () =
  let acc = Array.make replicas [] in
  let recorder node =
    (* node 1 -> replica index 0 *)
    let idx = node - 1 in
    {
      Apps.on_round =
        (fun ~round ~real ~pc ~gc ~offset ->
          acc.(idx) <- { round; real; pc; gc; offset } :: acc.(idx));
    }
  in
  let clock_config =
    match clock_drift_ppm with
    | None -> None
    | Some f ->
        Some
          (fun i -> { Clock.Hwclock.default_config with drift_ppm = f i })
  in
  let drift cluster =
    match compensation with
    | `No_compensation -> Cts.Drift.No_compensation
    | `Mean_delay us -> Cts.Drift.Mean_delay (Span.of_us us)
    | `Anchored (gain, max_skew_us) ->
        Cts.Drift.Anchored
          {
            source =
              Clock.External_source.create cluster.Cluster.eng
                ~max_skew:(Span.of_us max_skew_us);
            gain;
          }
  in
  let rig = setup ?seed ~replicas ~drift ?clock_config ~recorder ?obs () in
  let arg =
    Printf.sprintf "%d:%s" rounds
      (String.concat "," (List.map string_of_int delays_us))
  in
  run_client rig (fun client ->
      ignore (Rpc.Client.invoke client ~op:"seq" ~arg : string));
  (* The client returns once a quorum replies, so the laggard replica's
     final round can still be in flight.  Let it drain, otherwise the
     per-replica samples and obs events undercount the last round on a
     seed-dependent minority of schedules. *)
  Cluster.run_for rig.cluster (Span.of_ms 50);
  (* Mirror Cluster_hier: the engine's queue high-water mark is published
     as a gauge so `ctsim run` can report it without holding the rig. *)
  (match obs with
  | Some s -> (
      match Obs.Sink.metrics s with
      | Some m ->
          Obs.Metrics.gauge m "event_queue_hwm"
          := float_of_int (Dsim.Engine.queue_high_water rig.cluster.Cluster.eng)
      | None -> ())
  | None -> ());
  let stats r = Cts.Service.stats (Repl.Replica.service r) in
  {
    samples = Array.map List.rev acc;
    ccs_sent =
      Array.of_list
        (List.map (fun r -> (stats r).Cts.Service.ccs_sent) rig.replicas);
    ccs_suppressed =
      Array.of_list
        (List.map (fun r -> (stats r).Cts.Service.suppressed) rig.replicas);
    rounds_total = rounds;
  }

let drift_slope run =
  let points =
    Array.to_list run.samples
    |> List.concat_map
         (List.map (fun s ->
              ( Time.to_sec_f s.real,
                float_of_int (Span.to_us (Time.diff s.gc s.real)) )))
  in
  (Stats.Regression.fit points).Stats.Regression.slope

let drift_per_round run =
  let points =
    Array.to_list run.samples
    |> List.concat_map
         (List.map (fun s ->
              ( float_of_int s.round,
                float_of_int (Span.to_us (Time.diff s.gc s.real)) )))
  in
  (Stats.Regression.fit points).Stats.Regression.slope

type drift_stats = {
  per_round_us : float;
  per_second_us : float;
  rounds_per_sec : float;
}

let drift_stats run =
  let per_round_us = drift_per_round run in
  let per_second_us = drift_slope run in
  let rounds_per_sec =
    (* Issue rate measured on replica 0's sample stream. *)
    match run.samples.(0) with
    | ({ real = first; _ } :: _ as samples) when List.length samples >= 2 ->
        let last = List.nth samples (List.length samples - 1) in
        let elapsed = Time.to_sec_f last.real -. Time.to_sec_f first in
        if elapsed > 0. then float_of_int (List.length samples - 1) /. elapsed
        else 0.
    | _ -> 0.
  in
  { per_round_us; per_second_us; rounds_per_sec }

(* ------------------------------------------------------------------ *)
(* A2 — roll-back / fast-forward on failover                           *)

type rollback_run = {
  readings : int;
  failovers : int;
  client_rollbacks : int;
  client_max_rollback : Span.t;
  client_max_jump : Span.t;
}

let rollback ?seed ?(replicas = 3) ?(readings_per_phase = 30)
    ?clock_offset_us ~style ~offset_tracking () =
  let clock_offset_us =
    match clock_offset_us with
    | Some f -> f
    | None -> fun i -> -300 * (i - 1) (* node i is (i-1)*300 us behind *)
  in
  let clock_config i =
    {
      Clock.Hwclock.default_config with
      offset = Span.of_us (clock_offset_us i);
    }
  in
  let rig = setup ?seed ~replicas ~style ~offset_tracking ~clock_config () in
  let readings = ref 0 in
  let rollbacks = ref 0 in
  let max_rollback = ref Span.zero in
  let max_jump = ref Span.zero in
  let last = ref None in
  let note v =
    incr readings;
    (match !last with
    | Some prev ->
        if Time.(v < prev) then begin
          incr rollbacks;
          let m = Time.diff prev v in
          if Span.(m > !max_rollback) then max_rollback := m
        end
        else begin
          let j = Time.diff v prev in
          if Span.(j > !max_jump) then max_jump := j
        end
    | None -> ());
    last := Some v
  in
  let reps = Array.of_list rig.replicas in
  run_client rig (fun client ->
      let read_phase () =
        for _ = 1 to readings_per_phase do
          let r =
            Rpc.Client.invoke ~timeout:(Span.of_ms 100) client
              ~op:"gettimeofday" ~arg:""
          in
          note (Time.of_ns (int_of_string r))
        done
      in
      read_phase ();
      for victim = 0 to replicas - 2 do
        Repl.Replica.crash reps.(victim);
        (* wait for the membership change to finish *)
        Dsim.Fiber.sleep rig.cluster.Cluster.eng (Span.of_ms 30);
        read_phase ();
        ignore victim
      done);
  {
    readings = !readings;
    failovers = replicas - 1;
    client_rollbacks = !rollbacks;
    client_max_rollback = !max_rollback;
    client_max_jump = !max_jump;
  }

(* ------------------------------------------------------------------ *)
(* M1 — token calibration                                              *)

type token_run = {
  hop_summary : Stats.Summary.t;
  hop_histogram : Stats.Histogram.t;
  rotations : int;
}

let token_calibration ?(seed = 1L) ?(rotations = 10_000) ?(nodes = 4) () =
  let cluster = Cluster.create ~seed ~nodes () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:(List.init nodes Fun.id));
  let hop_summary = Stats.Summary.create () in
  let hop_histogram = Stats.Histogram.create ~bin_width:2. () in
  let seen = ref 0 in
  let last_arrival = ref None in
  let eng = cluster.Cluster.eng in
  Totem.Node.on_token
    (Gcs.Endpoint.totem cluster.Cluster.nodes.(0).Cluster.endpoint)
    (fun _tok ->
      let now = Dsim.Engine.now eng in
      (match !last_arrival with
      | Some prev ->
          incr seen;
          let rotation = Time.diff now prev in
          let hop = float_of_int (Span.to_us rotation) /. float_of_int nodes in
          Stats.Summary.add hop_summary hop;
          Stats.Histogram.add hop_histogram hop
      | None -> ());
      last_arrival := Some now);
  Cluster.run_until ~limit:(Span.of_sec 60) cluster (fun () ->
      !seen >= rotations);
  { hop_summary; hop_histogram; rotations = !seen }

(* ------------------------------------------------------------------ *)
(* E1 — Figure 4 worked example                                        *)

type fig4_row = {
  f4_round : int;
  f4_replica : int;
  f4_pc_min : float;
  f4_gc_min : float;
  f4_offset_min : float;
}

(* One paper "minute" = 1 simulated millisecond. *)
let minute = 1000. (* microseconds *)

let fig4 () =
  let cluster =
    Cluster.create ~seed:7L
      ~latency:(Netsim.Latency.Constant (Span.of_us 1))
      ~nodes:3 ()
  in
  let eng = cluster.Cluster.eng in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2 ]);
  let group = cluster.Cluster.server_group in
  let services =
    Array.map
      (fun (n : Cluster.node) ->
        let service =
          Cts.Service.create eng ~endpoint:n.Cluster.endpoint ~group
            ~clock:n.Cluster.clock ()
        in
        Gcs.Endpoint.join_group n.Cluster.endpoint group
          ~handler:(fun ev ->
            match ev with
            | Gcs.Endpoint.Deliver { msg; _ } ->
                Cts.Service.on_message service msg
            | Gcs.Endpoint.View_change v -> Cts.Service.on_view service v
            | Gcs.Endpoint.Block | Gcs.Endpoint.Evicted -> ());
        service)
      cluster.Cluster.nodes
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           group)
      = 3);
  (* Real times (in "minutes" past 8:00) at which each replica executes its
     three clock-related operations, from Figure 4:
       round 1: r1@10  r2@15  r3@25
       round 2: r1@40  r2@30  r3@35
       round 3: r1@60  r2@55  r3@50 *)
  let schedule = [| [ 10.; 40.; 60. ]; [ 15.; 30.; 55. ]; [ 25.; 35.; 50. ] |] in
  let base = Dsim.Engine.now eng in
  let at_minute m = Time.add base (Span.of_us (int_of_float (m *. minute))) in
  let rows = ref [] in
  let thread = Cts.Thread_id.of_int 1 in
  let done_count = ref 0 in
  Array.iteri
    (fun i times ->
      Dsim.Fiber.spawn eng (fun () ->
          List.iteri
            (fun k m ->
              let target = at_minute m in
              Dsim.Fiber.sleep eng (Time.diff target (Dsim.Engine.now eng));
              let pc = Clock.Hwclock.read cluster.Cluster.nodes.(i).Cluster.clock in
              let gc = Cts.Service.gettimeofday services.(i) ~thread in
              let offset = Cts.Service.offset services.(i) in
              let to_min t = float_of_int (Span.to_us (Time.diff t base)) /. minute in
              rows :=
                {
                  f4_round = k + 1;
                  f4_replica = i + 1;
                  f4_pc_min = to_min pc;
                  f4_gc_min = to_min gc;
                  f4_offset_min = float_of_int (Span.to_us offset) /. minute;
                }
                :: !rows)
            times;
          incr done_count))
    schedule;
  Cluster.run_until cluster (fun () -> !done_count = 3);
  List.sort
    (fun a b ->
      match compare a.f4_round b.f4_round with
      | 0 -> compare a.f4_replica b.f4_replica
      | c -> c)
    !rows

(* ------------------------------------------------------------------ *)
(* E7 — §5 extension: causality across groups                           *)

type causal_run = {
  independent_gap : Span.t;
  causal_ok : bool;
  monotone_after : bool;
}

let causal ?(seed = 1L) () =
  let group_a = Gcs.Group_id.of_int 10 and group_b = Gcs.Group_id.of_int 11 in
  let clock_config i =
    if i = 1 || i = 2 then
      { Clock.Hwclock.default_config with offset = Span.of_ms 500 }
    else Clock.Hwclock.default_config
  in
  let cluster = Cluster.create ~seed ~clock_config ~nodes:5 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3; 4 ]);
  let mk_replicas group nodes =
    let config =
      { Repl.Replica.default_config with
        initial_members = List.map Nid.of_int nodes }
    in
    List.map
      (fun node ->
        Repl.Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint ~group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:(Apps.time_server cluster ~node ())
          ())
      nodes
  in
  let _ra = mk_replicas group_a [ 1; 2 ] and _rb = mk_replicas group_b [ 3; 4 ] in
  let client group my =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:(Gcs.Group_id.of_int my) ~server_group:group ()
  in
  let ca = client group_a 20 and cb = client group_b 21 in
  Cluster.run_until cluster (fun () ->
      let members g =
        List.length
          (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint g)
      in
      members group_a = 2 && members group_b = 2);
  let read c =
    Time.of_ns (int_of_string (Rpc.Client.invoke c ~op:"gettimeofday" ~arg:""))
  in
  let gap = ref Span.zero and causal_ok = ref false and mono = ref false in
  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      let ta = read ca in
      let tb = read cb in
      gap := Time.diff ta tb;
      let ta2 = read ca in
      (match Rpc.Client.last_timestamp ca with
      | Some ts -> Rpc.Client.observe_timestamp cb ts
      | None -> ());
      let tb2 = read cb in
      causal_ok := Time.(tb2 >= ta2);
      let tb3 = read cb in
      mono := Time.(tb3 >= tb2);
      finished := true);
  Cluster.run_until ~limit:(Span.of_sec 60) cluster (fun () -> !finished);
  { independent_gap = !gap; causal_ok = !causal_ok; monotone_after = !mono }

(* ------------------------------------------------------------------ *)
(* A3 — recovery: adding a replica to a running group                  *)

type recovery_run = {
  pre_join_readings : int Array.t;
  joiner_initialized : bool;
  joiner_state_matches : bool;
  group_clock_monotone : bool;
}

let recovery ?(seed = 1L) ?(readings = 40) () =
  let replicas = 2 in
  let nodes = replicas + 2 in
  (* client on n0, bootstrap replicas on n1-n2, joiner on n3 *)
  let cluster =
    Cluster.create ~seed ~nodes ~bootstrap:(fun i -> i < 3) ()
  in
  List.iter (Cluster.start cluster) [ 0; 1; 2 ];
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2 ]);
  let initial_members = [ Nid.of_int 1; Nid.of_int 2 ] in
  let config =
    { Repl.Replica.default_config with initial_members }
  in
  let make_replica ~recovering node =
    Repl.Replica.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
      ~group:cluster.Cluster.server_group
      ~clock:cluster.Cluster.nodes.(node).Cluster.clock
      ~config:{ config with recovering }
      ~app:(Apps.time_server cluster ~node ())
      ()
  in
  let r1 = make_replica ~recovering:false 1 in
  let r2 = make_replica ~recovering:false 2 in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 2);
  let rig = { cluster; replicas = [ r1; r2 ]; client } in
  let monotone = ref true in
  let last = ref Time.epoch in
  let joiner = ref None in
  let pre_join = ref [||] in
  run_client rig (fun client ->
      let read () =
        let r = Rpc.Client.invoke client ~op:"uid" ~arg:"" in
        match String.split_on_char '.' r with
        | [ ns; _ ] ->
            let v = Time.of_ns (int_of_string ns) in
            if Time.(v < !last) then monotone := false;
            last := v
        | _ -> failwith "bad uid"
      in
      for _ = 1 to readings / 2 do
        read ()
      done;
      pre_join :=
        [| Repl.Replica.processed r1; Repl.Replica.processed r2 |];
      (* bring up the new replica mid-stream *)
      Cluster.start rig.cluster 3;
      joiner := Some (make_replica ~recovering:true 3);
      for _ = 1 to readings / 2 do
        read ()
      done;
      (* give the state transfer time to finish if it has not already *)
      Dsim.Fiber.sleep rig.cluster.Cluster.eng (Span.of_ms 50));
  let joiner = Option.get !joiner in
  {
    pre_join_readings = !pre_join;
    joiner_initialized =
      Cts.Service.initialized (Repl.Replica.service joiner)
      && Repl.Replica.recovered joiner;
    joiner_state_matches =
      Repl.Replica.snapshot joiner = Repl.Replica.snapshot r1;
    group_clock_monotone = !monotone;
  }
