module Time = Dsim.Time
module Span = Dsim.Time.Span

type recorder = {
  on_round :
    round:int -> real:Time.t -> pc:Time.t -> gc:Time.t -> offset:Span.t -> unit;
}

let null_recorder =
  { on_round = (fun ~round:_ ~real:_ ~pc:_ ~gc:_ ~offset:_ -> ()) }

let parse_seq_arg arg =
  match String.split_on_char ':' arg with
  | [ count; delays ] ->
      let count = int_of_string count in
      let delays =
        String.split_on_char ',' delays |> List.map int_of_string
      in
      if count <= 0 || delays = [] then invalid_arg "seq";
      (count, delays)
  | _ -> invalid_arg "seq"

let time_server (cluster : Cluster.t) ~node ?(use_cts = true)
    ?(recorder = null_recorder) () service =
  let eng = cluster.Cluster.eng in
  let clock = cluster.Cluster.nodes.(node).Cluster.clock in
  let rng = Dsim.Rng.split (Dsim.Engine.rng eng) in
  let uid_counter = ref 0 in
  let read ~thread call =
    if use_cts then Cts.Service.clock_read service ~thread ~call
    else
      Time.truncate_to (Cts.Call_type.granularity call)
        (Clock.Hwclock.read clock)
  in
  let handle ~thread ~op ~arg =
    match op with
    | "gettimeofday" ->
        string_of_int (Time.to_ns (read ~thread Cts.Call_type.Gettimeofday))
    | "time" -> string_of_int (Time.to_ns (read ~thread Cts.Call_type.Time))
    | "uid" ->
        incr uid_counter;
        Printf.sprintf "%d.%d"
          (Time.to_ns (read ~thread Cts.Call_type.Gettimeofday))
          !uid_counter
    | "seq" ->
        let count, delays = parse_seq_arg arg in
        let last = ref Time.epoch in
        for round = 1 to count do
          (* The paper inserts an empty iteration loop between operations;
             the achieved delay varies slightly with CPU scheduling.  We
             draw the nominal delay per replica and add small noise. *)
          let nominal = Dsim.Rng.choose rng delays in
          let noise = Dsim.Rng.int_range rng 0 20 in
          Dsim.Fiber.sleep eng (Span.of_us (nominal + noise));
          (* Sample [real] and [pc] at the same instant the clock-related
             operation is issued.  [gc] settles one CCS delivery later, so
             sampling real time after [read] returns would skew every
             (real, pc, gc) tuple by the round's settlement latency. *)
          let real = Dsim.Engine.now eng in
          let pc = Clock.Hwclock.read clock in
          let gc = read ~thread Cts.Call_type.Gettimeofday in
          last := gc;
          recorder.on_round ~round ~real ~pc ~gc
            ~offset:(Cts.Service.offset service)
        done;
        string_of_int (Time.to_ns !last)
    | _ -> arg
  in
  {
    Repl.Replica.handle;
    snapshot = (fun () -> string_of_int !uid_counter);
    restore = (fun s -> uid_counter := int_of_string s);
  }
