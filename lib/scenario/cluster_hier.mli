(** Canned hierarchical testbed: [shards] Totem rings of [shard_size]
    replicas each, every shard on its own LAN segment, bridged by a WAN
    network that carries the cross-shard gateway protocol ({!Hier}).

    Unlike {!Cluster} there is no client node and no RPC layer: every
    replica runs a {!Cts.Service} directly and a periodic reader fiber
    opens the shard's CCS rounds, which is the workload the paper's §4.2
    clock-sequence experiment induces through active replication — here
    scaled to hundreds of replicas without the request plumbing. *)

type replica = {
  id : Netsim.Node_id.t;
  shard : int;
  rank : int;
  endpoint : Gcs.Endpoint.t;
  clock : Clock.Hwclock.t;
  service : Cts.Service.t;
  gateway : Hier.Gateway.t;
  mutable crashed : bool;
  mutable boost : bool;
      (** set by the gateway's correction hook; makes the reader fiber
          issue its next clock read immediately (see
          {!Hier.Gateway.set_on_correction}) *)
}

type t = {
  eng : Dsim.Engine.t;
  topo : Hier.Topology.t;
  shard_nets : Gcs.Endpoint.payload Totem.Wire.t Netsim.Network.t array;
  bridge : Hier.Bridge_msg.t Netsim.Network.t;
  replicas : replica array;  (** indexed by global node id *)
  group : Gcs.Group_id.t;
  reader_period : Dsim.Time.Span.t;
  mutable readers_stopped : bool;
  form_dirty : bool array;
      (** per shard: a membership event fired since the formation
          predicate last looked (internal to {!start_all}'s barriers) *)
  form_cache : bool array;
  mutable form_formed : int;
  mutable form_any_dirty : bool;
}

val create :
  ?seed:int64 ->
  ?shard_latency:Netsim.Latency.t ->
  ?bridge_latency:Netsim.Latency.t ->
  ?bridge_loss:float ->
  ?totem_config:Totem.Config.t ->
  ?clock_config:(int -> Clock.Hwclock.config) ->
  ?gateway_config:Hier.Gateway.config ->
  ?reader_period:Dsim.Time.Span.t ->
  ?obs:Obs.Sink.t ->
  shards:int ->
  shard_size:int ->
  unit ->
  t
(** [clock_config i] configures global node [i]'s physical clock (use
    [Hier.Topology.shard_of] to skew whole shards).  [reader_period]
    (default 2 ms) is the CCS round issue period; it must comfortably
    exceed the shard's token rotation time.  Endpoints are created but
    not started. *)

val start_all : t -> unit
(** Start every endpoint and run the simulation until each shard's ring
    and group membership are complete.  The completion barriers are
    event-driven: ring-view/blocked/group-view hooks mark shards dirty
    and only dirty shards are re-checked, so a quiet engine step costs
    O(1) instead of the previous O(shards x shard_size^2) poll — the
    exit step is unchanged. *)

val start_readers : t -> unit
(** Spawn the periodic clock-reader fiber on every live replica.  Readers
    sleep to common period boundaries so all replicas of a shard open the
    same CCS round together (first read one period after the call). *)

val stop_readers : t -> unit

val run_for : t -> Dsim.Time.Span.t -> unit
val run_until : ?limit:Dsim.Time.Span.t -> t -> (unit -> bool) -> unit

val crash : t -> Netsim.Node_id.t -> unit
(** Crash a replica (endpoint, gateway agent and reader). *)

val live_members : t -> int -> Netsim.Node_id.t list
(** Shard [s]'s non-crashed replicas, in node-id order. *)

val crash_gateway : t -> int -> Netsim.Node_id.t option
(** Crash shard [s]'s current gateway, if any; returns its id. *)

val gateway_of : t -> int -> Netsim.Node_id.t option
(** Who shard [s]'s live replicas believe is their gateway ([None] when
    they disagree or no election has happened — disagreement is an
    invariant violation the model checker looks for). *)

val isolate_shard : t -> int -> unit
(** Partition the bridge so shard [s]'s gateway cannot reach the other
    shards (the shard's own ring keeps running). *)

val heal_bridge : t -> unit

(** {1 Measurements} *)

val estimate : t -> Netsim.Node_id.t -> Dsim.Time.t
(** A replica's current group-clock estimate. *)

val shard_estimates : t -> Dsim.Time.t option array
(** Per shard: the lowest live replica's estimate ([None] if the shard is
    entirely dead). *)

val cross_shard_skew : t -> Dsim.Time.Span.t
(** Worst-case spread (max − min) of the live shard estimates; also
    published as the [hier_cross_shard_skew_us] gauge when an obs sink
    with metrics is attached. *)

val neighbor_skew : t -> Dsim.Time.Span.t
(** Largest estimate gap between ring-adjacent live shards (the Gradient
    TRIX quality metric). *)

val converged : t -> bound:Dsim.Time.Span.t -> bool

val agreed_rounds : t -> int
(** Bridge rounds applied, summed over all agents. *)

val regressions : t -> int
(** Global-clock regression attempts (clamped), summed over all agents —
    expected 0 while any holder of the agreed value survives. *)

val ccs_rounds_completed : t -> int
(** Reader CCS rounds completed, summed over live replicas. *)

val queue_hwm : t -> int
(** Event-queue high-water mark of the underlying engine (deepest the
    queue has been since engine creation) — the backlog-pressure gauge;
    also published as the [event_queue_hwm] gauge when an obs sink with
    metrics is attached. *)
