module Time = Dsim.Time
module Span = Dsim.Time.Span
module E = Experiments

let us_of_span s = float_of_int (Span.to_us s)

let fig4 ppf rows =
  Format.fprintf ppf
    "Figure 4 (worked example, 1 'minute' = 1 simulated ms):@.";
  Format.fprintf ppf "%-6s %-9s %-12s %-12s %-12s@." "round" "replica"
    "pc (min)" "gc (min)" "offset (min)";
  List.iter
    (fun (r : E.fig4_row) ->
      Format.fprintf ppf "%-6d r%-8d %-12.2f %-12.2f %+-12.2f@." r.f4_round
        r.f4_replica r.f4_pc_min r.f4_gc_min r.f4_offset_min)
    rows;
  Format.fprintf ppf
    "paper expects offsets: round1 (0,-5,-15)  round2 (-15,-5,-10)  round3 \
     (-20,-15,-10)@."

let latency_pair ppf ~(with_cts : E.latency_run)
    ~(without_cts : E.latency_run) =
  Format.fprintf ppf
    "Figure 5 (probability density of end-to-end latency at the client):@.";
  Format.fprintf ppf "%-14s %-14s %-14s@." "latency (us)" "with CTS"
    "without CTS";
  let bins =
    max
      (Stats.Histogram.bin_count with_cts.histogram)
      (Stats.Histogram.bin_count without_cts.histogram)
  in
  for i = 0 to bins - 1 do
    let mid = Stats.Histogram.bin_mid with_cts.histogram i in
    let dw = Stats.Histogram.density with_cts.histogram i in
    let dwo = Stats.Histogram.density without_cts.histogram i in
    if dw > 0.0005 || dwo > 0.0005 then
      Format.fprintf ppf "%-14.0f %-14.4f %-14.4f@." mid dw dwo
  done;
  let m_w = Stats.Summary.mean with_cts.summary in
  let m_wo = Stats.Summary.mean without_cts.summary in
  Format.fprintf ppf "mean latency: with CTS %.1f us, without %.1f us@." m_w
    m_wo;
  Format.fprintf ppf
    "overhead of the consistent time service: %.1f us (paper: ~300 us, one \
     extra token rotation)@."
    (m_w -. m_wo)

let take n l = List.filteri (fun i _ -> i < n) l

let fig6a ppf (run : E.skew_run) ~rounds =
  Format.fprintf ppf
    "Figure 6(a) (interval between clock operations, first %d rounds, us):@."
    rounds;
  Format.fprintf ppf "%-6s %-12s %-12s %-12s %-12s@." "round" "group"
    "local r1" "local r2" "local r3";
  let per_replica =
    Array.map (fun samples -> Array.of_list (take rounds samples)) run.samples
  in
  for r = 1 to rounds - 1 do
    let gc_int =
      us_of_span
        (Time.diff per_replica.(0).(r).E.gc per_replica.(0).(r - 1).E.gc)
    in
    let local i =
      if r < Array.length per_replica.(i) then
        us_of_span
          (Time.diff per_replica.(i).(r).E.pc per_replica.(i).(r - 1).E.pc)
      else nan
    in
    Format.fprintf ppf "%-6d %-12.0f %-12.0f %-12.0f %-12.0f@." (r + 1) gc_int
      (local 0) (local 1) (local 2)
  done

let first_round_winner (run : E.skew_run) =
  (* the winner of round 1 is the replica whose offset after round 1 has the
     smallest magnitude (its own proposal was adopted, offset unchanged
     modulo its own clock error) *)
  let score i =
    match run.samples.(i) with
    | s :: _ -> abs (Span.to_ns s.E.offset)
    | [] -> max_int
  in
  let best = ref 0 in
  Array.iteri (fun i _ -> if score i < score !best then best := i) run.samples;
  !best

let fig6b ppf (run : E.skew_run) ~rounds =
  let w = first_round_winner run in
  Format.fprintf ppf
    "Figure 6(b) (clock offset at the first-round winner, replica %d, us):@."
    (w + 1);
  Format.fprintf ppf "%-6s %-12s@." "round" "offset";
  List.iteri
    (fun i (s : E.round_sample) ->
      if i < rounds then
        Format.fprintf ppf "%-6d %+-12.0f@." s.E.round (us_of_span s.E.offset))
    run.samples.(w)

let fig6c ppf (run : E.skew_run) ~rounds =
  Format.fprintf ppf
    "Figure 6(c) (normalized clocks per round, us since round 1):@.";
  Format.fprintf ppf "%-6s %-12s %-12s %-12s %-12s@." "round" "group"
    "local r1" "local r2" "local r3";
  let base =
    Array.map
      (fun samples ->
        match samples with s :: _ -> s.E.pc | [] -> Time.epoch)
      run.samples
  in
  let gc_base =
    match run.samples.(0) with s :: _ -> s.E.gc | [] -> Time.epoch
  in
  let arr = Array.map Array.of_list run.samples in
  for r = 0 to min (rounds - 1) (Array.length arr.(0) - 1) do
    let gc = us_of_span (Time.diff arr.(0).(r).E.gc gc_base) in
    let local i =
      if r < Array.length arr.(i) then
        us_of_span (Time.diff arr.(i).(r).E.pc base.(i))
      else nan
    in
    Format.fprintf ppf "%-6d %-12.0f %-12.0f %-12.0f %-12.0f@." (r + 1) gc
      (local 0) (local 1) (local 2)
  done;
  Format.fprintf ppf
    "drift of the group clock against real time: %.1f us/s (paper: group \
     clock runs slower than real time)@."
    (E.drift_slope run);
  Format.fprintf ppf
    "drift per CCS round: %.1f us/round (rate-independent; the us/s figure \
     scales with how fast rounds are issued)@."
    (E.drift_per_round run)

let msg_counts ppf (run : E.skew_run) =
  Format.fprintf ppf
    "CCS message counts (duplicate suppression, cf. paper's 1 / 9977 / 22):@.";
  Format.fprintf ppf "%-10s %-12s %-12s@." "replica" "CCS sent" "suppressed";
  Array.iteri
    (fun i sent ->
      Format.fprintf ppf "r%-9d %-12d %-12d@." (i + 1) sent
        run.ccs_suppressed.(i))
    run.ccs_sent;
  let total = Array.fold_left ( + ) 0 run.ccs_sent in
  Format.fprintf ppf
    "total sent: %d for %d rounds (paper: total = number of rounds; without \
     suppression it would be %d)@."
    total run.rounds_total
    (run.rounds_total * Array.length run.ccs_sent)

let drift_table ppf runs =
  Format.fprintf ppf "Drift-compensation ablation (paper §3.3):@.";
  Format.fprintf ppf "%-24s %-18s %-18s@." "strategy" "drift (us/s)"
    "drift (us/round)";
  List.iter
    (fun (name, run) ->
      Format.fprintf ppf "%-24s %+-18.1f %+-18.1f@." name (E.drift_slope run)
        (E.drift_per_round run))
    runs

let rollback_pair ppf ~(baseline : E.rollback_run) ~(cts : E.rollback_run) =
  Format.fprintf ppf
    "Roll-back on failover (paper §1's motivation; %d failovers each):@."
    baseline.failovers;
  Format.fprintf ppf "%-28s %-12s %-16s %-16s@." "clock service" "rollbacks"
    "max rollback" "max fwd jump";
  let row name (r : E.rollback_run) =
    Format.fprintf ppf "%-28s %-12d %-16s %-16s@." name r.client_rollbacks
      (Format.asprintf "%a" Span.pp r.client_max_rollback)
      (Format.asprintf "%a" Span.pp r.client_max_jump)
  in
  row "primary/backup [9],[3]" baseline;
  row "consistent time service" cts;
  Format.fprintf ppf
    "the group clock never runs backwards; the baseline does.@."

let group_size_table ppf rows =
  Format.fprintf ppf
    "CTS overhead vs replication degree (mean end-to-end latency, us):@.";
  Format.fprintf ppf "%-10s %-12s %-12s %-12s@." "replicas" "with CTS"
    "without" "overhead";
  List.iter
    (fun (n, (w : E.latency_run), (wo : E.latency_run)) ->
      let mw = Stats.Summary.mean w.summary in
      let mwo = Stats.Summary.mean wo.summary in
      Format.fprintf ppf "%-10d %-12.1f %-12.1f %-12.1f@." n mw mwo (mw -. mwo))
    rows;
  Format.fprintf ppf
    "the overhead stays around one token rotation, which itself grows with      the ring size@."

let token ppf (run : E.token_run) =
  Format.fprintf ppf
    "Token-passing time calibration (%d rotations; paper [20]: peak ~51 \
     us/hop):@."
    run.rotations;
  Format.fprintf ppf "per-hop: %a@." Stats.Summary.pp run.hop_summary;
  let mode = Stats.Histogram.mode_bin run.hop_histogram in
  Format.fprintf ppf "peak density at %.0f us/hop@."
    (Stats.Histogram.bin_mid run.hop_histogram mode)

let causal ppf (r : E.causal_run) =
  Format.fprintf ppf
    "Causality across groups (the paper's §5 proposal, implemented):@.";
  Format.fprintf ppf "  gap between the two group clocks:   %a@."
    Span.pp r.independent_gap;
  Format.fprintf ppf
    "  with the timestamp carried, B's reading follows A's: %b@." r.causal_ok;
  Format.fprintf ppf "  B's group clock stays monotone afterwards:          %b@."
    r.monotone_after

let recovery ppf (r : E.recovery_run) =
  Format.fprintf ppf "Recovery / new-replica integration (paper §3.2):@.";
  Format.fprintf ppf "  joiner clock initialized by special CCS round: %b@."
    r.joiner_initialized;
  Format.fprintf ppf "  joiner state identical to the group's:        %b@."
    r.joiner_state_matches;
  Format.fprintf ppf "  group clock monotone across the join:         %b@."
    r.group_clock_monotone
