(** Runners for every measurement in the paper's evaluation (DESIGN.md's
    experiment index).  Each returns plain data; the bench harness and the
    CLI render it. *)

(** {1 E2 — Figure 5: end-to-end latency with and without the consistent
    time service} *)

type latency_run = {
  summary : Stats.Summary.t;  (** latency in microseconds *)
  histogram : Stats.Histogram.t;  (** Figure 5's probability density *)
}

val latency : ?seed:int64 -> ?invocations:int -> ?replicas:int ->
  ?totem_config:Totem.Config.t -> use_cts:bool -> unit -> latency_run
(** The §4.2 experiment (1): a client on [n0] invokes a remote method that
    returns the current time on a [replicas]-way actively replicated
    server; the end-to-end latency is measured at the client. *)

(** {1 E3-E6 / A1 — Figure 6 and drift: the clock-sequence experiment} *)

type round_sample = {
  round : int;
  real : Dsim.Time.t;
      (** simulation (real) time at which the clock-related operation was
          issued — the same instant [pc] was read, so (real, pc, gc) is a
          consistent sample (the group clock for the round settles one CCS
          delivery later) *)
  pc : Dsim.Time.t;  (** replica's physical clock at the round start *)
  gc : Dsim.Time.t;  (** group clock decided for the round *)
  offset : Dsim.Time.Span.t;  (** replica's clock offset after the round *)
}

type skew_run = {
  samples : round_sample list array;
      (** per replica (index 0 = the replica on node 1), in round order *)
  ccs_sent : int array;  (** CCS messages sent per replica (E3) *)
  ccs_suppressed : int array;
  rounds_total : int;
}

val skew :
  ?seed:int64 ->
  ?rounds:int ->
  ?replicas:int ->
  ?delays_us:int list ->
  ?compensation:
    [ `No_compensation
    | `Mean_delay of int  (** microseconds added to the offset per round *)
    | `Anchored of float * int  (** gain, external-source max skew in µs *) ] ->
  ?clock_drift_ppm:(int -> float) ->
  ?obs:Obs.Sink.t ->
  unit ->
  skew_run
(** The §4.2 experiment (2): one client invocation triggers [rounds]
    clock-related operations at each replica, separated by random delays
    drawn from [delays_us] (default [{100; 200; 300}] µs, the testbed's
    30k/60k/90k iteration loops).  [clock_drift_ppm i] sets node [i]'s
    crystal drift (default 0).  Figures 6(a)-(c) and the drift ablation are
    all projections of the returned samples. *)

val drift_slope : skew_run -> float
(** Drift rate of the group clock against real time in µs per second
    (negative = group clock runs slow), fitted over all replicas' samples.
    Note that this figure scales with the operation rate: without
    compensation, each CCS round loses a bounded amount (roughly half the
    one-way message delay), so issuing rounds faster makes the per-second
    slope proportionally steeper.  Use {!drift_per_round} to compare runs
    with different think times. *)

val drift_per_round : skew_run -> float
(** Drift of the group clock in µs per completed round, fitted against
    the round index instead of real time.  Rate-independent: the per-round
    loss is a property of the algorithm and the message delays, not of how
    frequently the application reads the clock. *)

type drift_stats = {
  per_round_us : float;  (** {!drift_per_round}: the calibrated quantity *)
  per_second_us : float;
      (** {!drift_slope}; ≈ [per_round_us × rounds_per_sec].  Only
          comparable across workloads with the same issue rate — quoting it
          against a testbed that issues rounds 1000× slower is a unit
          error on the time axis. *)
  rounds_per_sec : float;  (** measured CCS round issue rate *)
}

val drift_stats : skew_run -> drift_stats
(** The fig6 drift audit in one record: the per-second slope is the
    per-round ratchet (bounded by the one-way message delay) multiplied by
    the round issue rate. *)

(** {1 A2 — roll-back / fast-forward on failover} *)

type rollback_run = {
  readings : int;  (** successful client clock readings *)
  failovers : int;
  client_rollbacks : int;
      (** consecutive client-visible readings that went backwards *)
  client_max_rollback : Dsim.Time.Span.t;
  client_max_jump : Dsim.Time.Span.t;
      (** largest forward jump between consecutive readings *)
}

val rollback :
  ?seed:int64 ->
  ?replicas:int ->
  ?readings_per_phase:int ->
  ?clock_offset_us:(int -> int) ->
  style:Repl.Replica.style ->
  offset_tracking:bool ->
  unit ->
  rollback_run
(** Repeatedly read the clock through a replicated time server, crashing
    the current primary between phases ([replicas - 1] failovers).
    [clock_offset_us i] skews node [i]'s physical clock (default: node i is
    i×300 µs behind node 1).  With [offset_tracking = false] this is the
    prior-work primary/backup clock service ([9],[3]), which exhibits
    roll-back; with the consistent time service the readings never go
    back. *)

(** {1 M1 — token-rotation calibration} *)

type token_run = {
  hop_summary : Stats.Summary.t;  (** per-hop token passing time, µs *)
  hop_histogram : Stats.Histogram.t;
  rotations : int;
}

val token_calibration :
  ?seed:int64 -> ?rotations:int -> ?nodes:int -> unit -> token_run
(** Measure token inter-arrival at one node of an idle ring; the per-hop
    time is the rotation time divided by the ring size (the paper's
    reference [20] reports a peak density at ≈ 51 µs). *)

(** {1 E1 — Figure 4 worked example} *)

type fig4_row = {
  f4_round : int;
  f4_replica : int;  (** 1, 2 or 3 *)
  f4_pc_min : float;  (** physical clock, in "minutes" past 8:00 *)
  f4_gc_min : float;  (** group clock decided for the round *)
  f4_offset_min : float;  (** offset after the round *)
}

val fig4 : unit -> fig4_row list
(** Re-enact §3.4's example: three replicas with clocks that read real time,
    performing three clock operations at the real times of Figure 4 (8:10,
    8:30, 8:50 plus the stated per-replica lags), 1 simulated millisecond
    per "minute".  The returned offsets must match the figure:
    round 1 → (0, -5, -15), round 2 → (-15, -5, -10),
    round 3 → (-20, -15, -10). *)

(** {1 E7 — §5 extension: causality across groups} *)

type causal_run = {
  independent_gap : Dsim.Time.Span.t;
      (** how far group B's clock trails group A's when read back to back
          with no timestamp carried *)
  causal_ok : bool;
      (** with the timestamp carried, B's reading >= A's earlier reading *)
  monotone_after : bool;  (** B's clock keeps advancing from the floor *)
}

val causal : ?seed:int64 -> unit -> causal_run
(** Two replicated time-server groups whose clocks are half a second
    apart; a client reads A, carries the timestamp, then reads B. *)

(** {1 A3 — recovery: adding a replica to a running group} *)

type recovery_run = {
  pre_join_readings : int Array.t;  (** per original replica *)
  joiner_initialized : bool;
  joiner_state_matches : bool;
      (** the joiner's application state equals the group's *)
  group_clock_monotone : bool;
      (** client-visible readings never went backwards across the join *)
}

val recovery : ?seed:int64 -> ?readings:int -> unit -> recovery_run
(** Start a 2-replica active group, stream clock readings through it, add a
    third replica mid-stream (§3.2's state transfer with the special CCS
    round), and keep reading.  Checks initialization, state equality and
    monotonicity. *)
