(** Text renderers for the experiment results (shared by the benchmark
    harness and the CLI). *)

val fig4 : Format.formatter -> Experiments.fig4_row list -> unit
(** The §3.4 trace: one row per (round, replica) with physical clock, group
    clock and offset in "minutes", plus the expected values. *)

val latency_pair :
  Format.formatter ->
  with_cts:Experiments.latency_run ->
  without_cts:Experiments.latency_run ->
  unit
(** Figure 5: the two latency probability-density columns side by side and
    the measured overhead. *)

val fig6a : Format.formatter -> Experiments.skew_run -> rounds:int -> unit
(** Figure 6(a): interval between clock operations per replica (group clock
    and local physical clocks), first [rounds] rounds. *)

val first_round_winner : Experiments.skew_run -> int
(** Replica index (0-based) of the first round's winning synchronizer —
    the replica whose post-round-1 offset has the smallest magnitude.
    Its trace events carry [pid = index + 1] (node 0 is the client).
    Exposed for the observability tests, which cross-check the winner's
    per-round adjustment against the obs [ccs-round] events. *)

val fig6b : Format.formatter -> Experiments.skew_run -> rounds:int -> unit
(** Figure 6(b): offset evolution at the winner of the first round. *)

val fig6c : Format.formatter -> Experiments.skew_run -> rounds:int -> unit
(** Figure 6(c): normalized physical clocks and group clock per round. *)

val msg_counts : Format.formatter -> Experiments.skew_run -> unit
(** §4.3's duplicate-suppression counts: CCS messages sent per node. *)

val drift_table :
  Format.formatter -> (string * Experiments.skew_run) list -> unit
(** A1: drift slope per compensation strategy. *)

val rollback_pair :
  Format.formatter ->
  baseline:Experiments.rollback_run ->
  cts:Experiments.rollback_run ->
  unit
(** A2: roll-back behaviour of the prior-work baseline vs the consistent
    time service. *)

val group_size_table :
  Format.formatter ->
  (int * Experiments.latency_run * Experiments.latency_run) list ->
  unit
(** A4: CTS overhead as a function of the replication degree — rows of
    (replicas, with CTS, without CTS). *)

val token : Format.formatter -> Experiments.token_run -> unit
(** M1: token-passing-time calibration against the paper's ≈51 µs peak. *)

val recovery : Format.formatter -> Experiments.recovery_run -> unit
(** A3: state-transfer correctness summary. *)

val causal : Format.formatter -> Experiments.causal_run -> unit
(** E7: causal group-clock timestamps across groups (§5 extension). *)
