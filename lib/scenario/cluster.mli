(** Canned simulated testbed.

    Reproduces the paper's §4.2 setup: [n] PCs on a quiet 100 Mb/s Ethernet
    running one Totem instance each; node [n0] hosts the (unreplicated)
    CORBA client, the server replicas run on the remaining nodes.  Used by
    the examples, the integration tests and every benchmark. *)

type node = {
  id : Netsim.Node_id.t;
  endpoint : Gcs.Endpoint.t;
  clock : Clock.Hwclock.t;
}

type t = {
  eng : Dsim.Engine.t;
  net : Gcs.Endpoint.payload Totem.Wire.t Netsim.Network.t;
  nodes : node array;
  server_group : Gcs.Group_id.t;
  client_group : Gcs.Group_id.t;
}

val create :
  ?seed:int64 ->
  ?latency:Netsim.Latency.t ->
  ?totem_config:Totem.Config.t ->
  ?clock_config:(int -> Clock.Hwclock.config) ->
  ?bootstrap:(int -> bool) ->
  ?obs:Obs.Sink.t ->
  nodes:int ->
  unit ->
  t
(** [clock_config i] gives node [i]'s physical clock parameters (default:
    ideal clocks with 1 µs granularity).  [bootstrap i] marks node [i] as
    part of the initial fleet (default: all).  [obs] installs an
    observability sink on the engine before any node exists, so a trace
    captures ring formation as well (node 0 hosts the client; replica
    [k] of the experiment rigs is node [k+1], which is also the [pid]
    its trace events carry).  The endpoints are created but not
    started. *)

val start : t -> int -> unit
(** Start node [i]'s endpoint (join the ring). *)

val start_all : t -> unit

val run_for : t -> Dsim.Time.Span.t -> unit
(** Advance the simulation by a virtual duration. *)

val run_until :
  ?limit:Dsim.Time.Span.t -> t -> (unit -> bool) -> unit
(** Step the simulation until the predicate holds.  Raises [Failure] if the
    event queue drains or the limit (default 10 s) is exceeded first. *)

val ring_stable : t -> on_nodes:int list -> bool
(** All the given nodes are operational on a common ring containing exactly
    those nodes. *)
