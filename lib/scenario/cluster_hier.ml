module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id

type replica = {
  id : Nid.t;
  shard : int;
  rank : int;
  endpoint : Gcs.Endpoint.t;
  clock : Clock.Hwclock.t;
  service : Cts.Service.t;
  gateway : Hier.Gateway.t;
  mutable crashed : bool;
  mutable boost : bool;
}

type t = {
  eng : Dsim.Engine.t;
  topo : Hier.Topology.t;
  shard_nets : Gcs.Endpoint.payload Totem.Wire.t Netsim.Network.t array;
  bridge : Hier.Bridge_msg.t Netsim.Network.t;
  replicas : replica array;
  group : Gcs.Group_id.t;
  reader_period : Span.t;
  mutable readers_stopped : bool;
  (* Event-driven formation tracking.  The old barriers re-evaluated an
     O(shards x shard_size^2) membership predicate after EVERY engine
     step — the dominant cost of large formations (238 s of the 1024-
     replica run).  Instead, membership events (ring views, blocked
     rings, group view changes, crashes) mark their shard dirty, and the
     barrier predicate re-evaluates the exact predicate only for dirty
     shards: same value at every step — the event hooks cover every
     mutation the predicate reads — so the barrier exits at the
     identical step, at O(1) per quiet step. *)
  form_dirty : bool array; (* per shard *)
  form_cache : bool array; (* last exact predicate value per shard *)
  mutable form_formed : int; (* number of [true] entries in form_cache *)
  mutable form_any_dirty : bool;
}

let reader_thread = Cts.Thread_id.of_int 1

let mark_dirty t s =
  if not t.form_dirty.(s) then begin
    t.form_dirty.(s) <- true;
    t.form_any_dirty <- true
  end

let create ?(seed = 1L) ?shard_latency ?bridge_latency ?(bridge_loss = 0.)
    ?totem_config ?clock_config ?gateway_config
    ?(reader_period = Span.of_ms 2) ?obs ~shards ~shard_size () =
  let topo = Hier.Topology.create ~shards ~shard_size in
  let eng = Dsim.Engine.create ~seed () in
  (match obs with Some s -> Dsim.Engine.set_obs eng s | None -> ());
  let shard_latency =
    match shard_latency with
    | Some l -> l
    | None -> Netsim.Latency.calibrated ~wire:Netsim.Latency.default_wire
  in
  let bridge_latency =
    match bridge_latency with
    | Some l -> l
    | None -> Netsim.Latency.wan ~wire:Netsim.Latency.default_wan_wire
  in
  let bridge =
    Netsim.Network.create eng
      { Netsim.Network.latency = bridge_latency; loss = bridge_loss }
  in
  let shard_nets =
    Array.init shards (fun _ ->
        Netsim.Network.create eng
          { Netsim.Network.latency = shard_latency; loss = 0. })
  in
  let clock_config =
    match clock_config with
    | Some f -> f
    | None -> fun _ -> Clock.Hwclock.default_config
  in
  let group = Gcs.Group_id.of_int 1 in
  let make i =
    let id = Nid.of_int i in
    let shard = Hier.Topology.shard_of topo id in
    let endpoint =
      Gcs.Endpoint.create eng shard_nets.(shard) ~me:id ?totem_config
        ~bootstrap:true ()
    in
    let clock = Clock.Hwclock.create eng (clock_config i) in
    let service = Cts.Service.create eng ~endpoint ~group ~clock () in
    let gateway =
      Hier.Gateway.create eng bridge ~topology:topo ~shard ~me:id ~service
        ~clock ?config:gateway_config ()
    in
    let r =
      {
        id;
        shard;
        rank = Hier.Topology.rank_of topo id;
        endpoint;
        clock;
        service;
        gateway;
        crashed = false;
        boost = false;
      }
    in
    Hier.Gateway.set_on_correction gateway (fun () -> r.boost <- true);
    r
  in
  let t =
    {
      eng;
      topo;
      shard_nets;
      bridge;
      replicas = Array.init (Hier.Topology.replicas topo) make;
      group;
      reader_period;
      readers_stopped = false;
      form_dirty = Array.make shards true;
      form_cache = Array.make shards false;
      form_formed = 0;
      form_any_dirty = true;
    }
  in
  (* Every membership edge marks its shard dirty for the formation
     barriers; the hooks observe only. *)
  Array.iter
    (fun r ->
      let s = r.shard in
      Gcs.Endpoint.set_ring_view_hook r.endpoint
        (Some (fun ~ring:_ ~members:_ -> mark_dirty t s));
      Gcs.Endpoint.set_blocked_hook r.endpoint
        (Some (fun () -> mark_dirty t s)))
    t.replicas;
  t

(* ------------------------------------------------------------------ *)
(* Driving                                                             *)

let run_for t span =
  Dsim.Engine.run ~until:(Time.add (Dsim.Engine.now t.eng) span) t.eng

let run_until ?(limit = Span.of_sec 10) t pred =
  let deadline = Time.add (Dsim.Engine.now t.eng) limit in
  let rec go () =
    if pred () then ()
    else if Time.(Dsim.Engine.now t.eng > deadline) then
      failwith "Cluster_hier.run_until: time limit exceeded"
    else if not (Dsim.Engine.step t.eng) then
      failwith
        "Cluster_hier.run_until: event queue drained before predicate held"
    else go ()
  in
  go ()

let live_members t s =
  List.filter
    (fun id -> not t.replicas.(Nid.to_int id).crashed)
    (Hier.Topology.shard_members t.topo s)

let ring_formed t s =
  let expect = List.sort Nid.compare (live_members t s) in
  expect = []
  || List.for_all
       (fun id ->
         let tot = Gcs.Endpoint.totem t.replicas.(Nid.to_int id).endpoint in
         Totem.Node.is_operational tot
         && List.sort Nid.compare (Totem.Node.members tot) = expect)
       expect

let shard_formed t s =
  let expect = live_members t s in
  ring_formed t s
  && List.for_all
       (fun id ->
         List.length
           (Gcs.Endpoint.members_of t.replicas.(Nid.to_int id).endpoint t.group)
         = List.length expect)
       expect

let at_form_poll =
  Obs.Attrib.site ~sub:Obs.Subsystem.Scenario ~name:"form-poll"

(* Barrier over the cached per-shard values: exact predicates re-run for
   dirty shards only, then one integer comparison.  [exact t s] must
   depend only on state whose every mutation marks shard [s] dirty (ring
   views, blocked rings, group view changes, crashes) — that makes the
   cached value equal to the polled value at every step, so the barrier
   exits at the identical step as the polling version it replaces. *)
let form_pred t exact () =
  let shards = Hier.Topology.shards t.topo in
  if t.form_any_dirty then begin
    let s = Dsim.Engine.obs t.eng in
    Obs.Sink.attr_enter s at_form_poll;
    for sh = 0 to shards - 1 do
      if t.form_dirty.(sh) then begin
        t.form_dirty.(sh) <- false;
        let v = exact t sh in
        if v <> t.form_cache.(sh) then begin
          t.form_cache.(sh) <- v;
          t.form_formed <- (t.form_formed + if v then 1 else -1)
        end
      end
    done;
    t.form_any_dirty <- false;
    Obs.Sink.attr_leave s
  end;
  t.form_formed = shards

let form_barrier t ~limit exact =
  (* Start from scratch: events before this barrier may predate the hook
     installation or concern the other phase's predicate. *)
  Array.fill t.form_dirty 0 (Array.length t.form_dirty) true;
  t.form_any_dirty <- true;
  run_until ~limit t (form_pred t exact)

let start_all t =
  Array.iter (fun r -> Gcs.Endpoint.start r.endpoint) t.replicas;
  (* Joins must go out on the stable shard ring: a join announced before
     the ring forms is flushed on the node's transient singleton ring and
     the resulting one-member group maps never reconcile. *)
  form_barrier t ~limit:(Span.of_sec 30) ring_formed;
  Array.iter
    (fun r ->
      let service = r.service and gateway = r.gateway in
      let shard = r.shard in
      Gcs.Endpoint.join_group r.endpoint t.group ~handler:(fun ev ->
          match ev with
          | Gcs.Endpoint.Deliver { msg; _ } ->
              Cts.Service.on_message service msg
          | Gcs.Endpoint.View_change v ->
              mark_dirty t shard;
              Cts.Service.on_view service v;
              Hier.Gateway.on_view gateway v
          | Gcs.Endpoint.Block | Gcs.Endpoint.Evicted -> mark_dirty t shard))
    t.replicas;
  form_barrier t ~limit:(Span.of_sec 30) shard_formed

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)

let start_readers t =
  t.readers_stopped <- false;
  Array.iter
    (fun r ->
      Dsim.Fiber.spawn t.eng (fun () ->
          let rec loop () =
            if not (t.readers_stopped || r.crashed) then begin
              (* Sleep to the next common period boundary so every
                 replica of a shard opens the same CCS round in the same
                 window, as active replication of one client thread
                 would.  A boosted replica (its gateway just raised the
                 causal floor) skips the sleep: its early, floored
                 proposal for the next round reaches the other replicas
                 before they open it, so the whole shard adopts the
                 correction in one period. *)
              if r.boost then r.boost <- false
              else begin
                let now = Dsim.Engine.now t.eng in
                let next = Time.truncate_to t.reader_period now in
                let next = Time.add next t.reader_period in
                Dsim.Fiber.sleep t.eng (Time.diff next now)
              end;
              if not (t.readers_stopped || r.crashed) then begin
                ignore
                  (Cts.Service.clock_read r.service ~thread:reader_thread
                     ~call:Cts.Call_type.Gettimeofday
                    : Time.t);
                loop ()
              end
            end
          in
          loop ()))
    t.replicas

let stop_readers t = t.readers_stopped <- true

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)

let crash t id =
  let r = t.replicas.(Nid.to_int id) in
  if not r.crashed then begin
    r.crashed <- true;
    (* the live-member set the formation predicates compare against just
       changed *)
    mark_dirty t r.shard;
    Hier.Gateway.crash r.gateway;
    Gcs.Endpoint.crash r.endpoint
  end

let gateway_of t s =
  match live_members t s with
  | [] -> None
  | members ->
      let votes =
        List.map
          (fun id -> Hier.Gateway.elected t.replicas.(Nid.to_int id).gateway)
          members
      in
      let agree =
        match votes with
        | [] -> None
        | v :: rest ->
            if List.for_all (Option.equal Nid.equal v) rest then v else None
      in
      agree

let crash_gateway t s =
  match gateway_of t s with
  | Some id ->
      crash t id;
      Some id
  | None -> None

let isolate_shard t s =
  let inside = Hier.Topology.shard_members t.topo s in
  let outside =
    List.concat
      (List.init (Hier.Topology.shards t.topo) (fun s' ->
           if s' = s then [] else Hier.Topology.shard_members t.topo s'))
  in
  Netsim.Network.partition t.bridge [ inside; outside ]

let heal_bridge t = Netsim.Network.heal t.bridge

(* ------------------------------------------------------------------ *)
(* Measurements                                                        *)

let estimate t id =
  let r = t.replicas.(Nid.to_int id) in
  Time.add (Clock.Hwclock.read r.clock) (Cts.Service.offset r.service)

let shard_estimates t =
  Array.init (Hier.Topology.shards t.topo) (fun s ->
      match live_members t s with
      | [] -> None
      | id :: _ -> Some (estimate t id))

let spread values =
  let lo = ref None and hi = ref None in
  Array.iter
    (function
      | None -> ()
      | Some v ->
          (match !lo with
          | Some l when Time.(l <= v) -> ()
          | _ -> lo := Some v);
          (match !hi with
          | Some h when Time.(h >= v) -> ()
          | _ -> hi := Some v))
    values;
  match (!lo, !hi) with
  | Some lo, Some hi -> Time.diff hi lo
  | _ -> Span.zero

let publish_gauge t name v =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then
    match Obs.Sink.metrics s with
    | Some m -> Obs.Metrics.gauge m name := v
    | None -> ()

let cross_shard_skew t =
  let skew = spread (shard_estimates t) in
  publish_gauge t "hier_cross_shard_skew_us" (float_of_int (Span.to_us skew));
  skew

let queue_hwm t =
  let hwm = Dsim.Engine.queue_high_water t.eng in
  publish_gauge t "event_queue_hwm" (float_of_int hwm);
  hwm

let neighbor_skew t =
  let est = shard_estimates t in
  let n = Array.length est in
  let worst = ref Span.zero in
  for s = 0 to n - 1 do
    match (est.(s), est.((s + 1) mod n)) with
    | Some a, Some b when n > 1 ->
        let d = Span.abs (Time.diff a b) in
        if Span.(d > !worst) then worst := d
    | _ -> ()
  done;
  publish_gauge t "hier_neighbor_skew_us" (float_of_int (Span.to_us !worst));
  !worst

let converged t ~bound = Span.compare (cross_shard_skew t) bound <= 0

let sum_over_agents t f =
  Array.fold_left (fun acc r -> acc + f r.gateway) 0 t.replicas

let agreed_rounds t =
  sum_over_agents t (fun g -> (Hier.Gateway.stats g).Hier.Gateway.agreed_rounds)

let regressions t =
  sum_over_agents t (fun g -> Hier.Global_clock.regressions (Hier.Gateway.global g))

let ccs_rounds_completed t =
  Array.fold_left
    (fun acc r ->
      if r.crashed then acc
      else acc + (Cts.Service.stats r.service).Cts.Service.rounds_completed)
    0 t.replicas
