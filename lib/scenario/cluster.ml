type node = {
  id : Netsim.Node_id.t;
  endpoint : Gcs.Endpoint.t;
  clock : Clock.Hwclock.t;
}

type t = {
  eng : Dsim.Engine.t;
  net : Gcs.Endpoint.payload Totem.Wire.t Netsim.Network.t;
  nodes : node array;
  server_group : Gcs.Group_id.t;
  client_group : Gcs.Group_id.t;
}

let create ?(seed = 1L) ?latency ?totem_config ?clock_config ?bootstrap ?obs
    ~nodes () =
  let eng = Dsim.Engine.create ~seed () in
  (* Adopt an external observability sink before any component is built,
     so ring formation and clock initialization are captured too. *)
  (match obs with Some s -> Dsim.Engine.set_obs eng s | None -> ());
  let latency =
    match latency with
    | Some l -> l
    | None -> Netsim.Latency.calibrated ~wire:Netsim.Latency.default_wire
  in
  let net = Netsim.Network.create eng { Netsim.Network.latency; loss = 0. } in
  let clock_config =
    match clock_config with
    | Some f -> f
    | None -> fun _ -> Clock.Hwclock.default_config
  in
  let bootstrap = match bootstrap with Some f -> f | None -> fun _ -> true in
  let make i =
    let id = Netsim.Node_id.of_int i in
    {
      id;
      endpoint =
        Gcs.Endpoint.create eng net ~me:id ?totem_config
          ~bootstrap:(bootstrap i) ();
      clock = Clock.Hwclock.create eng (clock_config i);
    }
  in
  {
    eng;
    net;
    nodes = Array.init nodes make;
    server_group = Gcs.Group_id.of_int 1;
    client_group = Gcs.Group_id.of_int 2;
  }

let start t i = Gcs.Endpoint.start t.nodes.(i).endpoint
let start_all t = Array.iteri (fun i _ -> start t i) t.nodes

let run_for t span =
  Dsim.Engine.run ~until:(Dsim.Time.add (Dsim.Engine.now t.eng) span) t.eng

let run_until ?(limit = Dsim.Time.Span.of_sec 10) t pred =
  let deadline = Dsim.Time.add (Dsim.Engine.now t.eng) limit in
  let rec go () =
    if pred () then ()
    else if Dsim.Time.(Dsim.Engine.now t.eng > deadline) then
      failwith "Cluster.run_until: time limit exceeded"
    else if not (Dsim.Engine.step t.eng) then
      failwith "Cluster.run_until: event queue drained before predicate held"
    else go ()
  in
  go ()

let ring_stable t ~on_nodes =
  let totems =
    List.map (fun i -> Gcs.Endpoint.totem t.nodes.(i).endpoint) on_nodes
  in
  let expect = List.map (fun i -> Netsim.Node_id.of_int i) on_nodes in
  let expect = List.sort Netsim.Node_id.compare expect in
  List.for_all
    (fun tot ->
      Totem.Node.is_operational tot
      && List.sort Netsim.Node_id.compare (Totem.Node.members tot) = expect)
    totems
