module Span = Dsim.Time.Span

type t =
  | Random of { delay_prob : float; reorder_prob : float }
  | Bounded of { depth : int }

let default_random = Random { delay_prob = 0.01; reorder_prob = 0.25 }

let pp ppf = function
  | Random { delay_prob; reorder_prob } ->
      Format.fprintf ppf "random (delay %.3g, reorder %.3g)" delay_prob
        reorder_prob
  | Bounded { depth } -> Format.fprintf ppf "bounded-reorder (depth %d)" depth

let of_string s =
  match String.lowercase_ascii s with
  | "random" -> Some default_random
  | "bounded" -> Some (Bounded { depth = 1 })
  | _ -> None

type gen = {
  next : unit -> (int64 * Controller.spec) option;
  feedback : spec:Controller.spec -> info:Harness.info -> unit;
}

(* Mix a run index into the base seed (splitmix-style) so consecutive runs
   get uncorrelated engine and walk seeds. *)
let derive base i salt =
  let open Int64 in
  let z = add base (mul (of_int ((i * 2) + salt + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  logxor z (shift_right_logical z 27)

(* The [i]-th run of the seed sweep + random walk: a fresh cluster seed
   and a fresh stream of random delay/reorder decisions, as a pure
   function of [i] — so the run space can be partitioned across domains
   (Pool) as well as walked sequentially (the generator below). *)
let random_run ~base_seed ~quantum ~delay_prob ~reorder_prob i =
  let harness_seed = derive base_seed i 0 in
  let walk_seed = derive base_seed i 1 in
  ( harness_seed,
    {
      Controller.forced = [];
      random = Some { Controller.seed = walk_seed; delay_prob; reorder_prob };
      quantum;
    } )

let random_gen ~base_seed ~quantum ~delay_prob ~reorder_prob =
  let i = ref 0 in
  let next () =
    let run = !i in
    incr i;
    Some (random_run ~base_seed ~quantum ~delay_prob ~reorder_prob run)
  in
  { next; feedback = (fun ~spec:_ ~info:_ -> ()) }

(* Bounded-reorder exhaustive search: starting from the default schedule
   on a fixed seed, enumerate every schedule that deviates in at most
   [depth] places.  Each completed run reports its branching structure
   (packet count + tie steps); children extend a parent's trace with one
   later deviation.  Packet delays come first — they displace whole
   protocol exchanges and are the higher-yield perturbation. *)
let bounded_children ~quantum ~(parent : Controller.spec)
    ~(info : Harness.info) =
  let parent = parent.Controller.forced in
  let last_packet, last_step =
    List.fold_left
      (fun (p, s) d ->
        match d with
        | Schedule.Delay { packet } -> (max p packet, s)
        | Schedule.Reorder { step; _ } -> (p, max s step))
      (-1, -1) parent
  in
  let delays =
    List.init info.Harness.packets Fun.id
    |> List.filter (fun p -> p > last_packet)
    |> List.map (fun packet -> parent @ [ Schedule.Delay { packet } ])
  in
  let reorders =
    info.Harness.ties
    |> List.filter (fun (step, _) -> step > last_step)
    |> List.concat_map (fun (step, ready) ->
           List.init (ready - 1) (fun j ->
               parent @ [ Schedule.Reorder { step; take = j + 1 } ]))
  in
  List.map
    (fun forced -> { Controller.forced; random = None; quantum })
    (delays @ reorders)

let bounded_gen ~base_seed ~quantum ~depth =
  let pending : (int64 * Controller.spec) Queue.t = Queue.create () in
  let spawned = Hashtbl.create 64 in
  Queue.push (base_seed, { Controller.forced = []; random = None; quantum })
    pending;
  let next () =
    match Queue.take_opt pending with
    | None -> None
    | Some run -> Some run
  in
  let feedback ~(spec : Controller.spec) ~(info : Harness.info) =
    if Schedule.length spec.Controller.forced < depth then begin
      let key = Hashtbl.hash spec.Controller.forced in
      if not (Hashtbl.mem spawned key) then begin
        Hashtbl.replace spawned key ();
        List.iter
          (fun child -> Queue.push (base_seed, child) pending)
          (bounded_children ~quantum ~parent:spec ~info)
      end
    end
  in
  { next; feedback }

let generator t ~base_seed ~quantum =
  match t with
  | Random { delay_prob; reorder_prob } ->
      random_gen ~base_seed ~quantum ~delay_prob ~reorder_prob
  | Bounded { depth } -> bounded_gen ~base_seed ~quantum ~depth
