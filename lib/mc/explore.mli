(** Top-level exploration driver.

    Runs the harness under a {!Strategy}, checking every registered
    {!Invariant} after each schedule.  On a violation the applied
    deviation trace is replayed to confirm determinism, delta-debugged
    down to a minimal counterexample ({!Shrink}), and re-run once more
    with packet recording on so the report can show the
    [Netsim.Trace] log alongside the minimal reorder trace.

    This module is the sequential reference; {!Pool} fans the same
    exploration out over worker domains and produces the same report
    type (and, for a given strategy/budget/seed, the same violations and
    distinct-schedule count). *)

type violation = {
  invariant : string;  (** name of the first violated invariant *)
  detail : string;
  seed : int64;  (** harness seed of the failing run *)
  counterexample : Schedule.t;  (** minimal failing deviation trace *)
  original_deviations : int;  (** trace length before shrinking *)
  shrink_runs : int;  (** simulator re-runs spent shrinking *)
  packet_log : string;  (** packet trace of the minimal replay *)
  blackbox : string;
      (** flight-recorder window of the minimal replay, in
          {!Obs.Postmortem} dump format — every shrunk counterexample
          ships its own black box *)
}

type report = {
  strategy : string;
  budget : int;
  jobs : int;  (** worker domains that executed the schedules (1 = serial) *)
  schedules : int;  (** schedules actually executed *)
  distinct : int;  (** distinct outcome fingerprints observed *)
  steps_total : int;  (** simulator events stepped, summed over runs *)
  elapsed_s : float;  (** wall time, monotonic clock *)
  cpu_s : float;  (** process CPU time, aggregated over all domains *)
  violations : violation list;
}

val schedules_per_sec : report -> float
(** Schedules per wall-clock second. *)

val wall : unit -> float
(** Monotonic wall clock in seconds (arbitrary origin). *)

val cpu : unit -> float
(** Process CPU time in seconds, summed over every running domain. *)

val explore :
  ?strategy:Strategy.t ->
  ?budget:int ->
  ?quantum_us:int ->
  ?stop_at_first:bool ->
  Harness.config ->
  report
(** [explore cfg] drives [budget] (default 500) schedules.  [quantum_us]
    (default 200) is the packet-delay quantum handed to the controller.
    With [stop_at_first] (default [true]) exploration stops at the first
    violation; otherwise it keeps going and accumulates them. *)

val build_violation :
  quantum:Dsim.Time.Span.t ->
  Harness.config ->
  seed:int64 ->
  first_invariant:string ->
  deviations:Schedule.t ->
  violation
(** Confirm, shrink and render one violating run (sequentially).  Shared
    with {!Pool}, which performs discovery in parallel but always shrinks
    on the calling domain, in schedule order, so its reports do not
    depend on domain count. *)

val trace_violation :
  ?quantum_us:int ->
  ?capacity:int ->
  Harness.config ->
  violation ->
  Obs.Trace.t * Obs.Metrics.t
(** Replay the violation's minimal counterexample once more with an
    observability sink adopted by the replayed world, returning the full
    span trace and metrics of the failing schedule — the cross-layer
    companion to its [packet_log].  [quantum_us] must match the value
    the violation was explored with (default 200).  Probes never perturb
    a run, so the replay still reproduces the violation. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
