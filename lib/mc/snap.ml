(* Diff-based snapshot/restore of a live heap graph.

   [capture root] walks the object graph reachable from [root] and pairs
   every mutable-capable block with an [Obj.dup] shadow copy taken at
   capture time.  [restore] walks the recorded pairs and writes back only
   the fields that differ from their shadow — a dirty-set rewind: a run
   that touched 1% of the world costs 1% of the writes (reads are a
   single sequential sweep), and — unlike [Marshal.from_bytes] — restore
   allocates nothing and preserves the physical identity of every block,
   so pointers held outside the snapshot stay valid.

   Soundness of keying blocks by address: capture begins with
   [Gc.full_major], which promotes every reachable block to the major
   heap, and the OCaml 5 major heap never moves objects (no compaction
   unless [Gc.compact] is called, which this codebase never does).  The
   shadows allocated during the walk are young and may move, but they are
   held as ordinary values (the GC rewrites our references), never
   address-hashed.

   What is walked, by tag:
   - ordinary blocks (tag <= 243: records, tuples, variants, arrays) —
     paired, all fields walked and restorable;
   - closures (247) — paired; only the environment (from
     [Obj.Closure.info.start_env]) is walked/compared: the leading words
     are code pointers and arity words, which must never be extracted as
     values (they are naked out-of-heap pointers) and never change;
   - strings/bytes (252) — paired, restored by whole-block compare+blit;
   - flat float records/arrays (254) — paired, restored per
     [Obj.double_field];
   - everything else (customs 255 — Bigarray RNG state among them —
     lazy/forcing 246/244, forward 250, infix 249, objects 248,
     continuations 245, abstract 251, boxed doubles 253) is shared as a
     leaf: either immutable, or restored by other means (the harness
     rewinds RNG customs through its own reseed protocol), or absent from
     the worlds we snapshot.  [Harness] verifies each snapshot with a
     restore-vs-pristine probe run and falls back to marshalling when a
     world contains unrestorable state, so incompleteness here degrades
     speed, never correctness. *)

type t = {
  lives : Obj.t array; (* block i, the live object *)
  shadows : Obj.t array; (* dup of block i at capture time *)
}

let empty_slot = Obj.repr 0

(* Raw pointer bits folded into a well-formed tagged int.  [lsr]
   immediately retags the intermediate, and nothing allocates in
   between, so the naked word never survives to a GC point. *)
let addr_hash (o : Obj.t) : int = (Obj.magic o : int) lsr 3
[@@inline]

(* Open-addressing identity set of visited blocks, keyed by address,
   probed by physical equality.  Only needed during [capture]; not
   retained in the snapshot. *)
type table = { mutable keys : Obj.t array; mutable mask : int; mutable n : int }

let rec table_add tb o =
  let keys = tb.keys in
  let mask = tb.mask in
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if
      (k == empty_slot)
      [@ctslint.allow
        "phys-equality"
          "identity table: empty-slot sentinel is the immediate 0, present \
           only where no key was written"]
    then begin
      Array.unsafe_set keys i o;
      tb.n <- tb.n + 1;
      true
    end
    else if
      (k == o)
      [@ctslint.allow
        "phys-equality"
          "identity table: membership is physical identity of a \
           major-heap block, the very relation being tested"]
    then false
    else probe ((i + 1) land mask)
  in
  if 2 * tb.n >= mask then begin
    (* grow and rehash *)
    let old = tb.keys in
    let cap = 2 * (tb.mask + 1) in
    tb.keys <- Array.make cap empty_slot;
    tb.mask <- cap - 1;
    tb.n <- 0;
    Array.iter
      (fun k ->
        if
          (k != empty_slot)
          [@ctslint.allow
            "phys-equality" "identity table rehash: skip empty sentinel"]
        then ignore (table_add tb k : bool))
      old;
    table_add tb o
  end
  else probe (addr_hash o land mask)

(* Growable pair buffer. *)
type buf = { mutable a : Obj.t array; mutable len : int }

let buf_push b o =
  if b.len = Array.length b.a then begin
    let a = Array.make (max 64 (2 * b.len)) empty_slot in
    Array.blit b.a 0 a 0 b.len;
    b.a <- a
  end;
  b.a.(b.len) <- o;
  b.len <- b.len + 1

let ordinary_max_tag = Obj.last_non_constant_constructor_tag (* 243 *)

let capture root =
  Gc.full_major ();
  let tb = { keys = Array.make 65536 empty_slot; mask = 65535; n = 0 } in
  let lives = { a = Array.make 1024 empty_slot; len = 0 } in
  let shadows = { a = Array.make 1024 empty_slot; len = 0 } in
  let stack = { a = Array.make 1024 empty_slot; len = 0 } in
  let consider o =
    if Obj.is_block o then buf_push stack o
  in
  consider (Obj.repr root);
  while stack.len > 0 do
    stack.len <- stack.len - 1;
    let o = stack.a.(stack.len) in
    if table_add tb o then begin
      let tag = Obj.tag o in
      if tag <= ordinary_max_tag then begin
        let n = Obj.size o in
        if n > 0 then begin
          buf_push lives o;
          buf_push shadows (Obj.dup o);
          for j = 0 to n - 1 do
            consider (Obj.field o j)
          done
        end
      end
      else if tag = Obj.closure_tag then begin
        let start = (Obj.Closure.info o).Obj.Closure.start_env in
        let n = Obj.size o in
        if start < n then begin
          buf_push lives o;
          buf_push shadows (Obj.dup o);
          for j = start to n - 1 do
            consider (Obj.field o j)
          done
        end
      end
      else if tag = Obj.string_tag || tag = Obj.double_array_tag then begin
        buf_push lives o;
        buf_push shadows (Obj.dup o)
      end
      (* all other tags: leaf-shared, see the header comment *)
    end
  done;
  {
    lives = Array.sub lives.a 0 lives.len;
    shadows = Array.sub shadows.a 0 shadows.len;
  }

let blocks t = Array.length t.lives

(* Write back every field that drifted from its shadow; returns the
   number of fields (or string/float-array blocks) rewound. *)
let restore t =
  let dirty = ref 0 in
  let n = Array.length t.lives in
  for i = 0 to n - 1 do
    let live = Array.unsafe_get t.lives i in
    let sh = Array.unsafe_get t.shadows i in
    let tag = Obj.tag sh in
    if tag = Obj.string_tag then begin
      let lb : bytes = Obj.obj live and sb : bytes = Obj.obj sh in
      if not (Bytes.equal lb sb) then begin
        Bytes.blit sb 0 lb 0 (Bytes.length sb);
        incr dirty
      end
    end
    else if tag = Obj.double_array_tag then
      for j = 0 to Obj.size sh - 1 do
        let v = Obj.double_field sh j in
        if Obj.double_field live j <> v then begin
          Obj.set_double_field live j v;
          incr dirty
        end
      done
    else begin
      let start =
        if tag = Obj.closure_tag then (Obj.Closure.info sh).Obj.Closure.start_env
        else 0
      in
      for j = start to Obj.size sh - 1 do
        let v = Obj.field sh j in
        if
          (Obj.field live j != v)
          [@ctslint.allow
            "phys-equality"
              "dirty test: a field is rewound exactly when it no longer \
               holds the captured word; physical identity is the \
               correctness criterion, not an approximation of it"]
        then begin
          Obj.set_field live j v;
          incr dirty
        end
      done
    end
  done;
  !dirty
