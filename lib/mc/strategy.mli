(** Schedule-exploration strategies.

    A strategy is a generator of [(seed, controller spec)] runs:

    - [Random]: seed sweep plus random walk — every run re-seeds the whole
      cluster (clock jitter, think times) and randomly delays packets /
      reorders same-time events with the given probabilities;
    - [Bounded]: bounded-reorder exhaustive search on a fixed seed —
      systematically enumerates every schedule deviating from the default
      one in at most [depth] places, using the branching structure
      (packets, tie steps) reported back from completed runs. *)

type t =
  | Random of { delay_prob : float; reorder_prob : float }
  | Bounded of { depth : int }

val default_random : t
(** [Random] with 1% packet delays and 25% tie reorders. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> t option
(** ["random"] or ["bounded"]. *)

type gen = {
  next : unit -> (int64 * Controller.spec) option;
      (** The next run to execute, or [None] when the strategy is
          exhausted. *)
  feedback : spec:Controller.spec -> info:Harness.info -> unit;
      (** Report a completed run so the strategy can derive follow-ups. *)
}

val generator : t -> base_seed:int64 -> quantum:Dsim.Time.Span.t -> gen

val random_run :
  base_seed:int64 ->
  quantum:Dsim.Time.Span.t ->
  delay_prob:float ->
  reorder_prob:float ->
  int ->
  int64 * Controller.spec
(** The [i]-th run of the [Random] strategy, as a pure function of [i]:
    run indices can be partitioned across worker domains ({!Mc.Pool}) and
    still enumerate exactly the sequential generator's runs. *)

val bounded_children :
  quantum:Dsim.Time.Span.t ->
  parent:Controller.spec ->
  info:Harness.info ->
  Controller.spec list
(** The one-deviation extensions of [parent] exposed by its run's
    branching structure ([info]) — the [Bounded] strategy's expansion
    rule, shared by the sequential generator and the wave-parallel
    explorer.  Depends only on [parent] and [info], so the BFS frontier
    is deterministic however runs are scheduled. *)
