(** Invariant registry.

    Encodes the paper's Section 3 correctness properties of the group
    clock as checks over an {!outcome} — the observations a harness run
    collected from every replica plus the services' own counters:

    - [monotone]: the group clock never runs backwards at any replica;
    - [agreement]: every replica adopts the same value for each round;
    - [single-synchronizer]: one winning CCS message per round, one
      send-or-suppress decision per replica per round, rounds strictly
      sequential;
    - [no-rollback]: zero roll-backs at every survivor, in particular
      across a failover.

    Additional invariants can be {!register}ed (e.g. by tests). *)

type observation = {
  replica : int;  (** node index in the harness cluster *)
  round : int;  (** CCS round number, 1-based *)
  gc : Dsim.Time.t;  (** group clock value returned *)
  pc : Dsim.Time.t;  (** physical clock just before the call *)
  at : Dsim.Time.t;  (** simulation time when the round completed *)
}

type outcome = {
  replicas : int;
  rounds : int;  (** rounds requested per replica *)
  observations : observation list array;
      (** per replica, in completion order *)
  stats : Cts.Service.stats array;
  crashed : int option;  (** replica crashed mid-run, if any *)
  packet_log : string;  (** rendered {!Netsim.Trace}, possibly empty *)
}

type t = {
  name : string;
  doc : string;
  check : outcome -> (unit, string) result;
}

val monotone : t
val agreement : t
val single_synchronizer : t
val no_rollback : t

val builtin : t list

val register : t -> unit
(** Append a custom invariant to the registry. *)

val reset_registered : unit -> unit
val all : unit -> t list

val check_all : outcome -> (string * string) list
(** All violations as [(invariant name, detail)], empty when the outcome
    satisfies every registered invariant. *)
