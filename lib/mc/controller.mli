(** Schedule controller.

    Owns both choice-point hooks of one simulation run — the engine's
    same-timestamp tie-breaker ({!Dsim.Engine.set_scheduler}) and the
    network's per-packet delay perturbation
    ({!Netsim.Network.set_delay_hook}) — and drives them from a {!spec}:
    forced deviations (replaying or exploring a specific schedule), an
    optional seeded random walk on top, or neither (the default schedule).

    Every deviation actually applied is recorded, so a random walk that
    finds an invariant violation yields a deterministic repro: replay its
    {!applied} trace with {!replay_spec} and the run is bit-identical. *)

type random_cfg = {
  seed : int64;
  delay_prob : float;  (** per-packet probability of a one-quantum delay *)
  reorder_prob : float;
      (** per-tie probability of running a non-first same-time event *)
}

type spec = {
  forced : Schedule.t;
  random : random_cfg option;
  quantum : Dsim.Time.Span.t;  (** extra delay applied by [Delay] *)
}

val default_spec : spec
(** No deviations, no random walk, 200 µs quantum. *)

val replay_spec : ?quantum:Dsim.Time.Span.t -> Schedule.t -> spec
(** Deterministically replay exactly the given deviations. *)

type t

val create : Dsim.Engine.t -> spec -> t

val install : t -> 'a Netsim.Network.t -> unit
(** Install both hooks.  Choice-point counting starts here: engine step 0
    and packet 0 are the first step/packet after installation. *)

val uninstall : t -> 'a Netsim.Network.t -> unit

val applied : t -> Schedule.t
(** Deviations applied so far, in chronological order. *)

val steps : t -> int
(** Engine steps seen (choice points, including trivial ones). *)

val packets : t -> int
(** Packets seen by the delay hook. *)

val tie_steps : t -> (int * int) list
(** [(step, ready)] for every step that had [ready > 1] same-time events —
    the branching structure used by the bounded-exhaustive strategy. *)
