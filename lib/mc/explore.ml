module Span = Dsim.Time.Span

type violation = {
  invariant : string;
  detail : string;
  seed : int64;
  counterexample : Schedule.t;
  original_deviations : int;
  shrink_runs : int;
  packet_log : string;
  blackbox : string;
}

type report = {
  strategy : string;
  budget : int;
  jobs : int;
  schedules : int;
  distinct : int;
  steps_total : int;
  elapsed_s : float;
  cpu_s : float;
  violations : violation list;
}

(* Monotonic wall clock.  [Sys.time] is process CPU time: it over-reports
   on a loaded machine and, with several domains running, advances [jobs]
   times faster than the wall — useless as a throughput denominator.  We
   report both: wall time for schedules/sec, CPU time for efficiency. *)
let wall () =
  Int64.to_float (Monotonic_clock.now ()) /. 1e9
[@@ctslint.allow
  "wall-clock"
    "elapsed_s is a report field for the operator; it never feeds back \
     into exploration, schedules, or the merge"]
[@@ctslint.allow
  "runtime-boundary"
    "this wrapper IS the explorer's declared clock boundary; throughput \
     reporting needs one real elapsed-time read"]

let cpu () =
  Sys.time ()
[@@ctslint.allow
  "wall-clock"
    "cpu_s is a report field for the operator; it never feeds back into \
     exploration, schedules, or the merge"]
[@@ctslint.allow
  "runtime-boundary"
    "this wrapper IS the explorer's declared CPU-time boundary; the \
     efficiency report needs one real CPU-time read"]

let schedules_per_sec r =
  if r.elapsed_s <= 0. then 0.
  else float_of_int r.schedules /. r.elapsed_s

(* Reproduce a violating run deterministically from its applied deviation
   trace, delta-debug the trace down, and re-run the minimal schedule once
   more with packet recording on.  Pure sequential — the parallel explorer
   funnels every violation through here, in schedule order, so reports are
   independent of domain count. *)
let build_violation ~quantum cfg ~seed ~first_invariant ~deviations =
  let cfg = { cfg with Harness.seed; record_packets = false } in
  let fails sched =
    let spec = Controller.replay_spec ~quantum sched in
    let outcome, _ = Harness.run ~spec cfg in
    Invariant.check_all outcome <> []
  in
  let counterexample, shrink_runs =
    if fails deviations then Shrink.minimize ~fails deviations
    else (deviations, 0)
  in
  (* The confirming re-run carries the flight recorder and health
     monitor, so every shrunk counterexample ships its own black box:
     the dumped window travels in the report and feeds
     [ctsim postmortem] directly. *)
  let recorder = Obs.Recorder.create ~capacity:8192 () in
  let health = Obs.Health.create () in
  let bb_sink = Obs.Sink.create () in
  Obs.Sink.set_recorder bb_sink (Some recorder);
  Obs.Sink.set_health bb_sink (Some health);
  let final_outcome, _ =
    Harness.run
      ~spec:(Controller.replay_spec ~quantum counterexample)
      { cfg with Harness.record_packets = true; sink = Some bb_sink }
  in
  let invariant, detail =
    match Invariant.check_all final_outcome with
    | (n, d) :: _ -> (n, d)
    | [] -> (first_invariant, "not reproducible after shrinking")
  in
  {
    invariant;
    detail;
    seed;
    counterexample;
    original_deviations = Schedule.length deviations;
    shrink_runs;
    packet_log = final_outcome.Invariant.packet_log;
    blackbox = Obs.Postmortem.dump_string recorder (Obs.Health.incidents health);
  }

(* Replay the minimal counterexample once more with an obs sink adopted:
   the full span trace of the shrunk schedule, to sit next to its packet
   log.  Deterministic — the replayed spec pins the schedule, and probes
   never perturb a run. *)
let trace_violation ?(quantum_us = 200) ?capacity cfg (v : violation) =
  let quantum = Span.of_us quantum_us in
  let trace = Obs.Trace.create ?capacity () in
  let metrics = Obs.Metrics.create () in
  let sink = Obs.Sink.create () in
  Obs.Sink.attach sink ~trace ~metrics;
  let cfg =
    {
      cfg with
      Harness.seed = v.seed;
      record_packets = false;
      sink = Some sink;
    }
  in
  let (_ : Invariant.outcome * Harness.info) =
    Harness.run ~spec:(Controller.replay_spec ~quantum v.counterexample) cfg
  in
  (trace, metrics)

let explore ?(strategy = Strategy.default_random) ?(budget = 500)
    ?(quantum_us = 200) ?(stop_at_first = true) cfg =
  let quantum = Span.of_us quantum_us in
  let gen =
    Strategy.generator strategy ~base_seed:cfg.Harness.seed ~quantum
  in
  let seen = Hashtbl.create (2 * budget) in
  let violations = ref [] in
  let runs = ref 0 in
  let steps_total = ref 0 in
  let t0 = wall () in
  let c0 = cpu () in
  (* One world snapshot amortized over the whole budget; run_reused is
     result-identical to Harness.run.  Shrinking (build_violation) stays
     on fresh construction — it is the cold path. *)
  let reusable = Harness.reusable { cfg with Harness.record_packets = false } in
  (try
     while !runs < budget do
       match gen.Strategy.next () with
       | None -> raise Exit
       | Some (seed, spec) ->
           let cfg = { cfg with Harness.seed; record_packets = false } in
           let outcome, info = Harness.run_reused reusable ~spec cfg in
           incr runs;
           steps_total := !steps_total + info.Harness.steps;
           Hashtbl.replace seen info.Harness.fingerprint ();
           gen.Strategy.feedback ~spec ~info;
           (match Invariant.check_all outcome with
           | [] -> ()
           | (first_name, _) :: _ ->
               violations :=
                 build_violation ~quantum cfg ~seed ~first_invariant:first_name
                   ~deviations:info.Harness.deviations
                 :: !violations;
               if stop_at_first then raise Exit)
     done
   with Exit -> ());
  {
    strategy = Format.asprintf "%a" Strategy.pp strategy;
    budget;
    jobs = 1;
    schedules = !runs;
    distinct = Hashtbl.length seen;
    steps_total = !steps_total;
    elapsed_s = wall () -. t0;
    cpu_s = cpu () -. c0;
    violations = List.rev !violations;
  }

let pp_violation ppf v =
  Format.fprintf ppf
    "@[<v>VIOLATION of %s (seed %Ld): %s@,\
     found with %d deviation(s); shrunk to %d in %d re-run(s)@,\
     minimal counterexample: %a@]"
    v.invariant v.seed v.detail v.original_deviations
    (Schedule.length v.counterexample)
    v.shrink_runs Schedule.pp v.counterexample;
  if v.packet_log <> "" then
    Format.fprintf ppf "@,@[<v>packet log (last %d events):@,%s@]"
      (List.length (String.split_on_char '\n' v.packet_log) - 1)
      v.packet_log;
  if v.blackbox <> "" then
    Format.fprintf ppf
      "@,flight window: %d line(s) attached (write with --flight, read \
       with `ctsim postmortem`)"
      (List.length (String.split_on_char '\n' v.blackbox) - 1)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>strategy:           %s@," r.strategy;
  Format.fprintf ppf "schedules explored: %d (budget %d)@," r.schedules
    r.budget;
  if r.jobs > 1 then Format.fprintf ppf "worker domains:     %d@," r.jobs;
  Format.fprintf ppf "distinct schedules: %d@," r.distinct;
  Format.fprintf ppf "events stepped:     %d@," r.steps_total;
  Format.fprintf ppf
    "elapsed:            %.2f s wall, %.2f s cpu (%.1f schedules/s)@,"
    r.elapsed_s r.cpu_s (schedules_per_sec r);
  Format.fprintf ppf "invariants:         %s@,"
    (String.concat ", "
       (List.map (fun (i : Invariant.t) -> i.Invariant.name)
          (Invariant.all ())));
  (match r.violations with
  | [] -> Format.fprintf ppf "violations:         none@]"
  | vs ->
      Format.fprintf ppf "violations:         %d@," (List.length vs);
      Format.pp_print_list pp_violation ppf vs;
      Format.fprintf ppf "@]")
