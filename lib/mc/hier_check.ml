module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module CH = Scenario.Cluster_hier

type config = {
  shards : int;
  shard_size : int;
  walks : int;
  steps : int;
  seed : int64;
  skew_bound : Span.t;
  crash_prob : float;
  settle : Span.t;
}

let default =
  {
    shards = 3;
    shard_size = 3;
    walks = 8;
    steps = 6;
    seed = 1L;
    skew_bound = Span.of_ms 5;
    crash_prob = 0.4;
    settle = Span.of_ms 40;
  }

type violation = { walk : int; step : int; invariant : string; detail : string }

type report = {
  walks_run : int;
  crashes_injected : int;
  violations : violation list;
}

let pp_violation ppf v =
  Fmt.pf ppf "walk %d step %d: %s: %s" v.walk v.step v.invariant v.detail

(* Budget of survivable crashes per shard: each crash must leave the
   remaining members a strict majority of the previous view, so a chain
   of single crashes keeps the shard in the primary component as long as
   more than half the original members survive. *)
let crash_budget shard_size = (shard_size - 1) / 2

let expected_gateway t s =
  Dsim.Det.elect ~compare:Nid.compare (CH.live_members t s)

let check_step t ~cfg ~walk ~step violations =
  (* Invariant 1: the monotone global clock never had to clamp a newer
     agreement — regressions stay 0 through every crash and failover. *)
  let regr = CH.regressions t in
  if regr > 0 then
    violations :=
      {
        walk;
        step;
        invariant = "no-global-regression";
        detail = Printf.sprintf "%d clamped agreement(s)" regr;
      }
      :: !violations;
  (* Invariant 2: after the settle window every shard's live replicas
     agree on the gateway, and it is the deterministic winner (min live
     id) — failover re-election is deterministic. *)
  for s = 0 to cfg.shards - 1 do
    let expect = expected_gateway t s in
    let got = CH.gateway_of t s in
    if expect <> None && got <> expect then
      violations :=
        {
          walk;
          step;
          invariant = "deterministic-election";
          detail =
            Printf.sprintf "shard %d: expected %s, replicas say %s" s
              (match expect with
              | Some id -> string_of_int (Nid.to_int id)
              | None -> "none")
              (match got with
              | Some id -> string_of_int (Nid.to_int id)
              | None -> "disagreement or none");
        }
        :: !violations
  done

let check_converged t ~cfg ~walk ~step violations =
  (* Invariant 3: with every shard still in the primary component, the
     cross-shard skew settles within the configured bound. *)
  let skew = CH.cross_shard_skew t in
  if Span.compare skew cfg.skew_bound > 0 then
    violations :=
      {
        walk;
        step;
        invariant = "cross-shard-skew";
        detail =
          Printf.sprintf "%d us > bound %d us" (Span.to_us skew)
            (Span.to_us cfg.skew_bound);
      }
      :: !violations

let walk_once ~cfg ~walk ~rng violations =
  let topo = Hier.Topology.create ~shards:cfg.shards ~shard_size:cfg.shard_size in
  let clock_config i =
    {
      Clock.Hwclock.default_config with
      offset = Span.of_ms (-2 * Hier.Topology.shard_of topo (Nid.of_int i));
    }
  in
  let seed = Dsim.Rng.int64 rng in
  let t =
    CH.create ~seed ~clock_config ~shards:cfg.shards
      ~shard_size:cfg.shard_size ()
  in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t cfg.settle;
  let budgets = Array.make cfg.shards (crash_budget cfg.shard_size) in
  let crashes = ref 0 in
  for step = 1 to cfg.steps do
    (* A random stretch of undisturbed progress... *)
    CH.run_for t (Span.of_us (Dsim.Rng.int_range rng 500 5_000));
    (* ...then maybe crash some shard's current gateway. *)
    let s = Dsim.Rng.int_range rng 0 (cfg.shards - 1) in
    if Dsim.Rng.float rng 1.0 < cfg.crash_prob && budgets.(s) > 0 then begin
      match CH.crash_gateway t s with
      | Some _ ->
          budgets.(s) <- budgets.(s) - 1;
          incr crashes
      | None -> ()
    end;
    CH.run_for t cfg.settle;
    check_step t ~cfg ~walk ~step violations
  done;
  CH.run_for t cfg.settle;
  check_converged t ~cfg ~walk ~step:(cfg.steps + 1) violations;
  !crashes

let run cfg =
  let rng = Dsim.Rng.create cfg.seed in
  let violations = ref [] in
  let crashes = ref 0 in
  for walk = 1 to cfg.walks do
    let walk_rng = Dsim.Rng.split rng in
    crashes := !crashes + walk_once ~cfg ~walk ~rng:walk_rng violations
  done;
  {
    walks_run = cfg.walks;
    crashes_injected = !crashes;
    violations = List.rev !violations;
  }
