type stats = { mutable attempts : int }

(* Delta-debug a failing deviation trace down to a (locally) minimal one.

   Phase 1 — shortest failing prefix.  Deviations are chronological, so a
   prefix reproduces the original run exactly up to its last deviation and
   continues with the default schedule; the smallest failing prefix ends at
   the last deviation that matters.

   Phase 2 — greedy removal to fixpoint.  Dropping an interior deviation
   shifts everything after it, so every candidate is re-validated by a full
   re-run; removals that no longer reproduce the failure are undone. *)
let minimize ~fails sched =
  let st = { attempts = 0 } in
  let fails s =
    st.attempts <- st.attempts + 1;
    fails s
  in
  let result =
    if sched = [] || fails [] then []
    else begin
      let arr = Array.of_list sched in
      let n = Array.length arr in
      let prefix k = Array.to_list (Array.sub arr 0 k) in
      let shortest = ref n in
      (try
         for k = 1 to n - 1 do
           if fails (prefix k) then begin
             shortest := k;
             raise Exit
           end
         done
       with Exit -> ());
      let cur = ref (prefix !shortest) in
      let changed = ref true in
      while !changed do
        changed := false;
        let rec pass kept = function
          | [] -> List.rev kept
          | d :: rest ->
              let candidate = List.rev_append kept rest in
              if candidate <> [] && fails candidate then begin
                changed := true;
                pass kept rest
              end
              else pass (d :: kept) rest
        in
        cur := pass [] !cur
      done;
      !cur
    end
  in
  (result, st.attempts)
