module Time = Dsim.Time
module Span = Dsim.Time.Span

type observation = {
  replica : int;
  round : int;
  gc : Time.t;
  pc : Time.t;
  at : Time.t;
}

type outcome = {
  replicas : int;
  rounds : int;
  observations : observation list array;
  stats : Cts.Service.stats array;
  crashed : int option;
  packet_log : string;
}

type t = {
  name : string;
  doc : string;
  check : outcome -> (unit, string) result;
}

let fail fmt = Format.kasprintf (fun s -> Error s) fmt

(* Checks run on every explored schedule; a monomorphic test beats
   polymorphic equality against [Ok ()] in the inner loops. *)
let ok = function Ok () -> true | Error _ -> false

let alive o i = match o.crashed with Some c -> c <> i | None -> true

(* §3 property 1: the group clock never runs backwards at any replica. *)
let monotone =
  {
    name = "monotone";
    doc = "per-replica group clock readings are non-decreasing";
    check =
      (fun o ->
        let rec go i last = function
          | [] -> Ok ()
          | (obs : observation) :: rest ->
              if Time.(obs.gc < last) then
                fail
                  "replica %d: group clock rolled back at round %d (%a after \
                   %a)"
                  i obs.round Time.pp obs.gc Time.pp last
              else go i obs.gc rest
        in
        let rec each i =
          if i >= o.replicas then Ok ()
          else
            match go i Time.epoch o.observations.(i) with
            | Ok () -> each (i + 1)
            | Error _ as e -> e
        in
        each 0);
  }

(* §3 property 2: the group clock is identical at every replica — all
   replicas that completed a round adopted the same winner value. *)
let agreement =
  {
    name = "agreement";
    doc = "all replicas adopt the same group clock value for each round";
    check =
      (fun o ->
        (* Indexed by round (rounds are small, dense integers); checked on
           every explored schedule, so stay off hash tables and list
           concatenation here. *)
        let max_round = ref o.rounds in
        Array.iter
          (List.iter (fun (obs : observation) ->
               if obs.round > !max_round then max_round := obs.round))
          o.observations;
        let max_round = !max_round in
        let first : observation option array = Array.make (max_round + 1) None in
        let result = ref (Ok ()) in
        Array.iter
          (List.iter (fun (obs : observation) ->
               if ok !result then
                 match first.(obs.round) with
                 | None -> first.(obs.round) <- Some obs
                 | Some w ->
                     if not (Time.equal w.gc obs.gc) then
                       result :=
                         fail
                           "round %d: replica %d adopted %a but replica %d \
                            adopted %a"
                           obs.round obs.replica Time.pp obs.gc w.replica
                           Time.pp w.gc))
          o.observations;
        !result);
  }

(* §3/§4.3: exactly one synchronizer per round.  Locally that means every
   completed round accounts for exactly one send-or-suppress decision, the
   rounds of a replica are strictly sequential, and globally at least one
   CCS message was multicast per distinct round (the winner's). *)
let single_synchronizer =
  {
    name = "single-synchronizer";
    doc =
      "every round has exactly one winning CCS message; per replica, one \
       send-or-suppress per round";
    check =
      (fun o ->
        let max_round = ref o.rounds in
        Array.iter
          (List.iter (fun (obs : observation) ->
               if obs.round > !max_round then max_round := obs.round))
          o.observations;
        let max_round = !max_round in
        let distinct = Array.make (max_round + 1) false in
        let result = ref (Ok ()) in
        Array.iteri
          (fun i obs_list ->
            if ok !result && alive o i then begin
              let rounds = List.length obs_list in
              let expect = ref 1 in
              List.iter
                (fun (obs : observation) ->
                  distinct.(obs.round) <- true;
                  if ok !result && obs.round <> !expect then
                    result :=
                      fail
                        "replica %d: rounds not sequential (saw %d, expected \
                         %d)"
                        i obs.round !expect;
                  incr expect)
                obs_list;
              let s = o.stats.(i) in
              if
                ok !result
                && s.Cts.Service.ccs_sent + s.Cts.Service.suppressed <> rounds
              then
                result :=
                  fail
                    "replica %d: %d rounds but %d sent + %d suppressed CCS \
                     messages"
                    i rounds s.Cts.Service.ccs_sent s.Cts.Service.suppressed
            end)
          o.observations;
        (match !result with
        | Ok () ->
            let total_sent =
              Array.fold_left
                (fun acc (s : Cts.Service.stats) -> acc + s.ccs_sent)
                0 o.stats
            in
            let rounds_seen =
              Array.fold_left (fun n b -> if b then n + 1 else n) 0 distinct
            in
            if total_sent < rounds_seen then
              result :=
                fail "only %d CCS messages sent for %d distinct rounds"
                  total_sent rounds_seen
        | Error _ -> ());
        !result);
  }

(* §1/§3.3: no roll-back, in particular across a primary failover — the
   service-level roll-back counters must stay at zero at every survivor. *)
let no_rollback =
  {
    name = "no-rollback";
    doc = "no surviving replica ever observed its group clock roll back";
    check =
      (fun o ->
        let result = ref (Ok ()) in
        Array.iteri
          (fun i (s : Cts.Service.stats) ->
            if ok !result && alive o i && s.rollbacks > 0 then
              result :=
                fail "replica %d: %d roll-back(s), worst %a" i s.rollbacks
                  Span.pp s.max_rollback)
          o.stats;
        !result);
  }

let builtin = [ monotone; agreement; single_synchronizer; no_rollback ]
let registered : t list ref = ref []
[@@ctslint.domain_owned
  "invariant registry: populated on the main domain while setting up a \
   scenario, before Mc.Pool workers start; workers only read it (all)"]
let register inv = registered := !registered @ [ inv ]
let reset_registered () = registered := []
let all () = builtin @ !registered

let check_all outcome =
  List.filter_map
    (fun inv ->
      match inv.check outcome with
      | Ok () -> None
      | Error msg -> Some (inv.name, msg))
    (all ())
