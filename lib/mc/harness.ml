module Time = Dsim.Time
module Span = Dsim.Time.Span
module Cluster = Scenario.Cluster

type bug = Ignore_buffered_winner

type config = {
  replicas : int;
  rounds : int;
  seed : int64;
  think_us : int;
  straggle_us : int;
  jitter_us : int;
  latency_us : int;
  skew_clocks : bool;
  crash_at_round : int option;
  bug : bug option;
  record_packets : bool;
  sink : Obs.Sink.t option;
}

let default =
  {
    replicas = 3;
    rounds = 20;
    seed = 1L;
    think_us = 100;
    straggle_us = 0;
    jitter_us = 40;
    latency_us = 20;
    skew_clocks = true;
    crash_at_round = None;
    bug = None;
    record_packets = false;
    sink = None;
  }

type info = {
  deviations : Schedule.t;
  steps : int;
  packets : int;
  ties : (int * int) list;
  fingerprint : int;
}

let fingerprint observations =
  let acc = ref 0 in
  let combine n = acc := (!acc * 1_000_003) + (n land max_int) in
  Array.iter
    (List.iter (fun (o : Invariant.observation) ->
         combine o.replica;
         combine o.round;
         combine (Time.to_ns o.gc)))
    observations;
  !acc

(* ------------------------------------------------------------------ *)
(* World construction (the expensive part: ring formation + membership) *)

type world = Cluster.t * Cts.Service.t array

let build_world cfg : world =
  if cfg.replicas < 2 then invalid_arg "Mc.Harness.run: need >= 2 replicas";
  let clock_config i =
    if cfg.skew_clocks then
      {
        Clock.Hwclock.default_config with
        offset = Span.of_us (i * 500);
        drift_ppm = 3.0 *. float_of_int i;
      }
    else Clock.Hwclock.default_config
  in
  let cluster =
    Cluster.create ~seed:cfg.seed
      ~latency:(Netsim.Latency.Constant (Span.of_us cfg.latency_us))
      ~clock_config ~nodes:cfg.replicas ()
  in
  let eng = cluster.Cluster.eng in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:(List.init cfg.replicas Fun.id));
  let group = cluster.Cluster.server_group in
  let services =
    Array.map
      (fun (n : Cluster.node) ->
        let service =
          Cts.Service.create eng ~endpoint:n.Cluster.endpoint ~group
            ~clock:n.Cluster.clock ()
        in
        Gcs.Endpoint.join_group n.Cluster.endpoint group ~handler:(fun ev ->
            match ev with
            | Gcs.Endpoint.Deliver { msg; _ } ->
                Cts.Service.on_message service msg
            | Gcs.Endpoint.View_change v -> Cts.Service.on_view service v
            | Gcs.Endpoint.Block | Gcs.Endpoint.Evicted -> ());
        service)
      cluster.Cluster.nodes
  in
  Cluster.run_until cluster (fun () ->
      Array.for_all
        (fun (n : Cluster.node) ->
          List.length (Gcs.Endpoint.members_of n.Cluster.endpoint group)
          = cfg.replicas)
        cluster.Cluster.nodes);
  (cluster, services)

(* ------------------------------------------------------------------ *)
(* Measurement (the controlled part, driven by the spec)               *)

let measure ((cluster, services) : world) ~spec cfg =
  if cfg.rounds < 1 then invalid_arg "Mc.Harness.run: need >= 1 round";
  let eng = cluster.Cluster.eng in
  let net = cluster.Cluster.net in
  (* Adopt an external obs sink on this world's engine (worlds rebuilt or
     unmarshalled by the reuse path get a fresh engine each time, so the
     sink must be re-adopted per measurement).  Exploration leaves this
     [None]; it is used to dump the span trace of a counterexample. *)
  (match cfg.sink with Some s -> Dsim.Engine.set_obs eng s | None -> ());
  let tracer =
    if cfg.record_packets then begin
      let tr = Netsim.Trace.create ~capacity:256 () in
      Netsim.Network.attach_trace net tr;
      Some tr
    end
    else None
  in
  (* Per-replica think-time streams, split in a fixed order before the
     controller is installed: a replica's stream does not depend on the
     schedule, so a replayed run draws identical delays. *)
  let rngs =
    Array.init cfg.replicas (fun _ -> Dsim.Rng.split (Dsim.Engine.rng eng))
  in
  let obs = Array.make cfg.replicas [] in
  let finished = ref 0 in
  let crashed = ref None in
  let thread = Cts.Thread_id.of_int 1 in
  let ctrl = Controller.create eng spec in
  Controller.install ctrl net;
  Array.iteri
    (fun i (n : Cluster.node) ->
      Dsim.Fiber.spawn eng (fun () ->
          let service = services.(i) in
          let think =
            cfg.think_us + if i = 0 then 0 else cfg.straggle_us
          in
          (try
             for round = 1 to cfg.rounds do
               let extra =
                 if cfg.jitter_us > 0 then
                   Dsim.Rng.int_range rngs.(i) 0 cfg.jitter_us
                 else 0
               in
               Dsim.Fiber.sleep eng (Span.of_us (think + extra));
               let pc = Clock.Hwclock.read n.Cluster.clock in
               let offset_before = Cts.Service.offset service in
               let suppressed_before =
                 (Cts.Service.stats service).Cts.Service.suppressed
               in
               let gc = Cts.Service.gettimeofday service ~thread in
               let suppressed_after =
                 (Cts.Service.stats service).Cts.Service.suppressed
               in
               let gc =
                 match cfg.bug with
                 | Some Ignore_buffered_winner
                   when i = 0 && suppressed_after > suppressed_before ->
                     (* Deliberately seeded reordering bug (test-only): when
                        the round's winning CCS message was already buffered
                        before the round opened (the duplicate-suppression
                        path), this replica keeps its own proposal instead
                        of adopting the buffered winner.  Only schedules
                        that delay this replica past the winner's delivery
                        expose it. *)
                     Time.add pc offset_before
                 | _ -> gc
               in
               obs.(i) <-
                 {
                   Invariant.replica = i;
                   round;
                   gc;
                   pc;
                   at = Dsim.Engine.now eng;
                 }
                 :: obs.(i);
               match cfg.crash_at_round with
               | Some k when round = k && i = cfg.replicas - 1 ->
                   crashed := Some i;
                   Gcs.Endpoint.crash n.Cluster.endpoint;
                   raise Exit
               | _ -> ()
             done
           with Exit -> ());
          incr finished))
    cluster.Cluster.nodes;
  Cluster.run_until ~limit:(Span.of_sec 600) cluster (fun () ->
      !finished = cfg.replicas);
  Controller.uninstall ctrl net;
  let packet_log =
    match tracer with
    | Some tr ->
        Netsim.Network.detach_trace net;
        Format.asprintf "%a" (Netsim.Trace.pp Totem.Wire.pp) tr
    | None -> ""
  in
  let observations = Array.map List.rev obs in
  let outcome =
    {
      Invariant.replicas = cfg.replicas;
      rounds = cfg.rounds;
      observations;
      stats = Array.map Cts.Service.stats services;
      crashed = !crashed;
      packet_log;
    }
  in
  let info =
    {
      deviations = Controller.applied ctrl;
      steps = Controller.steps ctrl;
      packets = Controller.packets ctrl;
      ties = Controller.tie_steps ctrl;
      fingerprint = fingerprint observations;
    }
  in
  (outcome, info)

let run ?(spec = Controller.default_spec) cfg =
  measure (build_world cfg) ~spec cfg

(* ------------------------------------------------------------------ *)
(* Harness reuse                                                       *)

(* The pristine post-startup world is seed-independent except for the RNG
   streams: startup uses a constant-latency, lossless network and
   jitterless clocks, so no stream is ever {e drawn} from before the
   measurement phase — construction only {e splits} the engine stream, in
   a fixed order (network first, then one clock per node).  [reset] relies
   on this: it restores a marshalled copy of the pristine world and
   rewinds the streams to the states fresh construction under the new seed
   would have produced.  The invariant is verified once per template by
   replaying the split order against the freshly built world; on any
   mismatch (or on a marshalling failure) the reusable falls back to fresh
   construction, trading speed for unconditional correctness. *)

type projection = { p_replicas : int; p_latency_us : int; p_skew : bool }

type reusable = {
  mutable diff : (world * Snap.t) option;
      (* live world + dirty-set snapshot: the fast path.  [None] = the
         world holds state [Snap] cannot rewind (or the probe said so) *)
  mutable template : Bytes.t option; (* [None] = fall back to fresh runs *)
  mutable proj : projection;
}

let projection cfg =
  {
    p_replicas = cfg.replicas;
    p_latency_us = cfg.latency_us;
    p_skew = cfg.skew_clocks;
  }

(* Check that the built world's streams are exactly those of the canonical
   split order under [cfg.seed] — i.e. that startup made no draws and no
   extra splits.  Any future component that draws or splits during startup
   makes this fail, which disables reuse instead of corrupting runs. *)
let split_order_holds cfg ((cluster, _) : world) =
  let scratch = Dsim.Rng.create cfg.seed in
  let expect () = Dsim.Rng.state (Dsim.Rng.split scratch) in
  Dsim.Rng.state (Netsim.Network.rng cluster.Cluster.net) = expect ()
  && Array.for_all
       (fun (n : Cluster.node) ->
         Dsim.Rng.state (Clock.Hwclock.rng n.Cluster.clock) = expect ())
       cluster.Cluster.nodes
  && Dsim.Rng.state (Dsim.Engine.rng cluster.Cluster.eng)
     = Dsim.Rng.state scratch

let make_template cfg =
  (try
     let world = build_world cfg in
     if split_order_holds cfg world then
       Some (Marshal.to_bytes world [ Marshal.Closures ])
     else None
   with _ -> None)
  [@ctslint.allow
    "exn-swallow"
      "any marshalling failure (unmarshallable closure, abstract block) \
       only disables the reuse fast path; fresh construction is the \
       result-identical fallback"]

(* Rewind every pre-measurement stream to what fresh construction under
   [cfg.seed] would hold, replaying the canonical split order. *)
let reseed ((cluster, _) : world) cfg =
  let er = Dsim.Engine.rng cluster.Cluster.eng in
  Dsim.Rng.set_state er cfg.seed;
  Dsim.Rng.set_state
    (Netsim.Network.rng cluster.Cluster.net)
    (Dsim.Rng.state (Dsim.Rng.split er));
  Array.iter
    (fun (n : Cluster.node) ->
      Dsim.Rng.set_state
        (Clock.Hwclock.rng n.Cluster.clock)
        (Dsim.Rng.state (Dsim.Rng.split er)))
    cluster.Cluster.nodes

(* Diff-based reuse: keep ONE live world and rewind it between runs with
   [Snap.restore] instead of rebuilding it from marshalled bytes.  The
   snapshot layer cannot rewind every block (Bigarray RNG customs above
   all — those go through [reseed] — but also any mutable state it does
   not know how to walk), so a snapshot is only trusted after a
   verification probe: run a short measurement on the pristine world,
   restore + reseed, run it again, and demand bit-identical fingerprints.
   A world whose restore is lossy fails the probe and drops to the
   marshal template; correctness never depends on [Snap] completeness. *)

let probe_cfg cfg =
  {
    cfg with
    rounds = 2;
    crash_at_round = None;
    bug = None;
    record_packets = false;
    sink = None;
  }

let make_diff cfg =
  (try
     let world = build_world cfg in
     if not (split_order_holds cfg world) then None
     else begin
       let snap = Snap.capture world in
       let pcfg = probe_cfg cfg in
       reseed world pcfg;
       let _, fresh = measure world ~spec:Controller.default_spec pcfg in
       ignore (Snap.restore snap : int);
       reseed world pcfg;
       let _, again = measure world ~spec:Controller.default_spec pcfg in
       if
         fresh.fingerprint = again.fingerprint
         && fresh.steps = again.steps
         && fresh.packets = again.packets
       then begin
         (* leave the world pristine for its first real run *)
         ignore (Snap.restore snap : int);
         Some (world, snap)
       end
       else None
     end
   with _ -> None)
  [@ctslint.allow
    "exn-swallow"
      "a world the snapshot layer cannot capture or replay only disables \
       the diff fast path; the marshal template and fresh construction \
       are the result-identical fallbacks"]

(* When the diff path verified, marshal the same (restored-pristine)
   world as the backup template instead of building a second world. *)
let make_both cfg =
  match make_diff cfg with
  | Some (world, _) as diff ->
      let template =
        (try Some (Marshal.to_bytes world [ Marshal.Closures ])
         with _ -> None)
        [@ctslint.allow
          "exn-swallow"
            "marshalling failure only loses the backup template; the diff \
             path (already verified) still serves runs"]
      in
      (diff, template)
  | None -> (None, make_template cfg)

let reusable cfg =
  let diff, template = make_both cfg in
  { diff; template; proj = projection cfg }

let reuse_mode r =
  match (r.diff, r.template) with
  | Some _, _ -> `Diff
  | None, Some _ -> `Marshal
  | None, None -> `Fresh

let same_projection a b =
  (* Monomorphic on purpose: checked once per run. *)
  a.p_replicas = b.p_replicas
  && a.p_latency_us = b.p_latency_us
  && a.p_skew = b.p_skew

let reset r cfg =
  if not (same_projection (projection cfg) r.proj) then begin
    r.proj <- projection cfg;
    let diff, template = make_both cfg in
    r.diff <- diff;
    r.template <- template
  end;
  r.diff <> None || r.template <> None

let run_marshal r ~spec cfg =
  match r.template with
  | Some template -> (
      match
        (try
           let world : world = Marshal.from_bytes template 0 in
           reseed world cfg;
           Some world
         with _ ->
           (* Unmarshalling failed: disable reuse for this projection. *)
           r.template <- None;
           None)
        [@ctslint.allow
          "exn-swallow"
            "unmarshalling failure disables reuse for this projection; \
             Harness.run is the result-identical fallback"]
      with
      | Some world -> measure world ~spec cfg
      | None -> run ~spec cfg)
  | None -> run ~spec cfg

let run_reused r ?(spec = Controller.default_spec) cfg =
  if reset r cfg then
    match r.diff with
    | Some (world, snap) ->
        ignore (Snap.restore snap : int);
        reseed world cfg;
        measure world ~spec cfg
    | None -> run_marshal r ~spec cfg
  else run ~spec cfg
