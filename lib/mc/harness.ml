module Time = Dsim.Time
module Span = Dsim.Time.Span
module Cluster = Scenario.Cluster

type bug = Ignore_buffered_winner

type config = {
  replicas : int;
  rounds : int;
  seed : int64;
  think_us : int;
  straggle_us : int;
  jitter_us : int;
  latency_us : int;
  skew_clocks : bool;
  crash_at_round : int option;
  bug : bug option;
  record_packets : bool;
}

let default =
  {
    replicas = 3;
    rounds = 20;
    seed = 1L;
    think_us = 100;
    straggle_us = 0;
    jitter_us = 40;
    latency_us = 20;
    skew_clocks = true;
    crash_at_round = None;
    bug = None;
    record_packets = false;
  }

type info = {
  deviations : Schedule.t;
  steps : int;
  packets : int;
  ties : (int * int) list;
  fingerprint : int;
}

let fingerprint observations =
  let combine acc n = (acc * 1_000_003) + n land max_int in
  Array.fold_left
    (List.fold_left (fun acc (o : Invariant.observation) ->
         combine (combine (combine acc o.replica) o.round) (Time.to_ns o.gc)))
    0 observations

let run ?(spec = Controller.default_spec) cfg =
  if cfg.replicas < 2 then invalid_arg "Mc.Harness.run: need >= 2 replicas";
  if cfg.rounds < 1 then invalid_arg "Mc.Harness.run: need >= 1 round";
  let clock_config i =
    if cfg.skew_clocks then
      {
        Clock.Hwclock.default_config with
        offset = Span.of_us (i * 500);
        drift_ppm = 3.0 *. float_of_int i;
      }
    else Clock.Hwclock.default_config
  in
  let cluster =
    Cluster.create ~seed:cfg.seed
      ~latency:(Netsim.Latency.Constant (Span.of_us cfg.latency_us))
      ~clock_config ~nodes:cfg.replicas ()
  in
  let eng = cluster.Cluster.eng in
  let net = cluster.Cluster.net in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:(List.init cfg.replicas Fun.id));
  let group = cluster.Cluster.server_group in
  let services =
    Array.map
      (fun (n : Cluster.node) ->
        let service =
          Cts.Service.create eng ~endpoint:n.Cluster.endpoint ~group
            ~clock:n.Cluster.clock ()
        in
        Gcs.Endpoint.join_group n.Cluster.endpoint group ~handler:(fun ev ->
            match ev with
            | Gcs.Endpoint.Deliver { msg; _ } ->
                Cts.Service.on_message service msg
            | Gcs.Endpoint.View_change v -> Cts.Service.on_view service v
            | Gcs.Endpoint.Block | Gcs.Endpoint.Evicted -> ());
        service)
      cluster.Cluster.nodes
  in
  Cluster.run_until cluster (fun () ->
      Array.for_all
        (fun (n : Cluster.node) ->
          List.length (Gcs.Endpoint.members_of n.Cluster.endpoint group)
          = cfg.replicas)
        cluster.Cluster.nodes);
  let tracer =
    if cfg.record_packets then begin
      let tr = Netsim.Trace.create ~capacity:256 () in
      Netsim.Network.attach_trace net tr;
      Some tr
    end
    else None
  in
  (* Per-replica think-time streams, split in a fixed order before the
     controller is installed: a replica's stream does not depend on the
     schedule, so a replayed run draws identical delays. *)
  let rngs =
    Array.init cfg.replicas (fun _ -> Dsim.Rng.split (Dsim.Engine.rng eng))
  in
  let obs = Array.make cfg.replicas [] in
  let finished = ref 0 in
  let crashed = ref None in
  let thread = Cts.Thread_id.of_int 1 in
  let ctrl = Controller.create eng spec in
  Controller.install ctrl net;
  Array.iteri
    (fun i (n : Cluster.node) ->
      Dsim.Fiber.spawn eng (fun () ->
          let service = services.(i) in
          let think =
            cfg.think_us + if i = 0 then 0 else cfg.straggle_us
          in
          (try
             for round = 1 to cfg.rounds do
               let extra =
                 if cfg.jitter_us > 0 then
                   Dsim.Rng.int_range rngs.(i) 0 cfg.jitter_us
                 else 0
               in
               Dsim.Fiber.sleep eng (Span.of_us (think + extra));
               let pc = Clock.Hwclock.read n.Cluster.clock in
               let offset_before = Cts.Service.offset service in
               let suppressed_before =
                 (Cts.Service.stats service).Cts.Service.suppressed
               in
               let gc = Cts.Service.gettimeofday service ~thread in
               let suppressed_after =
                 (Cts.Service.stats service).Cts.Service.suppressed
               in
               let gc =
                 match cfg.bug with
                 | Some Ignore_buffered_winner
                   when i = 0 && suppressed_after > suppressed_before ->
                     (* Deliberately seeded reordering bug (test-only): when
                        the round's winning CCS message was already buffered
                        before the round opened (the duplicate-suppression
                        path), this replica keeps its own proposal instead
                        of adopting the buffered winner.  Only schedules
                        that delay this replica past the winner's delivery
                        expose it. *)
                     Time.add pc offset_before
                 | _ -> gc
               in
               obs.(i) <-
                 {
                   Invariant.replica = i;
                   round;
                   gc;
                   pc;
                   at = Dsim.Engine.now eng;
                 }
                 :: obs.(i);
               match cfg.crash_at_round with
               | Some k when round = k && i = cfg.replicas - 1 ->
                   crashed := Some i;
                   Gcs.Endpoint.crash n.Cluster.endpoint;
                   raise Exit
               | _ -> ()
             done
           with Exit -> ());
          incr finished))
    cluster.Cluster.nodes;
  Cluster.run_until ~limit:(Span.of_sec 600) cluster (fun () ->
      !finished = cfg.replicas);
  Controller.uninstall ctrl net;
  let packet_log =
    match tracer with
    | Some tr ->
        Netsim.Network.detach_trace net;
        Format.asprintf "%a" (Netsim.Trace.pp Totem.Wire.pp) tr
    | None -> ""
  in
  let observations = Array.map List.rev obs in
  let outcome =
    {
      Invariant.replicas = cfg.replicas;
      rounds = cfg.rounds;
      observations;
      stats = Array.map Cts.Service.stats services;
      crashed = !crashed;
      packet_log;
    }
  in
  let info =
    {
      deviations = Controller.applied ctrl;
      steps = Controller.steps ctrl;
      packets = Controller.packets ctrl;
      ties = Controller.tie_steps ctrl;
      fingerprint = fingerprint observations;
    }
  in
  (outcome, info)
