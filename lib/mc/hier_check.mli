(** Random-walk exploration of the hierarchical multi-ring service.

    Each walk builds a fresh {!Scenario.Cluster_hier} testbed with
    skewed per-shard clocks, lets it converge, then alternates random
    stretches of progress with randomly injected gateway crashes
    (bounded so every shard keeps a strict majority of its original
    members and thus stays in the primary component).  After every
    perturbation the walk settles and checks the PR's three hierarchy
    invariants:

    - {e no-global-regression}: no agent's monotone global clock ever
      clamped a newer agreement ({!Scenario.Cluster_hier.regressions}
      stays 0);
    - {e deterministic-election}: every shard's live replicas agree on
      the gateway and it is the deterministic winner, the minimum live
      node id ({!Dsim.Det.elect});
    - {e cross-shard-skew}: at the end of the walk the live shard
      estimates lie within [skew_bound] of each other.

    All randomness comes from one {!Dsim.Rng} stream derived from
    [seed], so a reported violation replays exactly. *)

type config = {
  shards : int;
  shard_size : int;
  walks : int;  (** independent random walks *)
  steps : int;  (** perturbation steps per walk *)
  seed : int64;
  skew_bound : Dsim.Time.Span.t;
  crash_prob : float;  (** chance per step of crashing a gateway *)
  settle : Dsim.Time.Span.t;
      (** quiescence granted after each perturbation before checking *)
}

val default : config
(** 8 walks of 6 steps over a 3x3 hierarchy, 5 ms bound, 40 ms settle,
    crash probability 0.4. *)

type violation = { walk : int; step : int; invariant : string; detail : string }

type report = {
  walks_run : int;
  crashes_injected : int;
  violations : violation list;  (** empty when every walk held *)
}

val pp_violation : Format.formatter -> violation -> unit
val run : config -> report
