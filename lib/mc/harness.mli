(** One controlled run of the CCS scenario.

    Builds the standard testbed ({!Scenario.Cluster}) with one consistent
    time service per node, lets every replica perform [rounds] group clock
    reads separated by think time, and drives the whole simulation under a
    {!Controller.spec} — so the same configuration replayed with the same
    deviation trace is bit-identical.  Returns the {!Invariant.outcome} to
    check plus an {!info} describing the schedule that was actually
    executed. *)

type bug = Ignore_buffered_winner
    (** Test-only seeded reordering bug: replica 0 ignores a winner that
        was buffered before its round opened and keeps its own proposal.
        Dormant on schedules where replica 0 always opens its rounds first
        (see {!config.straggle_us}); exposed by schedules that delay
        replica 0 past another replica's winning CCS message. *)

type config = {
  replicas : int;  (** cluster size; every node runs a replica (>= 2) *)
  rounds : int;  (** group clock reads per replica *)
  seed : int64;  (** root seed of the whole run *)
  think_us : int;  (** inter-round think time of replica 0 *)
  straggle_us : int;  (** extra think time of replicas > 0 *)
  jitter_us : int;  (** uniform extra think time, drawn per round *)
  latency_us : int;  (** constant wire latency *)
  skew_clocks : bool;
      (** give node [i] a [500 i] µs offset and [3 i] ppm drift, so a
          replica that leaked its local clock would be caught loudly *)
  crash_at_round : int option;
      (** crash the last replica when it completes this round (failover
          perturbation) *)
  bug : bug option;
  record_packets : bool;
      (** record and render the packet trace into the outcome *)
}

val default : config
(** 3 replicas, 20 rounds, seed 1, 100 µs think, 40 µs jitter, 20 µs
    constant latency, skewed clocks, no crash, no bug, no packet log. *)

type info = {
  deviations : Schedule.t;  (** applied deviations, chronological *)
  steps : int;  (** engine choice points seen *)
  packets : int;  (** network packets seen *)
  ties : (int * int) list;  (** [(step, ready)] branching points *)
  fingerprint : int;  (** hash of all observations — schedule identity *)
}

val run : ?spec:Controller.spec -> config -> Invariant.outcome * info
