(** One controlled run of the CCS scenario.

    Builds the standard testbed ({!Scenario.Cluster}) with one consistent
    time service per node, lets every replica perform [rounds] group clock
    reads separated by think time, and drives the whole simulation under a
    {!Controller.spec} — so the same configuration replayed with the same
    deviation trace is bit-identical.  Returns the {!Invariant.outcome} to
    check plus an {!info} describing the schedule that was actually
    executed. *)

type bug = Ignore_buffered_winner
    (** Test-only seeded reordering bug: replica 0 ignores a winner that
        was buffered before its round opened and keeps its own proposal.
        Dormant on schedules where replica 0 always opens its rounds first
        (see {!config.straggle_us}); exposed by schedules that delay
        replica 0 past another replica's winning CCS message. *)

type config = {
  replicas : int;  (** cluster size; every node runs a replica (>= 2) *)
  rounds : int;  (** group clock reads per replica *)
  seed : int64;  (** root seed of the whole run *)
  think_us : int;  (** inter-round think time of replica 0 *)
  straggle_us : int;  (** extra think time of replicas > 0 *)
  jitter_us : int;  (** uniform extra think time, drawn per round *)
  latency_us : int;  (** constant wire latency *)
  skew_clocks : bool;
      (** give node [i] a [500 i] µs offset and [3 i] ppm drift, so a
          replica that leaked its local clock would be caught loudly *)
  crash_at_round : int option;
      (** crash the last replica when it completes this round (failover
          perturbation) *)
  bug : bug option;
  record_packets : bool;
      (** record and render the packet trace into the outcome *)
  sink : Obs.Sink.t option;
      (** observability sink adopted by the world's engine for the
          measurement (re-adopted after every rebuild/unmarshal, so it
          works with the reuse path too).  [None] for exploration; used
          by {!Explore.trace_violation} to capture the span trace of a
          counterexample.  Attaching a sink never perturbs the run: the
          probes only read simulation state. *)
}

val default : config
(** 3 replicas, 20 rounds, seed 1, 100 µs think, 40 µs jitter, 20 µs
    constant latency, skewed clocks, no crash, no bug, no packet log. *)

type info = {
  deviations : Schedule.t;  (** applied deviations, chronological *)
  steps : int;  (** engine choice points seen *)
  packets : int;  (** network packets seen *)
  ties : (int * int) list;  (** [(step, ready)] branching points *)
  fingerprint : int;  (** hash of all observations — schedule identity *)
}

val run : ?spec:Controller.spec -> config -> Invariant.outcome * info

(** {2 Harness reuse}

    World construction (ring formation + group membership) dominates the
    cost of a run.  A {!reusable} snapshots the pristine post-startup
    world once and restores it per run instead of rebuilding it, which is
    sound because startup never draws from any random stream — it only
    splits them in a fixed order, so the post-startup state is
    seed-independent and the streams can be rewound to any seed
    afterwards.

    Two snapshot mechanisms are kept, fastest-first: a {!Snap} dirty-set
    rewind of the live world (no allocation, no rebuild — trusted only
    after a verification probe proved restore + reseed replays a pristine
    run bit-for-bit) and the marshalled template it falls back to.  If
    both fail, the reusable silently falls back to fresh construction —
    so {!run_reused} always returns exactly what {!run} would. *)

type reusable

val reuse_mode : reusable -> [ `Diff | `Marshal | `Fresh ]
(** Which mechanism the next {!run_reused} will use: [`Diff] = dirty-set
    restore of the live world, [`Marshal] = unmarshal the template,
    [`Fresh] = full reconstruction.  Diagnostic (the bench reports it);
    results are identical in all three modes. *)

val reusable : config -> reusable
(** Build a reusable worker harness for configurations sharing this
    configuration's startup projection ([replicas], [latency_us],
    [skew_clocks]). *)

val reset : reusable -> config -> bool
(** [reset r cfg] readies [r] for a run of [cfg], rebuilding the snapshot
    if [cfg]'s startup projection differs from the current one.  Returns
    [false] when reuse is unavailable and runs will fall back to fresh
    construction (the fallback is handled inside {!run_reused}; callers
    only need the return value for diagnostics). *)

val run_reused :
  reusable -> ?spec:Controller.spec -> config -> Invariant.outcome * info
(** Like {!run}, but restoring [reusable]'s snapshot instead of
    rebuilding the world when possible.  Guaranteed to produce results
    identical to {!run} for the same [spec] and [cfg]. *)

