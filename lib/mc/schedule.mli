(** Schedules as deviation traces.

    A run of the deterministic simulator is fully described by its root
    seed plus the list of points where the controller deviated from the
    default [(time, insertion order)] schedule.  Two kinds of deviation
    exist, matching the two choice-point hooks:

    - [Reorder]: at engine choice point [step] (the [step]-th call to
      {!Dsim.Engine.step} after the controller was installed), run the
      [take]-th of the events sharing the earliest timestamp instead of the
      first one;
    - [Delay]: hold the [packet]-th network packet scheduled for delivery
      after installation back by one controller quantum.

    The empty list is the default schedule.  Deviations are kept in the
    chronological order they were applied, which is what the shrinker's
    prefix-truncation relies on. *)

type deviation =
  | Reorder of { step : int; take : int }
  | Delay of { packet : int }

type t = deviation list

val empty : t
val length : t -> int
val pp_deviation : Format.formatter -> deviation -> unit
val pp : Format.formatter -> t -> unit
