(** Multicore schedule exploration.

    Fans the {!Explore} loop out over [jobs] worker domains (OCaml 5
    [Domain]s).  Every harness run is a pure function of its seed and
    controller spec, and each domain builds its own engine, network and
    RNGs, so workers share nothing but the work dispenser — a
    mutex-guarded index counter — and the result array, whose slots are
    written by exactly one worker each.

    Reports are deterministic: for a fixed strategy, budget and seed, the
    violation list and the distinct-schedule count are identical whatever
    [jobs] is, and identical to the sequential {!Explore.explore}.

    The frontier is sharded and work-stealing rather than centrally
    dispensed or wave-synchronized:

    - [Random]: the run-index space [0, budget) is split into one
      contiguous shard per domain (run [i] is a pure function of [i],
      {!Strategy.random_run}); a worker eats its own shard from the
      front and steals the back half of the fullest survivor when it
      runs dry, so the common case takes only its own uncontended lock.
    - [Bounded]: per-domain deques over the deviation-prefix tree,
      executed optimistically with back-half stealing and no generation
      barrier; a sequential canonical replay then walks the exact BFS
      FIFO order off the shared result table (running any task the
      workers missed on the spot), so the output is independent of how
      the tree was raced.

    The merge dedupes schedules by outcome fingerprint, orders violations
    by schedule index, and confirms/shrinks each violation sequentially
    on the calling domain ({!Explore.build_violation}).  With
    [stop_at_first], the report covers exactly the schedule prefix up to
    the first violation — domains may race a little past it, but the
    extra runs are discarded, not reported. *)

val explore :
  ?strategy:Strategy.t ->
  ?budget:int ->
  ?quantum_us:int ->
  ?stop_at_first:bool ->
  ?jobs:int ->
  Harness.config ->
  Explore.report
(** [explore ~jobs cfg] is {!Explore.explore} distributed over [jobs]
    worker domains (default 1: run everything on the calling domain, no
    domain is spawned).  Raises [Invalid_argument] if [jobs < 1]. *)
