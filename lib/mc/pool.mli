(** Multicore schedule exploration.

    Fans the {!Explore} loop out over [jobs] worker domains (OCaml 5
    [Domain]s).  Every harness run is a pure function of its seed and
    controller spec, and each domain builds its own engine, network and
    RNGs, so workers share nothing but the work dispenser — a
    mutex-guarded index counter — and the result array, whose slots are
    written by exactly one worker each.

    Reports are deterministic: for a fixed strategy, budget and seed, the
    violation list and the distinct-schedule count are identical whatever
    [jobs] is, and identical to the sequential {!Explore.explore}.

    - [Random]: the run-index space [0, budget) is partitioned into
      chunks; run [i]'s seed and walk are pure functions of [i]
      ({!Strategy.random_run}).
    - [Bounded]: breadth-first over deviation prefixes, one generation
      per wave; a parent's children depend only on its own run, so the
      frontier is independent of scheduling.

    The merge dedupes schedules by outcome fingerprint, orders violations
    by schedule index, and confirms/shrinks each violation sequentially
    on the calling domain ({!Explore.build_violation}).  With
    [stop_at_first], the report covers exactly the schedule prefix up to
    the first violation — domains may race a little past it, but the
    extra runs are discarded, not reported. *)

val explore :
  ?strategy:Strategy.t ->
  ?budget:int ->
  ?quantum_us:int ->
  ?stop_at_first:bool ->
  ?jobs:int ->
  Harness.config ->
  Explore.report
(** [explore ~jobs cfg] is {!Explore.explore} distributed over [jobs]
    worker domains (default 1: run everything on the calling domain, no
    domain is spawned).  Raises [Invalid_argument] if [jobs < 1]. *)
