module Span = Dsim.Time.Span

(* One completed schedule, as recorded by whichever worker domain ran it.
   [violated] is the first broken invariant's name; confirmation and
   shrinking happen later, sequentially, on the calling domain. *)
type run_result = {
  seed : int64;
  spec : Controller.spec;
  info : Harness.info;
  violated : string option;
}

let exec ~reusable cfg (seed, spec) =
  let rcfg = { cfg with Harness.seed = seed; record_packets = false } in
  let outcome, info = Harness.run_reused reusable ~spec rcfg in
  let violated =
    match Invariant.check_all outcome with
    | [] -> None
    | (name, _) :: _ -> Some name
  in
  { seed; spec; info; violated }

(* Worker harnesses are checked out of a shared free pool rather than
   built per worker, so the world-snapshot cost is paid once per domain
   across a whole exploration session (and across sessions).  A
   checked-out reusable is owned by exactly one domain until it is
   returned. *)
let reusables : Harness.reusable list ref = ref []
let reusables_m = Mutex.create ()

let take_reusable cfg =
  Mutex.lock reusables_m;
  match !reusables with
  | r :: rest ->
      reusables := rest;
      Mutex.unlock reusables_m;
      r
  | [] ->
      Mutex.unlock reusables_m;
      Harness.reusable { cfg with Harness.record_packets = false }

let give_reusable r =
  Mutex.lock reusables_m;
  reusables := r :: !reusables;
  Mutex.unlock reusables_m

(* Record a violation at index [i] so workers can stop spending time past
   it.  The minimum only ever decreases, and a worker skips an index only
   when it is strictly above the current minimum, so every index at or
   below the final minimum is guaranteed to have been executed — which is
   all the merge reads. *)
let note_violation min_viol i =
  let rec upd () =
    let cur = Atomic.get min_viol in
    if i < cur && not (Atomic.compare_and_set min_viol cur i) then upd ()
  in
  upd ()

(* ------------------------------------------------------------------ *)
(* Random strategy: sharded index space + range stealing               *)

(* Run [i]'s seed and walk are pure functions of [i], so the frontier is
   just the index range [0, n), split into one contiguous shard per
   domain.  Each worker eats its own shard from the front in small
   batches; a worker whose shard runs dry steals the BACK half of the
   biggest surviving shard.  Compared to the previous mutex-guarded
   central dispenser, the common case touches only the worker's own
   shard lock (uncontended), and stealing moves O(remaining/2) indices
   in O(1) by fiddling two bounds — the classic range-stealing deque,
   legal here because the work items are consecutive integers. *)
type shard = { mutable lo : int; mutable hi : int; sm : Mutex.t }

let shard_take_batch sh k =
  Mutex.lock sh.sm;
  let lo = sh.lo in
  let n = min k (sh.hi - lo) in
  if n > 0 then sh.lo <- lo + n;
  Mutex.unlock sh.sm;
  (lo, n)

let shard_steal sh =
  Mutex.lock sh.sm;
  let len = sh.hi - sh.lo in
  (* ceil(len/2): a one-element shard is stolen whole, so a thief that
     picked it always makes progress *)
  let k = (len + 1) / 2 in
  let stolen = (sh.hi - k, k) in
  if k > 0 then sh.hi <- sh.hi - k;
  Mutex.unlock sh.sm;
  stolen

(* Steal from the victim with the most work left (sized without locks:
   stale bounds only make the choice suboptimal, never wrong). *)
let pick_victim shards self =
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun v sh ->
      if v <> self then begin
        let len = sh.hi - sh.lo in
        if len > !best_len then begin
          best := v;
          best_len := len
        end
      end)
    shards;
  !best

let run_indexed ~jobs ~stop_at_first cfg n task =
  let results = Array.make n None in
  if n > 0 then begin
    let jobs = min jobs n in
    let min_viol = Atomic.make max_int in
    let shards =
      Array.init jobs (fun k ->
          { lo = k * n / jobs; hi = (k + 1) * n / jobs; sm = Mutex.create () })
    in
    let batch = 16 in
    let worker k () =
      let reusable = take_reusable cfg in
      let sh = shards.(k) in
      let continue = ref true in
      while !continue do
        let lo, got = shard_take_batch sh batch in
        if got > 0 then
          for i = lo to lo + got - 1 do
            if not (stop_at_first && i > Atomic.get min_viol) then begin
              let r = exec ~reusable cfg (task i) in
              if r.violated <> None then note_violation min_viol i;
              results.(i) <- Some r
            end
          done
        else begin
          match pick_victim shards k with
          | -1 -> continue := false
          | v ->
              let slo, sn = shard_steal shards.(v) in
              if sn > 0 then begin
                Mutex.lock sh.sm;
                sh.lo <- slo;
                sh.hi <- slo + sn;
                Mutex.unlock sh.sm
              end
              (* steal raced to nothing: rescan; loop exits when every
                 shard reads empty *)
        end
      done;
      give_reusable reusable
    in
    let extra =
      Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    Array.iter Domain.join extra
  end;
  results

let explore_random ~delay_prob ~reorder_prob ~quantum ~jobs ~stop_at_first
    ~budget cfg =
  let base_seed = cfg.Harness.seed in
  run_indexed ~jobs ~stop_at_first cfg budget (fun i ->
      Strategy.random_run ~base_seed ~quantum ~delay_prob ~reorder_prob i)

(* ------------------------------------------------------------------ *)
(* Bounded strategy: per-domain task deques + canonical replay merge   *)

(* The bounded-reorder tree is discovered as it is executed: a spec's
   children are a pure function of its own result
   ({!Strategy.bounded_children}), and a child's [forced] trace extends
   its parent's, so the trace doubles as the task's canonical identity.

   Execution is optimistic and unordered: each worker keeps a private
   deque of specs, pops its own front (FIFO, so its local order
   approximates the canonical BFS), pushes the children of what it ran,
   and steals the back half of the fullest other deque when it runs dry —
   no generation barrier, so domains never idle at a wave boundary while
   one straggler finishes (the previous wave-synchronized BFS lost its
   whole speedup to exactly that).  Every completed run is recorded in a
   shared trace-keyed table.

   Determinism is then restored by a sequential canonical replay on the
   calling domain: walk the BFS frontier in the exact FIFO order the
   sequential generator would produce, looking every task up in the
   table; the rare task the workers never got to (they stop at [budget]
   claims, or early on a violation) is run synchronously on the spot.
   The output is therefore byte-identical at any domain count — the
   workers only decide how much of the table was filled in parallel. *)

type dq = {
  mutable items : (int64 * Controller.spec) array;
  mutable dlo : int;
  mutable dhi : int; (* live items in [dlo, dhi) of [items] *)
  dqm : Mutex.t;
}

let dq_dummy = (0L, { Controller.forced = []; random = None; quantum = Span.zero })

let dq_create () =
  { items = Array.make 64 dq_dummy; dlo = 0; dhi = 0; dqm = Mutex.create () }

let dq_push_back d x =
  Mutex.lock d.dqm;
  if d.dhi = Array.length d.items then begin
    let live = d.dhi - d.dlo in
    let items = Array.make (max 64 (2 * live)) dq_dummy in
    Array.blit d.items d.dlo items 0 live;
    d.items <- items;
    d.dlo <- 0;
    d.dhi <- live
  end;
  d.items.(d.dhi) <- x;
  d.dhi <- d.dhi + 1;
  Mutex.unlock d.dqm

let dq_pop_front d =
  Mutex.lock d.dqm;
  let r =
    if d.dlo < d.dhi then begin
      let x = d.items.(d.dlo) in
      d.items.(d.dlo) <- dq_dummy;
      d.dlo <- d.dlo + 1;
      Some x
    end
    else None
  in
  Mutex.unlock d.dqm;
  r

(* Move the back half (ceil, so a singleton victim still yields) of
   [victim] into [self] (assumed empty).  The loot is copied out under
   the victim's lock alone and inserted under [self]'s lock alone —
   never holding both, so two thieves picking each other as victims
   cannot deadlock on lock order. *)
let dq_steal_into ~victim ~self =
  Mutex.lock victim.dqm;
  let live = victim.dhi - victim.dlo in
  let k = (live + 1) / 2 in
  let loot =
    if k > 0 then begin
      let a = Array.sub victim.items (victim.dhi - k) k in
      Array.fill victim.items (victim.dhi - k) k dq_dummy;
      victim.dhi <- victim.dhi - k;
      a
    end
    else [||]
  in
  Mutex.unlock victim.dqm;
  if k > 0 then begin
    Mutex.lock self.dqm;
    if Array.length self.items < k then self.items <- Array.make k dq_dummy;
    Array.blit loot 0 self.items 0 k;
    self.dlo <- 0;
    self.dhi <- k;
    Mutex.unlock self.dqm
  end;
  k > 0

let explore_bounded ~depth ~quantum ~jobs ~stop_at_first ~budget cfg =
  let seed = cfg.Harness.seed in
  let root = { Controller.forced = []; random = None; quantum } in
  (* shared trace-keyed result table *)
  let table : (Schedule.t, run_result) Hashtbl.t = Hashtbl.create 1024 in
  let table_m = Mutex.create () in
  let record spec r =
    Mutex.lock table_m;
    Hashtbl.replace table spec.Controller.forced r;
    Mutex.unlock table_m
  in
  let lookup spec =
    Mutex.lock table_m;
    let r = Hashtbl.find_opt table spec.Controller.forced in
    Mutex.unlock table_m;
    r
  in
  let claims = Atomic.make 0 in
  let inflight = Atomic.make 0 in
  let violated_flag = Atomic.make false in
  let deques = Array.init jobs (fun _ -> dq_create ()) in
  dq_push_back deques.(0) (seed, root);
  let worker k () =
    let reusable = take_reusable cfg in
    let d = deques.(k) in
    let continue = ref true in
    while !continue do
      if
        Atomic.get claims >= budget
        || (stop_at_first && Atomic.get violated_flag)
      then continue := false
      else
        match dq_pop_front d with
        | Some ((_, spec) as tsk) ->
            if Atomic.fetch_and_add claims 1 < budget then begin
              Atomic.incr inflight;
              let r = exec ~reusable cfg tsk in
              record spec r;
              if r.violated <> None then Atomic.set violated_flag true;
              if Schedule.length spec.Controller.forced < depth then
                List.iter
                  (fun child -> dq_push_back d (seed, child))
                  (Strategy.bounded_children ~quantum ~parent:spec
                     ~info:r.info);
              Atomic.decr inflight
            end
        | None ->
            (* own deque dry: steal the fullest victim's back half *)
            let victim = ref (-1) and best = ref 0 in
            Array.iteri
              (fun v dv ->
                if v <> k then begin
                  let live = dv.dhi - dv.dlo in
                  if live > !best then begin
                    victim := v;
                    best := live
                  end
                end)
              deques;
            if !victim >= 0 then
              ignore (dq_steal_into ~victim:deques.(!victim) ~self:d : bool)
            else if Atomic.get inflight = 0 then
              (* nothing queued anywhere and nobody is running a task
                 that could still publish children: the tree is done *)
              continue := false
            else Domain.cpu_relax ()
    done;
    give_reusable reusable
  in
  let extra = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join extra;
  (* Canonical replay: the exact FIFO frontier the sequential generator
     walks, truncated at [budget], served from the table (or, for the
     rare miss, run here and now).  This is the deterministic
     merge-by-index: the result array below is indistinguishable from a
     sequential run's, whatever [jobs] was. *)
  let reusable = take_reusable cfg in
  let frontier : (int64 * Controller.spec) Queue.t = Queue.create () in
  Queue.push (seed, root) frontier;
  let out = ref [] in
  let count = ref 0 in
  let stop = ref false in
  while (not !stop) && !count < budget && not (Queue.is_empty frontier) do
    let (_, spec) as tsk = Queue.pop frontier in
    let r = match lookup spec with Some r -> r | None -> exec ~reusable cfg tsk in
    out := r :: !out;
    incr count;
    if stop_at_first && r.violated <> None then stop := true
    else if Schedule.length spec.Controller.forced < depth then
      List.iter
        (fun child -> Queue.push (seed, child) frontier)
        (Strategy.bounded_children ~quantum ~parent:spec ~info:r.info)
  done;
  give_reusable reusable;
  Array.of_list (List.rev_map (fun r -> Some r) !out)

let explore ?(strategy = Strategy.default_random) ?(budget = 500)
    ?(quantum_us = 200) ?(stop_at_first = true) ?(jobs = 1) cfg =
  if jobs < 1 then invalid_arg "Mc.Pool.explore: jobs must be >= 1";
  let quantum = Span.of_us quantum_us in
  let t0 =
    (Explore.wall
    [@ctslint.allow
      "wall-clock" "report timing only; never influences the merge"]) ()
  in
  let c0 =
    (Explore.cpu
    [@ctslint.allow
      "wall-clock" "report timing only; never influences the merge"]) ()
  in
  (* GC parameters sized for the harness's allocation profile; set once
     from the calling domain (worker domains inherit the minor-heap size)
     and restored when the parallel section ends. *)
  let executed =
    Dsim.Engine.with_gc_tuning (fun () ->
        match strategy with
        | Strategy.Random { delay_prob; reorder_prob } ->
            explore_random ~delay_prob ~reorder_prob ~quantum ~jobs
              ~stop_at_first ~budget cfg
        | Strategy.Bounded { depth } ->
            explore_bounded ~depth ~quantum ~jobs ~stop_at_first ~budget cfg)
  in
  (* Deterministic merge: everything is computed from the prefix that ends
     at the first violating schedule (or the whole run when clean), so the
     report does not depend on how far past it other domains raced. *)
  let first_viol = ref None in
  Array.iteri
    (fun i r ->
      match (r, !first_viol) with
      | Some { violated = Some _; _ }, None -> first_viol := Some i
      | _ -> ())
    executed;
  let cutoff =
    match !first_viol with
    | Some v when stop_at_first -> v
    | _ -> Array.length executed - 1
  in
  let seen = Hashtbl.create 1024 in
  let steps_total = ref 0 in
  let raw_violations = ref [] in
  for i = 0 to cutoff do
    match executed.(i) with
    | None -> assert false (* prefix up to [cutoff] is always executed *)
    | Some r ->
        steps_total := !steps_total + r.info.Harness.steps;
        Hashtbl.replace seen r.info.Harness.fingerprint ();
        (match r.violated with
        | Some name -> raw_violations := (r, name) :: !raw_violations
        | None -> ())
  done;
  let raw_violations = List.rev !raw_violations in
  let raw_violations =
    if stop_at_first then
      match raw_violations with [] -> [] | v :: _ -> [ v ]
    else raw_violations
  in
  let violations =
    List.map
      (fun (r, name) ->
        Explore.build_violation ~quantum cfg ~seed:r.seed
          ~first_invariant:name ~deviations:r.info.Harness.deviations)
      raw_violations
  in
  {
    Explore.strategy = Format.asprintf "%a" Strategy.pp strategy;
    budget;
    jobs;
    schedules = cutoff + 1;
    distinct = Hashtbl.length seen;
    steps_total = !steps_total;
    elapsed_s =
      ((Explore.wall
       [@ctslint.allow
         "wall-clock" "report timing only; never influences the merge"]) ()
      -. t0);
    cpu_s =
      ((Explore.cpu
       [@ctslint.allow
         "wall-clock" "report timing only; never influences the merge"]) ()
      -. c0);
    violations;
  }
