module Span = Dsim.Time.Span

(* One completed schedule, as recorded by whichever worker domain ran it.
   [violated] is the first broken invariant's name; confirmation and
   shrinking happen later, sequentially, on the calling domain. *)
type run_result = {
  seed : int64;
  spec : Controller.spec;
  info : Harness.info;
  violated : string option;
}

let exec ~reusable cfg (seed, spec) =
  let rcfg = { cfg with Harness.seed = seed; record_packets = false } in
  let outcome, info = Harness.run_reused reusable ~spec rcfg in
  let violated =
    match Invariant.check_all outcome with
    | [] -> None
    | (name, _) :: _ -> Some name
  in
  { seed; spec; info; violated }

(* Worker harnesses are checked out of a shared free pool rather than
   built per worker: bounded BFS spawns a fresh set of domains per wave,
   and without the pool every wave would pay the world-snapshot cost
   again.  A checked-out reusable is owned by exactly one domain until it
   is returned. *)
let reusables : Harness.reusable list ref = ref []
let reusables_m = Mutex.create ()

let take_reusable cfg =
  Mutex.lock reusables_m;
  match !reusables with
  | r :: rest ->
      reusables := rest;
      Mutex.unlock reusables_m;
      r
  | [] ->
      Mutex.unlock reusables_m;
      Harness.reusable { cfg with Harness.record_packets = false }

let give_reusable r =
  Mutex.lock reusables_m;
  reusables := r :: !reusables;
  Mutex.unlock reusables_m

(* Record a violation at index [i] so the dispenser can stop handing out
   chunks past it.  The minimum only ever decreases, and chunks are
   dispensed in index order, so every index at or below the final minimum
   is guaranteed to have been executed. *)
let note_violation min_viol i =
  let rec upd () =
    let cur = Atomic.get min_viol in
    if i < cur && not (Atomic.compare_and_set min_viol cur i) then upd ()
  in
  upd ()

(* Run tasks [0, n) over [jobs] domains.  Each worker owns a private
   simulator per run (Harness builds everything from the seed), pulls
   chunks of indices from a mutex-guarded dispenser, and writes results
   into disjoint slots of a shared array.  With [stop_at_first], chunks
   starting past the lowest violating index found so far are skipped —
   the executed set then depends on timing, but always covers the prefix
   up to the first violation, which is all the merge reads. *)
let run_tasks ~jobs ~stop_at_first cfg n task =
  let results = Array.make n None in
  if n > 0 then begin
    let next = ref 0 in
    let min_viol = Atomic.make max_int in
    let m = Mutex.create () in
    let chunk = max 1 (min 64 (n / (jobs * 4))) in
    let worker () =
      let reusable = take_reusable cfg in
      let continue = ref true in
      while !continue do
        Mutex.lock m;
        let lo = !next in
        if lo >= n || (stop_at_first && lo > Atomic.get min_viol) then begin
          Mutex.unlock m;
          continue := false
        end
        else begin
          let hi = min n (lo + chunk) in
          next := hi;
          Mutex.unlock m;
          for i = lo to hi - 1 do
            let r = exec ~reusable cfg (task i) in
            if r.violated <> None then note_violation min_viol i;
            results.(i) <- Some r
          done
        end
      done;
      give_reusable reusable
    in
    let extra = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join extra
  end;
  results

let explore_random ~delay_prob ~reorder_prob ~quantum ~jobs ~stop_at_first
    ~budget cfg =
  let base_seed = cfg.Harness.seed in
  run_tasks ~jobs ~stop_at_first cfg budget (fun i ->
      Strategy.random_run ~base_seed ~quantum ~delay_prob ~reorder_prob i)

(* Bounded-reorder BFS, one generation per wave.  A spec's children
   depend only on its own run, so expanding wave [k] in full before
   launching wave [k+1] reproduces the sequential generator's FIFO order
   exactly, whatever the domain count. *)
let explore_bounded ~depth ~quantum ~jobs ~stop_at_first ~budget cfg =
  let seed = cfg.Harness.seed in
  let waves = ref [] in
  let count = ref 0 in
  let stop = ref false in
  let frontier = ref [ { Controller.forced = []; random = None; quantum } ] in
  while (not !stop) && !frontier <> [] && !count < budget do
    let wave =
      Array.of_list (List.filteri (fun i _ -> i < budget - !count) !frontier)
    in
    let results =
      run_tasks ~jobs ~stop_at_first cfg (Array.length wave) (fun i ->
          (seed, wave.(i)))
    in
    waves := results :: !waves;
    count := !count + Array.length wave;
    if Array.exists (function Some { violated = Some _; _ } -> true | _ -> false)
         results
       && stop_at_first
    then stop := true
    else
      frontier :=
        Array.to_list results
        |> List.concat_map (function
             | Some r
               when Schedule.length r.spec.Controller.forced < depth ->
                 Strategy.bounded_children ~quantum ~parent:r.spec
                   ~info:r.info
             | _ -> [])
  done;
  Array.concat (List.rev !waves)

let explore ?(strategy = Strategy.default_random) ?(budget = 500)
    ?(quantum_us = 200) ?(stop_at_first = true) ?(jobs = 1) cfg =
  if jobs < 1 then invalid_arg "Mc.Pool.explore: jobs must be >= 1";
  let quantum = Span.of_us quantum_us in
  let t0 =
    (Explore.wall
    [@ctslint.allow
      "wall-clock" "report timing only; never influences the merge"]) ()
  in
  let c0 =
    (Explore.cpu
    [@ctslint.allow
      "wall-clock" "report timing only; never influences the merge"]) ()
  in
  (* GC parameters sized for the harness's allocation profile; set once
     from the calling domain (worker domains inherit the minor-heap size)
     and restored when the parallel section ends. *)
  let executed =
    Dsim.Engine.with_gc_tuning (fun () ->
        match strategy with
        | Strategy.Random { delay_prob; reorder_prob } ->
            explore_random ~delay_prob ~reorder_prob ~quantum ~jobs
              ~stop_at_first ~budget cfg
        | Strategy.Bounded { depth } ->
            explore_bounded ~depth ~quantum ~jobs ~stop_at_first ~budget cfg)
  in
  (* Deterministic merge: everything is computed from the prefix that ends
     at the first violating schedule (or the whole run when clean), so the
     report does not depend on how far past it other domains raced. *)
  let first_viol = ref None in
  Array.iteri
    (fun i r ->
      match (r, !first_viol) with
      | Some { violated = Some _; _ }, None -> first_viol := Some i
      | _ -> ())
    executed;
  let cutoff =
    match !first_viol with
    | Some v when stop_at_first -> v
    | _ -> Array.length executed - 1
  in
  let seen = Hashtbl.create 1024 in
  let steps_total = ref 0 in
  let raw_violations = ref [] in
  for i = 0 to cutoff do
    match executed.(i) with
    | None -> assert false (* prefix up to [cutoff] is always executed *)
    | Some r ->
        steps_total := !steps_total + r.info.Harness.steps;
        Hashtbl.replace seen r.info.Harness.fingerprint ();
        (match r.violated with
        | Some name -> raw_violations := (r, name) :: !raw_violations
        | None -> ())
  done;
  let raw_violations = List.rev !raw_violations in
  let raw_violations =
    if stop_at_first then
      match raw_violations with [] -> [] | v :: _ -> [ v ]
    else raw_violations
  in
  let violations =
    List.map
      (fun (r, name) ->
        Explore.build_violation ~quantum cfg ~seed:r.seed
          ~first_invariant:name ~deviations:r.info.Harness.deviations)
      raw_violations
  in
  {
    Explore.strategy = Format.asprintf "%a" Strategy.pp strategy;
    budget;
    jobs;
    schedules = cutoff + 1;
    distinct = Hashtbl.length seen;
    steps_total = !steps_total;
    elapsed_s =
      ((Explore.wall
       [@ctslint.allow
         "wall-clock" "report timing only; never influences the merge"]) ()
      -. t0);
    cpu_s =
      ((Explore.cpu
       [@ctslint.allow
         "wall-clock" "report timing only; never influences the merge"]) ()
      -. c0);
    violations;
  }
