type deviation =
  | Reorder of { step : int; take : int }
  | Delay of { packet : int }

type t = deviation list

let empty = []
let length = List.length

let pp_deviation ppf = function
  | Reorder { step; take } -> Format.fprintf ppf "take#%d@@step%d" take step
  | Delay { packet } -> Format.fprintf ppf "delay pkt#%d" packet

let pp ppf = function
  | [] -> Format.pp_print_string ppf "(default schedule)"
  | ds ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        pp_deviation ppf ds
