(** Diff-based snapshot/restore of a live heap graph.

    {!capture} pairs every mutable-capable block reachable from a root
    with a shadow copy; {!restore} sweeps the pairs and writes back only
    the fields that drifted — a dirty-set rewind that allocates nothing
    and preserves the physical identity of every block, unlike a
    [Marshal] round-trip which rebuilds the whole world.

    Known limits (all degrade to a verified fallback, never to wrong
    results): custom blocks (Bigarray RNG state), lazies, objects and
    continuations are leaf-shared, not restored — the harness rewinds
    RNGs through its own reseed protocol and verifies every snapshot
    with a restore-vs-pristine probe run before trusting it
    ({!Harness.reuse_mode}). *)

type t

val capture : 'a -> t
(** [capture root] walks the graph reachable from [root] (running a
    [Gc.full_major] first so block addresses are stable) and records a
    shadow copy of every restorable block.  O(live graph), runs once per
    reusable world. *)

val restore : t -> int
(** Rewind every captured block to its captured contents, returning the
    number of dirty fields written.  Blocks allocated after the capture
    become unreachable (ordinary garbage) as the captured fields pointing
    at them are rewound. *)

val blocks : t -> int
(** Number of blocks recorded by the capture (diagnostics). *)
