(** Counterexample shrinker.

    Delta-debugs a failing deviation trace to a locally minimal one:
    first the shortest failing prefix (deviations are chronological, so a
    prefix replays the original run exactly up to its cut point), then
    greedy removal of the remaining deviations to a fixpoint, re-running
    the simulation for every candidate. *)

val minimize :
  fails:(Schedule.t -> bool) -> Schedule.t -> Schedule.t * int
(** [minimize ~fails sched] assumes [fails sched = true] and returns a
    minimal failing sub-trace together with the number of re-runs spent.
    If the default schedule itself fails, returns [([], _)]. *)
