module Span = Dsim.Time.Span

type random_cfg = { seed : int64; delay_prob : float; reorder_prob : float }

type spec = {
  forced : Schedule.t;
  random : random_cfg option;
  quantum : Span.t;
}

let default_spec =
  { forced = []; random = None; quantum = Span.of_us 200 }

let replay_spec ?(quantum = default_spec.quantum) sched =
  { forced = sched; random = None; quantum }

type t = {
  eng : Dsim.Engine.t;
  forced_reorder : (int, int) Hashtbl.t; (* step -> take *)
  forced_delay : (int, unit) Hashtbl.t; (* packet -> () *)
  no_forced : bool; (* both tables empty: skip the per-step lookups *)
  random : (Dsim.Rng.t * random_cfg) option;
  quantum : Span.t;
  mutable steps : int;
  mutable packets : int;
  mutable tie_steps : (int * int) list; (* (step, ready), reversed *)
  mutable applied : Schedule.t; (* reversed (chronological when restored) *)
}

let create eng spec =
  (* Sized to the spec: random exploration creates a controller per run
     with an empty [forced] list, and two 16-bucket tables per run is
     pure garbage. *)
  let size = 1 + List.length spec.forced in
  let forced_reorder = Hashtbl.create size in
  let forced_delay = Hashtbl.create size in
  List.iter
    (function
      | Schedule.Reorder { step; take } ->
          Hashtbl.replace forced_reorder step take
      | Schedule.Delay { packet } -> Hashtbl.replace forced_delay packet ())
    spec.forced;
  {
    eng;
    forced_reorder;
    forced_delay;
    no_forced = spec.forced = [];
    random = Option.map (fun rc -> (Dsim.Rng.create rc.seed, rc)) spec.random;
    quantum = spec.quantum;
    steps = 0;
    packets = 0;
    tie_steps = [];
    applied = [];
  }

(* Preallocated: the overwhelmingly common answer, returned once per
   engine event — allocating it per step would dominate the controller's
   footprint. *)
let take_0 = Dsim.Engine.Take 0

(* Engine choice point: which of the [ready] same-timestamp events runs
   next.  Called on every step so that step indices are stable across
   replays; only ties (ready > 1) are real choices. *)
let on_step t ~ready =
  let step = t.steps in
  t.steps <- t.steps + 1;
  if ready > 1 then t.tie_steps <- (step, ready) :: t.tie_steps;
  let random_take () =
    match t.random with
    | Some (rng, rc) ->
        (* Always draw, so the stream does not depend on [ready]. *)
        let r = Dsim.Rng.float rng 1.0 in
        if ready > 1 && r < rc.reorder_prob then
          Dsim.Rng.int_range rng 1 (ready - 1)
        else 0
    | None -> 0
  in
  let take =
    (* Random exploration leaves the forced tables empty; hashing every
       step index through them shows up in profiles, so skip the lookup
       outright on that path. *)
    if t.no_forced then random_take ()
    else
      match Hashtbl.find_opt t.forced_reorder step with
      | Some i -> min i (ready - 1)
      | None -> random_take ()
  in
  if take > 0 then begin
    t.applied <- Schedule.Reorder { step; take } :: t.applied;
    Dsim.Engine.Take take
  end
  else take_0

(* Network choice point: hold this packet back by one quantum, or not. *)
let on_packet t ~src:_ ~dst:_ =
  let packet = t.packets in
  t.packets <- t.packets + 1;
  let delay =
    ((not t.no_forced) && Hashtbl.mem t.forced_delay packet)
    ||
    match t.random with
    | Some (rng, rc) -> Dsim.Rng.float rng 1.0 < rc.delay_prob
    | None -> false
  in
  if delay then begin
    t.applied <- Schedule.Delay { packet } :: t.applied;
    t.quantum
  end
  else Span.zero

let install t net =
  Dsim.Engine.set_scheduler t.eng (Some (fun ~ready -> on_step t ~ready));
  Netsim.Network.set_delay_hook net
    (Some (fun ~src ~dst -> on_packet t ~src ~dst))

let uninstall t net =
  Dsim.Engine.set_scheduler t.eng None;
  Netsim.Network.set_delay_hook net None

let applied t = List.rev t.applied
let steps t = t.steps
let packets t = t.packets
let tie_steps t = List.rev t.tie_steps
