let src = Logs.Src.create "cts" ~doc:"Consistent time service"

module Log = (val Logs.src_log src : Logs.LOG)
module Time = Dsim.Time
module Span = Dsim.Time.Span

type mode = Active | Primary_backup

type config = {
  mode : mode;
  drift : Drift.t;
  offset_tracking : bool;
  recovering : bool;
}

let default_config =
  {
    mode = Active;
    drift = Drift.No_compensation;
    offset_tracking = true;
    recovering = false;
  }

type stats = {
  rounds_completed : int;
  ccs_sent : int;
  ccs_received : int;
  suppressed : int;
  rollbacks : int;
  max_rollback : Span.t;
  last_value : Time.t option;
}

type t = {
  eng : Dsim.Engine.t;
  endpoint : Gcs.Endpoint.t;
  group : Gcs.Group_id.t;
  clock : Clock.Hwclock.t;
  cfg : config;
  mutable offset : Span.t; (* my_clock_offset *)
  handlers : (int, Ccs_handler.t) Hashtbl.t; (* keyed by thread id *)
  mutable handler_memo : (int * Ccs_handler.t) option;
      (* one-entry cache over [handlers]: replicas read the clock from one
         thread, and the table lookup is on the per-round and per-message
         paths.  Handlers are never removed, so the memo cannot go stale. *)
  common_buffer : (int, Ccs_msg.payload Queue.t) Hashtbl.t;
      (* my_common_input_buffer: CCS messages for threads not yet created *)
  mutable view : Gcs.View.t option;
  mutable init : bool;
  init_done : unit Dsim.Sync.Ivar.t;
  mutable last_recovery_round : int;
  mutable floor : Time.t option; (* causal lower bound from other groups *)
  (* statistics *)
  mutable s_rounds : int;
  mutable s_sent : int;
  mutable s_received : int;
  mutable s_suppressed : int;
  mutable s_rollbacks : int;
  mutable s_max_rollback : Span.t;
  mutable s_last_value : Time.t option;
  mutable last_per_thread : int array;
      (* last raw group-clock reading per thread id, in ns;
         [no_reading] = none yet.  Thread ids are small dense ints. *)
}

let no_reading = min_int

let create eng ~endpoint ~group ~clock ?(config = default_config) () =
  let t =
    {
      eng;
      endpoint;
      group;
      clock;
      cfg = config;
      offset = Span.zero;
      handlers = Hashtbl.create 8;
      handler_memo = None;
      common_buffer = Hashtbl.create 8;
      view = None;
      init = not config.recovering;
      init_done = Dsim.Sync.Ivar.create ();
      last_recovery_round = 0;
      floor = None;
      s_rounds = 0;
      s_sent = 0;
      s_received = 0;
      s_suppressed = 0;
      s_rollbacks = 0;
      s_max_rollback = Span.zero;
      s_last_value = None;
      last_per_thread = [||];
    }
  in
  if not config.recovering then Dsim.Sync.Ivar.fill eng t.init_done ();
  t

let group t = t.group
let me t = Gcs.Endpoint.me t.endpoint
let offset t = t.offset
let initialized t = t.init
let await_initialized t = Dsim.Sync.Ivar.read t.init_done

let observe_timestamp t ts =
  match t.floor with
  | Some f when Time.(f >= ts) -> ()
  | Some _ | None -> t.floor <- Some ts

let causal_floor t = t.floor
let last_reading t = t.s_last_value

let stats t =
  {
    rounds_completed = t.s_rounds;
    ccs_sent = t.s_sent;
    ccs_received = t.s_received;
    suppressed = t.s_suppressed;
    rollbacks = t.s_rollbacks;
    max_rollback = t.s_max_rollback;
    last_value = t.s_last_value;
  }

let reset_stats t =
  t.s_rounds <- 0;
  t.s_sent <- 0;
  t.s_received <- 0;
  t.s_suppressed <- 0;
  t.s_rollbacks <- 0;
  t.s_max_rollback <- Span.zero

(* ------------------------------------------------------------------ *)
(* Sending                                                             *)

let i_am_primary t =
  match t.view with
  | None -> true (* no view yet: degenerate single-replica bootstrap *)
  | Some v -> (
      match v.Gcs.View.members with
      | (n, _) :: _ -> Netsim.Node_id.equal n (me t)
      | [] -> true)

let may_send t =
  match t.cfg.mode with Active -> true | Primary_backup -> i_am_primary t

let find_handler t key =
  match t.handler_memo with
  | Some (k, h) when k = key -> Some h
  | _ -> (
      match Hashtbl.find_opt t.handlers key with
      | Some h as r ->
          t.handler_memo <- Some (key, h);
          r
      | None -> None)

(* Obs probe: a CCS send suppressed by duplicate detection (token-level
   or handler-level).  [round < 0] when the round is not known at the
   suppression site. *)
let probe_suppress t round =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then begin
    Obs.Sink.count s Obs.Metrics.Ccs_suppressed;
    Obs.Sink.instant s
      ~ts_ns:(Time.to_ns (Dsim.Engine.now t.eng))
      ~pid:(Netsim.Node_id.to_int (me t))
      ~sub:Obs.Subsystem.Ccs ~name:"ccs-suppress"
      ~args:(if round >= 0 then [ ("round", round) ] else [])
  end;
  if s.Obs.Sink.rec_on then
    Obs.Sink.rec_event s ~kind:Obs.Recorder.k_ccs_suppress
      ~ts_us:(Time.to_ns (Dsim.Engine.now t.eng) / 1000)
      ~node:(Netsim.Node_id.to_int (me t))
      ~a:round ~b:0

let send_ccs t payload =
  if may_send t then begin
    t.s_sent <- t.s_sent + 1;
    (* Token-level duplicate suppression (§4.3): if the winner's CCS message
       for this round is delivered before the token reaches us, the queued
       message is discarded instead of multicast. *)
    let unless () =
      let stale =
        match find_handler t (Thread_id.to_int payload.Ccs_msg.thread) with
        | Some h -> Ccs_handler.round_settled h payload.Ccs_msg.round
        | None -> false
      in
      if stale then begin
        t.s_sent <- t.s_sent - 1;
        t.s_suppressed <- t.s_suppressed + 1;
        probe_suppress t payload.Ccs_msg.round
      end;
      stale
    in
    Gcs.Endpoint.multicast ~unless t.endpoint
      (Ccs_msg.make ~group:t.group payload)
  end
  else begin
    t.s_suppressed <- t.s_suppressed + 1;
    probe_suppress t payload.Ccs_msg.round
  end

let handler_for t thread =
  let key = Thread_id.to_int thread in
  match find_handler t key with
  | Some h -> h
  | None ->
      let h =
        Ccs_handler.create t.eng ~thread ~send:(send_ccs t)
          ~on_suppress:(fun () ->
            t.s_suppressed <- t.s_suppressed + 1;
            probe_suppress t (-1))
          ()
      in
      Hashtbl.replace t.handlers key h;
      (* Move any CCS messages that arrived before the thread existed from
         the common input buffer to the thread's own buffer (Fig. 2 line
         10). *)
      (match Hashtbl.find_opt t.common_buffer key with
      | Some q ->
          Queue.iter (Ccs_handler.recv h) q;
          Hashtbl.remove t.common_buffer key
      | None -> ());
      h

(* ------------------------------------------------------------------ *)
(* Reception (Figure 3)                                                *)

let adopt_recovery_sync t (p : Ccs_msg.payload) =
  (* The recovering replica does not compete in the special round; on
     receiving its CCS message it performs a clock-related operation and
     adjusts its offset according to the group clock (§3.2). *)
  if p.round > t.last_recovery_round then begin
    t.last_recovery_round <- p.round;
    if not t.init then begin
      let pc = Clock.Hwclock.read t.clock in
      t.offset <- Time.diff p.proposal pc;
      t.init <- true;
      (* The adopted round is consumed: future special rounds continue from
         here. *)
      let h = handler_for t Thread_id.recovery in
      Ccs_handler.recv h p;
      Ccs_handler.advance_to h ~round:p.round;
      Dsim.Sync.Ivar.fill t.eng t.init_done ();
      Log.debug (fun m ->
          m "%a: clock initialized from special round %d (offset %a)"
            Netsim.Node_id.pp (me t) p.round Span.pp t.offset)
    end
  end

(* Wall-time attribution of CCS message reception.  [clock_read] is NOT
   bracketed: it suspends on a fiber condition mid-call, and an attribution
   region must stay within one engine callback. *)
let at_on_message = Obs.Attrib.site ~sub:Obs.Subsystem.Ccs ~name:"on-message"

let on_message t (msg : Gcs.Msg.t) =
  let sink = Dsim.Engine.obs t.eng in
  Obs.Sink.attr_enter sink at_on_message;
  (match Ccs_msg.of_msg msg with
  | None -> ()
  | Some p -> (
      t.s_received <- t.s_received + 1;
      if Thread_id.equal p.thread Thread_id.recovery && not t.init then
        adopt_recovery_sync t p
      else
        let key = Thread_id.to_int p.thread in
        match find_handler t key with
        | Some h ->
            (* A message for an already-settled round lost the race (or is
               a duplicate); [recv] discards it — record that. *)
            (let s = Dsim.Engine.obs t.eng in
             if
               (s.Obs.Sink.active || s.Obs.Sink.rec_on)
               && Ccs_handler.round_settled h p.round
             then begin
               if s.Obs.Sink.active then begin
                 Obs.Sink.count s Obs.Metrics.Ccs_discards;
                 Obs.Sink.instant s
                   ~ts_ns:(Time.to_ns (Dsim.Engine.now t.eng))
                   ~pid:(Netsim.Node_id.to_int (me t))
                   ~sub:Obs.Subsystem.Ccs ~name:"ccs-discard"
                   ~args:[ ("round", p.round) ]
               end;
               if s.Obs.Sink.rec_on then
                 Obs.Sink.rec_event s ~kind:Obs.Recorder.k_ccs_discard
                   ~ts_us:(Time.to_ns (Dsim.Engine.now t.eng) / 1000)
                   ~node:(Netsim.Node_id.to_int (me t))
                   ~a:p.round ~b:0
             end);
            Ccs_handler.recv h p
        | None ->
            let q =
              match Hashtbl.find_opt t.common_buffer key with
              | Some q -> q
              | None ->
                  let q = Queue.create () in
                  Hashtbl.replace t.common_buffer key q;
                  q
            in
            Queue.push p q));
  Obs.Sink.attr_leave sink

let on_view t view =
  let was_primary = i_am_primary t in
  t.view <- Some view;
  (* A backup promoted to primary must send the CCS message for any round
     its threads are blocked in, unless the old primary's message already
     arrived (§3, §3.3). *)
  if t.cfg.mode = Primary_backup && (not was_primary) && i_am_primary t then
    (* Re-sends go out in thread-id order so the CCS message sequence a
       promoted primary produces is a function of state, not of the
       handler table's bucket layout. *)
    Dsim.Det.iter_sorted ~compare:Int.compare
      (fun _ h ->
        match Ccs_handler.pending h with
        | Some payload when Ccs_handler.buffered h = 0 ->
            Log.debug (fun m ->
                m "%a: promoted to primary, re-sending CCS for %a round %d"
                  Netsim.Node_id.pp (me t) Thread_id.pp payload.Ccs_msg.thread
                  payload.Ccs_msg.round);
            send_ccs t payload
        | Some _ | None -> ())
      t.handlers

(* ------------------------------------------------------------------ *)
(* Clock operations (Figure 2)                                         *)

let record_reading t ~thread value =
  t.s_rounds <- t.s_rounds + 1;
  t.s_last_value <- Some value;
  let key = Thread_id.to_int thread in
  if key >= Array.length t.last_per_thread then begin
    let n = Array.length t.last_per_thread in
    let a = Array.make (max (key + 1) (2 * n + 4)) no_reading in
    Array.blit t.last_per_thread 0 a 0 n;
    t.last_per_thread <- a
  end;
  let prev = t.last_per_thread.(key) in
  let value_ns = Time.to_ns value in
  (if prev <> no_reading && value_ns < prev then begin
     let magnitude = Span.of_ns (prev - value_ns) in
     t.s_rollbacks <- t.s_rollbacks + 1;
     if Span.(magnitude > t.s_max_rollback) then t.s_max_rollback <- magnitude
   end);
  t.last_per_thread.(key) <- value_ns;
  (* Every settled clock read feeds the flight recorder / health monitor
     one group-clock sample — the raw pre-truncation value, so §3
     monotonicity is judged on what the service actually agreed. *)
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.rec_on then
    Obs.Sink.rec_event s ~kind:Obs.Recorder.k_gc_sample
      ~ts_us:(Time.to_ns (Dsim.Engine.now t.eng) / 1000)
      ~node:(Netsim.Node_id.to_int (me t))
      ~a:(value_ns / 1000) ~b:key

let clock_read t ~thread ~call =
  if not t.init then
    invalid_arg "Cts.Service.clock_read: replica not yet initialized";
  let pc = Clock.Hwclock.read t.clock in
  let local = if t.cfg.offset_tracking then Time.add pc t.offset else pc in
  let local = Drift.adjust_proposal t.cfg.drift local in
  (* §5 extension: proposals never fall below the causal floor learned from
     other groups' timestamps.  The prior-work baseline (offset_tracking =
     false) has no such machinery. *)
  let local =
    match t.floor with
    | Some f when t.cfg.offset_tracking -> Time.max local f
    | Some _ | None -> local
  in
  let h = handler_for t thread in
  (* CCS round span: Begin when the round opens (before blocking on the
     group), End when the winning synchronizer's message settles it.
     Rounds on one (replica, thread) are strictly sequential, so the
     spans nest trivially in the per-replica ccs thread row. *)
  (let s = Dsim.Engine.obs t.eng in
   if s.Obs.Sink.active then begin
     Obs.Sink.count s Obs.Metrics.Ccs_rounds;
     Obs.Sink.span_begin s
       ~ts_ns:(Time.to_ns (Dsim.Engine.now t.eng))
       ~pid:(Netsim.Node_id.to_int (me t))
       ~sub:Obs.Subsystem.Ccs ~name:"ccs-round"
       ~args:
         [
           ("round", Ccs_handler.round h + 1);
           ("thread", Thread_id.to_int thread);
         ]
   end;
   if s.Obs.Sink.rec_on then
     Obs.Sink.rec_event s ~kind:Obs.Recorder.k_ccs_open
       ~ts_us:(Time.to_ns (Dsim.Engine.now t.eng) / 1000)
       ~node:(Netsim.Node_id.to_int (me t))
       ~a:(Ccs_handler.round h + 1)
       ~b:(Thread_id.to_int thread));
  let old_offset = t.offset in
  let winner = Ccs_handler.get_grp_clock_time h ~proposal:local ~call in
  let gc = winner.Ccs_msg.proposal in
  if t.cfg.offset_tracking then
    t.offset <- Drift.adjust_offset t.cfg.drift (Time.diff gc pc);
  (let s = Dsim.Engine.obs t.eng in
   if s.Obs.Sink.active then begin
     Obs.Sink.count s Obs.Metrics.Ccs_wins;
     let adj_ns = Span.to_ns t.offset - Span.to_ns old_offset in
     if t.cfg.offset_tracking then begin
       Obs.Sink.count s Obs.Metrics.Ccs_offset_updates;
       Obs.Sink.observe s Obs.Metrics.Ccs_adjustment_us
         (float_of_int adj_ns /. 1000.)
     end;
     Obs.Sink.span_end s
       ~ts_ns:(Time.to_ns (Dsim.Engine.now t.eng))
       ~pid:(Netsim.Node_id.to_int (me t))
       ~sub:Obs.Subsystem.Ccs ~name:"ccs-round"
       ~args:
         [
           ("round", winner.Ccs_msg.round);
           ("adjustment_us", adj_ns / 1000);
           ("offset_us", Span.to_us t.offset);
         ]
   end;
   if s.Obs.Sink.rec_on then
     Obs.Sink.rec_event s ~kind:Obs.Recorder.k_ccs_settle
       ~ts_us:(Time.to_ns (Dsim.Engine.now t.eng) / 1000)
       ~node:(Netsim.Node_id.to_int (me t))
       ~a:winner.Ccs_msg.round
       ~b:((Span.to_ns t.offset - Span.to_ns old_offset) / 1000));
  (* Monotonicity accounting uses the raw group clock: coarse call types
     (time() truncates to seconds) would otherwise look like roll-backs. *)
  record_reading t ~thread gc;
  Time.truncate_to (Call_type.granularity call) gc

let gettimeofday t ~thread = clock_read t ~thread ~call:Call_type.Gettimeofday
let time t ~thread = clock_read t ~thread ~call:Call_type.Time
let ftime t ~thread = clock_read t ~thread ~call:Call_type.Ftime

let special_round t =
  clock_read t ~thread:Thread_id.recovery ~call:Call_type.Gettimeofday

(* ------------------------------------------------------------------ *)
(* Checkpoint support                                                  *)

let thread_rounds t =
  Dsim.Det.sorted_bindings ~compare:Int.compare t.handlers
  |> List.map (fun (_, h) -> (Ccs_handler.thread h, Ccs_handler.round h))

let advance_thread t ~thread ~round =
  Ccs_handler.advance_to (handler_for t thread) ~round
