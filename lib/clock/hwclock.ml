type config = {
  offset : Dsim.Time.Span.t;
  drift_ppm : float;
  granularity : Dsim.Time.Span.t;
  jitter : Dsim.Time.Span.t;
}

type t = {
  eng : Dsim.Engine.t;
  cfg : config;
  rng : Dsim.Rng.t;
  born : Dsim.Time.t; (* drift reference point *)
  mutable extra : Dsim.Time.Span.t; (* accumulated step_offset shifts *)
  mutable failed : bool;
  mutable last_read : Dsim.Time.t; (* enforces monotonicity under jitter *)
}

exception Failed

let default_config =
  {
    offset = Dsim.Time.Span.zero;
    drift_ppm = 0.;
    granularity = Dsim.Time.Span.of_us 1;
    jitter = Dsim.Time.Span.zero;
  }

let create eng cfg =
  if Dsim.Time.Span.(cfg.granularity < of_ns 1) then
    invalid_arg "Hwclock.create: granularity < 1 ns";
  {
    eng;
    cfg;
    rng = Dsim.Rng.split (Dsim.Engine.rng eng);
    born = Dsim.Engine.now eng;
    extra = Dsim.Time.Span.zero;
    failed = false;
    last_read = Dsim.Time.of_ns min_int;
  }

let read t =
  if t.failed then raise Failed;
  let now = Dsim.Engine.now t.eng in
  let elapsed = Dsim.Time.diff now t.born in
  let drift = Dsim.Time.Span.scale (t.cfg.drift_ppm /. 1e6) elapsed in
  let jitter =
    if Dsim.Time.Span.(t.cfg.jitter <= zero) then Dsim.Time.Span.zero
    else
      Dsim.Time.Span.of_ns
        (Dsim.Rng.int_range t.rng 0 (Dsim.Time.Span.to_ns t.cfg.jitter))
  in
  let skew =
    Dsim.Time.Span.(add (add t.cfg.offset drift) (add t.extra jitter))
  in
  let raw = Dsim.Time.add now skew in
  let v = Dsim.Time.truncate_to t.cfg.granularity raw in
  (* A clock whose reads could go backwards between two calls at the same
     replica would break the paper's fail-stop clock assumption; clamp. *)
  let v = Dsim.Time.max v t.last_read in
  t.last_read <- v;
  v

let config t = t.cfg
let rng t = t.rng
let fail t = t.failed <- true
let failed t = t.failed

let step_offset t d =
  t.extra <- Dsim.Time.Span.add t.extra d;
  (* A backwards step is visible on the next read: drop the monotonicity
     floor so the hazard actually manifests (that is the point of the
     model). *)
  if Dsim.Time.Span.is_negative d then t.last_read <- Dsim.Time.of_ns min_int
