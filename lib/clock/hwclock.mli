(** Physical hardware clock model.

    Models a PC crystal oscillator as the paper's testbed sees it: a fixed
    initial offset from real (simulated) time, a constant drift rate in
    parts-per-million, a read granularity (e.g. 1 µs for [gettimeofday()]),
    and optional read jitter.  Clocks are fail-stop (paper §2): after
    {!fail}, every read raises {!Failed}. *)

type t

exception Failed
(** Raised by {!read} after the clock has fail-stopped. *)

type config = {
  offset : Dsim.Time.Span.t;  (** initial offset from real time *)
  drift_ppm : float;  (** rate error, parts per million *)
  granularity : Dsim.Time.Span.t;  (** reads truncate to this; >= 1 ns *)
  jitter : Dsim.Time.Span.t;
      (** max extra latency-induced error added to a read, uniform in
          [\[0, jitter\]]; zero disables jitter *)
}

val default_config : config
(** Zero offset, zero drift, 1 µs granularity, no jitter. *)

val create : Dsim.Engine.t -> config -> t
(** The drift reference point is the engine's current instant. *)

val read : t -> Dsim.Time.t
(** The clock's current value: real time, skewed by offset and drift,
    perturbed by jitter and truncated to the granularity.  Monotone
    non-decreasing for non-negative drift and zero jitter. *)

val config : t -> config

val rng : t -> Dsim.Rng.t
(** The clock's private jitter stream (split from the engine's at
    {!create} time).  Exposed so a snapshot/restore facility can rewind
    it; ordinary clients never need it. *)

val fail : t -> unit
(** Fail-stop the clock. *)

val failed : t -> bool

val step_offset : t -> Dsim.Time.Span.t -> unit
(** Shift the clock by a one-off step (models an operator or NTP daemon
    stepping the clock underneath the application, a hazard the paper's
    group clock must tolerate). *)
