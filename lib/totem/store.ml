(* Circular-buffer store: the protocol only ever holds a bounded window of
   messages per ring (flow-control window + one GC rotation of lag), so
   slots live in a power-of-two array indexed by seq, not a hash table —
   [add]/[find]/[has] are a mask and a load, which matters at 1000
   replicas where these run hundreds of thousands of times per simulated
   second.  A slot holds the message for seq [s] iff [floor < s <= high]
   and seq [s] was received; growth rehashes in place (rare: only when a
   ring outruns GC by more than the current capacity). *)

type 'a t = {
  mutable slots : 'a Wire.regular option array; (* index: seq land (cap-1) *)
  mutable aru : int;
  mutable delivered : int;
  mutable high : int;
  mutable floor : int; (* GCed up to here *)
}

let initial_cap = 64 (* power of two *)

let create () =
  { slots = Array.make initial_cap None;
    aru = 0; delivered = 0; high = 0; floor = 0 }

let slot t seq = seq land (Array.length t.slots - 1)

let present t seq =
  seq > t.floor && seq <= t.high
  && match t.slots.(slot t seq) with
     | Some (m : 'a Wire.regular) -> m.seq = seq
     | None -> false

let has t seq = seq <= t.floor || present t seq

let grow t needed =
  let cap = ref (Array.length t.slots) in
  while !cap < needed do
    cap := !cap * 2
  done;
  let slots = Array.make !cap None in
  let mask = !cap - 1 in
  Array.iter
    (function
      | Some (m : 'a Wire.regular) as v when m.seq > t.floor ->
          slots.(m.seq land mask) <- v
      | _ -> ())
    t.slots;
  t.slots <- slots

let add t (msg : 'a Wire.regular) =
  if has t msg.seq then false
  else begin
    if msg.seq - t.floor > Array.length t.slots then grow t (msg.seq - t.floor);
    t.slots.(slot t msg.seq) <- Some msg;
    if msg.seq > t.high then t.high <- msg.seq;
    while present t (t.aru + 1) || t.aru + 1 <= t.floor do
      t.aru <- t.aru + 1
    done;
    true
  end

let find t seq = if present t seq then t.slots.(slot t seq) else None
let aru t = t.aru
let delivered t = t.delivered

let set_delivered t seq =
  if seq < t.delivered then invalid_arg "Store.set_delivered: going backwards";
  t.delivered <- seq

let next_to_deliver t = find t (t.delivered + 1)

let missing_up_to t hi =
  let rec collect s acc =
    if s > hi then List.rev acc
    else collect (s + 1) (if has t s then acc else s :: acc)
  in
  collect (t.aru + 1) []

let held_in t ~lo ~hi =
  let rec collect s acc =
    if s > hi then List.rev acc
    else collect (s + 1) (if present t s then s :: acc else acc)
  in
  collect (max lo 1) []

let high_seq t = t.high

let gc t ~upto =
  if upto > t.floor then begin
    for s = t.floor + 1 to min upto t.high do
      if present t s then t.slots.(slot t s) <- None
    done;
    t.floor <- upto;
    if t.aru < upto then t.aru <- upto;
    if t.high < upto then t.high <- upto
  end
