module Nid = Netsim.Node_id
module Set = Netsim.Node_id.Set
module IntSet = Stdlib.Set.Make (Int)

let src = Logs.Src.create "totem" ~doc:"Totem single-ring protocol"

module Log = (val Logs.src_log src : Logs.LOG)

type 'a event =
  | Deliver of {
      ring : Ring_id.t;
      seq : int;
      sender : Nid.t;
      payload : 'a;
    }
  | View of { ring : Ring_id.t; members : Nid.t list }
  | Blocked

type stats = {
  tokens_seen : int;
  msgs_sent : int;
  retransmits : int;
  views_installed : int;
  delivered : int;
}

type gather_state = {
  mutable proc_set : Set.t;
  mutable fail_set : Set.t;
  joins : (Nid.t, Wire.join) Hashtbl.t;
  mutable round : int; (* bumped on each Gather -> Wait_commit transition *)
}

type recovery_state = {
  commit : Wire.commit;
  my_rings : (Ring_id.t * (int * int)) list;
      (* the old rings this node must recover, with their ranges —
         computed once from the commit instead of re-derived (assoc +
         filter over [member_old]) on every offer/request/done *)
  ring_peers : (Ring_id.t * Nid.t list) list;
      (* members of each of [my_rings]'s old rings, same memoization *)
  offers : (Nid.t, (Ring_id.t * int list) list) Hashtbl.t;
  mutable done_from : Set.t;
  mutable my_done_sent : bool;
  mutable stashed_token : Wire.token option;
}

type state =
  | Idle
  | Operational
  | Gather of gather_state
  | Wait_commit of gather_state
  | Recover of recovery_state
  | Crashed

type 'a t = {
  eng : Dsim.Engine.t;
  net : 'a Wire.t Netsim.Network.t;
  me : Nid.t;
  cfg : Config.t;
  handler : 'a event -> unit;
  mutable state : state;
  mutable ring : Ring_id.t option;
      (* the ring this node last went operational on; flips only when a new
         ring's recovery completes, so joins always advertise the ring whose
         messages may still need recovering *)
  mutable members : Nid.t list;
  mutable succ : Nid.t;
      (* cached token successor on the current ring — [members] only
         changes when a ring is installed, so the per-visit linear scan
         is paid once per view instead of once per token *)
  mutable stores : 'a Store.t Ring_id.Map.t;
  mutable store_memo : (Ring_id.t * 'a Store.t) option;
      (* one-entry cache over [stores]: the hot path (token visits,
         regular receives) hits the same ring every time, and the map
         lookup is measurable there.  Invalidated when [stores] drops
         entries. *)
  pending : ('a * (unit -> bool) option) Queue.t;
      (* payload + optional cancellation predicate evaluated at broadcast
         time (the paper's token-level duplicate suppression) *)
  mutable max_gen : int;
  mutable epoch : int; (* bumped on state change; cancels stale timers *)
  mutable token_era : int; (* bumped per accepted token *)
  mutable token_deadline : Dsim.Time.t;
      (* the instant the token-loss watchdog declares a loss; every
         accepted token slides it forward by [token_loss_timeout] with a
         plain field write.  One self-re-arming watchdog timer per node
         chases the deadline instead of the previous
         one-timer-per-token-visit, so a visit queues no loss timer at
         all while losses are still detected at exactly
         last-visit + timeout. *)
  mutable watchdog_ep : int;
      (* epoch whose watchdog chain is live, [-1] when none — keeps
         re-installation from stacking a second chain *)
  mutable last_token_seq : int;
  mutable prev_visit_aru : int;
  mutable last_visit_count : int; (* fcc bookkeeping *)
  mutable stat_tokens : int;
  mutable stat_sent : int;
  mutable stat_retrans : int;
  mutable stat_views : int;
  mutable stat_delivered : int;
  mutable token_probe : (Wire.token -> unit) option;
  mutable out_buf : 'a Wire.t array;
      (* reusable per-visit send buffer: retransmits and fresh broadcasts
         accumulate here during [accept_token] and go out in one batched
         [broadcast_many], so a visit costs one queued event per peer
         rather than one per message *)
  mutable out_n : int;
}

let me t = t.me
let ring t = t.ring
let members t = t.members
let is_operational t = match t.state with Operational -> true | _ -> false
let pending t = Queue.length t.pending

let stats t =
  {
    tokens_seen = t.stat_tokens;
    msgs_sent = t.stat_sent;
    retransmits = t.stat_retrans;
    views_installed = t.stat_views;
    delivered = t.stat_delivered;
  }

let on_token t f = t.token_probe <- Some f

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let crashed t = match t.state with Crashed -> true | _ -> false

let after t span f =
  let ep = t.epoch in
  Dsim.Engine.schedule t.eng span (fun () ->
      if (not (crashed t)) && t.epoch = ep then f ())

let after_token t span f =
  let ep = t.epoch and era = t.token_era in
  Dsim.Engine.schedule t.eng span (fun () ->
      if (not (crashed t)) && t.epoch = ep && t.token_era = era then f ())

let bcast t msg = Netsim.Network.broadcast t.net ~src:t.me msg

let out_push t msg =
  let cap = Array.length t.out_buf in
  if t.out_n = cap then begin
    let a = Array.make (if cap = 0 then 8 else 2 * cap) msg in
    Array.blit t.out_buf 0 a 0 t.out_n;
    t.out_buf <- a
  end;
  t.out_buf.(t.out_n) <- msg;
  t.out_n <- t.out_n + 1

let out_flush t =
  if t.out_n > 0 then begin
    Netsim.Network.broadcast_many t.net ~src:t.me t.out_buf ~n:t.out_n;
    (* Scrub so buffered messages do not outlive the visit. *)
    for i = 0 to t.out_n - 1 do
      t.out_buf.(i) <- Obj.magic 0
    done;
    t.out_n <- 0
  end

let store_for t ring =
  match t.store_memo with
  | Some (r, s) when Ring_id.equal r ring -> s
  | _ ->
      let s =
        match Ring_id.Map.find_opt ring t.stores with
        | Some s -> s
        | None ->
            let s = Store.create () in
            t.stores <- Ring_id.Map.add ring s t.stores;
            s
      in
      t.store_memo <- Some (ring, s);
      s

let known_store t ring = Ring_id.Map.find_opt ring t.stores

let my_old_ring_info t : Wire.old_ring_info =
  match t.ring with
  | None -> { old_ring = None; high_seq = 0; old_aru = 0 }
  | Some r ->
      let s = store_for t r in
      { old_ring = Some r; high_seq = Store.high_seq s; old_aru = Store.aru s }

(* Deliver the contiguous received-but-undelivered prefix of the current
   ring, up to [upto] when given (safe delivery withholds messages not yet
   known stable everywhere). *)
let drain_deliveries ?upto t =
  match (t.state, t.ring) with
  | Operational, Some r ->
      let s = store_for t r in
      let lim = match upto with Some u -> u | None -> max_int in
      let continue = ref true in
      while !continue do
        match Store.next_to_deliver s with
        | Some (msg : 'a Wire.regular) when msg.seq <= lim ->
            Store.set_delivered s msg.seq;
            t.stat_delivered <- t.stat_delivered + 1;
            t.handler
              (Deliver
                 {
                   ring = msg.ring;
                   seq = msg.seq;
                   sender = msg.sender;
                   payload = msg.payload;
                 })
        | _ -> continue := false
      done
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Gather / consensus                                                  *)

let make_join t (g : gather_state) : Wire.join =
  {
    j_sender = t.me;
    proc_set = g.proc_set;
    fail_set = g.fail_set;
    j_old = my_old_ring_info t;
    max_gen = t.max_gen;
  }

let send_join t g =
  let j = make_join t g in
  Hashtbl.replace g.joins t.me j;
  bcast t (Wire.Join j)

let rec enter_gather t ~candidates ~prefail =
  t.epoch <- t.epoch + 1;
  let was_operational = is_operational t in
  let g =
    {
      proc_set = Set.add t.me (Set.union candidates (Set.of_list t.members));
      fail_set = Set.remove t.me prefail;
      joins = Hashtbl.create 8;
      round = 0;
    }
  in
  t.state <- Gather g;
  (let s = Dsim.Engine.obs t.eng in
   if s.Obs.Sink.active then
     Obs.Sink.instant s
       ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
       ~pid:(Nid.to_int t.me) ~sub:Obs.Subsystem.Totem ~name:"gather"
       ~args:[ ("candidates", Set.cardinal g.proc_set) ];
   if s.Obs.Sink.rec_on then
     Obs.Sink.rec_event s ~kind:Obs.Recorder.k_gather
       ~ts_us:(Dsim.Time.to_ns (Dsim.Engine.now t.eng) / 1000)
       ~node:(Nid.to_int t.me)
       ~a:(Set.cardinal g.proc_set)
       ~b:0);
  if was_operational then t.handler Blocked;
  Log.debug (fun m ->
      m "%a: enter gather (candidates=%d)" Nid.pp t.me
        (Set.cardinal g.proc_set));
  send_join t g;
  join_tick t g;
  arm_consensus_deadline t g;
  maybe_consensus t g

and join_tick t g =
  after t t.cfg.join_retransmit (fun () ->
      match t.state with
      | Gather g' | Wait_commit g' ->
          if
            (g' == g)
            [@ctslint.allow
              "phys-equality"
                "generation check: is this timer still about the same \
                 gather attempt, not a structurally identical later one"]
          then begin
            send_join t g;
            join_tick t g
          end
      | _ -> ())

and arm_consensus_deadline t g =
  after t t.cfg.consensus_timeout (fun () ->
      match t.state with
      | Gather g'
        when (g' == g)
             [@ctslint.allow
               "phys-equality"
                 "generation check: timer validity is attempt identity"] ->
          let live = Set.diff g.proc_set g.fail_set in
          let silent = Set.filter (fun p -> not (Hashtbl.mem g.joins p)) live in
          if not (Set.is_empty silent) then begin
            Log.debug (fun m ->
                m "%a: consensus timeout, failing %d silent candidates" Nid.pp
                  t.me (Set.cardinal silent));
            g.fail_set <- Set.union g.fail_set (Set.remove t.me silent);
            send_join t g;
            maybe_consensus t g
          end;
          arm_consensus_deadline t g
      | _ -> ())

and maybe_consensus t g =
  let live = Set.diff g.proc_set g.fail_set in
  let agree p =
    match Hashtbl.find_opt g.joins p with
    | Some (j : Wire.join) ->
        Set.equal j.proc_set g.proc_set && Set.equal j.fail_set g.fail_set
    | None -> false
  in
  if Set.mem t.me live && Set.for_all agree live then
    if Nid.equal (Set.min_elt live) t.me then begin
      (* This node is the representative: form and announce the new ring. *)
      let gens =
        Set.fold
          (fun p acc ->
            match Hashtbl.find_opt g.joins p with
            | Some j -> max acc j.max_gen
            | None -> acc)
          live t.max_gen
      in
      let new_ring = Ring_id.make ~rep:t.me ~gen:(gens + 1) in
      (* [Set.elements] is already ascending in [Nid.compare] order *)
      let members_sorted = Set.elements live in
      let member_old =
        List.map (fun p -> (p, (Hashtbl.find g.joins p).Wire.j_old)) members_sorted
      in
      let recover =
        let per_ring = Hashtbl.create 4 in
        List.iter
          (fun ((_, (info : Wire.old_ring_info)) : Nid.t * Wire.old_ring_info) ->
            match info.old_ring with
            | None -> ()
            | Some r ->
                let lo, hi =
                  Option.value ~default:(max_int, 0)
                    (Hashtbl.find_opt per_ring r)
                in
                Hashtbl.replace per_ring r
                  (min lo (info.old_aru + 1), max hi info.high_seq))
          member_old;
        Dsim.Det.sorted_bindings ~compare:Ring_id.compare per_ring
        |> List.filter (fun (_, (lo, hi)) -> hi >= lo)
      in
      let c : Wire.commit =
        { new_ring; members = members_sorted; member_old; recover }
      in
      Log.debug (fun m ->
          m "%a: committing %a (%d members)" Nid.pp t.me Ring_id.pp new_ring
            (List.length members_sorted));
      bcast t (Wire.Commit c);
      install_ring t c
    end
    else begin
      g.round <- g.round + 1;
      let round = g.round in
      t.state <- Wait_commit g;
      after t t.cfg.commit_timeout (fun () ->
          match t.state with
          | Wait_commit g'
            when ((g' == g)
                 [@ctslint.allow
                   "phys-equality"
                     "generation check: timer validity is attempt identity"])
                 && g.round = round ->
              let live = Set.diff g.proc_set g.fail_set in
              let leader = Set.min_elt live in
              Log.debug (fun m ->
                  m "%a: commit timeout, failing leader %a" Nid.pp t.me Nid.pp
                    leader);
              enter_gather t ~candidates:live ~prefail:(Set.singleton leader)
          | _ -> ())
    end

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

and my_recovery_rings t (c : Wire.commit) =
  (* The old rings whose leftover messages this node must recover: those it
     was a member of (exactly one in practice). *)
  match List.assoc_opt t.me c.member_old with
  | Some { old_ring = Some r; _ } ->
      List.filter (fun (r', _) -> Ring_id.equal r r') c.recover
  | Some { old_ring = None; _ } | None -> []

and ring_members_of (c : Wire.commit) r =
  List.filter_map
    (fun ((p, (info : Wire.old_ring_info)) : Nid.t * Wire.old_ring_info) ->
      match info.old_ring with
      | Some r' when Ring_id.equal r r' -> Some p
      | _ -> None)
    c.member_old

and send_offers t (rs : recovery_state) =
  let c = rs.commit in
  let mine =
    List.map
      (fun (r, (lo, hi)) ->
        let s = store_for t r in
        (r, Store.held_in s ~lo ~hi))
      rs.my_rings
  in
  Hashtbl.replace rs.offers t.me mine;
  List.iter
    (fun (r, held) ->
      bcast t
        (Wire.Recovery_offer
           { o_sender = t.me; new_ring = c.new_ring; o_ring = r; held }))
    mine

and union_held (rs : recovery_state) r =
  (* Set union is commutative, but folding in sorted node order anyway
     keeps the site inside the determinism contract for free. *)
  Dsim.Det.fold_sorted ~compare:Nid.compare
    (fun _ offer acc ->
      match List.assoc_opt r offer with
      | Some held -> List.fold_left (fun a s -> IntSet.add s a) acc held
      | None -> acc)
    rs.offers IntSet.empty

and request_missing t (rs : recovery_state) =
  let c = rs.commit in
  List.iter
    (fun (r, (lo, hi)) ->
      let s = store_for t r in
      let u = union_held rs r in
      let wanted =
        IntSet.elements
          (IntSet.filter
             (fun seq -> seq >= lo && seq <= hi && not (Store.has s seq))
             u)
      in
      if wanted <> [] then
        bcast t
          (Wire.Recovery_request
             { r_sender = t.me; new_ring = c.new_ring; r_ring = r; wanted }))
    rs.my_rings

and check_my_done t (rs : recovery_state) =
  let c = rs.commit in
  let ready =
    List.for_all
      (fun (r, (lo, hi)) ->
        let peers =
          match List.assoc_opt r rs.ring_peers with Some ps -> ps | None -> []
        in
        let have_offer p =
          match Hashtbl.find_opt rs.offers p with
          | Some offer -> List.mem_assoc r offer
          | None -> false
        in
        List.for_all have_offer peers
        &&
        let s = store_for t r in
        let u = union_held rs r in
        IntSet.for_all (fun seq -> seq < lo || seq > hi || Store.has s seq) u)
      rs.my_rings
  in
  if ready && not rs.my_done_sent then begin
    rs.my_done_sent <- true;
    rs.done_from <- Set.add t.me rs.done_from;
    bcast t
      (Wire.Recovery_done { d_sender = t.me; new_ring = c.new_ring; nudge = false })
  end;
  maybe_finish_recovery t rs

and maybe_finish_recovery t (rs : recovery_state) =
  let c = rs.commit in
  if rs.my_done_sent && Set.subset (Set.of_list c.members) rs.done_from then begin
    (* Deliver the old ring's leftovers in sequence order, skipping gaps no
       surviving member can fill, then announce the new view.  Even when
       there was nothing to exchange (every member already held the same
       prefix, so the recovery range was empty), messages received since
       the last token visit are still undelivered and go up now. *)
    (match List.assoc_opt t.me c.member_old with
    | Some { old_ring = Some r; _ } ->
        let s = store_for t r in
        let hi =
          match List.assoc_opt r c.recover with
          | Some (_, hi) -> hi
          | None -> Store.aru s
        in
        for seq = Store.delivered s + 1 to hi do
          (match Store.find s seq with
          | Some (msg : 'a Wire.regular) ->
              t.stat_delivered <- t.stat_delivered + 1;
              t.handler
                (Deliver
                   {
                     ring = msg.ring;
                     seq = msg.seq;
                     sender = msg.sender;
                     payload = msg.payload;
                   })
          | None -> ());
          Store.set_delivered s seq
        done
    | Some { old_ring = None; _ } | None -> ());
    t.epoch <- t.epoch + 1;
    t.ring <- Some c.new_ring;
    t.members <- c.members;
    t.succ <- successor_of c.members t.me;
    t.state <- Operational;
    t.stat_views <- t.stat_views + 1;
    (let s = Dsim.Engine.obs t.eng in
     if s.Obs.Sink.active then begin
       Obs.Sink.count s Obs.Metrics.Totem_views;
       Obs.Sink.instant s
         ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
         ~pid:(Nid.to_int t.me) ~sub:Obs.Subsystem.Totem ~name:"operational"
         ~args:
           [ ("gen", c.new_ring.gen); ("members", List.length c.members) ]
     end;
     if s.Obs.Sink.rec_on then
       Obs.Sink.rec_event s ~kind:Obs.Recorder.k_operational
         ~ts_us:(Dsim.Time.to_ns (Dsim.Engine.now t.eng) / 1000)
         ~node:(Nid.to_int t.me) ~a:c.new_ring.gen
         ~b:(List.length c.members));
    (* Only the new ring's store remains relevant. *)
    t.stores <-
      Ring_id.Map.filter (fun r _ -> Ring_id.equal r c.new_ring) t.stores;
    t.store_memo <- None;
    t.handler (View { ring = c.new_ring; members = c.members });
    Log.debug (fun m ->
        m "%a: operational on %a" Nid.pp t.me Ring_id.pp c.new_ring);
    arm_token_loss t;
    if Nid.equal c.new_ring.rep t.me then presence_tick t;
    (* The representative launches the token; a token that arrived while we
       were still recovering is processed now. *)
    match rs.stashed_token with
    | Some tok -> accept_token t tok
    | None ->
        if Nid.equal c.new_ring.rep t.me then
          accept_token t
            {
              Wire.ring = c.new_ring;
              token_seq = 1;
              seq = 0;
              aru = 0;
              aru_id = None;
              rtr = [];
              fcc = 0;
            }
  end

and install_ring t (c : Wire.commit) =
  t.epoch <- t.epoch + 1;
  t.max_gen <- max t.max_gen c.new_ring.gen;
  t.last_token_seq <- 0;
  t.prev_visit_aru <- 0;
  t.last_visit_count <- 0;
  ignore (store_for t c.new_ring : 'a Store.t);
  let my_rings = my_recovery_rings t c in
  let rs =
    {
      commit = c;
      my_rings;
      ring_peers = List.map (fun (r, _) -> (r, ring_members_of c r)) my_rings;
      offers = Hashtbl.create 8;
      done_from = Set.empty;
      my_done_sent = false;
      stashed_token = None;
    }
  in
  t.state <- Recover rs;
  send_offers t rs;
  recovery_tick t rs;
  after t t.cfg.recovery_timeout (fun () ->
      match t.state with
      | Recover rs'
        when (rs' == rs)
             [@ctslint.allow
               "phys-equality"
                 "generation check: timer validity is attempt identity"] ->
          Log.debug (fun m -> m "%a: recovery timeout" Nid.pp t.me);
          enter_gather t ~candidates:(Set.of_list c.members) ~prefail:Set.empty
      | _ -> ());
  check_my_done t rs

and recovery_tick t rs =
  after t t.cfg.recovery_retry (fun () ->
      match t.state with
      | Recover rs'
        when (rs' == rs)
             [@ctslint.allow
               "phys-equality"
                 "generation check: timer validity is attempt identity"] ->
          send_offers t rs;
          request_missing t rs;
          if rs.my_done_sent then
            bcast t
              (Wire.Recovery_done
                 { d_sender = t.me; new_ring = rs.commit.new_ring; nudge = false });
          (* The representative re-announces the commit for members that
             missed it. *)
          if Nid.equal rs.commit.new_ring.rep t.me then
            bcast t (Wire.Commit rs.commit);
          recovery_tick t rs
      | _ -> ())

and presence_tick t =
  after t t.cfg.presence_interval (fun () ->
      match (t.state, t.ring) with
      | Operational, Some r when Nid.equal r.rep t.me ->
          bcast t (Wire.Presence { p_sender = t.me; p_ring = r });
          presence_tick t
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Token handling                                                      *)

and arm_token_loss t =
  t.token_deadline <-
    Dsim.Time.add (Dsim.Engine.now t.eng) t.cfg.token_loss_timeout;
  if t.watchdog_ep <> t.epoch then begin
    t.watchdog_ep <- t.epoch;
    watchdog_step t t.epoch
  end

and watchdog_step t ep =
  (* Lazy chase: re-arm a full [token_loss_timeout] from now rather than
     at the slid deadline.  On a healthy ring the deadline moves every
     token visit, so chasing it exactly fires a check per rotation per
     node — at 1000 replicas that alone is ~30% of all queue events.
     The lazy chain fires once per timeout instead; the price is that a
     real loss is detected up to one extra timeout after the deadline
     (bounded, deterministic), which only shifts recovery onset, never
     outcomes. *)
  Dsim.Engine.schedule t.eng t.cfg.token_loss_timeout (fun () ->
      if (not (crashed t)) && t.epoch = ep then
        match t.state with
        | Operational ->
            if Dsim.Time.(Dsim.Engine.now t.eng >= t.token_deadline) then begin
              if t.watchdog_ep = ep then t.watchdog_ep <- -1;
              Log.debug (fun m -> m "%a: token loss" Nid.pp t.me);
              enter_gather t ~candidates:(Set.of_list t.members)
                ~prefail:Set.empty
            end
            else
              (* tokens arrived since this check was scheduled: the
                 deadline moved — keep watching *)
              watchdog_step t ep
        | _ -> if t.watchdog_ep = ep then t.watchdog_ep <- -1)

and successor_of members me =
  let rec find = function
    | [] -> List.hd members
    | p :: rest -> if Nid.compare p me > 0 then p else find rest
  in
  find members

and successor t = t.succ

and accept_token t (tok : Wire.token) =
  t.token_era <- t.token_era + 1;
  t.last_token_seq <- tok.token_seq;
  t.stat_tokens <- t.stat_tokens + 1;
  (let s = Dsim.Engine.obs t.eng in
   if s.Obs.Sink.active then begin
     Obs.Sink.count s Obs.Metrics.Totem_tokens;
     Obs.Sink.instant s
       ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
       ~pid:(Nid.to_int t.me) ~sub:Obs.Subsystem.Totem ~name:"token"
       ~args:[ ("seq", tok.token_seq); ("aru", tok.aru) ]
   end;
   if s.Obs.Sink.rec_on then
     Obs.Sink.rec_event s ~kind:Obs.Recorder.k_token
       ~ts_us:(Dsim.Time.to_ns (Dsim.Engine.now t.eng) / 1000)
       ~node:(Nid.to_int t.me) ~a:tok.token_seq ~b:tok.aru);
  (match t.token_probe with Some f -> f tok | None -> ());
  let s =
    match t.ring with Some r -> store_for t r | None -> assert false
  in
  let prev_aru = t.prev_visit_aru in
  (* 0. Deliver the in-order prefix received since the last visit.  Doing
     this first (and broadcasting later in the same visit) means a message
     enqueued in reaction to a delivery goes out one rotation later, as in
     the paper's testbed ("one additional token circulation").  Safe
     delivery additionally withholds messages until the token has shown
     them received by every member (two-rotation stability). *)
  (match t.cfg.delivery with
  | Config.Agreed -> drain_deliveries t
  | Config.Safe -> drain_deliveries ~upto:(min prev_aru tok.aru) t);
  (* 1. Retransmit requested messages that we hold. *)
  (* Fast path for the healthy ring: nothing requested and no local gaps
     means steps 1-2 are a no-op — skip the list traffic entirely. *)
  let n_satisfied =
    match tok.rtr with
    | [] when Store.aru s >= tok.seq -> 0
    | _ ->
        let satisfied, still_missing =
          List.partition (fun seq -> Store.find s seq <> None) tok.rtr
        in
        List.iter
          (fun seq ->
            match Store.find s seq with
            | Some msg ->
                t.stat_retrans <- t.stat_retrans + 1;
                out_push t (Wire.Regular msg)
            | None -> ())
          satisfied;
        (* 2. Add our own gaps to the retransmission list. *)
        let my_missing = Store.missing_up_to s tok.seq in
        let rtr =
          List.sort_uniq Int.compare (List.rev_append my_missing still_missing)
        in
        tok.rtr <- rtr;
        List.length satisfied
  in
  (* 3. Broadcast pending messages under flow control. *)
  let budget = min t.cfg.max_msgs_per_visit (max 0 (t.cfg.window - tok.fcc)) in
  let sent = ref 0 in
  while !sent < budget && not (Queue.is_empty t.pending) do
    let payload, unless = Queue.pop t.pending in
    let cancelled = match unless with Some p -> p () | None -> false in
    if not cancelled then begin
      tok.seq <- tok.seq + 1;
      let msg : 'a Wire.regular =
        { ring = tok.ring; seq = tok.seq; sender = t.me; payload }
      in
      ignore (Store.add s msg : bool);
      t.stat_sent <- t.stat_sent + 1;
      out_push t (Wire.Regular msg);
      incr sent
    end
  done;
  (* Retransmits then fresh messages, in push order, one batch per peer. *)
  out_flush t;
  tok.fcc <- max 0 (tok.fcc + !sent - t.last_visit_count);
  t.last_visit_count <- !sent;
  (* 4. Update the all-received-up-to field (Totem's rule: the owner of the
     lowered aru — or anybody, when it is unowned — raises it to its local
     aru; everyone else may only lower it). *)
  let my_aru = Store.aru s in
  (match tok.aru_id with
  | Some id when Nid.equal id t.me ->
      tok.aru <- my_aru;
      tok.aru_id <- (if my_aru < tok.seq then Some t.me else None)
  | None ->
      tok.aru <- my_aru;
      if my_aru < tok.seq then tok.aru_id <- Some t.me
  | Some _ ->
      if my_aru < tok.aru then begin
        tok.aru <- my_aru;
        tok.aru_id <- Some t.me
      end);
  (* 5. Garbage-collect messages that have been stable for a rotation. *)
  let stable = min t.prev_visit_aru tok.aru in
  let deliverable = Store.delivered s in
  if stable > 0 && stable <= deliverable then Store.gc s ~upto:stable;
  t.prev_visit_aru <- tok.aru;
  (* 6. Deliver anything that became in-order during this visit (own
     broadcasts and retransmissions we just stored). *)
  (match t.cfg.delivery with
  | Config.Agreed -> drain_deliveries t
  | Config.Safe -> drain_deliveries ~upto:(min prev_aru tok.aru) t);
  (* 7. Forward after the processing hold time.  The hold is a
     deterministic delay, so the send is committed now with the hold
     folded into the network delay instead of parked in a timer event —
     one queue event per hop instead of two.  [tok] is exclusively ours
     once accepted and this visit was its last mutation, so it is handed
     to the network directly; a copy is minted only if a retransmission
     master turns out to be needed (drop path). *)
  let work = !sent + n_satisfied in
  let hold =
    Dsim.Time.Span.add t.cfg.token_hold
      (Dsim.Time.Span.scale (float_of_int work) t.cfg.per_msg_cost)
  in
  tok.token_seq <- tok.token_seq + 1;
  let dst = successor t in
  let queued =
    Netsim.Network.send_tracked_after t.net ~delay:hold ~src:t.me ~dst
      (Wire.Token tok)
  in
  (* Arm the hop-recovery timer only when the simulated network actually
     dropped the send: a delivered token makes our retransmission
     redundant by construction (the successor's next token bumps our era
     before the timer matters), so the common lossless path schedules no
     timer at all.  An unconditional arm would also fire spuriously on
     rings whose rotation time exceeds [token_retransmit], flooding large
     rings with stale duplicate tokens. *)
  if not queued then
    arm_token_retransmit t ~delay:(Dsim.Time.Span.add hold t.cfg.token_retransmit)
      ~dst tok;
  arm_token_loss t

and arm_token_retransmit t ~delay ~dst out =
  after_token t delay (fun () ->
      if is_operational t then begin
        Log.debug (fun m -> m "%a: retransmitting token" Nid.pp t.me);
        let queued =
          Netsim.Network.send_tracked t.net ~src:t.me ~dst
            (Wire.Token (Wire.copy_token out))
        in
        ignore (queued : bool);
        arm_token_retransmit t ~delay:t.cfg.token_retransmit ~dst out
      end)

and handle_incoming_token t (tok : Wire.token) =
  match t.state with
  | Operational -> (
      match t.ring with
      | Some r when Ring_id.equal r tok.ring ->
          if tok.token_seq > t.last_token_seq then accept_token t tok
      | _ -> ())
  | Recover rs ->
      if
        Ring_id.equal rs.commit.new_ring tok.ring
        && tok.token_seq > t.last_token_seq
      then rs.stashed_token <- Some tok
  | Idle | Gather _ | Wait_commit _ | Crashed -> ()

(* ------------------------------------------------------------------ *)
(* Message dispatch                                                    *)

and on_regular t (msg : 'a Wire.regular) =
  let relevant =
    match t.ring with
    | Some r when Ring_id.equal r msg.ring -> true
    | _ -> known_store t msg.ring <> None
  in
  (* Foreign traffic from a node outside our ring means a healed partition:
     start a merge. *)
  (if (not relevant) && is_operational t then
     let foreign = not (List.exists (Nid.equal msg.sender) t.members) in
     if foreign then
       enter_gather t ~candidates:(Set.singleton msg.sender) ~prefail:Set.empty);
  if relevant then begin
    let s = store_for t msg.ring in
    let fresh = Store.add s msg in
    (* Delivery is token-driven (messages are handed up at token visits,
       as in Totem): receiving a regular message only stores it. *)
    if fresh then
      match t.state with
      | Recover rs -> check_my_done t rs
      | _ -> ()
  end

and on_join t (j : Wire.join) =
  t.max_gen <- max t.max_gen j.max_gen;
  match t.state with
  | Crashed | Idle -> ()
  | Gather g | Wait_commit g ->
      Hashtbl.replace g.joins j.j_sender j;
      let proc' = Set.union g.proc_set j.proc_set in
      let fail' = Set.union g.fail_set (Set.remove t.me j.fail_set) in
      if (not (Set.equal proc' g.proc_set)) || not (Set.equal fail' g.fail_set)
      then begin
        g.proc_set <- proc';
        g.fail_set <- fail';
        (match t.state with
        | Wait_commit _ -> t.state <- Gather g
        | _ -> ());
        send_join t g
      end;
      maybe_consensus t g
  | Recover _ ->
      (* Finish the recovery in progress first; the joiner keeps
         re-announcing itself and is handled once we are operational. *)
      ()
  | Operational ->
      (* Ignore stale joins left over from the gather that formed the
         current ring; react to anything genuinely new. *)
      let my_gen = match t.ring with Some r -> r.gen | None -> 0 in
      let is_member = List.exists (Nid.equal j.j_sender) t.members in
      if (not is_member) || j.max_gen >= my_gen then
        enter_gather t
          ~candidates:(Set.add j.j_sender j.proc_set)
          ~prefail:Set.empty

and on_commit t (c : Wire.commit) =
  if List.exists (Nid.equal t.me) c.members then
    match t.state with
    | Crashed | Idle -> ()
    | Recover rs when Ring_id.equal rs.commit.new_ring c.new_ring ->
        () (* duplicate of the commit we are already recovering for *)
    | Operational when Ring_id.equal (Option.get t.ring) c.new_ring -> ()
    | Gather _ | Wait_commit _ | Recover _ | Operational ->
        let my_gen = match t.ring with Some r -> r.gen | None -> 0 in
        if c.new_ring.gen > my_gen then install_ring t c

and on_offer t ~o_sender ~new_ring ~o_ring ~held =
  match t.state with
  | Recover rs when Ring_id.equal rs.commit.new_ring new_ring ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt rs.offers o_sender)
      in
      let prev = List.remove_assoc o_ring prev in
      Hashtbl.replace rs.offers o_sender ((o_ring, held) :: prev);
      check_my_done t rs
  | Operational -> resend_recovery_help t ~new_ring
  | _ -> ()

and on_request t ~new_ring ~r_ring ~wanted =
  (* Serve requests whenever we hold the messages, even if our own recovery
     has already completed. *)
  let serve () =
    match known_store t r_ring with
    | None -> ()
    | Some s ->
        List.iter
          (fun seq ->
            match Store.find s seq with
            | Some msg ->
                t.stat_retrans <- t.stat_retrans + 1;
                bcast t (Wire.Regular msg)
            | None -> ())
          wanted
  in
  match t.state with
  | Recover rs when Ring_id.equal rs.commit.new_ring new_ring -> serve ()
  | Operational ->
      serve ();
      resend_recovery_help t ~new_ring
  | _ -> ()

and resend_recovery_help t ~new_ring =
  (* A straggler is still recovering on our ring: it may have missed our
     Recovery_done (we completed first).  Re-announce it as a nudge, which
     operational nodes ignore, so two operational nodes cannot echo dones
     at each other forever. *)
  match t.ring with
  | Some r when Ring_id.equal r new_ring ->
      bcast t (Wire.Recovery_done { d_sender = t.me; new_ring; nudge = true })
  | _ -> ()

and on_done t ~d_sender ~new_ring ~nudge =
  match t.state with
  | Recover rs when Ring_id.equal rs.commit.new_ring new_ring ->
      rs.done_from <- Set.add d_sender rs.done_from;
      maybe_finish_recovery t rs
  | Operational ->
      (* A genuine (non-nudge) done means its sender is still recovering on
         our ring and may have missed our own done; re-announce it. *)
      if (not nudge) && not (Nid.equal d_sender t.me) then
        resend_recovery_help t ~new_ring
  | _ -> ()

and on_presence t ~p_sender ~p_ring =
  match (t.state, t.ring) with
  | Operational, Some r when not (Ring_id.equal r p_ring) ->
      Log.debug (fun m ->
          m "%a: foreign presence from %a, merging" Nid.pp t.me Nid.pp p_sender);
      enter_gather t ~candidates:(Set.singleton p_sender) ~prefail:Set.empty
  | _ -> ()

(* Wall-time attribution: token visits, data receives and each kind of
   membership/recovery message get their own site — they answer different
   scale-out questions (steady-state cost vs which phase of formation
   churn), and the per-kind split is what exposed the join-storm cost at
   1000 replicas. *)
let at_token = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"token"
let at_regular = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"regular"
let at_join = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"m-join"
let at_commit = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"m-commit"
let at_offer = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"m-offer"
let at_request = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"m-request"
let at_done = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"m-done"
let at_presence = Obs.Attrib.site ~sub:Obs.Subsystem.Totem ~name:"m-presence"

let dispatch t ~src:_ (msg : 'a Wire.t) =
  if not (crashed t) then begin
    let s = Dsim.Engine.obs t.eng in
    match msg with
    | Wire.Regular r ->
        Obs.Sink.attr_enter s at_regular;
        on_regular t r;
        Obs.Sink.attr_leave s
    | Wire.Token tok ->
        Obs.Sink.attr_enter s at_token;
        handle_incoming_token t tok;
        Obs.Sink.attr_leave s
    | Wire.Join j ->
        Obs.Sink.attr_enter s at_join;
        on_join t j;
        Obs.Sink.attr_leave s
    | Wire.Commit c ->
        Obs.Sink.attr_enter s at_commit;
        on_commit t c;
        Obs.Sink.attr_leave s
    | Wire.Recovery_offer { o_sender; new_ring; o_ring; held } ->
        Obs.Sink.attr_enter s at_offer;
        on_offer t ~o_sender ~new_ring ~o_ring ~held;
        Obs.Sink.attr_leave s
    | Wire.Recovery_request { r_sender = _; new_ring; r_ring; wanted } ->
        Obs.Sink.attr_enter s at_request;
        on_request t ~new_ring ~r_ring ~wanted;
        Obs.Sink.attr_leave s
    | Wire.Recovery_done { d_sender; new_ring; nudge } ->
        Obs.Sink.attr_enter s at_done;
        on_done t ~d_sender ~new_ring ~nudge;
        Obs.Sink.attr_leave s
    | Wire.Presence { p_sender; p_ring } ->
        Obs.Sink.attr_enter s at_presence;
        on_presence t ~p_sender ~p_ring;
        Obs.Sink.attr_leave s
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create eng net ~me ?(config = Config.default) ~handler () =
  let t =
    {
      eng;
      net;
      me;
      cfg = config;
      handler;
      state = Idle;
      ring = None;
      members = [];
      succ = me;
      stores = Ring_id.Map.empty;
      store_memo = None;
      pending = Queue.create ();
      max_gen = 0;
      epoch = 0;
      token_era = 0;
      token_deadline = Dsim.Time.epoch;
      watchdog_ep = -1;
      last_token_seq = 0;
      prev_visit_aru = 0;
      last_visit_count = 0;
      stat_tokens = 0;
      stat_sent = 0;
      stat_retrans = 0;
      stat_views = 0;
      stat_delivered = 0;
      token_probe = None;
      out_buf = [||];
      out_n = 0;
    }
  in
  Netsim.Network.attach net me (fun ~src msg -> dispatch t ~src msg);
  t

let start t =
  match t.state with
  | Idle -> enter_gather t ~candidates:Set.empty ~prefail:Set.empty
  | _ -> invalid_arg "Totem.Node.start: already started"

let multicast ?unless t payload =
  if crashed t then invalid_arg "Totem.Node.multicast: node crashed";
  Queue.push (payload, unless) t.pending

let crash t =
  if not (crashed t) then begin
    t.epoch <- t.epoch + 1;
    t.state <- Crashed;
    Netsim.Network.detach t.net t.me
  end
