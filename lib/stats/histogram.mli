(** Fixed-bin-width histogram with probability-density estimation.

    Used to reproduce the paper's Figure 5 (probability density function of
    the end-to-end latency) and the token-passing-time calibration plot. *)

type t

val create : ?lo:float -> bin_width:float -> unit -> t
(** [create ~lo ~bin_width ()] makes an empty histogram whose bin [i] covers
    [\[lo + i*w, lo + (i+1)*w)].  [lo] defaults to [0.].  Raises
    [Invalid_argument] if [bin_width <= 0]. *)

val add : t -> float -> unit
(** Samples below [lo] are clamped into the first bin. *)

val count : t -> int
(** Total number of samples. *)

val bin_count : t -> int
(** Index of the highest non-empty bin + 1 (0 when empty). *)

val bin_lo : t -> int -> float
(** Lower edge of bin [i]. *)

val bin_mid : t -> int -> float
val samples_in : t -> int -> int

val density : t -> int -> float
(** [density t i] is the estimated probability density over bin [i]:
    fraction of samples in the bin (so densities over bins sum to 1, the
    normalization the paper's Figure 5 uses). *)

val mode_bin : t -> int
(** Index of the fullest bin.  Raises [Invalid_argument] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0. <= q <= 1.]) by
    scanning the cumulative bin counts and interpolating linearly
    inside the bin holding the target rank — the resolution is the bin
    width, which is what a fixed-bin histogram can honestly promise.
    Raises [Invalid_argument] when the histogram is empty or [q] is
    outside [0, 1]. *)

val rows : t -> (float * float) list
(** [(bin midpoint, density)] for every bin up to the last non-empty one. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering: one line per bin with a bar proportional to density. *)
