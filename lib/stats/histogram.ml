type t = {
  lo : float;
  bin_width : float;
  mutable bins : int array;
  mutable count : int;
  mutable highest : int; (* index of highest non-empty bin, -1 when empty *)
}

let create ?(lo = 0.) ~bin_width () =
  if bin_width <= 0. then invalid_arg "Histogram.create: bin_width <= 0";
  { lo; bin_width; bins = Array.make 64 0; count = 0; highest = -1 }

let index t x =
  let i = int_of_float (Float.floor ((x -. t.lo) /. t.bin_width)) in
  if i < 0 then 0 else i

let ensure t i =
  if i >= Array.length t.bins then begin
    let n = ref (Array.length t.bins) in
    while i >= !n do
      n := 2 * !n
    done;
    let bigger = Array.make !n 0 in
    Array.blit t.bins 0 bigger 0 (Array.length t.bins);
    t.bins <- bigger
  end

let add t x =
  let i = index t x in
  ensure t i;
  t.bins.(i) <- t.bins.(i) + 1;
  t.count <- t.count + 1;
  if i > t.highest then t.highest <- i

let count t = t.count
let bin_count t = t.highest + 1
let bin_lo t i = t.lo +. (float_of_int i *. t.bin_width)
let bin_mid t i = bin_lo t i +. (t.bin_width /. 2.)
let samples_in t i = if i <= t.highest then t.bins.(i) else 0

let density t i =
  if t.count = 0 then 0.
  else float_of_int (samples_in t i) /. float_of_int t.count

let mode_bin t =
  if t.count = 0 then invalid_arg "Histogram.mode_bin: empty";
  let best = ref 0 in
  for i = 1 to t.highest do
    if t.bins.(i) > t.bins.(!best) then best := i
  done;
  !best

let quantile t q =
  if t.count = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q outside [0, 1]";
  (* rank of the sample we want, 1-based; q = 0 picks the first sample *)
  let target =
    let r = Float.round (q *. float_of_int t.count) in
    if r < 1. then 1. else r
  in
  let target = int_of_float target in
  let i = ref 0 and cum = ref 0 in
  while !cum + t.bins.(!i) < target do
    cum := !cum + t.bins.(!i);
    incr i
  done;
  (* linear interpolation inside the bin holding the target rank *)
  let inside = float_of_int (target - !cum) /. float_of_int t.bins.(!i) in
  bin_lo t !i +. (inside *. t.bin_width)

let rows t =
  List.init (bin_count t) (fun i -> (bin_mid t i, density t i))

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty histogram)"
  else begin
    let dmax = density t (mode_bin t) in
    for i = 0 to t.highest do
      let d = density t i in
      let bar = int_of_float (d /. dmax *. 50.) in
      Format.fprintf ppf "%10.1f | %-50s %.4f@." (bin_mid t i)
        (String.make bar '#') d
    done
  end
