module Nid = Netsim.Node_id

let src = Logs.Src.create "gcs" ~doc:"Group communication service"

module Log = (val Logs.src_log src : Logs.LOG)

type payload =
  | App of Msg.t
  | Group_join of { node : Nid.t; group : Group_id.t }
  | Group_leave of { node : Nid.t; group : Group_id.t }
  | Snapshot of {
      ring : Totem.Ring_id.t;
      groups : (Group_id.t * Nid.t list) list;
      snap_primary : bool;
          (* captured in a primary component; only these are adoptable *)
    }

type event =
  | Deliver of { msg : Msg.t; from_node : Nid.t }
  | View_change of View.t
  | Block
  | Evicted

type sub = {
  handler : event -> unit;
  mutable am_member : bool;
      (* cached [List.exists (equal me) (members_of t group)], refreshed on
         every membership edge for the group ([notify_group]) — the per-
         delivery routing check must not walk a member list at scale *)
}

type t = {
  eng : Dsim.Engine.t;
  me : Nid.t;
  node : payload Totem.Node.t;
  mutable groups : Nid.t list Group_id.Map.t option;
      (** [None] until this node learns the map (late joiner) *)
  mutable buffered_ops : payload list;
      (** membership ops delivered since the last ring change, re-applied
          on top of an adopted snapshot *)
  subs : (Group_id.t, sub) Hashtbl.t;
  mutable pending_joins : Group_id.t list;
      (** joins requested before the map was known *)
  mutable last_primary : Nid.Set.t option;
  mutable primary : bool;
  mutable current_ring : Totem.Ring_id.t option;
  mutable ring_view_hook :
    (ring:Totem.Ring_id.t -> members:Nid.t list -> unit) option;
      (** observer called after each installed ring view — lets a harness
          track formation progress event-driven instead of polling every
          node's membership per engine step *)
  mutable blocked_hook : (unit -> unit) option;
      (** observer called when the underlying ring leaves the operational
          state (membership change in progress) — the complement of
          [ring_view_hook], so a harness tracking "is this ring settled"
          sees both edges *)
}

let me t = t.me
let is_primary_component t = t.primary
let ring t = t.current_ring
let totem t = t.node

let members_of t group =
  match t.groups with
  | None -> []
  | Some m -> Option.value ~default:[] (Group_id.Map.find_opt group m)

let view_of t group =
  match t.groups with
  | None -> None
  | Some m -> (
      match Group_id.Map.find_opt group m with
      | None | Some [] -> None
      | Some nodes ->
          Some
            {
              View.group;
              members = List.mapi (fun i n -> (n, i)) nodes;
              primary = t.primary;
            })

let probe_view t view =
  let s = Dsim.Engine.obs t.eng in
  if s.Obs.Sink.active then begin
    Obs.Sink.count s Obs.Metrics.Gcs_views;
    Obs.Sink.instant s
      ~ts_ns:(Dsim.Time.to_ns (Dsim.Engine.now t.eng))
      ~pid:(Nid.to_int t.me) ~sub:Obs.Subsystem.Gcs ~name:"view-change"
      ~args:
        [
          ("members", List.length view.View.members);
          ("primary", if view.View.primary then 1 else 0);
        ]
  end;
  if s.Obs.Sink.rec_on then
    Obs.Sink.rec_event s ~kind:Obs.Recorder.k_view
      ~ts_us:(Dsim.Time.to_ns (Dsim.Engine.now t.eng) / 1000)
      ~node:(Nid.to_int t.me)
      ~a:(List.length view.View.members)
      ~b:(if view.View.primary then 1 else 0)

let refresh_member_cache t group sub =
  sub.am_member <- List.exists (Nid.equal t.me) (members_of t group)

let notify_group t group =
  match (Hashtbl.find_opt t.subs group, view_of t group) with
  | Some sub, Some view ->
      refresh_member_cache t group sub;
      probe_view t view;
      sub.handler (View_change view)
  | Some sub, None ->
      (* The group lost all members (e.g. pruned by a partition). *)
      refresh_member_cache t group sub;
      let view = { View.group; members = []; primary = t.primary } in
      probe_view t view;
      sub.handler (View_change view)
  | None, _ -> ()

let apply_op t op =
  match (op, t.groups) with
  | Group_join { node; group }, Some m ->
      let cur = Option.value ~default:[] (Group_id.Map.find_opt group m) in
      if not (List.exists (Nid.equal node) cur) then begin
        t.groups <- Some (Group_id.Map.add group (cur @ [ node ]) m);
        notify_group t group
      end
  | Group_leave { node; group }, Some m ->
      let cur = Option.value ~default:[] (Group_id.Map.find_opt group m) in
      if List.exists (Nid.equal node) cur then begin
        let cur = List.filter (fun n -> not (Nid.equal n node)) cur in
        t.groups <- Some (Group_id.Map.add group cur m);
        notify_group t group
      end
  | (Group_join _ | Group_leave _), None -> assert false
  | (App _ | Snapshot _), _ -> assert false

let announce_join t group =
  Totem.Node.multicast t.node (Group_join { node = t.me; group })

let adopt_snapshot t ~ring ~groups =
  match (t.groups, t.current_ring) with
  | Some _, _ -> () (* we already hold the map; identical by construction *)
  | None, Some r when Totem.Ring_id.equal r ring ->
      Log.debug (fun m -> m "%a: adopting group snapshot" Nid.pp t.me);
      t.groups <-
        Some
          (List.fold_left
             (fun acc (g, nodes) -> Group_id.Map.add g nodes acc)
             Group_id.Map.empty groups);
      let ops = List.rev t.buffered_ops in
      t.buffered_ops <- [];
      List.iter (apply_op t) ops;
      (Hashtbl.iter
         (fun g sub -> refresh_member_cache t g sub)
         [@ctslint.allow
           "hash-order"
             "order-free: each callback only recomputes that sub's cached \
              membership bit from the (already final) group map"])
        t.subs;
      (* Joins requested while the map was unknown can go out now. *)
      let pending = List.rev t.pending_joins in
      t.pending_joins <- [];
      List.iter (announce_join t) pending
  | None, _ -> () (* snapshot for a ring we are no longer on *)

let on_app_deliver t (msg : Msg.t) ~from_node =
  match Hashtbl.find_opt t.subs msg.header.dst_grp with
  | Some sub when sub.am_member -> sub.handler (Deliver { msg; from_node })
  | Some _ | None -> ()

let at_ring_view = Obs.Attrib.site ~sub:Obs.Subsystem.Gcs ~name:"ring-view"

let on_ring_view_inner t ~(ring : Totem.Ring_id.t) ~members =
  t.current_ring <- Some ring;
  t.buffered_ops <- [];
  let member_set = Nid.Set.of_list members in
  let was_primary = t.primary in
  (* Primary-component rule: a component survives iff it holds a strict
     majority of the last primary component. *)
  (match t.last_primary with
  | None -> t.primary <- true
  | Some last ->
      let overlap = Nid.Set.cardinal (Nid.Set.inter member_set last) in
      t.primary <- 2 * overlap > Nid.Set.cardinal last);
  if t.primary then t.last_primary <- Some member_set;
  (* Rejoining a primary component from a minority one: everything done in
     the minority is void (the paper's primary-component model).  The local
     group state is discarded; a snapshot from a continuing member restores
     the authoritative map, and evicted members must rejoin (for a replica,
     via the state-transfer recovery of §3.2). *)
  if t.primary && (not was_primary) && t.groups <> None then begin
    Log.debug (fun m -> m "%a: evicted from primary component" Nid.pp t.me);
    t.groups <- None;
    Dsim.Det.iter_sorted ~compare:Group_id.compare
      (fun _ sub -> sub.handler Evicted)
      t.subs
  end;
  match t.groups with
  | None -> () (* still waiting for a snapshot; a member will send one *)
  | Some m ->
      (* Members on departed nodes are gone; prune deterministically. *)
      let changed = ref [] in
      let m' =
        Group_id.Map.mapi
          (fun g nodes ->
            let nodes' =
              List.filter (fun n -> Nid.Set.mem n member_set) nodes
            in
            if List.length nodes' <> List.length nodes then
              changed := g :: !changed;
            nodes')
          m
      in
      t.groups <- Some m';
      (* Every subscribed group gets a view refresh: even when membership is
         unchanged, the primary flag may have flipped.  Fan-out runs in
         group-id order — hash-bucket order would differ between replicas
         that subscribed in a different sequence. *)
      Dsim.Det.iter_sorted ~compare:Group_id.compare
        (fun g _ -> notify_group t g)
        t.subs;
      List.iter
        (fun g -> if not (Hashtbl.mem t.subs g) then notify_group t g)
        !changed;
      (* Re-announce the map for any late joiner on the new ring. *)
      let snapshot =
        Snapshot
          { ring; groups = Group_id.Map.bindings m'; snap_primary = t.primary }
      in
      Totem.Node.multicast t.node snapshot

let on_ring_view t ~ring ~members =
  let s = Dsim.Engine.obs t.eng in
  Obs.Sink.attr_enter s at_ring_view;
  on_ring_view_inner t ~ring ~members;
  (* The hook observes after the view (and any snapshot re-announce) is
     fully applied; it must not mutate protocol state. *)
  (match t.ring_view_hook with
  | Some hook -> hook ~ring ~members
  | None -> ());
  Obs.Sink.attr_leave s

let set_ring_view_hook t hook = t.ring_view_hook <- hook
let set_blocked_hook t hook = t.blocked_hook <- hook

let on_totem_event t (ev : payload Totem.Node.event) =
  match ev with
  | Totem.Node.Deliver { sender; payload; _ } -> (
      match payload with
      | App msg -> on_app_deliver t msg ~from_node:sender
      | Group_join _ | Group_leave _ -> (
          match t.groups with
          | Some _ -> apply_op t payload
          | None -> t.buffered_ops <- payload :: t.buffered_ops)
      | Snapshot { ring; groups; snap_primary } ->
          if snap_primary then adopt_snapshot t ~ring ~groups)
  | Totem.Node.View { ring; members } -> on_ring_view t ~ring ~members
  | Totem.Node.Blocked ->
      (match t.blocked_hook with Some hook -> hook () | None -> ());
      Dsim.Det.iter_sorted ~compare:Group_id.compare
        (fun _ sub -> sub.handler Block)
        t.subs

let create eng net ~me ?totem_config ~bootstrap () =
  let rec t =
    lazy
      {
        eng;
        me;
        node =
          Totem.Node.create eng net ~me ?config:totem_config
            ~handler:(fun ev -> on_totem_event (Lazy.force t) ev)
            ();
        groups = (if bootstrap then Some Group_id.Map.empty else None);
        buffered_ops = [];
        subs = Hashtbl.create 8;
        pending_joins = [];
        last_primary = None;
        primary = true;
        current_ring = None;
        ring_view_hook = None;
        blocked_hook = None;
      }
  in
  Lazy.force t

let start t = Totem.Node.start t.node

let join_group t group ~handler =
  if Hashtbl.mem t.subs group then
    invalid_arg
      (Format.asprintf "Endpoint.join_group: already joined %a" Group_id.pp
         group);
  let sub = { handler; am_member = false } in
  refresh_member_cache t group sub;
  Hashtbl.replace t.subs group sub;
  match t.groups with
  | Some _ -> announce_join t group
  | None -> t.pending_joins <- group :: t.pending_joins

let leave_group t group =
  if Hashtbl.mem t.subs group then begin
    Hashtbl.remove t.subs group;
    Totem.Node.multicast t.node (Group_leave { node = t.me; group })
  end

let multicast ?unless t msg = Totem.Node.multicast ?unless t.node (App msg)
let crash t = Totem.Node.crash t.node
