(** Group communication endpoint (one per node).

    Multiplexes process groups over a single Totem ring: group join/leave
    announcements travel as totally-ordered messages, so every node derives
    the same group membership (in join order, giving each member a rank).
    Delivers to local subscribers, in the agreed total order, the
    application messages addressed to their group, plus group view changes.

    Partitions: Totem forms a ring per component; this layer marks a view
    primary iff the ring contains a strict majority of the last primary
    ring (the paper's primary-component model).

    Late joiners learn the group map from a [Snapshot] message that every
    map-holding member multicasts right after a ring change; its content is
    captured at ring installation, a point totally ordered with respect to
    all other messages, so adopting it plus the ops delivered since the
    ring change reconstructs the exact map. *)

type t

type payload
(** The wire payload this layer puts on the network (opaque). *)

type event =
  | Deliver of { msg : Msg.t; from_node : Netsim.Node_id.t }
      (** Ordered application message addressed to the subscribed group. *)
  | View_change of View.t
      (** The subscribed group's membership or primary status changed. *)
  | Block
      (** A membership change is in progress; multicasts are queued. *)
  | Evicted
      (** This node rejoined a primary component after sitting in a
          minority one: everything it did meanwhile is void, and it is no
          longer a member of any group (the primary side pruned it).  A
          replica must halt and rejoin through state-transfer recovery. *)

val create :
  Dsim.Engine.t ->
  payload Totem.Wire.t Netsim.Network.t ->
  me:Netsim.Node_id.t ->
  ?totem_config:Totem.Config.t ->
  bootstrap:bool ->
  unit ->
  t
(** [bootstrap] nodes start with an empty group map (the initial fleet);
    nodes added to a running system pass [false] and wait for a snapshot. *)

val start : t -> unit
val me : t -> Netsim.Node_id.t

val join_group : t -> Group_id.t -> handler:(event -> unit) -> unit
(** Subscribe locally and announce membership.  The handler starts
    receiving once this node's join message is delivered (first event is
    the [View_change] containing this node).  Raises [Invalid_argument] if
    already joined on this node. *)

val leave_group : t -> Group_id.t -> unit

val multicast : ?unless:(unit -> bool) -> t -> Msg.t -> unit
(** Reliable totally-ordered multicast.  Delivered to the members of
    [msg.header.dst_grp] — including the sender if it is a member — in the
    same order everywhere.  [unless] is evaluated when the message is about
    to go out; returning [true] cancels it (duplicate suppression). *)

val members_of : t -> Group_id.t -> Netsim.Node_id.t list
(** Current members in join order ([] when unknown). *)

val view_of : t -> Group_id.t -> View.t option
val is_primary_component : t -> bool
val ring : t -> Totem.Ring_id.t option
val totem : t -> payload Totem.Node.t
(** Escape hatch for instrumentation (stats, token probe). *)

val set_ring_view_hook :
  t ->
  (ring:Totem.Ring_id.t -> members:Netsim.Node_id.t list -> unit) option ->
  unit
(** Install (or remove) an observer called once after each ring view is
    fully applied (groups pruned, subscribers notified, snapshot
    re-announced).  Lets a harness track formation progress event-driven
    instead of polling every node per engine step.  The hook must only
    observe — mutating protocol state from it is unsupported. *)

val set_blocked_hook : t -> (unit -> unit) option -> unit
(** Observer for the other edge: called when the ring leaves the
    operational state (a membership change started).  Same
    observe-only contract as {!set_ring_view_hook}. *)

val crash : t -> unit
