(* Parse each .ml with compiler-libs and walk it with [Ast_iterator],
   maintaining a suppression stack and a small amount of syntactic
   context (are we inside an order-restoring consumer?).  No typing, no
   ppx: the sources this lints are plain OCaml, and a syntactic pass is
   exactly strong enough for the project-specific rules it enforces. *)

type report = {
  files : int;
  findings : Finding.t list;  (* sorted by file/line/col *)
  suppressions : Suppress.t list;  (* in file order *)
}

let parse_string ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

let rec flatten (li : Longident.t) =
  match li with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* ------------------------------------------------------------------ *)

type ctx = {
  file : string;
  respect_suppressions : bool;
  mutable active : Suppress.t list;  (* innermost first *)
  mutable sort_depth : int;
  mutable out : Finding.t list;
  mutable supps : Suppress.t list;  (* reverse file order *)
}

let report ctx ~rule ~(loc : Location.t) message =
  match
    List.find_opt (fun s -> String.equal s.Suppress.s_rule rule) ctx.active
  with
  | Some s ->
      s.Suppress.s_used_syn <- true;
      if not ctx.respect_suppressions then
        ctx.out <- Finding.v ~file:ctx.file ~loc ~rule message :: ctx.out
  | None -> ctx.out <- Finding.v ~file:ctx.file ~loc ~rule message :: ctx.out

(* Parse one attribute; well-formed allows are pushed by the caller,
   malformed ones become [bad-suppression] findings on the spot.  The
   sibling annotations ([@ctslint.hotpath], [@ctslint.domain_owned])
   get their payload hygiene checked here too — the syntactic pass owns
   attribute well-formedness for both passes — but only allows are
   returned for the active stack. *)
let suppression_of_attr ctx ~scope (attr : Parsetree.attribute) =
  let loc = Suppress.loc attr in
  let attr_txt = attr.Parsetree.attr_name.Location.txt in
  if Suppress.is_hotpath attr then begin
    (match attr.Parsetree.attr_payload with
    | Parsetree.PStr [] -> ()
    | _ ->
        report ctx ~rule:"bad-suppression" ~loc
          "[@ctslint.hotpath] takes no payload");
    None
  end
  else
    match Suppress.parse_domain_owned attr with
    | Suppress.Owned (Some reason) when reason <> "" ->
        let s =
          {
            Suppress.s_file = ctx.file;
            s_line = loc.Location.loc_start.Lexing.pos_lnum;
            s_rule = "domain-unsafe";
            s_reason = reason;
            s_scope = scope;
            s_kind = Suppress.Domain_owned;
            s_used_syn = false;
            s_used_typed = false;
          }
        in
        ctx.supps <- s :: ctx.supps;
        None (* ownership declarations never join the allow stack *)
    | Suppress.Owned _ ->
        report ctx ~rule:"bad-suppression" ~loc
          "[@ctslint.domain_owned] carries no reason; shared mutable state \
           must say why it is safe across domains";
        None
    | Suppress.Not_owned -> (
        match Suppress.parse attr with
        | Suppress.Not_allow ->
            (* any other ctslint.* attribute is a typo we must not let
               silently pass for an annotation *)
            if
              String.length attr_txt >= 8
              && String.sub attr_txt 0 8 = "ctslint."
            then
              report ctx ~rule:"bad-suppression" ~loc
                (Printf.sprintf "unknown ctslint annotation %S" attr_txt);
            None
        | Suppress.Malformed msg ->
            report ctx ~rule:"bad-suppression" ~loc msg;
            None
        | Suppress.Allow { rule; reason } -> (
            if not (Rules.known rule) then begin
              report ctx ~rule:"bad-suppression" ~loc
                (Printf.sprintf "unknown rule %S" rule);
              None
            end
            else
              match reason with
              | None | Some "" ->
                  report ctx ~rule:"bad-suppression" ~loc
                    (Printf.sprintf
                       "suppression of %S carries no reason; every \
                        exception to the determinism contract must say why"
                       rule);
                  None
              | Some reason ->
                  let s =
                    {
                      Suppress.s_file = ctx.file;
                      s_line = loc.Location.loc_start.Lexing.pos_lnum;
                      s_rule = rule;
                      s_reason = reason;
                      s_scope = scope;
                      s_kind = Suppress.Allow;
                      s_used_syn = false;
                      s_used_typed = false;
                    }
                  in
                  ctx.supps <- s :: ctx.supps;
                  Some s))

let push_attrs ctx ~scope attrs =
  List.filter_map (suppression_of_attr ctx ~scope) attrs

let pop_attrs ctx pushed =
  List.iter
    (fun (s : Suppress.t) ->
      ctx.active <-
        List.filter
          (fun s' ->
            (s' != s)
            [@ctslint.allow
              "phys-equality"
                "removing exactly this stack entry, not a structural twin"])
          ctx.active;
      (* Unused scoped allows are flagged here only for syntactic rules:
         an allow for a typed rule can only be judged once the typed
         pass has walked this file's cmt (Typed_check.unused_findings). *)
      if
        (not (Suppress.used s))
        && s.Suppress.s_scope = Suppress.Scoped
        && ctx.respect_suppressions
        && Rules.pass_of s.Suppress.s_rule = Rules.Syntactic
      then
        ctx.out <-
          Finding.v ~file:ctx.file
            ~loc:
              {
                Location.loc_start =
                  {
                    Lexing.pos_fname = ctx.file;
                    pos_lnum = s.Suppress.s_line;
                    pos_bol = 0;
                    pos_cnum = 0;
                  };
                loc_end =
                  {
                    Lexing.pos_fname = ctx.file;
                    pos_lnum = s.Suppress.s_line;
                    pos_bol = 0;
                    pos_cnum = 0;
                  };
                loc_ghost = true;
              }
            ~rule:"unused-allow"
            (Printf.sprintf "suppression of %S silences nothing; delete it"
               s.Suppress.s_rule)
          :: ctx.out)
    pushed

let check_path ctx ~loc path =
  let file = ctx.file in
  match Rules.classify path with
  | Rules.Clean -> ()
  | Rules.Phys_eq op ->
      report ctx ~rule:"phys-equality" ~loc
        (Printf.sprintf
           "physical equality (%s) depends on value representation, not \
            contents; use structural (=/<>) or annotate the sanctioned \
            sentinel identity check"
           op)
  | Rules.Hash_iter ->
      report ctx ~rule:"hash-order" ~loc
        "Hashtbl.iter visits bindings in hash-bucket order, which varies \
         with seeding and growth history; use Dsim.Det.iter_sorted (or \
         annotate a genuinely order-free callback)"
  | Rules.Hash_fold ->
      if ctx.sort_depth = 0 then
        report ctx ~rule:"hash-order" ~loc
          "Hashtbl.fold exposes hash-bucket order; sort the result in \
           place (List.sort (... Hashtbl.fold ...)), use \
           Dsim.Det.sorted_bindings, or annotate a commutative fold"
  | Rules.Wall_clock id ->
      if not (Rules.exempt (Rules.find "wall-clock") ~file) then
        report ctx ~rule:"wall-clock" ~loc
          (Printf.sprintf
             "%s reads real time; replicas must read time through the CTS \
              interposition (paper \xc2\xa73) and simulations through \
              Dsim.Time"
             id)
  | Rules.Random_use id ->
      if not (Rules.exempt (Rules.find "unseeded-random") ~file) then
        report ctx ~rule:"unseeded-random" ~loc
          (Printf.sprintf
             "%s draws from the ambient generator; use the run's seeded \
              Dsim.Rng so schedules replay"
             id)
  | Rules.Domain_use id ->
      if not (Rules.exempt (Rules.find "domain-hygiene") ~file) then
        report ctx ~rule:"domain-hygiene" ~loc
          (Printf.sprintf
             "%s spawns or names domains outside Mc.Pool; parallelism must \
              go through the pool's deterministic merge"
             id)

let expr_path (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Location.txt; _ } -> Some (flatten txt)
  | _ -> None

(* Is [e] an order-restoring consumer in function position — an ident
   like [List.sort], possibly partially applied ([List.sort cmp])? *)
let rec is_sort_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Location.txt; _ } ->
      Rules.is_sort_path (flatten txt)
  | Parsetree.Pexp_apply (f, _) -> is_sort_expr f
  | _ -> false

let lint_structure ~file ?(respect_suppressions = true) str =
  let ctx =
    {
      file;
      respect_suppressions;
      active = [];
      sort_depth = 0;
      out = [];
      supps = [];
    }
  in
  (* File-level suppressions: floating [@@@ctslint.allow ...] items apply
     to the whole file, wherever they appear. *)
  let file_level =
    List.filter_map
      (fun (si : Parsetree.structure_item) ->
        match si.Parsetree.pstr_desc with
        | Parsetree.Pstr_attribute a ->
            suppression_of_attr ctx ~scope:Suppress.File a
        | _ -> None)
      str
  in
  ctx.active <- ctx.active @ file_level;
  let default = Ast_iterator.default_iterator in
  let expr sub (e : Parsetree.expression) =
    let pushed =
      push_attrs ctx ~scope:Suppress.Scoped e.Parsetree.pexp_attributes
    in
    ctx.active <- pushed @ ctx.active;
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { Location.txt; loc } ->
        check_path ctx ~loc (flatten txt)
    | Parsetree.Pexp_try (_, cases) ->
        List.iter
          (fun (c : Parsetree.case) ->
            match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
            | Parsetree.Ppat_any ->
                report ctx ~rule:"exn-swallow"
                  ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc
                  "catch-all `with _ ->` discards the exception; match the \
                   specific exceptions this code expects, or bind and \
                   surface it"
            | _ -> ())
          cases
    | _ -> ());
    (* Descend.  Sort applications get special handling so that a
       [Hashtbl.fold] in argument position counts as pure aggregation;
       [x |> List.sort cmp] pipes are recognized too. *)
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, args) when is_sort_expr f ->
        sub.Ast_iterator.expr sub f;
        ctx.sort_depth <- ctx.sort_depth + 1;
        List.iter (fun (_, a) -> sub.Ast_iterator.expr sub a) args;
        ctx.sort_depth <- ctx.sort_depth - 1
    | Parsetree.Pexp_apply (f, [ (_, lhs); (_, rhs) ])
      when (match expr_path f with
           | Some [ "|>" ] -> true
           | _ -> false)
           && is_sort_expr rhs ->
        sub.Ast_iterator.expr sub f;
        sub.Ast_iterator.expr sub rhs;
        ctx.sort_depth <- ctx.sort_depth + 1;
        sub.Ast_iterator.expr sub lhs;
        ctx.sort_depth <- ctx.sort_depth - 1
    | _ -> default.Ast_iterator.expr sub e);
    pop_attrs ctx pushed
  in
  let value_binding sub (vb : Parsetree.value_binding) =
    let pushed =
      push_attrs ctx ~scope:Suppress.Scoped vb.Parsetree.pvb_attributes
    in
    ctx.active <- pushed @ ctx.active;
    default.Ast_iterator.value_binding sub vb;
    pop_attrs ctx pushed
  in
  let iter = { default with Ast_iterator.expr; value_binding } in
  iter.Ast_iterator.structure iter str;
  if respect_suppressions then
    List.iter
      (fun (s : Suppress.t) ->
        if
          (not (Suppress.used s))
          && Rules.pass_of s.Suppress.s_rule = Rules.Syntactic
        then
          ctx.out <-
            {
              Finding.file;
              line = s.Suppress.s_line;
              col = 0;
              rule = "unused-allow";
              message =
                Printf.sprintf
                  "file-level suppression of %S silences nothing; delete it"
                  s.Suppress.s_rule;
            }
            :: ctx.out)
      file_level;
  (List.sort Finding.compare ctx.out, List.rev ctx.supps)

let lint_string ~file ?respect_suppressions source =
  match parse_string ~file source with
  | str -> lint_structure ~file ?respect_suppressions str
  | exception Syntaxerr.Error _ ->
      ( [
          {
            Finding.file;
            line = 1;
            col = 0;
            rule = "parse-error";
            message = "file does not parse as an OCaml implementation";
          };
        ],
        [] )

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file ?respect_suppressions path =
  lint_string ~file:path ?respect_suppressions (read_file path)

(* ------------------------------------------------------------------ *)
(* Tree walking.  Directory entries are sorted so the report order (and
   the bench's files/s denominator) is stable across filesystems. *)

let rec collect_ml acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if String.length name = 0 || name.[0] = '.' || name = "_build"
           then acc
           else collect_ml acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths ?respect_suppressions paths =
  let files = List.rev (List.fold_left collect_ml [] paths) in
  let findings, supps =
    List.fold_left
      (fun (fs, ss) path ->
        let f, s = lint_file ?respect_suppressions path in
        (f :: fs, s :: ss))
      ([], []) files
  in
  {
    files = List.length files;
    findings = List.concat (List.rev findings);
    suppressions = List.concat (List.rev supps);
  }
