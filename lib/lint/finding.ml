(* A single diagnostic: where, which rule, and why it matters.  Kept as a
   plain record with a stable one-line rendering so tests can compare
   diagnostics textually (expect-style) and editors can jump to
   [file:line:col]. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let v ~file ~loc ~rule message =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message
