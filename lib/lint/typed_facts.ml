(* Extract per-function facts from one typedtree: allocation sites,
   call/reference edges, module-level mutable definitions and their
   uses, runtime-boundary touches, and the [@ctslint.*] annotations —
   everything Typed_check needs to judge the three typed rule families
   without walking the trees again.

   The walk mirrors the syntactic driver's suppression discipline: an
   active-allow stack follows the typedtree's attributes (they are the
   same [Parsetree.attribute] values), and each fact snapshots the
   innermost matching allow for its rule.  Whether that allow is *used*
   is decided later, by the checker, when the fact actually becomes a
   finding — so an allow on a cold path dies as unused-allow instead of
   silently sanctioning nothing. *)

type callee =
  | Local of string  (* Ident.unique_name within this unit *)
  | Global of string  (* normalized dotted path: "Dsim.Event_queue.push" *)

type ref_fact = {
  r_loc : Location.t;
  r_callee : callee;
  r_is_call : bool;  (* head of an application vs value reference *)
  r_supp_hot : Suppress.t option;  (* active hotpath-alloc allow *)
  r_supp_dom : Suppress.t option;  (* active domain-unsafe allow *)
}

type alloc = {
  a_loc : Location.t;
  a_what : string;
  a_supp : Suppress.t option;  (* active hotpath-alloc allow *)
}

type rt_use = {
  t_loc : Location.t;
  t_ident : string;
  t_supp : Suppress.t option;  (* active runtime-boundary allow *)
}

type fn_fact = {
  f_canon : string;  (* "Dsim.Event_queue.sift_up" *)
  f_uniq : string option;  (* Ident.unique_name, None for the init fact *)
  f_file : string;
  f_loc : Location.t;
  f_hotpath : bool;
  f_ret_boxed : string option;  (* Some "float"/"int64"/... if boxed *)
  mutable f_allocs : alloc list;
  mutable f_refs : ref_fact list;
  mutable f_locks : bool;  (* body takes a Mutex: lock-protected section *)
}

type global_kind = Mutable of string | Safe | Other

type global_def = {
  g_canon : string;
  g_uniq : string;
  g_file : string;
  g_loc : Location.t;
  g_kind : global_kind;
  g_owned : Suppress.t option;  (* [@ctslint.domain_owned "reason"] *)
}

type unit_facts = {
  u_file : string;
  u_modname : string;
  u_fns : fn_fact list;  (* in definition order *)
  u_globals : global_def list;
  u_runtime : rt_use list;
  u_supps : Suppress.t list;  (* typed-pass sightings, file order *)
}

(* ------------------------------------------------------------------ *)

let boxed_name (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      if Path.same p Predef.path_float then Some "float"
      else if Path.same p Predef.path_int64 then Some "int64"
      else if Path.same p Predef.path_int32 then Some "int32"
      else if Path.same p Predef.path_nativeint then Some "nativeint"
      else None
  | _ -> None

let is_arrow (ty : Types.type_expr) =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

type ctx = {
  file : string;
  modname : string;
  mutable active : Suppress.t list;
  mutable supps : Suppress.t list;  (* reverse order *)
  mutable cur : fn_fact;
  mutable fns : fn_fact list;  (* reverse order *)
  mutable globals : global_def list;  (* reverse order *)
  mutable runtime : rt_use list;  (* reverse order *)
}

let active_for ctx rule =
  List.find_opt (fun s -> String.equal s.Suppress.s_rule rule) ctx.active

(* Register an attribute sighting.  The typed pass is lenient where the
   syntactic pass is strict — malformed payloads and unknown rules are
   already [bad-suppression] findings over there; here they simply fail
   to suppress. *)
let suppression_of_attr ctx ~scope (attr : Parsetree.attribute) =
  match Suppress.parse attr with
  | Suppress.Allow { rule; reason = Some reason }
    when reason <> "" && Rules.known rule ->
      let s =
        {
          Suppress.s_file = ctx.file;
          s_line = (Suppress.loc attr).Location.loc_start.Lexing.pos_lnum;
          s_rule = rule;
          s_reason = reason;
          s_scope = scope;
          s_kind = Suppress.Allow;
          s_used_syn = false;
          s_used_typed = false;
        }
      in
      ctx.supps <- s :: ctx.supps;
      Some s
  | _ -> None

let domain_owned_of_attrs ctx attrs =
  List.fold_left
    (fun acc (attr : Parsetree.attribute) ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Suppress.parse_domain_owned attr with
          | Suppress.Owned (Some reason) when reason <> "" ->
              let s =
                {
                  Suppress.s_file = ctx.file;
                  s_line =
                    (Suppress.loc attr).Location.loc_start.Lexing.pos_lnum;
                  s_rule = "domain-unsafe";
                  s_reason = reason;
                  s_scope = Suppress.Scoped;
                  s_kind = Suppress.Domain_owned;
                  s_used_syn = false;
                  s_used_typed = false;
                }
              in
              ctx.supps <- s :: ctx.supps;
              Some s
          | _ -> None))
    None attrs

let push_attrs ctx attrs =
  let pushed =
    List.filter_map (suppression_of_attr ctx ~scope:Suppress.Scoped) attrs
  in
  ctx.active <- pushed @ ctx.active;
  pushed

let pop_attrs ctx pushed =
  List.iter
    (fun (s : Suppress.t) ->
      ctx.active <-
        List.filter
          (fun s' ->
            (s' != s)
            [@ctslint.allow
              "phys-equality"
                "removing exactly this stack entry, not a structural twin"])
          ctx.active)
    pushed

let alloc ctx ~loc what =
  ctx.cur.f_allocs <-
    { a_loc = loc; a_what = what; a_supp = active_for ctx "hotpath-alloc" }
    :: ctx.cur.f_allocs

let reference ctx ~loc ~is_call callee =
  ctx.cur.f_refs <-
    {
      r_loc = loc;
      r_callee = callee;
      r_is_call = is_call;
      r_supp_hot = active_for ctx "hotpath-alloc";
      r_supp_dom = active_for ctx "domain-unsafe";
    }
    :: ctx.cur.f_refs

(* ------------------------------------------------------------------ *)
(* Expression walk                                                     *)

let prim_of (vd : Types.value_description) =
  match vd.Types.val_kind with
  | Types.Val_prim pd -> Some pd.Primitive.prim_name
  | _ -> None

let handle_ident ctx ~is_call (path : Path.t)
    (vd : Types.value_description) (loc : Location.t) =
  let dotted = Rules.normalize_path (Path.name path) in
  if Rules.is_runtime_path (Path.name path) then
    ctx.runtime <-
      {
        t_loc = loc;
        t_ident = dotted;
        t_supp = active_for ctx "runtime-boundary";
      }
      :: ctx.runtime;
  match prim_of vd with
  | Some prim ->
      if is_call && Rules.prim_allocates prim then
        alloc ctx ~loc (Printf.sprintf "allocating primitive %s (%s)" dotted prim)
      else if is_call then ()
      else if Rules.prim_allocates prim then
        (* referencing an allocating primitive as a value both allocates
           its closure and hides the allocation behind an indirect call *)
        alloc ctx ~loc
          (Printf.sprintf "allocating primitive %s passed as a value" dotted)
  | None -> (
      if is_call && Rules.is_cold_error (Path.name path) then ()
      else
        match path with
        | Path.Pident id ->
            reference ctx ~loc ~is_call (Local (Ident.unique_name id))
        | _ -> reference ctx ~loc ~is_call (Global dotted))

let rec walk_expr ctx iter (e : Typedtree.expression) =
  let pushed = push_attrs ctx e.Typedtree.exp_attributes in
  let loc = e.Typedtree.exp_loc in
  (match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, vd) -> handle_ident ctx ~is_call:false p vd loc
  | Typedtree.Texp_apply (f, args) -> (
      (match f.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, vd) ->
          handle_ident ctx ~is_call:true p vd f.Typedtree.exp_loc;
          (* boxed arguments crossing a non-primitive call boundary are
             boxed by the caller; primitive calls stay unboxed *)
          if prim_of vd = None then
            List.iter
              (fun (_, a) ->
                match a with
                | Some (a : Typedtree.expression) -> (
                    match boxed_name a.Typedtree.exp_type with
                    | Some ty ->
                        alloc ctx ~loc:a.Typedtree.exp_loc
                          (Printf.sprintf
                             "boxed %s argument crosses a call boundary" ty)
                    | None -> ())
                | None -> ())
              args
      | _ ->
          alloc ctx ~loc:f.Typedtree.exp_loc
            "indirect call (function value; target unknown to the \
             certifier)";
          walk_expr ctx iter f);
      List.iter
        (fun (_, a) -> match a with Some a -> walk_expr ctx iter a | None -> ())
        args;
      match
        (f.Typedtree.exp_desc, is_arrow e.Typedtree.exp_type)
      with
      | Typedtree.Texp_ident (_, _, vd), true when prim_of vd = None ->
          alloc ctx ~loc "partial application builds a closure"
      | _ -> ())
  | Typedtree.Texp_function _ ->
      alloc ctx ~loc "closure construction";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_tuple _ ->
      alloc ctx ~loc "tuple allocation";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_construct (_, cd, args) ->
      if args <> [] then
        alloc ctx ~loc
          (Printf.sprintf "constructor %s allocation" cd.Types.cstr_name);
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_variant (_, Some _) ->
      alloc ctx ~loc "polymorphic variant allocation";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_record _ ->
      alloc ctx ~loc "record allocation";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_array _ ->
      alloc ctx ~loc "array literal allocation";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_lazy _ ->
      alloc ctx ~loc "lazy thunk allocation";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_letmodule _ | Typedtree.Texp_pack _
  | Typedtree.Texp_object _ ->
      alloc ctx ~loc "first-class module / object allocation";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | Typedtree.Texp_letop _ ->
      alloc ctx ~loc "binding operator allocates closures";
      Tast_iterator.default_iterator.Tast_iterator.expr iter e
  | _ -> Tast_iterator.default_iterator.Tast_iterator.expr iter e);
  pop_attrs ctx pushed

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)

let has_hotpath attrs = List.exists Suppress.is_hotpath attrs

(* Unroll the parameter chain of a top-level definition: single-case
   [fun p ->] layers are parameters (one n-ary function at runtime, no
   per-call closure); the first multi-case [function] or non-function
   node is the body. *)
let rec body_of (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function
      { cases = [ { Typedtree.c_guard = None; c_rhs; _ } ]; _ } ->
      body_of c_rhs
  | _ -> e

let classify_global_rhs (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (f, _) -> (
      match f.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, vd) -> (
          match prim_of vd with
          | Some "%makemutable" -> Mutable "ref cell"
          | _ ->
              let name = Path.name p in
              if Rules.is_safe_ctor name then Safe
              else if Rules.is_mutable_ctor name then
                Mutable (Rules.normalize_path name)
              else Other)
      | _ -> Other)
  | Typedtree.Texp_array (_ :: _) -> Mutable "array literal"
  | _ -> Other

let walk_unit (u : Cmt_loader.unit_info) =
  let init_fact prefix =
    {
      f_canon = prefix ^ ".(init)";
      f_uniq = None;
      f_file = u.Cmt_loader.ui_file;
      f_loc = Location.none;
      f_hotpath = false;
      f_ret_boxed = None;
      f_allocs = [];
      f_refs = [];
      f_locks = false;
    }
  in
  let ctx =
    {
      file = u.Cmt_loader.ui_file;
      modname = u.Cmt_loader.ui_modname;
      active = [];
      supps = [];
      cur = init_fact u.Cmt_loader.ui_modname;
      fns = [];
      globals = [];
      runtime = [];
    }
  in
  let init = ctx.cur in
  ctx.fns <- [ init ];
  (* iterator used for default descent inside walk_expr *)
  let rec iter =
    lazy
      (let d = Tast_iterator.default_iterator in
       {
         d with
         Tast_iterator.expr = (fun _ e -> walk_expr ctx (Lazy.force iter) e);
         value_binding =
           (fun sub vb ->
             (* nested lets: attributes on the binding scope its RHS *)
             let pushed = push_attrs ctx vb.Typedtree.vb_attributes in
             d.Tast_iterator.value_binding sub vb;
             pop_attrs ctx pushed);
       })
  in
  let iter = Lazy.force iter in
  let rec walk_items prefix items =
    List.iter (walk_item prefix) items
  and walk_item prefix (si : Typedtree.structure_item) =
    match si.Typedtree.str_desc with
    | Typedtree.Tstr_attribute a -> (
        (* file-level allows stay active for the rest of the walk *)
        match suppression_of_attr ctx ~scope:Suppress.File a with
        | Some s -> ctx.active <- ctx.active @ [ s ]
        | None -> ())
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let pushed = push_attrs ctx vb.Typedtree.vb_attributes in
            (* a binding with a type annotation ([let nil : ty = ...])
               elaborates to Tpat_alias over the constraint; both shapes
               bind one ident *)
            (match
               match vb.Typedtree.vb_pat.Typedtree.pat_desc with
               | Typedtree.Tpat_var (id, _) -> Some id
               | Typedtree.Tpat_alias (_, id, _) -> Some id
               | _ -> None
             with
            | Some id -> (
                let name = Ident.name id in
                let canon = prefix ^ "." ^ name in
                let body = body_of vb.Typedtree.vb_expr in
                let unrolled =
                  (body != vb.Typedtree.vb_expr)
                  [@ctslint.allow
                    "phys-equality"
                      "checking whether body_of unrolled at least one \
                       parameter layer, i.e. node identity"]
                in
                let is_fn =
                  unrolled || is_arrow vb.Typedtree.vb_expr.Typedtree.exp_type
                in
                if is_fn then begin
                  let fact =
                    {
                      f_canon = canon;
                      f_uniq = Some (Ident.unique_name id);
                      f_file = ctx.file;
                      f_loc = vb.Typedtree.vb_loc;
                      f_hotpath = has_hotpath vb.Typedtree.vb_attributes;
                      f_ret_boxed = boxed_name body.Typedtree.exp_type;
                      f_allocs = [];
                      f_refs = [];
                      f_locks = false;
                    }
                  in
                  ctx.fns <- fact :: ctx.fns;
                  let saved = ctx.cur in
                  ctx.cur <- fact;
                  (* walk the body only: the parameter chain itself is
                     the function's static code, not an allocation *)
                  (match body.Typedtree.exp_desc with
                  | Typedtree.Texp_function { cases; _ } ->
                      List.iter
                        (fun (c : Typedtree.value Typedtree.case) ->
                          (match c.Typedtree.c_guard with
                          | Some g -> walk_expr ctx iter g
                          | None -> ());
                          walk_expr ctx iter c.Typedtree.c_rhs)
                        cases
                  | _ -> walk_expr ctx iter body);
                  ctx.cur <- saved
                end
                else begin
                  let owned =
                    domain_owned_of_attrs ctx vb.Typedtree.vb_attributes
                  in
                  ctx.globals <-
                    {
                      g_canon = canon;
                      g_uniq = Ident.unique_name id;
                      g_file = ctx.file;
                      g_loc = vb.Typedtree.vb_loc;
                      g_kind = classify_global_rhs vb.Typedtree.vb_expr;
                      g_owned = owned;
                    }
                    :: ctx.globals;
                  walk_expr ctx iter vb.Typedtree.vb_expr
                end)
            | _ -> walk_expr ctx iter vb.Typedtree.vb_expr);
            pop_attrs ctx pushed)
          vbs
    | Typedtree.Tstr_eval (e, attrs) ->
        let pushed = push_attrs ctx attrs in
        walk_expr ctx iter e;
        pop_attrs ctx pushed
    | Typedtree.Tstr_module mb -> walk_module prefix mb
    | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
    | _ -> ()
  and walk_module prefix (mb : Typedtree.module_binding) =
    let sub =
      match mb.Typedtree.mb_id with
      | Some id -> prefix ^ "." ^ Ident.name id
      | None -> prefix
    in
    let rec go (me : Typedtree.module_expr) =
      match me.Typedtree.mod_desc with
      | Typedtree.Tmod_structure str ->
          walk_items sub str.Typedtree.str_items
      | Typedtree.Tmod_constraint (me, _, _, _) -> go me
      | Typedtree.Tmod_functor (_, me) -> go me
      | _ -> ()
    in
    go mb.Typedtree.mb_expr
  in
  walk_items u.Cmt_loader.ui_modname
    u.Cmt_loader.ui_str.Typedtree.str_items;
  (* lock-protected sections: a function that takes a Mutex is treated
     as a critical section for the globals it touches *)
  List.iter
    (fun f ->
      if
        List.exists
          (fun r ->
            r.r_is_call
            &&
            match r.r_callee with
            | Global g -> g = "Mutex.lock" || g = "Mutex.protect"
            | Local _ -> false)
          f.f_refs
      then f.f_locks <- true)
    ctx.fns;
  {
    u_file = ctx.file;
    u_modname = ctx.modname;
    u_fns = List.rev ctx.fns;
    u_globals = List.rev ctx.globals;
    u_runtime = List.rev ctx.runtime;
    u_supps = List.rev ctx.supps;
  }
