(* Discover and load the typedtrees the typed pass runs on.

   Dune's default build already passes [-bin-annot], so every compiled
   module leaves a .cmt under [_build/default/**/.*.objs/byte/].  We walk
   that tree, read each .cmt with [Cmt_format.read_cmt], and keep the
   implementation typedtrees together with the *source* path the
   compiler recorded ([cmt_sourcefile] is relative to the build context
   root, e.g. "lib/dsim/event_queue.ml") — which is exactly the path
   vocabulary the syntactic pass and the suppression inventory use.

   Generated wrapper modules (dune's "dsim.ml-gen" alias files) carry no
   user code and are skipped.  A .cmt written by a different compiler
   version fails to unmarshal; that is reported as a [cmt-error] finding
   rather than crashing the lint. *)

type unit_info = {
  ui_file : string;  (* source path, build-context-relative *)
  ui_modname : string;  (* normalized: "Dsim.Event_queue" *)
  ui_str : Typedtree.structure;
}

let normalize_modname = Rules.normalize_path

(* The build context root: [_build/default] under [root] when we run
   from a checkout, or [root] itself when we already run *inside* the
   context (the @lint-typed dune action does). *)
let find_build_dir root =
  let candidate = Filename.concat (Filename.concat root "_build") "default" in
  if Sys.file_exists candidate && Sys.is_directory candidate then
    Some candidate
  else if
    (* inside a build context there is no nested _build, but the .objs
       directories are right here *)
    Sys.file_exists (Filename.concat root "lib")
  then Some root
  else None

let rec collect_cmt acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if String.length name = 0 then acc
           else if name = "_build" then acc
           else collect_cmt acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let load_cmt path =
  match Cmt_format.read_cmt path with
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when not (Filename.check_suffix src ".ml-gen") ->
          Ok
            (Some
               {
                 ui_file = src;
                 ui_modname = normalize_modname cmt.Cmt_format.cmt_modname;
                 ui_str = str;
               })
      | _ -> Ok None (* interface-only, packed, or generated wrapper *))
  | exception _ ->
      Error
        {
          Finding.file = path;
          line = 1;
          col = 0;
          rule = "cmt-error";
          message =
            "cannot read .cmt (compiler version mismatch? rebuild with \
             `dune build`)";
        }

(* Load every implementation .cmt under [build_dir].  Units are sorted
   and de-duplicated by source file (a module compiled into several
   executables leaves several identical cmts) so the analysis and its
   report order are stable. *)
let load_build_dir build_dir =
  let cmts = List.rev (collect_cmt [] build_dir) in
  let seen = Hashtbl.create 128 in
  let units, errors =
    List.fold_left
      (fun (us, es) path ->
        match load_cmt path with
        | Ok (Some u) ->
            if Hashtbl.mem seen u.ui_file then (us, es)
            else begin
              Hashtbl.add seen u.ui_file ();
              (u :: us, es)
            end
        | Ok None -> (us, es)
        | Error e -> (us, e :: es))
      ([], []) cmts
  in
  ( List.sort (fun a b -> String.compare a.ui_file b.ui_file) units,
    List.rev errors )

(* Restrict to units whose source lives under one of [paths] (normalized
   to build-context-relative, "lib/dsim" style). *)
let under_paths paths units =
  let norm p =
    let p =
      if Filename.is_relative p then p
      else Filename.basename p (* best effort for absolute args *)
    in
    if Filename.check_suffix p "/" then Filename.chop_suffix p "/" else p
  in
  let paths = List.map norm paths in
  List.filter
    (fun u ->
      List.exists
        (fun p ->
          let lp = String.length p in
          String.length u.ui_file > lp
          && String.sub u.ui_file 0 lp = p
          && (u.ui_file.[lp] = '/' || p = ""))
        paths)
    units
