(* Judge the typed rule families over the facts Typed_facts extracted.

   hotpath-alloc — every [@ctslint.hotpath] root must be transitively
   allocation-free.  Certification is a memoized, co-inductive DFS over
   the resolved call/reference graph: a function is certified when its
   own body places nothing on the heap AND everything it calls or
   captures is certified.  Recursive cycles (sift loops) assume the
   in-progress callee is certified — sound here because the callee's
   own faults still fail it.  A [@ctslint.allow "hotpath-alloc" ...] on
   a call site is a *certified-region boundary*: the callee behind it
   is deliberately not followed (that is how the indirect handler call
   in [fire_min_exn] and the gated observability hooks are sanctioned).

   domain-unsafe — starting from every function defined in
   [Rules.domain_root_files] (the pool's worker code), walk the same
   resolved edges and flag reads/writes of module-level mutable state
   that are not DLS-backed, not made inside a lock-taking function, and
   not declared [@ctslint.domain_owned].

   runtime-boundary — wall-clock/host-I/O identifiers recorded during
   the walk are findings outside the declared runtime namespace.

   All three mark the allows they consume ([s_used_typed]), and allows
   for typed rules that silenced nothing in a walked unit become
   [unused-allow] findings here — the syntactic pass deliberately
   leaves that judgment to us. *)

type resolved =
  | RFn of Typed_facts.fn_fact
  | RGlob of Typed_facts.global_def
  | RVar  (* local variable, parameter, or nested let *)
  | RExtern of string  (* outside the analyzed tree *)

type result = {
  r_findings : Finding.t list;  (* sorted by file/line/col *)
  r_supps : Suppress.t list;  (* typed-pass sightings, used flags set *)
  r_roots : (Typed_facts.fn_fact * bool) list;  (* hot roots, certified? *)
  r_certified : string list;  (* every certified function, sorted *)
  r_units : int;
  r_fns : int;
}

type env = {
  fn_by_canon : (string, Typed_facts.fn_fact) Hashtbl.t;
  fn_by_local : (string * string, Typed_facts.fn_fact) Hashtbl.t;
  glob_by_canon : (string, Typed_facts.global_def) Hashtbl.t;
  glob_by_local : (string * string, Typed_facts.global_def) Hashtbl.t;
  owner : (string, Typed_facts.unit_facts) Hashtbl.t;  (* fn canon -> unit *)
  respect : bool;
  mutable out : Finding.t list;
}

let build_env ~respect (units : Typed_facts.unit_facts list) =
  let env =
    {
      fn_by_canon = Hashtbl.create 512;
      fn_by_local = Hashtbl.create 512;
      glob_by_canon = Hashtbl.create 64;
      glob_by_local = Hashtbl.create 64;
      owner = Hashtbl.create 512;
      respect;
      out = [];
    }
  in
  List.iter
    (fun (u : Typed_facts.unit_facts) ->
      List.iter
        (fun (f : Typed_facts.fn_fact) ->
          Hashtbl.replace env.fn_by_canon f.Typed_facts.f_canon f;
          Hashtbl.replace env.owner f.Typed_facts.f_canon u;
          match f.Typed_facts.f_uniq with
          | Some uq ->
              Hashtbl.replace env.fn_by_local (u.Typed_facts.u_modname, uq) f
          | None -> ())
        u.Typed_facts.u_fns;
      List.iter
        (fun (g : Typed_facts.global_def) ->
          Hashtbl.replace env.glob_by_canon g.Typed_facts.g_canon g;
          Hashtbl.replace env.glob_by_local
            (u.Typed_facts.u_modname, g.Typed_facts.g_uniq)
            g)
        u.Typed_facts.u_globals)
    units;
  env

let resolve env (u : Typed_facts.unit_facts) (r : Typed_facts.ref_fact) =
  match r.Typed_facts.r_callee with
  | Typed_facts.Local uq -> (
      match
        Hashtbl.find_opt env.fn_by_local (u.Typed_facts.u_modname, uq)
      with
      | Some f -> RFn f
      | None -> (
          match
            Hashtbl.find_opt env.glob_by_local (u.Typed_facts.u_modname, uq)
          with
          | Some g -> RGlob g
          | None -> RVar))
  | Typed_facts.Global dotted -> (
      match Hashtbl.find_opt env.fn_by_canon dotted with
      | Some f -> RFn f
      | None -> (
          match Hashtbl.find_opt env.glob_by_canon dotted with
          | Some g -> RGlob g
          | None -> RExtern dotted))

let emit env ~file ~(loc : Location.t) ~rule msg =
  env.out <- Finding.v ~file ~loc ~rule msg :: env.out

(* A fault is silenced by its captured allow; consuming the allow marks
   it used either way, and --no-suppressions re-surfaces the finding. *)
let fault env ~file ~loc ~rule ~(supp : Suppress.t option) msg =
  match supp with
  | Some s ->
      s.Suppress.s_used_typed <- true;
      if not env.respect then emit env ~file ~loc ~rule msg;
      false
  | None ->
      emit env ~file ~loc ~rule msg;
      true

(* ------------------------------------------------------------------ *)
(* hotpath-alloc certification                                         *)

type cert_state = In_progress | Done of bool

let certify env =
  let states : (string, cert_state) Hashtbl.t = Hashtbl.create 128 in
  let rec go (f : Typed_facts.fn_fact) =
    match Hashtbl.find_opt states f.Typed_facts.f_canon with
    | Some (Done ok) -> ok
    | Some In_progress -> true (* co-inductive: cycles are fine *)
    | None ->
        Hashtbl.replace states f.Typed_facts.f_canon In_progress;
        let u =
          match Hashtbl.find_opt env.owner f.Typed_facts.f_canon with
          | Some u -> u
          | None -> assert false
        in
        let file = f.Typed_facts.f_file in
        let rule = "hotpath-alloc" in
        let faulted = ref false in
        (match f.Typed_facts.f_ret_boxed with
        | Some ty ->
            if
              fault env ~file ~loc:f.Typed_facts.f_loc ~rule ~supp:None
                (Printf.sprintf
                   "%s returns a boxed %s: the box is allocated on every \
                    call"
                   f.Typed_facts.f_canon ty)
            then faulted := true
        | None -> ());
        List.iter
          (fun (a : Typed_facts.alloc) ->
            if
              fault env ~file ~loc:a.Typed_facts.a_loc ~rule
                ~supp:a.Typed_facts.a_supp
                (Printf.sprintf "%s: %s" f.Typed_facts.f_canon
                   a.Typed_facts.a_what)
            then faulted := true)
          f.Typed_facts.f_allocs;
        List.iter
          (fun (r : Typed_facts.ref_fact) ->
            match r.Typed_facts.r_supp_hot with
            | Some s ->
                (* certified-region boundary: the callee behind an
                   allowed edge is deliberately not followed *)
                s.Suppress.s_used_typed <- true
            | None -> (
                match resolve env u r with
                | RGlob _ -> () (* reading a global is free *)
                | RFn callee ->
                    if not (go callee) then begin
                      ignore
                        (fault env ~file ~loc:r.Typed_facts.r_loc ~rule
                           ~supp:None
                           (Printf.sprintf
                              "%s %s %s, which is not allocation-free"
                              f.Typed_facts.f_canon
                              (if r.Typed_facts.r_is_call then "calls"
                               else "captures")
                              callee.Typed_facts.f_canon)
                          : bool);
                      faulted := true
                    end
                | RVar ->
                    if r.Typed_facts.r_is_call then begin
                      ignore
                        (fault env ~file ~loc:r.Typed_facts.r_loc ~rule
                           ~supp:None
                           (Printf.sprintf
                              "%s calls a local function value; the \
                               certifier cannot see the target"
                              f.Typed_facts.f_canon)
                          : bool);
                      faulted := true
                    end
                | RExtern name ->
                    if r.Typed_facts.r_is_call then begin
                      ignore
                        (fault env ~file ~loc:r.Typed_facts.r_loc ~rule
                           ~supp:None
                           (Printf.sprintf
                              "%s calls %s, which is outside the certified \
                               set"
                              f.Typed_facts.f_canon name)
                          : bool);
                      faulted := true
                    end))
          f.Typed_facts.f_refs;
        let ok = not !faulted in
        Hashtbl.replace states f.Typed_facts.f_canon (Done ok);
        ok
  in
  (go, states)

(* ------------------------------------------------------------------ *)
(* domain-unsafe reachability                                          *)

let domain_check env (units : Typed_facts.unit_facts list) =
  let roots =
    List.concat_map
      (fun (u : Typed_facts.unit_facts) ->
        if Rules.is_domain_root_file u.Typed_facts.u_file then
          u.Typed_facts.u_fns
        else [])
      units
  in
  (* reachable closure over call AND capture edges: a task closure handed
     to a worker runs there even though it is never "called" in pool.ml *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 128 in
  let rec visit (f : Typed_facts.fn_fact) =
    if not (Hashtbl.mem seen f.Typed_facts.f_canon) then begin
      Hashtbl.replace seen f.Typed_facts.f_canon ();
      let u =
        match Hashtbl.find_opt env.owner f.Typed_facts.f_canon with
        | Some u -> u
        | None -> assert false
      in
      List.iter
        (fun (r : Typed_facts.ref_fact) ->
          match resolve env u r with
          | RFn g -> visit g
          | RGlob g -> (
              match g.Typed_facts.g_kind with
              | Typed_facts.Safe | Typed_facts.Other -> ()
              | Typed_facts.Mutable what -> (
                  match g.Typed_facts.g_owned with
                  | Some s -> s.Suppress.s_used_typed <- true
                  | None ->
                      if f.Typed_facts.f_locks then ()
                        (* accessed by a lock-taking function: treated
                           as a protected critical section *)
                      else
                        ignore
                          (fault env ~file:f.Typed_facts.f_file
                             ~loc:r.Typed_facts.r_loc ~rule:"domain-unsafe"
                             ~supp:r.Typed_facts.r_supp_dom
                             (Printf.sprintf
                                "%s reaches %s (%s, defined at %s:%d) from \
                                 pool worker code; make it DLS, guard it \
                                 with a lock, or declare \
                                 [@ctslint.domain_owned]"
                                f.Typed_facts.f_canon g.Typed_facts.g_canon
                                what g.Typed_facts.g_file
                                g.Typed_facts.g_loc.Location.loc_start
                                  .Lexing.pos_lnum)
                            : bool)))
          | RVar | RExtern _ -> ())
        f.Typed_facts.f_refs
    end
  in
  List.iter visit roots

(* ------------------------------------------------------------------ *)

let runtime_check env (units : Typed_facts.unit_facts list) =
  let rule = Rules.find "runtime-boundary" in
  List.iter
    (fun (u : Typed_facts.unit_facts) ->
      if not (Rules.exempt rule ~file:u.Typed_facts.u_file) then
        List.iter
          (fun (t : Typed_facts.rt_use) ->
            ignore
              (fault env ~file:u.Typed_facts.u_file ~loc:t.Typed_facts.t_loc
                 ~rule:"runtime-boundary" ~supp:t.Typed_facts.t_supp
                 (Printf.sprintf
                    "%s is a runtime (wall-clock / host I/O) call outside \
                     the declared runtime layer (lib/rt_real)"
                    t.Typed_facts.t_ident)
                : bool))
          u.Typed_facts.u_runtime)
    units

(* Allows for typed rules that silenced nothing — judged only here,
   because only the typed pass knows whether they could have fired.
   [@ctslint.domain_owned] declarations are load-bearing metadata, not
   suppressions, and are exempt. *)
let unused_check env (units : Typed_facts.unit_facts list) =
  List.iter
    (fun (u : Typed_facts.unit_facts) ->
      List.iter
        (fun (s : Suppress.t) ->
          if
            s.Suppress.s_kind = Suppress.Allow
            && Rules.pass_of s.Suppress.s_rule = Rules.Typed
            && not (Suppress.used s)
            && env.respect
          then
            env.out <-
              {
                Finding.file = u.Typed_facts.u_file;
                line = s.Suppress.s_line;
                col = 0;
                rule = "unused-allow";
                message =
                  Printf.sprintf
                    "suppression of %S silences nothing; delete it"
                    s.Suppress.s_rule;
              }
              :: env.out)
        u.Typed_facts.u_supps)
    units

(* ------------------------------------------------------------------ *)

let analyze ?(respect_suppressions = true)
    (units : Typed_facts.unit_facts list) =
  let env = build_env ~respect:respect_suppressions units in
  let go, states = certify env in
  let roots =
    List.concat_map
      (fun (u : Typed_facts.unit_facts) ->
        List.filter
          (fun (f : Typed_facts.fn_fact) -> f.Typed_facts.f_hotpath)
          u.Typed_facts.u_fns)
      units
  in
  let roots = List.map (fun f -> (f, go f)) roots in
  domain_check env units;
  runtime_check env units;
  unused_check env units;
  let certified =
    Hashtbl.fold
      (fun canon st acc ->
        match st with Done true -> canon :: acc | _ -> acc)
      states []
    |> List.sort String.compare
  in
  let n_fns =
    List.fold_left
      (fun n (u : Typed_facts.unit_facts) ->
        n + List.length u.Typed_facts.u_fns)
      0 units
  in
  {
    r_findings = List.sort Finding.compare env.out;
    r_supps = List.concat_map (fun u -> u.Typed_facts.u_supps) units;
    r_roots =
      List.sort
        (fun ((a : Typed_facts.fn_fact), _) (b, _) ->
          String.compare a.Typed_facts.f_canon b.Typed_facts.f_canon)
        roots;
    r_certified = certified;
    r_units = List.length units;
    r_fns = n_fns;
  }

(* ------------------------------------------------------------------ *)

(* Human-readable certification inventory for --hotpath-report: every
   annotated root, its verdict, and the full certified set the roots
   pulled in.  This list is the static half of the static-vs-dynamic
   cross-check in test/test_lint_typed.ml. *)
let hotpath_report (r : result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "hot-path allocation certificate\n";
  Buffer.add_string b
    (Printf.sprintf "  %d unit(s) analyzed, %d function(s), %d root(s)\n"
       r.r_units r.r_fns (List.length r.r_roots));
  List.iter
    (fun ((f : Typed_facts.fn_fact), ok) ->
      Buffer.add_string b
        (Printf.sprintf "  root %-42s %s  (%s:%d)\n" f.Typed_facts.f_canon
           (if ok then "CERTIFIED" else "FAILED")
           f.Typed_facts.f_file
           f.Typed_facts.f_loc.Location.loc_start.Lexing.pos_lnum))
    r.r_roots;
  Buffer.add_string b
    (Printf.sprintf "  certified set (%d):\n" (List.length r.r_certified));
  List.iter
    (fun c -> Buffer.add_string b (Printf.sprintf "    %s\n" c))
    r.r_certified;
  Buffer.contents b
