(* Explicit, auditable suppression of lint findings.

   A finding is silenced only by an attribute naming the rule *and* a
   reason:

     (c != t.nil_cell) [@ctslint.allow "phys-equality" "pool sentinel"]

   scoped to the annotated expression (or [let] binding, via
   [@@ctslint.allow ...]); or for a whole file:

     [@@@ctslint.allow "wall-clock" "benchmarks time real elapsed time"]

   A suppression without a reason, with a malformed payload, or naming an
   unknown rule is itself a finding ([bad-suppression]), and a suppression
   that silences nothing is flagged too ([unused-allow]) — so the set
   printed by [ctslint --list-suppressions] is exactly the set of live,
   justified exceptions to the determinism contract.

   Rules are enforced by one of two passes (syntactic parsetree walk vs
   typed .cmt analysis), and a suppression records *which pass consumed
   it*: when a rule moves between passes, the unused-allow judgment
   follows it instead of going stale.  An allow for a typed rule is only
   judged unused when the typed pass actually ran over its file.

   Two sibling annotations ride the same machinery:

     let stats = ref [] [@@ctslint.domain_owned "reason"]

   declares module-level mutable state as intentionally shared (checked
   by the typed domain-unsafe rule), and [@@ctslint.hotpath] (no
   payload) marks a function whose transitive call graph must be
   allocation-free. *)

type scope = File | Scoped
type kind = Allow | Domain_owned

type t = {
  s_file : string;
  s_line : int;
  s_rule : string;
  s_reason : string;
  s_scope : scope;
  s_kind : kind;
  mutable s_used_syn : bool;  (* consumed by the syntactic pass *)
  mutable s_used_typed : bool;  (* consumed by the typed pass *)
}

let used t = t.s_used_syn || t.s_used_typed

(* Which pass(es) consumed this suppression, for the inventory. *)
let pass_label t =
  match (t.s_used_syn, t.s_used_typed) with
  | true, true -> "both passes"
  | true, false -> "syntactic"
  | false, true -> "typed"
  | false, false -> "unused"

type parsed =
  | Not_allow  (* some other attribute; ignore *)
  | Allow of { rule : string; reason : string option }
  | Malformed of string

let attr_name = "ctslint.allow"
let hotpath_attr = "ctslint.hotpath"
let domain_owned_attr = "ctslint.domain_owned"

let string_const (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Payload shapes accepted: ["rule" "reason"] (juxtaposition), a tuple
   ["rule", "reason"], or a lone ["rule"] (which is then rejected for the
   missing reason, with a pointed message). *)
let parse (attr : Parsetree.attribute) =
  if not (String.equal attr.Parsetree.attr_name.Location.txt attr_name) then
    Not_allow
  else
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [ { Parsetree.pstr_desc = Parsetree.Pstr_eval (e, _); _ } ] -> (
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (f, [ (Asttypes.Nolabel, arg) ]) -> (
            match (string_const f, string_const arg) with
            | Some rule, Some reason -> Allow { rule; reason = Some reason }
            | _ -> Malformed "expected two string literals: rule and reason")
        | Parsetree.Pexp_tuple [ a; b ] -> (
            match (string_const a, string_const b) with
            | Some rule, Some reason -> Allow { rule; reason = Some reason }
            | _ -> Malformed "expected two string literals: rule and reason")
        | _ -> (
            match string_const e with
            | Some rule -> Allow { rule; reason = None }
            | None ->
                Malformed "expected two string literals: rule and reason"))
    | _ -> Malformed "expected two string literals: rule and reason"

(* [@ctslint.hotpath] takes no payload. *)
let is_hotpath (attr : Parsetree.attribute) =
  String.equal attr.Parsetree.attr_name.Location.txt hotpath_attr

type owned = Not_owned | Owned of string option (* reason *)

(* [@ctslint.domain_owned "reason"] — a single string literal. *)
let parse_domain_owned (attr : Parsetree.attribute) =
  if
    not
      (String.equal attr.Parsetree.attr_name.Location.txt domain_owned_attr)
  then Not_owned
  else
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [ { Parsetree.pstr_desc = Parsetree.Pstr_eval (e, _); _ } ] ->
        Owned (string_const e)
    | _ -> Owned None

let loc (attr : Parsetree.attribute) = attr.Parsetree.attr_loc

(* Merge key: one source attribute can be seen by both passes (each walks
   its own tree); the report unifies the two sightings. *)
let key t = (t.s_file, t.s_line, t.s_rule)

let merge_into ~(into : t list) (extra : t list) =
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl (key s) s) into;
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl (key s) with
      | Some s0 ->
          s0.s_used_syn <- s0.s_used_syn || s.s_used_syn;
          s0.s_used_typed <- s0.s_used_typed || s.s_used_typed
      | None -> Hashtbl.replace tbl (key s) s)
    extra;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b ->
         let c = String.compare a.s_file b.s_file in
         if c <> 0 then c
         else
           let c = Int.compare a.s_line b.s_line in
           if c <> 0 then c else String.compare a.s_rule b.s_rule)

let to_string t =
  Printf.sprintf "%s:%d: %s %s — %s%s [%s]" t.s_file t.s_line
    (match t.s_kind with Allow -> "allow" | Domain_owned -> "domain_owned")
    t.s_rule t.s_reason
    (match t.s_scope with File -> " (file-wide)" | Scoped -> "")
    (pass_label t)
