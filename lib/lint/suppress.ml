(* Explicit, auditable suppression of lint findings.

   A finding is silenced only by an attribute naming the rule *and* a
   reason:

     (c != t.nil_cell) [@ctslint.allow "phys-equality" "pool sentinel"]

   scoped to the annotated expression (or [let] binding, via
   [@@ctslint.allow ...]); or for a whole file:

     [@@@ctslint.allow "wall-clock" "benchmarks time real elapsed time"]

   A suppression without a reason, with a malformed payload, or naming an
   unknown rule is itself a finding ([bad-suppression]), and a suppression
   that silences nothing is flagged too ([unused-allow]) — so the set
   printed by [ctslint --list-suppressions] is exactly the set of live,
   justified exceptions to the determinism contract. *)

type scope = File | Scoped

type t = {
  s_file : string;
  s_line : int;
  s_rule : string;
  s_reason : string;
  s_scope : scope;
  mutable s_used : bool;
}

type parsed =
  | Not_allow  (* some other attribute; ignore *)
  | Allow of { rule : string; reason : string option }
  | Malformed of string

let attr_name = "ctslint.allow"

let string_const (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Payload shapes accepted: ["rule" "reason"] (juxtaposition), a tuple
   ["rule", "reason"], or a lone ["rule"] (which is then rejected for the
   missing reason, with a pointed message). *)
let parse (attr : Parsetree.attribute) =
  if not (String.equal attr.Parsetree.attr_name.Location.txt attr_name) then
    Not_allow
  else
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [ { Parsetree.pstr_desc = Parsetree.Pstr_eval (e, _); _ } ] -> (
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (f, [ (Asttypes.Nolabel, arg) ]) -> (
            match (string_const f, string_const arg) with
            | Some rule, Some reason -> Allow { rule; reason = Some reason }
            | _ -> Malformed "expected two string literals: rule and reason")
        | Parsetree.Pexp_tuple [ a; b ] -> (
            match (string_const a, string_const b) with
            | Some rule, Some reason -> Allow { rule; reason = Some reason }
            | _ -> Malformed "expected two string literals: rule and reason")
        | _ -> (
            match string_const e with
            | Some rule -> Allow { rule; reason = None }
            | None ->
                Malformed "expected two string literals: rule and reason"))
    | _ -> Malformed "expected two string literals: rule and reason"

let loc (attr : Parsetree.attribute) = attr.Parsetree.attr_loc

let to_string t =
  Printf.sprintf "%s:%d: allow %s — %s%s" t.s_file t.s_line t.s_rule
    t.s_reason
    (match t.s_scope with File -> " (file-wide)" | Scoped -> "")
