(* The determinism contract, as executable rules.

   The paper's premise (§1, §3) is that replica consistency dies the
   moment application code reads a nondeterministic source directly —
   that is why CCS interposes gettimeofday()/time()/ftime().  Our whole
   stack leans on the same contract: dsim replay, mc schedule
   exploration, the multicore pool's identical-at-any-N merge and the
   obs trace monotonicity checker all assume a run is a pure function of
   its seed and schedule.  Each rule below names one way that assumption
   silently breaks. *)

type t = {
  name : string;
  summary : string;
  allowed_in : string list;
      (* path fragments ("lib/clock/", "lib/mc/pool.ml"): files matching
         any fragment are exempt — the hard whitelist, as opposed to the
         per-site [@ctslint.allow] escape hatch *)
}

let all =
  [
    {
      name = "wall-clock";
      summary =
        "real-time reads (Unix.gettimeofday/time/sleep, Sys.time, \
         monotonic-clock) outside lib/clock";
      allowed_in = [ "lib/clock/" ];
    };
    {
      name = "hash-order";
      summary =
        "Hashtbl.iter/fold whose callback order escapes (handlers, sends, \
         list construction) — hash-bucket order is not deterministic";
      allowed_in = [];
    };
    {
      name = "unseeded-random";
      summary = "ambient Random outside lib/dsim's seeded Rng breaks replay";
      allowed_in = [ "lib/dsim/rng.ml" ];
    };
    {
      name = "phys-equality";
      summary =
        "physical equality (==/!=) is representation-dependent; sanctioned \
         sentinel checks must be annotated";
      allowed_in = [];
    };
    {
      name = "exn-swallow";
      summary = "`with _ ->` discards the exception it caught";
      allowed_in = [];
    };
    {
      name = "domain-hygiene";
      summary =
        "Domain.spawn/self/join outside Mc.Pool bypasses the deterministic \
         merge";
      allowed_in = [ "lib/mc/pool.ml" ];
    };
    {
      name = "bad-suppression";
      summary =
        "[@ctslint.allow] with a missing reason, malformed payload, or \
         unknown rule name";
      allowed_in = [];
    };
    {
      name = "unused-allow";
      summary = "[@ctslint.allow] that suppresses nothing";
      allowed_in = [];
    };
  ]

let known name = List.exists (fun r -> String.equal r.name name) all
let find name = List.find (fun r -> String.equal r.name name) all

(* Path fragments use '/' regardless of platform; [file] is the path the
   driver was given (absolute or root-relative). *)
let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let exempt rule ~file =
  List.exists (fun frag -> contains_substring ~sub:frag file) rule.allowed_in

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

(* [matches_suffix ~path pat] — does the dotted path end with the dotted
   pattern?  ["Mc"; "Explore"; "wall"] matches "Explore.wall"; matching
   on the suffix keeps aliases like [module E = Explore] honest as long
   as the final components are spelled out. *)
let matches_suffix ~path pat =
  let pat = String.split_on_char '.' pat in
  let np = List.length path and nq = List.length pat in
  np >= nq
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  List.equal String.equal (drop (np - nq) path) pat

let wall_clock_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.sleep";
    "Unix.sleepf";
    "Sys.time";
    "Monotonic_clock.now";
    (* project wrappers around the monotonic clock: calling them is a
       real-time read too, and must be just as visible *)
    "Explore.wall";
    "Explore.cpu";
    "Attrib.now_ns";
  ]

let domain_idents = [ "Domain.spawn"; "Domain.self"; "Domain.join" ]

type classified =
  | Clean
  | Wall_clock of string
  | Hash_iter
  | Hash_fold
  | Random_use of string
  | Phys_eq of string
  | Domain_use of string

let classify path =
  match path with
  | [ ("==" | "!=") ] -> Phys_eq (List.hd path)
  | "Random" :: _ :: _ -> Random_use (String.concat "." path)
  | _ ->
      if matches_suffix ~path "Hashtbl.iter" then Hash_iter
      else if matches_suffix ~path "Hashtbl.fold" then Hash_fold
      else if
        List.exists (fun p -> matches_suffix ~path p) wall_clock_idents
      then Wall_clock (String.concat "." path)
      else if List.exists (fun p -> matches_suffix ~path p) domain_idents
      then Domain_use (String.concat "." path)
      else Clean

(* Order-restoring consumers: a [Hashtbl.fold] whose result feeds one of
   these directly is pure aggregation — the hash order is erased before
   it can escape. *)
let sort_idents =
  [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]

let is_sort_path path =
  List.exists (fun p -> matches_suffix ~path p) sort_idents
