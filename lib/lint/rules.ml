(* The determinism contract, as executable rules.

   The paper's premise (§1, §3) is that replica consistency dies the
   moment application code reads a nondeterministic source directly —
   that is why CCS interposes gettimeofday()/time()/ftime().  Our whole
   stack leans on the same contract: dsim replay, mc schedule
   exploration, the multicore pool's identical-at-any-N merge and the
   obs trace monotonicity checker all assume a run is a pure function of
   its seed and schedule.  Each rule below names one way that assumption
   silently breaks. *)

(* Which analysis pass enforces a rule.  Syntactic rules run on the
   parsetree of every .ml; typed rules need the typedtree (.cmt files
   from the bin-annot build) — see Typed_facts / Typed_check. *)
type pass = Syntactic | Typed

type t = {
  name : string;
  summary : string;
  pass : pass;
  allowed_in : string list;
      (* path fragments ("lib/clock/", "lib/mc/pool.ml"): files matching
         any fragment are exempt — the hard whitelist, as opposed to the
         per-site [@ctslint.allow] escape hatch *)
}

let all =
  [
    {
      name = "wall-clock";
      summary =
        "real-time reads (Unix.gettimeofday/time/sleep, Sys.time, \
         monotonic-clock) outside lib/clock";
      pass = Syntactic;
      allowed_in = [ "lib/clock/" ];
    };
    {
      name = "hash-order";
      summary =
        "Hashtbl.iter/fold whose callback order escapes (handlers, sends, \
         list construction) — hash-bucket order is not deterministic";
      pass = Syntactic;
      allowed_in = [];
    };
    {
      name = "unseeded-random";
      summary = "ambient Random outside lib/dsim's seeded Rng breaks replay";
      pass = Syntactic;
      allowed_in = [ "lib/dsim/rng.ml" ];
    };
    {
      name = "phys-equality";
      summary =
        "physical equality (==/!=) is representation-dependent; sanctioned \
         sentinel checks must be annotated";
      pass = Syntactic;
      allowed_in = [];
    };
    {
      name = "exn-swallow";
      summary = "`with _ ->` discards the exception it caught";
      pass = Syntactic;
      allowed_in = [];
    };
    {
      name = "domain-hygiene";
      summary =
        "Domain.spawn/self/join outside Mc.Pool bypasses the deterministic \
         merge";
      pass = Syntactic;
      allowed_in = [ "lib/mc/pool.ml" ];
    };
    {
      name = "hotpath-alloc";
      summary =
        "a [@ctslint.hotpath] function (or a callee on its certified call \
         graph) allocates: closures, tuples/records/variants, partial \
         application, boxed float/int64 escapes, or calls out of the \
         certified set";
      pass = Typed;
      allowed_in = [];
    };
    {
      name = "domain-unsafe";
      summary =
        "module-level mutable state reachable from Mc.Pool worker code \
         that is neither domain-local (DLS), lock-protected, nor \
         annotated [@ctslint.domain_owned]";
      pass = Typed;
      allowed_in = [];
    };
    {
      name = "runtime-boundary";
      summary =
        "Unix.*/Sys.time/blocking console I/O outside the declared \
         runtime layer (lib/rt_real); real wall-clock and host I/O must \
         stay behind the runtime interface";
      pass = Typed;
      allowed_in = [ "lib/rt_real/" ];
    };
    {
      name = "bad-suppression";
      summary =
        "[@ctslint.allow]/[@ctslint.domain_owned] with a missing reason, \
         malformed payload, or unknown rule name";
      pass = Syntactic;
      allowed_in = [];
    };
    {
      name = "unused-allow";
      summary = "[@ctslint.allow] that suppresses nothing";
      pass = Syntactic;
      allowed_in = [];
    };
  ]

let known name = List.exists (fun r -> String.equal r.name name) all
let find name = List.find (fun r -> String.equal r.name name) all

let pass_of name =
  match List.find_opt (fun r -> String.equal r.name name) all with
  | Some r -> r.pass
  | None -> Syntactic

let pass_name = function Syntactic -> "syntactic" | Typed -> "typed"

(* Path fragments use '/' regardless of platform; [file] is the path the
   driver was given (absolute or root-relative). *)
let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let exempt rule ~file =
  List.exists (fun frag -> contains_substring ~sub:frag file) rule.allowed_in

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

(* [matches_suffix ~path pat] — does the dotted path end with the dotted
   pattern?  ["Mc"; "Explore"; "wall"] matches "Explore.wall"; matching
   on the suffix keeps aliases like [module E = Explore] honest as long
   as the final components are spelled out. *)
let matches_suffix ~path pat =
  let pat = String.split_on_char '.' pat in
  let np = List.length path and nq = List.length pat in
  np >= nq
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  List.equal String.equal (drop (np - nq) path) pat

let wall_clock_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.sleep";
    "Unix.sleepf";
    "Sys.time";
    "Monotonic_clock.now";
    (* project wrappers around the monotonic clock: calling them is a
       real-time read too, and must be just as visible *)
    "Explore.wall";
    "Explore.cpu";
    "Attrib.now_ns";
  ]

let domain_idents = [ "Domain.spawn"; "Domain.self"; "Domain.join" ]

type classified =
  | Clean
  | Wall_clock of string
  | Hash_iter
  | Hash_fold
  | Random_use of string
  | Phys_eq of string
  | Domain_use of string

let classify path =
  match path with
  | [ ("==" | "!=") ] -> Phys_eq (List.hd path)
  | "Random" :: _ :: _ -> Random_use (String.concat "." path)
  | _ ->
      if matches_suffix ~path "Hashtbl.iter" then Hash_iter
      else if matches_suffix ~path "Hashtbl.fold" then Hash_fold
      else if
        List.exists (fun p -> matches_suffix ~path p) wall_clock_idents
      then Wall_clock (String.concat "." path)
      else if List.exists (fun p -> matches_suffix ~path p) domain_idents
      then Domain_use (String.concat "." path)
      else Clean

(* Order-restoring consumers: a [Hashtbl.fold] whose result feeds one of
   these directly is pure aggregation — the hash order is erased before
   it can escape. *)
let sort_idents =
  [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]

let is_sort_path path =
  List.exists (fun p -> matches_suffix ~path p) sort_idents

(* ------------------------------------------------------------------ *)
(* Typed-pass policy tables (hotpath-alloc / domain-unsafe /
   runtime-boundary).  Paths here are the *normalized* dotted names the
   typed pass produces: "Dsim__Event_queue" becomes "Dsim.Event_queue",
   and a leading "Stdlib." is stripped, so "Stdlib.Array.make" and a
   direct "Array.make" compare equal. *)

let normalize_path name =
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  let s = Buffer.contents b in
  let strip pre s =
    let lp = String.length pre in
    if String.length s > lp && String.sub s 0 lp = pre then
      String.sub s lp (String.length s - lp)
    else s
  in
  strip "Stdlib." (strip "Dune.exe." s)

(* Compiler primitives ("%"-externals) compile to inline code and are
   allocation-free, with the exceptions below.  Boxed-result primitives
   (float / int64 arithmetic, bigarray reads of boxed kinds) are still
   fine: the compiler unboxes them locally, and the separate escape
   checks in Typed_check flag the cases where a boxed value leaves the
   function.  Non-"%" externals are C stubs; those allocate unless
   whitelisted. *)
let allocating_prims =
  [
    "%makemutable" (* ref *);
    "%lazy_force";
    "%obj_dup";
    "%apply" (* @@: applies an arbitrary function *);
    "%revapply" (* |> *);
  ]

let nonalloc_c_stubs =
  [
    "caml_int_compare";
    "caml_int64_compare";
    "caml_float_compare";
    "caml_string_compare" (* compares in place; no allocation *);
  ]

let prim_allocates name =
  if String.length name > 0 && name.[0] = '%' then
    List.mem name allocating_prims
  else not (List.mem name nonalloc_c_stubs)

(* Non-primitive functions sanctioned inside certified hot paths.
   [invalid_arg]/[failwith] allocate their exception, but only on the
   raising path — the guard that never fires in a measured run.  A
   hotpath function whose *normal* path calls these is still flagged:
   the call's result type is 'a, so it can only sit in tail/guard
   position. *)
let cold_error_paths = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace" ]

let is_cold_error path = List.mem (normalize_path path) cold_error_paths

(* --- runtime-boundary --------------------------------------------- *)

(* Whole-module fences (any member is a runtime call) and exact idents.
   [Monotonic_clock.now] is bechamel's raw wall clock — the project
   wrappers over it (Mc.Explore.wall, Obs.Attrib.now_ns) are annotated
   at definition, so calling the *wrapper* is visible there, once. *)
let runtime_module_prefixes = [ "Unix."; "Thread."; "UnixLabels." ]

let runtime_idents =
  [
    "Sys.time";
    "Monotonic_clock.now";
    "input_line";
    "read_line";
    "read_int";
    "read_int_opt";
    "read_float";
    "read_float_opt";
  ]

let is_runtime_path name =
  let n = normalize_path name in
  List.mem n runtime_idents
  || List.exists
       (fun pre ->
         String.length n > String.length pre
         && String.sub n 0 (String.length pre) = pre)
       runtime_module_prefixes

(* --- domain-unsafe ------------------------------------------------- *)

(* Constructors whose module-level result is shared mutable state. *)
let mutable_ctor_paths =
  [
    "Hashtbl.create";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
  ]

(* Constructors that are safe to share: domain-local storage, locks,
   atomics, and lock-like coordination primitives. *)
let safe_ctor_paths =
  [
    "Domain.DLS.new_key";
    "Mutex.create";
    "Atomic.make";
    "Condition.create";
    "Semaphore.Counting.make";
    "Semaphore.Binary.make";
  ]

let is_mutable_ctor path =
  List.mem (normalize_path path) mutable_ctor_paths

let is_safe_ctor path = List.mem (normalize_path path) safe_ctor_paths

(* Files whose functions run on pool worker domains: every function they
   define is a reachability root for the domain-unsafe analysis (worker
   task closures live in this file, and the facts of nested closures are
   attributed to their enclosing top-level binding). *)
let domain_root_files = [ "lib/mc/pool.ml" ]

let is_domain_root_file file =
  List.exists (fun frag -> contains_substring ~sub:frag file)
    domain_root_files
