(** Post-hoc diagnosis over a dumped flight-recorder window.

    The dump is a line-oriented text format (stable header
    ["# ctsim flight recorder v1"], one [R kind ts_us node a b] line per
    record, one [I inv first last count worst node] line per health
    incident) designed to travel inside a bug report; {!load_string}
    round-trips it, {!write_chrome_file} re-exports it through the
    {!Trace} Chrome exporter for Perfetto, and {!report} prints a
    human-readable causal timeline: records decoded via
    {!Recorder.kind_name}/{!Recorder.arg_names}, deliveries and drops
    matched back to their send using the network's per-(src, dst) FIFO
    contract, and each incident reduced to a one-line {e suspect} —
    e.g. for a token-liveness incident, the node that last accepted
    the token plus the first onward drop, which names the faulted
    hop. *)

type record = { kind : int; ts_us : int; node : int; a : int; b : int }

type window = {
  records : record array;  (** oldest first *)
  incidents : Health.incident list;
  w_total : int;  (** records ever emitted (pre-wrap) *)
  w_dropped : int;  (** records lost to ring wrap *)
}

(** {1 Dump / load} *)

val dump_string : Recorder.t -> Health.incident list -> string
val dump_file : Recorder.t -> Health.incident list -> string -> unit
val load_string : string -> (window, string) result
val load_file : string -> (window, string) result

(** {1 Re-export} *)

val to_trace : window -> Trace.t
val write_chrome_file : window -> string -> unit

(** {1 Diagnosis} *)

val sent_at : window -> int array
(** [sent_at w].(i) is the index of the send record matched to record
    [i] (a delivery or drop), or [-1]; matching is per-(src, dst) FIFO,
    with broadcast sends matched by source. *)

type suspect = {
  s_inv : string;
  s_desc : string;  (** one-line description of the faulted hop *)
  s_record : int option;  (** index of the pivotal record, if located *)
}

val suspect_of_incident : window -> Health.incident -> suspect
val suspects : window -> suspect list

val report : ?tail:int -> Format.formatter -> window -> unit
(** Incidents, suspects, then the last [tail] (default 40) records as a
    decoded timeline with send-matching annotations and suspect
    markers. *)
