(* Wall-time attribution: where do the real seconds of a big simulation
   go?  Each instrumented region is a {e site} — a (subsystem, probe)
   pair interned once at module-initialization time into a process-wide
   registry — and an enabled recorder accumulates {e self} wall
   nanoseconds per site: the time between [enter] and [leave] minus the
   time spent in nested attributed regions.  Summing the self times of
   every site therefore never double-counts, and the gap between a run's
   total wall time and the attributed total is the un-instrumented
   remainder (engine loop, GC, harness).

   The design constraints mirror the rest of [lib/obs]:
   - disabled (the default) costs one field load and one predictable
     branch per site boundary ([Sink.attr_enter]/[attr_leave] match on
     the option);
   - enabled costs two monotonic-clock reads plus flat array arithmetic
     per region — no allocation after warm-up, so attribution does not
     distort the allocation behaviour it is pointed at;
   - everything is wall time, deliberately outside the simulated-time
     plane: attribution answers "where do the 238 wall seconds go", a
     question simulated time cannot see. *)

(* A site id: index into the process-wide registry below. *)
type site = int

let site_subs : Subsystem.t array ref = ref [||]
[@@ctslint.domain_owned
  "append-only site registry, populated by module initializers before \
   any pool worker starts; workers only read it (via ensure_sites)"]

let site_names : string array ref = ref [||]
[@@ctslint.domain_owned
  "append-only site registry, populated by module initializers before \
   any pool worker starts; workers only read it (via ensure_sites)"]

let n_sites = ref 0
[@@ctslint.domain_owned
  "append-only site registry, populated by module initializers before \
   any pool worker starts; workers only read it (via ensure_sites)"]

let site ~sub ~name : site =
  let rec find i =
    if i >= !n_sites then -1
    else if
      !site_names.(i) = name
      && Subsystem.to_int !site_subs.(i) = Subsystem.to_int sub
    then i
    else find (i + 1)
  in
  let existing = find 0 in
  if existing >= 0 then existing
  else begin
    let n = !n_sites in
    if n = Array.length !site_names then begin
      let cap = if n = 0 then 16 else 2 * n in
      let subs = Array.make cap Subsystem.Dsim in
      let names = Array.make cap "" in
      Array.blit !site_subs 0 subs 0 n;
      Array.blit !site_names 0 names 0 n;
      site_subs := subs;
      site_names := names
    end;
    !site_subs.(n) <- sub;
    !site_names.(n) <- name;
    n_sites := n + 1;
    n
  end

let site_subsystem (s : site) = !site_subs.(s)
let site_name (s : site) = !site_names.(s)

type t = {
  mutable self_ns : float array; (* indexed by site id *)
  mutable calls : int array;
  (* explicit region stack, parallel arrays so a push allocates nothing *)
  mutable fr_site : int array;
  mutable fr_t0 : int array; (* monotonic ns at enter *)
  mutable fr_child : int array; (* ns consumed by nested regions *)
  mutable depth : int;
}

let now_ns () =
  Int64.to_int (Monotonic_clock.now ())
[@@ctslint.allow
  "wall-clock"
    "attribution measures real elapsed time by definition; the numbers \
     only ever flow into operator reports, never back into simulated \
     state"]
[@@ctslint.allow
  "runtime-boundary"
    "this wrapper IS the declared clock boundary for attribution; every \
     other obs site calls now_ns instead of the raw clock"]

let create () =
  {
    self_ns = Array.make (max 1 !n_sites) 0.;
    calls = Array.make (max 1 !n_sites) 0;
    fr_site = Array.make 64 0;
    fr_t0 = Array.make 64 0;
    fr_child = Array.make 64 0;
    depth = 0;
  }

let grow_int a len fill =
  let a' = Array.make len fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let ensure_sites t =
  if Array.length t.self_ns < !n_sites then begin
    let f = Array.make !n_sites 0. in
    Array.blit t.self_ns 0 f 0 (Array.length t.self_ns);
    t.self_ns <- f;
    t.calls <- grow_int t.calls !n_sites 0
  end

let enter t (s : site) =
  let d = t.depth in
  if d = Array.length t.fr_site then begin
    let cap = 2 * d in
    t.fr_site <- grow_int t.fr_site cap 0;
    t.fr_t0 <- grow_int t.fr_t0 cap 0;
    t.fr_child <- grow_int t.fr_child cap 0
  end;
  Array.unsafe_set t.fr_site d s;
  Array.unsafe_set t.fr_child d 0;
  t.depth <- d + 1;
  (* read the clock last, so stack bookkeeping is not charged to us *)
  Array.unsafe_set t.fr_t0 d (now_ns ())

let leave t =
  let stop = now_ns () in
  let d = t.depth - 1 in
  if d < 0 then invalid_arg "Obs.Attrib.leave: no open region";
  t.depth <- d;
  let s = Array.unsafe_get t.fr_site d in
  let el = stop - Array.unsafe_get t.fr_t0 d in
  ensure_sites t;
  Array.unsafe_set t.self_ns s
    (Array.unsafe_get t.self_ns s
    +. float_of_int (el - Array.unsafe_get t.fr_child d));
  Array.unsafe_set t.calls s (Array.unsafe_get t.calls s + 1);
  if d > 0 then
    Array.unsafe_set t.fr_child (d - 1)
      (Array.unsafe_get t.fr_child (d - 1) + el)

type row = {
  sub : Subsystem.t;
  probe : string;
  calls : int;
  self_ns : float;
}

let report t =
  ensure_sites t;
  let rows = ref [] in
  for s = !n_sites - 1 downto 0 do
    if t.calls.(s) > 0 then
      rows :=
        {
          sub = site_subsystem s;
          probe = site_name s;
          calls = t.calls.(s);
          self_ns = t.self_ns.(s);
        }
        :: !rows
  done;
  List.sort (fun a b -> Float.compare b.self_ns a.self_ns) !rows

let total_ns (t : t) = Array.fold_left ( +. ) 0. t.self_ns

let reset (t : t) =
  Array.fill t.self_ns 0 (Array.length t.self_ns) 0.;
  Array.fill t.calls 0 (Array.length t.calls) 0;
  t.depth <- 0

let pp ppf t =
  let rows = report t in
  let total = total_ns t in
  Format.fprintf ppf "%-10s %-18s %12s %12s %8s@." "subsystem" "probe"
    "calls" "self(ms)" "share";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-18s %12d %12.1f %7.1f%%@."
        (Subsystem.name r.sub) r.probe r.calls (r.self_ns /. 1e6)
        (if total > 0. then 100. *. r.self_ns /. total else 0.))
    rows;
  Format.fprintf ppf "%-10s %-18s %12s %12.1f@." "(total" "attributed)" ""
    (total /. 1e6)

let to_json t =
  let rows = report t in
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"sub\": \"%s\", \"probe\": \"%s\", \"calls\": %d, \
            \"self_ms\": %.3f}"
           (Subsystem.name r.sub) r.probe r.calls (r.self_ns /. 1e6)))
    rows;
  Buffer.add_char b ']';
  Buffer.contents b
