type t = {
  mutable active : bool;
  mutable trace : Trace.t option;
  mutable metrics : Metrics.t option;
  mutable trace_steps : bool;
  mutable attrib : Attrib.t option;
  mutable rec_on : bool;
  mutable recorder : Recorder.t option;
  mutable health : Health.t option;
  mutable rec_steps : bool;
}

let inactive () =
  {
    active = false;
    trace = None;
    metrics = None;
    trace_steps = false;
    attrib = None;
    rec_on = false;
    recorder = None;
    health = None;
    rec_steps = false;
  }

let create = inactive

let refresh t = t.active <- t.trace <> None || t.metrics <> None

let attach ?trace ?metrics t =
  (match trace with Some _ -> t.trace <- trace | None -> ());
  (match metrics with Some _ -> t.metrics <- metrics | None -> ());
  refresh t

let detach t =
  t.trace <- None;
  t.metrics <- None;
  t.active <- false

let is_active t = t.active
let trace t = t.trace
let metrics t = t.metrics
let set_trace_steps t v = t.trace_steps <- v

let event t ~ph ~ts_ns ~pid ~sub ~name ~args =
  match t.trace with
  | Some tr -> Trace.record tr ~ph ~ts_ns ~pid ~sub ~name ~args
  | None -> ()

let span_begin t ~ts_ns ~pid ~sub ~name ~args =
  event t ~ph:Trace.Begin ~ts_ns ~pid ~sub ~name ~args

let span_end t ~ts_ns ~pid ~sub ~name ~args =
  event t ~ph:Trace.End ~ts_ns ~pid ~sub ~name ~args

let instant t ~ts_ns ~pid ~sub ~name ~args =
  event t ~ph:Trace.Instant ~ts_ns ~pid ~sub ~name ~args

let count t k = match t.metrics with Some m -> Metrics.incr m k | None -> ()

let observe t hk v =
  match t.metrics with Some m -> Metrics.observe m hk v | None -> ()

(* Wall-time attribution is gated separately from [active]: a recorder
   can be attached without paying for trace-event construction at every
   [active]-gated probe, and vice versa.  Disabled cost is the same one
   load + one branch. *)

let set_attrib t a = t.attrib <- a
let attrib t = t.attrib

let attr_enter t site =
  match t.attrib with Some a -> Attrib.enter a site | None -> ()
[@@inline]

let attr_leave t =
  match t.attrib with Some a -> Attrib.leave a | None -> ()
[@@inline]

(* The flight recorder and health monitor are gated by [rec_on], a
   third gate beside [active] and the attrib option: both consumers
   take only unboxed int arguments, so a probe site that already has
   the ints in hand feeds them with zero allocation — which is what
   lets the recorder stay attached in production runs where [active]
   stays false. *)

let refresh_rec t = t.rec_on <- t.recorder <> None || t.health <> None

let set_recorder t r =
  t.recorder <- r;
  refresh_rec t

let set_health t h =
  t.health <- h;
  refresh_rec t

let recorder t = t.recorder
let health t = t.health
let set_rec_steps t v = t.rec_steps <- v

let rec_event t ~kind ~ts_us ~node ~a ~b =
  (match t.recorder with
  | Some r -> Recorder.emit r ~kind ~ts_us ~node ~a ~b
  | None -> ());
  match t.health with
  | Some h ->
      (Health.observe h ~kind ~ts_us ~node ~a ~b
      [@ctslint.allow
        "hotpath-alloc"
          "the health monitor's invariant checks walk hashtables; \
           attaching a monitor deliberately trades the zero-alloc \
           guarantee of the recorder lane for diagnosis"])
  | None -> ()
