type phase = Begin | End | Instant

type event = {
  ph : phase;
  ts_ns : int;
  pid : int;
  sub : Subsystem.t;
  name : string;
  args : (string * int) list;
}

let dummy =
  { ph = Instant; ts_ns = 0; pid = 0; sub = Subsystem.Dsim; name = ""; args = [] }

type t = {
  mutable buf : event array;
  mutable n : int;
  capacity : int;
  mutable dropped : int;
}

let default_capacity = 1_000_000

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make (min capacity 1024) dummy; n = 0; capacity; dropped = 0 }

let length t = t.n
let dropped t = t.dropped

let clear t =
  Array.fill t.buf 0 t.n dummy;
  t.n <- 0;
  t.dropped <- 0

let record t ~ph ~ts_ns ~pid ~sub ~name ~args =
  if t.n >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    let cap = Array.length t.buf in
    if t.n = cap then begin
      let a = Array.make (min t.capacity (2 * cap)) dummy in
      Array.blit t.buf 0 a 0 t.n;
      t.buf <- a
    end;
    Array.unsafe_set t.buf t.n { ph; ts_ns; pid; sub; name; args };
    t.n <- t.n + 1
  end

let span_begin t ~ts_ns ~pid ~sub ~name ~args =
  record t ~ph:Begin ~ts_ns ~pid ~sub ~name ~args

let span_end t ~ts_ns ~pid ~sub ~name ~args =
  record t ~ph:End ~ts_ns ~pid ~sub ~name ~args

let instant t ~ts_ns ~pid ~sub ~name ~args =
  record t ~ph:Instant ~ts_ns ~pid ~sub ~name ~args

let iter t f =
  for i = 0 to t.n - 1 do
    f t.buf.(i)
  done

let events t = Array.to_list (Array.sub t.buf 0 t.n)

let subsystems t =
  let seen = Array.make Subsystem.count false in
  iter t (fun e -> seen.(Subsystem.to_int e.sub) <- true);
  List.filter (fun s -> seen.(Subsystem.to_int s)) Subsystem.all

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

(* Probe names are static strings without specials, but args come from
   callers; escape defensively anyway. *)
let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Simulated time is integer nanoseconds; Chrome's [ts] field is
   microseconds but accepts fractions, so ns precision survives as three
   decimals and per-thread ordering is preserved exactly. *)
let add_ts b ts_ns =
  Buffer.add_string b (Printf.sprintf "%d.%03d" (ts_ns / 1000) (ts_ns mod 1000))

let default_process_name pid = Printf.sprintf "replica %d" pid

let add_meta b ~first ~pid ~tid ~kind ~name =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":"
       kind pid tid);
  add_json_string b name;
  Buffer.add_string b "}}"

let to_chrome ?(process_name = default_process_name) t b =
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  (* Metadata: one process per pid, one named thread per (pid, subsystem)
     actually present in the stream. *)
  let pids = Hashtbl.create 16 in
  iter t (fun e ->
      let key = (e.pid, Subsystem.to_int e.sub) in
      if not (Hashtbl.mem pids key) then Hashtbl.add pids key e.sub);
  (* Sort applied directly to the fold: the hash order never escapes
     (ctslint's hash-order rule recognizes exactly this shape). *)
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) pids [])
  in
  let seen_pid = Hashtbl.create 16 in
  List.iter
    (fun (pid, tid) ->
      if not (Hashtbl.mem seen_pid pid) then begin
        Hashtbl.add seen_pid pid ();
        add_meta b ~first ~pid ~tid:0 ~kind:"process_name"
          ~name:(process_name pid)
      end;
      add_meta b ~first ~pid ~tid ~kind:"thread_name"
        ~name:(Subsystem.name (Hashtbl.find pids (pid, tid))))
    keys;
  iter t (fun e ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b "{\"name\":";
      add_json_string b e.name;
      Buffer.add_string b ",\"ph\":\"";
      Buffer.add_string b
        (match e.ph with Begin -> "B" | End -> "E" | Instant -> "I");
      Buffer.add_string b "\",\"ts\":";
      add_ts b e.ts_ns;
      Buffer.add_string b
        (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid (Subsystem.to_int e.sub));
      (match e.ph with
      | Instant -> Buffer.add_string b ",\"s\":\"t\""
      | Begin | End -> ());
      (match e.args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              add_json_string b k;
              Buffer.add_string b (Printf.sprintf ":%d" v))
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}');
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"

let write_chrome_file ?process_name t path =
  let b = Buffer.create (65536 + (t.n * 96)) in
  to_chrome ?process_name t b;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)

(* ------------------------------------------------------------------ *)
(* Validation: a minimal JSON reader (no external deps are available)
   plus the schema checks CI relies on — well-formed JSON, the
   trace-event envelope, and per-(pid, tid) timestamp monotonicity. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              (* Code points above the validator's needs collapse to '?';
                 the traces we emit are ASCII. *)
              Buffer.add_char b '?';
              pos := !pos + 5
          | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

type summary = {
  v_events : int;  (** non-metadata trace events *)
  v_pids : int;
  v_subsystems : string list;  (** distinct thread names, sorted *)
}

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let validate_events events =
  (* Last timestamp and open-span depth per (pid, tid). *)
  let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let depth : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let pids = Hashtbl.create 16 in
  let subs = Hashtbl.create 16 in
  let count = ref 0 in
  let err = ref None in
  let check i e =
    match (member "ph" e, member "pid" e, member "tid" e) with
    | Some (Str ph), Some (Num pid), Some (Num tid) -> (
        let key = (int_of_float pid, int_of_float tid) in
        match ph with
        | "M" -> (
            match (member "name" e, member "args" e) with
            | Some (Str "thread_name"), Some args -> (
                match member "name" args with
                | Some (Str s) -> Hashtbl.replace subs s ()
                | _ -> ())
            | _ -> ())
        | "B" | "E" | "I" -> (
            incr count;
            Hashtbl.replace pids (fst key) ();
            match member "ts" e with
            | Some (Num ts) ->
                (match Hashtbl.find_opt last_ts key with
                | Some prev when ts < prev ->
                    if !err = None then
                      err :=
                        Some
                          (Printf.sprintf
                             "event %d: ts %.3f < %.3f on pid %d tid %d" i ts
                             prev (fst key) (snd key))
                | _ -> ());
                Hashtbl.replace last_ts key ts;
                let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
                let d' =
                  match ph with "B" -> d + 1 | "E" -> d - 1 | _ -> d
                in
                if d' < 0 && !err = None then
                  err :=
                    Some
                      (Printf.sprintf
                         "event %d: span end without begin on pid %d tid %d" i
                         (fst key) (snd key));
                Hashtbl.replace depth key d'
            | _ ->
                if !err = None then
                  err := Some (Printf.sprintf "event %d: missing ts" i))
        | ph ->
            if !err = None then
              err := Some (Printf.sprintf "event %d: unknown ph %S" i ph))
    | _ ->
        if !err = None then
          err := Some (Printf.sprintf "event %d: missing ph/pid/tid" i)
  in
  List.iteri check events;
  (* A positive final depth is fine — the capture may end while spans are
     still open (Chrome renders them as unfinished); only an End without
     a matching Begin is a schema violation, caught above. *)
  match !err with
  | Some e -> Error e
  | None ->
      let subsystems =
        List.sort String.compare
          (Hashtbl.fold (fun s () acc -> s :: acc) subs [])
      in
      Ok { v_events = !count; v_pids = Hashtbl.length pids; v_subsystems = subsystems }

let validate_string s =
  match parse_json s with
  | exception Parse_error msg -> Error ("not well-formed JSON: " ^ msg)
  | j -> (
      match member "traceEvents" j with
      | Some (Arr events) -> validate_events events
      | Some _ -> Error "traceEvents is not an array"
      | None -> Error "missing traceEvents member")

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> validate_string s
