(* Online invariant monitor: runtime analogues of the paper's §3
   guarantees, evaluated continuously over the flight-recorder record
   stream instead of only under [Mc].  The monitor is fed the same
   compact int records as [Recorder.emit]; it keeps per-node scalar
   state in growable int arrays and raises structured, deduplicated
   incidents — one mutable cell per invariant, so a persistent fault
   costs a counter bump, not an incident per record. *)

type incident = {
  inv : string;
  mutable first_us : int;
  mutable last_us : int;
  mutable count : int;
  mutable worst : int;
  mutable node : int; (* node that produced the worst observation *)
}

type config = {
  skew_bound_us : int;
      (* max allowed spread of (group clock - simulated time) offsets
         across non-stale nodes; <= 0 disables the check *)
  token_timeout_us : int;
      (* max silence between token sightings once a first token has
         been seen; <= 0 disables the watchdog *)
  staleness_us : int;
      (* a node's last gc sample older than this is excluded from the
         skew envelope (it may be dead or partitioned) *)
  membership_check : bool;
      (* generations are per-ring, so a monitor watching several rings
         at once (lib/hier) must turn this off *)
}

let default_config =
  {
    skew_bound_us = 0;
    token_timeout_us = 10_000;
    staleness_us = 5_000;
    membership_check = true;
  }

type t = {
  cfg : config;
  mutable incidents : incident list; (* newest first *)
  (* per-node state, indexed by node id, -1 / min_int = unseen *)
  mutable last_gc_us : int array; (* last group-clock sample, µs *)
  mutable gc_seen_us : int array; (* sim time of that sample *)
  (* token watchdog *)
  mutable last_token_us : int;
  mutable last_token_node : int;
  mutable last_token_seq : int;
  mutable token_alarmed : bool;
  (* membership agreement: generation -> member count first seen *)
  gen_members : (int, int) Hashtbl.t;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    incidents = [];
    last_gc_us = Array.make 8 min_int;
    gc_seen_us = Array.make 8 min_int;
    last_token_us = min_int;
    last_token_node = -1;
    last_token_seq = -1;
    token_alarmed = false;
    gen_members = Hashtbl.create 16;
  }

let config t = t.cfg
let incidents t = List.rev t.incidents
let incident_count t = List.length t.incidents

let clear t =
  t.incidents <- [];
  Array.fill t.last_gc_us 0 (Array.length t.last_gc_us) min_int;
  Array.fill t.gc_seen_us 0 (Array.length t.gc_seen_us) min_int;
  t.last_token_us <- min_int;
  t.last_token_node <- -1;
  t.last_token_seq <- -1;
  t.token_alarmed <- false;
  Hashtbl.reset t.gen_members

let grow arr n =
  let len = Array.length arr in
  let len' = ref (if len = 0 then 8 else len) in
  while n >= !len' do
    len' := 2 * !len'
  done;
  let bigger = Array.make !len' min_int in
  Array.blit arr 0 bigger 0 len;
  bigger

let ensure_node t n =
  if n >= Array.length t.last_gc_us then begin
    t.last_gc_us <- grow t.last_gc_us n;
    t.gc_seen_us <- grow t.gc_seen_us n
  end

let raise_incident t ~inv ~ts_us ~node ~worst =
  match List.find_opt (fun i -> i.inv = inv) t.incidents with
  | Some i ->
      i.count <- i.count + 1;
      i.last_us <- ts_us;
      if worst > i.worst then begin
        i.worst <- worst;
        i.node <- node
      end
  | None ->
      t.incidents <-
        { inv; first_us = ts_us; last_us = ts_us; count = 1; worst; node }
        :: t.incidents

(* --- the four invariants ------------------------------------------ *)

let check_monotonic t ~ts_us ~node ~gc_us =
  let last = t.last_gc_us.(node) in
  if last <> min_int && gc_us < last then
    raise_incident t ~inv:"gc-monotonic" ~ts_us ~node ~worst:(last - gc_us);
  t.last_gc_us.(node) <- gc_us;
  t.gc_seen_us.(node) <- ts_us

let check_skew t ~ts_us ~node =
  if t.cfg.skew_bound_us > 0 then begin
    (* spread of (gc - sim-time) offsets over non-stale nodes *)
    let lo = ref max_int and hi = ref min_int in
    let hi_node = ref node in
    for n = 0 to Array.length t.last_gc_us - 1 do
      let seen = t.gc_seen_us.(n) in
      if seen <> min_int && ts_us - seen <= t.cfg.staleness_us then begin
        let off = t.last_gc_us.(n) - seen in
        if off < !lo then lo := off;
        if off > !hi then begin
          hi := off;
          hi_node := n
        end
      end
    done;
    if !hi > !lo && !hi - !lo > t.cfg.skew_bound_us then
      raise_incident t ~inv:"skew-envelope" ~ts_us ~node:!hi_node
        ~worst:(!hi - !lo)
  end

let check_token_liveness t ~ts_us =
  if
    t.cfg.token_timeout_us > 0 && (not t.token_alarmed)
    && t.last_token_us <> min_int
    && ts_us - t.last_token_us > t.cfg.token_timeout_us
  then begin
    t.token_alarmed <- true;
    raise_incident t ~inv:"token-liveness" ~ts_us ~node:t.last_token_node
      ~worst:(ts_us - t.last_token_us)
  end

let check_membership t ~ts_us ~node ~gen ~members =
  match Hashtbl.find_opt t.gen_members gen with
  | None -> Hashtbl.add t.gen_members gen members
  | Some m ->
      if m <> members then
        raise_incident t ~inv:"membership-agreement" ~ts_us ~node
          ~worst:(abs (m - members))

let observe t ~kind ~ts_us ~node ~a ~b =
  if kind = Recorder.k_gc_sample then begin
    ensure_node t node;
    check_monotonic t ~ts_us ~node ~gc_us:a;
    check_skew t ~ts_us ~node
  end
  else if kind = Recorder.k_token then begin
    t.last_token_us <- ts_us;
    t.last_token_node <- node;
    t.last_token_seq <- a;
    t.token_alarmed <- false
  end
  else if kind = Recorder.k_operational then begin
    if t.cfg.membership_check then
      check_membership t ~ts_us ~node ~gen:a ~members:b
  end;
  (* the watchdog ticks on every record: simulated time only advances
     when something happens, so any record is a chance to notice the
     token has gone quiet *)
  check_token_liveness t ~ts_us

(* --- reporting ---------------------------------------------------- *)

let pp_incident ppf i =
  Format.fprintf ppf
    "%-20s first %d us, last %d us, count %d, worst %d (node %d)" i.inv
    i.first_us i.last_us i.count i.worst i.node

let pp ppf t =
  match incidents t with
  | [] -> Format.fprintf ppf "health: no incidents"
  | is ->
      Format.fprintf ppf "health: %d incident kind(s)" (List.length is);
      List.iter (fun i -> Format.fprintf ppf "@.  %a" pp_incident i) is
