(* Always-on flight recorder: a fixed-capacity ring of compact
   int-encoded records.  One record is [stride] consecutive cells of a
   flat [int array] — kind, simulated-µs timestamp, node, and two
   payload ints — so the steady-state wrap path performs five integer
   stores and two mutable-field writes and allocates nothing.  The
   subsystem is a static property of the kind and is not stored. *)

type t = {
  buf : int array;
  cap : int; (* capacity in records *)
  mutable pos : int; (* next write slot, 0 <= pos < cap *)
  mutable total : int; (* records ever emitted *)
}

let stride = 5
let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity <= 0";
  { buf = Array.make (capacity * stride) 0; cap = capacity; pos = 0; total = 0 }

let capacity t = t.cap
let total t = t.total
let length t = if t.total < t.cap then t.total else t.cap
let dropped t = t.total - length t

let clear t =
  t.pos <- 0;
  t.total <- 0

let emit t ~kind ~ts_us ~node ~a ~b =
  let base = t.pos * stride in
  let buf = t.buf in
  buf.(base) <- kind;
  buf.(base + 1) <- ts_us;
  buf.(base + 2) <- node;
  buf.(base + 3) <- a;
  buf.(base + 4) <- b;
  let p = t.pos + 1 in
  t.pos <- (if p = t.cap then 0 else p);
  t.total <- t.total + 1
[@@inline] [@@ctslint.hotpath]

(* ------------------------------------------------------------------ *)
(* Record kinds.  Adding a kind means extending [kind_name],
   [kind_sub] and [arg_names] below — [Postmortem] decodes through
   these three tables only. *)

let k_step = 0
let k_fiber_spawn = 1
let k_fiber_switch = 2
let k_send = 3
let k_deliver = 4
let k_drop = 5
let k_token = 6
let k_gather = 7
let k_operational = 8
let k_view = 9
let k_ccs_open = 10
let k_ccs_settle = 11
let k_ccs_suppress = 12
let k_ccs_discard = 13
let k_gc_sample = 14
let k_hier_round = 15
let k_hier_correct = 16
let k_hier_elect = 17
let kind_count = 18

let kind_name = function
  | 0 -> "step"
  | 1 -> "fiber-spawn"
  | 2 -> "fiber-switch"
  | 3 -> "send"
  | 4 -> "deliver"
  | 5 -> "drop"
  | 6 -> "token"
  | 7 -> "gather"
  | 8 -> "operational"
  | 9 -> "view"
  | 10 -> "ccs-open"
  | 11 -> "ccs-settle"
  | 12 -> "ccs-suppress"
  | 13 -> "ccs-discard"
  | 14 -> "gc-sample"
  | 15 -> "hier-round"
  | 16 -> "hier-correct"
  | 17 -> "hier-elect"
  | _ -> "?"

let kind_sub = function
  | 0 | 1 | 2 -> Subsystem.Dsim
  | 3 | 4 | 5 -> Subsystem.Netsim
  | 6 | 7 | 8 -> Subsystem.Totem
  | 9 -> Subsystem.Gcs
  | 10 | 11 | 12 | 13 | 14 -> Subsystem.Ccs
  | 15 | 16 | 17 -> Subsystem.Hier
  | _ -> Subsystem.Scenario

(* Names of the [a] / [b] payloads per kind ("" = unused). *)
let arg_names = function
  | 0 -> ("at_us", "")
  | 1 -> ("fiber", "")
  | 2 -> ("fiber", "")
  | 3 -> ("dst", "")
  | 4 -> ("src", "pos")
  | 5 -> ("src", "reason")
  | 6 -> ("seq", "aru")
  | 7 -> ("members", "")
  | 8 -> ("gen", "members")
  | 9 -> ("members", "primary")
  | 10 -> ("round", "thread")
  | 11 -> ("round", "adj_us")
  | 12 -> ("round", "")
  | 13 -> ("round", "")
  | 14 -> ("gc_us", "thread")
  | 15 -> ("round", "")
  | 16 -> ("round", "ahead_us")
  | 17 -> ("shard", "gateway")
  | _ -> ("a", "b")

(* Drop reasons mirror [Netsim.Network]'s encoding. *)
let drop_reason_name = function
  | 0 -> "loss"
  | 1 -> "partitioned"
  | 2 -> "no-port"
  | _ -> "?"

let iter t f =
  let n = length t in
  let start = if t.total <= t.cap then 0 else t.pos in
  for i = 0 to n - 1 do
    let idx = start + i in
    let idx = if idx >= t.cap then idx - t.cap else idx in
    let base = idx * stride in
    f ~kind:t.buf.(base) ~ts_us:t.buf.(base + 1) ~node:t.buf.(base + 2)
      ~a:t.buf.(base + 3) ~b:t.buf.(base + 4)
  done

let to_trace ?capacity t =
  let cap = match capacity with Some c -> c | None -> length t + 16 in
  let tr = Trace.create ~capacity:cap () in
  iter t (fun ~kind ~ts_us ~node ~a ~b ->
      let an, bn = arg_names kind in
      let args = if bn = "" then [ (an, a) ] else [ (an, a); (bn, b) ] in
      let args = if an = "" then [] else args in
      Trace.instant tr ~ts_ns:(ts_us * 1000) ~pid:node ~sub:(kind_sub kind)
        ~name:(kind_name kind) ~args);
  tr
