(* Fixed-key counters live in a plain int array indexed by the key's
   constructor number, so the hot-path [incr] is one load, one add, one
   store — no boxing, no hashing, no allocation.  Everything dynamic
   (gauges, bench sections) is find-or-create by name and only touched
   from cold code. *)

type key =
  | Engine_events
  | Fiber_spawns
  | Fiber_switches
  | Net_sent
  | Net_delivered
  | Net_dropped
  | Totem_tokens
  | Totem_views
  | Gcs_views
  | Ccs_rounds
  | Ccs_wins
  | Ccs_suppressed
  | Ccs_discards
  | Ccs_offset_updates
  | Repl_requests
  | Repl_checkpoints
  | Rpc_calls
  | Rpc_timeouts
  | Hier_rounds
  | Hier_corrections
  | Hier_elections

let key_count = 21

let key_index = function
  | Engine_events -> 0
  | Fiber_spawns -> 1
  | Fiber_switches -> 2
  | Net_sent -> 3
  | Net_delivered -> 4
  | Net_dropped -> 5
  | Totem_tokens -> 6
  | Totem_views -> 7
  | Gcs_views -> 8
  | Ccs_rounds -> 9
  | Ccs_wins -> 10
  | Ccs_suppressed -> 11
  | Ccs_discards -> 12
  | Ccs_offset_updates -> 13
  | Repl_requests -> 14
  | Repl_checkpoints -> 15
  | Rpc_calls -> 16
  | Rpc_timeouts -> 17
  | Hier_rounds -> 18
  | Hier_corrections -> 19
  | Hier_elections -> 20

let key_name = function
  | Engine_events -> "engine_events"
  | Fiber_spawns -> "fiber_spawns"
  | Fiber_switches -> "fiber_switches"
  | Net_sent -> "net_sent"
  | Net_delivered -> "net_delivered"
  | Net_dropped -> "net_dropped"
  | Totem_tokens -> "totem_tokens"
  | Totem_views -> "totem_views"
  | Gcs_views -> "gcs_views"
  | Ccs_rounds -> "ccs_rounds"
  | Ccs_wins -> "ccs_wins"
  | Ccs_suppressed -> "ccs_suppressed"
  | Ccs_discards -> "ccs_discards"
  | Ccs_offset_updates -> "ccs_offset_updates"
  | Repl_requests -> "repl_requests"
  | Repl_checkpoints -> "repl_checkpoints"
  | Rpc_calls -> "rpc_calls"
  | Rpc_timeouts -> "rpc_timeouts"
  | Hier_rounds -> "hier_rounds"
  | Hier_corrections -> "hier_corrections"
  | Hier_elections -> "hier_elections"

let all_keys =
  [
    Engine_events; Fiber_spawns; Fiber_switches; Net_sent; Net_delivered;
    Net_dropped; Totem_tokens; Totem_views; Gcs_views; Ccs_rounds; Ccs_wins;
    Ccs_suppressed; Ccs_discards; Ccs_offset_updates; Repl_requests;
    Repl_checkpoints; Rpc_calls; Rpc_timeouts; Hier_rounds;
    Hier_corrections; Hier_elections;
  ]

type hkey = Ccs_adjustment_us | Rpc_latency_us

let hkey_index = function Ccs_adjustment_us -> 0 | Rpc_latency_us -> 1
let hkey_name = function
  | Ccs_adjustment_us -> "ccs_adjustment_us"
  | Rpc_latency_us -> "rpc_latency_us"

let all_hkeys = [ Ccs_adjustment_us; Rpc_latency_us ]

let make_hist = function
  (* Group-clock adjustments are signed and µs-scale (paper §3.4). *)
  | Ccs_adjustment_us -> Stats.Histogram.create ~lo:(-500.) ~bin_width:5. ()
  (* End-to-end invocation latency sits around one token rotation. *)
  | Rpc_latency_us -> Stats.Histogram.create ~bin_width:25. ()

type section = {
  s_name : string;
  mutable s_events : int;
  mutable s_ns : float;
  mutable s_minor_words : float;
}

type t = {
  counters : int array;
  hists : Stats.Histogram.t array;
  mutable gauges : (string * float ref) list;
  mutable sections : section list;
}

let create () =
  {
    counters = Array.make key_count 0;
    hists = Array.of_list (List.map make_hist all_hkeys);
    gauges = [];
    sections = [];
  }

let incr t k =
  let i = key_index k in
  Array.unsafe_set t.counters i (Array.unsafe_get t.counters i + 1)

let add t k n =
  let i = key_index k in
  Array.unsafe_set t.counters i (Array.unsafe_get t.counters i + n)

let get t k = t.counters.(key_index k)
let observe t hk v = Stats.Histogram.add t.hists.(hkey_index hk) v
let hist t hk = t.hists.(hkey_index hk)

let gauge t name =
  match List.assoc_opt name t.gauges with
  | Some r -> r
  | None ->
      let r = ref 0. in
      t.gauges <- (name, r) :: t.gauges;
      r

let section t name =
  match List.find_opt (fun s -> String.equal s.s_name name) t.sections with
  | Some s -> s
  | None ->
      let s = { s_name = name; s_events = 0; s_ns = 0.; s_minor_words = 0. } in
      t.sections <- s :: t.sections;
      s

let section_record s ~events ~ns ~minor_words =
  s.s_events <- s.s_events + events;
  s.s_ns <- s.s_ns +. ns;
  s.s_minor_words <- s.s_minor_words +. minor_words

let reset t =
  Array.fill t.counters 0 key_count 0;
  List.iteri (fun i hk -> t.hists.(i) <- make_hist hk) all_hkeys;
  List.iter (fun (_, r) -> r := 0.) t.gauges;
  List.iter
    (fun s ->
      s.s_events <- 0;
      s.s_ns <- 0.;
      s.s_minor_words <- 0.)
    t.sections

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)

let buf_float b v =
  (* %.17g round-trips but is noisy; %g at 12 digits is plenty for
     counters-derived rates and keeps the snapshot readable. *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" v)
  else Buffer.add_string b (Printf.sprintf "%.12g" v)

let hist_json b h =
  Buffer.add_string b "{\"count\":";
  Buffer.add_string b (string_of_int (Stats.Histogram.count h));
  if Stats.Histogram.count h > 0 then begin
    Buffer.add_string b ",\"mode_bin_mid\":";
    buf_float b (Stats.Histogram.bin_mid h (Stats.Histogram.mode_bin h));
    (* fig5-style latency reporting wants percentiles, not just the
       mode; resolution is the histogram's bin width *)
    List.iter
      (fun (name, q) ->
        Buffer.add_string b (Printf.sprintf ",\"%s\":" name);
        buf_float b (Stats.Histogram.quantile h q))
      [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ]
  end;
  Buffer.add_char b '}'

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" (key_name k) (get t k)))
    all_keys;
  Buffer.add_string b "},\n  \"gauges\": {";
  List.iteri
    (fun i (name, r) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": " name);
      buf_float b !r)
    (List.rev t.gauges);
  Buffer.add_string b "},\n  \"histograms\": {";
  List.iteri
    (fun i hk ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": " (hkey_name hk));
      hist_json b t.hists.(hkey_index hk))
    all_hkeys;
  Buffer.add_string b "},\n  \"sections\": {";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      let per_event f = if s.s_events = 0 then 0. else f /. float s.s_events in
      Buffer.add_string b (Printf.sprintf "\"%s\": {\"events\": %d, \"ns_per_event\": " s.s_name s.s_events);
      buf_float b (per_event s.s_ns);
      Buffer.add_string b ", \"bytes_per_event\": ";
      buf_float b (per_event (s.s_minor_words *. 8.));
      Buffer.add_char b '}')
    (List.rev t.sections);
  Buffer.add_string b "}\n}\n";
  Buffer.contents b
