type t = Dsim | Netsim | Totem | Gcs | Ccs | Repl | Rpc | Hier | Scenario

let count = 9

let to_int = function
  | Dsim -> 0
  | Netsim -> 1
  | Totem -> 2
  | Gcs -> 3
  | Ccs -> 4
  | Repl -> 5
  | Rpc -> 6
  | Hier -> 7
  | Scenario -> 8

let name = function
  | Dsim -> "dsim"
  | Netsim -> "netsim"
  | Totem -> "totem"
  | Gcs -> "gcs"
  | Ccs -> "ccs"
  | Repl -> "repl"
  | Rpc -> "rpc"
  | Hier -> "hier"
  | Scenario -> "scenario"

let all = [ Dsim; Netsim; Totem; Gcs; Ccs; Repl; Rpc; Hier; Scenario ]
let pp ppf t = Format.pp_print_string ppf (name t)
