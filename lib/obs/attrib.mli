(** Wall-time attribution: per-(subsystem, probe) {e self} wall time in
    real nanoseconds, so a big run can say where its wall seconds went.

    A {!site} is a (subsystem, probe-name) pair interned once, at module
    initialization, into a process-wide registry; the accumulators live
    in the per-recorder {!t}, so two concurrent recorders do not share
    state.  Regions nest: [leave] charges the elapsed time minus the
    time consumed by nested attributed regions, so summing every site's
    self time never double-counts.

    Attribution is reached through {!Sink.attr_enter} / {!Sink.attr_leave},
    which are no-ops (one load, one branch) unless a recorder has been
    attached with {!Sink.set_attrib} — the same opt-in discipline as the
    rest of [lib/obs].  Regions must be exited on every path; the helpers
    do not tolerate exceptions escaping an open region. *)

type site = private int

val site : sub:Subsystem.t -> name:string -> site
(** Intern (and on repeat calls, find) a site.  Call once per probe at
    module-initialization time, not on the hot path. *)

val site_subsystem : site -> Subsystem.t
val site_name : site -> string

type t

val create : unit -> t

val enter : t -> site -> unit
val leave : t -> unit
(** [leave] closes the most recently entered region.  Raises
    [Invalid_argument] if no region is open. *)

type row = {
  sub : Subsystem.t;
  probe : string;
  calls : int;
  self_ns : float;
}

val report : t -> row list
(** Sites with at least one call, most self time first. *)

val total_ns : t -> float
(** Sum of all self times = total attributed wall ns. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
val to_json : t -> string
