(** The fixed set of instrumented layers.

    Every trace event and most metrics carry one of these tags; in the
    Chrome trace export a subsystem becomes the [tid] (one named thread
    row per subsystem under each replica's process). *)

type t = Dsim | Netsim | Totem | Gcs | Ccs | Repl | Rpc | Hier | Scenario

val count : int
(** Number of subsystems; [to_int] is a bijection into [0 .. count-1]. *)

val to_int : t -> int
(** Stable small-int encoding, used as the Chrome [tid]. *)

val name : t -> string
(** Lower-case label, e.g. ["totem"]; used as the thread name. *)

val all : t list
val pp : Format.formatter -> t -> unit
