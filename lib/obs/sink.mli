(** The single gate every probe site checks.

    A sink is owned by the simulation engine ([Dsim.Engine.obs]) and is
    {e inactive} by default: [active] is false, nothing is attached, and
    a probe site costs one field load and one predictable branch — the
    discipline that keeps PR 3's zero-allocation hot path intact with
    probes compiled in.  The contract at every site is:

    {[
      let s = Dsim.Engine.obs eng in
      if s.Obs.Sink.active then
        (* construct args / record events — boxing allowed here *)
    ]}

    i.e. nothing observable is even constructed unless the single
    [active] check passes (the pattern proven by [Netsim.Network]'s
    tracer-gated trace construction, which now routes through here).

    The record is plain data — no closures — so an engine carrying a
    sink (attached or not) still marshals, which [Mc.Harness]'s
    world-reuse path requires.  Components must read the sink through
    the engine at each probe rather than caching it at construction
    time, so a sink attached after world (re)build is still seen. *)

type t = {
  mutable active : bool;  (** true iff a trace or metrics is attached *)
  mutable trace : Trace.t option;
  mutable metrics : Metrics.t option;
  mutable trace_steps : bool;
      (** also emit one instant event per engine callback (very hot;
          off by default even when tracing) *)
  mutable attrib : Attrib.t option;
      (** wall-time attribution recorder; gated separately from
          [active] (see {!attr_enter}) so profiling a big run does not
          also pay for trace-event construction *)
  mutable rec_on : bool;
      (** true iff a flight recorder or health monitor is attached —
          the gate probe sites check before calling {!rec_event} *)
  mutable recorder : Recorder.t option;
  mutable health : Health.t option;
  mutable rec_steps : bool;
      (** also emit one flight-recorder record per engine callback
          (very hot; off by default even when recording) *)
}

val inactive : unit -> t
val create : unit -> t
(** Alias of {!inactive}. *)

val attach : ?trace:Trace.t -> ?metrics:Metrics.t -> t -> unit
(** Attach the given consumers (leaving absent ones as they are) and
    recompute [active]. *)

val detach : t -> unit
val is_active : t -> bool
val trace : t -> Trace.t option
val metrics : t -> Metrics.t option
val set_trace_steps : t -> bool -> unit

(** Emit helpers.  Callers are expected to have checked [active]; the
    helpers still match on the individual consumers, so e.g. a
    metrics-only sink records counters and skips trace events. *)

val event :
  t -> ph:Trace.phase -> ts_ns:int -> pid:int -> sub:Subsystem.t ->
  name:string -> args:(string * int) list -> unit

val span_begin :
  t -> ts_ns:int -> pid:int -> sub:Subsystem.t -> name:string ->
  args:(string * int) list -> unit

val span_end :
  t -> ts_ns:int -> pid:int -> sub:Subsystem.t -> name:string ->
  args:(string * int) list -> unit

val instant :
  t -> ts_ns:int -> pid:int -> sub:Subsystem.t -> name:string ->
  args:(string * int) list -> unit

val count : t -> Metrics.key -> unit
val observe : t -> Metrics.hkey -> float -> unit

(** {1 Wall-time attribution}

    Separate gate from [active]: [attr_enter]/[attr_leave] are no-ops
    (one load, one branch) until a recorder is attached with
    [set_attrib].  Callers bracket a region with a site interned once
    via {!Attrib.site}; regions nest and must be exited on every
    path. *)

val set_attrib : t -> Attrib.t option -> unit
val attrib : t -> Attrib.t option
val attr_enter : t -> Attrib.site -> unit
val attr_leave : t -> unit

(** {1 Flight recorder / health monitor}

    Third gate beside [active] and [attrib]: probe sites check
    [rec_on] (one load, one branch) and then call {!rec_event} with
    the ints they already hold — no boxing on either side, so the
    recorder can stay attached in runs where tracing would be too
    expensive.  Record kinds and payload meanings are defined by
    {!Recorder}. *)

val set_recorder : t -> Recorder.t option -> unit
val set_health : t -> Health.t option -> unit
val recorder : t -> Recorder.t option
val health : t -> Health.t option
val set_rec_steps : t -> bool -> unit

val rec_event : t -> kind:int -> ts_us:int -> node:int -> a:int -> b:int -> unit
(** Feed one record to whichever of recorder / health is attached.
    Callers are expected to have checked [rec_on]. *)
