(** Online invariant monitor over the flight-recorder record stream.

    Evaluates runtime analogues of the paper's §3 guarantees
    continuously — outside [Mc] — and raises structured, {e
    deduplicated} incidents instead of failing silently:

    - [gc-monotonic]: a node's sampled group clock never decreases
      (§3's monotonicity of [GC]); worst = largest regression in µs.
    - [skew-envelope]: the spread of [(group clock - simulated time)]
      offsets across live (non-stale) nodes stays within a configured
      bound (the §3 bounded-skew guarantee, with the drift envelope
      supplied by the caller); worst = largest spread in µs.
    - [token-liveness]: once a first token has been sighted, tokens
      keep being sighted within [token_timeout_us] (the liveness the
      §12 watchdogs exist to restore); worst = silent gap in µs.  The
      alarm re-arms on the next token, so a single loss episode is one
      incident however many records elapse inside it.
    - [membership-agreement]: every node reaching operational state in
      a ring generation reports the same member count (§12 agreement
      on view composition); worst = member-count difference.

    One incident record per invariant, updated in place: first-seen and
    last-seen timestamps, occurrence count, worst value and the node
    that produced it.  State is plain data (arrays and a Hashtbl used
    point-wise, never iterated), so a sink carrying a monitor still
    marshals. *)

type incident = {
  inv : string;  (** invariant id, e.g. ["token-liveness"] *)
  mutable first_us : int;
  mutable last_us : int;
  mutable count : int;
  mutable worst : int;
  mutable node : int;  (** node of the worst observation *)
}

type config = {
  skew_bound_us : int;  (** <= 0 disables the skew-envelope check *)
  token_timeout_us : int;  (** <= 0 disables the liveness watchdog *)
  staleness_us : int;
      (** nodes whose last sample is older than this are excluded from
          the skew envelope *)
  membership_check : bool;
      (** ring generations are only comparable within one ring, so a
          monitor fed by several rings at once ([lib/hier] clusters)
          must disable this check *)
}

val default_config : config
(** Skew check disabled (the bound is scenario-specific), 10 ms token
    timeout, 5 ms staleness, membership check on. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config

val observe : t -> kind:int -> ts_us:int -> node:int -> a:int -> b:int -> unit
(** Feed one record (same encoding as {!Recorder.emit}).  All-int
    arguments; allocates only when an incident is first raised. *)

val incidents : t -> incident list
(** In first-seen order. *)

val incident_count : t -> int
val clear : t -> unit
val pp_incident : Format.formatter -> incident -> unit
val pp : Format.formatter -> t -> unit
