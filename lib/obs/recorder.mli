(** Always-on, zero-allocation flight recorder.

    A fixed-capacity ring buffer of compact int-encoded records — event
    kind, simulated-µs timestamp, node, and two payload ints — stored in
    one flat [int array].  [emit] on the steady-state wrap path is five
    integer stores and two field writes: no boxing, no branch on
    capacity growth, nothing for the GC.  This is what lets the recorder
    stay attached in every run (the black box), unlike {!Trace}, which
    boxes an event record and its args per probe.

    The record layout is an internal encoding; decode through
    {!kind_name} / {!kind_sub} / {!arg_names}, or convert a window with
    {!to_trace} for the Chrome exporter.  The buffer is plain data, so a
    sink carrying a recorder still marshals ([Mc.Harness] world
    reuse). *)

type t

val stride : int
(** Ints per record (5). *)

val default_capacity : int
(** 65,536 records (~2.6 MB). *)

val create : ?capacity:int -> unit -> t
(** [capacity] is in records.  Raises [Invalid_argument] when <= 0. *)

val emit : t -> kind:int -> ts_us:int -> node:int -> a:int -> b:int -> unit
(** Append one record, overwriting the oldest once the ring is full.
    Allocation-free. *)

val capacity : t -> int
val total : t -> int
(** Records ever emitted (monotone; exceeds [capacity] after wrap). *)

val length : t -> int
(** Records currently held = [min total capacity]. *)

val dropped : t -> int
(** Records overwritten by wrap = [total - length]. *)

val clear : t -> unit

val iter :
  t ->
  (kind:int -> ts_us:int -> node:int -> a:int -> b:int -> unit) ->
  unit
(** Oldest to newest. *)

val to_trace : ?capacity:int -> t -> Trace.t
(** Decode the window into instant events (pid = node, tid = the kind's
    subsystem) for {!Trace.write_chrome_file}. *)

(** {1 Record kinds}

    The kind determines the subsystem and the meaning of the payload
    ints; see {!arg_names}. *)

val k_step : int
val k_fiber_spawn : int
val k_fiber_switch : int
val k_send : int
val k_deliver : int
val k_drop : int
val k_token : int
val k_gather : int
val k_operational : int
val k_view : int
val k_ccs_open : int
val k_ccs_settle : int
val k_ccs_suppress : int
val k_ccs_discard : int
val k_gc_sample : int
val k_hier_round : int
val k_hier_correct : int
val k_hier_elect : int
val kind_count : int

val kind_name : int -> string
val kind_sub : int -> Subsystem.t
val arg_names : int -> string * string
(** Names of the [a] and [b] payloads; [""] marks an unused payload. *)

val drop_reason_name : int -> string
(** Decode the [b] payload of a [k_drop] record (mirrors
    [Netsim.Network]'s loss / partitioned / no-port encoding). *)
