(* Post-hoc diagnosis over a dumped flight-recorder window.

   The on-disk format is a line-oriented text file meant to survive in
   a bug report:

     # ctsim flight recorder v1
     # total <n> dropped <n>
     R <kind> <ts_us> <node> <a> <b>        one line per record
     I <inv> <first_us> <last_us> <count> <worst> <node>

   [report] decodes the window into a human-readable causal timeline:
   records are printed oldest-to-newest with their kind's payload
   names, deliveries and drops are matched back to their send (per
   (src, dst) FIFO order — the same in-order delivery contract
   [Netsim.Network] enforces), and each incident is traced back to a
   suspect: for a token-liveness incident, the last accepted token
   fixes the node that held the token when the ring went quiet, and
   the first drop sourced at that node names the faulted hop. *)

type record = { kind : int; ts_us : int; node : int; a : int; b : int }

type window = {
  records : record array; (* oldest first *)
  incidents : Health.incident list;
  w_total : int; (* records ever emitted, pre-wrap *)
  w_dropped : int; (* records lost to wrap *)
}

(* ------------------------------------------------------------------ *)
(* Dump / load                                                         *)

let header = "# ctsim flight recorder v1"

let write_window buf (recorder : Recorder.t) (incidents : Health.incident list)
    =
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "# total %d dropped %d\n" (Recorder.total recorder)
       (Recorder.dropped recorder));
  Recorder.iter recorder (fun ~kind ~ts_us ~node ~a ~b ->
      Buffer.add_string buf
        (Printf.sprintf "R %d %d %d %d %d\n" kind ts_us node a b));
  List.iter
    (fun (i : Health.incident) ->
      Buffer.add_string buf
        (Printf.sprintf "I %s %d %d %d %d %d\n" i.inv i.first_us i.last_us
           i.count i.worst i.node))
    incidents

let dump_string recorder incidents =
  let buf = Buffer.create 4096 in
  write_window buf recorder incidents;
  Buffer.contents buf

let dump_file recorder incidents path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_string recorder incidents))

let parse_error line msg =
  Error (Printf.sprintf "flight window parse error, line %d: %s" line msg)

let load_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when String.trim first = header ->
      let records = ref [] and incidents = ref [] in
      let total = ref 0 and dropped = ref 0 in
      let err = ref None in
      List.iteri
        (fun i line ->
          let lineno = i + 2 in
          let line = String.trim line in
          if !err = None && line <> "" then
            match String.split_on_char ' ' line with
            | "R" :: [ k; ts; n; a; b ] -> (
                match
                  ( int_of_string_opt k,
                    int_of_string_opt ts,
                    int_of_string_opt n,
                    int_of_string_opt a,
                    int_of_string_opt b )
                with
                | Some kind, Some ts_us, Some node, Some a, Some b ->
                    records := { kind; ts_us; node; a; b } :: !records
                | _ -> err := Some (lineno, "malformed R record"))
            | "I" :: [ inv; f; l; c; w; n ] -> (
                match
                  ( int_of_string_opt f,
                    int_of_string_opt l,
                    int_of_string_opt c,
                    int_of_string_opt w,
                    int_of_string_opt n )
                with
                | Some first_us, Some last_us, Some count, Some worst, Some node
                  ->
                    incidents :=
                      ({ Health.inv; first_us; last_us; count; worst; node }
                        : Health.incident)
                      :: !incidents
                | _ -> err := Some (lineno, "malformed I record"))
            | "#" :: "total" :: [ t; "dropped"; d ] ->
                total := Option.value ~default:0 (int_of_string_opt t);
                dropped := Option.value ~default:0 (int_of_string_opt d)
            | s :: _ when String.length s > 0 && s.[0] = '#' -> ()
            | _ -> err := Some (lineno, "unrecognized line"))
        rest;
      (match !err with
      | Some (lineno, msg) -> parse_error lineno msg
      | None ->
          let records = Array.of_list (List.rev !records) in
          let total = if !total = 0 then Array.length records else !total in
          Ok
            {
              records;
              incidents = List.rev !incidents;
              w_total = total;
              w_dropped = !dropped;
            })
  | _ -> parse_error 1 (Printf.sprintf "missing %S header" header)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> load_string s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Chrome export of a loaded window                                    *)

let to_trace w =
  let tr = Trace.create ~capacity:(Array.length w.records + 16) () in
  Array.iter
    (fun r ->
      let an, bn = Recorder.arg_names r.kind in
      let args = if bn = "" then [ (an, r.a) ] else [ (an, r.a); (bn, r.b) ] in
      let args = if an = "" then [] else args in
      Trace.instant tr ~ts_ns:(r.ts_us * 1000) ~pid:r.node
        ~sub:(Recorder.kind_sub r.kind) ~name:(Recorder.kind_name r.kind) ~args)
    w.records;
  tr

let write_chrome_file w path = Trace.write_chrome_file (to_trace w) path

(* ------------------------------------------------------------------ *)
(* Lineage: match deliveries / drops back to sends                     *)

(* Sends carry dst in [a] (-1 for broadcast); deliveries and drops run
   at the destination with src in [a].  Per (src, dst) the network is
   FIFO, so matching is queue-pop in record order.  Broadcast sends
   fan out, so a broadcast send queue is peeked rather than popped. *)

let sent_at w =
  let n = Array.length w.records in
  let sent = Array.make n (-1) in
  let pending : (int * int, int Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let bcast : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i r ->
      if r.kind = Recorder.k_send then
        if r.a < 0 then Hashtbl.replace bcast r.node i
        else begin
          let key = (r.node, r.a) in
          let q =
            match Hashtbl.find_opt pending key with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.add pending key q;
                q
          in
          Queue.push i q
        end
      else if r.kind = Recorder.k_deliver || r.kind = Recorder.k_drop then begin
        let key = (r.a, r.node) in
        match Hashtbl.find_opt pending key with
        | Some q when not (Queue.is_empty q) -> sent.(i) <- Queue.pop q
        | _ -> (
            match Hashtbl.find_opt bcast r.a with
            | Some j -> sent.(i) <- j
            | None -> ())
      end)
    w.records;
  sent

(* ------------------------------------------------------------------ *)
(* Suspect analysis                                                    *)

type suspect = {
  s_inv : string;
  s_desc : string; (* one-line human description of the faulted hop *)
  s_record : int option; (* index of the pivotal record, if any *)
}

let find_last w ?(before = max_int) p =
  let found = ref None in
  Array.iteri
    (fun i r -> if r.ts_us <= before && p r then found := Some i)
    w.records;
  !found

let find_first w ?(after = min_int) p =
  let found = ref None in
  Array.iteri
    (fun i r ->
      if !found = None && r.ts_us >= after && p r then found := Some i)
    w.records;
  !found

let suspect_of_incident w (inc : Health.incident) =
  match inc.inv with
  | "token-liveness" -> (
      (* the node that last held the token is where the ring went
         quiet; the first drop sourced there names the hop *)
      match
        find_last w ~before:inc.first_us (fun r -> r.kind = Recorder.k_token)
      with
      | None ->
          {
            s_inv = inc.inv;
            s_desc =
              Printf.sprintf
                "no token in the window; ring was silent for %d us" inc.worst;
            s_record = None;
          }
      | Some ti -> (
          let t = w.records.(ti) in
          match
            find_first w ~after:t.ts_us (fun r ->
                r.kind = Recorder.k_drop && r.a = t.node)
          with
          | Some di ->
              let d = w.records.(di) in
              {
                s_inv = inc.inv;
                s_desc =
                  Printf.sprintf
                    "token last accepted by node %d (seq %d) at %d us; next \
                     hop %d -> %d dropped (%s) at %d us"
                    t.node t.a t.ts_us t.node d.node
                    (Recorder.drop_reason_name d.b)
                    d.ts_us;
                s_record = Some di;
              }
          | None ->
              {
                s_inv = inc.inv;
                s_desc =
                  Printf.sprintf
                    "token last accepted by node %d (seq %d) at %d us; no \
                     onward delivery recorded"
                    t.node t.a t.ts_us;
                s_record = Some ti;
              }))
  | "gc-monotonic" | "skew-envelope" -> (
      match
        find_last w ~before:inc.last_us (fun r ->
            r.kind = Recorder.k_ccs_settle && r.node = inc.node)
      with
      | Some ci ->
          let c = w.records.(ci) in
          {
            s_inv = inc.inv;
            s_desc =
              Printf.sprintf
                "worst offender node %d; nearest preceding CCS settle: round \
                 %d, adjustment %d us at %d us"
                inc.node c.a c.b c.ts_us;
            s_record = Some ci;
          }
      | None ->
          {
            s_inv = inc.inv;
            s_desc =
              Printf.sprintf "worst offender node %d; no CCS settle in window"
                inc.node;
            s_record = None;
          })
  | "membership-agreement" -> (
      match
        find_first w (fun r ->
            r.kind = Recorder.k_operational && r.node = inc.node)
      with
      | Some oi ->
          let o = w.records.(oi) in
          {
            s_inv = inc.inv;
            s_desc =
              Printf.sprintf
                "node %d reached operational in gen %d with %d member(s), \
                 disagreeing with an earlier report for the same gen"
                o.node o.a o.b;
            s_record = Some oi;
          }
      | None ->
          {
            s_inv = inc.inv;
            s_desc = Printf.sprintf "disagreeing node %d" inc.node;
            s_record = None;
          })
  | inv ->
      {
        s_inv = inv;
        s_desc = Printf.sprintf "worst value %d at node %d" inc.worst inc.node;
        s_record = None;
      }

let suspects w = List.map (suspect_of_incident w) w.incidents

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let pp_record ppf w sent marks i =
  let r = w.records.(i) in
  let an, bn = Recorder.arg_names r.kind in
  Format.fprintf ppf "%10d us  node %-3d %-7s %-13s" r.ts_us r.node
    (Subsystem.name (Recorder.kind_sub r.kind))
    (Recorder.kind_name r.kind);
  if an <> "" then Format.fprintf ppf " %s=%d" an r.a;
  if bn <> "" then Format.fprintf ppf " %s=%d" bn r.b;
  if r.kind = Recorder.k_drop then
    Format.fprintf ppf " (%s)" (Recorder.drop_reason_name r.b);
  if sent.(i) >= 0 then begin
    let s = w.records.(sent.(i)) in
    Format.fprintf ppf "  [sent %d us ago by node %d]" (r.ts_us - s.ts_us)
      s.node
  end;
  if List.mem i marks then Format.fprintf ppf "   <-- suspect"

let report ?(tail = 40) ppf w =
  let n = Array.length w.records in
  let sent = sent_at w in
  let sus = suspects w in
  let marks = List.filter_map (fun s -> s.s_record) sus in
  Format.fprintf ppf "flight window: %d record(s) held, %d emitted, %d lost \
                      to wrap@."
    n w.w_total w.w_dropped;
  (match w.incidents with
  | [] -> Format.fprintf ppf "incidents: none@."
  | is ->
      Format.fprintf ppf "incidents:@.";
      List.iter
        (fun i -> Format.fprintf ppf "  %a@." Health.pp_incident i)
        is);
  List.iter
    (fun s -> Format.fprintf ppf "suspect [%s]: %s@." s.s_inv s.s_desc)
    sus;
  (* print suspect records that fall before the tail, then the tail *)
  let first_tail = max 0 (n - tail) in
  let early_marks =
    List.filter (fun i -> i < first_tail) (List.sort_uniq compare marks)
  in
  Format.fprintf ppf "timeline (last %d of %d record(s)):@." (n - first_tail)
    n;
  List.iter
    (fun i -> Format.fprintf ppf "  %a@." (fun ppf -> pp_record ppf w sent marks) i)
    early_marks;
  if first_tail > 0 then Format.fprintf ppf "  ...@.";
  for i = first_tail to n - 1 do
    Format.fprintf ppf "  %a@." (fun ppf -> pp_record ppf w sent marks) i
  done
