(** Span / instant-event tracer with a Chrome trace-event exporter.

    Events carry the {e simulated} timestamp (integer nanoseconds), the
    replica identity as [pid] and the {!Subsystem} as [tid], so a dump
    loads directly into Perfetto / [chrome://tracing] with one process
    row per replica and one named thread row per subsystem.

    The buffer is an append-only growable array of plain records —
    Marshal-safe, bounded by [capacity].  Events past the capacity are
    counted in {!dropped} rather than silently discarded. *)

type phase = Begin | End | Instant

type event = {
  ph : phase;
  ts_ns : int;  (** simulated time, ns *)
  pid : int;  (** replica / node id ([0] doubles as "the simulator") *)
  sub : Subsystem.t;
  name : string;
  args : (string * int) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity is 1,000,000 events. *)

val record :
  t ->
  ph:phase ->
  ts_ns:int ->
  pid:int ->
  sub:Subsystem.t ->
  name:string ->
  args:(string * int) list ->
  unit

val span_begin :
  t -> ts_ns:int -> pid:int -> sub:Subsystem.t -> name:string ->
  args:(string * int) list -> unit

val span_end :
  t -> ts_ns:int -> pid:int -> sub:Subsystem.t -> name:string ->
  args:(string * int) list -> unit

val instant :
  t -> ts_ns:int -> pid:int -> sub:Subsystem.t -> name:string ->
  args:(string * int) list -> unit

val length : t -> int
val dropped : t -> int
(** Events rejected because the buffer hit [capacity]. *)

val clear : t -> unit
val iter : t -> (event -> unit) -> unit
val events : t -> event list
val subsystems : t -> Subsystem.t list
(** Distinct subsystems appearing in the recorded stream. *)

val to_chrome : ?process_name:(int -> string) -> t -> Buffer.t -> unit
(** Append the whole trace as one Chrome trace-event JSON document
    ([{"traceEvents": [...]}]).  [ts] is emitted in microseconds with
    three decimals so nanosecond order is preserved; process / thread
    name metadata records are emitted for every (pid, subsystem) pair
    present. *)

val write_chrome_file : ?process_name:(int -> string) -> t -> string -> unit

(** {2 Validation}

    A dependency-free JSON reader plus the schema checks CI runs against
    emitted traces. *)

type summary = {
  v_events : int;  (** non-metadata trace events *)
  v_pids : int;
  v_subsystems : string list;  (** distinct thread names, sorted *)
}

val validate_string : string -> (summary, string) result
(** Checks that the input is well-formed JSON, carries a [traceEvents]
    array whose events have [ph]/[pid]/[tid] (and [ts] for non-metadata
    phases), that timestamps are non-decreasing per [(pid, tid)] and
    that no End closes an unopened span (spans still open when the
    capture ends are allowed). *)

val validate_file : string -> (summary, string) result
