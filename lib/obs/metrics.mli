(** Metrics registry: zero-allocation counters, named gauges, latency /
    adjustment histograms (reusing {!Stats.Histogram}) and bench
    sections, with a snapshot-to-JSON exporter.

    The registry is plain data (no closures), so a metrics-carrying
    simulator world still marshals — the property [Mc.Harness]'s world
    reuse depends on. *)

type t

(** Fixed counter keys.  Adding a key means extending [key_index],
    [key_name] and [all_keys] in lock-step; the registry stores counts in
    a dense int array indexed by [key_index]. *)
type key =
  | Engine_events      (** callbacks run by [Dsim.Engine] *)
  | Fiber_spawns
  | Fiber_switches     (** fiber resumptions after a suspend *)
  | Net_sent
  | Net_delivered
  | Net_dropped
  | Totem_tokens       (** regular-token visits accepted *)
  | Totem_views        (** ring installations (operational transitions) *)
  | Gcs_views          (** view changes delivered to group members *)
  | Ccs_rounds         (** CCS rounds opened *)
  | Ccs_wins           (** rounds closed by a winning synchronizer msg *)
  | Ccs_suppressed     (** sends suppressed by duplicate detection *)
  | Ccs_discards       (** stale / losing round messages discarded *)
  | Ccs_offset_updates (** group-clock offset recomputations *)
  | Repl_requests
  | Repl_checkpoints
  | Rpc_calls
  | Rpc_timeouts
  | Hier_rounds        (** cross-shard bridge rounds agreed *)
  | Hier_corrections   (** bounded corrections injected into a shard *)
  | Hier_elections     (** gateway (re-)elections *)

type hkey = Ccs_adjustment_us | Rpc_latency_us

val create : unit -> t

val incr : t -> key -> unit
(** One array store; allocation-free. *)

val add : t -> key -> int -> unit
val get : t -> key -> int

val observe : t -> hkey -> float -> unit
val hist : t -> hkey -> Stats.Histogram.t

val gauge : t -> string -> float ref
(** Find-or-create a named gauge; set it with [:=].  Cold path only. *)

(** Bench section: accumulated wall time and minor-heap allocation
    attributed to a named hot region, reported per event. *)
type section = {
  s_name : string;
  mutable s_events : int;
  mutable s_ns : float;
  mutable s_minor_words : float;
}

val section : t -> string -> section
val section_record : section -> events:int -> ns:float -> minor_words:float -> unit

val reset : t -> unit

val key_name : key -> string
val hkey_name : hkey -> string
val all_keys : key list

val to_json : t -> string
(** Whole-registry snapshot as a JSON object with [counters], [gauges],
    [histograms] and [sections] members. *)
