(* Adversarial property tests across the stack: random crash schedules,
   failovers in the middle of CCS rounds, and saturating load.  These are
   the invariants the paper's design rests on:

   - agreement: surviving replicas deliver identical message sequences and
     identical group clock sequences, whatever the fault schedule;
   - monotonicity: the group clock never runs backwards at any replica;
   - liveness: as long as one replica survives, clock reads complete. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let check = Alcotest.check
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Totem: agreement under random crash schedules                       *)

let prop_totem_agreement_under_crashes =
  QCheck.Test.make ~count:12
    ~name:"totem: survivors agree under random crash schedules"
    QCheck.(
      triple (int_range 1 10_000) (int_range 3 5)
        (list_of_size (Gen.int_range 0 2) (int_range 200 2_000)))
    (fun (seed, nodes, crash_times_us) ->
      let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
      let net =
        Netsim.Network.create eng
          {
            Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us 26);
            loss = 0.;
          }
      in
      let delivered = Array.init nodes (fun _ -> ref []) in
      let ring_nodes =
        Array.init nodes (fun i ->
            Totem.Node.create eng net ~me:(Nid.of_int i)
              ~handler:(fun ev ->
                match ev with
                | Totem.Node.Deliver { payload; _ } ->
                    delivered.(i) := payload :: !(delivered.(i))
                | Totem.Node.View _ | Totem.Node.Blocked -> ())
              ())
      in
      Array.iter Totem.Node.start ring_nodes;
      Dsim.Engine.run ~until:(Time.of_ms 50) eng;
      (* steady traffic from every live node *)
      for k = 0 to 39 do
        Dsim.Engine.schedule eng
          (Span.of_us (k * 80))
          (fun () ->
            let sender = ring_nodes.(k mod nodes) in
            try Totem.Node.multicast sender (string_of_int k)
            with Invalid_argument _ -> ())
      done;
      (* crash victims at random times; never crash node 0 so at least one
         survivor is guaranteed *)
      List.iteri
        (fun idx at ->
          let victim = 1 + (idx mod (nodes - 1)) in
          Dsim.Engine.schedule eng (Span.of_us at) (fun () ->
              Totem.Node.crash ring_nodes.(victim)))
        crash_times_us;
      Dsim.Engine.run
        ~until:(Time.add (Dsim.Engine.now eng) (Span.of_ms 400))
        eng;
      (* every surviving pair agrees on a common prefix = the shorter one *)
      let survivors =
        List.filter
          (fun i -> Totem.Node.is_operational ring_nodes.(i))
          (List.init nodes Fun.id)
      in
      let seqs =
        List.map (fun i -> List.rev !(delivered.(i))) survivors
      in
      let rec prefix a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | x :: a, y :: b -> x = y && prefix a b
      in
      List.for_all
        (fun s -> List.for_all (fun s' -> prefix s s') seqs)
        seqs)

(* ------------------------------------------------------------------ *)
(* CTS: monotone and agreed group clock under failover mid-round       *)

let prop_cts_monotone_under_failover =
  QCheck.Test.make ~count:8
    ~name:"cts: group clock monotone and agreed under mid-round failover"
    QCheck.(pair (int_range 1 10_000) (int_range 500 3_000))
    (fun (seed, crash_at_us) ->
      let clock_config i =
        {
          Clock.Hwclock.default_config with
          offset = Span.of_ms (-5 * i);
          drift_ppm = 10. *. float_of_int i;
        }
      in
      let cluster =
        Cluster.create ~seed:(Int64.of_int seed) ~clock_config ~nodes:4 ()
      in
      Cluster.start_all cluster;
      Cluster.run_until cluster (fun () ->
          Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
      let config =
        {
          Replica.default_config with
          style = Replica.Semi_active;
          initial_members = List.map Nid.of_int [ 1; 2; 3 ];
        }
      in
      let replicas =
        List.map
          (fun node ->
            let r =
              Replica.create cluster.Cluster.eng
                ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
                ~group:cluster.Cluster.server_group
                ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
                ~app:(Scenario.Apps.time_server cluster ~node ())
                ()
            in
            Cluster.run_for cluster (Span.of_ms 2);
            r)
          [ 1; 2; 3 ]
      in
      let client =
        Rpc.Client.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
          ~my_group:cluster.Cluster.client_group
          ~server_group:cluster.Cluster.server_group ()
      in
      Cluster.run_until cluster (fun () ->
          List.length
            (Gcs.Endpoint.members_of
               cluster.Cluster.nodes.(0).Cluster.endpoint
               cluster.Cluster.server_group)
          = 3);
      (* crash the primary at a random instant, possibly mid-round *)
      let primary = List.find Replica.is_primary replicas in
      Dsim.Engine.schedule cluster.Cluster.eng (Span.of_us crash_at_us)
        (fun () -> Replica.crash primary);
      let ok = ref true in
      let finished = ref false in
      Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
          let prev = ref min_int in
          for _ = 1 to 12 do
            let v =
              int_of_string
                (Rpc.Client.invoke ~timeout:(Span.of_ms 100) ~retries:3
                   client ~op:"gettimeofday" ~arg:"")
            in
            if v < !prev then ok := false;
            prev := v
          done;
          finished := true);
      Cluster.run_until ~limit:(Span.of_sec 30) cluster (fun () -> !finished);
      Cluster.run_for cluster (Span.of_ms 20);
      (* no surviving replica recorded a rollback either *)
      List.iter
        (fun r ->
          if
            (r != primary)
            [@ctslint.allow
              "phys-equality"
                "replicas are stateful records; 'every replica except the \
                 crashed primary' is an identity filter"]
          then
            if
              (Cts.Service.stats (Replica.service r)).Cts.Service.rollbacks
              > 0
            then ok := false)
        replicas;
      !ok)

(* ------------------------------------------------------------------ *)
(* Flow control: saturating load drains without unbounded queues       *)

let test_saturating_load_drains () =
  let eng = Dsim.Engine.create ~seed:13L () in
  let net =
    Netsim.Network.create eng
      {
        Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us 26);
        loss = 0.;
      }
  in
  let total = ref 0 in
  let nodes =
    Array.init 4 (fun i ->
        Totem.Node.create eng net ~me:(Nid.of_int i)
          ~handler:(fun ev ->
            match ev with
            | Totem.Node.Deliver _ -> if i = 0 then incr total
            | Totem.Node.View _ | Totem.Node.Blocked -> ())
          ())
  in
  Array.iter Totem.Node.start nodes;
  Dsim.Engine.run ~until:(Time.of_ms 50) eng;
  (* a burst far beyond one rotation's budget from every node *)
  for k = 1 to 1_000 do
    Totem.Node.multicast nodes.(k mod 4) (string_of_int k)
  done;
  Dsim.Engine.run ~until:(Time.add (Dsim.Engine.now eng) (Span.of_sec 1)) eng;
  check bool "all 1000 delivered" true (!total = 1_000);
  check bool "queues drained" true
    (Array.for_all (fun n -> Totem.Node.pending n = 0) nodes)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_totem_agreement_under_crashes;
        QCheck_alcotest.to_alcotest prop_cts_monotone_under_failover;
        Alcotest.test_case "saturating load" `Quick
          test_saturating_load_drains;
      ] );
  ]
