(* Tests for lib/obs: the metrics registry, the span tracer and its
   Chrome exporter / validator, the single-sink gating discipline, the
   per-message accounting of batched network deliveries, and the §3.4
   cross-check between the recorder's skew samples and the obs
   [ccs-round] events. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Net = Netsim.Network
module Nid = Netsim.Node_id
module E = Scenario.Experiments
module R = Scenario.Report

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let n = Nid.of_int

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  check int "fresh counter" 0 (Obs.Metrics.get m Obs.Metrics.Ccs_rounds);
  Obs.Metrics.incr m Obs.Metrics.Ccs_rounds;
  Obs.Metrics.incr m Obs.Metrics.Ccs_rounds;
  Obs.Metrics.add m Obs.Metrics.Net_sent 5;
  check int "incr twice" 2 (Obs.Metrics.get m Obs.Metrics.Ccs_rounds);
  check int "add" 5 (Obs.Metrics.get m Obs.Metrics.Net_sent);
  (* every key is independent *)
  List.iter
    (fun k ->
      if k <> Obs.Metrics.Ccs_rounds && k <> Obs.Metrics.Net_sent then
        check int (Obs.Metrics.key_name k) 0 (Obs.Metrics.get m k))
    Obs.Metrics.all_keys;
  Obs.Metrics.reset m;
  check int "reset" 0 (Obs.Metrics.get m Obs.Metrics.Ccs_rounds)

let test_metrics_gauges_hists_sections () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "queue_depth" in
  g := 42.;
  check bool "gauge find-or-create" true
    ((Obs.Metrics.gauge m "queue_depth" == g)
    [@ctslint.allow
      "phys-equality" "the test asserts find-or-create returns the same \
                       ref, so identity is exactly what is under test"]);
  Obs.Metrics.observe m Obs.Metrics.Rpc_latency_us 120.;
  Obs.Metrics.observe m Obs.Metrics.Rpc_latency_us 130.;
  check int "hist count" 2
    (Stats.Histogram.count (Obs.Metrics.hist m Obs.Metrics.Rpc_latency_us));
  let s = Obs.Metrics.section m "engine-step" in
  Obs.Metrics.section_record s ~events:1000 ~ns:5e6 ~minor_words:0.;
  check bool "section find-or-create" true
    ((Obs.Metrics.section m "engine-step" == s)
    [@ctslint.allow
      "phys-equality" "the test asserts find-or-create returns the same \
                       record, so identity is exactly what is under test"]);
  check int "section events" 1000 s.Obs.Metrics.s_events;
  let json = Obs.Metrics.to_json m in
  let contains needle =
    let ln = String.length needle and lj = String.length json in
    let rec go i = i + ln <= lj && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  check bool "json counters" true (contains "\"counters\"");
  check bool "json gauge" true (contains "\"queue_depth\": 42");
  check bool "json hist" true (contains "\"rpc_latency_us\"");
  check bool "json section" true (contains "\"engine-step\"")

(* ------------------------------------------------------------------ *)
(* Trace buffer + Chrome exporter + validator                          *)

let sub = Obs.Subsystem.Ccs

let test_trace_capacity_and_clear () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Trace.instant tr ~ts_ns:(i * 1000) ~pid:1 ~sub ~name:"x" ~args:[]
  done;
  check int "kept at capacity" 4 (Obs.Trace.length tr);
  check int "excess counted" 2 (Obs.Trace.dropped tr);
  Obs.Trace.clear tr;
  check int "cleared" 0 (Obs.Trace.length tr);
  check int "dropped cleared" 0 (Obs.Trace.dropped tr)

let build_sample_trace () =
  let tr = Obs.Trace.create () in
  Obs.Trace.span_begin tr ~ts_ns:1_000 ~pid:1 ~sub ~name:"ccs-round"
    ~args:[ ("round", 1) ];
  Obs.Trace.instant tr ~ts_ns:1_500 ~pid:2 ~sub:Obs.Subsystem.Netsim
    ~name:"send" ~args:[ ("dst", 1) ];
  Obs.Trace.span_end tr ~ts_ns:2_000 ~pid:1 ~sub ~name:"ccs-round"
    ~args:[ ("round", 1); ("adjustment_us", -3) ];
  Obs.Trace.instant tr ~ts_ns:2_500 ~pid:2 ~sub:Obs.Subsystem.Totem
    ~name:"token" ~args:[];
  tr

let test_chrome_roundtrip () =
  let tr = build_sample_trace () in
  let b = Buffer.create 256 in
  Obs.Trace.to_chrome tr b;
  match Obs.Trace.validate_string (Buffer.contents b) with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check int "events" 4 s.Obs.Trace.v_events;
      check int "pids" 2 s.Obs.Trace.v_pids;
      check bool "subsystems named" true
        (List.mem "ccs" s.Obs.Trace.v_subsystems
        && List.mem "netsim" s.Obs.Trace.v_subsystems
        && List.mem "totem" s.Obs.Trace.v_subsystems)

let test_chrome_file_roundtrip () =
  let tr = build_sample_trace () in
  let file = Filename.temp_file "obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Obs.Trace.write_chrome_file tr file;
      match Obs.Trace.validate_file file with
      | Error e -> Alcotest.fail e
      | Ok s -> check int "events from file" 4 s.Obs.Trace.v_events)

let test_validator_rejects () =
  (match Obs.Trace.validate_string "{ not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted");
  (match Obs.Trace.validate_string "{\"traceEvents\": 3}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-array traceEvents accepted");
  (* timestamps running backwards on one (pid, tid) row *)
  let backwards =
    {|{"traceEvents":[
      {"ph":"i","ts":2.000,"pid":1,"tid":4,"name":"a","s":"t"},
      {"ph":"i","ts":1.000,"pid":1,"tid":4,"name":"b","s":"t"}]}|}
  in
  (match Obs.Trace.validate_string backwards with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-monotone ts accepted");
  (* End with no matching Begin *)
  let unopened =
    {|{"traceEvents":[
      {"ph":"E","ts":1.000,"pid":1,"tid":4,"name":"a"}]}|}
  in
  (match Obs.Trace.validate_string unopened with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "End-without-Begin accepted");
  (* a span still open when the capture ends is fine *)
  let open_at_end =
    {|{"traceEvents":[
      {"ph":"B","ts":1.000,"pid":1,"tid":4,"name":"a"}]}|}
  in
  match Obs.Trace.validate_string open_at_end with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("open span rejected: " ^ e)

(* ------------------------------------------------------------------ *)
(* Sink gating on the engine                                           *)

let test_sink_gating_and_late_attach () =
  let eng = Dsim.Engine.create () in
  for i = 1 to 10 do
    Dsim.Engine.schedule eng (Span.of_us i) ignore
  done;
  Dsim.Engine.run eng;
  (* nothing attached: the run must leave no observable state anywhere *)
  check bool "inactive by default" false
    (Obs.Sink.is_active (Dsim.Engine.obs eng));
  (* attach after the engine (and a whole run) already exists *)
  let m = Obs.Metrics.create () in
  let s = Obs.Sink.create () in
  Obs.Sink.attach s ~metrics:m;
  Dsim.Engine.set_obs eng s;
  for i = 1 to 7 do
    Dsim.Engine.schedule eng (Span.of_us i) ignore
  done;
  Dsim.Engine.run eng;
  check int "only post-attach events counted" 7
    (Obs.Metrics.get m Obs.Metrics.Engine_events)

let test_trace_steps_flag () =
  let run trace_steps =
    let eng = Dsim.Engine.create () in
    let tr = Obs.Trace.create () in
    let s = Obs.Sink.create () in
    Obs.Sink.attach s ~trace:tr;
    Obs.Sink.set_trace_steps s trace_steps;
    Dsim.Engine.set_obs eng s;
    for i = 1 to 5 do
      Dsim.Engine.schedule eng (Span.of_us i) ignore
    done;
    Dsim.Engine.run eng;
    List.length
      (List.filter
         (fun (e : Obs.Trace.event) -> e.Obs.Trace.name = "step")
         (Obs.Trace.events tr))
  in
  check int "step instants off by default" 0 (run false);
  check int "step instants on demand" 5 (run true)

(* ------------------------------------------------------------------ *)
(* Netsim: batched broadcasts keep exact per-message obs records       *)

let obs_net () =
  let eng = Dsim.Engine.create () in
  let net =
    Net.create eng
      { Net.latency = Netsim.Latency.Constant (Span.of_us 10); loss = 0. }
  in
  let tr = Obs.Trace.create () in
  let m = Obs.Metrics.create () in
  let s = Obs.Sink.create () in
  Obs.Sink.attach s ~trace:tr ~metrics:m;
  Dsim.Engine.set_obs eng s;
  (eng, net, tr, m)

let events_named tr name =
  List.filter
    (fun (e : Obs.Trace.event) -> e.Obs.Trace.name = name)
    (Obs.Trace.events tr)

let test_batch_per_message_records () =
  let eng, net, tr, m = obs_net () in
  for i = 0 to 2 do
    Net.attach net (n i) (fun ~src:_ _ -> ())
  done;
  Net.broadcast_many net ~src:(n 0) [| "a"; "b"; "c" |] ~n:3;
  Dsim.Engine.run eng;
  (* 3 messages x 2 receivers: one record per absorbed message, each
     tagged with its position in the batch *)
  check int "sent records" 3 (List.length (events_named tr "send"));
  let delivers = events_named tr "deliver" in
  check int "deliver records" 6 (List.length delivers);
  check int "deliver counter" 6 (Obs.Metrics.get m Obs.Metrics.Net_delivered);
  List.iter
    (fun pid ->
      let pos =
        List.filter_map
          (fun (e : Obs.Trace.event) ->
            if e.Obs.Trace.pid = pid then
              List.assoc_opt "batch_pos" e.Obs.Trace.args
            else None)
          delivers
      in
      check (Alcotest.list int)
        (Printf.sprintf "batch positions at node %d" pid)
        [ 0; 1; 2 ] pos)
    [ 1; 2 ]

let test_batch_mid_detach_split () =
  let eng, net, tr, m = obs_net () in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  (* node 1 detaches itself on the first delivery of the batch: the two
     remaining absorbed messages must each get their own No_port drop
     record, with their batch positions *)
  Net.attach net (n 1) (fun ~src:_ _ -> Net.detach net (n 1));
  Net.broadcast_many net ~src:(n 0) [| "a"; "b"; "c" |] ~n:3;
  Dsim.Engine.run eng;
  let delivers = events_named tr "deliver" in
  let drops = events_named tr "drop" in
  check int "one delivered before detach" 1 (List.length delivers);
  check int "rest dropped per message" 2 (List.length drops);
  check int "drop counter" 2 (Obs.Metrics.get m Obs.Metrics.Net_dropped);
  check (Alcotest.list int) "drop batch positions" [ 1; 2 ]
    (List.filter_map
       (fun (e : Obs.Trace.event) ->
         List.assoc_opt "batch_pos" e.Obs.Trace.args)
       drops);
  List.iter
    (fun (e : Obs.Trace.event) ->
      check (Alcotest.option int) "No_port reason" (Some 2)
        (List.assoc_opt "reason" e.Obs.Trace.args))
    drops

(* ------------------------------------------------------------------ *)
(* §3.4 cross-check: obs ccs-round events vs the recorder's samples    *)

(* One skew run with the sink attached.  The trace's [ccs-round] End
   events at pid [w + 1] must agree, round for round, with what the
   recorder sampled at replica [w]: rounds strictly increasing, the
   winner's post-round offsets identical, and each End's adjustment the
   exact difference between consecutive offsets. *)
let prop_skew_trace_matches_samples =
  QCheck.Test.make ~count:5
    ~name:"obs: ccs-round events agree with the skew recorder"
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let trace = Obs.Trace.create () in
      let metrics = Obs.Metrics.create () in
      let sink = Obs.Sink.create () in
      Obs.Sink.attach sink ~trace ~metrics;
      let rounds = 40 in
      let run =
        E.skew ~seed:(Int64.of_int seed) ~rounds ~replicas:3 ~obs:sink ()
      in
      (* the whole stack showed up in the trace *)
      if List.length (Obs.Trace.subsystems trace) < 6 then
        QCheck.Test.fail_reportf "only %d subsystems traced"
          (List.length (Obs.Trace.subsystems trace));
      if Obs.Metrics.get metrics Obs.Metrics.Ccs_rounds < 3 * rounds then
        QCheck.Test.fail_reportf "ccs rounds undercounted: %d"
          (Obs.Metrics.get metrics Obs.Metrics.Ccs_rounds);
      (* recorder-side: rounds strictly increase per replica *)
      Array.iter
        (fun samples ->
          ignore
            (List.fold_left
               (fun prev (s : E.round_sample) ->
                 if s.E.round <= prev then
                   QCheck.Test.fail_reportf "recorder rounds not monotone";
                 s.E.round)
               0 samples))
        run.E.samples;
      (* trace-side: per pid, ccs-round End rounds strictly increase *)
      let ends_at pid =
        List.filter
          (fun (e : Obs.Trace.event) ->
            e.Obs.Trace.ph = Obs.Trace.End
            && e.Obs.Trace.name = "ccs-round"
            && e.Obs.Trace.pid = pid)
          (Obs.Trace.events trace)
      in
      for pid = 1 to 3 do
        ignore
          (List.fold_left
             (fun prev (e : Obs.Trace.event) ->
               let r =
                 Option.value ~default:(-1)
                   (List.assoc_opt "round" e.Obs.Trace.args)
               in
               if r <= prev then
                 QCheck.Test.fail_reportf "trace rounds not monotone";
               r)
             0 (ends_at pid))
      done;
      (* winner's offsets and adjustments, exactly *)
      let w = R.first_round_winner run in
      let ends = ends_at (w + 1) in
      let samples = run.E.samples.(w) in
      if List.length ends <> List.length samples then
        QCheck.Test.fail_reportf "winner: %d End events for %d samples"
          (List.length ends) (List.length samples);
      List.iter2
        (fun (e : Obs.Trace.event) (s : E.round_sample) ->
          let off =
            Option.value ~default:min_int
              (List.assoc_opt "offset_us" e.Obs.Trace.args)
          in
          if off <> Span.to_us s.E.offset then
            QCheck.Test.fail_reportf
              "winner offset mismatch: trace %d us, sample %d us" off
              (Span.to_us s.E.offset))
        ends samples;
      ignore
        (List.fold_left
           (fun prev_off (e : Obs.Trace.event) ->
             let off =
               Option.value ~default:min_int
                 (List.assoc_opt "offset_us" e.Obs.Trace.args)
             in
             let adj =
               Option.value ~default:min_int
                 (List.assoc_opt "adjustment_us" e.Obs.Trace.args)
             in
             if off - prev_off <> adj then
               QCheck.Test.fail_reportf
                 "adjustment %d us is not the offset delta %d us" adj
                 (off - prev_off);
             off)
           0 ends);
      true)

(* ------------------------------------------------------------------ *)
(* Mc: span trace of a shrunk counterexample                           *)

let test_trace_violation () =
  let buggy =
    {
      Mc.Harness.default with
      Mc.Harness.rounds = 8;
      think_us = 60;
      straggle_us = 80;
      jitter_us = 5;
      latency_us = 20;
      bug = Some Mc.Harness.Ignore_buffered_winner;
    }
  in
  let r =
    Mc.Explore.explore ~strategy:(Mc.Strategy.Bounded { depth = 1 })
      ~budget:300 buggy
  in
  match r.Mc.Explore.violations with
  | [] -> Alcotest.fail "exploration missed the seeded bug"
  | v :: _ ->
      let trace, metrics = Mc.Explore.trace_violation buggy v in
      check bool "trace nonempty" true (Obs.Trace.length trace > 0);
      check bool "ccs rounds counted" true
        (Obs.Metrics.get metrics Obs.Metrics.Ccs_rounds > 0);
      check bool "ccs spans present" true
        (List.mem Obs.Subsystem.Ccs (Obs.Trace.subsystems trace));
      let b = Buffer.create 4096 in
      Obs.Trace.to_chrome trace b;
      (match Obs.Trace.validate_string (Buffer.contents b) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("counterexample trace invalid: " ^ e))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
        Alcotest.test_case "metrics gauges/hists/sections" `Quick
          test_metrics_gauges_hists_sections;
        Alcotest.test_case "trace capacity + clear" `Quick
          test_trace_capacity_and_clear;
        Alcotest.test_case "chrome export round-trip" `Quick
          test_chrome_roundtrip;
        Alcotest.test_case "chrome file round-trip" `Quick
          test_chrome_file_roundtrip;
        Alcotest.test_case "validator rejects bad traces" `Quick
          test_validator_rejects;
        Alcotest.test_case "sink gating + late attach" `Quick
          test_sink_gating_and_late_attach;
        Alcotest.test_case "trace_steps flag" `Quick test_trace_steps_flag;
        Alcotest.test_case "batched broadcast per-message records" `Quick
          test_batch_per_message_records;
        Alcotest.test_case "mid-batch detach split" `Quick
          test_batch_mid_detach_split;
        QCheck_alcotest.to_alcotest prop_skew_trace_matches_samples;
        Alcotest.test_case "counterexample span trace" `Quick
          test_trace_violation;
      ] );
  ]
