(* Unit and property tests for the discrete-event engine, fibers and
   synchronization primitives. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Engine = Dsim.Engine
module Fiber = Dsim.Fiber
module Sync = Dsim.Sync

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_arithmetic () =
  let t = Time.add Time.epoch (Span.of_us 5) in
  check int "us roundtrip" 5 (Time.to_us t);
  let t2 = Time.add t (Span.of_ms 1) in
  check int "diff" 1_000_000 (Span.to_ns (Time.diff t2 t));
  check bool "order" true Time.(t < t2);
  check int "sub" 5 (Time.to_us (Time.sub t2 (Span.of_ms 1)))

let test_time_truncate () =
  let t = Time.of_ns 123_456_789 in
  check int "truncate to us" 123_456_000
    (Time.to_ns (Time.truncate_to (Span.of_us 1) t));
  check int "truncate to s" 0
    (Time.to_ns (Time.truncate_to (Span.of_sec 1) t));
  check int "truncate exact" 123_456_000
    (Time.to_ns (Time.truncate_to (Span.of_us 1) (Time.of_ns 123_456_000)))

let test_span_scale () =
  check int "scale 0.5" 500 (Span.to_ns (Span.scale 0.5 (Span.of_ns 1000)));
  check int "neg" (-250) (Span.to_ns (Span.neg (Span.of_ns 250)));
  check bool "is_negative" true (Span.is_negative (Span.of_ns (-1)))

let test_time_pp () =
  let s = Format.asprintf "%a" Time.pp (Time.of_us 12_000_351) in
  check Alcotest.string "pp" "12.000351s" s

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Dsim.Rng.create 42L and b = Dsim.Rng.create 42L in
  for _ = 1 to 100 do
    check int "same stream" (Dsim.Rng.bits a) (Dsim.Rng.bits b)
  done

let test_rng_split_independent () =
  let a = Dsim.Rng.create 42L in
  let c = Dsim.Rng.split a in
  (* the split stream differs from the parent's continuation *)
  let differs = ref false in
  for _ = 1 to 10 do
    if Dsim.Rng.bits a <> Dsim.Rng.bits c then differs := true
  done;
  check bool "split independent" true !differs

let test_rng_range () =
  let r = Dsim.Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Dsim.Rng.int_range r (-3) 5 in
    if v < -3 || v > 5 then Alcotest.fail "out of range"
  done

let test_rng_range_covers () =
  let r = Dsim.Rng.create 7L in
  let seen = Array.make 3 false in
  for _ = 1 to 300 do
    seen.(Dsim.Rng.int_range r 0 2) <- true
  done;
  check bool "all values drawn" true (Array.for_all Fun.id seen)

let test_rng_gaussian_moments () =
  let r = Dsim.Rng.create 11L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Dsim.Rng.gaussian r ~mu:10. ~sigma:2.
  done;
  let mean = !sum /. float_of_int n in
  check bool "gaussian mean near mu" true (abs_float (mean -. 10.) < 0.1)

(* ------------------------------------------------------------------ *)
(* Event queue *)

(* The queue carries two payload lanes (the engine parks (fn, arg) pairs
   there); single-payload tests put [()] in the first lane. *)
let qpop q = Option.map (fun (_, (), v) -> v) (Dsim.Event_queue.pop q)

let test_queue_order () =
  let q = Dsim.Event_queue.create () in
  Dsim.Event_queue.push q (Time.of_us 3) () "c";
  Dsim.Event_queue.push q (Time.of_us 1) () "a";
  Dsim.Event_queue.push q (Time.of_us 2) () "b";
  let pop () = Option.get (qpop q) in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  check bool "empty" true (Dsim.Event_queue.is_empty q)

let test_queue_fifo_at_same_time () =
  let q = Dsim.Event_queue.create () in
  for i = 1 to 50 do
    Dsim.Event_queue.push q (Time.of_us 1) () i
  done;
  for i = 1 to 50 do
    check int "fifo" i (Option.get (qpop q))
  done

let test_queue_growth () =
  let q = Dsim.Event_queue.create () in
  for i = 999 downto 0 do
    Dsim.Event_queue.push q (Time.of_us i) () i
  done;
  check int "length" 1000 (Dsim.Event_queue.length q);
  let prev = ref (-1) in
  for _ = 1 to 1000 do
    let v = Option.get (qpop q) in
    if v <= !prev then Alcotest.fail "heap order violated";
    prev := v
  done

let prop_queue_sorted =
  QCheck.Test.make ~count:200 ~name:"event queue pops in time order"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Dsim.Event_queue.create () in
      List.iter
        (fun us -> Dsim.Event_queue.push q (Time.of_us us) () us)
        times;
      let rec drain prev =
        match qpop q with None -> true | Some v -> v >= prev && drain v
      in
      drain (-1))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_runs_in_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng (Span.of_us 10) (fun () -> log := 2 :: !log);
  Engine.schedule eng (Span.of_us 5) (fun () -> log := 1 :: !log);
  Engine.schedule eng (Span.of_us 20) (fun () -> log := 3 :: !log);
  Engine.run eng;
  check (Alcotest.list int) "order" [ 1; 2; 3 ] (List.rev !log);
  check int "time advanced" 20 (Time.to_us (Engine.now eng))

let test_engine_until () =
  let eng = Engine.create () in
  let fired = ref 0 in
  Engine.schedule eng (Span.of_us 5) (fun () -> incr fired);
  Engine.schedule eng (Span.of_us 50) (fun () -> incr fired);
  Engine.run ~until:(Time.of_us 10) eng;
  check int "only first fired" 1 !fired;
  check int "clock at horizon" 10 (Time.to_us (Engine.now eng));
  Engine.run eng;
  check int "rest fired" 2 !fired

let test_engine_nested_schedule () =
  let eng = Engine.create () in
  let hits = ref [] in
  Engine.schedule eng (Span.of_us 1) (fun () ->
      hits := Time.to_us (Engine.now eng) :: !hits;
      Engine.schedule eng (Span.of_us 2) (fun () ->
          hits := Time.to_us (Engine.now eng) :: !hits));
  Engine.run eng;
  check (Alcotest.list int) "nested times" [ 1; 3 ] (List.rev !hits)

let test_engine_stop () =
  let eng = Engine.create () in
  let fired = ref 0 in
  Engine.schedule eng (Span.of_us 1) (fun () ->
      incr fired;
      Engine.stop eng);
  Engine.schedule eng (Span.of_us 2) (fun () -> incr fired);
  Engine.run eng;
  check int "stopped after first" 1 !fired

let test_engine_rejects_past () =
  let eng = Engine.create () in
  Engine.schedule eng (Span.of_us 10) (fun () ->
      Alcotest.check_raises "past scheduling rejected"
        (Invalid_argument
           "Engine.schedule_at: 0.000005s is before now (0.000010s)")
        (fun () -> Engine.schedule_at eng (Time.of_us 5) ignore));
  Engine.run eng

(* Pooled events must interleave with closure events in exact (time,
   insertion) order: the pool recycles cells, not ordering. *)
let test_engine_schedule_call_order () =
  let eng = Engine.create () in
  let hits = ref [] in
  let hit tag = hits := tag :: !hits in
  Engine.schedule_call eng (Span.of_us 2) hit "call@2";
  Engine.schedule eng (Span.of_us 1) (fun () -> hit "closure@1");
  Engine.schedule_call eng (Span.of_us 1) hit "call@1";
  Engine.schedule_call_at eng (Time.of_us 3) hit "call_at@3";
  Engine.schedule eng (Span.of_us 2) (fun () -> hit "closure@2");
  Engine.run eng;
  check
    (Alcotest.list Alcotest.string)
    "pooled and closure events share one order"
    [ "closure@1"; "call@1"; "call@2"; "closure@2"; "call_at@3" ]
    (List.rev !hits)

(* A pooled callback may re-schedule from inside its own firing: the cell
   is released before the callback runs, so the very same cell can carry
   the next event, with the right argument each time. *)
let test_engine_schedule_call_reentrant () =
  let eng = Engine.create () in
  let seen = ref [] in
  let rec chain n =
    seen := n :: !seen;
    if n < 5 then Engine.schedule_call eng (Span.of_us 1) chain (n + 1)
  in
  Engine.schedule_call eng (Span.of_us 1) chain 1;
  Engine.run eng;
  check (Alcotest.list int) "re-scheduling from a pooled event" [ 1; 2; 3; 4; 5 ]
    (List.rev !seen);
  check int "virtual time advanced per hop" 5 (Time.to_us (Engine.now eng))

let test_with_gc_tuning_restores () =
  let before = Gc.get () in
  let inside =
    Engine.with_gc_tuning ~minor_heap_words:(512 * 1024) (fun () ->
        (Gc.get ()).Gc.minor_heap_size)
  in
  check int "tuned inside" (512 * 1024) inside;
  check int "minor heap restored" before.Gc.minor_heap_size
    (Gc.get ()).Gc.minor_heap_size;
  check int "space overhead restored" before.Gc.space_overhead
    (Gc.get ()).Gc.space_overhead;
  (* restored even when the body raises *)
  (try
     Engine.with_gc_tuning (fun () -> raise Exit)
   with Exit -> ());
  check int "restored after raise" before.Gc.minor_heap_size
    (Gc.get ()).Gc.minor_heap_size

(* ------------------------------------------------------------------ *)
(* Fibers *)

let test_fiber_sleep () =
  let eng = Engine.create () in
  let woke = ref Time.epoch in
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng (Span.of_us 42);
      woke := Engine.now eng);
  Engine.run eng;
  check int "woke at 42us" 42 (Time.to_us !woke)

let test_fiber_interleaving () =
  let eng = Engine.create () in
  let log = ref [] in
  let fiber name delay =
    Fiber.spawn eng (fun () ->
        Fiber.sleep eng (Span.of_us delay);
        log := name :: !log;
        Fiber.sleep eng (Span.of_us delay);
        log := name :: !log)
  in
  fiber "slow" 10;
  fiber "fast" 3;
  Engine.run eng;
  check
    (Alcotest.list Alcotest.string)
    "interleaved" [ "fast"; "fast"; "slow"; "slow" ] (List.rev !log)

let test_fiber_not_in_fiber () =
  let eng = Engine.create () in
  Alcotest.check_raises "sleep outside fiber" Fiber.Not_in_fiber (fun () ->
      Fiber.sleep eng (Span.of_us 1))

let test_fiber_double_resume_rejected () =
  let eng = Engine.create () in
  let saved = ref None in
  Fiber.spawn eng (fun () -> Fiber.suspend (fun k -> saved := Some k));
  Engine.run eng;
  let k = Option.get !saved in
  k ();
  Alcotest.check_raises "second resume rejected"
    (Invalid_argument "Fiber: resume called twice") k

(* ------------------------------------------------------------------ *)
(* Sync *)

let test_ivar () =
  let eng = Engine.create () in
  let iv = Sync.Ivar.create () in
  let got = ref 0 in
  Fiber.spawn eng (fun () -> got := Sync.Ivar.read iv);
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng (Span.of_us 7);
      Sync.Ivar.fill eng iv 99);
  Engine.run eng;
  check int "ivar value" 99 !got;
  check bool "is_filled" true (Sync.Ivar.is_filled iv);
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Sync.Ivar.fill eng iv 1)

let test_ivar_multiple_readers () =
  let eng = Engine.create () in
  let iv = Sync.Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 5 do
    Fiber.spawn eng (fun () -> sum := !sum + Sync.Ivar.read iv)
  done;
  Fiber.spawn eng (fun () -> Sync.Ivar.fill eng iv 10);
  Engine.run eng;
  check int "all readers woke" 50 !sum

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Sync.Mailbox.create () in
  let got = ref [] in
  Fiber.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Sync.Mailbox.recv mb :: !got
      done);
  Fiber.spawn eng (fun () ->
      Sync.Mailbox.send eng mb "a";
      Fiber.sleep eng (Span.of_us 1);
      Sync.Mailbox.send eng mb "b";
      Sync.Mailbox.send eng mb "c");
  Engine.run eng;
  check
    (Alcotest.list Alcotest.string)
    "fifo" [ "a"; "b"; "c" ] (List.rev !got)

let test_mailbox_nonblocking () =
  let eng = Engine.create () in
  let mb = Sync.Mailbox.create () in
  check bool "recv_opt empty" true (Sync.Mailbox.recv_opt mb = None);
  Sync.Mailbox.send eng mb 5;
  check bool "recv_opt full" true (Sync.Mailbox.recv_opt mb = Some 5)

let test_condition () =
  let eng = Engine.create () in
  let cond = Sync.Condition.create () in
  let woke = ref 0 in
  for _ = 1 to 3 do
    Fiber.spawn eng (fun () ->
        Sync.Condition.wait cond;
        incr woke)
  done;
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng (Span.of_us 1);
      Sync.Condition.signal eng cond;
      Fiber.sleep eng (Span.of_us 1);
      Sync.Condition.broadcast eng cond);
  Engine.run eng;
  check int "all woke" 3 !woke

let test_waitgroup () =
  let eng = Engine.create () in
  let wg = Sync.Waitgroup.create 3 in
  let finished = ref false in
  Fiber.spawn eng (fun () ->
      Sync.Waitgroup.wait wg;
      finished := true);
  for i = 1 to 3 do
    Fiber.spawn eng (fun () ->
        Fiber.sleep eng (Span.of_us i);
        Sync.Waitgroup.finish eng wg)
  done;
  Engine.run eng;
  check bool "waitgroup completed" true !finished

let prop_fiber_sleep_ordering =
  QCheck.Test.make ~count:100
    ~name:"fibers wake in sleep-duration order"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 10_000))
    (fun delays ->
      let eng = Engine.create () in
      let order = ref [] in
      List.iter
        (fun d ->
          Fiber.spawn eng (fun () ->
              Fiber.sleep eng (Span.of_us d);
              order := d :: !order))
        delays;
      Engine.run eng;
      let woke = List.rev !order in
      List.sort compare delays = List.stable_sort compare woke
      && List.length woke = List.length delays)

let prop_time_add_sub_roundtrip =
  QCheck.Test.make ~count:300 ~name:"time add/sub round-trips"
    QCheck.(pair (int_range 0 1_000_000_000) (int_range (-500_000) 500_000))
    (fun (t_ns, d_ns) ->
      let t = Time.of_ns t_ns and d = Span.of_ns d_ns in
      Time.to_ns (Time.sub (Time.add t d) d) = t_ns
      && Span.to_ns (Time.diff (Time.add t d) t) = d_ns)

let prop_truncate_idempotent =
  QCheck.Test.make ~count:300 ~name:"truncate_to is idempotent and lowers"
    QCheck.(pair (int_range 0 1_000_000_000) (int_range 1 1_000_000))
    (fun (t_ns, g_ns) ->
      let t = Time.of_ns t_ns and g = Span.of_ns g_ns in
      let once = Time.truncate_to g t in
      Time.equal (Time.truncate_to g once) once
      && Time.(once <= t)
      && Span.to_ns (Time.diff t once) < g_ns)

let prop_span_scale_linear =
  QCheck.Test.make ~count:300 ~name:"span scale by 1.0 is identity"
    QCheck.(int_range (-1_000_000) 1_000_000)
    (fun ns ->
      let s = Span.of_ns ns in
      Span.equal (Span.scale 1.0 s) s
      && Span.equal (Span.add (Span.neg s) s) Span.zero)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "dsim.time",
      [
        Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
        Alcotest.test_case "truncate" `Quick test_time_truncate;
        Alcotest.test_case "span scale" `Quick test_span_scale;
        Alcotest.test_case "pp" `Quick test_time_pp;
        QCheck_alcotest.to_alcotest prop_time_add_sub_roundtrip;
        QCheck_alcotest.to_alcotest prop_truncate_idempotent;
        QCheck_alcotest.to_alcotest prop_span_scale_linear;
      ] );
    ( "dsim.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split" `Quick test_rng_split_independent;
        Alcotest.test_case "range bounds" `Quick test_rng_range;
        Alcotest.test_case "range covers" `Quick test_rng_range_covers;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
      ] );
    ( "dsim.queue",
      [
        Alcotest.test_case "order" `Quick test_queue_order;
        Alcotest.test_case "fifo ties" `Quick test_queue_fifo_at_same_time;
        Alcotest.test_case "growth" `Quick test_queue_growth;
        QCheck_alcotest.to_alcotest prop_queue_sorted;
      ] );
    ( "dsim.engine",
      [
        Alcotest.test_case "order" `Quick test_engine_runs_in_order;
        Alcotest.test_case "until" `Quick test_engine_until;
        Alcotest.test_case "nested" `Quick test_engine_nested_schedule;
        Alcotest.test_case "stop" `Quick test_engine_stop;
        Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        Alcotest.test_case "schedule_call order" `Quick
          test_engine_schedule_call_order;
        Alcotest.test_case "schedule_call reentrant" `Quick
          test_engine_schedule_call_reentrant;
        Alcotest.test_case "with_gc_tuning restores" `Quick
          test_with_gc_tuning_restores;
      ] );
    ( "dsim.fiber",
      [
        Alcotest.test_case "sleep" `Quick test_fiber_sleep;
        Alcotest.test_case "interleaving" `Quick test_fiber_interleaving;
        Alcotest.test_case "not in fiber" `Quick test_fiber_not_in_fiber;
        Alcotest.test_case "double resume" `Quick
          test_fiber_double_resume_rejected;
        QCheck_alcotest.to_alcotest prop_fiber_sleep_ordering;
      ] );
    ( "dsim.sync",
      [
        Alcotest.test_case "ivar" `Quick test_ivar;
        Alcotest.test_case "ivar readers" `Quick test_ivar_multiple_readers;
        Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
        Alcotest.test_case "mailbox nonblocking" `Quick
          test_mailbox_nonblocking;
        Alcotest.test_case "condition" `Quick test_condition;
        Alcotest.test_case "waitgroup" `Quick test_waitgroup;
      ] );
  ]

let _ = qsuite
