(* Tests for PR 9's flight-recorder pillar: the ring buffer's wrap
   behaviour (exactly full, off-by-one, records straddling the wrap
   surviving a dump/load round-trip), the zero-allocation emit loop,
   [Stats.Histogram.quantile] and the metrics percentiles built on it,
   [Obs.Health] incident dedup / watchdog re-arm / membership
   agreement, the [Obs.Postmortem] dump format, and the seeded
   end-to-end token-loss run: partition the ring mid-rotation, watch
   Health raise the liveness incident, and check the postmortem names
   the dropped hop. *)

module Span = Dsim.Time.Span
module Net = Netsim.Network
module Nid = Netsim.Node_id
module Rec = Obs.Recorder
module Cluster = Scenario.Cluster

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Recorder ring                                                       *)

let fill r k =
  (* records with recognizable payloads: record [i] is (i, i*2, i*3) *)
  for i = 0 to k - 1 do
    Rec.emit r ~kind:Rec.k_send ~ts_us:i ~node:(i * 2) ~a:(i * 3) ~b:i
  done

let collect r =
  let out = ref [] in
  Rec.iter r (fun ~kind:_ ~ts_us ~node:_ ~a:_ ~b:_ -> out := ts_us :: !out);
  List.rev !out

let test_recorder_basic () =
  let r = Rec.create ~capacity:8 () in
  check int "empty length" 0 (Rec.length r);
  fill r 3;
  check int "partial length" 3 (Rec.length r);
  check int "partial dropped" 0 (Rec.dropped r);
  check bool "oldest-first iteration" true (collect r = [ 0; 1; 2 ]);
  Rec.clear r;
  check int "cleared" 0 (Rec.length r);
  check int "cleared total" 0 (Rec.total r)

let test_recorder_wrap_exact () =
  (* window exactly full: every record still present, nothing dropped *)
  let r = Rec.create ~capacity:8 () in
  fill r 8;
  check int "full length" 8 (Rec.length r);
  check int "full dropped" 0 (Rec.dropped r);
  check bool "full window order" true
    (collect r = [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_recorder_wrap_off_by_one () =
  (* capacity + 1 emits: the single oldest record is the one evicted *)
  let r = Rec.create ~capacity:8 () in
  fill r 9;
  check int "length stays at capacity" 8 (Rec.length r);
  check int "one dropped" 1 (Rec.dropped r);
  check int "total keeps counting" 9 (Rec.total r);
  check bool "window slid by one" true
    (collect r = [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_recorder_wrap_straddle () =
  (* many wraps, stopping mid-ring: the window must straddle the
     physical end of the array and still come out oldest-first *)
  let r = Rec.create ~capacity:8 () in
  fill r 21;
  check int "straddle length" 8 (Rec.length r);
  check int "straddle dropped" 13 (Rec.dropped r);
  check bool "straddle order" true
    (collect r = [ 13; 14; 15; 16; 17; 18; 19; 20 ])

let test_recorder_zero_alloc () =
  (* the steady-state wrap path allocates nothing: run enough emits to
     wrap the ring many times and demand an exactly-zero minor-heap
     delta (any boxing would show up as >= 2 words per emit) *)
  let r = Rec.create ~capacity:1024 () in
  fill r 1024;
  let w0 = Gc.minor_words () in
  fill r 100_000;
  let dw = Gc.minor_words () -. w0 in
  check bool
    (Printf.sprintf "emit loop allocated %.0f words (want 0)" dw)
    true (dw = 0.)

let test_recorder_dump_survives_wrap () =
  (* records straddling the wrap survive a dump/load round-trip with
     order, payloads and wrap accounting intact *)
  let r = Rec.create ~capacity:8 () in
  fill r 21;
  let s = Obs.Postmortem.dump_string r [] in
  match Obs.Postmortem.load_string s with
  | Error e -> Alcotest.failf "load_string: %s" e
  | Ok w ->
      check int "loaded records" 8 (Array.length w.Obs.Postmortem.records);
      check int "loaded total" 21 w.Obs.Postmortem.w_total;
      check int "loaded dropped" 13 w.Obs.Postmortem.w_dropped;
      Array.iteri
        (fun i (rec_ : Obs.Postmortem.record) ->
          let expect = 13 + i in
          check int "ts" expect rec_.Obs.Postmortem.ts_us;
          check int "node" (expect * 2) rec_.Obs.Postmortem.node;
          check int "a" (expect * 3) rec_.Obs.Postmortem.a;
          check int "b" expect rec_.Obs.Postmortem.b)
        w.Obs.Postmortem.records

let test_postmortem_rejects_garbage () =
  (match Obs.Postmortem.load_string "not a dump" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  let r = Rec.create ~capacity:4 () in
  fill r 2;
  let s = Obs.Postmortem.dump_string r [] in
  match Obs.Postmortem.load_string (s ^ "R 1 2\n") with
  | Ok _ -> Alcotest.fail "accepted truncated record line"
  | Error e -> check bool "error names the line" true (String.length e > 0)

(* ------------------------------------------------------------------ *)
(* Histogram quantiles                                                 *)

let test_histogram_quantile () =
  let h = Stats.Histogram.create ~bin_width:10. () in
  (* 100 samples spread uniformly over [0, 1000) *)
  for i = 0 to 99 do
    Stats.Histogram.add h (float_of_int i *. 10.)
  done;
  let q p = Stats.Histogram.quantile h p in
  check bool "p50 in the middle" true (abs_float (q 0.5 -. 500.) <= 10.);
  check bool "p95 near the top" true (abs_float (q 0.95 -. 950.) <= 10.);
  check bool "p0 is the floor" true (q 0. <= 10.);
  check bool "p100 is the ceiling" true (abs_float (q 1. -. 1000.) <= 10.);
  check bool "monotone" true (q 0.5 <= q 0.95 && q 0.95 <= q 0.99);
  (let empty = Stats.Histogram.create ~bin_width:1. () in
   match Stats.Histogram.quantile empty 0.5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "quantile on empty histogram");
  match Stats.Histogram.quantile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile out of range"

let test_metrics_json_percentiles () =
  let m = Obs.Metrics.create () in
  for i = 1 to 100 do
    Obs.Metrics.observe m Obs.Metrics.Rpc_latency_us (float_of_int i)
  done;
  let json = Obs.Metrics.to_json m in
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "histogram json has p50" true (has "\"p50\"");
  check bool "histogram json has p95" true (has "\"p95\"");
  check bool "histogram json has p99" true (has "\"p99\"")

(* ------------------------------------------------------------------ *)
(* Health monitor                                                      *)

let test_health_dedup () =
  let h = Obs.Health.create () in
  (* three regressions of the same invariant on two nodes: one incident,
     count 3, worst value and its node retained *)
  Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:100 ~node:1 ~a:500 ~b:0;
  Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:200 ~node:1 ~a:400 ~b:0;
  Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:300 ~node:1 ~a:390 ~b:0;
  Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:400 ~node:2 ~a:900 ~b:0;
  Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:500 ~node:2 ~a:100 ~b:0;
  match Obs.Health.incidents h with
  | [ i ] ->
      check string "invariant" "gc-monotonic" i.Obs.Health.inv;
      check int "count" 3 i.Obs.Health.count;
      check int "first" 200 i.Obs.Health.first_us;
      check int "last" 500 i.Obs.Health.last_us;
      check int "worst regression" 800 i.Obs.Health.worst;
      check int "worst node" 2 i.Obs.Health.node
  | is -> Alcotest.failf "expected 1 incident, got %d" (List.length is)

let test_health_token_rearm () =
  let config =
    { Obs.Health.default_config with Obs.Health.token_timeout_us = 1000 }
  in
  let h = Obs.Health.create ~config () in
  let token ts node =
    Obs.Health.observe h ~kind:Rec.k_token ~ts_us:ts ~node ~a:0 ~b:0
  in
  let tick ts =
    (* any record ticks the watchdog *)
    Obs.Health.observe h ~kind:Rec.k_send ~ts_us:ts ~node:0 ~a:1 ~b:0
  in
  token 0 3;
  tick 500;
  check int "within timeout: quiet" 0 (Obs.Health.incident_count h);
  tick 1500;
  tick 1600;
  tick 2000;
  (match Obs.Health.incidents h with
  | [ i ] ->
      check string "invariant" "token-liveness" i.Obs.Health.inv;
      check int "one alarm per episode" 1 i.Obs.Health.count;
      check int "names last holder" 3 i.Obs.Health.node
  | is -> Alcotest.failf "expected 1 incident, got %d" (List.length is));
  (* token resumes: watchdog re-arms, a second silence is a new alarm
     on the same (deduplicated) incident *)
  token 2500 0;
  tick 4000;
  match Obs.Health.incidents h with
  | [ i ] -> check int "second episode counted" 2 i.Obs.Health.count
  | is -> Alcotest.failf "expected 1 incident, got %d" (List.length is)

let test_health_membership () =
  let h = Obs.Health.create () in
  let op ts node gen members =
    Obs.Health.observe h ~kind:Rec.k_operational ~ts_us:ts ~node ~a:gen
      ~b:members
  in
  op 100 0 7 4;
  op 110 1 7 4;
  op 120 2 8 3;
  check int "agreeing views: quiet" 0 (Obs.Health.incident_count h);
  op 130 3 7 3;
  (match Obs.Health.incidents h with
  | [ i ] ->
      check string "invariant" "membership-agreement" i.Obs.Health.inv;
      check int "member-count difference" 1 i.Obs.Health.worst;
      check int "disagreeing node" 3 i.Obs.Health.node
  | is -> Alcotest.failf "expected 1 incident, got %d" (List.length is));
  (* the check is per-ring: a monitor configured for multi-ring input
     must stay quiet on the same stream *)
  let config =
    { Obs.Health.default_config with Obs.Health.membership_check = false }
  in
  let h2 = Obs.Health.create ~config () in
  Obs.Health.observe h2 ~kind:Rec.k_operational ~ts_us:100 ~node:0 ~a:7 ~b:4;
  Obs.Health.observe h2 ~kind:Rec.k_operational ~ts_us:130 ~node:3 ~a:7 ~b:3;
  check int "membership check disabled" 0 (Obs.Health.incident_count h2)

let test_health_skew_envelope () =
  let config =
    { Obs.Health.default_config with Obs.Health.skew_bound_us = 100 }
  in
  let h = Obs.Health.create ~config () in
  let gc ts node v =
    Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:ts ~node ~a:v ~b:0
  in
  (* offsets (gc - sim time): node 0 at +0, node 1 at +50 — inside *)
  gc 1000 0 1000;
  gc 1000 1 1050;
  check int "inside the envelope" 0 (Obs.Health.incident_count h);
  (* node 2 at +300: spread 300 > 100 *)
  gc 1010 2 1310;
  match Obs.Health.incidents h with
  | [ i ] ->
      check string "invariant" "skew-envelope" i.Obs.Health.inv;
      check int "spread" 300 i.Obs.Health.worst;
      check int "worst node" 2 i.Obs.Health.node
  | is -> Alcotest.failf "expected 1 incident, got %d" (List.length is)

(* ------------------------------------------------------------------ *)
(* Incidents in the dump                                               *)

let test_dump_roundtrip_incidents () =
  let r = Rec.create ~capacity:16 () in
  fill r 4;
  let h = Obs.Health.create () in
  Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:100 ~node:1 ~a:500 ~b:0;
  Obs.Health.observe h ~kind:Rec.k_gc_sample ~ts_us:200 ~node:1 ~a:400 ~b:0;
  let s = Obs.Postmortem.dump_string r (Obs.Health.incidents h) in
  match Obs.Postmortem.load_string s with
  | Error e -> Alcotest.failf "load_string: %s" e
  | Ok w -> (
      match w.Obs.Postmortem.incidents with
      | [ i ] ->
          check string "invariant survives" "gc-monotonic" i.Obs.Health.inv;
          check int "count survives" 1 i.Obs.Health.count;
          check int "worst survives" 100 i.Obs.Health.worst
      | is -> Alcotest.failf "expected 1 incident, got %d" (List.length is))

(* ------------------------------------------------------------------ *)
(* End-to-end: seeded token loss -> liveness incident -> postmortem    *)

let test_token_loss_e2e () =
  let recorder = Rec.create ~capacity:16_384 () in
  let health =
    Obs.Health.create
      ~config:
        {
          Obs.Health.default_config with
          (* totem's token-loss timeout is 3 ms and ring recovery takes
             a few more, so a 2 ms watchdog fires inside the outage
             window — before the ring heals itself *)
          Obs.Health.token_timeout_us = 2_000;
          (* the partition forms a 3-node ring while the 4-node view is
             still on the books; that disagreement is the fault being
             injected, not the one under test *)
          Obs.Health.membership_check = false;
        }
      ()
  in
  let sink = Obs.Sink.create () in
  Obs.Sink.set_recorder sink (Some recorder);
  Obs.Sink.set_health sink (Some health);
  let cluster = Cluster.create ~seed:97L ~obs:sink ~nodes:4 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
  (* let the token rotate a while so the window has steady-state
     traffic before the fault *)
  Cluster.run_for cluster (Span.of_ms 20);
  check int "healthy run: no incidents" 0 (Obs.Health.incident_count health);
  (* partition node 3 away: the next token hop into (or out of) it is
     dropped with reason [Partitioned], and the ring falls silent until
     totem's own loss timeout rebuilds it as a 3-node ring *)
  Net.partition cluster.Cluster.net
    [ List.map Nid.of_int [ 0; 1; 2 ]; [ Nid.of_int 3 ] ];
  Cluster.run_until ~limit:(Span.of_sec 5) cluster (fun () ->
      Obs.Health.incident_count health > 0);
  let incident =
    match Obs.Health.incidents health with
    | i :: _ -> i
    | [] -> Alcotest.fail "no incident raised"
  in
  check string "liveness incident" "token-liveness" incident.Obs.Health.inv;
  check bool "silent gap at least the timeout" true
    (incident.Obs.Health.worst >= 2_000);
  (* heal and confirm the survivors re-form: the incident is a recorded
     episode, not a wedged monitor *)
  Net.heal cluster.Cluster.net;
  Cluster.run_until ~limit:(Span.of_sec 10) cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
  (* the black box: dump, reload, and ask the postmortem who did it *)
  let dump = Obs.Postmortem.dump_string recorder (Obs.Health.incidents health) in
  let w =
    match Obs.Postmortem.load_string dump with
    | Ok w -> w
    | Error e -> Alcotest.failf "load_string: %s" e
  in
  let suspect =
    match
      List.find_opt
        (fun s -> s.Obs.Postmortem.s_inv = "token-liveness")
        (Obs.Postmortem.suspects w)
    with
    | Some s -> s
    | None -> Alcotest.fail "no token-liveness suspect"
  in
  (* the suspect line must name the faulted hop: the last token holder
     and the onward drop *)
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "suspect names the drop" true
    (has "dropped" suspect.Obs.Postmortem.s_desc);
  check bool "suspect names the partition" true
    (has "partitioned" suspect.Obs.Postmortem.s_desc);
  check bool "suspect pins a record" true
    (suspect.Obs.Postmortem.s_record <> None);
  (* and the pinned record really is a partition drop *)
  match suspect.Obs.Postmortem.s_record with
  | None -> ()
  | Some idx ->
      let r = w.Obs.Postmortem.records.(idx) in
      check int "pinned record is a drop" Rec.k_drop r.Obs.Postmortem.kind;
      check string "with reason partitioned" "partitioned"
        (Rec.drop_reason_name r.Obs.Postmortem.b)

let suites =
  [
    ( "flight",
      [
        Alcotest.test_case "recorder basics" `Quick test_recorder_basic;
        Alcotest.test_case "wrap: exactly full" `Quick
          test_recorder_wrap_exact;
        Alcotest.test_case "wrap: off by one" `Quick
          test_recorder_wrap_off_by_one;
        Alcotest.test_case "wrap: straddling window" `Quick
          test_recorder_wrap_straddle;
        Alcotest.test_case "emit loop is allocation-free" `Quick
          test_recorder_zero_alloc;
        Alcotest.test_case "dump survives wrap" `Quick
          test_recorder_dump_survives_wrap;
        Alcotest.test_case "load rejects malformed dumps" `Quick
          test_postmortem_rejects_garbage;
        Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
        Alcotest.test_case "metrics json percentiles" `Quick
          test_metrics_json_percentiles;
        Alcotest.test_case "health: incident dedup" `Quick test_health_dedup;
        Alcotest.test_case "health: token watchdog re-arms" `Quick
          test_health_token_rearm;
        Alcotest.test_case "health: membership agreement" `Quick
          test_health_membership;
        Alcotest.test_case "health: skew envelope" `Quick
          test_health_skew_envelope;
        Alcotest.test_case "dump round-trips incidents" `Quick
          test_dump_roundtrip_incidents;
        Alcotest.test_case "token loss e2e: incident + postmortem" `Quick
          test_token_loss_e2e;
      ] );
  ]
