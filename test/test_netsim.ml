(* Tests for the simulated network. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Net = Netsim.Network
module Nid = Netsim.Node_id

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let n = Nid.of_int

let constant_net eng us =
  Net.create eng { Net.latency = Netsim.Latency.Constant (Span.of_us us); loss = 0. }

let test_unicast_delivery () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 10 in
  let got = ref [] in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src msg ->
      got := (Nid.to_int src, msg, Time.to_us (Dsim.Engine.now eng)) :: !got);
  Net.send net ~src:(n 0) ~dst:(n 1) "hello";
  Dsim.Engine.run eng;
  match !got with
  | [ (0, "hello", 10) ] -> ()
  | _ -> Alcotest.fail "unexpected delivery"

let test_broadcast_excludes_sender () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 5 in
  let counts = Array.make 4 0 in
  for i = 0 to 3 do
    Net.attach net (n i) (fun ~src:_ _ -> counts.(i) <- counts.(i) + 1)
  done;
  Net.broadcast net ~src:(n 2) "x";
  Dsim.Engine.run eng;
  check (Alcotest.list int) "everyone but sender" [ 1; 1; 0; 1 ]
    (Array.to_list counts)

let test_loopback_unicast_allowed () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 5 in
  let got = ref 0 in
  Net.attach net (n 0) (fun ~src:_ _ -> incr got);
  Net.send net ~src:(n 0) ~dst:(n 0) ();
  Dsim.Engine.run eng;
  check int "self-send delivered" 1 !got

(* broadcast_many batches deliveries per destination but must keep
   per-message semantics: send order per path, one callback per message,
   and batch-absorbed messages sharing the batch's delivery instant. *)
let test_broadcast_many_order_and_count () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 10 in
  let got = Array.make 3 [] in
  for i = 0 to 2 do
    Net.attach net (n i) (fun ~src msg ->
        got.(i) <-
          (Nid.to_int src, msg, Time.to_us (Dsim.Engine.now eng)) :: got.(i))
  done;
  Net.broadcast_many net ~src:(n 0) [| "a"; "b"; "c"; "unused" |] ~n:3;
  Dsim.Engine.run eng;
  check int "sender got nothing" 0 (List.length got.(0));
  List.iter
    (fun i ->
      match List.rev got.(i) with
      | [ (0, "a", t1); (0, "b", t2); (0, "c", t3) ] ->
          check bool "FIFO timestamps" true (t1 <= t2 && t2 <= t3)
      | _ -> Alcotest.fail "per-message FIFO delivery violated")
    [ 1; 2 ];
  (* one sent-count per broadcast message, exactly as [broadcast] *)
  check int "per-message send stat" 3 (Net.stats net ~sent:true (n 0))

(* A batch must agree with the same messages sent by consecutive
   [broadcast] calls, payload-for-payload, on every destination. *)
let test_broadcast_many_matches_broadcasts () =
  let run use_many =
    let eng = Dsim.Engine.create () in
    let net = constant_net eng 7 in
    let got = Array.make 4 [] in
    for i = 0 to 3 do
      Net.attach net (n i) (fun ~src:_ msg -> got.(i) <- msg :: got.(i))
    done;
    let payloads = [| 10; 20; 30 |] in
    if use_many then Net.broadcast_many net ~src:(n 1) payloads ~n:3
    else Array.iter (fun p -> Net.broadcast net ~src:(n 1) p) payloads;
    Dsim.Engine.run eng;
    Array.map List.rev got
  in
  let batched = run true and plain = run false in
  Array.iteri
    (fun i msgs ->
      check (Alcotest.list int)
        (Printf.sprintf "node %d payload sequence" i)
        plain.(i) msgs)
    batched

let test_broadcast_many_respects_partition () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 5 in
  let counts = Array.make 4 0 in
  for i = 0 to 3 do
    Net.attach net (n i) (fun ~src:_ _ -> counts.(i) <- counts.(i) + 1)
  done;
  Net.partition net [ [ n 0; n 1 ]; [ n 2; n 3 ] ];
  Net.broadcast_many net ~src:(n 0) [| "x"; "y" |] ~n:2;
  Dsim.Engine.run eng;
  check (Alcotest.list int) "only same-side peer reached" [ 0; 2; 0; 0 ]
    (Array.to_list counts);
  check int "cross-partition drops accounted" 4 (Net.packets_dropped net)

let test_broadcast_many_loss_per_message () =
  let eng = Dsim.Engine.create () in
  let net =
    Net.create eng
      { Net.latency = Netsim.Latency.Constant (Span.of_us 5); loss = 0.5 }
  in
  let got = ref 0 in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ _ -> incr got);
  let batch = [| "m" |] in
  for _ = 1 to 1000 do
    Net.broadcast_many net ~src:(n 0) batch ~n:1
  done;
  Dsim.Engine.run eng;
  (* An independent draw per (message, receiver): roughly half arrive. *)
  check bool "roughly half dropped" true (!got > 400 && !got < 600);
  check int "drop accounting" (1000 - !got) (Net.packets_dropped net)

let test_detach_drops_in_flight () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 10 in
  let got = ref 0 in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ _ -> incr got);
  Net.send net ~src:(n 0) ~dst:(n 1) ();
  Dsim.Engine.schedule eng (Span.of_us 5) (fun () -> Net.detach net (n 1));
  Dsim.Engine.run eng;
  check int "dropped at crashed node" 0 !got;
  check int "accounted as dropped" 1 (Net.packets_dropped net)

let test_partition_blocks_cross_traffic () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 5 in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Net.attach net (n i) (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Net.partition net [ [ n 0; n 1 ]; [ n 2; n 3 ] ];
  Net.broadcast net ~src:(n 0) ();
  Net.send net ~src:(n 2) ~dst:(n 3) ();
  Net.send net ~src:(n 2) ~dst:(n 0) ();
  Dsim.Engine.run eng;
  check (Alcotest.list int) "partition respected" [ 0; 1; 0; 1 ]
    (Array.to_list got);
  Net.heal net;
  Net.send net ~src:(n 2) ~dst:(n 0) ();
  Dsim.Engine.run eng;
  check int "healed" 1 got.(0)

let test_loss_drops_packets () =
  let eng = Dsim.Engine.create ~seed:5L () in
  let net =
    Net.create eng
      { Net.latency = Netsim.Latency.Constant (Span.of_us 1); loss = 0.5 }
  in
  let got = ref 0 in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ _ -> incr got);
  for _ = 1 to 1000 do
    Net.send net ~src:(n 0) ~dst:(n 1) ()
  done;
  Dsim.Engine.run eng;
  check bool "roughly half dropped" true (!got > 400 && !got < 600);
  check int "drop accounting" (1000 - !got) (Net.packets_dropped net)

let test_stats_counters () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 1 in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ _ -> ());
  Net.send net ~src:(n 0) ~dst:(n 1) ();
  Net.broadcast net ~src:(n 0) ();
  Dsim.Engine.run eng;
  check int "sent" 2 (Net.stats net ~sent:true (n 0));
  check int "delivered" 2 (Net.stats net ~sent:false (n 1))

let test_attach_detach_attach_sorted () =
  (* The membership array must stay sorted through attach/detach/attach
     churn (incremental insert, not a wholesale re-sort), and a
     re-attached node must receive traffic again. *)
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 10 in
  let got = Array.make 6 0 in
  let attach i = Net.attach net (n i) (fun ~src:_ _ -> got.(i) <- got.(i) + 1) in
  List.iter attach [ 4; 1; 5; 0; 3; 2 ];
  check bool "sorted after out-of-order attach" true
    (Net.nodes net = List.map n [ 0; 1; 2; 3; 4; 5 ]);
  Net.detach net (n 3);
  Net.detach net (n 0);
  check bool "sorted after detach" true
    (Net.nodes net = List.map n [ 1; 2; 4; 5 ]);
  attach 3;
  attach 0;
  check bool "sorted after re-attach" true
    (Net.nodes net = List.map n [ 0; 1; 2; 3; 4; 5 ]);
  Net.broadcast net ~src:(n 1) 42;
  Dsim.Engine.run eng;
  check int "re-attached node 3 hears broadcasts" 1 got.(3);
  check int "re-attached node 0 hears broadcasts" 1 got.(0);
  check int "sender excluded" 0 got.(1)

let test_partition_mask_after_churn () =
  (* Group masks must track re-attachment: a node that detaches and
     re-attaches keeps its partition-group membership (the mask is per
     node id, not per slot). *)
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 10 in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Net.attach net (n i) (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Net.partition net [ [ n 0; n 1 ]; [ n 2; n 3 ] ];
  Net.detach net (n 1);
  Net.attach net (n 1) (fun ~src:_ _ -> got.(1) <- got.(1) + 1);
  Net.send net ~src:(n 0) ~dst:(n 1) 1;
  Net.send net ~src:(n 2) ~dst:(n 1) 2;
  Net.send net ~src:(n 3) ~dst:(n 2) 3;
  Dsim.Engine.run eng;
  check int "same-group unicast to re-attached node" 1 got.(1);
  check int "cross-group unicast still blocked" 1 got.(2);
  Net.heal net;
  Net.send net ~src:(n 2) ~dst:(n 1) 4;
  Dsim.Engine.run eng;
  check int "heal restores cross traffic" 2 got.(1)

let test_send_tracked_outcomes () =
  (* [send_tracked] reports the loss outcome the simulator already knows
     at send time: queued on the clean path, false under loss or across a
     partition. *)
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 10 in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ _ -> ());
  check bool "clean send queued" true
    (Net.send_tracked net ~src:(n 0) ~dst:(n 1) 1);
  Net.partition net [ [ n 0 ]; [ n 1 ] ];
  check bool "partitioned send not queued" false
    (Net.send_tracked net ~src:(n 0) ~dst:(n 1) 2);
  Net.heal net;
  Net.set_loss net 0.5;
  (* Under loss the report must agree with the drop counter, send by
     send: false iff the packet was counted dropped. *)
  let disagreements = ref 0 and drops = ref 0 in
  for i = 0 to 49 do
    let before = Net.packets_dropped net in
    let queued = Net.send_tracked net ~src:(n 0) ~dst:(n 1) i in
    let dropped = Net.packets_dropped net > before in
    if queued = dropped then incr disagreements;
    if dropped then incr drops
  done;
  check int "tracked result always matches drop accounting" 0 !disagreements;
  check bool "loss 0.5 dropped some of 50 sends" true (!drops > 0)

let test_send_tracked_after_delay () =
  (* The deferred send arrives after delay + latency, and still respects
     per-path FIFO against a later plain send. *)
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 10 in
  let got = ref [] in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ v ->
      got := (v, Time.to_us (Dsim.Engine.now eng)) :: !got);
  check bool "deferred send queued" true
    (Net.send_tracked_after net ~delay:(Span.of_us 40) ~src:(n 0) ~dst:(n 1) 1);
  Dsim.Engine.run eng;
  (match !got with
  | [ (1, at) ] -> check int "arrives at delay + latency" 50 at
  | _ -> Alcotest.fail "expected exactly one delivery")

let test_double_attach_rejected () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 1 in
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Alcotest.check_raises "double attach"
    (Invalid_argument "Network.attach: n0 already attached") (fun () ->
      Net.attach net (n 0) (fun ~src:_ _ -> ()))

let test_latency_models_positive () =
  let eng = Dsim.Engine.create ~seed:3L () in
  let rng = Dsim.Engine.rng eng in
  let models =
    [
      Netsim.Latency.Constant (Span.of_us 10);
      Netsim.Latency.Uniform { lo = Span.of_us 1; hi = Span.of_us 50 };
      Netsim.Latency.Gaussian { mu = Span.of_us 20; sigma = Span.of_us 30 };
      Netsim.Latency.calibrated ~wire:Netsim.Latency.default_wire;
    ]
  in
  List.iter
    (fun m ->
      for _ = 1 to 500 do
        let l = Netsim.Latency.sample rng m in
        if Span.(l < Span.of_us 1) then Alcotest.fail "latency below floor"
      done)
    models

let test_calibrated_peak_near_wire () =
  let eng = Dsim.Engine.create ~seed:9L () in
  let rng = Dsim.Engine.rng eng in
  let model = Netsim.Latency.calibrated ~wire:(Span.of_us 51) in
  let h = Stats.Histogram.create ~bin_width:4. () in
  for _ = 1 to 20_000 do
    Stats.Histogram.add h
      (float_of_int (Span.to_us (Netsim.Latency.sample rng model)))
  done;
  let peak = Stats.Histogram.bin_mid h (Stats.Histogram.mode_bin h) in
  check bool "peak density near 51us" true (peak > 40. && peak < 62.)

let prop_broadcast_reaches_all_connected =
  QCheck.Test.make ~count:50 ~name:"broadcast reaches every attached node"
    QCheck.(int_range 2 20)
    (fun nodes ->
      let eng = Dsim.Engine.create () in
      let net =
        Net.create eng
          { Net.latency = Netsim.Latency.Constant (Span.of_us 1); loss = 0. }
      in
      let got = Array.make nodes 0 in
      for i = 0 to nodes - 1 do
        Net.attach net (n i) (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
      done;
      Net.broadcast net ~src:(n 0) ();
      Dsim.Engine.run eng;
      got.(0) = 0
      && Array.for_all (( = ) 1) (Array.sub got 1 (nodes - 1)))

let test_trace_records_events () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 5 in
  let tr = Netsim.Trace.create () in
  Net.attach_trace net tr;
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ _ -> ());
  Net.send net ~src:(n 0) ~dst:(n 1) "x";
  Net.broadcast net ~src:(n 1) "y";
  Dsim.Engine.run eng;
  let es = Netsim.Trace.entries tr in
  (* 2 sends + 2 deliveries *)
  check int "events recorded" 4 (List.length es);
  let sends =
    List.filter
      (fun (e : string Netsim.Trace.entry) ->
        match e.ev with Netsim.Trace.Sent _ -> true | _ -> false)
      es
  in
  check int "two sends" 2 (List.length sends);
  check bool "timestamps ordered" true
    (let rec mono = function
       | (a : string Netsim.Trace.entry) :: (b :: _ as rest) ->
           Time.compare a.at b.at <= 0 && mono rest
       | [ _ ] | [] -> true
     in
     mono es)

let test_trace_records_drops () =
  let eng = Dsim.Engine.create () in
  let net = constant_net eng 5 in
  let tr = Netsim.Trace.create () in
  Net.attach_trace net tr;
  Net.attach net (n 0) (fun ~src:_ _ -> ());
  Net.attach net (n 1) (fun ~src:_ _ -> ());
  Net.partition net [ [ n 0 ]; [ n 1 ] ];
  Net.send net ~src:(n 0) ~dst:(n 1) "x";
  Dsim.Engine.run eng;
  let dropped =
    List.filter
      (fun (e : string Netsim.Trace.entry) ->
        match e.ev with
        | Netsim.Trace.Dropped { reason = Netsim.Trace.Partitioned; _ } -> true
        | _ -> false)
      (Netsim.Trace.entries tr)
  in
  check int "partition drop traced" 1 (List.length dropped)

let test_trace_ring_buffer_bounded () =
  let tr = Netsim.Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Netsim.Trace.record tr ~at:(Time.of_us i)
      (Netsim.Trace.Sent { src = n 0; dst = None; payload = i })
  done;
  check int "bounded" 8 (Netsim.Trace.length tr);
  check int "total counted" 20 (Netsim.Trace.total_recorded tr);
  (match Netsim.Trace.entries tr with
  | first :: _ -> check int "oldest kept is 13" 13 (Time.to_us first.at)
  | [] -> Alcotest.fail "empty");
  Netsim.Trace.clear tr;
  check int "cleared" 0 (Netsim.Trace.length tr)

let test_trace_eviction_order () =
  (* exactly the last [capacity] events survive, oldest first, and the
     window keeps sliding as more events arrive *)
  let tr = Netsim.Trace.create ~capacity:4 () in
  let rec times acc = function
    | [] -> List.rev acc
    | (e : int Netsim.Trace.entry) :: rest -> times (Time.to_us e.at :: acc) rest
  in
  for i = 1 to 4 do
    Netsim.Trace.record tr ~at:(Time.of_us i)
      (Netsim.Trace.Sent { src = n 0; dst = None; payload = i })
  done;
  check int "at capacity" 4 (Netsim.Trace.length tr);
  check (Alcotest.list int) "nothing evicted yet" [ 1; 2; 3; 4 ]
    (times [] (Netsim.Trace.entries tr));
  Netsim.Trace.record tr ~at:(Time.of_us 5)
    (Netsim.Trace.Sent { src = n 0; dst = None; payload = 5 });
  check (Alcotest.list int) "oldest evicted first" [ 2; 3; 4; 5 ]
    (times [] (Netsim.Trace.entries tr));
  check int "length pinned at capacity" 4 (Netsim.Trace.length tr);
  check int "total keeps counting" 5 (Netsim.Trace.total_recorded tr)

let test_trace_clear_then_reuse () =
  (* clear resets both the window and the total, and the buffer is fully
     usable afterwards — including wrapping around again *)
  let tr = Netsim.Trace.create ~capacity:3 () in
  for i = 1 to 7 do
    Netsim.Trace.record tr ~at:(Time.of_us i)
      (Netsim.Trace.Sent { src = n 0; dst = None; payload = i })
  done;
  Netsim.Trace.clear tr;
  check int "length reset" 0 (Netsim.Trace.length tr);
  check int "total reset" 0 (Netsim.Trace.total_recorded tr);
  check bool "entries empty" true (Netsim.Trace.entries tr = []);
  for i = 10 to 14 do
    Netsim.Trace.record tr ~at:(Time.of_us i)
      (Netsim.Trace.Sent { src = n 0; dst = None; payload = i })
  done;
  check int "refilled past capacity" 3 (Netsim.Trace.length tr);
  check int "total restarts from zero" 5 (Netsim.Trace.total_recorded tr);
  match Netsim.Trace.entries tr with
  | first :: _ -> check int "window slid after reuse" 12 (Time.to_us first.at)
  | [] -> Alcotest.fail "empty after refill"

let suites =
  [
    ( "netsim",
      [
        Alcotest.test_case "unicast" `Quick test_unicast_delivery;
        Alcotest.test_case "broadcast" `Quick test_broadcast_excludes_sender;
        Alcotest.test_case "loopback" `Quick test_loopback_unicast_allowed;
        Alcotest.test_case "broadcast_many order" `Quick
          test_broadcast_many_order_and_count;
        Alcotest.test_case "broadcast_many = broadcasts" `Quick
          test_broadcast_many_matches_broadcasts;
        Alcotest.test_case "broadcast_many partition" `Quick
          test_broadcast_many_respects_partition;
        Alcotest.test_case "broadcast_many loss" `Quick
          test_broadcast_many_loss_per_message;
        Alcotest.test_case "detach" `Quick test_detach_drops_in_flight;
        Alcotest.test_case "partition" `Quick
          test_partition_blocks_cross_traffic;
        Alcotest.test_case "loss" `Quick test_loss_drops_packets;
        Alcotest.test_case "stats" `Quick test_stats_counters;
        Alcotest.test_case "double attach" `Quick test_double_attach_rejected;
        Alcotest.test_case "attach/detach/attach keeps order" `Quick
          test_attach_detach_attach_sorted;
        Alcotest.test_case "partition mask survives churn" `Quick
          test_partition_mask_after_churn;
        Alcotest.test_case "send_tracked outcomes" `Quick
          test_send_tracked_outcomes;
        Alcotest.test_case "send_tracked_after delay" `Quick
          test_send_tracked_after_delay;
        Alcotest.test_case "latency positive" `Quick
          test_latency_models_positive;
        Alcotest.test_case "calibrated peak" `Quick
          test_calibrated_peak_near_wire;
        QCheck_alcotest.to_alcotest prop_broadcast_reaches_all_connected;
      ] );
    ( "netsim.trace",
      [
        Alcotest.test_case "records events" `Quick test_trace_records_events;
        Alcotest.test_case "records drops" `Quick test_trace_records_drops;
        Alcotest.test_case "ring buffer" `Quick test_trace_ring_buffer_bounded;
        Alcotest.test_case "eviction order" `Quick test_trace_eviction_order;
        Alcotest.test_case "clear then reuse" `Quick
          test_trace_clear_then_reuse;
      ] );
  ]
