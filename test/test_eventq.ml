(* Model-based property test of the unboxed Dsim.Event_queue: random
   push/pop/pop_nth/clear sequences checked against a naive sorted-list
   reference, including the (time, insertion-seq) tie-break and the
   FIFO-rank semantics of pop_nth that the mc controller relies on. *)

module Time = Dsim.Time
module Eq = Dsim.Event_queue

type op = Push of int | Pop | Pop_min | Pop_nth of int | Clear

let pp_op = function
  | Push t -> Printf.sprintf "push@%d" t
  | Pop -> "pop"
  | Pop_min -> "pop_min"
  | Pop_nth n -> Printf.sprintf "pop_nth %d" n
  | Clear -> "clear"

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun t -> Push t) (int_range 0 15));
        (3, return Pop);
        (3, return Pop_min);
        (2, map (fun n -> Pop_nth n) (int_range 0 5));
        (1, return Clear);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 0 300) op_gen)

(* Reference model: a list of (time, seq, id), kept unordered; every
   query sorts.  [pop_nth n] removes the n-th (clamped, by insertion
   order) among the entries sharing the minimum time. *)
let model_min model =
  List.fold_left
    (fun acc (at, seq, id) ->
      match acc with
      | None -> Some (at, seq, id)
      | Some (at', seq', _) when at < at' || (at = at' && seq < seq') ->
          Some (at, seq, id)
      | some -> some)
    None model

let model_pop_nth model n =
  match model_min model with
  | None -> (None, model)
  | Some (min_at, _, _) ->
      let ready =
        List.filter (fun (at, _, _) -> at = min_at) model
        |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)
      in
      let k = if n <= 0 then 0 else min n (List.length ready - 1) in
      let _, seq, id = List.nth ready k in
      (Some (min_at, id), List.filter (fun (_, s, _) -> s <> seq) model)

let model_ready_count model =
  match model_min model with
  | None -> 0
  | Some (min_at, _, _) ->
      List.length (List.filter (fun (at, _, _) -> at = min_at) model)

let prop_matches_model =
  QCheck.Test.make ~count:200 ~name:"event_queue matches sorted-list model"
    ops_arb
    (fun ops ->
      let q = Eq.create () in
      let model = ref [] in
      let next_id = ref 0 in
      let seq = ref 0 in
      let same_opt what got expect =
        if got <> expect then
          QCheck.Test.fail_reportf "%s: queue %s, model %s" what
            (match got with
            | None -> "None"
            | Some (at, id) -> Printf.sprintf "(%d, %d)" (Time.to_ns at) id)
            (match expect with
            | None -> "None"
            | Some (at, id) -> Printf.sprintf "(%d, %d)" (Time.to_ns at) id)
      in
      List.iter
        (fun op ->
          (match op with
          | Push t ->
              let id = !next_id in
              incr next_id;
              Eq.push q (Time.of_ns t) () id;
              model := (t, !seq, id) :: !model;
              incr seq
          | Pop ->
              let got = Option.map (fun (at, (), id) -> (at, id)) (Eq.pop q) in
              let expect, model' = model_pop_nth !model 0 in
              model := model';
              same_opt "pop" got
                (Option.map (fun (at, id) -> (Time.of_ns at, id)) expect)
          | Pop_min ->
              (* The engine's allocation-free fast path: min_time_exn
                 followed by pop_min_exn must agree with [pop]. *)
              let got =
                if Eq.is_empty q then None
                else
                  let at = Eq.min_time_exn q in
                  let (), id = Eq.pop_min_exn q in
                  Some (at, id)
              in
              let expect, model' = model_pop_nth !model 0 in
              model := model';
              same_opt "pop_min" got
                (Option.map (fun (at, id) -> (Time.of_ns at, id)) expect)
          | Pop_nth n ->
              let got =
                Option.map (fun (at, (), id) -> (at, id)) (Eq.pop_nth q n)
              in
              let expect, model' = model_pop_nth !model n in
              model := model';
              same_opt
                (Printf.sprintf "pop_nth %d" n)
                got
                (Option.map (fun (at, id) -> (Time.of_ns at, id)) expect)
          | Clear ->
              Eq.clear q;
              model := []);
          if Eq.length q <> List.length !model then
            QCheck.Test.fail_reportf "length: queue %d, model %d"
              (Eq.length q) (List.length !model);
          if Eq.ready_count q <> model_ready_count !model then
            QCheck.Test.fail_reportf "ready_count: queue %d, model %d"
              (Eq.ready_count q)
              (model_ready_count !model);
          match Eq.peek_time q with
          | Some at
            when Some (Time.to_ns at)
                 <> Option.map (fun (a, _, _) -> a) (model_min !model) ->
              QCheck.Test.fail_reportf "peek_time mismatch"
          | None when !model <> [] ->
              QCheck.Test.fail_reportf "peek_time None on non-empty"
          | _ -> ())
        ops;
      (* drain what remains and verify global (time, insertion) order *)
      let rec drain () =
        match Eq.pop q with
        | None ->
            if !model <> [] then QCheck.Test.fail_reportf "drain: model not empty"
        | Some (at, (), id) ->
            let expect, model' = model_pop_nth !model 0 in
            model := model';
            same_opt "drain" (Some (at, id))
              (Option.map (fun (a, i) -> (Time.of_ns a, i)) expect);
            drain ()
      in
      drain ();
      true)

let suites =
  [
    ( "dsim.event_queue_model",
      [ QCheck_alcotest.to_alcotest prop_matches_model ] );
  ]
