(* Tests for the typed pass of ctslint (lib/lint: Cmt_loader +
   Typed_facts + Typed_check): per-rule fixtures for the three typed
   families — hotpath-alloc, domain-unsafe, runtime-boundary — each with
   a positive finding, a clean negative, and a suppressed variant;
   interprocedural certification across modules; suppression pass
   attribution; the live-tree typed gate (every [@ctslint.hotpath] root
   certifies, zero findings); and the static-vs-dynamic cross-check:
   functions the certifier puts in the inventory are re-measured with
   [Gc.minor_words] and must allocate nothing at runtime.

   Fixtures are real compiled code: each test writes sources into a
   temp directory, runs [ocamlc -bin-annot -c] (the toolchain that
   built this very test), and feeds the resulting .cmt files through
   the same loader the CLI uses — so the tests exercise typedtree
   shapes, not hand-built fact records. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Fixture helpers: compile sources to .cmt, load, walk, analyze       *)

let sh fmt = Printf.ksprintf Sys.command fmt

let write_file path src =
  ignore (sh "mkdir -p %s" (Filename.quote (Filename.dirname path)));
  let oc = open_out path in
  output_string oc src;
  close_out oc

(* [files] are (relative-path, source) pairs in dependency order; the
   relative path becomes [cmt_sourcefile], which is what the path-based
   policies (domain roots, runtime exemptions) match against. *)
let analyze_fixture ?(respect = true) files =
  let dir = Filename.temp_file "ctslint_typed_" ".fix" in
  Sys.remove dir;
  ignore (sh "mkdir -p %s" (Filename.quote dir));
  List.iter
    (fun (rel, src) -> write_file (Filename.concat dir rel) src)
    files;
  let srcs =
    String.concat " " (List.map (fun (rel, _) -> Filename.quote rel) files)
  in
  let rc =
    sh "cd %s && ocamlc -bin-annot -w -a -c %s > compile.log 2>&1"
      (Filename.quote dir) srcs
  in
  if rc <> 0 then begin
    ignore (sh "cat %s/compile.log 1>&2" (Filename.quote dir));
    Alcotest.failf "fixture failed to compile (ocamlc exit %d)" rc
  end;
  let units, errs = Lint.Cmt_loader.load_build_dir dir in
  check int "fixture cmts load without errors" 0 (List.length errs);
  check int "every fixture unit loaded" (List.length files)
    (List.length units);
  let facts = List.map Lint.Typed_facts.walk_unit units in
  let r = Lint.Typed_check.analyze ~respect_suppressions:respect facts in
  ignore (sh "rm -rf %s" (Filename.quote dir));
  r

let rules_of (r : Lint.Typed_check.result) =
  List.map (fun f -> f.Lint.Finding.rule) r.Lint.Typed_check.r_findings

let count_rule rule r =
  List.length (List.filter (String.equal rule) (rules_of r))

let findings r = r.Lint.Typed_check.r_findings

let supp_with r pred =
  List.find_opt pred r.Lint.Typed_check.r_supps

(* ------------------------------------------------------------------ *)
(* hotpath-alloc                                                       *)

let test_hotpath_positive () =
  let r =
    analyze_fixture [ ("f1.ml", "let hot x = (x, x) [@@ctslint.hotpath]\n") ]
  in
  check int "one finding" 1 (List.length (findings r));
  let f = List.hd (findings r) in
  check string "rule" "hotpath-alloc" f.Lint.Finding.rule;
  check string "exact file" "f1.ml" f.Lint.Finding.file;
  check int "exact line" 1 f.Lint.Finding.line;
  check bool "names the allocation" true
    (contains ~sub:"tuple allocation" f.Lint.Finding.message);
  match r.Lint.Typed_check.r_roots with
  | [ (root, certified) ] ->
      check string "root name" "F1.hot" root.Lint.Typed_facts.f_canon;
      check bool "root fails certification" false certified
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_hotpath_negative () =
  let r =
    analyze_fixture
      [ ("f1.ml", "let hot a b = (a * 31) + b [@@ctslint.hotpath]\n") ]
  in
  check int "no findings" 0 (List.length (findings r));
  (match r.Lint.Typed_check.r_roots with
  | [ (_, certified) ] -> check bool "root certifies" true certified
  | _ -> Alcotest.fail "expected exactly one root");
  check bool "certified inventory lists the root" true
    (List.mem "F1.hot" r.Lint.Typed_check.r_certified)

let hotpath_suppressed_src =
  "let hot x =\n\
  \  ((x, x) [@ctslint.allow \"hotpath-alloc\" \"fixture: sanctioned box\"])\n\
   [@@ctslint.hotpath]\n"

let test_hotpath_suppressed () =
  let r = analyze_fixture [ ("f1.ml", hotpath_suppressed_src) ] in
  check int "allow silences the finding" 0 (List.length (findings r));
  (match r.Lint.Typed_check.r_roots with
  | [ (_, certified) ] ->
      check bool "suppressed alloc does not fail the root" true certified
  | _ -> Alcotest.fail "expected exactly one root");
  (match
     supp_with r (fun s -> String.equal s.Lint.Suppress.s_rule "hotpath-alloc")
   with
  | Some s ->
      check string "consumed by the typed pass" "typed"
        (Lint.Suppress.pass_label s)
  | None -> Alcotest.fail "suppression sighting missing");
  (* audit mode re-surfaces the exact site *)
  let audit =
    analyze_fixture ~respect:false [ ("f1.ml", hotpath_suppressed_src) ]
  in
  check int "audit mode re-surfaces it" 1 (count_rule "hotpath-alloc" audit);
  check int "at the allocation line" 2
    (List.hd (findings audit)).Lint.Finding.line

let test_hotpath_interprocedural () =
  (* the allocation is two calls away, across compilation units *)
  let r =
    analyze_fixture
      [
        ("leaf.ml", "let alloc_pair x = (x, x)\n");
        ("mid.ml", "let relay x = Leaf.alloc_pair x\n");
        ("hot.ml", "let entry x = Mid.relay x [@@ctslint.hotpath]\n");
      ]
  in
  (match r.Lint.Typed_check.r_roots with
  | [ (root, certified) ] ->
      check string "root" "Hot.entry" root.Lint.Typed_facts.f_canon;
      check bool "transitive alloc fails the root" false certified
  | _ -> Alcotest.fail "expected exactly one root");
  (* the chain is reported end to end: the alloc itself, and each call
     edge that transports it back to the root *)
  check
    (Alcotest.list string)
    "one finding per hop, exact files"
    [ "hot.ml"; "leaf.ml"; "mid.ml" ]
    (List.map (fun f -> f.Lint.Finding.file) (findings r));
  let at file =
    List.find (fun f -> String.equal f.Lint.Finding.file file) (findings r)
  in
  check bool "leaf names the tuple" true
    (contains ~sub:"tuple allocation" (at "leaf.ml").Lint.Finding.message);
  check bool "mid blames Leaf.alloc_pair" true
    (contains ~sub:"Leaf.alloc_pair" (at "mid.ml").Lint.Finding.message);
  check bool "root blames Mid.relay" true
    (contains ~sub:"Mid.relay" (at "hot.ml").Lint.Finding.message)

(* ------------------------------------------------------------------ *)
(* domain-unsafe                                                       *)

let test_domain_positive () =
  let r =
    analyze_fixture
      [ ("lib/mc/pool.ml", "let tally = ref 0\nlet worker () = !tally\n") ]
  in
  check int "one finding" 1 (count_rule "domain-unsafe" r);
  let f = List.hd (findings r) in
  check string "in the worker file" "lib/mc/pool.ml" f.Lint.Finding.file;
  check int "at the access" 2 f.Lint.Finding.line;
  check bool "names the global and its definition site" true
    (contains ~sub:"Pool.tally" f.Lint.Finding.message
    && contains ~sub:"lib/mc/pool.ml:1" f.Lint.Finding.message);
  check bool "suggests the remedies" true
    (contains ~sub:"DLS" f.Lint.Finding.message)

let test_domain_dls_negative () =
  let r =
    analyze_fixture
      [
        ( "lib/mc/pool.ml",
          "let slot = Domain.DLS.new_key (fun () -> 0)\n\
           let worker () = Domain.DLS.get slot\n" );
      ]
  in
  check int "DLS-mediated state is fine" 0 (List.length (findings r))

let test_domain_lock_negative () =
  let r =
    analyze_fixture
      [
        ( "lib/mc/pool.ml",
          "let lock = Mutex.create ()\n\
           let total = ref 0\n\
           let worker () = Mutex.protect lock (fun () -> total := !total + 1)\n"
        );
      ]
  in
  check int "lock-protected access is fine" 0 (count_rule "domain-unsafe" r)

let test_domain_owned_suppressed () =
  let src =
    "let registry = ref 0\n\
     [@@ctslint.domain_owned \"fixture: populated before workers start\"]\n\
     let worker () = !registry\n"
  in
  let r = analyze_fixture [ ("lib/mc/pool.ml", src) ] in
  check int "declared ownership silences the finding" 0
    (List.length (findings r));
  match
    supp_with r (fun s -> s.Lint.Suppress.s_kind = Lint.Suppress.Domain_owned)
  with
  | Some s ->
      check string "consumed by the typed pass" "typed"
        (Lint.Suppress.pass_label s)
  | None -> Alcotest.fail "domain_owned sighting missing"

(* ------------------------------------------------------------------ *)
(* runtime-boundary                                                    *)

let test_runtime_positive () =
  let r =
    analyze_fixture [ ("lib/foo.ml", "let elapsed () = Sys.time ()\n") ]
  in
  check int "one finding" 1 (count_rule "runtime-boundary" r);
  let f = List.hd (findings r) in
  check string "exact file" "lib/foo.ml" f.Lint.Finding.file;
  check int "exact line" 1 f.Lint.Finding.line;
  check bool "names the ident" true
    (contains ~sub:"Sys.time" f.Lint.Finding.message)

let test_runtime_exempt () =
  let r =
    analyze_fixture
      [ ("lib/rt_real/clock.ml", "let elapsed () = Sys.time ()\n") ]
  in
  check int "the runtime layer may touch the runtime" 0
    (List.length (findings r))

let runtime_suppressed_src =
  "let elapsed () =\n\
  \  Sys.time ()\n\
   [@@ctslint.allow \"runtime-boundary\" \"fixture: declared boundary\"]\n"

let test_runtime_suppressed () =
  let r = analyze_fixture [ ("lib/foo.ml", runtime_suppressed_src) ] in
  check int "allow silences the finding" 0 (List.length (findings r));
  (match
     supp_with r (fun s ->
         String.equal s.Lint.Suppress.s_rule "runtime-boundary")
   with
  | Some s ->
      check string "consumed by the typed pass" "typed"
        (Lint.Suppress.pass_label s)
  | None -> Alcotest.fail "suppression sighting missing");
  let audit =
    analyze_fixture ~respect:false [ ("lib/foo.ml", runtime_suppressed_src) ]
  in
  check int "audit mode re-surfaces it" 1 (count_rule "runtime-boundary" audit)

(* ------------------------------------------------------------------ *)
(* Suppression hygiene across the two passes                           *)

let test_unused_typed_allow () =
  let r =
    analyze_fixture
      [
        ( "f1.ml",
          "let clean x = x + 1\n\
           [@@ctslint.allow \"hotpath-alloc\" \"fixture: silences nothing\"]\n"
        );
      ]
  in
  check (Alcotest.list string) "unused typed allow is itself a finding"
    [ "unused-allow" ] (rules_of r);
  check bool "names the rule" true
    (contains ~sub:"hotpath-alloc" (List.hd (findings r)).Lint.Finding.message)

let test_syntactic_hygiene_of_typed_attrs () =
  (* attribute well-formedness stays with the syntactic pass, for both
     passes' annotations *)
  let rules_syn src =
    let fs, _ = Lint.Driver.lint_string ~file:"lib/fixture/fix.ml" src in
    List.map (fun f -> f.Lint.Finding.rule) fs
  in
  check (Alcotest.list string) "hotpath takes no payload"
    [ "bad-suppression" ]
    (rules_syn "let f x = x [@@ctslint.hotpath \"why\"]\n");
  check (Alcotest.list string) "domain_owned needs a reason"
    [ "bad-suppression" ]
    (rules_syn "let r = ref 0 [@@ctslint.domain_owned]\n");
  check (Alcotest.list string) "unknown ctslint attribute"
    [ "bad-suppression" ]
    (rules_syn "let g = 1 [@@ctslint.frobnicate \"a\" \"b\"]\n");
  check (Alcotest.list string) "well-formed hotpath is clean" []
    (rules_syn "let f x = x [@@ctslint.hotpath]\n");
  check (Alcotest.list string) "well-formed domain_owned is clean" []
    (rules_syn "let r = ref 0 [@@ctslint.domain_owned \"reason here\"]\n")

let test_pass_attribution_merge () =
  let mk ?(syn = false) ?(typed = false) () =
    {
      Lint.Suppress.s_file = "x.ml";
      s_line = 3;
      s_rule = "wall-clock";
      s_reason = "r";
      s_scope = Lint.Suppress.Scoped;
      s_kind = Lint.Suppress.Allow;
      s_used_syn = syn;
      s_used_typed = typed;
    }
  in
  check string "unused" "unused" (Lint.Suppress.pass_label (mk ()));
  check string "syntactic" "syntactic"
    (Lint.Suppress.pass_label (mk ~syn:true ()));
  check string "typed" "typed" (Lint.Suppress.pass_label (mk ~typed:true ()));
  (* the same source attribute seen by both walks merges into one entry
     that remembers both consumers *)
  let merged =
    Lint.Suppress.merge_into ~into:[ mk ~syn:true () ] [ mk ~typed:true () ]
  in
  check int "one entry per source attribute" 1 (List.length merged);
  let s = List.hd merged in
  check string "both passes" "both passes" (Lint.Suppress.pass_label s);
  check bool "inventory renders the consumer" true
    (contains ~sub:"[both passes]" (Lint.Suppress.to_string s))

(* ------------------------------------------------------------------ *)
(* Live-tree gates                                                     *)

let repo_root () =
  (* Walk up from the runtime cwd (_build/default/test under dune) to
     the checkout: the first ancestor holding both .git and
     dune-project. *)
  let rec go d =
    if
      Sys.file_exists (Filename.concat d ".git")
      && Sys.file_exists (Filename.concat d "dune-project")
    then Some d
    else
      let p = Filename.dirname d in
      if String.equal p d then None else go p
  in
  go (Sys.getcwd ())

let tree_dirs = [ "lib"; "bin"; "bench"; "test"; "examples" ]

(* The typed analysis of whatever part of the tree is built.  The test
   binary's own build guarantees every library (and the tests) left a
   .cmt behind; executables may or may not be built, and the gates
   below only assert over what is present. *)
let live =
  lazy
    (match repo_root () with
    | None -> None
    | Some root -> (
        match Lint.Cmt_loader.find_build_dir root with
        | None -> None
        | Some bdir ->
            let units, errs = Lint.Cmt_loader.load_build_dir bdir in
            let units = Lint.Cmt_loader.under_paths tree_dirs units in
            let facts = List.map Lint.Typed_facts.walk_unit units in
            Some (Lint.Typed_check.analyze facts, errs)))

let test_live_typed_gate () =
  match Lazy.force live with
  | None -> () (* not running from a checkout; @lint-typed covers it *)
  | Some (r, errs) ->
      check int "every .cmt loads" 0 (List.length errs);
      check
        (Alcotest.list string)
        "zero typed findings on the live tree" []
        (List.map Lint.Finding.to_string (findings r));
      check bool "the tree was actually analyzed" true
        (r.Lint.Typed_check.r_units >= 60);
      check bool "function population floor" true
        (r.Lint.Typed_check.r_fns >= 900);
      check bool "hot-path roots present" true
        (List.length r.Lint.Typed_check.r_roots >= 13);
      List.iter
        (fun ((f : Lint.Typed_facts.fn_fact), certified) ->
          check bool ("root certifies: " ^ f.Lint.Typed_facts.f_canon) true
            certified)
        r.Lint.Typed_check.r_roots

let test_live_suppression_attribution () =
  match Lazy.force live with
  | None -> ()
  | Some (r, _) -> (
      match
        supp_with r (fun s ->
            contains ~sub:"event_queue" s.Lint.Suppress.s_file
            && String.equal s.Lint.Suppress.s_rule "hotpath-alloc")
      with
      | Some s ->
          check bool "the queue's hotpath allow is consumed by the typed pass"
            true s.Lint.Suppress.s_used_typed
      | None -> Alcotest.fail "event_queue hotpath-alloc allow not sighted")

let test_alias_coverage () =
  (* every top-level directory holding .ml files must be in the set both
     lint aliases (and these tests) sweep — a new directory cannot
     silently escape the gates *)
  match repo_root () with
  | None -> ()
  | Some root ->
      let rec has_ml dir =
        Array.exists
          (fun name ->
            let p = Filename.concat dir name in
            if Sys.is_directory p then has_ml p
            else Filename.check_suffix name ".ml")
          (Sys.readdir dir)
      in
      Array.iter
        (fun entry ->
          let p = Filename.concat root entry in
          if
            Sys.is_directory p
            && String.length entry > 0
            && entry.[0] <> '.'
            && entry.[0] <> '_' (* _build, _opam *)
            && has_ml p
          then
            check bool ("directory is lint-covered: " ^ entry) true
              (List.mem entry tree_dirs))
        (Sys.readdir root);
      (* and the dune rules pass exactly that set to both passes *)
      let ic = open_in (Filename.concat root "dune") in
      let n = in_channel_length ic in
      let dune = really_input_string ic n in
      close_in ic;
      let args = String.concat " " tree_dirs in
      check bool "@lint sweeps the full set" true
        (contains ~sub:("ctslint.exe} " ^ args) dune);
      check bool "@lint-typed sweeps the full set" true
        (contains ~sub:("ctslint.exe} --typed " ^ args) dune)

let test_linted_file_floor () =
  match repo_root () with
  | None -> ()
  | Some root ->
      let paths =
        List.filter_map
          (fun d ->
            let p = Filename.concat root d in
            if Sys.file_exists p then Some p else None)
          tree_dirs
      in
      let r = Lint.Driver.lint_paths paths in
      check bool "syntactic pass file floor" true (r.Lint.Driver.files >= 95)

(* ------------------------------------------------------------------ *)
(* Static-vs-dynamic cross-check                                       *)

(* The certifier's inventory is a *claim* about runtime behavior; these
   twins hold it to account.  Each picks functions the static pass
   certified on the live tree and drives them through a steady-state
   loop under [Gc.minor_words]: the delta must be exactly zero. *)

let assert_certified names =
  match Lazy.force live with
  | None -> ()
  | Some (r, _) ->
      List.iter
        (fun n ->
          check bool ("statically certified: " ^ n) true
            (List.mem n r.Lint.Typed_check.r_certified))
        names

let minor_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_cross_check_engine_queue () =
  assert_certified
    [
      "Dsim.Engine.fire_head";
      "Dsim.Event_queue.push";
      "Dsim.Event_queue.fire_min_exn";
      "Dsim.Event_queue.sift_up";
      "Dsim.Event_queue.sift_down";
      "Dsim.Event_queue.drop_min";
      "Dsim.Event_queue.min_time_exn";
    ];
  let eng = Dsim.Engine.create () in
  let fill n =
    for i = 1 to n do
      Dsim.Engine.schedule eng (Dsim.Time.Span.of_us (i mod 997)) ignore
    done;
    Dsim.Engine.run eng
  in
  (* warm: engine construction and the queue's one-time growth to the
     largest batch happen outside the meter, as in the LOOP bench.  The
     certificate covers the per-event path (schedule/push/fire), not the
     [run] entry itself, so the meter holds the number of [run] calls
     fixed and varies the event count: any per-event allocation shows up
     as the deltas diverging, while a constant per-call cost cancels. *)
  fill 8192;
  fill 8192;
  let d_small = minor_delta (fun () -> fill 1024) in
  let d_large = minor_delta (fun () -> fill 8192) in
  check (Alcotest.float 0.0) "per-event allocation is zero" d_small d_large;
  check bool "per-run overhead is bounded" true (d_small < 64.0)

let test_cross_check_rng () =
  assert_certified [ "Dsim.Rng.bits" ];
  let t = Dsim.Rng.create 0x2545F4914F6CDD1DL in
  let acc = ref 0 in
  for _ = 1 to 1_000 do
    acc := !acc lxor Dsim.Rng.bits t
  done;
  let dw =
    minor_delta (fun () ->
        for _ = 1 to 100_000 do
          acc := !acc lxor Dsim.Rng.bits t
        done)
  in
  ignore (Sys.opaque_identity !acc);
  check (Alcotest.float 0.0) "rng draws allocate nothing" 0.0 dw

let test_cross_check_recorder () =
  assert_certified [ "Obs.Recorder.emit" ];
  let r = Obs.Recorder.create ~capacity:1024 () in
  (* warm past the wrap so the measured region is pure ring overwrite *)
  for i = 1 to 2048 do
    Obs.Recorder.emit r ~kind:Obs.Recorder.k_step ~ts_us:i ~node:0 ~a:i ~b:0
  done;
  let dw =
    minor_delta (fun () ->
        for i = 1 to 100_000 do
          Obs.Recorder.emit r ~kind:Obs.Recorder.k_step ~ts_us:i ~node:1 ~a:i
            ~b:i
        done)
  in
  check (Alcotest.float 0.0) "flight recorder emits allocate nothing" 0.0 dw

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "lint-typed",
      [
        Alcotest.test_case "hotpath-alloc: positive" `Quick
          test_hotpath_positive;
        Alcotest.test_case "hotpath-alloc: negative" `Quick
          test_hotpath_negative;
        Alcotest.test_case "hotpath-alloc: suppressed" `Quick
          test_hotpath_suppressed;
        Alcotest.test_case "hotpath-alloc: interprocedural 2-hop" `Quick
          test_hotpath_interprocedural;
        Alcotest.test_case "domain-unsafe: positive" `Quick
          test_domain_positive;
        Alcotest.test_case "domain-unsafe: DLS negative" `Quick
          test_domain_dls_negative;
        Alcotest.test_case "domain-unsafe: lock negative" `Quick
          test_domain_lock_negative;
        Alcotest.test_case "domain-unsafe: domain_owned" `Quick
          test_domain_owned_suppressed;
        Alcotest.test_case "runtime-boundary: positive" `Quick
          test_runtime_positive;
        Alcotest.test_case "runtime-boundary: rt_real exempt" `Quick
          test_runtime_exempt;
        Alcotest.test_case "runtime-boundary: suppressed" `Quick
          test_runtime_suppressed;
        Alcotest.test_case "unused typed allow" `Quick test_unused_typed_allow;
        Alcotest.test_case "syntactic hygiene of typed attributes" `Quick
          test_syntactic_hygiene_of_typed_attrs;
        Alcotest.test_case "suppression pass attribution" `Quick
          test_pass_attribution_merge;
        Alcotest.test_case "live tree: typed gate" `Quick test_live_typed_gate;
        Alcotest.test_case "live tree: suppression attribution" `Quick
          test_live_suppression_attribution;
        Alcotest.test_case "lint alias coverage" `Quick test_alias_coverage;
        Alcotest.test_case "linted file floor" `Quick test_linted_file_floor;
        Alcotest.test_case "cross-check: engine + queue" `Quick
          test_cross_check_engine_queue;
        Alcotest.test_case "cross-check: rng" `Quick test_cross_check_rng;
        Alcotest.test_case "cross-check: recorder" `Quick
          test_cross_check_recorder;
      ] );
  ]
