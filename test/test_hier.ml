(* The hierarchical multi-ring service: topology math, deterministic
   gateway election, cross-shard convergence in both bridge modes,
   gateway failover and bridge partition/heal. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module CH = Scenario.Cluster_hier

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

let test_topology_math () =
  let topo = Hier.Topology.create ~shards:4 ~shard_size:3 in
  check int "replicas" 12 (Hier.Topology.replicas topo);
  check int "shard of node 7" 2 (Hier.Topology.shard_of topo (Nid.of_int 7));
  check int "rank of node 7" 1 (Hier.Topology.rank_of topo (Nid.of_int 7));
  check int "node (3,2)" 11
    (Nid.to_int (Hier.Topology.node topo ~shard:3 ~rank:2));
  check
    (Alcotest.list int)
    "members of shard 1" [ 3; 4; 5 ]
    (List.map Nid.to_int (Hier.Topology.shard_members topo 1));
  check int "ring distance wraps" 1 (Hier.Topology.ring_distance topo 0 3);
  check int "ring distance direct" 2 (Hier.Topology.ring_distance topo 0 2);
  Alcotest.check_raises "node outside layout"
    (Invalid_argument "Hier.Topology.shard_of: node outside the layout")
    (fun () -> ignore (Hier.Topology.shard_of topo (Nid.of_int 12)))

(* ------------------------------------------------------------------ *)
(* Deterministic election (satellite: Dsim.Det.elect)                  *)

let prop_elect_order_independent =
  QCheck.Test.make ~count:200
    ~name:"det: elect is independent of arrival order and table layout"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 1_000_000))
    (fun ids ->
      let reference = List.fold_left min (List.hd ids) ids in
      (* arrival order: as generated, reversed, sorted descending *)
      let perms =
        [ ids; List.rev ids; List.sort (fun a b -> compare b a) ids ]
      in
      let all_orders_agree =
        List.for_all
          (fun p -> Dsim.Det.elect ~compare:Int.compare p = Some reference)
          perms
      in
      (* Hashtbl layout: feed the ids through a randomized hash table and
         elect over whatever order [fold] yields — the winner must not
         depend on bucket layout or the process's hash seed. *)
      let tbl = Hashtbl.create ~random:true 16 in
      List.iter (fun i -> Hashtbl.replace tbl i ()) ids;
      let hashed_order =
        (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
        [@ctslint.allow
          "hash-order"
            "the property deliberately feeds bucket order to [elect] to \
             prove the winner does not depend on it"]
      in
      all_orders_agree
      && Dsim.Det.elect ~compare:Int.compare hashed_order = Some reference)

let test_elect_empty () =
  check bool "empty view elects nobody" true
    (Dsim.Det.elect ~compare:Int.compare [] = None)

(* ------------------------------------------------------------------ *)
(* Hierarchical cluster fixtures                                       *)

(* Shard s's clocks start s * 5 ms behind real time: a visible initial
   cross-shard spread the bridge has to close. *)
let skewed_clock topo i =
  let shard = Hier.Topology.shard_of topo (Nid.of_int i) in
  {
    Clock.Hwclock.default_config with
    offset = Span.of_ms (-5 * shard);
  }

let make ?(seed = 11L) ?(shards = 3) ?(shard_size = 3) ?gateway_config () =
  let topo = Hier.Topology.create ~shards ~shard_size in
  CH.create ~seed ?gateway_config
    ~clock_config:(skewed_clock topo)
    ~shards ~shard_size ()

let settle = Span.of_ms 120

let test_star_convergence () =
  let t = make () in
  CH.start_all t;
  let initial = CH.cross_shard_skew t in
  check bool "initial spread is the injected 10 ms" true
    (Span.to_us initial > 9_000);
  CH.start_readers t;
  CH.run_for t settle;
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "converged (skew %d us)" (Span.to_us skew))
    true
    (Span.to_us skew < 5_000);
  check bool "bridge rounds were agreed" true (CH.agreed_rounds t > 10);
  check bool "no global-clock regression" true (CH.regressions t = 0);
  (* the Gradient TRIX neighbour metric is bounded by the global spread *)
  check bool "neighbor skew <= cross-shard skew" true
    (Span.compare (CH.neighbor_skew t) skew <= 0)

let test_ring_mode_convergence () =
  let t =
    make ~seed:12L
      ~gateway_config:
        { Hier.Gateway.default_config with Hier.Gateway.mode = Hier.Gateway.Ring }
      ()
  in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t settle;
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "ring mode converged (skew %d us)" (Span.to_us skew))
    true
    (Span.to_us skew < 5_000);
  check bool "ring mode agreed rounds" true (CH.agreed_rounds t > 10)

let test_deterministic_runs () =
  let run () =
    let t = make ~seed:21L () in
    CH.start_all t;
    CH.start_readers t;
    CH.run_for t settle;
    (Span.to_us (CH.cross_shard_skew t), CH.agreed_rounds t)
  in
  let a = run () and b = run () in
  check bool "same seed, same skew and rounds" true (a = b)

let test_gateway_crash_reelection () =
  let t = make ~seed:13L () in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t (Span.of_ms 40);
  (* shard 1's gateway must be its lowest id (node 3) *)
  check (Alcotest.option int) "initial gateway is min id" (Some 3)
    (Option.map Nid.to_int (CH.gateway_of t 1));
  let crashed = CH.crash_gateway t 1 in
  check (Alcotest.option int) "crashed the gateway" (Some 3)
    (Option.map Nid.to_int crashed);
  CH.run_for t settle;
  (* every surviving replica of shard 1 agrees on the next-lowest id *)
  check (Alcotest.option int) "re-elected deterministically" (Some 4)
    (Option.map Nid.to_int (CH.gateway_of t 1));
  check bool "no global-clock regression across failover" true
    (CH.regressions t = 0);
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "still converged after failover (skew %d us)"
       (Span.to_us skew))
    true
    (Span.to_us skew < 5_000)

(* Partition an entire shard away at the bridge, let it lag, heal, and
   require re-convergence within a bounded number of gateway rounds
   (extends the examples/partition.ml idiom to the second tier). *)
let test_bridge_partition_heal () =
  let topo = Hier.Topology.create ~shards:3 ~shard_size:3 in
  (* shard 0 additionally runs slow crystals, so while isolated it drifts
     visibly behind the global clock *)
  let clock_config i =
    let base = skewed_clock topo i in
    if Hier.Topology.shard_of topo (Nid.of_int i) = 0 then
      { base with Clock.Hwclock.drift_ppm = -8000. }
    else base
  in
  let t =
    CH.create ~seed:14L ~clock_config ~shards:3 ~shard_size:3 ()
  in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t settle;
  check bool "converged before the partition" true
    (Span.to_us (CH.cross_shard_skew t) < 5_000);
  CH.isolate_shard t 0;
  (* Shard 0 starts ahead of the residual spread, so it must first drift
     down through it before it visibly lags: at -8000 ppm, 1.5 s of
     isolation puts it ~12 ms behind where the global clock went. *)
  CH.run_for t (Span.of_ms 1500);
  let skew_partitioned = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "isolated shard lags (skew %d us)"
       (Span.to_us skew_partitioned))
    true
    (Span.to_us skew_partitioned > 5_000);
  let rounds_before = CH.agreed_rounds t in
  CH.heal_bridge t;
  (* bounded: re-convergence within 40 gateway rounds of the heal *)
  let max_rounds = 40 in
  let deadline () = CH.agreed_rounds t - rounds_before > max_rounds in
  let rec wait () =
    if CH.converged t ~bound:(Span.of_ms 5) then ()
    else if deadline () then
      Alcotest.failf "not re-converged within %d gateway rounds (skew %d us)"
        max_rounds
        (Span.to_us (CH.cross_shard_skew t))
    else begin
      CH.run_for t (Span.of_ms 5);
      wait ()
    end
  in
  wait ();
  check bool "no regression through partition and heal" true
    (CH.regressions t = 0)

let test_mid_scale_smoke () =
  (* 8 shards x 8 replicas: the shape CI smokes at 64 replicas. *)
  let topo = Hier.Topology.create ~shards:8 ~shard_size:8 in
  let t =
    CH.create ~seed:15L
      ~clock_config:(fun i ->
        {
          Clock.Hwclock.default_config with
          offset = Span.of_ms (-2 * Hier.Topology.shard_of topo (Nid.of_int i));
        })
      ~shards:8 ~shard_size:8 ()
  in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t (Span.of_ms 150);
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "64-replica skew within bound (%d us)" (Span.to_us skew))
    true
    (Span.to_us skew < 6_000);
  check bool "ccs rounds completed across the fleet" true
    (CH.ccs_rounds_completed t > 8 * 8 * 20)

(* Random-walk exploration with gateway crashes: the mc invariants
   (skew bound, deterministic re-election, no global-clock regression)
   must hold on every explored schedule. *)
let test_random_walks () =
  let report =
    Mc.Hier_check.run
      { Mc.Hier_check.default with Mc.Hier_check.walks = 4; steps = 4 }
  in
  check int "walks explored" 4 report.Mc.Hier_check.walks_run;
  check bool "crashes were actually injected" true
    (report.Mc.Hier_check.crashes_injected > 0);
  match report.Mc.Hier_check.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%d violation(s), first: %a"
        (List.length report.Mc.Hier_check.violations)
        Mc.Hier_check.pp_violation v

let suites =
  [
    ( "hier",
      [
        Alcotest.test_case "topology math" `Quick test_topology_math;
        QCheck_alcotest.to_alcotest prop_elect_order_independent;
        Alcotest.test_case "elect empty" `Quick test_elect_empty;
        Alcotest.test_case "star convergence" `Slow test_star_convergence;
        Alcotest.test_case "ring convergence" `Slow test_ring_mode_convergence;
        Alcotest.test_case "deterministic runs" `Slow test_deterministic_runs;
        Alcotest.test_case "gateway crash re-election" `Slow
          test_gateway_crash_reelection;
        Alcotest.test_case "bridge partition heal" `Slow
          test_bridge_partition_heal;
        Alcotest.test_case "64-replica smoke" `Slow test_mid_scale_smoke;
        Alcotest.test_case "random walks with gateway crashes" `Slow
          test_random_walks;
      ] );
  ]
