(* The hierarchical multi-ring service: topology math, deterministic
   gateway election, cross-shard convergence in both bridge modes,
   gateway failover and bridge partition/heal. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module CH = Scenario.Cluster_hier

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

let test_topology_math () =
  let topo = Hier.Topology.create ~shards:4 ~shard_size:3 in
  check int "replicas" 12 (Hier.Topology.replicas topo);
  check int "shard of node 7" 2 (Hier.Topology.shard_of topo (Nid.of_int 7));
  check int "rank of node 7" 1 (Hier.Topology.rank_of topo (Nid.of_int 7));
  check int "node (3,2)" 11
    (Nid.to_int (Hier.Topology.node topo ~shard:3 ~rank:2));
  check
    (Alcotest.list int)
    "members of shard 1" [ 3; 4; 5 ]
    (List.map Nid.to_int (Hier.Topology.shard_members topo 1));
  check int "ring distance wraps" 1 (Hier.Topology.ring_distance topo 0 3);
  check int "ring distance direct" 2 (Hier.Topology.ring_distance topo 0 2);
  Alcotest.check_raises "node outside layout"
    (Invalid_argument "Hier.Topology.shard_of: node outside the layout")
    (fun () -> ignore (Hier.Topology.shard_of topo (Nid.of_int 12)))

(* ------------------------------------------------------------------ *)
(* Deterministic election (satellite: Dsim.Det.elect)                  *)

let prop_elect_order_independent =
  QCheck.Test.make ~count:200
    ~name:"det: elect is independent of arrival order and table layout"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 1_000_000))
    (fun ids ->
      let reference = List.fold_left min (List.hd ids) ids in
      (* arrival order: as generated, reversed, sorted descending *)
      let perms =
        [ ids; List.rev ids; List.sort (fun a b -> compare b a) ids ]
      in
      let all_orders_agree =
        List.for_all
          (fun p -> Dsim.Det.elect ~compare:Int.compare p = Some reference)
          perms
      in
      (* Hashtbl layout: feed the ids through a randomized hash table and
         elect over whatever order [fold] yields — the winner must not
         depend on bucket layout or the process's hash seed. *)
      let tbl = Hashtbl.create ~random:true 16 in
      List.iter (fun i -> Hashtbl.replace tbl i ()) ids;
      let hashed_order =
        (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
        [@ctslint.allow
          "hash-order"
            "the property deliberately feeds bucket order to [elect] to \
             prove the winner does not depend on it"]
      in
      all_orders_agree
      && Dsim.Det.elect ~compare:Int.compare hashed_order = Some reference)

let test_elect_empty () =
  check bool "empty view elects nobody" true
    (Dsim.Det.elect ~compare:Int.compare [] = None)

(* ------------------------------------------------------------------ *)
(* Hierarchical cluster fixtures                                       *)

(* Shard s's clocks start s * 5 ms behind real time: a visible initial
   cross-shard spread the bridge has to close. *)
let skewed_clock topo i =
  let shard = Hier.Topology.shard_of topo (Nid.of_int i) in
  {
    Clock.Hwclock.default_config with
    offset = Span.of_ms (-5 * shard);
  }

let make ?(seed = 11L) ?(shards = 3) ?(shard_size = 3) ?gateway_config () =
  let topo = Hier.Topology.create ~shards ~shard_size in
  CH.create ~seed ?gateway_config
    ~clock_config:(skewed_clock topo)
    ~shards ~shard_size ()

let settle = Span.of_ms 120

let test_star_convergence () =
  let t = make () in
  CH.start_all t;
  let initial = CH.cross_shard_skew t in
  check bool "initial spread is the injected 10 ms" true
    (Span.to_us initial > 9_000);
  CH.start_readers t;
  CH.run_for t settle;
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "converged (skew %d us)" (Span.to_us skew))
    true
    (Span.to_us skew < 5_000);
  check bool "bridge rounds were agreed" true (CH.agreed_rounds t > 10);
  check bool "no global-clock regression" true (CH.regressions t = 0);
  (* the Gradient TRIX neighbour metric is bounded by the global spread *)
  check bool "neighbor skew <= cross-shard skew" true
    (Span.compare (CH.neighbor_skew t) skew <= 0)

let test_ring_mode_convergence () =
  let t =
    make ~seed:12L
      ~gateway_config:
        { Hier.Gateway.default_config with Hier.Gateway.mode = Hier.Gateway.Ring }
      ()
  in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t settle;
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "ring mode converged (skew %d us)" (Span.to_us skew))
    true
    (Span.to_us skew < 5_000);
  check bool "ring mode agreed rounds" true (CH.agreed_rounds t > 10)

let test_deterministic_runs () =
  let run () =
    let t = make ~seed:21L () in
    CH.start_all t;
    CH.start_readers t;
    CH.run_for t settle;
    (Span.to_us (CH.cross_shard_skew t), CH.agreed_rounds t)
  in
  let a = run () and b = run () in
  check bool "same seed, same skew and rounds" true (a = b)

let test_gateway_crash_reelection () =
  let t = make ~seed:13L () in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t (Span.of_ms 40);
  (* shard 1's gateway must be its lowest id (node 3) *)
  check (Alcotest.option int) "initial gateway is min id" (Some 3)
    (Option.map Nid.to_int (CH.gateway_of t 1));
  let crashed = CH.crash_gateway t 1 in
  check (Alcotest.option int) "crashed the gateway" (Some 3)
    (Option.map Nid.to_int crashed);
  CH.run_for t settle;
  (* every surviving replica of shard 1 agrees on the next-lowest id *)
  check (Alcotest.option int) "re-elected deterministically" (Some 4)
    (Option.map Nid.to_int (CH.gateway_of t 1));
  check bool "no global-clock regression across failover" true
    (CH.regressions t = 0);
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "still converged after failover (skew %d us)"
       (Span.to_us skew))
    true
    (Span.to_us skew < 5_000)

(* Partition an entire shard away at the bridge, let it lag, heal, and
   require re-convergence within a bounded number of gateway rounds
   (extends the examples/partition.ml idiom to the second tier). *)
let test_bridge_partition_heal () =
  let topo = Hier.Topology.create ~shards:3 ~shard_size:3 in
  (* shard 0 additionally runs slow crystals, so while isolated it drifts
     visibly behind the global clock *)
  let clock_config i =
    let base = skewed_clock topo i in
    if Hier.Topology.shard_of topo (Nid.of_int i) = 0 then
      { base with Clock.Hwclock.drift_ppm = -8000. }
    else base
  in
  let t =
    CH.create ~seed:14L ~clock_config ~shards:3 ~shard_size:3 ()
  in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t settle;
  check bool "converged before the partition" true
    (Span.to_us (CH.cross_shard_skew t) < 5_000);
  CH.isolate_shard t 0;
  (* Shard 0 starts ahead of the residual spread, so it must first drift
     down through it before it visibly lags: at -8000 ppm, 1.5 s of
     isolation puts it ~12 ms behind where the global clock went. *)
  CH.run_for t (Span.of_ms 1500);
  let skew_partitioned = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "isolated shard lags (skew %d us)"
       (Span.to_us skew_partitioned))
    true
    (Span.to_us skew_partitioned > 5_000);
  let rounds_before = CH.agreed_rounds t in
  CH.heal_bridge t;
  (* bounded: re-convergence within 40 gateway rounds of the heal *)
  let max_rounds = 40 in
  let deadline () = CH.agreed_rounds t - rounds_before > max_rounds in
  let rec wait () =
    if CH.converged t ~bound:(Span.of_ms 5) then ()
    else if deadline () then
      Alcotest.failf "not re-converged within %d gateway rounds (skew %d us)"
        max_rounds
        (Span.to_us (CH.cross_shard_skew t))
    else begin
      CH.run_for t (Span.of_ms 5);
      wait ()
    end
  in
  wait ();
  check bool "no regression through partition and heal" true
    (CH.regressions t = 0)

let test_mid_scale_smoke () =
  (* 8 shards x 8 replicas: the shape CI smokes at 64 replicas. *)
  let topo = Hier.Topology.create ~shards:8 ~shard_size:8 in
  let t =
    CH.create ~seed:15L
      ~clock_config:(fun i ->
        {
          Clock.Hwclock.default_config with
          offset = Span.of_ms (-2 * Hier.Topology.shard_of topo (Nid.of_int i));
        })
      ~shards:8 ~shard_size:8 ()
  in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t (Span.of_ms 150);
  let skew = CH.cross_shard_skew t in
  check bool
    (Printf.sprintf "64-replica skew within bound (%d us)" (Span.to_us skew))
    true
    (Span.to_us skew < 6_000);
  check bool "ccs rounds completed across the fleet" true
    (CH.ccs_rounds_completed t > 8 * 8 * 20)

(* Random-walk exploration with gateway crashes: the mc invariants
   (skew bound, deterministic re-election, no global-clock regression)
   must hold on every explored schedule. *)
let test_random_walks () =
  let report =
    Mc.Hier_check.run
      { Mc.Hier_check.default with Mc.Hier_check.walks = 4; steps = 4 }
  in
  check int "walks explored" 4 report.Mc.Hier_check.walks_run;
  check bool "crashes were actually injected" true
    (report.Mc.Hier_check.crashes_injected > 0);
  match report.Mc.Hier_check.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%d violation(s), first: %a"
        (List.length report.Mc.Hier_check.violations)
        Mc.Hier_check.pp_violation v

(* ------------------------------------------------------------------ *)
(* Golden-seed fingerprint (satellite: determinism pin)                *)

(* The exact observable trajectory of a 4x4 cluster on seed 11, pinned
   value-for-value: formation time, then (cross-shard skew, agreed
   rounds, regressions, CCS rounds) after each of 25 2ms slices, then
   each shard gateway's final global round/value.  Any change to the
   event schedule — an extra packet, a reordered timer, a different RNG
   draw — shifts this table, so a diff here is a loud, reviewable signal
   that a change altered behaviour rather than just performance.  When a
   change intentionally alters the schedule (as perf work on the send
   paths does), re-capture the table and justify the diff in the PR. *)
let golden_slices =
  (* (skew_us, agreed_rounds, regressions, ccs_rounds_completed) *)
  [|
    (3000, 0, 0, 16);
    (3000, 4, 0, 33);
    (733, 8, 0, 52);
    (401, 12, 0, 69);
    (378, 16, 0, 87);
    (378, 20, 0, 103);
    (378, 24, 0, 125);
    (369, 28, 0, 143);
    (369, 32, 0, 161);
    (369, 36, 0, 179);
    (369, 40, 0, 197);
    (369, 44, 0, 215);
    (369, 48, 0, 233);
    (369, 52, 0, 250);
    (369, 56, 0, 268);
    (369, 59, 0, 285);
    (369, 64, 0, 301);
    (369, 68, 0, 321);
    (369, 72, 0, 338);
    (369, 76, 0, 354);
    (369, 79, 0, 372);
    (369, 84, 0, 389);
    (369, 88, 0, 408);
    (369, 92, 0, 425);
    (369, 95, 0, 445);
  |]

(* (gateway id, global round, global value in ns) per shard *)
let golden_gateways =
  [| (0, 24, 49_784_000); (4, 24, 49_784_000); (8, 23, 47_784_000);
     (12, 24, 49_784_000) |]

let test_golden_seed_fingerprint () =
  let shards = 4 and shard_size = 4 in
  let topo = Hier.Topology.create ~shards ~shard_size in
  let clock_config i =
    {
      Clock.Hwclock.default_config with
      offset =
        Span.of_ms (-1 * Hier.Topology.shard_of topo (Nid.of_int i));
    }
  in
  let t = CH.create ~seed:11L ~clock_config ~shards ~shard_size () in
  CH.start_all t;
  check int "formation time (us)" 1203 (Time.to_us (Dsim.Engine.now t.CH.eng));
  CH.start_readers t;
  Array.iteri
    (fun i (skew, agreed, regr, ccs) ->
      CH.run_for t (Span.of_ms 2);
      check int
        (Printf.sprintf "slice %d: skew (us)" i)
        skew
        (Span.to_us (CH.cross_shard_skew t));
      check int (Printf.sprintf "slice %d: agreed rounds" i) agreed
        (CH.agreed_rounds t);
      check int (Printf.sprintf "slice %d: regressions" i) regr
        (CH.regressions t);
      check int (Printf.sprintf "slice %d: ccs rounds" i) ccs
        (CH.ccs_rounds_completed t))
    golden_slices;
  Array.iteri
    (fun s (gw, round, value_ns) ->
      match CH.gateway_of t s with
      | None -> Alcotest.failf "shard %d: no gateway" s
      | Some id ->
          check int (Printf.sprintf "shard %d: gateway" s) gw (Nid.to_int id);
          let g =
            Hier.Gateway.global t.CH.replicas.(Nid.to_int id).CH.gateway
          in
          check int
            (Printf.sprintf "shard %d: global round" s)
            round
            (Hier.Global_clock.round g);
          check int
            (Printf.sprintf "shard %d: global value (ns)" s)
            value_ns
            (match Hier.Global_clock.value g with
            | Some v -> Time.to_ns v
            | None -> -1))
    golden_gateways

let suites =
  [
    ( "hier",
      [
        Alcotest.test_case "topology math" `Quick test_topology_math;
        QCheck_alcotest.to_alcotest prop_elect_order_independent;
        Alcotest.test_case "elect empty" `Quick test_elect_empty;
        Alcotest.test_case "star convergence" `Slow test_star_convergence;
        Alcotest.test_case "ring convergence" `Slow test_ring_mode_convergence;
        Alcotest.test_case "deterministic runs" `Slow test_deterministic_runs;
        Alcotest.test_case "gateway crash re-election" `Slow
          test_gateway_crash_reelection;
        Alcotest.test_case "bridge partition heal" `Slow
          test_bridge_partition_heal;
        Alcotest.test_case "64-replica smoke" `Slow test_mid_scale_smoke;
        Alcotest.test_case "random walks with gateway crashes" `Slow
          test_random_walks;
        Alcotest.test_case "golden-seed fingerprint (4x4, seed 11)" `Slow
          test_golden_seed_fingerprint;
      ] );
  ]
