(* Tests for the §4.1 library-interposition layer: fiber-local contexts,
   transparency, nesting, and isolation between co-hosted replicas. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Gid = Gcs.Group_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let check = Alcotest.check
let bool = Alcotest.bool
let str = Alcotest.string

let test_no_context_outside_fiber () =
  Alcotest.check_raises "outside any fiber" Cts.Interpose.No_context
    (fun () -> ignore (Cts.Interpose.gettimeofday () : Time.t))

let test_no_context_in_plain_fiber () =
  let eng = Dsim.Engine.create () in
  let raised = ref false in
  Dsim.Fiber.spawn eng (fun () ->
      (try ignore (Cts.Interpose.gettimeofday () : Time.t)
       with Cts.Interpose.No_context -> raised := true));
  Dsim.Engine.run eng;
  check bool "raises without a binding" true !raised

(* An app written against the transparent API — no service handle at all. *)
let transparent_app _service =
  {
    Replica.handle =
      (fun ~thread:_ ~op ~arg ->
        match op with
        | "now" -> string_of_int (Time.to_ns (Cts.Interpose.gettimeofday ()))
        | "now_s" -> string_of_int (Time.to_ns (Cts.Interpose.time ()))
        | _ -> arg);
    snapshot = (fun () -> "");
    restore = ignore;
  }

let make_rig ?(seed = 1L) () =
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (7 * i) }
  in
  let cluster = Cluster.create ~seed ~clock_config ~nodes:4 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
  let config =
    {
      Replica.default_config with
      initial_members = List.map Nid.of_int [ 1; 2; 3 ];
    }
  in
  let replicas =
    List.map
      (fun node ->
        Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:transparent_app ())
      [ 1; 2; 3 ]
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 3);
  (cluster, replicas, client)

let test_transparent_app_gets_group_clock () =
  let cluster, replicas, client = make_rig () in
  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      let v1 = Rpc.Client.invoke client ~op:"now" ~arg:"" in
      let v2 = Rpc.Client.invoke client ~op:"now" ~arg:"" in
      check bool "monotone" true (int_of_string v2 >= int_of_string v1);
      let s = Rpc.Client.invoke client ~op:"now_s" ~arg:"" in
      check bool "time() is second-granular" true
        (int_of_string s mod 1_000_000_000 = 0);
      finished := true);
  Cluster.run_until cluster (fun () -> !finished);
  Cluster.run_for cluster (Span.of_ms 20);
  (* all replicas computed the same values: their reply caches match the
     client's view, and no replica observed a rollback *)
  List.iter
    (fun r ->
      check Alcotest.int "no rollbacks" 0
        (Cts.Service.stats (Replica.service r)).Cts.Service.rollbacks)
    replicas

let test_nested_context_restored () =
  let eng = Dsim.Engine.create () in
  let net = Netsim.Network.create eng Netsim.Network.default_config in
  let ep0 = Gcs.Endpoint.create eng net ~me:(Nid.of_int 0) ~bootstrap:true () in
  Gcs.Endpoint.start ep0;
  Dsim.Engine.run ~until:(Time.of_ms 20) eng;
  let clock = Clock.Hwclock.create eng Clock.Hwclock.default_config in
  let mk group =
    let service =
      Cts.Service.create eng ~endpoint:ep0 ~group:(Gid.of_int group) ~clock ()
    in
    Gcs.Endpoint.join_group ep0 (Gid.of_int group) ~handler:(fun ev ->
        match ev with
        | Gcs.Endpoint.Deliver { msg; _ } -> Cts.Service.on_message service msg
        | Gcs.Endpoint.View_change v -> Cts.Service.on_view service v
        | Gcs.Endpoint.Block | Gcs.Endpoint.Evicted -> ());
    service
  in
  let sa = mk 5 and sb = mk 6 in
  Dsim.Engine.run ~until:(Time.of_ms 40) eng;
  let thread = Cts.Thread_id.of_int 1 in
  let ok = ref false in
  Dsim.Fiber.spawn eng (fun () ->
      Cts.Interpose.with_context sa ~thread (fun () ->
          let outer_before = Cts.Interpose.context () in
          Cts.Interpose.with_context sb ~thread (fun () ->
              match Cts.Interpose.context () with
              | Some (s, _) ->
                  assert (
                    (s == sb)
                    [@ctslint.allow
                      "phys-equality"
                        "context restoration must hand back the same \
                         service value, not a copy"])
              | None -> assert false);
          let outer_after = Cts.Interpose.context () in
          (match (outer_before, outer_after) with
          | Some (s1, _), Some (s2, _) ->
              ok :=
                (s1 == sa && s2 == sa)
                [@ctslint.allow
                  "phys-equality"
                    "context restoration must hand back the same service \
                     value, not a copy"]
          | _ -> ok := false)));
  Dsim.Engine.run ~until:(Time.of_ms 60) eng;
  check bool "nesting restores the outer binding" true !ok

let test_context_isolated_between_fibers () =
  let eng = Dsim.Engine.create () in
  let seen = ref [] in
  Dsim.Fiber.spawn eng (fun () ->
      Dsim.Fiber.sleep eng (Span.of_us 5);
      seen := ("a", Cts.Interpose.context () = None) :: !seen);
  Dsim.Fiber.spawn eng (fun () ->
      seen := ("b", Cts.Interpose.context () = None) :: !seen);
  Dsim.Engine.run eng;
  check bool "no binding leaks across fibers" true
    (List.for_all snd !seen)

let test_interposed_equals_explicit () =
  (* reading through the transparent API and through the explicit one
     produce the same group clock sequence *)
  let cluster, replicas, client = make_rig ~seed:5L () in
  let finished = ref false in
  let r0 = List.hd replicas in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      let via_rpc = Rpc.Client.invoke client ~op:"now" ~arg:"" in
      check bool "value sane" true (int_of_string via_rpc > 0);
      (* next round, read explicitly at one replica's service: same clock
         plane (larger value, monotone) *)
      let explicit =
        Cts.Service.gettimeofday (Replica.service r0)
          ~thread:(Cts.Thread_id.of_int 9)
      in
      check bool "explicit read after interposed read is larger" true
        (Time.to_ns explicit >= int_of_string via_rpc);
      finished := true);
  Cluster.run_until cluster (fun () -> !finished);
  check str "smoke" "ok" "ok"

let suites =
  [
    ( "cts.interpose",
      [
        Alcotest.test_case "no context outside fiber" `Quick
          test_no_context_outside_fiber;
        Alcotest.test_case "no context in plain fiber" `Quick
          test_no_context_in_plain_fiber;
        Alcotest.test_case "transparent app" `Quick
          test_transparent_app_gets_group_clock;
        Alcotest.test_case "nested contexts" `Quick
          test_nested_context_restored;
        Alcotest.test_case "fiber isolation" `Quick
          test_context_isolated_between_fibers;
        Alcotest.test_case "interposed = explicit plane" `Quick
          test_interposed_equals_explicit;
      ] );
  ]
