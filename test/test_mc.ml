(* Tests for lib/mc — the schedule-exploration model checker: choice-point
   hooks, deterministic replay, invariant checking, strategies, and the
   counterexample shrinker (including end-to-end detection of a seeded
   reordering bug). *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Eq = Dsim.Event_queue
module Engine = Dsim.Engine

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Event queue choice points *)

let test_ready_count () =
  let q = Eq.create () in
  check int "empty" 0 (Eq.ready_count q);
  Eq.push q (Time.of_us 5) () "a";
  Eq.push q (Time.of_us 5) () "b";
  Eq.push q (Time.of_us 7) () "c";
  Eq.push q (Time.of_us 5) () "d";
  check int "three at earliest" 3 (Eq.ready_count q);
  ignore (Eq.pop q);
  check int "two left" 2 (Eq.ready_count q);
  ignore (Eq.pop q);
  ignore (Eq.pop q);
  check int "lone head" 1 (Eq.ready_count q)

let test_pop_nth () =
  let q = Eq.create () in
  Eq.push q (Time.of_us 5) () "a";
  Eq.push q (Time.of_us 5) () "b";
  Eq.push q (Time.of_us 5) () "c";
  Eq.push q (Time.of_us 9) () "z";
  (* take the middle of the ready set, then check the rest still pops in
     insertion order *)
  check Alcotest.(option string) "nth=1" (Some "b")
    (Option.map (fun (_, (), v) -> v) (Eq.pop_nth q 1));
  check Alcotest.(option string) "then a" (Some "a")
    (Option.map (fun (_, (), v) -> v) (Eq.pop q));
  check Alcotest.(option string) "then c" (Some "c")
    (Option.map (fun (_, (), v) -> v) (Eq.pop q));
  check Alcotest.(option string) "then z" (Some "z")
    (Option.map (fun (_, (), v) -> v) (Eq.pop q));
  check bool "drained" true (Eq.is_empty q)

let test_pop_nth_clamped () =
  let q = Eq.create () in
  Eq.push q (Time.of_us 1) () "a";
  Eq.push q (Time.of_us 1) () "b";
  Eq.push q (Time.of_us 2) () "later";
  (* n beyond the ready set clamps to its last member, never to "later" *)
  check Alcotest.(option string) "clamped to b" (Some "b")
    (Option.map (fun (_, (), v) -> v) (Eq.pop_nth q 99));
  check Alcotest.(option string) "head intact" (Some "a")
    (Option.map (fun (_, (), v) -> v) (Eq.pop q))

let test_pop_nth_heap_invariant () =
  (* removing from the middle of the heap must leave a well-formed heap:
     drain and verify global (time, insertion) order on what remains *)
  let q = Eq.create () in
  for i = 0 to 63 do
    Eq.push q (Time.of_us (i mod 8)) () i
  done;
  ignore (Eq.pop_nth q 3);
  ignore (Eq.pop_nth q 5);
  let last = ref Time.epoch in
  let n = ref 0 in
  let ok = ref true in
  let rec drain () =
    match Eq.pop q with
    | None -> ()
    | Some (at, (), _) ->
        if Time.(at < !last) then ok := false;
        last := at;
        incr n;
        drain ()
  in
  drain ();
  check bool "time order preserved" true !ok;
  check int "all remaining popped" 62 !n

(* ------------------------------------------------------------------ *)
(* Engine scheduler hook *)

let test_engine_scheduler_reorder () =
  let eng = Engine.create () in
  let order = ref [] in
  let log tag () = order := tag :: !order in
  Engine.schedule_at eng (Time.of_us 1) (log "a");
  Engine.schedule_at eng (Time.of_us 1) (log "b");
  Engine.schedule_at eng (Time.of_us 1) (log "c");
  (* reverse the tie: always take the last ready event *)
  Engine.set_scheduler eng (Some (fun ~ready -> Engine.Take (ready - 1)));
  Engine.run eng;
  Engine.set_scheduler eng None;
  check Alcotest.(list string) "reversed" [ "c"; "b"; "a" ]
    (List.rev !order)

let test_engine_scheduler_take0_is_default () =
  let run hook =
    let eng = Engine.create () in
    let order = ref [] in
    for i = 0 to 9 do
      Engine.schedule_at eng
        (Time.of_us (i mod 3))
        (fun () -> order := i :: !order)
    done;
    if hook then Engine.set_scheduler eng (Some (fun ~ready:_ -> Engine.Take 0));
    Engine.run eng;
    List.rev !order
  in
  check Alcotest.(list int) "Take 0 = default schedule" (run false) (run true)

(* ------------------------------------------------------------------ *)
(* Harness determinism *)

let cfg rounds = { Mc.Harness.default with Mc.Harness.rounds }

let test_harness_deterministic () =
  let _, i1 = Mc.Harness.run (cfg 8) in
  let _, i2 = Mc.Harness.run (cfg 8) in
  check int "same fingerprint" i1.Mc.Harness.fingerprint
    i2.Mc.Harness.fingerprint;
  check int "same steps" i1.Mc.Harness.steps i2.Mc.Harness.steps;
  let o, _ = Mc.Harness.run (cfg 8) in
  check int "all rounds observed" 8
    (List.length o.Mc.Invariant.observations.(0))

let test_harness_replay_deviations () =
  (* a run under a random walk, replayed from its applied trace, is
     bit-identical *)
  let spec =
    {
      Mc.Controller.forced = [];
      random =
        Some
          { Mc.Controller.seed = 7L; delay_prob = 0.05; reorder_prob = 0.5 };
      quantum = Span.of_us 200;
    }
  in
  let _, info = Mc.Harness.run ~spec (cfg 8) in
  check bool "walk deviated" true (info.Mc.Harness.deviations <> []);
  let replay = Mc.Controller.replay_spec info.Mc.Harness.deviations in
  let _, info' = Mc.Harness.run ~spec:replay (cfg 8) in
  check int "replay fingerprint" info.Mc.Harness.fingerprint
    info'.Mc.Harness.fingerprint

(* ------------------------------------------------------------------ *)
(* Harness reuse: snapshot-restored worlds must be trace-identical to
   fresh construction, run after run, for every configuration shape the
   explorer feeds them. *)

let spec_with_walk seed =
  {
    Mc.Controller.forced = [];
    random =
      Some { Mc.Controller.seed; delay_prob = 0.05; reorder_prob = 0.5 };
    quantum = Span.of_us 200;
  }

let check_reused_matches_fresh name r cfg spec =
  let o_fresh, i_fresh = Mc.Harness.run ~spec cfg in
  let o_reused, i_reused = Mc.Harness.run_reused r ~spec cfg in
  check int (name ^ ": fingerprint") i_fresh.Mc.Harness.fingerprint
    i_reused.Mc.Harness.fingerprint;
  check int (name ^ ": steps") i_fresh.Mc.Harness.steps
    i_reused.Mc.Harness.steps;
  check int (name ^ ": packets") i_fresh.Mc.Harness.packets
    i_reused.Mc.Harness.packets;
  check bool (name ^ ": deviations") true
    (i_fresh.Mc.Harness.deviations = i_reused.Mc.Harness.deviations);
  check bool (name ^ ": invariant results") true
    (Mc.Invariant.check_all o_fresh = Mc.Invariant.check_all o_reused)

let test_reuse_matches_fresh_across_seeds () =
  let r = Mc.Harness.reusable (cfg 8) in
  check bool "reset available" true (Mc.Harness.reset r (cfg 8));
  List.iter
    (fun seed ->
      let c = { (cfg 8) with Mc.Harness.seed } in
      check_reused_matches_fresh
        (Printf.sprintf "seed %Ld default spec" seed)
        r c Mc.Controller.default_spec;
      check_reused_matches_fresh
        (Printf.sprintf "seed %Ld random walk" seed)
        r c
        (spec_with_walk (Int64.add seed 13L)))
    [ 1L; 2L; 99L ]

let test_reuse_matches_fresh_across_variants () =
  let variants =
    [
      ("crash", { (cfg 8) with Mc.Harness.crash_at_round = Some 4 });
      ("seeded bug", { (cfg 8) with Mc.Harness.bug = Some Mc.Harness.Ignore_buffered_winner });
      ("straggler", { (cfg 8) with Mc.Harness.straggle_us = 400 });
      ("no jitter", { (cfg 8) with Mc.Harness.jitter_us = 0 });
    ]
  in
  let r = Mc.Harness.reusable (cfg 8) in
  List.iter
    (fun (name, c) ->
      check_reused_matches_fresh (name ^ " default spec") r c
        Mc.Controller.default_spec;
      check_reused_matches_fresh (name ^ " random walk") r c
        (spec_with_walk 7L))
    variants

let test_reuse_rebuilds_on_projection_change () =
  let r = Mc.Harness.reusable (cfg 8) in
  (* replicas is part of the startup projection: reset must rebuild and
     stay trace-identical to fresh construction. *)
  let c4 = { (cfg 8) with Mc.Harness.replicas = 4 } in
  check bool "reset after projection change" true (Mc.Harness.reset r c4);
  check_reused_matches_fresh "replicas=4" r c4 Mc.Controller.default_spec;
  let c3 = cfg 8 in
  check bool "reset back" true (Mc.Harness.reset r c3);
  check_reused_matches_fresh "back to replicas=3" r c3
    Mc.Controller.default_spec

(* ------------------------------------------------------------------ *)
(* Diff snapshot/restore (Mc.Snap + the harness's verified diff mode) *)

type snap_probe = {
  mutable count : int;
  mutable label : bytes;
  mutable weights : float array;
  cells : int ref array;
}

let test_snap_restore_unit () =
  let shared = ref 5 in
  let p =
    {
      count = 1;
      label = Bytes.of_string "pristine";
      weights = [| 1.0; 2.5 |];
      cells = [| shared; shared; ref 7 |];
    }
  in
  let bump () = incr shared in
  let snap = Mc.Snap.capture (p, bump) in
  check bool "capture recorded blocks" true (Mc.Snap.blocks snap > 0);
  (* dirty every kind of captured block, including state reachable only
     through the closure's environment *)
  p.count <- 42;
  Bytes.set p.label 0 'X';
  p.weights.(1) <- 9.0;
  p.weights <- [| 0.0 |];
  p.cells.(2) := 100;
  bump ();
  bump ();
  let dirty = Mc.Snap.restore snap in
  check bool "restore rewound something" true (dirty > 0);
  check int "int field" 1 p.count;
  check bool "bytes contents" true (Bytes.to_string p.label = "pristine");
  check bool "float array field identity" true
    (Array.length p.weights = 2 && p.weights.(1) = 2.5);
  check int "ref through array" 7 !(p.cells.(2));
  check int "ref through closure env" 5 !shared;
  check bool "aliasing preserved" true
    ((p.cells.(0) == p.cells.(1))
    [@ctslint.allow
      "phys-equality"
        "the property under test: restore must preserve sharing, which is \
         exactly physical identity"]);
  (* a second run of the same mutations restores identically *)
  p.count <- 43;
  ignore (Mc.Snap.restore snap : int);
  check int "idempotent re-restore" 1 p.count

let test_diff_mode_engaged () =
  (* The standard exploration world must pass the snapshot verification
     probe: if [Snap] silently stopped covering some state, reuse would
     fall back to marshalling and this fails loudly instead of hiding a
     10x slowdown behind identical results. *)
  let r = Mc.Harness.reusable (cfg 8) in
  check bool "diff mode verified" true (Mc.Harness.reuse_mode r = `Diff);
  (* restore = fresh, draw for draw: after many dirtying runs, a diff
     restore + reseed still replays fresh construction bit-for-bit (the
     fingerprint folds every observation of every replica, so a single
     divergent RNG draw or leaked event shows up here) *)
  List.iter
    (fun seed ->
      let c = { (cfg 8) with Mc.Harness.seed } in
      check_reused_matches_fresh
        (Printf.sprintf "diff seed %Ld" seed)
        r c
        (spec_with_walk (Int64.add seed 29L)))
    [ 3L; 17L; 3L ];
  check bool "still diff after reuse" true (Mc.Harness.reuse_mode r = `Diff)

let test_diff_survives_crash_runs () =
  (* A crash run tears a replica out of the group — the most invasive
     mutation a measurement makes.  The next restore must still equal
     fresh construction, and the no-draw split-order invariant must keep
     holding (reset returning true re-validates the projection). *)
  let r = Mc.Harness.reusable (cfg 8) in
  check bool "diff mode" true (Mc.Harness.reuse_mode r = `Diff);
  let crash = { (cfg 8) with Mc.Harness.crash_at_round = Some 3 } in
  check_reused_matches_fresh "crash run via diff" r crash
    Mc.Controller.default_spec;
  check_reused_matches_fresh "clean run after crash run" r (cfg 8)
    Mc.Controller.default_spec;
  check bool "reset still available" true (Mc.Harness.reset r (cfg 8))

(* ------------------------------------------------------------------ *)
(* Invariant checks on hand-built outcomes *)

let obs replica round gc_us =
  {
    Mc.Invariant.replica;
    round;
    gc = Time.of_us gc_us;
    pc = Time.of_us gc_us;
    at = Time.of_us (100 * round);
  }

let stats ?(sent = 0) ?(suppressed = 0) ?(rollbacks = 0) rounds =
  {
    Cts.Service.rounds_completed = rounds;
    ccs_sent = sent;
    ccs_received = 0;
    suppressed;
    rollbacks;
    max_rollback = Span.zero;
    last_value = None;
  }

let outcome observations stats =
  {
    Mc.Invariant.replicas = Array.length observations;
    rounds = 2;
    observations;
    stats;
    crashed = None;
    packet_log = "";
  }

let test_invariants_catch_violations () =
  let names o = List.map fst (Mc.Invariant.check_all o) in
  (* healthy: two replicas agreeing, monotone, one send + one suppress *)
  let healthy =
    outcome
      [| [ obs 0 1 100; obs 0 2 200 ]; [ obs 1 1 100; obs 1 2 200 ] |]
      [| stats ~sent:2 2; stats ~suppressed:2 2 |]
  in
  check Alcotest.(list string) "healthy passes" [] (names healthy);
  (* group clock runs backwards at replica 0 *)
  let backwards =
    outcome
      [| [ obs 0 1 200; obs 0 2 100 ]; [ obs 1 1 200; obs 1 2 100 ] |]
      [| stats ~sent:2 2; stats ~suppressed:2 2 |]
  in
  check bool "monotone caught" true (List.mem "monotone" (names backwards));
  (* replicas disagree on round 2 *)
  let split =
    outcome
      [| [ obs 0 1 100; obs 0 2 200 ]; [ obs 1 1 100; obs 1 2 250 ] |]
      [| stats ~sent:2 2; stats ~suppressed:2 2 |]
  in
  check bool "agreement caught" true (List.mem "agreement" (names split));
  (* accounting broken: a round with neither send nor suppress *)
  let lost =
    outcome
      [| [ obs 0 1 100; obs 0 2 200 ]; [ obs 1 1 100; obs 1 2 200 ] |]
      [| stats ~sent:1 2; stats ~suppressed:2 2 |]
  in
  check bool "single-synchronizer caught" true
    (List.mem "single-synchronizer" (names lost));
  (* a rollback was recorded *)
  let rolled =
    outcome
      [| [ obs 0 1 100; obs 0 2 200 ]; [ obs 1 1 100; obs 1 2 200 ] |]
      [| stats ~sent:2 ~rollbacks:1 2; stats ~suppressed:2 2 |]
  in
  check bool "no-rollback caught" true (List.mem "no-rollback" (names rolled))

(* ------------------------------------------------------------------ *)
(* Shrinker on a synthetic predicate *)

let test_shrink_synthetic () =
  let d p = Mc.Schedule.Delay { packet = p } in
  (* failure needs deviations 2 and 5 together; everything else is noise *)
  let fails s =
    List.mem (d 2) s && List.mem (d 5) s
  in
  let sched = [ d 0; d 1; d 2; d 3; d 4; d 5; d 6; d 7 ] in
  let minimal, attempts = Mc.Shrink.minimize ~fails sched in
  check Alcotest.(list bool) "exactly the two culprits"
    [ true; true ]
    (List.map (fun x -> List.mem x minimal) [ d 2; d 5 ]);
  check int "nothing else" 2 (List.length minimal);
  check bool "bounded work" true (attempts < 100)

let test_shrink_prefix_only () =
  let d p = Mc.Schedule.Delay { packet = p } in
  (* only the first deviation matters: prefix search alone should cut it *)
  let fails s = List.mem (d 0) s in
  let minimal, _ = Mc.Shrink.minimize ~fails [ d 0; d 1; d 2; d 3 ] in
  check int "single deviation" 1 (List.length minimal)

(* ------------------------------------------------------------------ *)
(* Exploration: current code is clean under perturbation *)

let test_explore_random_clean () =
  let r =
    Mc.Explore.explore
      ~strategy:(Mc.Strategy.Random { delay_prob = 0.02; reorder_prob = 0.3 })
      ~budget:60 (cfg 8)
  in
  check int "all schedules ran" 60 r.Mc.Explore.schedules;
  check bool "distinct schedules" true (r.Mc.Explore.distinct > 50);
  check Alcotest.(list string) "no violations" []
    (List.map
       (fun v -> v.Mc.Explore.invariant)
       r.Mc.Explore.violations)

let test_explore_crash_clean () =
  let c = { (cfg 8) with Mc.Harness.crash_at_round = Some 4 } in
  let r = Mc.Explore.explore ~budget:40 c in
  check int "all schedules ran" 40 r.Mc.Explore.schedules;
  check bool "no violations" true (r.Mc.Explore.violations = [])

let test_explore_bounded_clean () =
  let r =
    Mc.Explore.explore ~strategy:(Mc.Strategy.Bounded { depth = 1 })
      ~budget:120 (cfg 6)
  in
  check bool "explored several schedules" true (r.Mc.Explore.schedules > 20);
  check bool "no violations" true (r.Mc.Explore.violations = [])

(* ------------------------------------------------------------------ *)
(* End to end: a seeded reordering bug is caught and shrunk *)

(* Replica 0 thinks fast (60 us) while the others straggle (140 us), so
   under the default schedule replica 0 always opens its rounds first and
   the Ignore_buffered_winner bug stays dormant.  A schedule that delays
   the right packet makes another replica's CCS message arrive before
   replica 0 opens — triggering the buggy suppression path. *)
let buggy =
  {
    Mc.Harness.default with
    Mc.Harness.rounds = 8;
    think_us = 60;
    straggle_us = 80;
    jitter_us = 5;
    latency_us = 20;
    bug = Some Mc.Harness.Ignore_buffered_winner;
  }

let test_seeded_bug_dormant_by_default () =
  let o, info = Mc.Harness.run buggy in
  check Alcotest.(list string) "default schedule passes" []
    (List.map fst (Mc.Invariant.check_all o));
  check bool "no deviations applied" true (info.Mc.Harness.deviations = [])

let test_seeded_bug_found_and_shrunk () =
  let r =
    Mc.Explore.explore ~strategy:(Mc.Strategy.Bounded { depth = 1 })
      ~budget:300 buggy
  in
  match r.Mc.Explore.violations with
  | [] -> Alcotest.fail "bounded exploration missed the seeded bug"
  | v :: _ ->
      check bool "agreement or monotonicity broken" true
        (List.mem v.Mc.Explore.invariant [ "agreement"; "monotone" ]);
      let len = Mc.Schedule.length v.Mc.Explore.counterexample in
      check bool "counterexample nonempty" true (len > 0);
      check bool "counterexample minimal (<= 10 deviations)" true (len <= 10);
      (* the shrunk schedule must still reproduce the violation *)
      let o, _ =
        Mc.Harness.run
          ~spec:(Mc.Controller.replay_spec v.Mc.Explore.counterexample)
          buggy
      in
      check bool "replayable" true (Mc.Invariant.check_all o <> []);
      check bool "packet log rendered" true (v.Mc.Explore.packet_log <> "");
      (* the black box rides along: the minimal repro's flight window
         must parse back and actually contain records *)
      check bool "flight window attached" true (v.Mc.Explore.blackbox <> "");
      (match Obs.Postmortem.load_string v.Mc.Explore.blackbox with
      | Error e -> Alcotest.failf "blackbox does not parse: %s" e
      | Ok w ->
          check bool "blackbox has records" true
            (Array.length w.Obs.Postmortem.records > 0))

let test_seeded_bug_random_walk_finds_it () =
  let r =
    Mc.Explore.explore
      ~strategy:(Mc.Strategy.Random { delay_prob = 0.08; reorder_prob = 0.3 })
      ~budget:400 buggy
  in
  check bool "random walk finds the bug too" true
    (r.Mc.Explore.violations <> [])

(* ------------------------------------------------------------------ *)
(* Pool: parallel exploration must be indistinguishable from serial *)

(* Everything observable about a report except timing. *)
let report_key (r : Mc.Explore.report) =
  ( r.Mc.Explore.schedules,
    r.Mc.Explore.distinct,
    r.Mc.Explore.steps_total,
    List.map
      (fun (v : Mc.Explore.violation) ->
        (v.Mc.Explore.invariant, v.Mc.Explore.seed, v.Mc.Explore.counterexample))
      r.Mc.Explore.violations )

let test_pool_matches_serial_clean () =
  let c = cfg 6 in
  let serial = Mc.Explore.explore ~budget:60 c in
  let pooled = Mc.Pool.explore ~budget:60 ~jobs:1 c in
  check bool "pool jobs=1 = serial explore" true
    (report_key serial = report_key pooled);
  check int "distinct schedules" serial.Mc.Explore.distinct
    pooled.Mc.Explore.distinct

let test_pool_jobs_equivalence_random_clean () =
  let c = cfg 6 in
  let strategy = Mc.Strategy.Random { delay_prob = 0.02; reorder_prob = 0.3 } in
  let j1 = Mc.Pool.explore ~strategy ~budget:60 ~jobs:1 c in
  let j4 = Mc.Pool.explore ~strategy ~budget:60 ~jobs:4 c in
  check bool "jobs=1 = jobs=4 (random, clean)" true
    (report_key j1 = report_key j4);
  check int "all schedules ran" 60 j4.Mc.Explore.schedules

let test_pool_jobs_equivalence_bounded_clean () =
  (* clean bounded search: the work-stealing deques race the tree in an
     arbitrary order, but the canonical replay must hand back the exact
     sequential BFS prefix — schedule and distinct counts included *)
  let c = cfg 6 in
  let strategy = Mc.Strategy.Bounded { depth = 1 } in
  let serial = Mc.Explore.explore ~strategy ~budget:80 c in
  let j1 = Mc.Pool.explore ~strategy ~budget:80 ~jobs:1 c in
  let j4 = Mc.Pool.explore ~strategy ~budget:80 ~jobs:4 c in
  check bool "jobs=1 = jobs=4 (bounded, clean)" true
    (report_key j1 = report_key j4);
  check int "distinct matches" j1.Mc.Explore.distinct j4.Mc.Explore.distinct;
  check int "steps match" j1.Mc.Explore.steps_total j4.Mc.Explore.steps_total;
  check bool "pool = serial (bounded, clean)" true
    (report_key serial = report_key j1);
  check int "serial distinct" serial.Mc.Explore.distinct
    j4.Mc.Explore.distinct

let test_pool_jobs_equivalence_bounded_buggy () =
  (* the seeded bug: same violation (invariant, seed, shrunk
     counterexample), same schedule counts, whatever the domain count *)
  let strategy = Mc.Strategy.Bounded { depth = 1 } in
  let j1 = Mc.Pool.explore ~strategy ~budget:300 ~jobs:1 buggy in
  let j4 = Mc.Pool.explore ~strategy ~budget:300 ~jobs:4 buggy in
  check bool "violation found" true (j1.Mc.Explore.violations <> []);
  check bool "jobs=1 = jobs=4 (bounded, buggy)" true
    (report_key j1 = report_key j4);
  let serial = Mc.Explore.explore ~strategy ~budget:300 buggy in
  check bool "pool = serial on the violation" true
    (report_key serial = report_key j1)

let test_pool_jobs_equivalence_random_buggy () =
  let strategy = Mc.Strategy.Random { delay_prob = 0.08; reorder_prob = 0.3 } in
  let j1 = Mc.Pool.explore ~strategy ~budget:400 ~jobs:1 buggy in
  let j3 = Mc.Pool.explore ~strategy ~budget:400 ~jobs:3 buggy in
  check bool "violation found" true (j1.Mc.Explore.violations <> []);
  check bool "jobs=1 = jobs=3 (random, buggy)" true
    (report_key j1 = report_key j3)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "mc.choice_points",
      [
        Alcotest.test_case "ready_count" `Quick test_ready_count;
        Alcotest.test_case "pop_nth" `Quick test_pop_nth;
        Alcotest.test_case "pop_nth clamped" `Quick test_pop_nth_clamped;
        Alcotest.test_case "pop_nth heap invariant" `Quick
          test_pop_nth_heap_invariant;
        Alcotest.test_case "scheduler reorder" `Quick
          test_engine_scheduler_reorder;
        Alcotest.test_case "scheduler Take 0 = default" `Quick
          test_engine_scheduler_take0_is_default;
      ] );
    ( "mc.harness",
      [
        Alcotest.test_case "deterministic" `Quick test_harness_deterministic;
        Alcotest.test_case "replay deviations" `Quick
          test_harness_replay_deviations;
      ] );
    ( "mc.reuse",
      [
        Alcotest.test_case "matches fresh across seeds" `Quick
          test_reuse_matches_fresh_across_seeds;
        Alcotest.test_case "matches fresh across variants" `Quick
          test_reuse_matches_fresh_across_variants;
        Alcotest.test_case "rebuilds on projection change" `Quick
          test_reuse_rebuilds_on_projection_change;
        Alcotest.test_case "snap restore unit" `Quick test_snap_restore_unit;
        Alcotest.test_case "diff mode engaged + restore = fresh" `Quick
          test_diff_mode_engaged;
        Alcotest.test_case "diff survives crash runs" `Quick
          test_diff_survives_crash_runs;
      ] );
    ( "mc.invariants",
      [
        Alcotest.test_case "catch hand-built violations" `Quick
          test_invariants_catch_violations;
      ] );
    ( "mc.shrink",
      [
        Alcotest.test_case "two-culprit schedule" `Quick test_shrink_synthetic;
        Alcotest.test_case "prefix-only" `Quick test_shrink_prefix_only;
      ] );
    ( "mc.explore",
      [
        Alcotest.test_case "random walk clean" `Quick test_explore_random_clean;
        Alcotest.test_case "crash perturbation clean" `Quick
          test_explore_crash_clean;
        Alcotest.test_case "bounded search clean" `Quick
          test_explore_bounded_clean;
      ] );
    ( "mc.pool",
      [
        Alcotest.test_case "jobs=1 matches serial" `Quick
          test_pool_matches_serial_clean;
        Alcotest.test_case "jobs equivalence (random, clean)" `Quick
          test_pool_jobs_equivalence_random_clean;
        Alcotest.test_case "jobs equivalence (bounded, clean)" `Quick
          test_pool_jobs_equivalence_bounded_clean;
        Alcotest.test_case "jobs equivalence (bounded, buggy)" `Quick
          test_pool_jobs_equivalence_bounded_buggy;
        Alcotest.test_case "jobs equivalence (random, buggy)" `Quick
          test_pool_jobs_equivalence_random_buggy;
      ] );
    ( "mc.seeded_bug",
      [
        Alcotest.test_case "dormant by default" `Quick
          test_seeded_bug_dormant_by_default;
        Alcotest.test_case "found and shrunk" `Quick
          test_seeded_bug_found_and_shrunk;
        Alcotest.test_case "random walk finds it" `Quick
          test_seeded_bug_random_walk_finds_it;
      ] );
  ]
