(* Smoke tests for the experiment runners: every benchmark path executes at
   a small scale and its headline shape assertions hold.  (The full-scale
   numbers live in EXPERIMENTS.md; these tests make sure a regression in
   any layer shows up in `dune runtest` and not only in the bench run.) *)

module E = Scenario.Experiments
module Time = Dsim.Time
module Span = Dsim.Time.Span

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_latency_overhead_positive () =
  let with_cts = E.latency ~invocations:120 ~use_cts:true () in
  let without = E.latency ~invocations:120 ~use_cts:false () in
  let m_w = Stats.Summary.mean with_cts.E.summary in
  let m_wo = Stats.Summary.mean without.E.summary in
  check int "all invocations measured" 120
    (Stats.Summary.count with_cts.E.summary);
  check bool "consistent time service costs latency" true (m_w > m_wo);
  (* ... on the order of a token rotation (~205 us), not microseconds and
     not milliseconds *)
  check bool "overhead is about one rotation" true
    (m_w -. m_wo > 100. && m_w -. m_wo < 500.)

let test_latency_deterministic_across_runs () =
  let run () =
    Stats.Summary.mean (E.latency ~seed:9L ~invocations:50 ~use_cts:true ()).E.summary
  in
  check (Alcotest.float 1e-9) "same seed, same result" (run ()) (run ())

let test_skew_samples_complete () =
  let r = E.skew ~rounds:60 () in
  Array.iteri
    (fun i samples ->
      check int (Printf.sprintf "replica %d sample count" i) 60
        (List.length samples))
    r.E.samples;
  (* every replica records the same group clock sequence *)
  let gcs i = List.map (fun s -> s.E.gc) r.E.samples.(i) in
  check bool "identical group clock at replicas" true
    (gcs 0 = gcs 1 && gcs 1 = gcs 2)

let test_skew_group_clock_runs_slow () =
  let r = E.skew ~rounds:400 () in
  check bool "negative drift" true (E.drift_slope r < 0.)

(* Fig6 drift audit: the headline −100k µs/s slope is the per-round ratchet
   multiplied by the (accelerated) round issue rate, not a unit bug in the
   model.  Pin the calibrated per-round figure to the one-way-delay band
   and pin the per-second slope to per-round × rate, so any future unit or
   sign error in the sampling/reporting path trips this test. *)
let test_drift_slope_calibrated () =
  let r = E.skew ~seed:5L ~rounds:800 () in
  let s = E.drift_stats r in
  check bool "per-round ratchet within one-way-delay band" true
    (s.E.per_round_us < -5. && s.E.per_round_us > -80.);
  check bool "rounds are issued every few hundred us" true
    (s.E.rounds_per_sec > 1_000. && s.E.rounds_per_sec < 20_000.);
  let predicted = s.E.per_round_us *. s.E.rounds_per_sec in
  check bool "per-second slope = per-round x issue rate" true
    (Float.abs (s.E.per_second_us -. predicted)
    < 0.25 *. Float.abs s.E.per_second_us)

let test_skew_message_total_near_rounds () =
  let r = E.skew ~rounds:300 () in
  let total = Array.fold_left ( + ) 0 r.E.ccs_sent in
  (* paper: total = number of rounds; we allow a small overshoot from
     concurrent token visits *)
  check bool "one CCS message per round on the wire" true
    (total >= 300 && total < 360)

let test_anchored_compensation_removes_drift () =
  let uncomp = E.drift_slope (E.skew ~rounds:600 ()) in
  let anchored =
    E.drift_slope (E.skew ~rounds:600 ~compensation:(`Anchored (0.1, 0)) ())
  in
  check bool "uncompensated drifts" true (uncomp < -10_000.);
  check bool "anchored drift at least 10x smaller" true
    (Float.abs anchored < Float.abs uncomp /. 10.)

let test_rollback_baseline_vs_cts () =
  let go offset_tracking =
    E.rollback ~readings_per_phase:10 ~style:Repl.Replica.Semi_active
      ~offset_tracking
      ~clock_offset_us:(fun i -> -300_000 * (i - 1))
      ()
  in
  let baseline = go false and cts = go true in
  check bool "baseline rolls back" true (baseline.E.client_rollbacks > 0);
  check int "cts never rolls back" 0 cts.E.client_rollbacks;
  check bool "baseline rollback magnitude ~ clock skew" true
    Span.(baseline.E.client_max_rollback > Span.of_ms 100)

let test_token_calibration_peak () =
  let r = E.token_calibration ~rotations:2_000 () in
  let peak =
    Stats.Histogram.bin_mid r.E.hop_histogram
      (Stats.Histogram.mode_bin r.E.hop_histogram)
  in
  check bool "peak near the paper's 51 us/hop" true (peak > 45. && peak < 60.)

let test_recovery_experiment () =
  let r = E.recovery ~readings:24 () in
  check bool "initialized" true r.E.joiner_initialized;
  check bool "state matches" true r.E.joiner_state_matches;
  check bool "monotone" true r.E.group_clock_monotone

let test_fig4_rows_sorted () =
  let rows = E.fig4 () in
  let sorted =
    List.sort
      (fun (a : E.fig4_row) b ->
        compare (a.f4_round, a.f4_replica) (b.f4_round, b.f4_replica))
      rows
  in
  check bool "rows in (round, replica) order" true (rows = sorted)

let suites =
  [
    ( "scenario.experiments",
      [
        Alcotest.test_case "latency overhead" `Slow
          test_latency_overhead_positive;
        Alcotest.test_case "latency deterministic" `Quick
          test_latency_deterministic_across_runs;
        Alcotest.test_case "skew completeness" `Quick
          test_skew_samples_complete;
        Alcotest.test_case "drift slope calibrated" `Slow
          test_drift_slope_calibrated;
        Alcotest.test_case "group clock runs slow" `Slow
          test_skew_group_clock_runs_slow;
        Alcotest.test_case "message total" `Slow
          test_skew_message_total_near_rounds;
        Alcotest.test_case "anchored removes drift" `Slow
          test_anchored_compensation_removes_drift;
        Alcotest.test_case "rollback comparison" `Quick
          test_rollback_baseline_vs_cts;
        Alcotest.test_case "token peak" `Quick test_token_calibration_peak;
        Alcotest.test_case "recovery" `Quick test_recovery_experiment;
        Alcotest.test_case "fig4 ordering" `Quick test_fig4_rows_sorted;
      ] );
  ]
