let () =
  Alcotest.run "cts_repro"
    (Test_dsim.suites @ Test_stats.suites @ Test_clock.suites
   @ Test_netsim.suites @ Test_totem.suites @ Test_gcs.suites
   @ Test_cts.suites @ Test_repl.suites @ Test_causal.suites
   @ Test_rpc.suites @ Test_faults.suites @ Test_totem2.suites
   @ Test_scenario.suites @ Test_interpose.suites @ Test_units.suites
   @ Test_props.suites @ Test_eventq.suites @ Test_mc.suites
   @ Test_obs.suites @ Test_flight.suites @ Test_hier.suites @ Test_lint.suites
   @ Test_lint_typed.suites)
