(* Tests for ctslint (lib/lint): per-rule fixtures — a positive finding,
   a clean negative, and a suppressed variant — with expect-style
   diagnostic rendering; suppression hygiene (missing reason, unknown
   rule, unused allow); the sort-context whitelist for pure-aggregation
   folds; and two whole-tree gates: the live tree lints clean, and the
   live [@ctslint.allow] annotations are load-bearing (removing any one
   reintroduces a finding, checked via audit mode).

   Plus the regression the linter exists to prevent: handler fan-out
   order must be a function of state, not of Hashtbl bucket layout
   (Dsim.Det + the gcs endpoint fan-out). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Fixture helpers                                                     *)

let lint ?(file = "lib/fixture/fix.ml") src =
  Lint.Driver.lint_string ~file src

let diags ?file src =
  let findings, _ = lint ?file src in
  List.map Lint.Finding.to_string findings

let rules_of ?file src =
  let findings, _ = lint ?file src in
  List.map (fun f -> f.Lint.Finding.rule) findings

let count_rule ?file rule src =
  List.length (List.filter (String.equal rule) (rules_of ?file src))

let supps_of ?file src =
  let _, supps = lint ?file src in
  supps

(* ------------------------------------------------------------------ *)
(* Rule fixtures                                                       *)

let test_wall_clock () =
  (* positive: anywhere outside lib/clock *)
  check int "gettimeofday flagged" 1
    (count_rule "wall-clock" "let t = Unix.gettimeofday ()");
  check int "Sys.time flagged" 1 (count_rule "wall-clock" "let t = Sys.time ()");
  check int "Unix.sleep flagged" 1
    (count_rule "wall-clock" "let () = Unix.sleep 1");
  check int "monotonic clock flagged" 1
    (count_rule "wall-clock" "let t = Monotonic_clock.now ()");
  check int "project wrapper flagged" 1
    (count_rule "wall-clock" "let t = Mc.Explore.wall ()");
  (* negative: the clock library itself is the sanctioned home *)
  check int "lib/clock exempt" 0
    (count_rule ~file:"lib/clock/hwclock.ml" "wall-clock"
       "let t = Unix.gettimeofday ()");
  (* negative: simulated time is fine anywhere *)
  check int "Dsim.Time clean" 0
    (count_rule "wall-clock" "let t = Dsim.Time.of_us 5");
  (* suppressed *)
  let src =
    {|let t = (Unix.gettimeofday () [@ctslint.allow "wall-clock" "boot banner only"])|}
  in
  check int "suppressed" 0 (count_rule "wall-clock" src);
  check int "suppression recorded" 1 (List.length (supps_of src))

let test_hash_order () =
  (* positive: iter whose callback order escapes (the endpoint bug shape:
     reintroducing a Hashtbl.iter handler fan-out must fail the lint) *)
  let fan_out = "let evict t = Hashtbl.iter (fun _ s -> s.handler `Evicted) t.subs" in
  check int "iter fan-out flagged" 1 (count_rule "hash-order" fan_out);
  check int "fold to list flagged" 1
    (count_rule "hash-order" "let ks h = Hashtbl.fold (fun k _ a -> k :: a) h []");
  (* negative: pure aggregation — hash order erased by an immediate sort *)
  check int "fold under sort clean" 0
    (count_rule "hash-order"
       "let ks h = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) h [])");
  check int "fold piped to sort clean" 0
    (count_rule "hash-order"
       "let ks h = Hashtbl.fold (fun k _ a -> k :: a) h [] |> List.sort compare");
  (* the sanctioned replacement is itself clean *)
  check int "Det.iter_sorted clean" 0
    (count_rule "hash-order"
       "let f t = Dsim.Det.iter_sorted ~compare:Int.compare (fun _ s -> s ()) t");
  (* suppressed, file-level *)
  let src =
    {|[@@@ctslint.allow "hash-order" "stats table: callback only sums ints"]
let total h = Hashtbl.fold (fun _ v a -> v + a) h 0|}
  in
  check int "file-level suppressed" 0 (count_rule "hash-order" src)

let test_unseeded_random () =
  check int "Random.int flagged" 1
    (count_rule "unseeded-random" "let x = Random.int 10");
  check int "Random.self_init flagged" 1
    (count_rule "unseeded-random" "let () = Random.self_init ()");
  check int "rng.ml exempt" 0
    (count_rule ~file:"lib/dsim/rng.ml" "unseeded-random"
       "let x = Random.int 10");
  check int "seeded Rng clean" 0
    (count_rule "unseeded-random" "let x = Dsim.Rng.int_range r 0 10");
  check int "suppressed" 0
    (count_rule "unseeded-random"
       {|let x = (Random.int 10 [@ctslint.allow "unseeded-random" "jitter for a log banner"])|})

let test_phys_equality () =
  check int "== flagged" 1 (count_rule "phys-equality" "let f a b = a == b");
  check int "!= flagged" 1 (count_rule "phys-equality" "let f a b = a != b");
  check int "structural clean" 0
    (count_rule "phys-equality" "let f a b = a = b || a <> b");
  check int "suppressed" 0
    (count_rule "phys-equality"
       {|let f a b = (a == b) [@ctslint.allow "phys-equality" "sentinel"]|})

let test_exn_swallow () =
  check int "with _ flagged" 1
    (count_rule "exn-swallow" "let f g = try g () with _ -> 0");
  check int "specific exception clean" 0
    (count_rule "exn-swallow" "let f g = try g () with Not_found -> 0");
  check int "bound exception clean" 0
    (count_rule "exn-swallow"
       "let f g = try g () with e -> raise e");
  check int "suppressed" 0
    (count_rule "exn-swallow"
       {|let f g = (try g () with _ -> 0) [@ctslint.allow "exn-swallow" "fallback is result-identical"]|})

let test_domain_hygiene () =
  check int "Domain.spawn flagged" 1
    (count_rule "domain-hygiene" "let d = Domain.spawn f");
  check int "Domain.self flagged" 1
    (count_rule "domain-hygiene" "let i = Domain.self ()");
  check int "pool.ml exempt" 0
    (count_rule ~file:"lib/mc/pool.ml" "domain-hygiene"
       "let d = Domain.spawn f");
  (* Domain.DLS (fiber-local state) is not in the forbidden set *)
  check int "Domain.DLS clean" 0
    (count_rule "domain-hygiene" "let k = Domain.DLS.new_key f");
  check int "suppressed" 0
    (count_rule "domain-hygiene"
       {|let d = (Domain.spawn f) [@ctslint.allow "domain-hygiene" "one-shot watchdog"]|})

let test_suppression_hygiene () =
  (* a suppression without a reason is rejected AND does not suppress *)
  let r = rules_of {|let f a b = (a == b) [@ctslint.allow "phys-equality"]|} in
  check bool "missing reason reported" true
    (List.mem "bad-suppression" r);
  check bool "missing reason does not suppress" true
    (List.mem "phys-equality" r);
  (* unknown rule *)
  let r = rules_of {|let f a b = (a == b) [@ctslint.allow "no-such-rule" "x"]|} in
  check bool "unknown rule reported" true (List.mem "bad-suppression" r);
  (* a suppression that silences nothing is flagged *)
  check int "unused allow flagged" 1
    (count_rule "unused-allow"
       {|let f a b = (a = b) [@ctslint.allow "phys-equality" "stale"]|});
  check int "unused file-level allow flagged" 1
    (count_rule "unused-allow"
       {|[@@@ctslint.allow "hash-order" "stale"]
let x = 1|});
  (* used suppressions are not unused *)
  check int "used allow not flagged" 0
    (count_rule "unused-allow"
       {|let f a b = (a == b) [@ctslint.allow "phys-equality" "sentinel"]|})

(* Expect-style: the exact rendered diagnostics, location included. *)
let test_diagnostic_rendering () =
  let expected =
    [
      "lib/fixture/fix.ml:2:14: [phys-equality] physical equality (==) \
       depends on value representation, not contents; use structural \
       (=/<>) or annotate the sanctioned sentinel identity check";
    ]
  in
  check (Alcotest.list Alcotest.string) "rendered diagnostic" expected
    (diags "let _ = ()\nlet f a b = a == b")

(* ------------------------------------------------------------------ *)
(* Whole-tree gates                                                    *)

let repo_root () =
  (* Walk up from the runtime cwd (_build/default/test under dune) to the
     checkout: the first ancestor holding both .git and dune-project. *)
  let rec go d =
    if
      Sys.file_exists (Filename.concat d ".git")
      && Sys.file_exists (Filename.concat d "dune-project")
    then Some d
    else
      let p = Filename.dirname d in
      if String.equal p d then None else go p
  in
  go (Sys.getcwd ())

let tree_paths root =
  List.filter_map
    (fun d ->
      let p = Filename.concat root d in
      if Sys.file_exists p then Some p else None)
    [ "lib"; "bin"; "bench"; "test"; "examples" ]

let test_live_tree_clean () =
  match repo_root () with
  | None -> () (* not running from a checkout; the @lint alias covers it *)
  | Some root ->
      let r = Lint.Driver.lint_paths (tree_paths root) in
      check
        (Alcotest.list Alcotest.string)
        "zero findings on the live tree" []
        (List.map Lint.Finding.to_string r.Lint.Driver.findings);
      check bool "tree was actually linted" true (r.Lint.Driver.files > 50);
      (* every suppression in the tree carries a reason by construction;
         make sure there are some (the sanctioned sentinels) *)
      check bool "suppressions present" true
        (List.length r.Lint.Driver.suppressions >= 15)

let test_live_annotations_load_bearing () =
  (* Audit mode reports findings even where suppressed.  Every live
     [@ctslint.allow] must be load-bearing: removing any one would
     reintroduce at least one finding, which is exactly the difference
     between audit mode and normal mode (unused allows are impossible in
     a clean tree — they are themselves findings). *)
  match repo_root () with
  | None -> ()
  | Some root ->
      let paths = tree_paths root in
      let audit =
        Lint.Driver.lint_paths ~respect_suppressions:false paths
      in
      let normal = Lint.Driver.lint_paths paths in
      check int "clean under suppressions" 0
        (List.length normal.Lint.Driver.findings);
      check bool "audit mode exposes the suppressed sites" true
        (List.length audit.Lint.Driver.findings
        >= List.length normal.Lint.Driver.suppressions);
      (* spot-check an annotated file: the network's fault plane is clean
         normally, dirty with its annotations ignored *)
      let net = Filename.concat root "lib/netsim/network.ml" in
      let f_normal, _ = Lint.Driver.lint_file net in
      let f_audit, _ =
        Lint.Driver.lint_file ~respect_suppressions:false net
      in
      check int "network clean with annotations" 0 (List.length f_normal);
      check bool "network dirty without annotations" true
        (List.length f_audit > 0)

(* ------------------------------------------------------------------ *)
(* The bug class itself: iteration order independent of bucket layout   *)

let test_det_sorted_iteration () =
  (* Same bindings, different insertion orders and growth histories
     (including churn through a randomized table): identical traversal. *)
  let keys = [ 3; 1; 4; 1; 5; 9; 2; 6; 535; 89; 79; 32; 384; 626 ] in
  let build order =
    let h = Hashtbl.create ~random:true 2 in
    List.iter (fun k -> Hashtbl.replace h k (k * 10)) order;
    (* churn: force growth and tombstones *)
    List.iter (fun k -> Hashtbl.replace h (k + 1000) 0) order;
    List.iter (fun k -> Hashtbl.remove h (k + 1000)) order;
    h
  in
  let a = build keys in
  let b = build (List.rev keys) in
  let trace h =
    let acc = ref [] in
    Dsim.Det.iter_sorted ~compare:Int.compare
      (fun k v -> acc := (k, v) :: !acc)
      h;
    List.rev !acc
  in
  check bool "same traversal regardless of insertion order" true
    (trace a = trace b);
  check bool "traversal is key-sorted" true
    (let ks = List.map fst (trace a) in
     ks = List.sort_uniq Int.compare keys);
  check bool "fold_sorted agrees" true
    (Dsim.Det.fold_sorted ~compare:Int.compare
       (fun k _ acc -> k :: acc)
       a []
    = List.rev (List.map fst (trace a)));
  check bool "sorted_keys agrees" true
    (Dsim.Det.sorted_keys ~compare:Int.compare a
    = List.map fst (trace a))

(* Handler fan-out at the gcs endpoint: the View_change fan-out after a
   ring event must arrive in group-id order no matter the subscription
   order (which perturbs the subs table's bucket layout). *)
module Nid = Netsim.Node_id
module Gid = Gcs.Group_id
module Endpoint = Gcs.Endpoint
module Span = Dsim.Time.Span

let fanout_order sub_order =
  let eng = Dsim.Engine.create ~seed:7L () in
  let net =
    Netsim.Network.create eng
      {
        Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us 26);
        loss = 0.;
      }
  in
  let eps =
    Array.init 3 (fun i ->
        Endpoint.create eng net ~me:(Nid.of_int i) ~bootstrap:true ())
  in
  Array.iter Endpoint.start eps;
  let seen = ref [] in
  List.iter
    (fun gi ->
      Endpoint.join_group eps.(0) (Gid.of_int gi) ~handler:(fun ev ->
          match ev with
          | Endpoint.View_change v -> seen := Gid.to_int v.Gcs.View.group :: !seen
          | _ -> ()))
    sub_order;
  let run_ms ms =
    Dsim.Engine.run
      ~until:(Dsim.Time.add (Dsim.Engine.now eng) (Span.of_ms ms))
      eng
  in
  run_ms 2_000;
  (* joins settled; isolate the ring-change fan-out *)
  seen := [];
  Endpoint.crash eps.(2);
  run_ms 5_000;
  List.rev !seen

let test_gcs_fanout_order () =
  let groups = [ 11; 3; 7; 5; 2 ] in
  let a = fanout_order groups in
  let b = fanout_order (List.rev groups) in
  let c = fanout_order (List.sort Int.compare groups) in
  check bool "fan-out happened" true (a <> []);
  check bool "order independent of subscription order (rev)" true (a = b);
  check bool "order independent of subscription order (sorted)" true (a = c);
  (* and the order is the deterministic one: ascending group id *)
  let is_sorted l = l = List.sort Int.compare l in
  check bool "each fan-out wave is group-id ascending" true
    (is_sorted (List.filteri (fun i _ -> i < List.length groups) a))

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "rule: wall-clock" `Quick test_wall_clock;
        Alcotest.test_case "rule: hash-order" `Quick test_hash_order;
        Alcotest.test_case "rule: unseeded-random" `Quick
          test_unseeded_random;
        Alcotest.test_case "rule: phys-equality" `Quick test_phys_equality;
        Alcotest.test_case "rule: exn-swallow" `Quick test_exn_swallow;
        Alcotest.test_case "rule: domain-hygiene" `Quick test_domain_hygiene;
        Alcotest.test_case "suppression hygiene" `Quick
          test_suppression_hygiene;
        Alcotest.test_case "diagnostic rendering" `Quick
          test_diagnostic_rendering;
        Alcotest.test_case "live tree lints clean" `Quick
          test_live_tree_clean;
        Alcotest.test_case "live annotations are load-bearing" `Quick
          test_live_annotations_load_bearing;
        Alcotest.test_case "Det iteration is order-independent" `Quick
          test_det_sorted_iteration;
        Alcotest.test_case "gcs fan-out order is deterministic" `Quick
          test_gcs_fanout_order;
      ] );
  ]
