(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), runs Bechamel
   micro-benchmarks of the building blocks, and emits a machine-readable
   benchmark trajectory (BENCH_PR10.json, or $CTS_BENCH_JSON) so future
   PRs can diff their perf numbers against this one.  The engine and
   explorer sections also report explicit deltas against the checked-in
   PR-2..PR-8 numbers (BENCH_PR2.json .. BENCH_PR8.json) measured on
   the same machine; the OBS1 section guards PR 4's claim that
   compiled-in but disabled probes cost nothing, the OBS2 section
   guards PR 9's claim that the always-on flight recorder stays within
   5% of recorder-off throughput at zero allocation, the LINT1 section
   times PR 5's full-tree ctslint pass, the LINT2 section times PR 10's
   typed .cmt certification pass, the HIER1 section scales the
   PR-6 hierarchical multi-ring service from 4 to 1024 replicas, and
   the SCALE1 section guards PR 7's superlinear-cost elimination: it
   attributes the 1024-replica run's wall time to (subsystem, probe)
   sites and hard-fails CI (via the "PERF WARNING (scale)" marker) if
   256-replica formation creeps back over budget.

   Run with: dune exec bench/main.exe
   Scale the workloads down for a quick pass with CTS_BENCH_SCALE=0.01. *)

[@@@ctslint.allow
"wall-clock"
  "benchmarks measure real elapsed time by definition; nothing here feeds \
   back into simulated state"]

module E = Scenario.Experiments
module R = Scenario.Report

let scale =
  match Sys.getenv_opt "CTS_BENCH_SCALE" with
  | Some s -> (
      match float_of_string_opt s with Some f -> max 0.001 f | None -> 1.)
  | None -> 1.

let scaled n = max 20 (int_of_float (float_of_int n *. scale))
let ppf = Format.std_formatter
let section name = Format.fprintf ppf "@.==== %s ====@.@." name

(* ------------------------------------------------------------------ *)
(* The benchmark-trajectory JSON: every section below contributes the
   numbers future PRs diff against.  Kept as a flat association of JSON
   fragments so the emitter stays dependency-free. *)

let json_fields : (string * string) list ref = ref []
let json_add name fragment = json_fields := (name, fragment) :: !json_fields

let json_path =
  Option.value ~default:"BENCH_PR10.json" (Sys.getenv_opt "CTS_BENCH_JSON")

(* PR-2 baselines (BENCH_PR2.json, this machine): the perf targets PR 3's
   zero-allocation work was measured against. *)
let baseline_pr2_engine_events_per_sec = 1_833_336.
let baseline_pr2_jobs1_schedules_per_sec = 4026.4

(* PR-3 baselines (BENCH_PR3.json, this machine): the numbers the probe
   instrumentation must not regress.  The acceptance bar for PR 4 is
   disabled-probe engine throughput within 5% of these. *)
let baseline_pr3_engine_events_per_sec = 2_975_559.
let baseline_pr3_jobs1_schedules_per_sec = 6095.4

(* PR-4 baselines (BENCH_PR4.json, this machine): the observability PR's
   numbers.  PR 5 is a static-analysis PR — its only runtime changes are
   the deterministic-iteration fixes (Dsim.Det on gcs/repl/totem/cts fan
   out paths), none of which sit on the engine or explorer hot loops, so
   the bar is parity with these. *)
let baseline_pr4_engine_events_per_sec = 2_986_596.
let baseline_pr4_obs_disabled_events_per_sec = 2_938_873.
let baseline_pr4_jobs1_schedules_per_sec = 5182.5

(* PR-5 baselines (BENCH_PR5.json, this machine).  Note the engine number
   is itself 0.90x of the PR-4 baseline — ROADMAP item 3's unexplained
   regression, which the explicit deltas below keep visible until it is
   hunted down; parity with PR-5 must not be read as parity with PR-4. *)
let baseline_pr5_engine_events_per_sec = 2_689_172.
let baseline_pr5_jobs1_schedules_per_sec = 5540.9

(* PR-6 baselines (BENCH_PR6.json, this machine).  The engine number is
   the small-scale hot path PR 7 must not regress; the HIER1 rows are
   the superlinear scale-out costs PR 7 exists to kill — bridge rounds
   per wall second fell 130x from 4 to 1024 replicas while rounds per
   simulated second stayed flat, and 32x32 formation alone burned 238 s. *)
let baseline_pr6_engine_events_per_sec = 3_208_399.

(* (replicas, rounds_per_wall_sec, formation_wall_s) from BENCH_PR6's
   HIER1 sweep. *)
let baseline_pr6_hier =
  [
    (4, 7102.7, 0.0);
    (16, 3370.3, 0.002);
    (64, 1256.9, 0.045);
    (256, 330.6, 2.626);
    (1024, 54.5, 238.182);
  ]

(* PR-7 baselines (BENCH_PR7.json, this machine).  The engine number is
   what the PR-8 struct-of-arrays event core must beat (ROADMAP item 3:
   recover >PR-4); the jobs-1 explore number is the marshalled-reset
   harness the diff-based restore replaces.  BENCH_PR7's
   speedup_4_over_1 was 0.88 on a 1-core host — the wave-synchronized
   frontier losing to its own coordination. *)
let baseline_pr7_engine_events_per_sec = 2_714_787.
let baseline_pr7_jobs1_schedules_per_sec = 6847.3

(* PR-8 baselines (BENCH_PR8.json, this machine): the SoA event core and
   diff-based world restore.  The obs-disabled number is what OBS2's
   recorder-off pass should reproduce, and the 0.95x enabled/disabled
   ratio gate is measured against a recorder-off pass from the same
   process, not against this constant — the constant only keeps the
   cross-PR trajectory visible. *)
let baseline_pr8_engine_events_per_sec = 4_498_350.
let baseline_pr8_obs_disabled_events_per_sec = 4_564_674.
let baseline_pr8_jobs1_schedules_per_sec = 11_886.7

let emit_json () =
  let oc = open_out json_path in
  output_string oc "{\n";
  let fields =
    [
      ("pr", "9");
      ("scale", Printf.sprintf "%g" scale);
      ("cores_available", string_of_int (Domain.recommended_domain_count ()));
    ]
    @ List.rev !json_fields
  in
  List.iteri
    (fun i (name, fragment) ->
      Printf.fprintf oc "  %S: %s%s\n" name fragment
        (if i = List.length fields - 1 then "" else ","))
    fields;
  output_string oc "}\n";
  close_out oc;
  Format.fprintf ppf "@.benchmark trajectory written to %s@." json_path

(* ------------------------------------------------------------------ *)

let bench_fig4 () =
  section "E1 / Figure 4: worked example of the CCS algorithm";
  R.fig4 ppf (E.fig4 ())

let bench_token () =
  section "M1: token-passing-time calibration (paper ref [20])";
  R.token ppf (E.token_calibration ~rotations:(scaled 10_000) ())

let latency_json (r : E.latency_run) =
  Printf.sprintf "{\"mean_us\": %.2f, \"p50_us\": %.2f, \"p99_us\": %.2f}"
    (Stats.Summary.mean r.E.summary)
    (Stats.Summary.percentile r.E.summary 50.)
    (Stats.Summary.percentile r.E.summary 99.)

let bench_fig5 () =
  section
    "E2 / Figure 5: end-to-end latency with and without the consistent time \
     service";
  let invocations = scaled 10_000 in
  Format.fprintf ppf "(%d invocations per run)@." invocations;
  let with_cts = E.latency ~invocations ~use_cts:true () in
  let without_cts = E.latency ~invocations ~use_cts:false () in
  R.latency_pair ppf ~with_cts ~without_cts;
  json_add "fig5"
    (Printf.sprintf
       "{\"invocations\": %d, \"with_cts\": %s, \"without_cts\": %s}"
       invocations (latency_json with_cts) (latency_json without_cts))

let bench_fig6_and_counts () =
  section "E3-E6 / Figure 6: skew, drift and CCS message counts";
  let rounds = scaled 10_000 in
  Format.fprintf ppf "(%d clock-related operations per replica)@.@." rounds;
  let run = E.skew ~rounds () in
  R.fig6a ppf run ~rounds:20;
  Format.fprintf ppf "@.";
  R.fig6b ppf run ~rounds:20;
  Format.fprintf ppf "@.";
  R.fig6c ppf run ~rounds:20;
  Format.fprintf ppf "@.";
  R.msg_counts ppf run;
  (* The per-second slope is quoted together with the round rate that
     produced it: the simulated workload issues rounds ~1000x faster
     than the paper's testbed, so only the per-round figure is
     comparable across setups (see Experiments.drift_stats). *)
  let ds = E.drift_stats run in
  json_add "fig6"
    (Printf.sprintf
       "{\"rounds\": %d, \"drift_slope_us_per_s\": %.4f, \
        \"drift_us_per_round\": %.4f, \"rounds_per_sec\": %.1f, \
        \"ccs_sent_total\": %d, \"ccs_suppressed_total\": %d}"
       rounds ds.E.per_second_us ds.E.per_round_us ds.E.rounds_per_sec
       (Array.fold_left ( + ) 0 run.E.ccs_sent)
       (Array.fold_left ( + ) 0 run.E.ccs_suppressed))

let bench_drift () =
  section "A1: drift-compensation ablation (paper section 3.3)";
  let rounds = scaled 2_000 in
  let strategies =
    [
      ("no compensation", `No_compensation);
      ("mean-delay (+50 us)", `Mean_delay 50);
      ("anchored (gain 0.1)", `Anchored (0.1, 50));
    ]
  in
  let runs =
    List.map (fun (name, c) -> (name, E.skew ~rounds ~compensation:c ()))
      strategies
  in
  R.drift_table ppf runs

let bench_rollback () =
  section "A2: clock roll-back on failover (paper section 1)";
  let readings_per_phase = scaled 30 in
  let baseline =
    E.rollback ~readings_per_phase ~style:Repl.Replica.Semi_active
      ~offset_tracking:false
      ~clock_offset_us:(fun i -> -300_000 * (i - 1))
      ()
  in
  let cts =
    E.rollback ~readings_per_phase ~style:Repl.Replica.Semi_active
      ~offset_tracking:true
      ~clock_offset_us:(fun i -> -300_000 * (i - 1))
      ()
  in
  R.rollback_pair ppf ~baseline ~cts

let bench_group_size () =
  section "A4: overhead vs replication degree";
  let invocations = scaled 2_000 in
  let rows =
    List.map
      (fun replicas ->
        ( replicas,
          E.latency ~invocations ~replicas ~use_cts:true (),
          E.latency ~invocations ~replicas ~use_cts:false () ))
      [ 2; 3; 4; 5 ]
  in
  R.group_size_table ppf rows

let bench_recovery () =
  section "A3: new-replica integration (paper section 3.2)";
  R.recovery ppf (E.recovery ~readings:(scaled 40) ())

let bench_delivery_mode () =
  section "A5: agreed vs safe delivery (Totem delivery-guarantee ablation)";
  let invocations = scaled 2_000 in
  let run delivery =
    E.latency ~invocations ~use_cts:true
      ~totem_config:{ Totem.Config.default with delivery }
      ()
  in
  let agreed = run Totem.Config.Agreed in
  let safe = run Totem.Config.Safe in
  Format.fprintf ppf "%-22s %-18s@." "delivery guarantee" "mean latency (us)";
  Format.fprintf ppf "%-22s %-18.1f@." "agreed (paper's)"
    (Stats.Summary.mean agreed.E.summary);
  Format.fprintf ppf "%-22s %-18.1f@." "safe"
    (Stats.Summary.mean safe.E.summary);
  Format.fprintf ppf
    "safe delivery stabilizes every message across the ring first; the      paper's CTS only needs agreed delivery@."

let bench_causal () =
  section "E7: causal group clocks across groups (paper section 5)";
  R.causal ppf (E.causal ())

let bench_mc () =
  section "MC1: schedule exploration throughput (lib/mc)";
  let budget = scaled 500 in
  let cfg = { Mc.Harness.default with Mc.Harness.rounds = 8 } in
  let run name strategy =
    let r = Mc.Explore.explore ~strategy ~budget cfg in
    Format.fprintf ppf
      "%-28s %6d schedules (%d distinct) in %.2f s — %.0f schedules/s@." name
      r.Mc.Explore.schedules r.Mc.Explore.distinct r.Mc.Explore.elapsed_s
      (Mc.Explore.schedules_per_sec r);
    r
  in
  let random = run "random walk" Mc.Strategy.default_random in
  let bounded =
    run "bounded-reorder (depth 1)" (Mc.Strategy.Bounded { depth = 1 })
  in
  (* Which world-reset mechanism the harness settled on for this config
     (PR-8): `Diff is the dirty-set restore; `Marshal means the restore
     verification probe rejected it and the run fell back to the PR-3
     template path — worth knowing when reading the throughput above. *)
  let mode =
    match Mc.Harness.reuse_mode (Mc.Harness.reusable cfg) with
    | `Diff -> "diff"
    | `Marshal -> "marshal"
    | `Fresh -> "fresh"
  in
  Format.fprintf ppf "world reset mechanism: %s@." mode;
  json_add "mc_explore"
    (Printf.sprintf
       "{\"schedules\": %d, \"distinct\": %d, \"schedules_per_sec\": %.1f, \
        \"bounded_schedules_per_sec\": %.1f, \"reuse_mode\": %S}"
       random.Mc.Explore.schedules random.Mc.Explore.distinct
       (Mc.Explore.schedules_per_sec random)
       (Mc.Explore.schedules_per_sec bounded)
       mode)

(* Raw engine throughput: timer events through the unboxed queue, no
   protocol on top.  The denominator every simulation pays.  Runs under
   the engine's GC tuning (as the explorer does) and instruments the GC
   so the zero-allocation claim is a measured number, not an assertion:
   [bytes_per_event] counts minor-heap allocation per scheduled+fired
   event, and [minor_collections] the collections the whole run cost. *)
let bench_engine_events () =
  section "MC2: raw engine event throughput";
  let n = scaled 2_000_000 in
  (* The figure experiments above leave a grown, fragmented major heap;
     compact so the measurement starts from the same heap state as a
     standalone run. *)
  Gc.compact ();
  Dsim.Engine.with_gc_tuning (fun () ->
      (* One timed pass over [n] events.  The wall-clock number is taken
         as the best of five passes: the box this runs on has periodic
         background load that perturbs single runs by 15%+, and the
         fastest pass is the standard estimator for the machine's actual
         capability under such noise (the GC counters are load-invariant
         and come from the same pass). *)
      let batch = 10_000 in
      let one_pass () =
        (* Warm outside the meter: engine construction and the queue's
           first growth to batch size are one-time costs, not per-event
           costs — the meter starts on a steady-state heap, the same
           discipline OBS1 uses.  Scheduling itself stays inside the
           timed region; it is half the per-event work being measured. *)
        let eng = Dsim.Engine.create () in
        for i = 1 to batch do
          Dsim.Engine.schedule eng (Dsim.Time.Span.of_us (i mod 997)) ignore
        done;
        Dsim.Engine.run eng;
        let t0 = Mc.Explore.wall () in
        let s0 = Gc.quick_stat () in
        let w0 = Gc.minor_words () in
        let done_ = ref 0 in
        while !done_ < n do
          let k = min batch (n - !done_) in
          for i = 1 to k do
            Dsim.Engine.schedule eng (Dsim.Time.Span.of_us (i mod 997)) ignore
          done;
          Dsim.Engine.run eng;
          done_ := !done_ + k
        done;
        let dt = Mc.Explore.wall () -. t0 in
        let s1 = Gc.quick_stat () in
        let bytes = (Gc.minor_words () -. w0) *. 8. /. float_of_int n in
        let minors = s1.Gc.minor_collections - s0.Gc.minor_collections in
        (dt, bytes, minors)
      in
      let best (adt, ab, am) (bdt, bb, bm) =
        if bdt < adt then (bdt, bb, bm) else (adt, ab, am)
      in
      let dt, bytes_per_event, minor_collections =
        best (one_pass ())
          (best (one_pass ())
             (best (one_pass ()) (best (one_pass ()) (one_pass ()))))
      in
      let per_sec = float_of_int n /. dt in
      let speedup = per_sec /. baseline_pr2_engine_events_per_sec in
      let vs_pr3 = per_sec /. baseline_pr3_engine_events_per_sec in
      let vs_pr4 = per_sec /. baseline_pr4_engine_events_per_sec in
      let vs_pr5 = per_sec /. baseline_pr5_engine_events_per_sec in
      let vs_pr6 = per_sec /. baseline_pr6_engine_events_per_sec in
      let vs_pr7 = per_sec /. baseline_pr7_engine_events_per_sec in
      let vs_pr8 = per_sec /. baseline_pr8_engine_events_per_sec in
      Format.fprintf ppf
        "%d timer events in %.3f s — %.2e events/s (%.2fx vs PR-2's %.2e, \
         %.2fx vs PR-3's %.2e, %.2fx vs PR-4's %.2e, %.2fx vs PR-5's \
         %.2e, %.2fx vs PR-6's %.2e, %.2fx vs PR-7's %.2e; best of 5 \
         passes)@."
        n dt per_sec speedup baseline_pr2_engine_events_per_sec vs_pr3
        baseline_pr3_engine_events_per_sec vs_pr4
        baseline_pr4_engine_events_per_sec vs_pr5
        baseline_pr5_engine_events_per_sec vs_pr6
        baseline_pr6_engine_events_per_sec vs_pr7
        baseline_pr7_engine_events_per_sec;
      Format.fprintf ppf "vs PR-8's SoA core (%.2e events/s): %.2fx@."
        baseline_pr8_engine_events_per_sec vs_pr8;
      if vs_pr4 < 0.95 then
        Format.fprintf ppf
          "note: still below the PR-4 baseline (PR-5 measured 0.90x; \
           ROADMAP item 3) — the PR-5 delta alone does not show it@.";
      Format.fprintf ppf
        "allocation: %.1f bytes/event on the minor heap, %d minor \
         collection(s)@."
        bytes_per_event minor_collections;
      if per_sec < 0.8 *. baseline_pr2_engine_events_per_sec then
        Format.fprintf ppf
          "PERF WARNING: engine throughput %.2e events/s is more than 20%% \
           below the PR-2 baseline %.2e@."
          per_sec baseline_pr2_engine_events_per_sec;
      json_add "engine"
        (Printf.sprintf
           "{\"events\": %d, \"events_per_sec\": %.0f, \
            \"baseline_pr2_events_per_sec\": %.0f, \"speedup_over_pr2\": \
            %.3f, \"baseline_pr3_events_per_sec\": %.0f, \
            \"speedup_over_pr3\": %.3f, \
            \"baseline_pr4_events_per_sec\": %.0f, \
            \"speedup_over_pr4\": %.3f, \
            \"baseline_pr5_events_per_sec\": %.0f, \
            \"speedup_over_pr5\": %.3f, \
            \"baseline_pr6_events_per_sec\": %.0f, \
            \"speedup_over_pr6\": %.3f, \
            \"baseline_pr7_events_per_sec\": %.0f, \
            \"speedup_over_pr7\": %.3f, \
            \"baseline_pr8_events_per_sec\": %.0f, \
            \"speedup_over_pr8\": %.3f, \"bytes_per_event\": %.2f, \
            \"minor_collections\": %d}"
           n per_sec baseline_pr2_engine_events_per_sec speedup
           baseline_pr3_engine_events_per_sec vs_pr3
           baseline_pr4_engine_events_per_sec vs_pr4
           baseline_pr5_engine_events_per_sec vs_pr5
           baseline_pr6_engine_events_per_sec vs_pr6
           baseline_pr7_engine_events_per_sec vs_pr7
           baseline_pr8_engine_events_per_sec vs_pr8 bytes_per_event
           minor_collections))

(* OBS1: the PR-4 perf guard.  Probes are now compiled into every hot
   path; this section measures what they cost (a) disabled — the default,
   which must stay free: 0.0 bytes/event and throughput within 5% of the
   PR-3 baseline — and (b) with a metrics registry attached.  Both passes
   exclude engine construction and warm the event queue first, so the
   steady-state loop is the only thing under the meter; the numbers are
   reported through the registry's own section mechanism, which is also
   how the per-event-type counters come out.

   The disabled-probe check emits a distinct "PERF WARNING (obs-disabled)"
   marker that CI greps for and turns into a hard failure. *)
let bench_obs () =
  section "OBS1: probe overhead — disabled (must be free) and metrics-on";
  let n = scaled 2_000_000 in
  Gc.compact ();
  Dsim.Engine.with_gc_tuning (fun () ->
      let batch = 10_000 in
      let one_pass sink =
        let eng = Dsim.Engine.create () in
        (match sink with
        | Some s -> Dsim.Engine.set_obs eng s
        | None -> ());
        (* Warm up outside the meter: queue growth to [batch] capacity and
           code paging happen here, not in the measured loop. *)
        for i = 1 to batch do
          Dsim.Engine.schedule eng (Dsim.Time.Span.of_us (i mod 997)) ignore
        done;
        Dsim.Engine.run eng;
        let t0 = Mc.Explore.wall () in
        let w0 = Gc.minor_words () in
        let done_ = ref 0 in
        while !done_ < n do
          let k = min batch (n - !done_) in
          for i = 1 to k do
            Dsim.Engine.schedule eng (Dsim.Time.Span.of_us (i mod 997)) ignore
          done;
          Dsim.Engine.run eng;
          done_ := !done_ + k
        done;
        let dt = Mc.Explore.wall () -. t0 in
        (dt, Gc.minor_words () -. w0)
      in
      let best5 sink =
        let best = ref (one_pass sink) in
        for _ = 1 to 4 do
          let (dt, _) as r = one_pass sink in
          if dt < fst !best then best := r
        done;
        !best
      in
      let dt_off, words_off = best5 None in
      let metrics = Obs.Metrics.create () in
      let sink = Obs.Sink.create () in
      Obs.Sink.attach sink ~metrics;
      let dt_on, words_on = best5 (Some sink) in
      (* Report both passes through the registry the probes feed, so the
         per-event-type accounting exercises the same exporter the CLI
         dumps. *)
      let s_off = Obs.Metrics.section metrics "engine-step/probes-off" in
      Obs.Metrics.section_record s_off ~events:n ~ns:(dt_off *. 1e9)
        ~minor_words:words_off;
      let s_on = Obs.Metrics.section metrics "engine-step/metrics-on" in
      Obs.Metrics.section_record s_on ~events:n ~ns:(dt_on *. 1e9)
        ~minor_words:words_on;
      let per_sec_off = float_of_int n /. dt_off in
      let per_sec_on = float_of_int n /. dt_on in
      let bytes_off = words_off *. 8. /. float_of_int n in
      let bytes_on = words_on *. 8. /. float_of_int n in
      let vs_pr3 = per_sec_off /. baseline_pr3_engine_events_per_sec in
      let vs_pr4 = per_sec_off /. baseline_pr4_obs_disabled_events_per_sec in
      Format.fprintf ppf
        "probes disabled:   %.2e events/s, %.1f bytes/event (%.2fx vs \
         PR-3's %.2e, %.2fx vs PR-4's %.2e; best of 5)@."
        per_sec_off bytes_off vs_pr3 baseline_pr3_engine_events_per_sec
        vs_pr4 baseline_pr4_obs_disabled_events_per_sec;
      Format.fprintf ppf
        "metrics attached:  %.2e events/s, %.1f bytes/event (%.1f%% \
         slower than disabled)@."
        per_sec_on bytes_on
        (100. *. ((dt_on /. dt_off) -. 1.));
      Format.fprintf ppf
        "registry counted %d engine event(s) during the metrics-on runs@."
        (Obs.Metrics.get metrics Obs.Metrics.Engine_events);
      if bytes_off > 0.05 then
        Format.fprintf ppf
          "PERF WARNING (obs-disabled): disabled probes allocate %.2f \
           bytes/event on the engine hot path (must be 0.0)@."
          bytes_off;
      (* The allocation gate above is deterministic at any scale.  The
         throughput gate is 5% at full scale (the acceptance bar) but
         relaxed to 20% on scaled-down runs, whose short passes sit
         inside the box's load noise. *)
      let tolerance = if scale >= 1. then 0.95 else 0.80 in
      if vs_pr3 < tolerance then
        Format.fprintf ppf
          "PERF WARNING (obs-disabled): engine throughput with disabled \
           probes is %.2e events/s, more than %.0f%% below the PR-3 \
           baseline %.2e@."
          per_sec_off
          (100. *. (1. -. tolerance))
          baseline_pr3_engine_events_per_sec;
      json_add "obs_overhead"
        (Printf.sprintf
           "{\"events\": %d, \"disabled_events_per_sec\": %.0f, \
            \"disabled_bytes_per_event\": %.2f, \
            \"disabled_vs_pr3\": %.3f, \"disabled_vs_pr4\": %.3f, \
            \"metrics_events_per_sec\": %.0f, \
            \"metrics_bytes_per_event\": %.2f, \
            \"metrics_overhead_pct\": %.1f}"
           n per_sec_off bytes_off vs_pr3 vs_pr4 per_sec_on bytes_on
           (100. *. ((dt_on /. dt_off) -. 1.))))

(* OBS2: the PR-9 flight-recorder guard.  The recorder is meant to stay
   attached in every run — the black box — so its enabled cost is the
   claim under test: with a recorder attached and [rec_steps] on (one
   record per fired engine event, the worst case; real runs only record
   protocol-level events), throughput must stay within 5% of the
   recorder-off pass from the same process, at 0.0 bytes/event.  The
   workload and measurement discipline are OBS1's exactly; [n] is large
   enough that the ring wraps dozens of times, so the steady-state wrap
   path is what gets measured.  CI greps for the "PERF WARNING
   (recorder)" marker and turns it into a hard failure. *)
let bench_obs_recorder () =
  section "OBS2: flight-recorder overhead — enabled vs off, wrap path";
  let n = scaled 2_000_000 in
  Gc.compact ();
  Dsim.Engine.with_gc_tuning (fun () ->
      let batch = 10_000 in
      let one_pass sink =
        let eng = Dsim.Engine.create () in
        (match sink with
        | Some s -> Dsim.Engine.set_obs eng s
        | None -> ());
        for i = 1 to batch do
          Dsim.Engine.schedule eng (Dsim.Time.Span.of_us (i mod 997)) ignore
        done;
        Dsim.Engine.run eng;
        let t0 = Mc.Explore.wall () in
        let w0 = Gc.minor_words () in
        let done_ = ref 0 in
        while !done_ < n do
          let k = min batch (n - !done_) in
          for i = 1 to k do
            Dsim.Engine.schedule eng (Dsim.Time.Span.of_us (i mod 997)) ignore
          done;
          Dsim.Engine.run eng;
          done_ := !done_ + k
        done;
        let dt = Mc.Explore.wall () -. t0 in
        (dt, Gc.minor_words () -. w0)
      in
      let best5 sink =
        let best = ref (one_pass sink) in
        for _ = 1 to 4 do
          let (dt, _) as r = one_pass sink in
          if dt < fst !best then best := r
        done;
        !best
      in
      let dt_off, _ = best5 None in
      let recorder = Obs.Recorder.create () in
      let sink = Obs.Sink.create () in
      Obs.Sink.set_recorder sink (Some recorder);
      Obs.Sink.set_rec_steps sink true;
      let dt_on, words_on = best5 (Some sink) in
      let per_sec_off = float_of_int n /. dt_off in
      let per_sec_on = float_of_int n /. dt_on in
      let bytes_on = words_on *. 8. /. float_of_int n in
      let ratio = per_sec_on /. per_sec_off in
      let vs_pr8 = per_sec_off /. baseline_pr8_obs_disabled_events_per_sec in
      Format.fprintf ppf
        "recorder off:      %.2e events/s (%.2fx vs PR-8's %.2e; best of \
         5)@."
        per_sec_off vs_pr8 baseline_pr8_obs_disabled_events_per_sec;
      Format.fprintf ppf
        "recorder enabled:  %.2e events/s, %.1f bytes/event — %.2fx of \
         recorder-off@."
        per_sec_on bytes_on ratio;
      Format.fprintf ppf
        "ring after the runs: %d record(s) held of %d emitted (%d \
         overwritten by wrap)@."
        (Obs.Recorder.length recorder)
        (Obs.Recorder.total recorder)
        (Obs.Recorder.dropped recorder);
      if bytes_on > 0.05 then
        Format.fprintf ppf
          "PERF WARNING (recorder): enabled recorder allocates %.2f \
           bytes/event on the engine hot path (must be 0.0)@."
          bytes_on;
      (* 5% at full scale (the acceptance bar); scaled-down passes are
         short enough to sit inside the box's load noise, so the gate
         relaxes to 10% there — same policy as OBS1's throughput gate. *)
      let tolerance = if scale >= 1. then 0.95 else 0.90 in
      if ratio < tolerance then
        Format.fprintf ppf
          "PERF WARNING (recorder): enabled-recorder throughput is %.2fx \
           of recorder-off (must be >= %.2f)@."
          ratio tolerance;
      json_add "recorder_overhead"
        (Printf.sprintf
           "{\"events\": %d, \"off_events_per_sec\": %.0f, \
            \"off_vs_pr8_disabled\": %.3f, \"enabled_events_per_sec\": \
            %.0f, \"enabled_bytes_per_event\": %.2f, \
            \"enabled_over_off\": %.3f, \"records_emitted\": %d, \
            \"records_held\": %d}"
           n per_sec_off vs_pr8 per_sec_on bytes_on ratio
           (Obs.Recorder.total recorder)
           (Obs.Recorder.length recorder)))

(* Multicore exploration scaling: the same random-walk exploration
   ([ctsim explore --strategy random]) at 1/2/4/8 worker domains.
   [baseline_pr1_schedules_per_sec] is the PR-1 (pre-optimization,
   serial-only) number measured on this machine for the identical
   workload, so the single-domain row doubles as the hot-path speedup
   measurement. *)
let baseline_pr1_schedules_per_sec = 3441.3

let bench_mc_scaling () =
  section "MC3: multicore schedule exploration scaling (Mc.Pool)";
  let budget = scaled 2_000 in
  let cfg = { Mc.Harness.default with Mc.Harness.rounds = 12 } in
  Format.fprintf ppf
    "(%d schedules per run, 12 rounds, random walk; available cores: %d; \
     each row best of 5 runs)@.@."
    budget
    (Domain.recommended_domain_count ());
  Format.fprintf ppf "%-8s %-12s %-10s %-10s %s@." "jobs" "schedules/s"
    "wall (s)" "cpu (s)" "speedup vs 1 domain";
  (* discarded warmup: page in the code and let the first run's
     one-time promotions happen outside the measured rows *)
  ignore (Mc.Pool.explore ~budget:(scaled 200) ~jobs:1 cfg);
  (* Each row is the best of five runs: background load on this box
     perturbs single runs by 15%+, and the fastest run estimates what
     the machine can actually sustain.  The exploration result itself is
     deterministic — identical across the five runs — so only the
     timing varies. *)
  let row jobs =
    let best = ref None in
    for _ = 1 to 5 do
      (* same heap state for every run (and as a standalone run) *)
      Gc.compact ();
      let r = Mc.Pool.explore ~budget ~jobs cfg in
      match !best with
      | Some (b : Mc.Explore.report) when b.elapsed_s <= r.elapsed_s -> ()
      | _ -> best := Some r
    done;
    let r = Option.get !best in
    (jobs, Mc.Explore.schedules_per_sec r, r.Mc.Explore.elapsed_s,
     r.Mc.Explore.cpu_s)
  in
  let rows = List.map row [ 1; 2; 4; 8 ] in
  let base = match rows with (_, s, _, _) :: _ -> s | [] -> nan in
  List.iter
    (fun (jobs, sps, wall, cpu) ->
      Format.fprintf ppf "%-8d %-12.1f %-10.2f %-10.2f %.2fx@." jobs sps wall
        cpu (sps /. base))
    rows;
  Format.fprintf ppf
    "single-domain vs PR-1 baseline (%.1f schedules/s): %.2fx@."
    baseline_pr1_schedules_per_sec
    (base /. baseline_pr1_schedules_per_sec);
  Format.fprintf ppf
    "single-domain vs PR-2 baseline (%.1f schedules/s): %.2fx@."
    baseline_pr2_jobs1_schedules_per_sec
    (base /. baseline_pr2_jobs1_schedules_per_sec);
  Format.fprintf ppf
    "single-domain vs PR-3 baseline (%.1f schedules/s): %.2fx@."
    baseline_pr3_jobs1_schedules_per_sec
    (base /. baseline_pr3_jobs1_schedules_per_sec);
  Format.fprintf ppf
    "single-domain vs PR-4 baseline (%.1f schedules/s): %.2fx@."
    baseline_pr4_jobs1_schedules_per_sec
    (base /. baseline_pr4_jobs1_schedules_per_sec);
  Format.fprintf ppf
    "single-domain vs PR-5 baseline (%.1f schedules/s): %.2fx@."
    baseline_pr5_jobs1_schedules_per_sec
    (base /. baseline_pr5_jobs1_schedules_per_sec);
  Format.fprintf ppf
    "single-domain vs PR-7 baseline (%.1f schedules/s): %.2fx@."
    baseline_pr7_jobs1_schedules_per_sec
    (base /. baseline_pr7_jobs1_schedules_per_sec);
  Format.fprintf ppf
    "single-domain vs PR-8 baseline (%.1f schedules/s): %.2fx@."
    baseline_pr8_jobs1_schedules_per_sec
    (base /. baseline_pr8_jobs1_schedules_per_sec);
  let speedup4 =
    match List.find_opt (fun (j, _, _, _) -> j = 4) rows with
    | Some (_, s, _, _) -> s /. base
    | None -> nan
  in
  let cores = Domain.recommended_domain_count () in
  (* Scaling guard (PR-8): on a host that actually has the cores, four
     domains finishing behind one means the work-stealing frontier is
     losing to its own coordination — the PR-7 regression this PR
     exists to fix.  On smaller hosts the 4-domain row measures
     oversubscription, not scaling, so the guard stays informational. *)
  if cores >= 4 && speedup4 < 1.0 then
    Format.fprintf ppf
      "PERF WARNING (explore-scaling): speedup_4_over_1 is %.2fx (< 1.0) \
       with %d cores available@."
      speedup4 cores
  else if speedup4 < 1.0 then
    Format.fprintf ppf
      "note: speedup_4_over_1 is %.2fx on a %d-core host — \
       oversubscribed, not a scaling signal@."
      speedup4 cores;
  json_add "explore_scaling"
    (Printf.sprintf
       "{\"strategy\": \"random\", \"rounds\": 12, \"budget\": %d, \
        \"baseline_pr1_schedules_per_sec\": %.1f, \
        \"baseline_pr2_schedules_per_sec\": %.1f, \
        \"baseline_pr3_schedules_per_sec\": %.1f, \
        \"baseline_pr4_schedules_per_sec\": %.1f, \
        \"baseline_pr5_schedules_per_sec\": %.1f, \
        \"baseline_pr7_schedules_per_sec\": %.1f, \
        \"baseline_pr8_schedules_per_sec\": %.1f, \"jobs\": [%s], \
        \"speedup_1_over_baseline\": %.2f, \"speedup_1_over_pr2\": %.2f, \
        \"speedup_1_over_pr3\": %.2f, \"speedup_1_over_pr4\": %.2f, \
        \"speedup_1_over_pr5\": %.2f, \"speedup_1_over_pr7\": %.2f, \
        \"speedup_1_over_pr8\": %.2f, \"speedup_4_over_1\": %.2f, \
        \"cores_available\": %d}"
       budget baseline_pr1_schedules_per_sec
       baseline_pr2_jobs1_schedules_per_sec
       baseline_pr3_jobs1_schedules_per_sec
       baseline_pr4_jobs1_schedules_per_sec
       baseline_pr5_jobs1_schedules_per_sec
       baseline_pr7_jobs1_schedules_per_sec
       baseline_pr8_jobs1_schedules_per_sec
       (String.concat ", "
          (List.map
             (fun (jobs, sps, wall, cpu) ->
               Printf.sprintf
                 "{\"jobs\": %d, \"schedules_per_sec\": %.1f, \"wall_s\": \
                  %.3f, \"cpu_s\": %.3f}"
                 jobs sps wall cpu)
             rows))
       (base /. baseline_pr1_schedules_per_sec)
       (base /. baseline_pr2_jobs1_schedules_per_sec)
       (base /. baseline_pr3_jobs1_schedules_per_sec)
       (base /. baseline_pr4_jobs1_schedules_per_sec)
       (base /. baseline_pr5_jobs1_schedules_per_sec)
       (base /. baseline_pr7_jobs1_schedules_per_sec)
       (base /. baseline_pr8_jobs1_schedules_per_sec)
       speedup4 cores)

(* ------------------------------------------------------------------ *)
(* LINT1: full-tree ctslint pass (PR 5).  The analyzer runs on every CI
   build, so its own cost is part of the build budget; this section
   times the exact work `dune build @lint` does — parse + walk every
   .ml under lib/ bin/ bench/ test/ examples/ — and records files/s.
   Runs from the source tree (located by walking up to dune-project);
   skipped when the sources are not around the executable, e.g. in an
   installed-binary context. *)

(* HIER1: the hierarchical multi-ring service scaled across cluster
   sizes.  Each point builds a shards x shard_size hierarchy with every
   shard's clocks skewed 1 ms per shard index, forms the rings, runs the
   readers and the bridge for a fixed window of simulated time, and
   reports the distinct bridge rounds agreed, their rate in wall and
   simulated seconds, and the converged cross-shard skew.  A point whose
   skew ends outside the bound, or that clamps a global-clock
   regression, emits a "PERF WARNING (hier)" marker that CI turns into a
   hard failure. *)
(* Measurements SCALE1 reuses: (replicas, rounds_per_wall_sec,
   formation_wall_s) per HIER1 point. *)
let hier_measured : (int * float * float) list ref = ref []

let bench_hier () =
  section "HIER1: hierarchical multi-ring scaling (lib/hier)";
  let module CH = Scenario.Cluster_hier in
  let module Span = Dsim.Time.Span in
  let all_sizes = [ (2, 2); (4, 4); (8, 8); (16, 16); (32, 32) ] in
  let sizes =
    if scale >= 1. then all_sizes
    else if scale >= 0.1 then [ (2, 2); (4, 4); (8, 8); (16, 16) ]
    else [ (2, 2); (4, 4); (8, 8) ]
  in
  List.iter
    (fun (s, k) ->
      if not (List.mem (s, k) sizes) then
        Format.fprintf ppf
          "(skipping %d-replica point at scale %g — run at scale >= 1 for \
           the full sweep)@."
          (s * k) scale)
    all_sizes;
  let window = Span.of_ms 100 in
  let bound_us = 5_000 in
  Format.fprintf ppf
    "(steady state = best of 5 consecutive %d ms simulated windows — \
     background load on this box perturbs single windows by 50%%+ and \
     every window agrees the same rounds, so the fastest window is the \
     sustainable rate; 5 ms skew bound)@.@."
    (Span.to_us window / 1000);
  Format.fprintf ppf "%-10s %-8s %-10s %-12s %-12s %-12s %-10s %-8s %s@."
    "replicas" "shards" "rounds" "rounds/s(w)" "rounds/s(sim)" "events/s(w)"
    "skew(us)" "q-hwm" "form(s)";
  let rows =
    List.map
      (fun (shards, shard_size) ->
        let topo = Hier.Topology.create ~shards ~shard_size in
        let clock_config i =
          {
            Clock.Hwclock.default_config with
            offset =
              Span.of_ms
                (-1 * Hier.Topology.shard_of topo (Netsim.Node_id.of_int i));
          }
        in
        let t = CH.create ~seed:11L ~clock_config ~shards ~shard_size () in
        let w0 = Mc.Explore.wall () in
        CH.start_all t;
        let form_s = Mc.Explore.wall () -. w0 in
        CH.start_readers t;
        let bridge_round t =
          Array.fold_left
            (fun acc (r : CH.replica) ->
              max acc (Hier.Global_clock.round (Hier.Gateway.global r.gateway)))
            0 t.CH.replicas
        in
        (* best of 5 consecutive windows; the sim keeps advancing, so
           each window measures the same periodic steady state *)
        let best_s = ref infinity and rounds = ref 0 and events = ref 0 in
        for _ = 1 to 5 do
          let rb = bridge_round t in
          let eb = Dsim.Engine.steps t.CH.eng in
          let w1 = Mc.Explore.wall () in
          CH.run_for t window;
          let dt = Mc.Explore.wall () -. w1 in
          if dt < !best_s then begin
            best_s := dt;
            rounds := bridge_round t - rb;
            events := Dsim.Engine.steps t.CH.eng - eb
          end
        done;
        let steady_s = !best_s and rounds = !rounds in
        let skew_us = Span.to_us (CH.cross_shard_skew t) in
        let regr = CH.regressions t in
        let hwm = CH.queue_hwm t in
        let per_wall = float_of_int rounds /. steady_s in
        let events_per_wall = float_of_int !events /. steady_s in
        let per_sim =
          float_of_int rounds
          /. (float_of_int (Span.to_us window) /. 1e6)
        in
        Format.fprintf ppf
          "%-10d %-8d %-10d %-12.1f %-12.1f %-12.3e %-10d %-8d %.2f@."
          (shards * shard_size) shards rounds per_wall per_sim
          events_per_wall skew_us hwm form_s;
        if skew_us >= bound_us then
          Format.fprintf ppf
            "PERF WARNING (hier): %d-replica cross-shard skew %d us ended \
             outside the %d us bound@."
            (shards * shard_size) skew_us bound_us;
        if regr > 0 then
          Format.fprintf ppf
            "PERF WARNING (hier): %d-replica run clamped %d global-clock \
             regression(s)@."
            (shards * shard_size) regr;
        hier_measured :=
          (shards * shard_size, per_wall, form_s) :: !hier_measured;
        Printf.sprintf
          "{\"replicas\": %d, \"shards\": %d, \"shard_size\": %d, \
           \"bridge_rounds\": %d, \"rounds_per_wall_sec\": %.1f, \
           \"rounds_per_sim_sec\": %.1f, \"events_per_wall_sec\": %.0f, \
           \"skew_us\": %d, \"regressions\": %d, \"queue_hwm\": %d, \
           \"formation_wall_s\": %.3f}"
          (shards * shard_size) shards shard_size rounds per_wall per_sim
          events_per_wall skew_us regr hwm form_s)
      sizes
  in
  json_add "hier"
    (Printf.sprintf "{\"window_ms\": %d, \"skew_bound_us\": %d, \"sizes\": [%s]}"
       (Span.to_us window / 1000)
       bound_us (String.concat ", " rows))

(* SCALE1: PR 7's superlinear-cost guardrails.  Three parts:

   1. Deltas: every HIER1 point measured this run, against the PR-6
      baselines — the before/after of the scale-out work.
   2. Budget: a hard "PERF WARNING (scale)" marker (CI greps for it and
      fails) when 256-replica formation creeps over budget.  PR 6 spent
      2.63 s here and 238 s at 1024; post-PR-7 formation is event-driven
      and measures well under 100 ms at 256, so 1 s of headroom still
      catches any return of the superlinear term while tolerating a
      loaded CI box.
   3. Attribution: re-run the largest HIER1 point with an
      [Obs.Attrib] recorder attached and report where the wall
      nanoseconds actually go, per (subsystem, probe) self time — the
      measurement that located the PR-7 hot spots (GCS delivery
      routing, the totem join storm, watchdog chase, bridge offer
      fan-out) in the first place. *)
let bench_scale () =
  section "SCALE1: superlinear-cost guardrails (PR 7)";
  let module CH = Scenario.Cluster_hier in
  let module Span = Dsim.Time.Span in
  let measured = List.rev !hier_measured in
  (* 1. deltas vs PR-6 *)
  Format.fprintf ppf "%-10s %-14s %-14s %-9s %-12s %-12s %s@." "replicas"
    "PR6 r/s(w)" "now r/s(w)" "speedup" "PR6 form(s)" "now form(s)"
    "speedup";
  let deltas =
    List.filter_map
      (fun (replicas, pr6_rw, pr6_form) ->
        match List.find_opt (fun (r, _, _) -> r = replicas) measured with
        | None -> None
        | Some (_, rw, form) ->
            let rw_x = rw /. pr6_rw in
            let form_x = if form > 0. then pr6_form /. form else nan in
            Format.fprintf ppf
              "%-10d %-14.1f %-14.1f %-9.2f %-12.3f %-12.3f %.1f@." replicas
              pr6_rw rw rw_x pr6_form form form_x;
            Some
              (Printf.sprintf
                 "{\"replicas\": %d, \"pr6_rounds_per_wall_sec\": %.1f, \
                  \"rounds_per_wall_sec\": %.1f, \"steady_speedup\": %.2f, \
                  \"pr6_formation_wall_s\": %.3f, \"formation_wall_s\": \
                  %.3f}"
                 replicas pr6_rw rw rw_x pr6_form form))
      baseline_pr6_hier
  in
  (* 2. the 256-replica formation budget CI greps for *)
  let form_budget_s = 1.0 in
  let budget_json =
    match List.find_opt (fun (r, _, _) -> r = 256) measured with
    | None ->
        Format.fprintf ppf
          "@.(256-replica point not measured at scale %g — formation \
           budget not checked; run at scale >= 0.1)@."
          scale;
        Printf.sprintf
          "\"formation_budget_s\": %.1f, \"formation_wall_s_256\": null"
          form_budget_s
    | Some (_, _, form) ->
        if form > form_budget_s then
          Format.fprintf ppf
            "@.PERF WARNING (scale): 256-replica formation took %.2f s, \
             over the %.1f s budget (PR-6 burned 2.63 s here; the \
             superlinear term is back)@."
            form form_budget_s
        else
          Format.fprintf ppf
            "@.256-replica formation %.3f s — within the %.1f s budget \
             (PR-6: 2.63 s)@."
            form form_budget_s;
        Printf.sprintf
          "\"formation_budget_s\": %.1f, \"formation_wall_s_256\": %.3f"
          form_budget_s form
  in
  (* 3. wall-time attribution of the largest point measured *)
  let shards, shard_size =
    if scale >= 1. then (32, 32) else if scale >= 0.1 then (16, 16) else (8, 8)
  in
  let topo = Hier.Topology.create ~shards ~shard_size in
  let clock_config i =
    {
      Clock.Hwclock.default_config with
      offset =
        Span.of_ms (-1 * Hier.Topology.shard_of topo (Netsim.Node_id.of_int i));
    }
  in
  let t = CH.create ~seed:11L ~clock_config ~shards ~shard_size () in
  let recorder = Obs.Attrib.create () in
  Obs.Sink.set_attrib (Dsim.Engine.obs t.CH.eng) (Some recorder);
  let w0 = Mc.Explore.wall () in
  CH.start_all t;
  CH.start_readers t;
  CH.run_for t (Span.of_ms 100);
  let wall_s = Mc.Explore.wall () -. w0 in
  Obs.Sink.set_attrib (Dsim.Engine.obs t.CH.eng) None;
  let attributed_s = Obs.Attrib.total_ns recorder /. 1e9 in
  Format.fprintf ppf
    "@.attribution: %d replicas, formation + 100 ms steady, %.2f s wall, \
     %.2f s attributed (%.0f%%); self time per (subsystem, probe):@.@."
    (shards * shard_size) wall_s attributed_s
    (100. *. attributed_s /. wall_s);
  Format.fprintf ppf "%a@." Obs.Attrib.pp recorder;
  (* "scale_deltas", not "scale": the top-level emit_json header already
     owns the "scale" key (the CTS_BENCH_SCALE factor), and PR-7 shipped
     this section under the same name — a duplicate key that made the
     trajectory file ambiguous to strict JSON readers (python's
     json.load silently kept whichever came last). *)
  json_add "scale_deltas"
    (Printf.sprintf
       "{\"deltas\": [%s], %s, \"attribution_replicas\": %d, \
        \"attribution_wall_s\": %.3f, \"attribution\": %s}"
       (String.concat ", " deltas)
       budget_json (shards * shard_size) wall_s
       (Obs.Attrib.to_json recorder))

let bench_lint () =
  section "LINT1: ctslint full-tree static analysis";
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else find_root parent
  in
  match find_root (Sys.getcwd ()) with
  | None ->
      Format.fprintf ppf "source tree not found from %s; section skipped@."
        (Sys.getcwd ())
  | Some root ->
      let dirs =
        List.filter Sys.file_exists
          (List.map
             (Filename.concat root)
             [ "lib"; "bin"; "bench"; "test"; "examples" ])
      in
      (* warm pass: page in the analyzer and the sources *)
      ignore (Lint.Driver.lint_paths dirs : Lint.Driver.report);
      let best = ref infinity in
      let last = ref (Lint.Driver.lint_paths dirs) in
      for _ = 1 to 4 do
        let t0 = Mc.Explore.wall () in
        last := Lint.Driver.lint_paths dirs;
        let dt = Mc.Explore.wall () -. t0 in
        if dt < !best then best := dt
      done;
      let r = !last in
      let files_per_sec = float_of_int r.Lint.Driver.files /. !best in
      Format.fprintf ppf
        "%d file(s), %d finding(s), %d suppression(s) in %.1f ms — %.0f \
         files/s (best of 4)@."
        r.Lint.Driver.files
        (List.length r.Lint.Driver.findings)
        (List.length r.Lint.Driver.suppressions)
        (!best *. 1e3) files_per_sec;
      json_add "lint"
        (Printf.sprintf
           "{\"files\": %d, \"findings\": %d, \"suppressions\": %d, \
            \"wall_ms\": %.1f, \"files_per_sec\": %.0f}"
           r.Lint.Driver.files
           (List.length r.Lint.Driver.findings)
           (List.length r.Lint.Driver.suppressions)
           (!best *. 1e3) files_per_sec)

(* LINT2: the typed pass (PR 10) — load every .cmt the bin-annot build
   produced, extract per-function facts, and run the three typed
   analyses (hot-path certification, domain-safety reachability, runtime
   boundary).  Timed separately from LINT1 because the cost profile is
   different: unmarshalling typedtrees dominates, not parsing. *)
let bench_lint_typed () =
  section "LINT2: ctslint typed pass (.cmt certification)";
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else find_root parent
  in
  match
    Option.bind (find_root (Sys.getcwd ())) Lint.Cmt_loader.find_build_dir
  with
  | None ->
      Format.fprintf ppf
        "bin-annot build not found from %s; section skipped@." (Sys.getcwd ())
  | Some build_dir ->
      let run () =
        let units, _errors = Lint.Cmt_loader.load_build_dir build_dir in
        let units =
          Lint.Cmt_loader.under_paths
            [ "lib"; "bin"; "bench"; "test"; "examples" ]
            units
        in
        Lint.Typed_check.analyze (List.map Lint.Typed_facts.walk_unit units)
      in
      ignore (run () : Lint.Typed_check.result) (* warm: page in the cmts *);
      let best = ref infinity in
      let last = ref (run ()) in
      for _ = 1 to 4 do
        let t0 = Mc.Explore.wall () in
        last := run ();
        let dt = Mc.Explore.wall () -. t0 in
        if dt < !best then best := dt
      done;
      let r = !last in
      let roots = List.length r.Lint.Typed_check.r_roots in
      let certified_roots =
        List.length (List.filter snd r.Lint.Typed_check.r_roots)
      in
      let units_per_sec =
        float_of_int r.Lint.Typed_check.r_units /. !best
      in
      Format.fprintf ppf
        "%d unit(s), %d function(s), %d/%d root(s) certified, %d certified \
         total, %d finding(s) in %.1f ms — %.0f units/s (best of 4)@."
        r.Lint.Typed_check.r_units r.Lint.Typed_check.r_fns certified_roots
        roots
        (List.length r.Lint.Typed_check.r_certified)
        (List.length r.Lint.Typed_check.r_findings)
        (!best *. 1e3) units_per_sec;
      json_add "lint_typed"
        (Printf.sprintf
           "{\"units\": %d, \"functions\": %d, \"hot_roots\": %d, \
            \"hot_roots_certified\": %d, \"certified\": %d, \"findings\": \
            %d, \"wall_ms\": %.1f, \"units_per_sec\": %.0f}"
           r.Lint.Typed_check.r_units r.Lint.Typed_check.r_fns roots
           certified_roots
           (List.length r.Lint.Typed_check.r_certified)
           (List.length r.Lint.Typed_check.r_findings)
           (!best *. 1e3) units_per_sec);
      (* deterministic invariant, not a timing: a finding or an
         uncertified root means the hot path lost its zero-alloc
         certificate, and CI's grep tier fails the job on this line *)
      if r.Lint.Typed_check.r_findings <> [] || certified_roots < roots then
        Format.fprintf ppf
          "PERF WARNING (lint-typed): %d finding(s), %d/%d hot root(s) \
           certified — the zero-alloc certificate does not hold@."
          (List.length r.Lint.Typed_check.r_findings)
          certified_roots roots

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrate                          *)

let micro_tests () =
  let open Bechamel in
  let test_event_queue =
    Test.make ~name:"event_queue push+pop x1000"
      (Staged.stage (fun () ->
           let q = Dsim.Event_queue.create () in
           for i = 0 to 999 do
             Dsim.Event_queue.push q (Dsim.Time.of_us (997 * i mod 5000)) () i
           done;
           while not (Dsim.Event_queue.is_empty q) do
             ignore (Dsim.Event_queue.pop q)
           done))
  in
  let rng = Dsim.Rng.create 1L in
  let test_rng =
    Test.make ~name:"rng int_range x1000"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Dsim.Rng.int_range rng 0 1_000_000 : int)
           done))
  in
  let test_engine =
    Test.make ~name:"engine 1000 timer events"
      (Staged.stage (fun () ->
           let eng = Dsim.Engine.create () in
           for i = 1 to 1000 do
             Dsim.Engine.schedule eng (Dsim.Time.Span.of_us i) ignore
           done;
           Dsim.Engine.run eng))
  in
  let test_ccs_round =
    Test.make ~name:"full CCS round (3 replicas, sim)"
      (Staged.stage
         (let counter = ref 0 in
          fun () ->
            incr counter;
            let rounds =
              E.skew ~seed:(Int64.of_int !counter) ~rounds:5 ()
            in
            ignore rounds))
  in
  let test_token_rotation =
    Test.make ~name:"token rotation x100 (4-node ring, sim)"
      (Staged.stage
         (let counter = ref 0 in
          fun () ->
            incr counter;
            ignore
              (E.token_calibration ~seed:(Int64.of_int !counter)
                 ~rotations:100 ()
                : E.token_run)))
  in
  [
    test_event_queue; test_rng; test_engine; test_ccs_round;
    test_token_rotation;
  ]

let run_micro () =
  section "Micro-benchmarks (Bechamel, wall-clock per call)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let tests = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock_results =
    Hashtbl.find merged (Measure.label Toolkit.Instance.monotonic_clock)
  in
  Format.fprintf ppf "%-45s %s@." "benchmark" "time per call";
  let rows = Dsim.Det.sorted_bindings ~compare:String.compare clock_results in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ x ] -> x
        | Some _ | None -> nan
      in
      let pretty =
        if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      Format.fprintf ppf "%-45s %s@." name pretty)
    rows

let () =
  Format.fprintf ppf
    "Consistent Time Service reproduction benchmarks (scale=%.3g)@." scale;
  bench_fig4 ();
  bench_token ();
  bench_fig5 ();
  bench_fig6_and_counts ();
  bench_drift ();
  bench_rollback ();
  bench_group_size ();
  bench_recovery ();
  bench_causal ();
  bench_delivery_mode ();
  bench_mc ();
  bench_engine_events ();
  bench_obs ();
  bench_obs_recorder ();
  bench_mc_scaling ();
  bench_hier ();
  bench_scale ();
  bench_lint ();
  bench_lint_typed ();
  run_micro ();
  emit_json ();
  Format.fprintf ppf "@.done.@."
