(* ctsim — command-line driver for the consistent-time-service simulator.

   Each subcommand runs one of the paper's experiments with adjustable
   parameters and prints the same series the paper reports.  See DESIGN.md
   for the experiment index. *)

module E = Scenario.Experiments
module R = Scenario.Report

let ppf = Format.std_formatter

open Cmdliner

let seed =
  let doc = "Root seed of the deterministic simulation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let seed64 s = Int64.of_int s

let replicas =
  let doc = "Number of server replicas." in
  Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"N" ~doc)

(* Observability flags shared by run / hier / explore, so the three
   subcommands accept the same set (documented per command). *)

let metrics_file =
  let doc = "Write the metrics-registry snapshot as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let attrib_flag =
  let doc =
    "Collect wall-time attribution (per-subsystem probe self time) and \
     print the table at exit."
  in
  Arg.(value & flag & info [ "attrib" ] ~doc)

let dump_on_exit =
  let doc =
    "Flush the flight-recorder window at exit to $(docv).flight.txt \
     (postmortem dump, read with $(b,ctsim postmortem)) and \
     $(docv).flight.json (Chrome trace, check with $(b,ctsim \
     trace-check)).  Without this flag the window is flushed only when \
     the health monitor raised an incident."
  in
  Arg.(
    value & opt (some string) None & info [ "dump-on-exit" ] ~docv:"PREFIX" ~doc)

let write_metrics_opt metrics = function
  | Some f ->
      Out_channel.with_open_text f (fun oc ->
          output_string oc (Obs.Metrics.to_json metrics);
          output_char oc '\n');
      Format.fprintf ppf "wrote %s@." f
  | None -> ()

let print_attrib_opt = function
  | Some a -> Format.fprintf ppf "@.wall-time attribution:@.%a@." Obs.Attrib.pp a
  | None -> ()

(* The always-on black box: every run of these subcommands carries a
   flight recorder and health monitor (the OBS2-benched cost), and the
   window hits disk when the operator asked for it or when the monitor
   saw something wrong. *)
let flush_flight ~prefix recorder health =
  let incidents = Obs.Health.incidents health in
  (match incidents with
  | [] -> Format.fprintf ppf "health: no incidents@."
  | is ->
      Format.fprintf ppf "health: %d incident kind(s):@." (List.length is);
      List.iter
        (fun i -> Format.fprintf ppf "  %a@." Obs.Health.pp_incident i)
        is);
  match (prefix, incidents) with
  | None, [] -> ()
  | _ ->
      let prefix = Option.value prefix ~default:"incident" in
      let txt = prefix ^ ".flight.txt" and json = prefix ^ ".flight.json" in
      Obs.Postmortem.dump_file recorder incidents txt;
      Obs.Trace.write_chrome_file (Obs.Recorder.to_trace recorder) json;
      Format.fprintf ppf
        "wrote %s and %s: flight window, %d record(s) held of %d emitted \
         (diagnose with `ctsim postmortem %s`)@."
        txt json
        (Obs.Recorder.length recorder)
        (Obs.Recorder.total recorder)
        txt

(* ------------------------------------------------------------------ *)

let fig4_cmd =
  let run () = R.fig4 ppf (E.fig4 ()) in
  Cmd.v
    (Cmd.info "fig4"
       ~doc:"Re-enact the worked example of the paper's Figure 4 (section 3.4)")
    Term.(const run $ const ())

let fig5_cmd =
  let invocations =
    let doc = "Remote method invocations per run." in
    Arg.(value & opt int 10_000 & info [ "invocations"; "n" ] ~docv:"N" ~doc)
  in
  let run seed replicas invocations =
    let with_cts =
      E.latency ~seed:(seed64 seed) ~invocations ~replicas ~use_cts:true ()
    in
    let without_cts =
      E.latency ~seed:(seed64 seed) ~invocations ~replicas ~use_cts:false ()
    in
    R.latency_pair ppf ~with_cts ~without_cts
  in
  Cmd.v
    (Cmd.info "fig5"
       ~doc:
         "Probability density of the end-to-end latency with and without \
          the consistent time service (Figure 5)")
    Term.(const run $ seed $ replicas $ invocations)

let rounds_arg default =
  let doc = "Clock-related operations per replica." in
  Arg.(value & opt int default & info [ "rounds" ] ~docv:"N" ~doc)

let show_arg =
  let doc = "Rounds to print in the per-round tables." in
  Arg.(value & opt int 20 & info [ "show" ] ~docv:"N" ~doc)

let fig6_cmd =
  let run seed replicas rounds show =
    let r = E.skew ~seed:(seed64 seed) ~rounds ~replicas () in
    R.fig6a ppf r ~rounds:show;
    Format.fprintf ppf "@.";
    R.fig6b ppf r ~rounds:show;
    Format.fprintf ppf "@.";
    R.fig6c ppf r ~rounds:show
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:
         "Skew and drift of the group clock: intervals, offset evolution, \
          normalized clocks (Figure 6)")
    Term.(const run $ seed $ replicas $ rounds_arg 10_000 $ show_arg)

let msgcounts_cmd =
  let run seed replicas rounds =
    R.msg_counts ppf (E.skew ~seed:(seed64 seed) ~rounds ~replicas ())
  in
  Cmd.v
    (Cmd.info "msgcounts"
       ~doc:
         "CCS messages sent per node under duplicate suppression (section \
          4.3)")
    Term.(const run $ seed $ replicas $ rounds_arg 10_000)

let drift_cmd =
  let gain =
    let doc = "Gain of the anchored compensation strategy." in
    Arg.(value & opt float 0.1 & info [ "gain" ] ~docv:"G" ~doc)
  in
  let mean_delay =
    let doc = "Mean-delay compensation in microseconds." in
    Arg.(value & opt int 150 & info [ "mean-delay" ] ~docv:"US" ~doc)
  in
  let run seed rounds gain mean_delay =
    let s c = E.skew ~seed:(seed64 seed) ~rounds ~compensation:c () in
    R.drift_table ppf
      [
        ("no compensation", s `No_compensation);
        ( Printf.sprintf "mean-delay (+%d us)" mean_delay,
          s (`Mean_delay mean_delay) );
        ( Printf.sprintf "anchored (gain %g)" gain,
          s (`Anchored (gain, 50)) );
      ]
  in
  Cmd.v
    (Cmd.info "drift"
       ~doc:"Drift-compensation strategies ablation (section 3.3)")
    Term.(const run $ seed $ rounds_arg 2_000 $ gain $ mean_delay)

let rollback_cmd =
  let skew_ms =
    let doc = "Physical-clock skew per backup in milliseconds (behind)." in
    Arg.(value & opt int 300 & info [ "skew-ms" ] ~docv:"MS" ~doc)
  in
  let run seed replicas skew_ms =
    let offs i = -1000 * skew_ms * (i - 1) in
    let go offset_tracking =
      E.rollback ~seed:(seed64 seed) ~replicas
        ~style:Repl.Replica.Semi_active ~offset_tracking
        ~clock_offset_us:offs ()
    in
    R.rollback_pair ppf ~baseline:(go false) ~cts:(go true)
  in
  Cmd.v
    (Cmd.info "rollback"
       ~doc:
         "Clock roll-back on primary failover: prior-work baseline vs the \
          consistent time service (section 1)")
    Term.(const run $ seed $ replicas $ skew_ms)

let token_cmd =
  let rotations =
    let doc = "Token rotations to sample." in
    Arg.(value & opt int 10_000 & info [ "rotations" ] ~docv:"N" ~doc)
  in
  let nodes =
    let doc = "Ring size." in
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc)
  in
  let run seed rotations nodes =
    R.token ppf (E.token_calibration ~seed:(seed64 seed) ~rotations ~nodes ())
  in
  Cmd.v
    (Cmd.info "token"
       ~doc:"Token-passing-time calibration of the simulated testbed")
    Term.(const run $ seed $ rotations $ nodes)

let recovery_cmd =
  let readings =
    let doc = "Client readings across the join." in
    Arg.(value & opt int 40 & info [ "readings" ] ~docv:"N" ~doc)
  in
  let run seed readings =
    R.recovery ppf (E.recovery ~seed:(seed64 seed) ~readings ())
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:"Add a replica to a running group (state transfer, section 3.2)")
    Term.(const run $ seed $ readings)

let causal_cmd =
  let run seed = R.causal ppf (E.causal ~seed:(seed64 seed) ()) in
  Cmd.v
    (Cmd.info "causal"
       ~doc:
         "Causal group-clock timestamps across two replicated groups           (section 5's proposed extension)")
    Term.(const run $ seed)

let run_cmd =
  let trace_file =
    let doc =
      "Write the run's span trace to $(docv) in Chrome trace-event JSON \
       (load it in Perfetto or chrome://tracing; ts is simulated \
       microseconds, one process row per node, one thread row per \
       subsystem)."
    in
    Arg.(value & opt string "trace.json" & info [ "trace"; "o" ] ~docv:"FILE" ~doc)
  in
  let steps =
    let doc =
      "Record one instant event per engine callback too (per-step \
       engine rows; traces get very large)."
    in
    Arg.(value & flag & info [ "steps" ] ~doc)
  in
  let capacity =
    let doc = "Trace buffer capacity in events; the excess is counted, not kept." in
    Arg.(value & opt int 1_000_000 & info [ "trace-capacity" ] ~docv:"N" ~doc)
  in
  let run seed replicas rounds trace_file metrics_file steps capacity attrib
      dump =
    let trace = Obs.Trace.create ~capacity () in
    let metrics = Obs.Metrics.create () in
    let sink = Obs.Sink.create () in
    Obs.Sink.attach sink ~trace ~metrics;
    Obs.Sink.set_trace_steps sink steps;
    let recorder = Obs.Recorder.create () in
    let health = Obs.Health.create () in
    Obs.Sink.set_recorder sink (Some recorder);
    Obs.Sink.set_health sink (Some health);
    let attrib = if attrib then Some (Obs.Attrib.create ()) else None in
    Obs.Sink.set_attrib sink attrib;
    let (_ : E.skew_run) =
      E.skew ~seed:(seed64 seed) ~rounds ~replicas ~obs:sink ()
    in
    (* Node 0 hosts the client; experiment replica [k] is node [k+1]. *)
    let process_name pid =
      if pid = 0 then "client (node 0)"
      else Printf.sprintf "replica %d (node %d)" (pid - 1) pid
    in
    Obs.Trace.write_chrome_file ~process_name trace trace_file;
    let subs =
      String.concat ", "
        (List.map Obs.Subsystem.name (Obs.Trace.subsystems trace))
    in
    Format.fprintf ppf "wrote %s: %d event(s) across %d subsystem(s): %s@."
      trace_file (Obs.Trace.length trace)
      (List.length (Obs.Trace.subsystems trace))
      subs;
    if Obs.Trace.dropped trace > 0 then
      Format.fprintf ppf
        "warning: %d event(s) dropped at capacity %d (raise \
         --trace-capacity)@."
        (Obs.Trace.dropped trace) capacity;
    let c k = Obs.Metrics.get metrics k in
    Format.fprintf ppf
      "ccs: %d round(s), %d win(s), %d suppressed, %d discard(s)@."
      (c Obs.Metrics.Ccs_rounds) (c Obs.Metrics.Ccs_wins)
      (c Obs.Metrics.Ccs_suppressed)
      (c Obs.Metrics.Ccs_discards);
    Format.fprintf ppf "net: %d sent, %d delivered, %d dropped@."
      (c Obs.Metrics.Net_sent)
      (c Obs.Metrics.Net_delivered)
      (c Obs.Metrics.Net_dropped);
    Format.fprintf ppf "engine: event-queue high water %.0f@."
      !(Obs.Metrics.gauge metrics "event_queue_hwm");
    write_metrics_opt metrics metrics_file;
    print_attrib_opt attrib;
    flush_flight ~prefix:dump recorder health
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the clock-sequence experiment with the observability sink \
          attached and dump a Perfetto-loadable trace plus a metrics \
          snapshot; the flight recorder and health monitor ride along \
          (see --dump-on-exit)")
    Term.(
      const run $ seed $ replicas $ rounds_arg 200 $ trace_file
      $ metrics_file $ steps $ capacity $ attrib_flag $ dump_on_exit)

let trace_check_cmd =
  let file =
    let doc = "Chrome trace-event JSON file to validate." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match Obs.Trace.validate_file file with
    | Ok s ->
        Format.fprintf ppf
          "%s: OK — %d event(s), %d process(es), subsystems: %s@." file
          s.Obs.Trace.v_events s.Obs.Trace.v_pids
          (String.concat ", " s.Obs.Trace.v_subsystems)
    | Error e ->
        Format.eprintf "%s: INVALID — %s@." file e;
        exit 1
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate an emitted trace: well-formed JSON, the trace-event \
          schema, and per-thread timestamp monotonicity")
    Term.(const run $ file)

let explore_cmd =
  let strategy =
    let doc = "Exploration strategy: $(b,random) or $(b,bounded)." in
    Arg.(value & opt string "random" & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let budget =
    let doc = "Number of schedules to explore." in
    Arg.(value & opt int 500 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let depth =
    let doc = "Max deviations per schedule for the bounded strategy." in
    Arg.(value & opt int 1 & info [ "depth" ] ~docv:"N" ~doc)
  in
  let crash =
    let doc = "Crash the last replica halfway through the run." in
    Arg.(value & flag & info [ "crash" ] ~doc)
  in
  let quantum_us =
    let doc = "Packet-delay quantum in microseconds." in
    Arg.(value & opt int 200 & info [ "quantum-us" ] ~docv:"US" ~doc)
  in
  let delay_prob =
    let doc = "Per-packet delay probability (random strategy)." in
    Arg.(value & opt float 0.01 & info [ "delay-prob" ] ~docv:"P" ~doc)
  in
  let reorder_prob =
    let doc = "Same-time-event reorder probability (random strategy)." in
    Arg.(value & opt float 0.25 & info [ "reorder-prob" ] ~docv:"P" ~doc)
  in
  let keep_going =
    let doc = "Keep exploring after the first violation." in
    Arg.(value & flag & info [ "keep-going" ] ~doc)
  in
  let jobs =
    let doc =
      "Worker domains exploring schedules in parallel.  Violations found \
       and the distinct-schedule count are independent of $(docv)."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let trace_out =
    let doc =
      "On a violation, replay the shrunk counterexample with the \
       observability sink attached and write its full span trace to \
       $(docv) (Chrome trace-event JSON, next to the packet log)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc =
      "On a violation, write the metrics snapshot of the shrunk \
       counterexample's replay as JSON to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let flight_out =
    let doc =
      "On a violation, write the counterexample's attached flight-recorder \
       window (its black box) to $(docv), in the format $(b,ctsim \
       postmortem) reads."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let run seed replicas strategy budget depth rounds crash quantum_us
      delay_prob reorder_prob keep_going jobs trace_out metrics_out flight_out
      attrib =
    let strategy =
      match Mc.Strategy.of_string strategy with
      | Some (Mc.Strategy.Random _) ->
          Mc.Strategy.Random { delay_prob; reorder_prob }
      | Some (Mc.Strategy.Bounded _) -> Mc.Strategy.Bounded { depth }
      | None ->
          Format.eprintf "ctsim: unknown strategy %S@." strategy;
          exit 2
    in
    if replicas < 2 then begin
      Format.eprintf "ctsim: explore needs at least 2 replicas@.";
      exit 2
    end;
    if jobs < 1 then begin
      Format.eprintf "ctsim: --jobs must be >= 1@.";
      exit 2
    end;
    (* Oversubscribing domains never helps: workers are CPU-bound, and
       extra domains only add GC synchronization.  Results are identical
       at any job count, so capping is safe. *)
    let cores = Domain.recommended_domain_count () in
    let jobs =
      if jobs > cores then begin
        Format.eprintf
          "ctsim: --jobs %d exceeds the %d available core(s); using %d@."
          jobs cores cores;
        cores
      end
      else jobs
    in
    (* Attribution of the exploration itself (discovery runs on this
       domain when --jobs 1, plus all confirm/shrink replays, which are
       always sequential on the calling domain). *)
    let attrib = if attrib then Some (Obs.Attrib.create ()) else None in
    let attr_sink =
      match attrib with
      | None -> None
      | Some a ->
          let s = Obs.Sink.create () in
          Obs.Sink.set_attrib s (Some a);
          Some s
    in
    let cfg =
      {
        Mc.Harness.default with
        Mc.Harness.replicas;
        rounds;
        seed = seed64 seed;
        crash_at_round = (if crash then Some (rounds / 2) else None);
        sink = attr_sink;
      }
    in
    let report =
      Mc.Pool.explore ~strategy ~budget ~quantum_us
        ~stop_at_first:(not keep_going) ~jobs cfg
    in
    Format.fprintf ppf "%a@." Mc.Explore.pp_report report;
    (match (report.Mc.Explore.violations, trace_out, metrics_out) with
    | v :: _, trace_out, metrics_out
      when trace_out <> None || metrics_out <> None ->
        let trace, metrics = Mc.Explore.trace_violation ~quantum_us cfg v in
        (match trace_out with
        | Some file ->
            (* In the model-check harness every node runs a replica. *)
            let process_name pid = Printf.sprintf "replica %d" pid in
            Obs.Trace.write_chrome_file ~process_name trace file;
            Format.fprintf ppf
              "wrote %s: span trace of the minimal counterexample (%d \
               event(s))@."
              file (Obs.Trace.length trace)
        | None -> ());
        write_metrics_opt metrics metrics_out
    | [], Some _, _ | [], _, Some _ ->
        Format.fprintf ppf "no violation, no counterexample trace written@."
    | _ -> ());
    (match (report.Mc.Explore.violations, flight_out) with
    | v :: _, Some file ->
        Out_channel.with_open_text file (fun oc ->
            output_string oc v.Mc.Explore.blackbox);
        Format.fprintf ppf
          "wrote %s: flight window of the minimal counterexample (diagnose \
           with `ctsim postmortem %s`)@."
          file file
    | [], Some _ ->
        Format.fprintf ppf "no violation, no flight window written@."
    | _, None -> ());
    print_attrib_opt attrib;
    if report.Mc.Explore.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check the group clock: drive many event interleavings \
          through the simulator and validate the CCS invariants \
          (monotonicity, agreement, single synchronizer, no rollback) \
          after each")
    Term.(
      const run $ seed $ replicas $ strategy $ budget $ depth $ rounds_arg 12
      $ crash $ quantum_us $ delay_prob $ reorder_prob $ keep_going $ jobs
      $ trace_out $ metrics_out $ flight_out $ attrib_flag)

(* ------------------------------------------------------------------ *)

let hier_cmd =
  let module CH = Scenario.Cluster_hier in
  let module Span = Dsim.Time.Span in
  let run seed shards shard_size duration_ms mode crash_shard trace_file
      metrics_file attrib dump =
    let mode =
      match mode with
      | "star" -> Hier.Gateway.Star
      | "ring" -> Hier.Gateway.Ring
      | m ->
          Format.fprintf ppf "unknown --mode %S (star|ring)@." m;
          exit 2
    in
    let topo = Hier.Topology.create ~shards ~shard_size in
    let clock_config i =
      {
        Clock.Hwclock.default_config with
        offset =
          Span.of_ms (-1 * Hier.Topology.shard_of topo (Netsim.Node_id.of_int i));
      }
    in
    let sink = Obs.Sink.create () in
    let trace =
      match trace_file with
      | Some _ -> Some (Obs.Trace.create ())
      | None -> None
    in
    let metrics =
      match metrics_file with Some _ -> Some (Obs.Metrics.create ()) | None -> None
    in
    Obs.Sink.attach sink ?trace ?metrics;
    let recorder = Obs.Recorder.create () in
    (* Generations are per shard ring, so the membership check would
       compare unrelated rings — off in hier runs. *)
    let health =
      Obs.Health.create
        ~config:{ Obs.Health.default_config with membership_check = false }
        ()
    in
    Obs.Sink.set_recorder sink (Some recorder);
    Obs.Sink.set_health sink (Some health);
    let attrib = if attrib then Some (Obs.Attrib.create ()) else None in
    Obs.Sink.set_attrib sink attrib;
    let t =
      CH.create ~seed:(seed64 seed) ~clock_config
        ~gateway_config:{ Hier.Gateway.default_config with Hier.Gateway.mode }
        ~shards ~shard_size ~obs:sink ()
    in
    Format.fprintf ppf
      "%d replicas (%d shards x %d), %s bridge, shard s clocks start s ms \
       behind@."
      (Hier.Topology.replicas topo)
      shards shard_size
      (match mode with Hier.Gateway.Star -> "star" | Hier.Gateway.Ring -> "ring");
    CH.start_all t;
    Format.fprintf ppf "rings and groups formed at t=%d us; initial skew %d us@."
      (Dsim.Time.to_us (Dsim.Engine.now t.CH.eng))
      (Span.to_us (CH.cross_shard_skew t));
    CH.start_readers t;
    let slice = Span.of_ms 10 in
    let slices = max 1 (duration_ms / 10) in
    Format.fprintf ppf "@.%-10s %-12s %-10s %-10s %-8s %s@." "t(ms)"
      "skew(us)" "neighbor" "agreed" "regr" "ccs-rounds";
    for k = 1 to slices do
      CH.run_for t slice;
      (match crash_shard with
      | Some s when k = slices / 2 -> (
          match CH.crash_gateway t s with
          | Some id ->
              Format.fprintf ppf "-- crashed shard %d's gateway (node %d)@."
                s (Netsim.Node_id.to_int id)
          | None -> ())
      | _ -> ());
      Format.fprintf ppf "%-10d %-12d %-10d %-10d %-8d %d@." (k * 10)
        (Span.to_us (CH.cross_shard_skew t))
        (Span.to_us (CH.neighbor_skew t))
        (CH.agreed_rounds t) (CH.regressions t)
        (CH.ccs_rounds_completed t)
    done;
    let skew = CH.cross_shard_skew t in
    Format.fprintf ppf
      "@.final cross-shard skew %d us over %d shards; gateways: %s@."
      (Span.to_us skew) shards
      (String.concat " "
         (List.init shards (fun s ->
              match CH.gateway_of t s with
              | Some id -> string_of_int (Netsim.Node_id.to_int id)
              | None -> "?")));
    Format.fprintf ppf
      "engine: %d events executed, event-queue high water %d@."
      (Dsim.Engine.steps t.CH.eng)
      (CH.queue_hwm t);
    (match (trace, trace_file) with
    | Some tr, Some file ->
        let process_name pid =
          Printf.sprintf "replica %d (shard %d)" pid
            (Hier.Topology.shard_of topo (Netsim.Node_id.of_int pid))
        in
        Obs.Trace.write_chrome_file ~process_name tr file;
        Format.fprintf ppf "wrote %s: %d event(s)@." file (Obs.Trace.length tr)
    | _ -> ());
    (match metrics with
    | Some m -> write_metrics_opt m metrics_file
    | None -> ());
    print_attrib_opt attrib;
    flush_flight ~prefix:dump recorder health
  in
  let trace_file =
    let doc =
      "Write the run's span trace to $(docv) (Chrome trace-event JSON)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let shards =
    let doc = "Number of shards (second-level ring size)." in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let shard_size =
    let doc = "Replicas per shard (first-level Totem ring size)." in
    Arg.(value & opt int 4 & info [ "shard-size" ] ~docv:"K" ~doc)
  in
  let duration =
    let doc = "Simulated run length in milliseconds." in
    Arg.(value & opt int 100 & info [ "duration-ms" ] ~docv:"MS" ~doc)
  in
  let mode =
    let doc = "Bridge protocol: star (poll/offer/agree) or ring (token)." in
    Arg.(value & opt string "star" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let crash =
    let doc =
      "Crash shard $(docv)'s gateway halfway through, to watch the \
       deterministic re-election and recovery."
    in
    Arg.(
      value & opt (some int) None & info [ "crash-shard" ] ~docv:"S" ~doc)
  in
  Cmd.v
    (Cmd.info "hier"
       ~doc:
         "Run the hierarchical multi-ring time service: per-shard Totem \
          rings bridged by elected gateways agreeing a global group clock \
          (accepts the full --trace/--metrics/--attrib set and \
          --dump-on-exit)")
    Term.(
      const run $ seed $ shards $ shard_size $ duration $ mode $ crash
      $ trace_file $ metrics_file $ attrib_flag $ dump_on_exit)

let postmortem_cmd =
  let file =
    let doc =
      "Flight-recorder dump to diagnose (the .flight.txt written by \
       --dump-on-exit, an incident flush, or explore --flight)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let tail =
    let doc = "Timeline records to print (from the end of the window)." in
    Arg.(value & opt int 40 & info [ "tail" ] ~docv:"N" ~doc)
  in
  let run file tail =
    match Obs.Postmortem.load_file file with
    | Error e ->
        Format.eprintf "%s: %s@." file e;
        exit 1
    | Ok w -> Format.fprintf ppf "%a" (Obs.Postmortem.report ~tail) w
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Reconstruct what led into an incident from a dumped \
          flight-recorder window: decode the record timeline, match \
          deliveries and drops back to their sends (per-path FIFO \
          lineage), and name the suspect hop for each health incident")
    Term.(const run $ file $ tail)

let main =
  Cmd.group
    (Cmd.info "ctsim" ~version:"1.0.0"
       ~doc:
         "Deterministic simulator for the consistent time service of Zhao, \
          Moser and Melliar-Smith (DSN 2003)")
    [
      fig4_cmd;
      fig5_cmd;
      fig6_cmd;
      msgcounts_cmd;
      drift_cmd;
      rollback_cmd;
      token_cmd;
      recovery_cmd;
      causal_cmd;
      hier_cmd;
      explore_cmd;
      run_cmd;
      trace_check_cmd;
      postmortem_cmd;
    ]

let () = exit (Cmd.eval main)
