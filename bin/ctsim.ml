(* ctsim — command-line driver for the consistent-time-service simulator.

   Each subcommand runs one of the paper's experiments with adjustable
   parameters and prints the same series the paper reports.  See DESIGN.md
   for the experiment index. *)

module E = Scenario.Experiments
module R = Scenario.Report

let ppf = Format.std_formatter

open Cmdliner

let seed =
  let doc = "Root seed of the deterministic simulation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let seed64 s = Int64.of_int s

let replicas =
  let doc = "Number of server replicas." in
  Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)

let fig4_cmd =
  let run () = R.fig4 ppf (E.fig4 ()) in
  Cmd.v
    (Cmd.info "fig4"
       ~doc:"Re-enact the worked example of the paper's Figure 4 (section 3.4)")
    Term.(const run $ const ())

let fig5_cmd =
  let invocations =
    let doc = "Remote method invocations per run." in
    Arg.(value & opt int 10_000 & info [ "invocations"; "n" ] ~docv:"N" ~doc)
  in
  let run seed replicas invocations =
    let with_cts =
      E.latency ~seed:(seed64 seed) ~invocations ~replicas ~use_cts:true ()
    in
    let without_cts =
      E.latency ~seed:(seed64 seed) ~invocations ~replicas ~use_cts:false ()
    in
    R.latency_pair ppf ~with_cts ~without_cts
  in
  Cmd.v
    (Cmd.info "fig5"
       ~doc:
         "Probability density of the end-to-end latency with and without \
          the consistent time service (Figure 5)")
    Term.(const run $ seed $ replicas $ invocations)

let rounds_arg default =
  let doc = "Clock-related operations per replica." in
  Arg.(value & opt int default & info [ "rounds" ] ~docv:"N" ~doc)

let show_arg =
  let doc = "Rounds to print in the per-round tables." in
  Arg.(value & opt int 20 & info [ "show" ] ~docv:"N" ~doc)

let fig6_cmd =
  let run seed replicas rounds show =
    let r = E.skew ~seed:(seed64 seed) ~rounds ~replicas () in
    R.fig6a ppf r ~rounds:show;
    Format.fprintf ppf "@.";
    R.fig6b ppf r ~rounds:show;
    Format.fprintf ppf "@.";
    R.fig6c ppf r ~rounds:show
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:
         "Skew and drift of the group clock: intervals, offset evolution, \
          normalized clocks (Figure 6)")
    Term.(const run $ seed $ replicas $ rounds_arg 10_000 $ show_arg)

let msgcounts_cmd =
  let run seed replicas rounds =
    R.msg_counts ppf (E.skew ~seed:(seed64 seed) ~rounds ~replicas ())
  in
  Cmd.v
    (Cmd.info "msgcounts"
       ~doc:
         "CCS messages sent per node under duplicate suppression (section \
          4.3)")
    Term.(const run $ seed $ replicas $ rounds_arg 10_000)

let drift_cmd =
  let gain =
    let doc = "Gain of the anchored compensation strategy." in
    Arg.(value & opt float 0.1 & info [ "gain" ] ~docv:"G" ~doc)
  in
  let mean_delay =
    let doc = "Mean-delay compensation in microseconds." in
    Arg.(value & opt int 150 & info [ "mean-delay" ] ~docv:"US" ~doc)
  in
  let run seed rounds gain mean_delay =
    let s c = E.skew ~seed:(seed64 seed) ~rounds ~compensation:c () in
    R.drift_table ppf
      [
        ("no compensation", s `No_compensation);
        ( Printf.sprintf "mean-delay (+%d us)" mean_delay,
          s (`Mean_delay mean_delay) );
        ( Printf.sprintf "anchored (gain %g)" gain,
          s (`Anchored (gain, 50)) );
      ]
  in
  Cmd.v
    (Cmd.info "drift"
       ~doc:"Drift-compensation strategies ablation (section 3.3)")
    Term.(const run $ seed $ rounds_arg 2_000 $ gain $ mean_delay)

let rollback_cmd =
  let skew_ms =
    let doc = "Physical-clock skew per backup in milliseconds (behind)." in
    Arg.(value & opt int 300 & info [ "skew-ms" ] ~docv:"MS" ~doc)
  in
  let run seed replicas skew_ms =
    let offs i = -1000 * skew_ms * (i - 1) in
    let go offset_tracking =
      E.rollback ~seed:(seed64 seed) ~replicas
        ~style:Repl.Replica.Semi_active ~offset_tracking
        ~clock_offset_us:offs ()
    in
    R.rollback_pair ppf ~baseline:(go false) ~cts:(go true)
  in
  Cmd.v
    (Cmd.info "rollback"
       ~doc:
         "Clock roll-back on primary failover: prior-work baseline vs the \
          consistent time service (section 1)")
    Term.(const run $ seed $ replicas $ skew_ms)

let token_cmd =
  let rotations =
    let doc = "Token rotations to sample." in
    Arg.(value & opt int 10_000 & info [ "rotations" ] ~docv:"N" ~doc)
  in
  let nodes =
    let doc = "Ring size." in
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc)
  in
  let run seed rotations nodes =
    R.token ppf (E.token_calibration ~seed:(seed64 seed) ~rotations ~nodes ())
  in
  Cmd.v
    (Cmd.info "token"
       ~doc:"Token-passing-time calibration of the simulated testbed")
    Term.(const run $ seed $ rotations $ nodes)

let recovery_cmd =
  let readings =
    let doc = "Client readings across the join." in
    Arg.(value & opt int 40 & info [ "readings" ] ~docv:"N" ~doc)
  in
  let run seed readings =
    R.recovery ppf (E.recovery ~seed:(seed64 seed) ~readings ())
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:"Add a replica to a running group (state transfer, section 3.2)")
    Term.(const run $ seed $ readings)

let causal_cmd =
  let run seed = R.causal ppf (E.causal ~seed:(seed64 seed) ()) in
  Cmd.v
    (Cmd.info "causal"
       ~doc:
         "Causal group-clock timestamps across two replicated groups           (section 5's proposed extension)")
    Term.(const run $ seed)

let run_cmd =
  let trace_file =
    let doc =
      "Write the run's span trace to $(docv) in Chrome trace-event JSON \
       (load it in Perfetto or chrome://tracing; ts is simulated \
       microseconds, one process row per node, one thread row per \
       subsystem)."
    in
    Arg.(value & opt string "trace.json" & info [ "trace"; "o" ] ~docv:"FILE" ~doc)
  in
  let metrics_file =
    let doc = "Also write the metrics-registry snapshot as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let steps =
    let doc =
      "Record one instant event per engine callback too (per-step \
       engine rows; traces get very large)."
    in
    Arg.(value & flag & info [ "steps" ] ~doc)
  in
  let capacity =
    let doc = "Trace buffer capacity in events; the excess is counted, not kept." in
    Arg.(value & opt int 1_000_000 & info [ "trace-capacity" ] ~docv:"N" ~doc)
  in
  let run seed replicas rounds trace_file metrics_file steps capacity =
    let trace = Obs.Trace.create ~capacity () in
    let metrics = Obs.Metrics.create () in
    let sink = Obs.Sink.create () in
    Obs.Sink.attach sink ~trace ~metrics;
    Obs.Sink.set_trace_steps sink steps;
    let (_ : E.skew_run) =
      E.skew ~seed:(seed64 seed) ~rounds ~replicas ~obs:sink ()
    in
    (* Node 0 hosts the client; experiment replica [k] is node [k+1]. *)
    let process_name pid =
      if pid = 0 then "client (node 0)"
      else Printf.sprintf "replica %d (node %d)" (pid - 1) pid
    in
    Obs.Trace.write_chrome_file ~process_name trace trace_file;
    (match metrics_file with
    | Some f ->
        Out_channel.with_open_text f (fun oc ->
            output_string oc (Obs.Metrics.to_json metrics);
            output_char oc '\n')
    | None -> ());
    let subs =
      String.concat ", "
        (List.map Obs.Subsystem.name (Obs.Trace.subsystems trace))
    in
    Format.fprintf ppf "wrote %s: %d event(s) across %d subsystem(s): %s@."
      trace_file (Obs.Trace.length trace)
      (List.length (Obs.Trace.subsystems trace))
      subs;
    if Obs.Trace.dropped trace > 0 then
      Format.fprintf ppf
        "warning: %d event(s) dropped at capacity %d (raise \
         --trace-capacity)@."
        (Obs.Trace.dropped trace) capacity;
    let c k = Obs.Metrics.get metrics k in
    Format.fprintf ppf
      "ccs: %d round(s), %d win(s), %d suppressed, %d discard(s)@."
      (c Obs.Metrics.Ccs_rounds) (c Obs.Metrics.Ccs_wins)
      (c Obs.Metrics.Ccs_suppressed)
      (c Obs.Metrics.Ccs_discards);
    Format.fprintf ppf "net: %d sent, %d delivered, %d dropped@."
      (c Obs.Metrics.Net_sent)
      (c Obs.Metrics.Net_delivered)
      (c Obs.Metrics.Net_dropped);
    match metrics_file with
    | Some f -> Format.fprintf ppf "wrote %s@." f
    | None -> ()
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the clock-sequence experiment with the observability sink \
          attached and dump a Perfetto-loadable trace plus a metrics \
          snapshot")
    Term.(
      const run $ seed $ replicas $ rounds_arg 200 $ trace_file
      $ metrics_file $ steps $ capacity)

let trace_check_cmd =
  let file =
    let doc = "Chrome trace-event JSON file to validate." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match Obs.Trace.validate_file file with
    | Ok s ->
        Format.fprintf ppf
          "%s: OK — %d event(s), %d process(es), subsystems: %s@." file
          s.Obs.Trace.v_events s.Obs.Trace.v_pids
          (String.concat ", " s.Obs.Trace.v_subsystems)
    | Error e ->
        Format.eprintf "%s: INVALID — %s@." file e;
        exit 1
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate an emitted trace: well-formed JSON, the trace-event \
          schema, and per-thread timestamp monotonicity")
    Term.(const run $ file)

let explore_cmd =
  let strategy =
    let doc = "Exploration strategy: $(b,random) or $(b,bounded)." in
    Arg.(value & opt string "random" & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let budget =
    let doc = "Number of schedules to explore." in
    Arg.(value & opt int 500 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let depth =
    let doc = "Max deviations per schedule for the bounded strategy." in
    Arg.(value & opt int 1 & info [ "depth" ] ~docv:"N" ~doc)
  in
  let crash =
    let doc = "Crash the last replica halfway through the run." in
    Arg.(value & flag & info [ "crash" ] ~doc)
  in
  let quantum_us =
    let doc = "Packet-delay quantum in microseconds." in
    Arg.(value & opt int 200 & info [ "quantum-us" ] ~docv:"US" ~doc)
  in
  let delay_prob =
    let doc = "Per-packet delay probability (random strategy)." in
    Arg.(value & opt float 0.01 & info [ "delay-prob" ] ~docv:"P" ~doc)
  in
  let reorder_prob =
    let doc = "Same-time-event reorder probability (random strategy)." in
    Arg.(value & opt float 0.25 & info [ "reorder-prob" ] ~docv:"P" ~doc)
  in
  let keep_going =
    let doc = "Keep exploring after the first violation." in
    Arg.(value & flag & info [ "keep-going" ] ~doc)
  in
  let jobs =
    let doc =
      "Worker domains exploring schedules in parallel.  Violations found \
       and the distinct-schedule count are independent of $(docv)."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let trace_out =
    let doc =
      "On a violation, replay the shrunk counterexample with the \
       observability sink attached and write its full span trace to \
       $(docv) (Chrome trace-event JSON, next to the packet log)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run seed replicas strategy budget depth rounds crash quantum_us
      delay_prob reorder_prob keep_going jobs trace_out =
    let strategy =
      match Mc.Strategy.of_string strategy with
      | Some (Mc.Strategy.Random _) ->
          Mc.Strategy.Random { delay_prob; reorder_prob }
      | Some (Mc.Strategy.Bounded _) -> Mc.Strategy.Bounded { depth }
      | None ->
          Format.eprintf "ctsim: unknown strategy %S@." strategy;
          exit 2
    in
    if replicas < 2 then begin
      Format.eprintf "ctsim: explore needs at least 2 replicas@.";
      exit 2
    end;
    if jobs < 1 then begin
      Format.eprintf "ctsim: --jobs must be >= 1@.";
      exit 2
    end;
    (* Oversubscribing domains never helps: workers are CPU-bound, and
       extra domains only add GC synchronization.  Results are identical
       at any job count, so capping is safe. *)
    let cores = Domain.recommended_domain_count () in
    let jobs =
      if jobs > cores then begin
        Format.eprintf
          "ctsim: --jobs %d exceeds the %d available core(s); using %d@."
          jobs cores cores;
        cores
      end
      else jobs
    in
    let cfg =
      {
        Mc.Harness.default with
        Mc.Harness.replicas;
        rounds;
        seed = seed64 seed;
        crash_at_round = (if crash then Some (rounds / 2) else None);
      }
    in
    let report =
      Mc.Pool.explore ~strategy ~budget ~quantum_us
        ~stop_at_first:(not keep_going) ~jobs cfg
    in
    Format.fprintf ppf "%a@." Mc.Explore.pp_report report;
    (match (report.Mc.Explore.violations, trace_out) with
    | v :: _, Some file ->
        let trace, _metrics =
          Mc.Explore.trace_violation ~quantum_us cfg v
        in
        (* In the model-check harness every node runs a replica. *)
        let process_name pid = Printf.sprintf "replica %d" pid in
        Obs.Trace.write_chrome_file ~process_name trace file;
        Format.fprintf ppf
          "wrote %s: span trace of the minimal counterexample (%d \
           event(s))@."
          file (Obs.Trace.length trace)
    | [], Some _ ->
        Format.fprintf ppf "no violation, no counterexample trace written@."
    | _, None -> ());
    if report.Mc.Explore.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check the group clock: drive many event interleavings \
          through the simulator and validate the CCS invariants \
          (monotonicity, agreement, single synchronizer, no rollback) \
          after each")
    Term.(
      const run $ seed $ replicas $ strategy $ budget $ depth $ rounds_arg 12
      $ crash $ quantum_us $ delay_prob $ reorder_prob $ keep_going $ jobs
      $ trace_out)

(* ------------------------------------------------------------------ *)

let hier_cmd =
  let module CH = Scenario.Cluster_hier in
  let module Span = Dsim.Time.Span in
  let run seed shards shard_size duration_ms mode crash_shard =
    let mode =
      match mode with
      | "star" -> Hier.Gateway.Star
      | "ring" -> Hier.Gateway.Ring
      | m ->
          Format.fprintf ppf "unknown --mode %S (star|ring)@." m;
          exit 2
    in
    let topo = Hier.Topology.create ~shards ~shard_size in
    let clock_config i =
      {
        Clock.Hwclock.default_config with
        offset =
          Span.of_ms (-1 * Hier.Topology.shard_of topo (Netsim.Node_id.of_int i));
      }
    in
    let t =
      CH.create ~seed:(seed64 seed) ~clock_config
        ~gateway_config:{ Hier.Gateway.default_config with Hier.Gateway.mode }
        ~shards ~shard_size ()
    in
    Format.fprintf ppf
      "%d replicas (%d shards x %d), %s bridge, shard s clocks start s ms \
       behind@."
      (Hier.Topology.replicas topo)
      shards shard_size
      (match mode with Hier.Gateway.Star -> "star" | Hier.Gateway.Ring -> "ring");
    CH.start_all t;
    Format.fprintf ppf "rings and groups formed at t=%d us; initial skew %d us@."
      (Dsim.Time.to_us (Dsim.Engine.now t.CH.eng))
      (Span.to_us (CH.cross_shard_skew t));
    CH.start_readers t;
    let slice = Span.of_ms 10 in
    let slices = max 1 (duration_ms / 10) in
    Format.fprintf ppf "@.%-10s %-12s %-10s %-10s %-8s %s@." "t(ms)"
      "skew(us)" "neighbor" "agreed" "regr" "ccs-rounds";
    for k = 1 to slices do
      CH.run_for t slice;
      (match crash_shard with
      | Some s when k = slices / 2 -> (
          match CH.crash_gateway t s with
          | Some id ->
              Format.fprintf ppf "-- crashed shard %d's gateway (node %d)@."
                s (Netsim.Node_id.to_int id)
          | None -> ())
      | _ -> ());
      Format.fprintf ppf "%-10d %-12d %-10d %-10d %-8d %d@." (k * 10)
        (Span.to_us (CH.cross_shard_skew t))
        (Span.to_us (CH.neighbor_skew t))
        (CH.agreed_rounds t) (CH.regressions t)
        (CH.ccs_rounds_completed t)
    done;
    let skew = CH.cross_shard_skew t in
    Format.fprintf ppf
      "@.final cross-shard skew %d us over %d shards; gateways: %s@."
      (Span.to_us skew) shards
      (String.concat " "
         (List.init shards (fun s ->
              match CH.gateway_of t s with
              | Some id -> string_of_int (Netsim.Node_id.to_int id)
              | None -> "?")));
    Format.fprintf ppf
      "engine: %d events executed, event-queue high water %d@."
      (Dsim.Engine.steps t.CH.eng)
      (CH.queue_hwm t)
  in
  let shards =
    let doc = "Number of shards (second-level ring size)." in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let shard_size =
    let doc = "Replicas per shard (first-level Totem ring size)." in
    Arg.(value & opt int 4 & info [ "shard-size" ] ~docv:"K" ~doc)
  in
  let duration =
    let doc = "Simulated run length in milliseconds." in
    Arg.(value & opt int 100 & info [ "duration-ms" ] ~docv:"MS" ~doc)
  in
  let mode =
    let doc = "Bridge protocol: star (poll/offer/agree) or ring (token)." in
    Arg.(value & opt string "star" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let crash =
    let doc =
      "Crash shard $(docv)'s gateway halfway through, to watch the \
       deterministic re-election and recovery."
    in
    Arg.(
      value & opt (some int) None & info [ "crash-shard" ] ~docv:"S" ~doc)
  in
  Cmd.v
    (Cmd.info "hier"
       ~doc:
         "Run the hierarchical multi-ring time service: per-shard Totem \
          rings bridged by elected gateways agreeing a global group clock")
    Term.(const run $ seed $ shards $ shard_size $ duration $ mode $ crash)

let main =
  Cmd.group
    (Cmd.info "ctsim" ~version:"1.0.0"
       ~doc:
         "Deterministic simulator for the consistent time service of Zhao, \
          Moser and Melliar-Smith (DSN 2003)")
    [
      fig4_cmd;
      fig5_cmd;
      fig6_cmd;
      msgcounts_cmd;
      drift_cmd;
      rollback_cmd;
      token_cmd;
      recovery_cmd;
      causal_cmd;
      hier_cmd;
      explore_cmd;
      run_cmd;
      trace_check_cmd;
    ]

let () = exit (Cmd.eval main)
