(* ctslint — determinism & replica-safety static analyzer for the CTS
   stack.  Two passes:

   - syntactic: parses every .ml under the given paths (default: lib bin
     bench test examples) and enforces the parsetree rules;
   - typed (--typed): loads the .cmt typedtrees dune's bin-annot build
     already produced and certifies the zero-alloc hot path, domain
     safety of pool-reachable state, and the runtime boundary.

   See lib/lint/rules.ml and DESIGN.md §11/§16.

     ctslint                      syntactic pass, exit 1 on any finding
     ctslint --typed              both passes (needs a `dune build` first)
     ctslint --typed --hotpath-report   print the certification inventory
     ctslint lib/gcs              lint one subtree
     ctslint --list-rules         what is enforced, and by which pass
     ctslint --list-suppressions  every annotation, its reason, and which
                                  pass consumed it
     ctslint --no-suppressions    audit mode: report even annotated sites *)

let default_paths = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let () =
  let list_rules = ref false in
  let list_supps = ref false in
  let no_supps = ref false in
  let quiet = ref false in
  let typed = ref false in
  let hotpath_report = ref false in
  let build_dir = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--list-rules", Arg.Set list_rules, " print the rule set and exit");
      ( "--list-suppressions",
        Arg.Set list_supps,
        " print every annotation (file:line, rule, reason, consuming pass) \
         and exit" );
      ( "--no-suppressions",
        Arg.Set no_supps,
        " audit mode: report findings even where suppressed" );
      ( "--typed",
        Arg.Set typed,
        " also run the typed pass over the .cmt build (hotpath-alloc, \
         domain-unsafe, runtime-boundary)" );
      ( "--hotpath-report",
        Arg.Set hotpath_report,
        " with --typed: print the hot-path certification inventory" );
      ( "--build-dir",
        Arg.Set_string build_dir,
        "DIR where to find the bin-annot build (default: ./_build/default, \
         or . when already inside a build context)" );
      ("--quiet", Arg.Set quiet, " print findings only, no summary");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun p -> paths := p :: !paths)
    "ctslint [options] [paths]";
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rules.t) ->
        Printf.printf "%-16s [%s] %s%s\n" r.Lint.Rules.name
          (Lint.Rules.pass_name r.Lint.Rules.pass)
          r.Lint.Rules.summary
          (match r.Lint.Rules.allowed_in with
          | [] -> ""
          | l -> Printf.sprintf " (exempt: %s)" (String.concat ", " l)))
      Lint.Rules.all;
    exit 0
  end;
  let paths =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists default_paths
    | ps -> ps
  in
  let respect_suppressions = not !no_supps in
  let report = Lint.Driver.lint_paths ~respect_suppressions paths in
  (* typed pass: walk the cmt build, restricted to the same paths *)
  let typed_result, cmt_errors =
    if not !typed then (None, [])
    else
      let bd =
        if !build_dir <> "" then Some !build_dir
        else Lint.Cmt_loader.find_build_dir (Sys.getcwd ())
      in
      match bd with
      | None ->
          prerr_endline
            "ctslint: --typed needs a bin-annot build; run `dune build` \
             first (or pass --build-dir)";
          exit 2
      | Some bd ->
          let units, errors = Lint.Cmt_loader.load_build_dir bd in
          let units = Lint.Cmt_loader.under_paths paths units in
          if units = [] then begin
            prerr_endline
              (Printf.sprintf
                 "ctslint: no .cmt units under %s for the given paths; run \
                  `dune build` first"
                 bd);
            exit 2
          end;
          let facts = List.map Lint.Typed_facts.walk_unit units in
          ( Some (Lint.Typed_check.analyze ~respect_suppressions facts),
            errors )
  in
  let typed_findings, typed_supps =
    match typed_result with
    | None -> ([], [])
    | Some r ->
        (r.Lint.Typed_check.r_findings, r.Lint.Typed_check.r_supps)
  in
  let suppressions =
    Lint.Suppress.merge_into ~into:report.Lint.Driver.suppressions
      typed_supps
  in
  if !list_supps then begin
    List.iter (fun s -> print_endline (Lint.Suppress.to_string s)) suppressions;
    Printf.printf "%d suppression(s) across %d file(s)\n"
      (List.length suppressions) report.Lint.Driver.files;
    exit 0
  end;
  let findings =
    List.sort Lint.Finding.compare
      (report.Lint.Driver.findings @ typed_findings @ cmt_errors)
  in
  List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
  (match (typed_result, !hotpath_report) with
  | Some r, true -> print_string (Lint.Typed_check.hotpath_report r)
  | _ -> ());
  let n = List.length findings in
  if not !quiet then begin
    (match typed_result with
    | Some r ->
        Printf.printf
          "ctslint: typed pass over %d unit(s), %d function(s), %d hot \
           root(s), %d certified\n"
          r.Lint.Typed_check.r_units r.Lint.Typed_check.r_fns
          (List.length r.Lint.Typed_check.r_roots)
          (List.length r.Lint.Typed_check.r_certified)
    | None -> ());
    Printf.printf "ctslint: %d file(s), %d finding(s), %d suppression(s)\n"
      report.Lint.Driver.files n (List.length suppressions)
  end;
  exit (if n = 0 then 0 else 1)
