(* ctslint — determinism & replica-safety static analyzer for the CTS
   stack.  Parses every .ml under the given paths (default: lib bin
   bench test examples) and enforces the project's determinism rules;
   see lib/lint/rules.ml and DESIGN.md §11.

     ctslint                      lint the tree, exit 1 on any finding
     ctslint lib/gcs              lint one subtree
     ctslint --list-rules         what is enforced
     ctslint --list-suppressions  every [@ctslint.allow] with its reason
     ctslint --no-suppressions    report even annotated sites (audit mode) *)

let default_paths = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let () =
  let list_rules = ref false in
  let list_supps = ref false in
  let no_supps = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--list-rules", Arg.Set list_rules, " print the rule set and exit");
      ( "--list-suppressions",
        Arg.Set list_supps,
        " print every [@ctslint.allow] (file:line, rule, reason) and exit" );
      ( "--no-suppressions",
        Arg.Set no_supps,
        " audit mode: report findings even where suppressed" );
      ("--quiet", Arg.Set quiet, " print findings only, no summary");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun p -> paths := p :: !paths)
    "ctslint [options] [paths]";
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rules.t) ->
        Printf.printf "%-16s %s%s\n" r.Lint.Rules.name r.Lint.Rules.summary
          (match r.Lint.Rules.allowed_in with
          | [] -> ""
          | l -> Printf.sprintf " (exempt: %s)" (String.concat ", " l));
        ())
      Lint.Rules.all;
    exit 0
  end;
  let paths =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists default_paths
    | ps -> ps
  in
  let report =
    Lint.Driver.lint_paths ~respect_suppressions:(not !no_supps) paths
  in
  if !list_supps then begin
    List.iter
      (fun s -> print_endline (Lint.Suppress.to_string s))
      report.Lint.Driver.suppressions;
    Printf.printf "%d suppression(s) across %d file(s)\n"
      (List.length report.Lint.Driver.suppressions)
      report.Lint.Driver.files;
    exit 0
  end;
  List.iter
    (fun f -> print_endline (Lint.Finding.to_string f))
    report.Lint.Driver.findings;
  let n = List.length report.Lint.Driver.findings in
  if not !quiet then
    Printf.printf "ctslint: %d file(s), %d finding(s), %d suppression(s)\n"
      report.Lint.Driver.files n
      (List.length report.Lint.Driver.suppressions);
  exit (if n = 0 then 0 else 1)
