(* Fault-injection tests: fail-stop clocks, cascaded crashes, packet loss
   under the full stack, and eviction after partition remerge. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let str = Alcotest.string

type rig = {
  cluster : Cluster.t;
  replicas : Replica.t array;
  client : Rpc.Client.t;
}

let make ?(seed = 1L) ?(replicas = 3) ?(style = Replica.Active) () =
  let cluster = Cluster.create ~seed ~nodes:(replicas + 1) () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:(List.init (replicas + 1) Fun.id));
  let config =
    {
      Replica.default_config with
      style;
      initial_members = List.init replicas (fun k -> Nid.of_int (k + 1));
    }
  in
  let reps =
    Array.init replicas (fun k ->
        let r =
          Replica.create cluster.Cluster.eng
            ~endpoint:cluster.Cluster.nodes.(k + 1).Cluster.endpoint
            ~group:cluster.Cluster.server_group
            ~clock:cluster.Cluster.nodes.(k + 1).Cluster.clock ~config
            ~app:(Scenario.Apps.time_server cluster ~node:(k + 1) ())
            ()
        in
        Cluster.run_for cluster (Span.of_ms 2);
        r)
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = replicas);
  { cluster; replicas = reps; client }

let run_client rig f =
  let finished = ref false in
  Dsim.Fiber.spawn rig.cluster.Cluster.eng (fun () ->
      f rig.client;
      finished := true);
  Cluster.run_until ~limit:(Span.of_sec 60) rig.cluster (fun () -> !finished);
  Cluster.run_for rig.cluster (Span.of_ms 20)

let test_clock_failure_fail_stops_replica () =
  (* §2: clocks are fail-stop; a replica whose clock fails stops and the
     group continues without it. *)
  let rig = make () in
  run_client rig (fun client ->
      let r1 = Rpc.Client.invoke client ~op:"gettimeofday" ~arg:"" in
      check bool "first reading works" true (int_of_string r1 > 0);
      (* fail replica 1's physical clock *)
      Clock.Hwclock.fail rig.cluster.Cluster.nodes.(1).Cluster.clock;
      (* the next clock operation at that replica raises and fail-stops it;
         the other two replicas keep serving *)
      let r2 =
        Rpc.Client.invoke ~timeout:(Span.of_ms 500) client ~op:"gettimeofday"
          ~arg:""
      in
      check bool "service continues" true
        (int_of_string r2 >= int_of_string r1));
  check bool "replica with failed clock halted" true
    (Replica.halted rig.replicas.(0)
    || not
         (List.exists
            (Nid.equal (Nid.of_int 1))
            (Gcs.Endpoint.members_of
               rig.cluster.Cluster.nodes.(0).Cluster.endpoint
               rig.cluster.Cluster.server_group)))

let test_cascaded_crashes_down_to_one () =
  let rig = make () in
  run_client rig (fun client ->
      let read () =
        int_of_string
          (Rpc.Client.invoke ~timeout:(Span.of_ms 500) client
             ~op:"gettimeofday" ~arg:"")
      in
      let v0 = read () in
      Replica.crash rig.replicas.(0);
      let v1 = read () in
      Replica.crash rig.replicas.(1);
      let v2 = read () in
      check bool "monotone through both failovers" true (v0 <= v1 && v1 <= v2))

let test_full_stack_under_packet_loss () =
  (* The whole pipeline (requests, CCS rounds, replies) survives 2 % loss:
     Totem retransmissions repair everything. *)
  let seed = 31L in
  let cluster = Cluster.create ~seed ~nodes:4 () in
  Netsim.Network.set_loss cluster.Cluster.net 0.02;
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
  let config =
    {
      Replica.default_config with
      initial_members = List.map Nid.of_int [ 1; 2; 3 ];
    }
  in
  let _reps =
    List.map
      (fun node ->
        Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:(Scenario.Apps.time_server cluster ~node ())
          ())
      [ 1; 2; 3 ]
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 3);
  let finished = ref false in
  let prev = ref 0 in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      for _ = 1 to 25 do
        let v =
          int_of_string
            (Rpc.Client.invoke ~timeout:(Span.of_sec 1) client
               ~op:"gettimeofday" ~arg:"")
        in
        if v < !prev then Alcotest.fail "rollback under loss";
        prev := v
      done;
      finished := true);
  Cluster.run_until ~limit:(Span.of_sec 60) cluster (fun () -> !finished);
  check bool "packets were actually dropped" true
    (Netsim.Network.packets_dropped cluster.Cluster.net > 0)

let test_eviction_after_remerge () =
  let rig = make ~replicas:4 () in
  let net = rig.cluster.Cluster.net in
  run_client rig (fun client ->
      let read () =
        int_of_string
          (Rpc.Client.invoke ~timeout:(Span.of_ms 500) client
             ~op:"gettimeofday" ~arg:"")
      in
      let v1 = read () in
      Netsim.Network.partition net
        [
          List.map Nid.of_int [ 0; 1; 2 ];
          List.map Nid.of_int [ 3; 4 ];
        ];
      Dsim.Fiber.sleep rig.cluster.Cluster.eng (Span.of_ms 50);
      let v2 = read () in
      Netsim.Network.heal net;
      Dsim.Fiber.sleep rig.cluster.Cluster.eng (Span.of_ms 100);
      let v3 = read () in
      check bool "monotone across partition and remerge" true
        (v1 <= v2 && v2 <= v3));
  (* the replicas that sat in the minority are evicted and halted *)
  check bool "minority replicas halted" true
    (Replica.halted rig.replicas.(2) && Replica.halted rig.replicas.(3));
  check bool "majority replicas serving" true
    ((not (Replica.halted rig.replicas.(0)))
    && not (Replica.halted rig.replicas.(1)));
  (* group membership reflects the eviction everywhere in the primary side *)
  check int "group pruned to majority members" 2
    (List.length
       (Gcs.Endpoint.members_of rig.cluster.Cluster.nodes.(0).Cluster.endpoint
          rig.cluster.Cluster.server_group))

let test_rejoin_after_eviction () =
  (* an evicted node can come back as a recovering replica *)
  let rig = make ~replicas:3 () in
  let net = rig.cluster.Cluster.net in
  run_client rig (fun client ->
      let read () =
        int_of_string
          (Rpc.Client.invoke ~timeout:(Span.of_ms 500) client
             ~op:"gettimeofday" ~arg:"")
      in
      ignore (read ());
      Netsim.Network.partition net
        [ List.map Nid.of_int [ 0; 1; 2 ]; [ Nid.of_int 3 ] ];
      Dsim.Fiber.sleep rig.cluster.Cluster.eng (Span.of_ms 50);
      ignore (read ());
      Netsim.Network.heal net;
      Dsim.Fiber.sleep rig.cluster.Cluster.eng (Span.of_ms 100);
      ignore (read ()));
  check bool "evicted" true (Replica.halted rig.replicas.(2));
  (* NOTE: a fresh recovering replica cannot reuse the same endpoint's
     subscription (the halted one still holds it); a real redeployment
     restarts the node process.  We assert the group stays correct. *)
  check int "group is the two survivors" 2
    (List.length
       (Gcs.Endpoint.members_of rig.cluster.Cluster.nodes.(0).Cluster.endpoint
          rig.cluster.Cluster.server_group))

let test_client_sees_failover_transparently () =
  let rig = make ~style:Replica.Semi_active () in
  run_client rig (fun client ->
      let echo i =
        Rpc.Client.invoke ~timeout:(Span.of_ms 500) client ~op:"e"
          ~arg:(string_of_int i)
      in
      check str "before" "1" (echo 1);
      Replica.crash rig.replicas.(0);
      check str "after failover" "2" (echo 2))

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case "clock fail-stop" `Quick
          test_clock_failure_fail_stops_replica;
        Alcotest.test_case "cascaded crashes" `Quick
          test_cascaded_crashes_down_to_one;
        Alcotest.test_case "packet loss full stack" `Quick
          test_full_stack_under_packet_loss;
        Alcotest.test_case "eviction after remerge" `Quick
          test_eviction_after_remerge;
        Alcotest.test_case "rejoin after eviction" `Quick
          test_rejoin_after_eviction;
        Alcotest.test_case "transparent failover" `Quick
          test_client_sees_failover_transparently;
      ] );
  ]
