(* Tests for histograms, summaries and regression. *)

let check = Alcotest.check
let int = Alcotest.int
let flt = Alcotest.float 1e-9
let flt_loose = Alcotest.float 1e-6

let test_histogram_basic () =
  let h = Stats.Histogram.create ~bin_width:10. () in
  List.iter (Stats.Histogram.add h) [ 1.; 5.; 15.; 15.; 25. ];
  check int "count" 5 (Stats.Histogram.count h);
  check int "bins" 3 (Stats.Histogram.bin_count h);
  check int "bin0" 2 (Stats.Histogram.samples_in h 0);
  check int "bin1" 2 (Stats.Histogram.samples_in h 1);
  check int "bin2" 1 (Stats.Histogram.samples_in h 2);
  check flt "density sums to 1" 1.
    (List.fold_left (fun a (_, d) -> a +. d) 0. (Stats.Histogram.rows h));
  check flt "bin mid" 5. (Stats.Histogram.bin_mid h 0)

let test_histogram_clamps_below_lo () =
  let h = Stats.Histogram.create ~lo:100. ~bin_width:10. () in
  Stats.Histogram.add h 42.;
  check int "clamped into first bin" 1 (Stats.Histogram.samples_in h 0)

let test_histogram_mode () =
  let h = Stats.Histogram.create ~bin_width:1. () in
  List.iter (Stats.Histogram.add h) [ 0.5; 2.5; 2.7; 2.2; 9.9 ];
  check int "mode bin" 2 (Stats.Histogram.mode_bin h)

let test_histogram_rejects_bad_width () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Histogram.create: bin_width <= 0") (fun () ->
      ignore (Stats.Histogram.create ~bin_width:0. ()))

let test_summary_moments () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check flt_loose "mean" 5. (Stats.Summary.mean s);
  check flt_loose "stddev" (sqrt (32. /. 7.)) (Stats.Summary.stddev s);
  check flt "min" 2. (Stats.Summary.min s);
  check flt "max" 9. (Stats.Summary.max s)

let test_summary_percentiles () =
  let s = Stats.Summary.create () in
  for i = 1 to 100 do
    Stats.Summary.add s (float_of_int i)
  done;
  check flt_loose "median" 50.5 (Stats.Summary.median s);
  check flt_loose "p0" 1. (Stats.Summary.percentile s 0.);
  check flt_loose "p100" 100. (Stats.Summary.percentile s 100.);
  check flt_loose "p99" 99.01 (Stats.Summary.percentile s 99.)

let test_summary_add_after_percentile () =
  (* percentile sorts internally; adding afterwards must still work *)
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 3.; 1.; 2. ];
  ignore (Stats.Summary.median s);
  Stats.Summary.add s 0.;
  check flt_loose "median after add" 1.5 (Stats.Summary.median s)

let test_regression_exact_line () =
  let pts = List.init 10 (fun i -> (float_of_int i, (2. *. float_of_int i) +. 3.)) in
  let f = Stats.Regression.fit pts in
  check flt_loose "slope" 2. f.slope;
  check flt_loose "intercept" 3. f.intercept;
  check flt_loose "r2" 1. f.r2

let test_regression_rejects_degenerate () =
  Alcotest.check_raises "single point"
    (Invalid_argument "Regression.fit: need at least 2 points") (fun () ->
      ignore (Stats.Regression.fit [ (1., 1.) ]));
  Alcotest.check_raises "vertical"
    (Invalid_argument "Regression.fit: all x equal") (fun () ->
      ignore (Stats.Regression.fit [ (1., 1.); (1., 2.) ]))

let prop_summary_mean_matches_naive =
  QCheck.Test.make ~count:200 ~name:"online mean matches naive mean"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      abs_float (Stats.Summary.mean s -. naive) < 1e-6)

let prop_percentile_monotone =
  QCheck.Test.make ~count:100 ~name:"percentiles are monotone in p"
    QCheck.(list_of_size (Gen.int_range 2 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let vs = List.map (Stats.Summary.percentile s) ps in
      List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 6) vs) (List.tl vs))

let prop_histogram_count_conserved =
  QCheck.Test.make ~count:100 ~name:"histogram conserves sample count"
    QCheck.(list (float_bound_exclusive 10_000.))
    (fun xs ->
      let h = Stats.Histogram.create ~bin_width:7. () in
      List.iter (Stats.Histogram.add h) xs;
      let total =
        List.init (Stats.Histogram.bin_count h) (Stats.Histogram.samples_in h)
        |> List.fold_left ( + ) 0
      in
      total = List.length xs)

let suites =
  [
    ( "stats.histogram",
      [
        Alcotest.test_case "basic" `Quick test_histogram_basic;
        Alcotest.test_case "clamp" `Quick test_histogram_clamps_below_lo;
        Alcotest.test_case "mode" `Quick test_histogram_mode;
        Alcotest.test_case "bad width" `Quick test_histogram_rejects_bad_width;
        QCheck_alcotest.to_alcotest prop_histogram_count_conserved;
      ] );
    ( "stats.summary",
      [
        Alcotest.test_case "moments" `Quick test_summary_moments;
        Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
        Alcotest.test_case "add after sort" `Quick
          test_summary_add_after_percentile;
        QCheck_alcotest.to_alcotest prop_summary_mean_matches_naive;
        QCheck_alcotest.to_alcotest prop_percentile_monotone;
      ] );
    ( "stats.regression",
      [
        Alcotest.test_case "exact line" `Quick test_regression_exact_line;
        Alcotest.test_case "degenerate" `Quick
          test_regression_rejects_degenerate;
      ] );
  ]
