(* Tests for the physical hardware clock model and the external source. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let at eng us f =
  Dsim.Engine.schedule eng (Span.of_us us) f

let test_perfect_clock_tracks_real_time () =
  let eng = Dsim.Engine.create () in
  let c = Clock.Hwclock.create eng Clock.Hwclock.default_config in
  at eng 1000 (fun () ->
      check int "reads real time" 1000 (Time.to_us (Clock.Hwclock.read c)));
  Dsim.Engine.run eng

let test_offset_applied () =
  let eng = Dsim.Engine.create () in
  let cfg =
    { Clock.Hwclock.default_config with offset = Span.of_us 500 }
  in
  let c = Clock.Hwclock.create eng cfg in
  at eng 100 (fun () ->
      check int "offset" 600 (Time.to_us (Clock.Hwclock.read c)));
  Dsim.Engine.run eng

let test_drift_accumulates () =
  let eng = Dsim.Engine.create () in
  let cfg = { Clock.Hwclock.default_config with drift_ppm = 100. } in
  let c = Clock.Hwclock.create eng cfg in
  at eng 1_000_000 (fun () ->
      (* 100 ppm over 1 s = 100 us fast *)
      check int "drift" 1_000_100 (Time.to_us (Clock.Hwclock.read c)));
  Dsim.Engine.run eng

let test_negative_drift () =
  let eng = Dsim.Engine.create () in
  let cfg = { Clock.Hwclock.default_config with drift_ppm = -50. } in
  let c = Clock.Hwclock.create eng cfg in
  at eng 1_000_000 (fun () ->
      check int "slow clock" 999_950 (Time.to_us (Clock.Hwclock.read c)));
  Dsim.Engine.run eng

let test_granularity () =
  let eng = Dsim.Engine.create () in
  let cfg =
    { Clock.Hwclock.default_config with granularity = Span.of_ms 1 }
  in
  let c = Clock.Hwclock.create eng cfg in
  at eng 1234 (fun () ->
      check int "1 ms granularity truncates" 1000
        (Time.to_us (Clock.Hwclock.read c)));
  Dsim.Engine.run eng

let test_monotone_under_jitter () =
  let eng = Dsim.Engine.create () in
  let cfg = { Clock.Hwclock.default_config with jitter = Span.of_us 50 } in
  let c = Clock.Hwclock.create eng cfg in
  let prev = ref Time.epoch in
  for i = 1 to 200 do
    at eng (i * 10) (fun () ->
        let v = Clock.Hwclock.read c in
        check bool "monotone" true Time.(v >= !prev);
        prev := v)
  done;
  Dsim.Engine.run eng

let test_fail_stop () =
  let eng = Dsim.Engine.create () in
  let c = Clock.Hwclock.create eng Clock.Hwclock.default_config in
  at eng 10 (fun () -> Clock.Hwclock.fail c);
  at eng 20 (fun () ->
      check bool "failed" true (Clock.Hwclock.failed c);
      Alcotest.check_raises "read raises" Clock.Hwclock.Failed (fun () ->
          ignore (Clock.Hwclock.read c)));
  Dsim.Engine.run eng

let test_step_offset_backwards_visible () =
  let eng = Dsim.Engine.create () in
  let c = Clock.Hwclock.create eng Clock.Hwclock.default_config in
  let first = ref Time.epoch in
  at eng 1000 (fun () -> first := Clock.Hwclock.read c);
  at eng 1001 (fun () -> Clock.Hwclock.step_offset c (Span.of_ms (-1)));
  at eng 1002 (fun () ->
      let v = Clock.Hwclock.read c in
      check bool "stepped back" true Time.(v < !first));
  Dsim.Engine.run eng

let test_external_source_bounded_skew () =
  let eng = Dsim.Engine.create () in
  let src =
    Clock.External_source.create eng ~max_skew:(Span.of_us 100)
  in
  at eng 5000 (fun () ->
      for _ = 1 to 100 do
        let v = Clock.External_source.query src in
        let err = Span.abs (Time.diff v (Dsim.Engine.now eng)) in
        check bool "skew bounded" true Span.(err <= Span.of_us 100)
      done);
  Dsim.Engine.run eng

let test_external_source_zero_skew () =
  let eng = Dsim.Engine.create () in
  let src = Clock.External_source.create eng ~max_skew:Span.zero in
  at eng 777 (fun () ->
      check int "exact" 777
        (Time.to_us (Clock.External_source.query src)));
  Dsim.Engine.run eng

let prop_drift_proportional =
  QCheck.Test.make ~count:50 ~name:"drift error proportional to elapsed time"
    QCheck.(pair (int_range 1 500) (int_range 1 1000))
    (fun (ppm, ms) ->
      let eng = Dsim.Engine.create () in
      let cfg =
        {
          Clock.Hwclock.default_config with
          drift_ppm = float_of_int ppm;
          granularity = Span.of_ns 1;
        }
      in
      let c = Clock.Hwclock.create eng cfg in
      let ok = ref true in
      Dsim.Engine.schedule eng (Span.of_ms ms) (fun () ->
          let v = Clock.Hwclock.read c in
          let err = Span.to_ns (Time.diff v (Dsim.Engine.now eng)) in
          let expect = ms * ppm in
          ok := abs (err - expect) <= 1);
      Dsim.Engine.run eng;
      !ok)

let suites =
  [
    ( "clock.hwclock",
      [
        Alcotest.test_case "perfect" `Quick test_perfect_clock_tracks_real_time;
        Alcotest.test_case "offset" `Quick test_offset_applied;
        Alcotest.test_case "drift" `Quick test_drift_accumulates;
        Alcotest.test_case "negative drift" `Quick test_negative_drift;
        Alcotest.test_case "granularity" `Quick test_granularity;
        Alcotest.test_case "monotone under jitter" `Quick
          test_monotone_under_jitter;
        Alcotest.test_case "fail stop" `Quick test_fail_stop;
        Alcotest.test_case "backwards step" `Quick
          test_step_offset_backwards_visible;
        QCheck_alcotest.to_alcotest prop_drift_proportional;
      ] );
    ( "clock.external",
      [
        Alcotest.test_case "bounded skew" `Quick
          test_external_source_bounded_skew;
        Alcotest.test_case "zero skew" `Quick test_external_source_zero_skew;
      ] );
  ]
