(* Further Totem tests: the message store, flow control, token
   retransmission, garbage collection, large rings, and wire pretty
   printers. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let n = Nid.of_int

(* ------------------------------------------------------------------ *)
(* Store *)

let ring = Totem.Ring_id.make ~rep:(n 0) ~gen:1

let msg seq : string Totem.Wire.regular =
  { ring; seq; sender = n 0; payload = Printf.sprintf "m%d" seq }

let test_store_contiguous_aru () =
  let s = Totem.Store.create () in
  check int "empty aru" 0 (Totem.Store.aru s);
  check bool "add 1" true (Totem.Store.add s (msg 1));
  check bool "add 3" true (Totem.Store.add s (msg 3));
  check int "aru stops at gap" 1 (Totem.Store.aru s);
  check bool "add 2 fills gap" true (Totem.Store.add s (msg 2));
  check int "aru jumps" 3 (Totem.Store.aru s);
  check int "high" 3 (Totem.Store.high_seq s)

let test_store_duplicate_detection () =
  let s = Totem.Store.create () in
  check bool "first" true (Totem.Store.add s (msg 5));
  check bool "duplicate" false (Totem.Store.add s (msg 5))

let test_store_delivery_cursor () =
  let s = Totem.Store.create () in
  List.iter (fun k -> ignore (Totem.Store.add s (msg k))) [ 1; 2; 4 ];
  (match Totem.Store.next_to_deliver s with
  | Some m -> check int "next is 1" 1 m.Totem.Wire.seq
  | None -> Alcotest.fail "expected a deliverable message");
  Totem.Store.set_delivered s 2;
  check bool "gap blocks delivery" true (Totem.Store.next_to_deliver s = None);
  Alcotest.check_raises "cursor cannot go back"
    (Invalid_argument "Store.set_delivered: going backwards") (fun () ->
      Totem.Store.set_delivered s 1)

let test_store_missing_and_held () =
  let s = Totem.Store.create () in
  List.iter (fun k -> ignore (Totem.Store.add s (msg k))) [ 1; 3; 5 ];
  check (Alcotest.list int) "missing" [ 2; 4; 6 ]
    (Totem.Store.missing_up_to s 6);
  check (Alcotest.list int) "held" [ 1; 3; 5 ]
    (Totem.Store.held_in s ~lo:1 ~hi:6);
  check (Alcotest.list int) "held window" [ 3 ]
    (Totem.Store.held_in s ~lo:2 ~hi:4)

let test_store_gc () =
  let s = Totem.Store.create () in
  for k = 1 to 10 do
    ignore (Totem.Store.add s (msg k))
  done;
  Totem.Store.set_delivered s 10;
  Totem.Store.gc s ~upto:7;
  check bool "gc'd seqs count as present" true (Totem.Store.has s 3);
  check bool "gc'd seqs not retrievable" true (Totem.Store.find s 3 = None);
  check bool "kept seqs retrievable" true (Totem.Store.find s 8 <> None);
  (* re-adding below the floor is a duplicate *)
  check bool "below floor duplicate" false (Totem.Store.add s (msg 3))

let prop_store_aru_is_contiguous_prefix =
  QCheck.Test.make ~count:200 ~name:"store aru = longest contiguous prefix"
    QCheck.(list_of_size (Gen.int_range 0 30) (int_range 1 40))
    (fun seqs ->
      let s = Totem.Store.create () in
      List.iter (fun k -> ignore (Totem.Store.add s (msg k))) seqs;
      let present k = List.mem k seqs in
      let rec expected k = if present (k + 1) then expected (k + 1) else k in
      Totem.Store.aru s = expected 0)

(* ------------------------------------------------------------------ *)
(* Protocol-level *)

type harness = {
  eng : Dsim.Engine.t;
  net : string Totem.Wire.t Netsim.Network.t;
  nodes : string Totem.Node.t array;
  delivered : string list ref array;
}

let make ?(seed = 1L) ?(loss = 0.) ?config count =
  let eng = Dsim.Engine.create ~seed () in
  let net =
    Netsim.Network.create eng
      {
        Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us 26);
        loss;
      }
  in
  let delivered = Array.init count (fun _ -> ref []) in
  let nodes =
    Array.init count (fun i ->
        Totem.Node.create eng net ~me:(n i) ?config
          ~handler:(fun ev ->
            match ev with
            | Totem.Node.Deliver { payload; _ } ->
                delivered.(i) := payload :: !(delivered.(i))
            | Totem.Node.View _ | Totem.Node.Blocked -> ())
          ())
  in
  Array.iter Totem.Node.start nodes;
  Dsim.Engine.run ~until:(Time.of_ms 50) eng;
  { eng; net; nodes; delivered }

let run_for h ms =
  Dsim.Engine.run ~until:(Time.add (Dsim.Engine.now h.eng) (Span.of_ms ms))
    h.eng

let test_flow_control_caps_per_visit () =
  let config =
    { Totem.Config.default with max_msgs_per_visit = 5; window = 100 }
  in
  let h = make ~config 3 in
  (* queue far more than one visit's budget *)
  for k = 1 to 23 do
    Totem.Node.multicast h.nodes.(0) (string_of_int k)
  done;
  check int "queued" 23 (Totem.Node.pending h.nodes.(0));
  run_for h 100;
  check int "all delivered eventually" 23
    (List.length !(h.delivered.(1)));
  (* FIFO preserved under batching *)
  check
    (Alcotest.list Alcotest.string)
    "order preserved"
    (List.init 23 (fun i -> string_of_int (i + 1)))
    (List.rev !(h.delivered.(1)))

let test_token_retransmit_survives_single_loss () =
  (* 1 in 50 packets lost: single token losses are healed by the token
     retransmission timer without a membership change *)
  let h = make ~seed:3L ~loss:0.02 4 in
  let views_before =
    (Totem.Node.stats h.nodes.(0)).Totem.Node.views_installed
  in
  for k = 1 to 30 do
    Totem.Node.multicast h.nodes.(k mod 4) (string_of_int k)
  done;
  run_for h 200;
  check int "all delivered" 30 (List.length !(h.delivered.(0)));
  let views_after =
    (Totem.Node.stats h.nodes.(0)).Totem.Node.views_installed
  in
  check bool "few membership changes despite loss" true
    (views_after - views_before <= 2)

let test_large_ring () =
  let h = make 8 in
  for i = 0 to 7 do
    Totem.Node.multicast h.nodes.(i) (Printf.sprintf "from%d" i)
  done;
  run_for h 100;
  let d0 = List.rev !(h.delivered.(0)) in
  check int "eight messages" 8 (List.length d0);
  for i = 1 to 7 do
    check
      (Alcotest.list Alcotest.string)
      "same order on the big ring" d0
      (List.rev !(h.delivered.(i)))
  done

let test_store_gc_happens_on_ring () =
  (* after sustained traffic and token rotations, early messages are
     garbage-collected from the stores (we can only observe indirectly:
     memory-safe long runs and correct delivery) *)
  let h = make 3 in
  for batch = 0 to 19 do
    for k = 0 to 9 do
      Totem.Node.multicast h.nodes.(k mod 3)
        (Printf.sprintf "b%d.%d" batch k)
    done;
    run_for h 5
  done;
  run_for h 50;
  check int "200 delivered" 200 (List.length !(h.delivered.(2)))

let delivery_time_of_first_message config =
  let eng = Dsim.Engine.create ~seed:21L () in
  let net =
    Netsim.Network.create eng
      {
        Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us 26);
        loss = 0.;
      }
  in
  let when_delivered = ref None in
  let nodes =
    Array.init 4 (fun i ->
        Totem.Node.create eng net ~me:(n i) ~config
          ~handler:(fun ev ->
            match ev with
            | Totem.Node.Deliver { payload; _ } ->
                if i = 2 && payload = "probe" && !when_delivered = None then
                  when_delivered := Some (Dsim.Engine.now eng)
            | Totem.Node.View _ | Totem.Node.Blocked -> ())
          ())
  in
  Array.iter Totem.Node.start nodes;
  Dsim.Engine.run ~until:(Time.of_ms 50) eng;
  Totem.Node.multicast nodes.(0) "probe";
  Dsim.Engine.run ~until:(Time.of_ms 80) eng;
  Option.get !when_delivered

let test_safe_delivery_orders_and_lags () =
  let agreed =
    delivery_time_of_first_message
      { Totem.Config.default with delivery = Totem.Config.Agreed }
  in
  let safe =
    delivery_time_of_first_message
      { Totem.Config.default with delivery = Totem.Config.Safe }
  in
  (* safe delivery withholds the message until the token proves stability:
     at least one extra rotation (~200 us on this ring) *)
  check bool "safe delivery is later" true
    Span.(Time.diff safe agreed > Span.of_us 150)

let test_safe_delivery_total_order () =
  let config = { Totem.Config.default with delivery = Totem.Config.Safe } in
  let h = make ~config 4 in
  for k = 1 to 20 do
    Totem.Node.multicast h.nodes.(k mod 4) (string_of_int k)
  done;
  run_for h 200;
  let d0 = List.rev !(h.delivered.(0)) in
  check int "all delivered under safe mode" 20 (List.length d0);
  for i = 1 to 3 do
    check
      (Alcotest.list Alcotest.string)
      "same order" d0
      (List.rev !(h.delivered.(i)))
  done

let test_wire_pp_smoke () =
  let show m = Format.asprintf "%a" Totem.Wire.pp m in
  let r : string Totem.Wire.t = Totem.Wire.Regular (msg 7) in
  check bool "regular" true
    (String.length (show r) > 0
    && String.length (show r) < 200);
  let tok : string Totem.Wire.t =
    Totem.Wire.Token
      {
        ring;
        token_seq = 3;
        seq = 9;
        aru = 7;
        aru_id = Some (n 1);
        rtr = [ 8 ];
        fcc = 2;
      }
  in
  check bool "token mentions seq" true
    (let s = show tok in
     String.length s > 0)

let test_ring_id_ordering () =
  let a = Totem.Ring_id.make ~rep:(n 0) ~gen:1 in
  let b = Totem.Ring_id.make ~rep:(n 1) ~gen:1 in
  let c = Totem.Ring_id.make ~rep:(n 0) ~gen:2 in
  check bool "gen dominates" true (Totem.Ring_id.compare a c < 0);
  check bool "rep breaks ties" true (Totem.Ring_id.compare a b < 0);
  check bool "equal" true (Totem.Ring_id.equal a a);
  check bool "distinct" false (Totem.Ring_id.equal a b)

let prop_large_ring_total_order =
  QCheck.Test.make ~count:10 ~name:"total order holds for rings of 2..8"
    QCheck.(pair (int_range 2 8) (int_range 1 500))
    (fun (nodes, seed) ->
      let h = make ~seed:(Int64.of_int seed) nodes in
      for k = 1 to 12 do
        Totem.Node.multicast h.nodes.(k mod nodes) (string_of_int k)
      done;
      run_for h 200;
      let d0 = !(h.delivered.(0)) in
      List.length d0 = 12
      && Array.for_all (fun d -> !d = d0) h.delivered)

let suites =
  [
    ( "totem.store",
      [
        Alcotest.test_case "contiguous aru" `Quick test_store_contiguous_aru;
        Alcotest.test_case "duplicates" `Quick test_store_duplicate_detection;
        Alcotest.test_case "delivery cursor" `Quick test_store_delivery_cursor;
        Alcotest.test_case "missing/held" `Quick test_store_missing_and_held;
        Alcotest.test_case "gc" `Quick test_store_gc;
        QCheck_alcotest.to_alcotest prop_store_aru_is_contiguous_prefix;
      ] );
    ( "totem.protocol",
      [
        Alcotest.test_case "flow control" `Quick
          test_flow_control_caps_per_visit;
        Alcotest.test_case "token retransmission" `Quick
          test_token_retransmit_survives_single_loss;
        Alcotest.test_case "large ring" `Quick test_large_ring;
        Alcotest.test_case "gc on ring" `Quick test_store_gc_happens_on_ring;
        Alcotest.test_case "safe delivery lags" `Quick
          test_safe_delivery_orders_and_lags;
        Alcotest.test_case "safe delivery order" `Quick
          test_safe_delivery_total_order;
        Alcotest.test_case "wire pp" `Quick test_wire_pp_smoke;
        Alcotest.test_case "ring id order" `Quick test_ring_id_ordering;
        QCheck_alcotest.to_alcotest prop_large_ring_total_order;
      ] );
  ]
