(* Tests for the RPC layer: invocation, correlation, duplicate-reply
   suppression, timeouts, timed invocations and causal timestamps. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let str = Alcotest.string

type rig = {
  cluster : Cluster.t;
  replicas : Replica.t array;
  client : Rpc.Client.t;
}

let echo_app _service =
  {
    Replica.handle = (fun ~thread:_ ~op ~arg -> op ^ ":" ^ arg);
    snapshot = (fun () -> "");
    restore = ignore;
  }

let make ?(seed = 1L) ?(replicas = 2) () =
  let cluster = Cluster.create ~seed ~nodes:(replicas + 1) () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:(List.init (replicas + 1) Fun.id));
  let config =
    {
      Replica.default_config with
      initial_members = List.init replicas (fun k -> Nid.of_int (k + 1));
    }
  in
  let reps =
    Array.init replicas (fun k ->
        Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(k + 1).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(k + 1).Cluster.clock ~config
          ~app:echo_app ())
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = replicas);
  { cluster; replicas = reps; client }

let run_client rig f =
  let finished = ref false in
  Dsim.Fiber.spawn rig.cluster.Cluster.eng (fun () ->
      f rig.client;
      finished := true);
  Cluster.run_until ~limit:(Span.of_sec 60) rig.cluster (fun () -> !finished);
  Cluster.run_for rig.cluster (Span.of_ms 20)

let test_echo_roundtrip () =
  let rig = make () in
  run_client rig (fun client ->
      check str "payload echoed" "ping:hello"
        (Rpc.Client.invoke client ~op:"ping" ~arg:"hello"))

let test_requests_correlated () =
  (* interleaved operations come back with the right results *)
  let rig = make () in
  run_client rig (fun client ->
      for i = 1 to 10 do
        let r =
          Rpc.Client.invoke client ~op:"op" ~arg:(string_of_int i)
        in
        check str "matched" ("op:" ^ string_of_int i) r
      done);
  check int "10 requests sent" 10 (Rpc.Client.requests_sent rig.client)

let test_duplicate_replies_counted () =
  let rig = make ~replicas:3 () in
  run_client rig (fun client ->
      ignore (Rpc.Client.invoke client ~op:"x" ~arg:"" : string));
  (* 3 active replicas reply; the client keeps the first *)
  check int "two duplicates" 2 (Rpc.Client.duplicate_replies rig.client)

let test_timeout_and_late_reply_discarded () =
  let rig = make () in
  run_client rig (fun client ->
      (* a timeout far too short for the round trip *)
      (try
         ignore
           (Rpc.Client.invoke ~timeout:(Span.of_us 10) client ~op:"slow"
              ~arg:""
             : string);
         Alcotest.fail "expected timeout"
       with Rpc.Client.Timeout -> ());
      (* the late reply must not leak into the next invocation *)
      let r =
        Rpc.Client.invoke ~timeout:(Span.of_ms 100) client ~op:"next" ~arg:"1"
      in
      check str "next invocation unaffected" "next:1" r)

let test_invoke_timed_measures_latency () =
  let rig = make () in
  run_client rig (fun client ->
      let _, lat = Rpc.Client.invoke_timed client ~op:"t" ~arg:"" in
      (* the simulated round trip through the ring takes hundreds of us *)
      check bool "latency positive" true Span.(lat > Span.of_us 50);
      check bool "latency sane" true Span.(lat < Span.of_ms 50))

let test_no_timestamp_without_clock_reads () =
  let rig = make () in
  run_client rig (fun client ->
      ignore (Rpc.Client.invoke client ~op:"x" ~arg:"" : string);
      (* the echo app never reads the clock, so no timestamp circulates *)
      check bool "no timestamp" true
        (Rpc.Client.last_timestamp rig.client = None));
  ignore rig.replicas

let test_observe_timestamp_monotone () =
  let eng = Dsim.Engine.create () in
  let net = Netsim.Network.create eng Netsim.Network.default_config in
  let ep = Gcs.Endpoint.create eng net ~me:(Nid.of_int 0) ~bootstrap:true () in
  let client =
    Rpc.Client.create eng ~endpoint:ep ~my_group:(Gcs.Group_id.of_int 1)
      ~server_group:(Gcs.Group_id.of_int 2) ()
  in
  Rpc.Client.observe_timestamp client (Time.of_us 100);
  Rpc.Client.observe_timestamp client (Time.of_us 50);
  check bool "keeps the max" true
    (Rpc.Client.last_timestamp client = Some (Time.of_us 100));
  Rpc.Client.observe_timestamp client (Time.of_us 200);
  check bool "advances" true
    (Rpc.Client.last_timestamp client = Some (Time.of_us 200))

let test_reply_header_swaps_groups () =
  let req =
    Rpc.Wire.request ~src_grp:(Gcs.Group_id.of_int 7)
      ~dst_grp:(Gcs.Group_id.of_int 8) ~conn_id:42 ~msg_seq:5 ~op:"o" ~arg:"a"
      ()
  in
  let rep =
    Rpc.Wire.reply ~request_header:req.Gcs.Msg.header
      ~replica:(Nid.of_int 3) ~result:"r" ()
  in
  check int "src is the server group" 8
    (Gcs.Group_id.to_int rep.Gcs.Msg.header.src_grp);
  check int "dst is the client group" 7
    (Gcs.Group_id.to_int rep.Gcs.Msg.header.dst_grp);
  check int "conn echoed" 42 rep.Gcs.Msg.header.conn_id;
  check int "seq echoed" 5 rep.Gcs.Msg.header.msg_seq

let suites =
  [
    ( "rpc",
      [
        Alcotest.test_case "echo roundtrip" `Quick test_echo_roundtrip;
        Alcotest.test_case "correlation" `Quick test_requests_correlated;
        Alcotest.test_case "duplicate replies" `Quick
          test_duplicate_replies_counted;
        Alcotest.test_case "timeout + late reply" `Quick
          test_timeout_and_late_reply_discarded;
        Alcotest.test_case "invoke_timed" `Quick
          test_invoke_timed_measures_latency;
        Alcotest.test_case "no spurious timestamps" `Quick
          test_no_timestamp_without_clock_reads;
        Alcotest.test_case "observe_timestamp" `Quick
          test_observe_timestamp_monotone;
        Alcotest.test_case "reply header" `Quick test_reply_header_swaps_groups;
      ] );
  ]
