(* Tests for the consistent time service: the CCS algorithm of Figures 2-3,
   the worked example of Figure 4, replication modes, duplicate suppression,
   drift compensation, and the baseline's roll-back behaviour. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Service = Cts.Service
module Cluster = Scenario.Cluster

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let thread1 = Cts.Thread_id.of_int 1

type harness = {
  cluster : Cluster.t;
  services : Service.t array;
}

(* n nodes, each hosting one CTS service joined to one group (no client,
   no replication layer: these tests drive the algorithm directly). *)
let make ?(n = 3) ?(seed = 1L) ?clock_config ?(latency_us = 10)
    ?(config = fun _ -> Service.default_config) () =
  let cluster =
    Cluster.create ~seed ?clock_config
      ~latency:(Netsim.Latency.Constant (Span.of_us latency_us))
      ~nodes:n ()
  in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:(List.init n Fun.id));
  let group = cluster.Cluster.server_group in
  let services =
    Array.mapi
      (fun i (node : Cluster.node) ->
        let service =
          Service.create cluster.Cluster.eng ~endpoint:node.Cluster.endpoint
            ~group ~clock:node.Cluster.clock ~config:(config i) ()
        in
        Gcs.Endpoint.join_group node.Cluster.endpoint group
          ~handler:(fun ev ->
            match ev with
            | Gcs.Endpoint.Deliver { msg; _ } -> Service.on_message service msg
            | Gcs.Endpoint.View_change v -> Service.on_view service v
            | Gcs.Endpoint.Block | Gcs.Endpoint.Evicted -> ());
        (* group rank follows node order deterministically *)
        Cluster.run_for cluster (Span.of_ms 2);
        service)
      cluster.Cluster.nodes
  in
  Cluster.run_until cluster (fun () ->
      Array.for_all
        (fun (node : Cluster.node) ->
          List.length (Gcs.Endpoint.members_of node.Cluster.endpoint group) = n)
        cluster.Cluster.nodes);
  { cluster; services }

let run_all h fibers =
  let remaining = ref (List.length fibers) in
  List.iter
    (fun f ->
      Dsim.Fiber.spawn h.cluster.Cluster.eng (fun () ->
          f ();
          decr remaining))
    fibers;
  Cluster.run_until h.cluster (fun () -> !remaining = 0)

(* Each replica performs [rounds] reads on thread 1, separated by
   per-replica delays; returns the per-replica list of group clock values. *)
let staggered_reads h ~rounds ~delays_us =
  let results = Array.map (fun _ -> ref []) h.services in
  let fibers =
    Array.to_list
      (Array.mapi
         (fun i service () ->
           let delay = List.nth delays_us (i mod List.length delays_us) in
           for _ = 1 to rounds do
             Dsim.Fiber.sleep h.cluster.Cluster.eng (Span.of_us delay);
             let v = Service.gettimeofday service ~thread:thread1 in
             results.(i) := v :: !(results.(i))
           done)
         h.services)
  in
  run_all h fibers;
  Array.map (fun r -> List.rev !r) results

(* ------------------------------------------------------------------ *)

let test_replicas_agree () =
  let clock_config i =
    {
      Clock.Hwclock.default_config with
      offset = Span.of_us (1000 * i);
      drift_ppm = 20. *. float_of_int i;
    }
  in
  let h = make ~clock_config () in
  let results = staggered_reads h ~rounds:20 ~delays_us:[ 120; 260; 390 ] in
  check int "all completed" 20 (List.length results.(0));
  for i = 1 to 2 do
    check bool
      (Printf.sprintf "replica %d sees identical group clock sequence" i)
      true
      (List.for_all2 Time.equal results.(0) results.(i))
  done

let test_group_clock_monotone () =
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_us (-700 * i) }
  in
  let h = make ~clock_config () in
  let results = staggered_reads h ~rounds:30 ~delays_us:[ 90; 300; 170 ] in
  Array.iteri
    (fun i vs ->
      let rec monotone = function
        | a :: (b :: _ as rest) -> Time.(a <= b) && monotone rest
        | [ _ ] | [] -> true
      in
      check bool (Printf.sprintf "replica %d monotone" i) true (monotone vs);
      check int "no rollbacks recorded" 0
        (Service.stats h.services.(i)).Service.rollbacks)
    results

let test_offset_algebra () =
  (* After each round, offset = group clock - physical clock, so applying
     the offset to a fresh clock read reproduces the group clock plane. *)
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_us (500 * i) }
  in
  let h = make ~clock_config () in
  let eng = h.cluster.Cluster.eng in
  let service = h.services.(1) in
  let clock = h.cluster.Cluster.nodes.(1).Cluster.clock in
  run_all h
    [
      (fun () ->
        Dsim.Fiber.sleep eng (Span.of_us 100);
        let pc_before = Clock.Hwclock.read clock in
        let gc = Service.gettimeofday service ~thread:thread1 in
        (* the clock read inside the service happened at the same instant
           as [pc_before]; blocking added no physical-clock movement on the
           offset computation side *)
        ignore pc_before;
        let pc_now = Clock.Hwclock.read clock in
        let reconstructed = Time.add pc_now (Service.offset service) in
        (* gc <= reconstructed <= gc + blocking time *)
        check bool "offset maps local clock onto group clock" true
          Time.(reconstructed >= gc));
    ]

let test_duplicate_suppression_staggered () =
  (* When one replica initiates clearly first, the others find the winner's
     CCS message already buffered and send nothing: exactly one CCS message
     per round reaches the network (§4.3). *)
  let h = make () in
  let eng = h.cluster.Cluster.eng in
  let rounds = 10 in
  let base = Time.to_us (Dsim.Engine.now h.cluster.Cluster.eng) in
  let reader i service () =
    for r = 1 to rounds do
      (* replica 0 always starts the round 400 us before the others *)
      let target = base + (r * 2000) + (i * 400) in
      let now = Time.to_us (Dsim.Engine.now eng) in
      Dsim.Fiber.sleep eng (Span.of_us (target - now));
      ignore (Service.gettimeofday service ~thread:thread1 : Time.t)
    done
  in
  run_all h (Array.to_list (Array.mapi reader h.services));
  let sent =
    Array.fold_left
      (fun acc s -> acc + (Service.stats s).Service.ccs_sent)
      0 h.services
  in
  let sup =
    Array.fold_left
      (fun acc s -> acc + (Service.stats s).Service.suppressed)
      0 h.services
  in
  check int "one CCS send per round" rounds sent;
  check int "other replicas suppressed" (2 * rounds) sup;
  check int "fast replica sent them all" rounds
    (Service.stats h.services.(0)).Service.ccs_sent

let test_fig4_example () =
  let rows = Scenario.Experiments.fig4 () in
  check int "9 readings" 9 (List.length rows);
  let expect =
    (* (round, replica, gc in minutes past 8:00, offset in minutes) *)
    [
      (1, 1, 10., 0.);
      (1, 2, 10., -5.);
      (1, 3, 10., -15.);
      (2, 1, 25., -15.);
      (2, 2, 25., -5.);
      (2, 3, 25., -10.);
      (3, 1, 40., -20.);
      (3, 2, 40., -15.);
      (3, 3, 40., -10.);
    ]
  in
  List.iter2
    (fun (round, replica, gc, offset) (row : Scenario.Experiments.fig4_row) ->
      check int "round" round row.f4_round;
      check int "replica" replica row.f4_replica;
      check (Alcotest.float 0.2)
        (Printf.sprintf "group clock r%d/%d" round replica)
        gc row.f4_gc_min;
      check (Alcotest.float 0.2)
        (Printf.sprintf "offset r%d/%d" round replica)
        offset row.f4_offset_min)
    expect rows

let test_multiple_threads_independent () =
  let h = make () in
  let eng = h.cluster.Cluster.eng in
  let t2 = Cts.Thread_id.of_int 2 in
  let per_thread = Hashtbl.create 8 in
  let reader i service () =
    for _ = 1 to 10 do
      Dsim.Fiber.sleep eng (Span.of_us (130 + (i * 70)));
      let v1 = Service.gettimeofday service ~thread:thread1 in
      let v2 = Service.gettimeofday service ~thread:t2 in
      let key = (i, 1) in
      Hashtbl.replace per_thread key
        (v1 :: (try Hashtbl.find per_thread key with Not_found -> []));
      let key = (i, 2) in
      Hashtbl.replace per_thread key
        (v2 :: (try Hashtbl.find per_thread key with Not_found -> []))
    done
  in
  run_all h (Array.to_list (Array.mapi reader h.services));
  (* each thread's sequence is identical across replicas *)
  List.iter
    (fun tid ->
      let s0 = Hashtbl.find per_thread (0, tid) in
      for i = 1 to 2 do
        check bool
          (Printf.sprintf "thread %d agrees at replica %d" tid i)
          true
          (List.for_all2 Time.equal s0 (Hashtbl.find per_thread (i, tid)))
      done)
    [ 1; 2 ]

let test_call_type_granularity () =
  let clock_config _ =
    { Clock.Hwclock.default_config with offset = Span.of_us 123 }
  in
  let h = make ~clock_config () in
  let eng = h.cluster.Cluster.eng in
  run_all h
    [
      (fun () ->
        Dsim.Fiber.sleep eng (Span.of_ms 1);
        let s = h.services.(0) in
        let tod = Service.gettimeofday s ~thread:thread1 in
        check int "gettimeofday is us-granular" 0 (Time.to_ns tod mod 1_000);
        let sec = Service.time s ~thread:thread1 in
        check int "time is s-granular" 0 (Time.to_ns sec mod 1_000_000_000);
        let ms = Service.ftime s ~thread:thread1 in
        check int "ftime is ms-granular" 0 (Time.to_ns ms mod 1_000_000));
    ]

let test_common_input_buffer () =
  (* A slow replica receives CCS messages for a thread it has not created
     yet; they are parked in the common input buffer and consumed when the
     thread performs its first clock operation (Fig. 2 line 10). *)
  let h = make ~n:2 () in
  let eng = h.cluster.Cluster.eng in
  let got = ref None and expect = ref None in
  run_all h
    [
      (fun () ->
        Dsim.Fiber.sleep eng (Span.of_us 50);
        expect := Some (Service.gettimeofday h.services.(0) ~thread:thread1));
      (fun () ->
        (* this replica only creates the thread much later *)
        Dsim.Fiber.sleep eng (Span.of_ms 5);
        got := Some (Service.gettimeofday h.services.(1) ~thread:thread1));
    ];
  check bool "slow replica adopted the buffered winner" true
    (Time.equal (Option.get !got) (Option.get !expect))

let test_primary_backup_only_primary_sends () =
  let config _ =
    { Service.default_config with mode = Service.Primary_backup }
  in
  let h = make ~config () in
  let results = staggered_reads h ~rounds:8 ~delays_us:[ 150; 150; 150 ] in
  for i = 1 to 2 do
    check bool "backups agree with primary" true
      (List.for_all2 Time.equal results.(0) results.(i))
  done;
  (* group membership order decides the primary; exactly one service sent *)
  let sents =
    Array.to_list
      (Array.map (fun s -> (Service.stats s).Service.ccs_sent) h.services)
  in
  check int "total sends = rounds" 8 (List.fold_left ( + ) 0 sents);
  check int "a single sender" 1
    (List.length (List.filter (fun c -> c > 0) sents))

let test_promotion_resends_ccs () =
  (* The primary crashes before sending the CCS message of the round the
     backups are blocked in; the promoted backup must send it (§3). *)
  let config _ =
    { Service.default_config with mode = Service.Primary_backup }
  in
  let h = make ~config ~latency_us:20 () in
  let eng = h.cluster.Cluster.eng in
  (* determine the primary = first member in group join order *)
  let group = h.cluster.Cluster.server_group in
  let members =
    Gcs.Endpoint.members_of h.cluster.Cluster.nodes.(0).Cluster.endpoint group
  in
  let primary = Netsim.Node_id.to_int (List.hd members) in
  let backups =
    List.filter (fun i -> i <> primary) [ 0; 1; 2 ]
  in
  (* crash the primary's node outright; then backups start a round *)
  Gcs.Endpoint.crash h.cluster.Cluster.nodes.(primary).Cluster.endpoint;
  let vals = Hashtbl.create 2 in
  run_all h
    (List.map
       (fun i () ->
         Dsim.Fiber.sleep eng (Span.of_us (80 + (10 * i)));
         let v = Service.gettimeofday h.services.(i) ~thread:thread1 in
         Hashtbl.replace vals i v)
       backups);
  check int "both backups completed the round" 2 (Hashtbl.length vals);
  match backups with
  | [ a; b ] ->
      check bool "agreed value" true
        (Time.equal (Hashtbl.find vals a) (Hashtbl.find vals b))
  | _ -> assert false

(* In primary/backup operation the clock-related operation is executed by
   every replica (semi-active processing): round 1 before the primary's
   crash, round 2 after it.  Returns per-node [(v1, v2 option)] plus the
   crashed primary's index. *)
let failover_scenario ~offset_tracking =
  let config _ =
    { Service.default_config with mode = Service.Primary_backup; offset_tracking }
  in
  (* every node's clock runs far behind the previous one, so the skew
     dominates the failover duration and roll-back is observable *)
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (-200 * i) }
  in
  let h = make ~config ~clock_config () in
  let eng = h.cluster.Cluster.eng in
  let group = h.cluster.Cluster.server_group in
  let members =
    Gcs.Endpoint.members_of h.cluster.Cluster.nodes.(0).Cluster.endpoint group
  in
  let primary = Netsim.Node_id.to_int (List.hd members) in
  let v1 = Array.make 3 Time.epoch and v2 = Array.make 3 None in
  Dsim.Engine.schedule eng (Span.of_ms 2) (fun () ->
      Gcs.Endpoint.crash h.cluster.Cluster.nodes.(primary).Cluster.endpoint);
  let reader i () =
    Dsim.Fiber.sleep eng (Span.of_us (100 + (i * 30)));
    v1.(i) <- Service.gettimeofday h.services.(i) ~thread:thread1;
    if i <> primary then begin
      Dsim.Fiber.sleep eng (Span.of_ms 30);
      v2.(i) <- Some (Service.gettimeofday h.services.(i) ~thread:thread1)
    end
  in
  run_all h (List.map reader [ 0; 1; 2 ]);
  (h, primary, v1, v2)

let test_baseline_rolls_back_on_failover () =
  (* offset_tracking = false reproduces [9]/[3]: the promoted primary
     answers with its own physical clock, which sits behind the old
     primary's last value. *)
  let h, primary, v1, v2 = failover_scenario ~offset_tracking:false in
  let rolled = ref false in
  Array.iteri
    (fun i v2i ->
      match v2i with
      | Some v2i -> if Time.(v2i < v1.(i)) then rolled := true
      | None -> ())
    v2;
  check bool "baseline clock rolled back at a survivor" true !rolled;
  let total_rollbacks =
    List.fold_left
      (fun acc i ->
        if i = primary then acc
        else acc + (Service.stats h.services.(i)).Service.rollbacks)
      0 [ 0; 1; 2 ]
  in
  check bool "rollback recorded in stats" true (total_rollbacks >= 1)

let test_cts_no_rollback_on_failover () =
  (* identical scenario, with the consistent time service *)
  let h, primary, v1, v2 = failover_scenario ~offset_tracking:true in
  Array.iteri
    (fun i v2i ->
      match v2i with
      | Some v2i ->
          check bool "group clock advanced" true Time.(v2i >= v1.(i))
      | None -> ())
    v2;
  List.iter
    (fun i ->
      if i <> primary then
        check int "no rollback" 0
          (Service.stats h.services.(i)).Service.rollbacks)
    [ 0; 1; 2 ]

let test_mean_delay_compensation_shifts_offset () =
  let mk comp =
    let config _ = { Service.default_config with drift = comp } in
    let h = make ~config () in
    let _ = staggered_reads h ~rounds:20 ~delays_us:[ 100; 220; 340 ] in
    Span.to_us (Service.offset h.services.(0))
  in
  let base = mk Cts.Drift.No_compensation in
  let comp = mk (Cts.Drift.Mean_delay (Span.of_us 120)) in
  check bool "compensated offset sits above uncompensated" true
    (comp > base + 60)

let test_anchored_compensation_bounds_drift () =
  let off_end r =
    let last =
      List.nth r.Scenario.Experiments.samples.(0)
        (List.length r.Scenario.Experiments.samples.(0) - 1)
    in
    Span.to_us
      (Time.diff last.Scenario.Experiments.gc last.Scenario.Experiments.real)
  in
  let run compensation =
    off_end (Scenario.Experiments.skew ~seed:5L ~rounds:300 ~compensation ())
  in
  let uncomp = run `No_compensation in
  let anchored = run (`Anchored (0.1, 0)) in
  check bool "uncompensated group clock falls behind real time" true
    (uncomp < -1000);
  check bool "anchoring keeps the group clock near real time" true
    (abs anchored < abs uncomp / 5)

let prop_agreement_random_schedules =
  QCheck.Test.make ~count:15 ~name:"replicas agree under random schedules"
    QCheck.(pair (int_range 1 1000) (int_range 3 12))
    (fun (seed, rounds) ->
      let h = make ~seed:(Int64.of_int (seed + 17)) () in
      let results =
        staggered_reads h ~rounds ~delays_us:[ 80 + (seed mod 200); 210; 350 ]
      in
      Array.for_all
        (fun r -> List.for_all2 Time.equal results.(0) r)
        results
      &&
      let rec monotone = function
        | a :: (b :: _ as rest) -> Time.(a <= b) && monotone rest
        | [ _ ] | [] -> true
      in
      monotone results.(0))

let suites =
  [
    ( "cts.algorithm",
      [
        Alcotest.test_case "replicas agree" `Quick test_replicas_agree;
        Alcotest.test_case "monotone" `Quick test_group_clock_monotone;
        Alcotest.test_case "offset algebra" `Quick test_offset_algebra;
        Alcotest.test_case "duplicate suppression" `Quick
          test_duplicate_suppression_staggered;
        Alcotest.test_case "figure 4 example" `Quick test_fig4_example;
        Alcotest.test_case "multiple threads" `Quick
          test_multiple_threads_independent;
        Alcotest.test_case "call granularity" `Quick
          test_call_type_granularity;
        Alcotest.test_case "common input buffer" `Quick
          test_common_input_buffer;
        QCheck_alcotest.to_alcotest prop_agreement_random_schedules;
      ] );
    ( "cts.primary_backup",
      [
        Alcotest.test_case "only primary sends" `Quick
          test_primary_backup_only_primary_sends;
        Alcotest.test_case "promotion resends" `Quick
          test_promotion_resends_ccs;
        Alcotest.test_case "baseline rolls back" `Quick
          test_baseline_rolls_back_on_failover;
        Alcotest.test_case "cts never rolls back" `Quick
          test_cts_no_rollback_on_failover;
      ] );
    ( "cts.drift",
      [
        Alcotest.test_case "mean-delay shifts offset" `Quick
          test_mean_delay_compensation_shifts_offset;
        Alcotest.test_case "uncompensated drift" `Slow
          test_anchored_compensation_bounds_drift;
      ] );
  ]
