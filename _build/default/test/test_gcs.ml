(* Tests for the group communication service: group views, ranks, ordered
   delivery to groups, late joiner snapshots, primary component. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Gid = Gcs.Group_id
module Endpoint = Gcs.Endpoint

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let n = Nid.of_int
let g = Gid.of_int

type Gcs.Msg.body += Test_body of string

let body_string = function Test_body s -> s | _ -> "?"

type member = {
  ep : Endpoint.t;
  mutable got : (string * int) list; (* payload, from node *)
  mutable views : Gcs.View.t list;
}

type harness = {
  eng : Dsim.Engine.t;
  net : Endpoint.payload Totem.Wire.t Netsim.Network.t;
  eps : Endpoint.t array;
}

let make_harness ?(seed = 1L) count =
  let eng = Dsim.Engine.create ~seed () in
  let net =
    Netsim.Network.create eng
      {
        Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us 26);
        loss = 0.;
      }
  in
  let eps =
    Array.init count (fun i ->
        Endpoint.create eng net ~me:(n i) ~bootstrap:true ())
  in
  { eng; net; eps }

let run_for h ms =
  Dsim.Engine.run ~until:(Time.add (Dsim.Engine.now h.eng) (Span.of_ms ms)) h.eng

let join h i group =
  let m = { ep = h.eps.(i); got = []; views = [] } in
  Endpoint.join_group h.eps.(i) group ~handler:(fun ev ->
      match ev with
      | Endpoint.Deliver { msg; from_node } ->
          m.got <- (body_string msg.body, Nid.to_int from_node) :: m.got
      | Endpoint.View_change v -> m.views <- v :: m.views
      | Endpoint.Block | Endpoint.Evicted -> ());
  m

let send h i ~src_grp ~dst_grp s =
  Endpoint.multicast h.eps.(i)
    (Gcs.Msg.make ~msg_type:"TEST" ~src_grp ~dst_grp ~conn_id:1 ~msg_seq:0
       (Test_body s))

let payloads m = List.rev_map fst m.got

let test_group_join_and_view () =
  let h = make_harness 3 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  let m0 = join h 0 (g 7) in
  run_for h 20;
  let m1 = join h 1 (g 7) in
  run_for h 50;
  (match m0.views with
  | v :: _ ->
      check int "two members" 2 (Gcs.View.size v);
      check (Alcotest.option int) "rank of n0"
        (Some 0)
        (Gcs.View.rank_of v (n 0));
      check (Alcotest.option int) "rank of n1"
        (Some 1)
        (Gcs.View.rank_of v (n 1))
  | [] -> Alcotest.fail "no view at m0");
  check int "peer agrees on size" 2
    (List.length (Endpoint.members_of h.eps.(2) (g 7)));
  ignore m1

let test_ranks_follow_join_order () =
  let h = make_harness 3 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  (* join in reverse node order: ranks must follow join order, not ids *)
  let _m2 = join h 2 (g 1) in
  run_for h 20;
  let _m1 = join h 1 (g 1) in
  run_for h 20;
  let _m0 = join h 0 (g 1) in
  run_for h 50;
  let members = Endpoint.members_of h.eps.(0) (g 1) in
  check (Alcotest.list int) "join order" [ 2; 1; 0 ]
    (List.map Nid.to_int members)

let test_delivery_to_members_only () =
  let h = make_harness 3 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  let m0 = join h 0 (g 2) and m1 = join h 1 (g 2) in
  let outsider = join h 2 (g 3) in
  run_for h 50;
  send h 2 ~src_grp:(g 3) ~dst_grp:(g 2) "hello";
  run_for h 50;
  check (Alcotest.list Alcotest.string) "member 0 got it" [ "hello" ]
    (payloads m0);
  check (Alcotest.list Alcotest.string) "member 1 got it" [ "hello" ]
    (payloads m1);
  check (Alcotest.list Alcotest.string) "outsider got nothing" []
    (payloads outsider)

let test_sender_receives_own_multicast () =
  let h = make_harness 2 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  let m0 = join h 0 (g 4) in
  run_for h 50;
  send h 0 ~src_grp:(g 4) ~dst_grp:(g 4) "self";
  run_for h 50;
  check (Alcotest.list Alcotest.string) "self delivery" [ "self" ]
    (payloads m0)

let test_total_order_within_group () =
  let h = make_harness ~seed:3L 4 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  let ms = List.init 3 (fun i -> join h i (g 9)) in
  run_for h 50;
  for k = 0 to 29 do
    Dsim.Engine.schedule h.eng (Span.of_us (k * 90)) (fun () ->
        send h (k mod 4) ~src_grp:(g 9) ~dst_grp:(g 9)
          (Printf.sprintf "o%d" k))
  done;
  run_for h 200;
  match ms with
  | m0 :: rest ->
      check int "all arrived" 30 (List.length (payloads m0));
      List.iter
        (fun m ->
          check (Alcotest.list Alcotest.string) "same order" (payloads m0)
            (payloads m))
        rest
  | [] -> assert false

let test_crash_prunes_group () =
  let h = make_harness 3 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  let m0 = join h 0 (g 5) in
  let _m1 = join h 1 (g 5) in
  run_for h 50;
  Endpoint.crash h.eps.(1);
  run_for h 100;
  (match m0.views with
  | v :: _ ->
      check int "pruned to 1" 1 (Gcs.View.size v);
      check (Alcotest.option int) "survivor rank 0" (Some 0)
        (Gcs.View.rank_of v (n 0))
  | [] -> Alcotest.fail "no view");
  (* rank promotion: survivor is now rank 0 = primary *)
  check (Alcotest.list int) "membership" [ 0 ]
    (List.map Nid.to_int (Endpoint.members_of h.eps.(0) (g 5)))

let test_leave_group () =
  let h = make_harness 2 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  let m0 = join h 0 (g 6) and _m1 = join h 1 (g 6) in
  run_for h 50;
  Endpoint.leave_group h.eps.(1) (g 6);
  run_for h 50;
  check (Alcotest.list int) "left" [ 0 ]
    (List.map Nid.to_int (Endpoint.members_of h.eps.(0) (g 6)));
  (match m0.views with
  | v :: _ -> check int "view updated" 1 (Gcs.View.size v)
  | [] -> Alcotest.fail "no view");
  (* messages no longer delivered to the departed member *)
  send h 0 ~src_grp:(g 6) ~dst_grp:(g 6) "post-leave";
  run_for h 50;
  check bool "remaining member gets it" true
    (List.mem "post-leave" (payloads m0))

let test_late_joiner_gets_snapshot () =
  let eng = Dsim.Engine.create () in
  let net =
    Netsim.Network.create eng
      {
        Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us 26);
        loss = 0.;
      }
  in
  let eps =
    Array.init 3 (fun i ->
        Endpoint.create eng net ~me:(n i) ~bootstrap:(i < 2) ())
  in
  let h = { eng; net; eps } in
  Endpoint.start eps.(0);
  Endpoint.start eps.(1);
  run_for h 50;
  let _m0 = join h 0 (g 8) in
  run_for h 50;
  (* node 2 starts late, with no knowledge of groups *)
  Endpoint.start eps.(2);
  run_for h 100;
  check (Alcotest.list int) "snapshot adopted" [ 0 ]
    (List.map Nid.to_int (Endpoint.members_of eps.(2) (g 8)));
  (* ... and it can then join the group itself *)
  let m2 = join h 2 (g 8) in
  run_for h 100;
  check (Alcotest.list int) "joined after snapshot" [ 0; 2 ]
    (List.map Nid.to_int (Endpoint.members_of eps.(0) (g 8)));
  send h 0 ~src_grp:(g 8) ~dst_grp:(g 8) "to-both";
  run_for h 50;
  check bool "late joiner receives" true (List.mem "to-both" (payloads m2))

let test_primary_component_on_partition () =
  let h = make_harness 5 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  check bool "initially primary" true
    (Endpoint.is_primary_component h.eps.(0));
  Netsim.Network.partition h.net
    [ [ n 0; n 1; n 2 ]; [ n 3; n 4 ] ];
  run_for h 150;
  check bool "majority side primary" true
    (Endpoint.is_primary_component h.eps.(0));
  check bool "minority side not primary" false
    (Endpoint.is_primary_component h.eps.(3));
  Netsim.Network.heal h.net;
  run_for h 200;
  for i = 0 to 4 do
    check bool "primary after remerge" true
      (Endpoint.is_primary_component h.eps.(i))
  done

let test_view_reports_primary_flag () =
  let h = make_harness 3 in
  Array.iter Endpoint.start h.eps;
  run_for h 50;
  let m2 = join h 2 (g 11) in
  run_for h 50;
  Netsim.Network.partition h.net [ [ n 0; n 1 ]; [ n 2 ] ];
  run_for h 150;
  match m2.views with
  | v :: _ -> check bool "minority view flagged" false v.Gcs.View.primary
  | [] -> Alcotest.fail "no view after partition"

let suites =
  [
    ( "gcs.groups",
      [
        Alcotest.test_case "join and view" `Quick test_group_join_and_view;
        Alcotest.test_case "ranks by join order" `Quick
          test_ranks_follow_join_order;
        Alcotest.test_case "members-only delivery" `Quick
          test_delivery_to_members_only;
        Alcotest.test_case "self delivery" `Quick
          test_sender_receives_own_multicast;
        Alcotest.test_case "total order" `Quick test_total_order_within_group;
        Alcotest.test_case "crash prunes" `Quick test_crash_prunes_group;
        Alcotest.test_case "leave" `Quick test_leave_group;
        Alcotest.test_case "late joiner snapshot" `Quick
          test_late_joiner_gets_snapshot;
      ] );
    ( "gcs.primary",
      [
        Alcotest.test_case "partition" `Quick
          test_primary_component_on_partition;
        Alcotest.test_case "view primary flag" `Quick
          test_view_reports_primary_flag;
      ] );
  ]
