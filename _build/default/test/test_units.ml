(* Fine-grained unit tests of the CCS handler, CCS messages, drift
   strategies, call types, thread ids and group views — the pieces the
   integration suites exercise only indirectly. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let thread1 = Cts.Thread_id.of_int 1

let payload ?(thread = thread1) ?(call = Cts.Call_type.Gettimeofday) round us =
  { Cts.Ccs_msg.thread; round; proposal = Time.of_us us; call }

(* ------------------------------------------------------------------ *)
(* Ccs_handler *)

let with_handler f =
  let eng = Dsim.Engine.create () in
  let sent = ref [] in
  let suppressed = ref 0 in
  let h =
    Cts.Ccs_handler.create eng ~thread:thread1
      ~send:(fun p -> sent := p :: !sent)
      ~on_suppress:(fun () -> incr suppressed)
      ()
  in
  f eng h sent suppressed

let test_handler_sends_when_buffer_empty () =
  with_handler (fun eng h sent _ ->
      let got = ref None in
      Dsim.Fiber.spawn eng (fun () ->
          got :=
            Some
              (Cts.Ccs_handler.get_grp_clock_time h
                 ~proposal:(Time.of_us 42) ~call:Cts.Call_type.Gettimeofday));
      Dsim.Engine.run eng;
      check int "one send" 1 (List.length !sent);
      check bool "thread blocked until message" true (!got = None);
      (* the winner's message arrives *)
      Cts.Ccs_handler.recv h (payload 1 40);
      Dsim.Engine.run eng;
      match !got with
      | Some w -> check int "adopted winner" 40 (Time.to_us w.Cts.Ccs_msg.proposal)
      | None -> Alcotest.fail "round never completed")

let test_handler_suppresses_when_buffered () =
  with_handler (fun eng h sent suppressed ->
      Cts.Ccs_handler.recv h (payload 1 33);
      let got = ref None in
      Dsim.Fiber.spawn eng (fun () ->
          got :=
            Some
              (Cts.Ccs_handler.get_grp_clock_time h
                 ~proposal:(Time.of_us 99) ~call:Cts.Call_type.Gettimeofday));
      Dsim.Engine.run eng;
      check int "no send" 0 (List.length !sent);
      check int "suppression recorded" 1 !suppressed;
      match !got with
      | Some w ->
          check int "buffered winner adopted without blocking" 33
            (Time.to_us w.Cts.Ccs_msg.proposal)
      | None -> Alcotest.fail "did not complete")

let test_handler_duplicate_rounds_discarded () =
  with_handler (fun _eng h _ _ ->
      Cts.Ccs_handler.recv h (payload 1 10);
      Cts.Ccs_handler.recv h (payload 1 20);
      (* duplicate for round 1 *)
      check int "only the first buffered" 1 (Cts.Ccs_handler.buffered h);
      Cts.Ccs_handler.recv h (payload 2 30);
      check int "next round accepted" 2 (Cts.Ccs_handler.buffered h);
      Cts.Ccs_handler.recv h (payload 1 40);
      (* stale round *)
      check int "stale round discarded" 2 (Cts.Ccs_handler.buffered h))

let test_handler_round_settled () =
  with_handler (fun _eng h _ _ ->
      check bool "round 1 open" false (Cts.Ccs_handler.round_settled h 1);
      Cts.Ccs_handler.recv h (payload 1 10);
      check bool "round 1 settled" true (Cts.Ccs_handler.round_settled h 1);
      check bool "round 2 open" false (Cts.Ccs_handler.round_settled h 2))

let test_handler_advance_to () =
  with_handler (fun _eng h _ _ ->
      Cts.Ccs_handler.recv h (payload 1 10);
      Cts.Ccs_handler.recv h (payload 2 20);
      Cts.Ccs_handler.recv h (payload 3 30);
      Cts.Ccs_handler.advance_to h ~round:2;
      check int "rounds <= 2 dropped" 1 (Cts.Ccs_handler.buffered h);
      check int "round counter moved" 2 (Cts.Ccs_handler.round h);
      check bool "peek is round 3" true
        (Cts.Ccs_handler.peek_round h = Some 3);
      Alcotest.check_raises "cannot go backwards"
        (Invalid_argument "Ccs_handler.advance_to: target behind current round")
        (fun () -> Cts.Ccs_handler.advance_to h ~round:1))

let test_handler_wrong_thread_rejected () =
  with_handler (fun _eng h _ _ ->
      Alcotest.check_raises "wrong thread"
        (Invalid_argument "Ccs_handler.recv: wrong thread") (fun () ->
          Cts.Ccs_handler.recv h
            (payload ~thread:(Cts.Thread_id.of_int 2) 1 10)))

let prop_handler_fifo_rounds =
  QCheck.Test.make ~count:100
    ~name:"handler buffers strictly increasing rounds in order"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 30))
    (fun rounds ->
      with_handler (fun _eng h _ _ ->
          List.iter (fun r -> Cts.Ccs_handler.recv h (payload r (r * 10))) rounds;
          (* the buffer holds a strictly increasing subsequence: each
             element accepted only if greater than everything before *)
          let expected =
            List.fold_left
              (fun acc r -> if r > List.fold_left max 0 acc then r :: acc else acc)
              [] rounds
            |> List.rev
          in
          List.length expected = Cts.Ccs_handler.buffered h))

(* ------------------------------------------------------------------ *)
(* Ccs_msg / Call_type / Thread_id *)

let test_ccs_msg_roundtrip () =
  let group = Gcs.Group_id.of_int 3 in
  let p = payload 7 123 in
  let msg = Cts.Ccs_msg.make ~group p in
  check bool "same group both ways" true
    (Gcs.Group_id.equal msg.Gcs.Msg.header.src_grp
       msg.Gcs.Msg.header.dst_grp);
  check int "round in msg_seq_num" 7 msg.Gcs.Msg.header.msg_seq;
  check Alcotest.string "msg_type" "CCS" msg.Gcs.Msg.header.msg_type;
  match Cts.Ccs_msg.of_msg msg with
  | Some p' -> check int "payload preserved" 123 (Time.to_us p'.proposal)
  | None -> Alcotest.fail "of_msg failed"

let test_ccs_msg_of_other_body () =
  let other =
    Gcs.Msg.make ~msg_type:"REQUEST" ~src_grp:(Gcs.Group_id.of_int 1)
      ~dst_grp:(Gcs.Group_id.of_int 2) ~conn_id:1 ~msg_seq:1
      (Rpc.Wire.Request { op = "x"; arg = ""; ts = None })
  in
  check bool "non-CCS ignored" true (Cts.Ccs_msg.of_msg other = None)

let test_call_types_distinct () =
  let all = Cts.Call_type.[ Gettimeofday; Time; Ftime ] in
  let ids = List.map Cts.Call_type.type_id all in
  check int "distinct type ids" 3 (List.length (List.sort_uniq compare ids));
  check bool "granularities ordered" true
    Span.(
      Cts.Call_type.granularity Cts.Call_type.Gettimeofday
      < Cts.Call_type.granularity Cts.Call_type.Ftime
      && Cts.Call_type.granularity Cts.Call_type.Ftime
         < Cts.Call_type.granularity Cts.Call_type.Time)

let test_thread_id_reserved () =
  check int "recovery thread is 0" 0 (Cts.Thread_id.to_int Cts.Thread_id.recovery);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Thread_id.of_int: negative") (fun () ->
      ignore (Cts.Thread_id.of_int (-1)))

(* ------------------------------------------------------------------ *)
(* Drift *)

let test_drift_none_identity () =
  let p = Time.of_us 500 in
  check bool "proposal unchanged" true
    (Time.equal (Cts.Drift.adjust_proposal Cts.Drift.No_compensation p) p);
  check bool "offset unchanged" true
    (Span.equal
       (Cts.Drift.adjust_offset Cts.Drift.No_compensation (Span.of_us 7))
       (Span.of_us 7))

let test_drift_mean_delay_offsets_only () =
  let d = Cts.Drift.Mean_delay (Span.of_us 120) in
  let p = Time.of_us 500 in
  check bool "proposal untouched" true
    (Time.equal (Cts.Drift.adjust_proposal d p) p);
  check int "offset shifted" 127
    (Span.to_us (Cts.Drift.adjust_offset d (Span.of_us 7)))

let test_drift_anchored_pulls_toward_source () =
  let eng = Dsim.Engine.create () in
  let source = Clock.External_source.create eng ~max_skew:Span.zero in
  let d = Cts.Drift.Anchored { source; gain = 0.5 } in
  Dsim.Engine.schedule eng (Span.of_us 1000) (fun () ->
      (* proposal 400 us behind real time (1000): gain 0.5 pulls halfway *)
      let adjusted = Cts.Drift.adjust_proposal d (Time.of_us 600) in
      check int "halfway to real time" 800 (Time.to_us adjusted);
      (* offsets untouched by anchoring *)
      check int "offset unchanged" 5
        (Span.to_us (Cts.Drift.adjust_offset d (Span.of_us 5))));
  Dsim.Engine.run eng

(* ------------------------------------------------------------------ *)
(* View *)

let test_view_ranks () =
  let v =
    {
      Gcs.View.group = Gcs.Group_id.of_int 1;
      members = [ (Nid.of_int 5, 0); (Nid.of_int 2, 1); (Nid.of_int 9, 2) ];
      primary = true;
    }
  in
  check int "size" 3 (Gcs.View.size v);
  check (Alcotest.option int) "rank by join order" (Some 1)
    (Gcs.View.rank_of v (Nid.of_int 2));
  check (Alcotest.option int) "absent member" None
    (Gcs.View.rank_of v (Nid.of_int 7));
  check (Alcotest.list int) "nodes in rank order" [ 5; 2; 9 ]
    (List.map Nid.to_int (Gcs.View.members_nodes v))

let suites =
  [
    ( "cts.units",
      [
        Alcotest.test_case "handler sends" `Quick
          test_handler_sends_when_buffer_empty;
        Alcotest.test_case "handler suppresses" `Quick
          test_handler_suppresses_when_buffered;
        Alcotest.test_case "handler dedup" `Quick
          test_handler_duplicate_rounds_discarded;
        Alcotest.test_case "round settled" `Quick test_handler_round_settled;
        Alcotest.test_case "advance_to" `Quick test_handler_advance_to;
        Alcotest.test_case "wrong thread" `Quick
          test_handler_wrong_thread_rejected;
        QCheck_alcotest.to_alcotest prop_handler_fifo_rounds;
        Alcotest.test_case "ccs msg roundtrip" `Quick test_ccs_msg_roundtrip;
        Alcotest.test_case "ccs msg filter" `Quick test_ccs_msg_of_other_body;
        Alcotest.test_case "call types" `Quick test_call_types_distinct;
        Alcotest.test_case "thread ids" `Quick test_thread_id_reserved;
        Alcotest.test_case "drift none" `Quick test_drift_none_identity;
        Alcotest.test_case "drift mean-delay" `Quick
          test_drift_mean_delay_offsets_only;
        Alcotest.test_case "drift anchored" `Quick
          test_drift_anchored_pulls_toward_source;
        Alcotest.test_case "view ranks" `Quick test_view_ranks;
      ] );
  ]
