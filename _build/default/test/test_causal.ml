(* Tests for the paper's §5 extension: carrying the group clock as a
   timestamp in inter-group messages so that causal relations between the
   group clocks of different groups are maintained. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Gid = Gcs.Group_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let check = Alcotest.check
let bool = Alcotest.bool

(* Two replicated time-server groups on one ring:
   group A on nodes 1-2 (clocks far AHEAD), group B on nodes 3-4 (clocks at
   real time).  The client on node 0 reads A's group clock, then reads B's.
   With the causal-timestamp extension B's reading can never be smaller. *)
type rig = {
  cluster : Cluster.t;
  client_a : Rpc.Client.t;
  client_b : Rpc.Client.t;
}

let group_a = Gid.of_int 10
let group_b = Gid.of_int 11
let cgroup_a = Gid.of_int 20
let cgroup_b = Gid.of_int 21

let make ?(seed = 1L) () =
  let clock_config i =
    if i = 1 || i = 2 then
      (* group A's hosts run half a second ahead *)
      { Clock.Hwclock.default_config with offset = Span.of_ms 500 }
    else Clock.Hwclock.default_config
  in
  let cluster = Cluster.create ~seed ~clock_config ~nodes:5 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3; 4 ]);
  let mk_replicas group nodes =
    let config =
      {
        Replica.default_config with
        initial_members = List.map Nid.of_int nodes;
      }
    in
    List.map
      (fun node ->
        Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint ~group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:(Scenario.Apps.time_server cluster ~node ())
          ())
      nodes
  in
  let _ra = mk_replicas group_a [ 1; 2 ] in
  let _rb = mk_replicas group_b [ 3; 4 ] in
  let client_a =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint ~my_group:cgroup_a
      ~server_group:group_a ()
  in
  let client_b =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint ~my_group:cgroup_b
      ~server_group:group_b ()
  in
  Cluster.run_until cluster (fun () ->
      let members g =
        List.length
          (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint g)
      in
      members group_a = 2 && members group_b = 2);
  { cluster; client_a; client_b }

let run_client rig f =
  let finished = ref false in
  Dsim.Fiber.spawn rig.cluster.Cluster.eng (fun () ->
      f ();
      finished := true);
  Cluster.run_until ~limit:(Span.of_sec 60) rig.cluster (fun () -> !finished)

let read client =
  Time.of_ns
    (int_of_string (Rpc.Client.invoke client ~op:"gettimeofday" ~arg:""))

let test_without_bridge_clocks_diverge () =
  (* sanity: the two group clocks genuinely disagree *)
  let rig = make () in
  run_client rig (fun () ->
      let ta = read rig.client_a in
      let tb = read rig.client_b in
      check bool "B's group clock is far behind A's" true
        Span.(Time.diff ta tb > Span.of_ms 400))

let test_bridged_timestamp_preserves_causality () =
  let rig = make () in
  run_client rig (fun () ->
      let ta = read rig.client_a in
      (* carry A's group clock into the session with B (§5) *)
      (match Rpc.Client.last_timestamp rig.client_a with
      | Some ts -> Rpc.Client.observe_timestamp rig.client_b ts
      | None -> Alcotest.fail "no timestamp from group A");
      let tb = read rig.client_b in
      check bool "B's reading causally follows A's" true Time.(tb >= ta);
      (* and B's clock keeps going from there: a later read is larger *)
      let tb2 = read rig.client_b in
      check bool "B stays monotone" true Time.(tb2 >= tb))

let test_floor_propagates_to_all_replicas () =
  (* After the timestamped request, both B replicas share the floor: a
     failover does not lose it. *)
  let rig = make () in
  run_client rig (fun () ->
      let ta = read rig.client_a in
      (match Rpc.Client.last_timestamp rig.client_a with
      | Some ts -> Rpc.Client.observe_timestamp rig.client_b ts
      | None -> ());
      let tb = read rig.client_b in
      check bool "causal" true Time.(tb >= ta);
      (* crash B's primary; the promoted replica observed the same
         timestamp in the same delivery order *)
      Gcs.Endpoint.crash rig.cluster.Cluster.nodes.(3).Cluster.endpoint;
      Dsim.Fiber.sleep rig.cluster.Cluster.eng (Span.of_ms 30);
      let tb2 =
        Time.of_ns
          (int_of_string
             (Rpc.Client.invoke ~timeout:(Span.of_ms 500) rig.client_b
                ~op:"gettimeofday" ~arg:""))
      in
      check bool "floor survives failover" true Time.(tb2 >= tb))

let test_replies_carry_timestamps () =
  let rig = make () in
  run_client rig (fun () ->
      check bool "no timestamp before any reply" true
        (Rpc.Client.last_timestamp rig.client_a = None);
      let ta = read rig.client_a in
      match Rpc.Client.last_timestamp rig.client_a with
      | Some ts -> check bool "timestamp matches reading" true Time.(ts >= ta)
      | None -> Alcotest.fail "reply carried no timestamp")

let suites =
  [
    ( "cts.causal_groups",
      [
        Alcotest.test_case "groups diverge without bridge" `Quick
          test_without_bridge_clocks_diverge;
        Alcotest.test_case "bridged timestamp preserves causality" `Quick
          test_bridged_timestamp_preserves_causality;
        Alcotest.test_case "floor propagates" `Quick
          test_floor_propagates_to_all_replicas;
        Alcotest.test_case "replies carry timestamps" `Quick
          test_replies_carry_timestamps;
      ] );
  ]
