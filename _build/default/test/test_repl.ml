(* Tests for the replication infrastructure: RPC, the three replication
   styles, failover, checkpoints, and the §3.2 state transfer with the
   special CCS round. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let str = Alcotest.string

type rig = {
  cluster : Cluster.t;
  replicas : Replica.t array;
  client : Rpc.Client.t;
}

(* A counter app: "incr" bumps and returns the counter, "get" reads it,
   "stamp" returns "<counter>@<group clock ns>". *)
let counter_app service =
  let counter = ref 0 in
  {
    Replica.handle =
      (fun ~thread ~op ~arg ->
        match op with
        | "incr" ->
            incr counter;
            string_of_int !counter
        | "get" -> string_of_int !counter
        | "stamp" ->
            incr counter;
            Printf.sprintf "%d@%d" !counter
              (Time.to_ns (Cts.Service.gettimeofday service ~thread))
        | _ -> arg);
    snapshot = (fun () -> string_of_int !counter);
    restore = (fun s -> counter := int_of_string s);
  }

let make ?(seed = 1L) ?(replicas = 3) ?(style = Replica.Active)
    ?(checkpoint_interval = 5) ?(offset_tracking = true) ?clock_config () =
  let cluster =
    Cluster.create ~seed ?clock_config ~nodes:(replicas + 1) ()
  in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:(List.init (replicas + 1) Fun.id));
  let config =
    {
      Replica.default_config with
      style;
      checkpoint_interval;
      offset_tracking;
      initial_members = List.init replicas (fun k -> Nid.of_int (k + 1));
    }
  in
  let reps =
    Array.init replicas (fun k ->
        let node = k + 1 in
        let r =
          Replica.create cluster.Cluster.eng
            ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
            ~group:cluster.Cluster.server_group
            ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
            ~app:counter_app ()
        in
        (* join order (and hence primary rank) follows node order *)
        Cluster.run_for cluster (Span.of_ms 2);
        r)
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = replicas);
  { cluster; replicas = reps; client }

let run_client rig f =
  let finished = ref false in
  Dsim.Fiber.spawn rig.cluster.Cluster.eng (fun () ->
      f rig.client;
      finished := true);
  Cluster.run_until ~limit:(Span.of_sec 60) rig.cluster (fun () -> !finished);
  (* let trailing replies and slower replicas settle before assertions *)
  Cluster.run_for rig.cluster (Span.of_ms 20)

(* ------------------------------------------------------------------ *)

let test_active_basic_rpc () =
  let rig = make () in
  run_client rig (fun client ->
      check str "first" "1" (Rpc.Client.invoke client ~op:"incr" ~arg:"");
      check str "second" "2" (Rpc.Client.invoke client ~op:"incr" ~arg:"");
      check str "echo" "hello" (Rpc.Client.invoke client ~op:"echo" ~arg:"hello"));
  (* all replicas processed everything *)
  Array.iter
    (fun r -> check int "processed" 3 (Replica.processed r))
    rig.replicas;
  (* active replication: 3 replicas reply, client keeps the first *)
  check int "duplicate replies suppressed" 6
    (Rpc.Client.duplicate_replies rig.client)

let test_active_state_identical () =
  let rig = make ~seed:3L () in
  run_client rig (fun client ->
      for _ = 1 to 20 do
        ignore (Rpc.Client.invoke client ~op:"incr" ~arg:"" : string)
      done);
  Array.iter
    (fun r -> check str "state" "20" (Replica.snapshot r))
    rig.replicas

let test_client_timeout () =
  let rig = make () in
  (* crash everything: the invocation must time out *)
  Array.iter Replica.crash rig.replicas;
  run_client rig (fun client ->
      Alcotest.check_raises "timeout" Rpc.Client.Timeout (fun () ->
          ignore
            (Rpc.Client.invoke ~timeout:(Span.of_ms 10) client ~op:"incr"
               ~arg:""
              : string)))

let test_active_survives_crash () =
  let rig = make () in
  run_client rig (fun client ->
      for _ = 1 to 5 do
        ignore (Rpc.Client.invoke client ~op:"incr" ~arg:"" : string)
      done;
      Replica.crash rig.replicas.(0);
      for i = 6 to 10 do
        let r =
          Rpc.Client.invoke ~timeout:(Span.of_ms 200) client ~op:"incr" ~arg:""
        in
        check str "continues counting" (string_of_int i) r
      done);
  check str "survivor state" "10" (Replica.snapshot rig.replicas.(1))

let test_active_clock_reads_consistent () =
  (* replicas with wildly different physical clocks still agree on stamps *)
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (17 * i) }
  in
  let rig = make ~clock_config () in
  run_client rig (fun client ->
      let s1 = Rpc.Client.invoke client ~op:"stamp" ~arg:"" in
      let s2 = Rpc.Client.invoke client ~op:"stamp" ~arg:"" in
      check bool "distinct stamps" true (s1 <> s2));
  (* all replicas produced the same reply for each request: states match *)
  let s0 = Replica.snapshot rig.replicas.(0) in
  Array.iter (fun r -> check str "same state" s0 (Replica.snapshot r)) rig.replicas;
  (* and no replica saw the clock go backwards *)
  Array.iter
    (fun r ->
      check int "no rollbacks" 0
        (Cts.Service.stats (Replica.service r)).Cts.Service.rollbacks)
    rig.replicas

let test_passive_only_primary_processes () =
  let rig = make ~style:Replica.Passive () in
  run_client rig (fun client ->
      for _ = 1 to 4 do
        ignore (Rpc.Client.invoke client ~op:"incr" ~arg:"" : string)
      done);
  let processed =
    Array.to_list (Array.map Replica.processed rig.replicas)
  in
  let actives = List.filter (fun p -> p = 4) processed in
  check int "exactly one replica processed" 1 (List.length actives)

let test_passive_failover_replays_log () =
  let rig = make ~style:Replica.Passive ~checkpoint_interval:3 () in
  let primary =
    Array.to_list rig.replicas |> List.find Replica.is_primary
  in
  run_client rig (fun client ->
      for _ = 1 to 7 do
        ignore (Rpc.Client.invoke client ~op:"incr" ~arg:"" : string)
      done;
      Replica.crash primary;
      (* the new primary must replay the logged requests beyond the last
         checkpoint before serving new ones *)
      let r =
        Rpc.Client.invoke ~timeout:(Span.of_ms 500) client ~op:"incr" ~arg:""
      in
      check str "no lost or duplicated increments" "8" r)

let test_passive_failover_clock_monotone () =
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (-3 * i) }
  in
  let rig = make ~style:Replica.Passive ~clock_config () in
  let primary =
    Array.to_list rig.replicas |> List.find Replica.is_primary
  in
  let stamp_time s =
    match String.split_on_char '@' s with
    | [ _; ns ] -> Time.of_ns (int_of_string ns)
    | _ -> Alcotest.fail "bad stamp"
  in
  run_client rig (fun client ->
      let v1 = stamp_time (Rpc.Client.invoke client ~op:"stamp" ~arg:"") in
      Replica.crash primary;
      let v2 =
        stamp_time
          (Rpc.Client.invoke ~timeout:(Span.of_ms 500) client ~op:"stamp"
             ~arg:"")
      in
      check bool "group clock did not roll back across failover" true
        Time.(v2 >= v1))

let test_passive_baseline_rolls_back () =
  (* same scenario with the prior-work clock service: the promoted backup
     answers with its own (much slower) physical clock *)
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (-200 * i) }
  in
  let rig =
    make ~style:Replica.Passive ~offset_tracking:false ~clock_config ()
  in
  let primary =
    Array.to_list rig.replicas |> List.find Replica.is_primary
  in
  let stamp_time s =
    match String.split_on_char '@' s with
    | [ _; ns ] -> Time.of_ns (int_of_string ns)
    | _ -> Alcotest.fail "bad stamp"
  in
  run_client rig (fun client ->
      let v1 = stamp_time (Rpc.Client.invoke client ~op:"stamp" ~arg:"") in
      Replica.crash primary;
      let v2 =
        stamp_time
          (Rpc.Client.invoke ~timeout:(Span.of_ms 500) client ~op:"stamp"
             ~arg:"")
      in
      check bool "baseline rolled back" true Time.(v2 < v1))

let test_semi_active_all_process_primary_replies () =
  let rig = make ~style:Replica.Semi_active () in
  run_client rig (fun client ->
      for _ = 1 to 6 do
        ignore (Rpc.Client.invoke client ~op:"incr" ~arg:"" : string)
      done);
  Array.iter
    (fun r -> check int "all processed" 6 (Replica.processed r))
    rig.replicas;
  check int "only primary replied (no duplicates)" 0
    (Rpc.Client.duplicate_replies rig.client)

let test_semi_active_failover () =
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (-5 * i) }
  in
  let rig = make ~style:Replica.Semi_active ~clock_config () in
  let primary =
    Array.to_list rig.replicas |> List.find Replica.is_primary
  in
  run_client rig (fun client ->
      let s1 = Rpc.Client.invoke client ~op:"stamp" ~arg:"" in
      Replica.crash primary;
      let s2 =
        Rpc.Client.invoke ~timeout:(Span.of_ms 500) client ~op:"stamp" ~arg:""
      in
      let t s =
        match String.split_on_char '@' s with
        | [ c; ns ] -> (int_of_string c, int_of_string ns)
        | _ -> Alcotest.fail "bad stamp"
      in
      let c1, n1 = t s1 and c2, n2 = t s2 in
      check int "counter continues" (c1 + 1) c2;
      check bool "clock monotone" true (n2 >= n1))

let test_state_transfer_new_replica () =
  (* A3: add a replica to a running active group (§3.2). *)
  let r = Scenario.Experiments.recovery ~seed:4L ~readings:30 () in
  check bool "joiner clock initialized" true r.joiner_initialized;
  check bool "joiner state matches group" true r.joiner_state_matches;
  check bool "group clock monotone across join" true r.group_clock_monotone

let test_state_transfer_counts () =
  let r = Scenario.Experiments.recovery ~seed:9L ~readings:20 () in
  check bool "existing replicas had processed before join" true
    (Array.for_all (fun c -> c >= 10) r.pre_join_readings)

let prop_active_counter_linearizable =
  QCheck.Test.make ~count:10 ~name:"counter increments sequentially, any seed"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rig = make ~seed:(Int64.of_int seed) () in
      let ok = ref true in
      run_client rig (fun client ->
          for i = 1 to 12 do
            let r = Rpc.Client.invoke client ~op:"incr" ~arg:"" in
            if r <> string_of_int i then ok := false
          done);
      !ok)

let suites =
  [
    ( "repl.active",
      [
        Alcotest.test_case "basic rpc" `Quick test_active_basic_rpc;
        Alcotest.test_case "state identical" `Quick test_active_state_identical;
        Alcotest.test_case "client timeout" `Quick test_client_timeout;
        Alcotest.test_case "survives crash" `Quick test_active_survives_crash;
        Alcotest.test_case "consistent stamps" `Quick
          test_active_clock_reads_consistent;
        QCheck_alcotest.to_alcotest prop_active_counter_linearizable;
      ] );
    ( "repl.passive",
      [
        Alcotest.test_case "primary processes" `Quick
          test_passive_only_primary_processes;
        Alcotest.test_case "failover replay" `Quick
          test_passive_failover_replays_log;
        Alcotest.test_case "failover clock monotone" `Quick
          test_passive_failover_clock_monotone;
        Alcotest.test_case "baseline rolls back" `Quick
          test_passive_baseline_rolls_back;
      ] );
    ( "repl.semi_active",
      [
        Alcotest.test_case "all process, primary replies" `Quick
          test_semi_active_all_process_primary_replies;
        Alcotest.test_case "failover" `Quick test_semi_active_failover;
      ] );
    ( "repl.recovery",
      [
        Alcotest.test_case "state transfer" `Quick
          test_state_transfer_new_replica;
        Alcotest.test_case "pre-join progress" `Quick
          test_state_transfer_counts;
      ] );
  ]
