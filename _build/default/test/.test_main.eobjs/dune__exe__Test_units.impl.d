test/test_units.ml: Alcotest Clock Cts Dsim Gcs Gen List Netsim QCheck QCheck_alcotest Rpc
