test/test_dsim.ml: Alcotest Array Dsim Format Fun Gen List Option QCheck QCheck_alcotest
