test/test_faults.ml: Alcotest Array Clock Dsim Fun Gcs List Netsim Repl Rpc Scenario
