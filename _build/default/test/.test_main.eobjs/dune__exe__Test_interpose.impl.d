test/test_interpose.ml: Alcotest Array Clock Cts Dsim Gcs List Netsim Repl Rpc Scenario
