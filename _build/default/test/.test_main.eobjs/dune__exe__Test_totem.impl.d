test/test_totem.ml: Alcotest Array Dsim Int64 List Netsim Option Printf QCheck QCheck_alcotest Totem
