test/test_netsim.ml: Alcotest Array Dsim List Netsim QCheck QCheck_alcotest Stats
