test/test_cts.ml: Alcotest Array Clock Cts Dsim Fun Gcs Hashtbl Int64 List Netsim Option Printf QCheck QCheck_alcotest Scenario
