test/test_props.ml: Alcotest Array Clock Cts Dsim Fun Gcs Gen Int64 List Netsim QCheck QCheck_alcotest Repl Rpc Scenario Totem
