test/test_totem2.ml: Alcotest Array Dsim Format Gen Int64 List Netsim Option Printf QCheck QCheck_alcotest String Totem
