test/test_gcs.ml: Alcotest Array Dsim Gcs List Netsim Printf Totem
