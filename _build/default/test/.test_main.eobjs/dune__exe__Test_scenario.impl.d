test/test_scenario.ml: Alcotest Array Dsim Float List Printf Repl Scenario Stats
