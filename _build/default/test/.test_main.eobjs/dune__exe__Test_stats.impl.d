test/test_stats.ml: Alcotest Gen List QCheck QCheck_alcotest Stats
