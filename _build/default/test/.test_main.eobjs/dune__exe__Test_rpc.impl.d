test/test_rpc.ml: Alcotest Array Dsim Fun Gcs List Netsim Repl Rpc Scenario
