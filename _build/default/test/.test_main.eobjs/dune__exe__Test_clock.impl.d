test/test_clock.ml: Alcotest Clock Dsim QCheck QCheck_alcotest
