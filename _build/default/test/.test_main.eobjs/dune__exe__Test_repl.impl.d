test/test_repl.ml: Alcotest Array Clock Cts Dsim Fun Gcs Int64 List Netsim Printf QCheck QCheck_alcotest Repl Rpc Scenario String
