test/test_causal.ml: Alcotest Array Clock Dsim Gcs List Netsim Repl Rpc Scenario
