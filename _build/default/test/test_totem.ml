(* Tests for the Totem single-ring protocol: total order, reliability under
   loss, membership changes, recovery, partitions. *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let n = Nid.of_int

type harness = {
  eng : Dsim.Engine.t;
  net : string Totem.Wire.t Netsim.Network.t;
  nodes : string Totem.Node.t array;
  log : (int * string) list ref array; (* delivered (seq within ring ignored) *)
  views : Nid.t list list ref array;
}

let make_harness ?(seed = 1L) ?(latency = 26) ?(loss = 0.) count =
  let eng = Dsim.Engine.create ~seed () in
  let net =
    Netsim.Network.create eng
      { Netsim.Network.latency = Netsim.Latency.Constant (Span.of_us latency); loss }
  in
  let log = Array.init count (fun _ -> ref []) in
  let views = Array.init count (fun _ -> ref []) in
  let nodes =
    Array.init count (fun i ->
        Totem.Node.create eng net ~me:(n i)
          ~handler:(fun ev ->
            match ev with
            | Totem.Node.Deliver { seq; payload; _ } ->
                log.(i) := (seq, payload) :: !(log.(i))
            | Totem.Node.View { members; _ } ->
                views.(i) := members :: !(views.(i))
            | Totem.Node.Blocked -> ())
          ())
  in
  { eng; net; nodes; log; views }

let start_all h = Array.iter Totem.Node.start h.nodes
let run_for h ms = Dsim.Engine.run ~until:(Time.add (Dsim.Engine.now h.eng) (Span.of_ms ms)) h.eng
let delivered h i = List.rev_map snd !(h.log.(i))
let latest_view h i = match !(h.views.(i)) with [] -> [] | v :: _ -> v

let test_initial_ring_forms () =
  let h = make_harness 4 in
  start_all h;
  run_for h 50;
  for i = 0 to 3 do
    check bool "operational" true (Totem.Node.is_operational h.nodes.(i));
    check int "view size" 4 (List.length (latest_view h i))
  done;
  (* all nodes agree on the ring id *)
  let r0 = Option.get (Totem.Node.ring h.nodes.(0)) in
  for i = 1 to 3 do
    check bool "same ring" true
      (Totem.Ring_id.equal r0 (Option.get (Totem.Node.ring h.nodes.(i))))
  done

let test_single_node_ring () =
  let h = make_harness 1 in
  start_all h;
  run_for h 50;
  check bool "singleton operational" true
    (Totem.Node.is_operational h.nodes.(0));
  Totem.Node.multicast h.nodes.(0) "solo";
  run_for h 50;
  check (Alcotest.list Alcotest.string) "self delivery" [ "solo" ]
    (delivered h 0)

let test_total_order_basic () =
  let h = make_harness 3 in
  start_all h;
  run_for h 50;
  Totem.Node.multicast h.nodes.(0) "a";
  Totem.Node.multicast h.nodes.(1) "b";
  Totem.Node.multicast h.nodes.(2) "c";
  run_for h 50;
  let d0 = delivered h 0 in
  check int "all delivered" 3 (List.length d0);
  for i = 1 to 2 do
    check (Alcotest.list Alcotest.string) "same order" d0 (delivered h i)
  done

let test_total_order_many_senders () =
  let h = make_harness ~seed:7L 4 in
  start_all h;
  run_for h 50;
  (* staggered bursts from all nodes *)
  for round = 0 to 24 do
    Dsim.Engine.schedule h.eng (Span.of_us (round * 130)) (fun () ->
        for i = 0 to 3 do
          Totem.Node.multicast h.nodes.(i)
            (Printf.sprintf "m%d.%d" i round)
        done)
  done;
  run_for h 200;
  let d0 = delivered h 0 in
  check int "count" 100 (List.length d0);
  for i = 1 to 3 do
    check (Alcotest.list Alcotest.string) "agreed order" d0 (delivered h i)
  done

let test_sender_order_preserved () =
  (* FIFO from a single sender is implied by total order + seq assignment *)
  let h = make_harness 3 in
  start_all h;
  run_for h 50;
  for k = 1 to 20 do
    Totem.Node.multicast h.nodes.(1) (string_of_int k)
  done;
  run_for h 100;
  let mine = List.filter_map int_of_string_opt (delivered h 0) in
  check (Alcotest.list int) "fifo" (List.init 20 (fun i -> i + 1)) mine

let test_reliability_under_loss () =
  let h = make_harness ~seed:3L ~loss:0.05 4 in
  start_all h;
  run_for h 100;
  for k = 0 to 49 do
    Dsim.Engine.schedule h.eng (Span.of_us (k * 200)) (fun () ->
        Totem.Node.multicast h.nodes.(k mod 4) (Printf.sprintf "p%d" k))
  done;
  run_for h 400;
  let d0 = delivered h 0 in
  check int "all messages despite loss" 50 (List.length d0);
  for i = 1 to 3 do
    check (Alcotest.list Alcotest.string) "same order under loss" d0
      (delivered h i)
  done

let test_crash_triggers_new_view () =
  let h = make_harness 4 in
  start_all h;
  run_for h 50;
  Totem.Node.crash h.nodes.(2);
  run_for h 50;
  for i = 0 to 3 do
    if i <> 2 then begin
      check bool "survivor operational" true
        (Totem.Node.is_operational h.nodes.(i));
      check int "3-member view" 3 (List.length (latest_view h i))
    end
  done

let test_messages_survive_crash () =
  let h = make_harness ~seed:5L 4 in
  start_all h;
  run_for h 50;
  for k = 0 to 9 do
    Totem.Node.multicast h.nodes.(1) (Printf.sprintf "pre%d" k)
  done;
  (* crash node 3 shortly after the sends *)
  Dsim.Engine.schedule h.eng (Span.of_us 100) (fun () ->
      Totem.Node.crash h.nodes.(3));
  run_for h 100;
  for k = 0 to 4 do
    Totem.Node.multicast h.nodes.(0) (Printf.sprintf "post%d" k)
  done;
  run_for h 100;
  let d0 = delivered h 0 in
  check int "15 messages at survivors" 15 (List.length d0);
  check (Alcotest.list Alcotest.string) "n1 agrees" d0 (delivered h 1);
  check (Alcotest.list Alcotest.string) "n2 agrees" d0 (delivered h 2)

let test_agreed_prefix_property () =
  (* Survivors deliver identical sequences even when the crash happens
     mid-burst. *)
  let h = make_harness ~seed:11L 4 in
  start_all h;
  run_for h 50;
  for k = 0 to 29 do
    Dsim.Engine.schedule h.eng (Span.of_us (k * 60)) (fun () ->
        (* node 2 crashes mid-burst; skip it once dead *)
        let sender = k mod 4 in
        if sender <> 2 || Time.(Dsim.Engine.now h.eng < Time.of_us 900) then
          Totem.Node.multicast h.nodes.(sender) (Printf.sprintf "x%d" k))
  done;
  Dsim.Engine.schedule h.eng (Span.of_us 900) (fun () ->
      Totem.Node.crash h.nodes.(2));
  run_for h 300;
  let d0 = delivered h 0 in
  check (Alcotest.list Alcotest.string) "n1 same" d0 (delivered h 1);
  check (Alcotest.list Alcotest.string) "n3 same" d0 (delivered h 3)

let test_late_joiner () =
  let h = make_harness 4 in
  (* only nodes 0-2 start; node 3 joins later *)
  for i = 0 to 2 do
    Totem.Node.start h.nodes.(i)
  done;
  run_for h 50;
  Totem.Node.multicast h.nodes.(0) "before";
  run_for h 20;
  Totem.Node.start h.nodes.(3);
  run_for h 60;
  check bool "joiner operational" true (Totem.Node.is_operational h.nodes.(3));
  check int "view has 4" 4 (List.length (latest_view h 3));
  Totem.Node.multicast h.nodes.(1) "after";
  run_for h 50;
  check
    (Alcotest.list Alcotest.string)
    "joiner sees post-join traffic" [ "after" ] (delivered h 3);
  check
    (Alcotest.list Alcotest.string)
    "old member saw both" [ "before"; "after" ] (delivered h 0)

let test_partition_forms_two_rings () =
  let h = make_harness 4 in
  start_all h;
  run_for h 50;
  Netsim.Network.partition h.net [ [ n 0; n 1; n 2 ]; [ n 3 ] ];
  run_for h 100;
  check int "majority side has 3" 3 (List.length (latest_view h 0));
  check int "minority side has 1" 1 (List.length (latest_view h 3));
  (* each side still orders its own traffic *)
  Totem.Node.multicast h.nodes.(0) "maj";
  Totem.Node.multicast h.nodes.(3) "min";
  run_for h 100;
  check (Alcotest.list Alcotest.string) "majority delivers" [ "maj" ]
    (delivered h 0);
  check (Alcotest.list Alcotest.string) "minority delivers" [ "min" ]
    (delivered h 3)

let test_remerge_after_partition () =
  let h = make_harness 4 in
  start_all h;
  run_for h 50;
  Netsim.Network.partition h.net [ [ n 0; n 1 ]; [ n 2; n 3 ] ];
  run_for h 100;
  check int "side A" 2 (List.length (latest_view h 0));
  check int "side B" 2 (List.length (latest_view h 2));
  Netsim.Network.heal h.net;
  run_for h 150;
  for i = 0 to 3 do
    check int "remerged view" 4 (List.length (latest_view h i))
  done;
  Totem.Node.multicast h.nodes.(2) "merged";
  run_for h 50;
  for i = 0 to 3 do
    check bool "post-merge delivery everywhere" true
      (List.mem "merged" (delivered h i))
  done

let test_token_rotates () =
  let h = make_harness 4 in
  start_all h;
  run_for h 50;
  let before = (Totem.Node.stats h.nodes.(1)).tokens_seen in
  run_for h 10;
  let after = (Totem.Node.stats h.nodes.(1)).tokens_seen in
  (* rotation ~ 4 * (26us wire + 25us hold) ~ 204us -> ~49 visits in 10ms *)
  let visits = after - before in
  check bool "token rotation rate plausible" true (visits > 30 && visits < 70)

let test_duplicate_free_delivery () =
  let h = make_harness ~seed:13L ~loss:0.02 3 in
  start_all h;
  run_for h 50;
  for k = 0 to 19 do
    Totem.Node.multicast h.nodes.(k mod 3) (Printf.sprintf "u%d" k)
  done;
  run_for h 300;
  let d = delivered h 0 in
  let uniq = List.sort_uniq compare d in
  check int "no duplicates" (List.length uniq) (List.length d);
  check int "all delivered" 20 (List.length d)

let test_multicast_after_crash_rejected () =
  let h = make_harness 2 in
  start_all h;
  run_for h 50;
  Totem.Node.crash h.nodes.(0);
  Alcotest.check_raises "crashed multicast"
    (Invalid_argument "Totem.Node.multicast: node crashed") (fun () ->
      Totem.Node.multicast h.nodes.(0) "nope")

let test_queued_messages_sent_on_new_ring () =
  (* messages multicast during a membership change are not lost *)
  let h = make_harness 3 in
  start_all h;
  run_for h 50;
  Totem.Node.crash h.nodes.(2);
  (* queue immediately, while survivors are still re-forming *)
  Totem.Node.multicast h.nodes.(0) "during-change";
  run_for h 100;
  check bool "queued message delivered" true
    (List.mem "during-change" (delivered h 0));
  check bool "at peer too" true (List.mem "during-change" (delivered h 1))

let prop_total_order_random_workloads =
  QCheck.Test.make ~count:25 ~name:"random workloads keep agreed order"
    QCheck.(pair (int_range 2 5) (int_range 1 40))
    (fun (nodes, msgs) ->
      let h = make_harness ~seed:(Int64.of_int (nodes + (msgs * 31))) nodes in
      start_all h;
      run_for h 50;
      for k = 0 to msgs - 1 do
        Dsim.Engine.schedule h.eng
          (Span.of_us (k * 37))
          (fun () ->
            Totem.Node.multicast h.nodes.(k mod nodes)
              (Printf.sprintf "r%d" k))
      done;
      run_for h 300;
      let d0 = delivered h 0 in
      List.length d0 = msgs
      && List.for_all
           (fun i -> delivered h i = d0)
           (List.init (nodes - 1) (fun i -> i + 1)))

let suites =
  [
    ( "totem.formation",
      [
        Alcotest.test_case "initial ring" `Quick test_initial_ring_forms;
        Alcotest.test_case "single node" `Quick test_single_node_ring;
        Alcotest.test_case "token rotates" `Quick test_token_rotates;
      ] );
    ( "totem.ordering",
      [
        Alcotest.test_case "basic total order" `Quick test_total_order_basic;
        Alcotest.test_case "many senders" `Quick test_total_order_many_senders;
        Alcotest.test_case "sender fifo" `Quick test_sender_order_preserved;
        Alcotest.test_case "duplicate free" `Quick test_duplicate_free_delivery;
        QCheck_alcotest.to_alcotest prop_total_order_random_workloads;
      ] );
    ( "totem.reliability",
      [
        Alcotest.test_case "loss recovery" `Quick test_reliability_under_loss;
      ] );
    ( "totem.membership",
      [
        Alcotest.test_case "crash view" `Quick test_crash_triggers_new_view;
        Alcotest.test_case "messages survive crash" `Quick
          test_messages_survive_crash;
        Alcotest.test_case "agreed prefix" `Quick test_agreed_prefix_property;
        Alcotest.test_case "late joiner" `Quick test_late_joiner;
        Alcotest.test_case "partition" `Quick test_partition_forms_two_rings;
        Alcotest.test_case "remerge" `Quick test_remerge_after_partition;
        Alcotest.test_case "crashed multicast" `Quick
          test_multicast_after_crash_rejected;
        Alcotest.test_case "queued across view change" `Quick
          test_queued_messages_sent_on_new_ring;
      ] );
  ]
