type Gcs.Msg.body +=
  | Request of { op : string; arg : string; ts : Dsim.Time.t option }
  | Reply of {
      result : string;
      replica : Netsim.Node_id.t;
      ts : Dsim.Time.t option;
    }

let request ~src_grp ~dst_grp ~conn_id ~msg_seq ~op ~arg ?ts () =
  Gcs.Msg.make ~msg_type:"REQUEST" ~src_grp ~dst_grp ~conn_id ~msg_seq
    (Request { op; arg; ts })

let reply ~(request_header : Gcs.Msg.header) ~replica ~result ?ts () =
  Gcs.Msg.make ~msg_type:"REPLY" ~src_grp:request_header.dst_grp
    ~dst_grp:request_header.src_grp ~conn_id:request_header.conn_id
    ~msg_seq:request_header.msg_seq
    (Reply { result; replica; ts })
