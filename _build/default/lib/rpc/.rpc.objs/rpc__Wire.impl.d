lib/rpc/wire.ml: Dsim Gcs Netsim
