lib/rpc/client.mli: Dsim Gcs
