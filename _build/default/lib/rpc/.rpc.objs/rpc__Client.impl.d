lib/rpc/client.ml: Dsim Gcs Hashtbl Wire
