lib/rpc/wire.mli: Dsim Gcs Netsim
