(** Remote-method-invocation message bodies.

    Models the CORBA layer of the paper's testbed (e*ORB over the
    replication infrastructure): requests and replies travel as
    totally-ordered group multicasts with the common protocol header.
    Operation names and arguments are strings — the simulation's stand-in
    for IIOP marshalling. *)

type Gcs.Msg.body +=
  | Request of { op : string; arg : string; ts : Dsim.Time.t option }
  | Reply of {
      result : string;
      replica : Netsim.Node_id.t;
      ts : Dsim.Time.t option;
    }

(** [ts] is the paper's §5 extension: the sender's view of its group clock,
    included "as a timestamp in the user messages multicast to the
    different groups" so that causal relations between the group clocks of
    different groups are maintained. *)

val request :
  src_grp:Gcs.Group_id.t ->
  dst_grp:Gcs.Group_id.t ->
  conn_id:int ->
  msg_seq:int ->
  op:string ->
  arg:string ->
  ?ts:Dsim.Time.t ->
  unit ->
  Gcs.Msg.t

val reply :
  request_header:Gcs.Msg.header ->
  replica:Netsim.Node_id.t ->
  result:string ->
  ?ts:Dsim.Time.t ->
  unit ->
  Gcs.Msg.t
(** Build the reply for a request: groups are swapped, and the connection
    id and sequence number are echoed so the client can correlate and
    deduplicate. *)
