(** RPC client (the paper's unreplicated CORBA client).

    The client occupies its own (singleton) group, multicasts requests to
    the server group over a connection, and accepts the first matching
    reply, suppressing the duplicates that active replication produces.
    Invocations can be timed (the paper's motivating "timed remote method
    invocations"). *)

type t

exception Timeout

val create :
  Dsim.Engine.t ->
  endpoint:Gcs.Endpoint.t ->
  my_group:Gcs.Group_id.t ->
  server_group:Gcs.Group_id.t ->
  unit ->
  t
(** Joins [my_group] on the endpoint to receive replies.  The connection
    identifier is derived from the two group ids. *)

val invoke :
  ?timeout:Dsim.Time.Span.t ->
  ?retries:int ->
  t ->
  op:string ->
  arg:string ->
  string
(** Perform a remote method invocation and block (fiber) until the first
    reply arrives.  With a [timeout], each attempt that expires is retried
    up to [retries] times (default 0) — re-sending with the same sequence
    number, so the replicas' duplicate-detection cache keeps the invocation
    exactly-once even when a reply was lost to a crash.  Raises {!Timeout}
    when every attempt expires; a reply arriving later is discarded. *)

val invoke_timed :
  ?timeout:Dsim.Time.Span.t ->
  ?retries:int ->
  t ->
  op:string ->
  arg:string ->
  string * Dsim.Time.Span.t
(** Like {!invoke} but also returns the end-to-end latency measured at the
    client with its local clock, as in the paper's §4.2 experiment (1). *)

val observe_timestamp : t -> Dsim.Time.t -> unit
(** Merge an externally learned group-clock timestamp into this client's
    causal session (e.g. carried over from a client of another group). *)

val last_timestamp : t -> Dsim.Time.t option
(** The highest group-clock timestamp carried by any reply this client has
    received.  It is forwarded with every subsequent request, so a clock
    read that causally follows this client's earlier interaction with
    another group is never smaller (the paper's §5 extension). *)

val requests_sent : t -> int
val duplicate_replies : t -> int
