type t = int
type span = int

let epoch = 0
let of_ns n = n
let to_ns t = t
let of_us u = u * 1_000
let to_us t = t / 1_000
let of_ms m = m * 1_000_000
let of_sec s = s * 1_000_000_000
let of_sec_f s = int_of_float (Float.round (s *. 1e9))
let to_sec_f t = float_of_int t /. 1e9
let add t s = t + s
let sub t s = t - s
let diff a b = a - b
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : int) b = a <= b
let ( < ) (a : int) b = a < b
let ( >= ) (a : int) b = a >= b
let ( > ) (a : int) b = a > b
let min = Stdlib.min
let max = Stdlib.max

let pp ppf t =
  let sign, t = if Stdlib.( < ) t 0 then ("-", -t) else ("", t) in
  Format.fprintf ppf "%s%d.%06ds" sign (t / 1_000_000_000)
    (t mod 1_000_000_000 / 1_000)

let truncate_to g t =
  if Stdlib.( <= ) g 0 then invalid_arg "Time.truncate_to: granularity <= 0";
  t - (((t mod g) + g) mod g)

module Span = struct
  type nonrec t = span

  let zero = 0
  let of_ns n = n
  let to_ns s = s
  let of_us u = u * 1_000
  let to_us s = s / 1_000
  let of_ms m = m * 1_000_000
  let of_sec s = s * 1_000_000_000
  let of_sec_f = of_sec_f
  let to_sec_f = to_sec_f
  let add = ( + )
  let sub = ( - )
  let neg s = -s
  let abs = Stdlib.abs
  let scale f s = int_of_float (Float.round (f *. float_of_int s))
  let divide s n = s / n
  let compare = Int.compare
  let equal = Int.equal
  let ( <= ) (a : int) b = a <= b
  let ( < ) (a : int) b = a < b
  let ( >= ) (a : int) b = a >= b
  let ( > ) (a : int) b = a > b
  let is_negative s = Stdlib.( < ) s 0
  let pp = pp
end
