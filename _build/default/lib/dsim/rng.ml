type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = mix64 seed }

let copy t = { state = t.state }
let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  let n = hi - lo + 1 in
  (* Rejection sampling keeps the draw exactly uniform. *)
  let limit = 0x3FFF_FFFF_FFFF_FFFF / n * n in
  let rec draw () =
    let b = bits t in
    if b >= limit then draw () else lo + (b mod n)
  in
  draw ()

let float t x = float_of_int (bits t) /. 4.611686018427387904e18 *. x
let bool t = Int64.logand (int64 t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int_range t 0 (List.length l - 1))

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_range t 0 i in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
