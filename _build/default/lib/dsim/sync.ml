let wake eng resume = Engine.schedule eng Time.Span.zero resume

module Ivar = struct
  type 'a state = Empty of (unit -> unit) Queue.t | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill eng t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        Queue.iter (wake eng) waiters

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters ->
        Fiber.suspend (fun resume -> Queue.push resume waiters);
        (match t.state with Full v -> v | Empty _ -> assert false)

  let peek t = match t.state with Full v -> Some v | Empty _ -> None
  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; waiters : (unit -> unit) Queue.t }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let send eng t v =
    Queue.push v t.items;
    match Queue.take_opt t.waiters with
    | Some resume -> wake eng resume
    | None -> ()

  let rec recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None ->
        Fiber.suspend (fun resume -> Queue.push resume t.waiters);
        (* Another fiber woken at the same instant may have raced us to the
           message, so re-check rather than assume availability. *)
        recv t

  let recv_opt t = Queue.take_opt t.items
  let peek t = Queue.peek_opt t.items
  let length t = Queue.length t.items
  let is_empty t = Queue.is_empty t.items
end

module Condition = struct
  type t = { waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }
  let wait t = Fiber.suspend (fun resume -> Queue.push resume t.waiters)

  let signal eng t =
    match Queue.take_opt t.waiters with
    | Some resume -> wake eng resume
    | None -> ()

  let broadcast eng t =
    Queue.iter (wake eng) t.waiters;
    Queue.clear t.waiters

  let waiters t = Queue.length t.waiters
end

module Waitgroup = struct
  type t = { mutable count : int; done_ : unit Ivar.t }

  let create count =
    if count < 0 then invalid_arg "Waitgroup.create: negative count";
    { count; done_ = Ivar.create () }

  let add t n = t.count <- t.count + n

  let finish eng t =
    if t.count <= 0 then invalid_arg "Waitgroup.finish: count already 0";
    t.count <- t.count - 1;
    if t.count = 0 then Ivar.fill eng t.done_ ()

  let wait t = if t.count > 0 then Ivar.read t.done_
end
