(** Cooperative fibers on top of OCaml effect handlers.

    Fibers give simulated code the blocking style of the paper's POSIX
    threads — a replica thread really does block inside
    [get_grp_clock_time()] until the first CCS message arrives — while the
    whole system remains a deterministic single-threaded simulation.

    All blocking operations ({!sleep}, {!suspend}, and the primitives in
    {!Sync}) must be called from inside a fiber; calling them elsewhere
    raises {!Not_in_fiber}. *)

exception Not_in_fiber

val spawn : Engine.t -> (unit -> unit) -> unit
(** [spawn eng f] schedules a new fiber running [f] at the current virtual
    instant.  An exception escaping [f] aborts the simulation run. *)

val sleep : Engine.t -> Time.span -> unit
(** Block the calling fiber for the given virtual duration. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling fiber and calls [register resume].
    The fiber continues when [resume ()] is invoked (from any callback).
    [resume] must be called at most once; a second call raises
    [Invalid_argument]. *)

val yield : Engine.t -> unit
(** Re-schedule the calling fiber at the same instant, letting other
    pending events at this instant run first. *)

val current_id : unit -> int option
(** The identifier of the currently running fiber, or [None] when called
    from a plain engine callback.  Identifiers are unique per engine-less
    global counter and stable across suspensions, which makes them usable
    as keys for fiber-local state (see [Cts.Interpose]). *)
