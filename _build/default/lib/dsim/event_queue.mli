(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, insertion sequence)]: events at the
    same instant pop in insertion order, which makes the simulation fully
    deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> Time.t -> 'a -> unit
(** [push q at ev] enqueues [ev] to fire at instant [at]. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
