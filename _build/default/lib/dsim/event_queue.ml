type 'a entry = { at : Time.t; seq : int; ev : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 64 None; size = 0; next_seq = 0 }

let entry_lt a b =
  match Time.compare a.at b.at with 0 -> a.seq < b.seq | c -> c < 0

let get h i = match h.heap.(i) with Some e -> e | None -> assert false

let swap h i j =
  let tmp = h.heap.(i) in
  h.heap.(i) <- h.heap.(j);
  h.heap.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_lt (get h l) (get h !smallest) then smallest := l;
  if r < h.size && entry_lt (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h at ev =
  if h.size = Array.length h.heap then begin
    let bigger = Array.make (2 * h.size) None in
    Array.blit h.heap 0 bigger 0 h.size;
    h.heap <- bigger
  end;
  h.heap.(h.size) <- Some { at; seq = h.next_seq; ev };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    h.heap.(0) <- h.heap.(h.size);
    h.heap.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (top.at, top.ev)
  end

let peek_time h = if h.size = 0 then None else Some (get h 0).at
let length h = h.size
let is_empty h = h.size = 0

let clear h =
  Array.fill h.heap 0 h.size None;
  h.size <- 0
