(** Blocking synchronization primitives for fibers.

    Wake-ups are scheduled through the engine at the current instant rather
    than run inline, so a [fill]/[send]/[signal] never re-enters the waiting
    fiber from the middle of the caller's critical section. *)

module Ivar : sig
  (** A write-once cell. *)

  type 'a t

  val create : unit -> 'a t

  val fill : Engine.t -> 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val read : 'a t -> 'a
  (** Blocks the calling fiber until the cell is filled. *)

  val peek : 'a t -> 'a option
  val is_filled : 'a t -> bool
end

module Mailbox : sig
  (** An unbounded FIFO channel. *)

  type 'a t

  val create : unit -> 'a t
  val send : Engine.t -> 'a t -> 'a -> unit

  val recv : 'a t -> 'a
  (** Blocks the calling fiber until a message is available. *)

  val recv_opt : 'a t -> 'a option
  (** Non-blocking receive. *)

  val peek : 'a t -> 'a option
  val length : 'a t -> int
  val is_empty : 'a t -> bool
end

module Condition : sig
  (** A broadcast condition variable (no associated mutex: the simulation is
      single-threaded, so there are no data races to guard against). *)

  type t

  val create : unit -> t

  val wait : t -> unit
  (** Block until the next {!signal} or {!broadcast}. *)

  val signal : Engine.t -> t -> unit
  (** Wake one waiter (the longest-waiting one), if any. *)

  val broadcast : Engine.t -> t -> unit
  (** Wake all current waiters. *)

  val waiters : t -> int
end

module Waitgroup : sig
  (** Counts outstanding tasks; {!wait} blocks until the count reaches 0. *)

  type t

  val create : int -> t
  val add : t -> int -> unit
  val finish : Engine.t -> t -> unit
  val wait : t -> unit
end
