lib/dsim/fiber.mli: Engine Time
