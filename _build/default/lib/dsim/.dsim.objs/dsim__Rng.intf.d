lib/dsim/rng.mli:
