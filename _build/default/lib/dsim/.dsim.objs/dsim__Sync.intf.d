lib/dsim/sync.mli: Engine
