lib/dsim/fiber.ml: Effect Engine Fun Time
