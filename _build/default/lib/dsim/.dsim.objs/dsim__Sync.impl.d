lib/dsim/sync.ml: Engine Fiber Queue Time
