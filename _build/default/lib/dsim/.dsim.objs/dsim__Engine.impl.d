lib/dsim/engine.ml: Event_queue Format Rng Time
