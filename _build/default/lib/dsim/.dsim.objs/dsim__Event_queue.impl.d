lib/dsim/event_queue.ml: Array Time
