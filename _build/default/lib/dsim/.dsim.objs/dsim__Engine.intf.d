lib/dsim/engine.mli: Rng Time
