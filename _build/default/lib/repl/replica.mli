(** A replicated server instance (the paper's PluggableFT-style
    infrastructure, §2).

    One replica runs per node.  It joins the server group, feeds every
    delivered message and view change to its consistent time service, and
    drives a single processing thread (§2: "one and only one thread is
    assigned to process incoming remote method invocations") that executes
    requests in the agreed delivery order.

    Replication styles:

    - {!Active}: every replica processes every request and sends the reply
      (the client suppresses duplicates); all replicas compete in CCS
      rounds.
    - {!Passive}: only the primary (group rank 0) processes; backups log
      requests and apply the primary's periodic checkpoints; on failover
      the promoted backup replays its log — consuming the logged CCS
      winners, so clock reads replay deterministically — and takes over.
    - {!Semi_active}: all replicas process, but nondeterministic decisions
      (clock reads) are made by the primary and conveyed through CCS
      messages; only the primary emits replies.

    Adding a replica to a running group performs the paper's §3.2 state
    transfer: existing replicas reach the join point in processing order,
    run the special CCS round, snapshot, and multicast the state; the new
    replica adopts the group clock from the special round's CCS message,
    applies the checkpoint, and then processes the requests ordered after
    its join. *)

type style = Active | Passive | Semi_active

type config = {
  style : style;
  checkpoint_interval : int;
      (** passive style: checkpoint every N requests *)
  recovering : bool;  (** [true] when added to a running group *)
  drift : Cts.Drift.t;
  offset_tracking : bool;
      (** [false] selects the prior-work baseline clock service *)
  initial_members : Netsim.Node_id.t list;
      (** nodes known to host bootstrap replicas: no state transfer is
          initiated when they appear in the view (they already have the
          initial state); a node joining later — or rejoining after a crash
          — always gets one *)
}

val default_config : config
(** Active, checkpoint every 50 requests, bootstrap member, no drift
    compensation, offset tracking on. *)

(** The replicated application.  [handle] runs in the processing fiber and
    may block (e.g. on consistent clock reads); [snapshot]/[restore]
    serialize the full application state. *)
type app = {
  handle : thread:Cts.Thread_id.t -> op:string -> arg:string -> string;
  snapshot : unit -> string;
  restore : string -> unit;
}

type t

val create :
  Dsim.Engine.t ->
  endpoint:Gcs.Endpoint.t ->
  group:Gcs.Group_id.t ->
  clock:Clock.Hwclock.t ->
  ?config:config ->
  app:(Cts.Service.t -> app) ->
  unit ->
  t
(** Joins the group and starts the processing thread.  The [app] factory
    receives the replica's consistent time service so request handlers can
    perform group clock reads. *)

val service : t -> Cts.Service.t
val me : t -> Netsim.Node_id.t
val group : t -> Gcs.Group_id.t

val is_primary : t -> bool
(** Rank 0 in the current group view. *)

val recovered : t -> bool
(** [false] while a joining replica is still waiting for its state. *)

val halted : t -> bool
(** [true] after eviction from the primary component (the replica sat in a
    minority partition that remerged).  A halted replica serves nothing;
    rejoin by creating a fresh replica with [recovering = true]. *)

val processed : t -> int
(** Requests executed by this replica's processing thread. *)

val delivered : t -> int
(** Requests delivered (processed or logged). *)

val snapshot : t -> string
(** The application's current state snapshot (for test assertions). *)

val main_thread : Cts.Thread_id.t
(** The logical id of the processing thread (1 at every replica). *)

val crash : t -> unit
(** Fail-stop the replica (and its node's endpoint). *)
