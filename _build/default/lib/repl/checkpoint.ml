type t = {
  upto : int;
  app_state : string;
  rounds : (Cts.Thread_id.t * int) list;
}

type Gcs.Msg.body +=
  | State of { for_node : Netsim.Node_id.t; checkpoint : t }
  | Periodic of t

let conn_id = 1

let state_msg ~group ~for_node checkpoint =
  Gcs.Msg.make ~msg_type:"STATE" ~src_grp:group ~dst_grp:group ~conn_id
    ~msg_seq:(Netsim.Node_id.to_int for_node)
    (State { for_node; checkpoint })

let periodic_msg ~group checkpoint =
  Gcs.Msg.make ~msg_type:"CHECKPOINT" ~src_grp:group ~dst_grp:group ~conn_id
    ~msg_seq:checkpoint.upto (Periodic checkpoint)
