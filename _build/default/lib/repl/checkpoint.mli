(** Replica checkpoints.

    A checkpoint captures the application state together with the
    per-thread CCS round numbers of the consistent time service, so that a
    replica applying it can fast-forward its clock handlers past the rounds
    the state already reflects (otherwise a promoted backup or a recovered
    replica would replay stale group clock values). *)

type t = {
  upto : int;
      (** number of requests (in delivery order) the state reflects *)
  app_state : string;  (** opaque application snapshot *)
  rounds : (Cts.Thread_id.t * int) list;
      (** CCS round number of each clock-using thread at the snapshot *)
}

type Gcs.Msg.body +=
  | State of { for_node : Netsim.Node_id.t; checkpoint : t }
      (** state transfer to the named joining replica *)
  | Periodic of t
      (** the passive primary's periodic checkpoint to its backups *)

val conn_id : int
(** Replication-control messages of a group travel on a reserved
    connection (distinct from the CCS connection). *)

val state_msg : group:Gcs.Group_id.t -> for_node:Netsim.Node_id.t -> t -> Gcs.Msg.t
val periodic_msg : group:Gcs.Group_id.t -> t -> Gcs.Msg.t
