lib/repl/replica.mli: Clock Cts Dsim Gcs Netsim
