lib/repl/replica.ml: Checkpoint Clock Cts Dsim Gcs Hashtbl List Logs Netsim Queue Rpc
