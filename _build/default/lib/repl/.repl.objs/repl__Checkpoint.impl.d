lib/repl/checkpoint.ml: Cts Gcs Netsim
