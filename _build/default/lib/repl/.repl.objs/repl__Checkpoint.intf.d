lib/repl/checkpoint.mli: Cts Gcs Netsim
