(** The consistent time service of a replica (the paper's core mechanism).

    One service instance runs at each replica of a group.  Every
    clock-related operation ({!gettimeofday}, {!time}, {!ftime}) opens a CCS
    round (Figure 2): the replica reads its physical hardware clock, adds
    its clock offset, and — unless a CCS message for the round has already
    been delivered — multicasts the resulting local clock value as its
    proposal for the group clock.  The first CCS message delivered by the
    totally-ordered multicast determines the group clock for the round at
    every replica; the offset is then recomputed as group clock minus
    physical clock.

    The service supports both replication disciplines (§2, §3.3):
    {!Active}, where all replicas compete to be the round's synchronizer,
    and {!Primary_backup} (used by passive and semi-active replication),
    where only the current primary sends CCS messages and a promoted backup
    first checks its input buffer before sending.

    Setting [offset_tracking = false] turns the service into the
    prior-work baseline ([9], [3] in the paper): the primary distributes its
    raw physical clock value and no offset is maintained, which is exactly
    the scheme whose roll-back / fast-forward behaviour on failover the
    paper's introduction criticises.  The {!stats} rollback counters make
    that behaviour measurable. *)

type mode = Active | Primary_backup

type config = {
  mode : mode;
  drift : Drift.t;
  offset_tracking : bool;
  recovering : bool;
      (** [true] for a replica added to a running group: the service starts
          uninitialized and adopts its offset from the special CCS round of
          the state transfer (§3.2) *)
}

val default_config : config
(** Active mode, no drift compensation, offset tracking on, not
    recovering. *)

type stats = {
  rounds_completed : int;
  ccs_sent : int;  (** CCS messages this replica actually multicast *)
  ccs_received : int;
  suppressed : int;
      (** rounds where sending was suppressed because the winner's CCS
          message had already been delivered (§4.3's duplicate
          suppression) *)
  rollbacks : int;
      (** times two consecutive clock readings of one thread went backwards
          (always 0 with the consistent group clock; nonzero for the
          baseline under failover) *)
  max_rollback : Dsim.Time.Span.t;
  last_value : Dsim.Time.t option;  (** most recent group clock reading *)
}

type t

val create :
  Dsim.Engine.t ->
  endpoint:Gcs.Endpoint.t ->
  group:Gcs.Group_id.t ->
  clock:Clock.Hwclock.t ->
  ?config:config ->
  unit ->
  t

(** {1 Wiring}

    The owner of the group subscription (the replication infrastructure)
    feeds the service with delivered messages and view changes. *)

val on_message : t -> Gcs.Msg.t -> unit
(** Figure 3: route a delivered message.  Non-CCS messages are ignored, so
    the whole delivery stream can be passed through. *)

val on_view : t -> Gcs.View.t -> unit
(** Track the group view (primary rank for {!Primary_backup} mode).  A
    backup promoted to primary re-sends the CCS message for any round it is
    blocked in, per §3 ("if the primary fails ... the new primary replica
    will send a consistent clock synchronization message"). *)

(** {1 Clock operations (library-interposition entry points, §4.1)}

    All three must be called from a fiber and block until the round's group
    clock value is known.  [thread] identifies the calling logical thread
    (§2: threads are created in the same order at all replicas). *)

val gettimeofday : t -> thread:Thread_id.t -> Dsim.Time.t
(** Microsecond granularity. *)

val time : t -> thread:Thread_id.t -> Dsim.Time.t
(** Second granularity. *)

val ftime : t -> thread:Thread_id.t -> Dsim.Time.t
(** Millisecond granularity. *)

val clock_read : t -> thread:Thread_id.t -> call:Call_type.t -> Dsim.Time.t
(** The generic entry point behind the three wrappers. *)

(** {1 State transfer (§3.2, Integration of New Clocks)} *)

val special_round : t -> Dsim.Time.t
(** Run the special CCS round on the reserved recovery thread.  Existing
    replicas call this immediately before taking the checkpoint; the
    returned value is the group clock at the synchronization point. *)

val initialized : t -> bool
(** A recovering replica becomes initialized when the special round's CCS
    message arrives and its offset is adopted. *)

val await_initialized : t -> unit
(** Block the calling fiber until {!initialized} (no-op when already). *)

val thread_rounds : t -> (Thread_id.t * int) list
(** Current round number of every known thread — recorded in checkpoints. *)

val advance_thread : t -> thread:Thread_id.t -> round:int -> unit
(** Fast-forward a thread to [round] (checkpoint application). *)

(** {1 Multiple groups (§5)}

    The paper's conclusion sketches the extension this implements: carrying
    the group clock as a timestamp in messages sent to other groups, so the
    causal order between the group clocks of different groups is preserved.
    A replica observing a timestamp raises its causal floor; subsequent
    proposals — and hence the group clock — never fall below it, so a clock
    read that causally follows a read in another group returns a larger
    value. *)

val observe_timestamp : t -> Dsim.Time.t -> unit
(** Record a group-clock timestamp carried by a delivered message.
    Observation happens in delivery order at every replica, so the floor is
    identical group-wide. *)

val causal_floor : t -> Dsim.Time.t option

val last_reading : t -> Dsim.Time.t option
(** The most recent group clock value at this replica — the timestamp to
    attach to outgoing inter-group messages. *)

(** {1 Introspection} *)

val offset : t -> Dsim.Time.Span.t
(** The current [my_clock_offset]. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the counters (benchmarks call this after the startup transient so
    measurements cover only the workload). *)

val group : t -> Gcs.Group_id.t
val me : t -> Netsim.Node_id.t
